// A miniature genome-wide association study, end to end — the population-
// genomics motivation of the paper's introduction:
//
//   1. simulate a cohort with LD-block structure and one causal variant,
//   2. run per-locus QC (MAF / HWE) and drop failing loci,
//   3. scan for association (Cochran-Armitage trend test),
//   4. characterize the hit region with genotype-level LD (EM haplotype
//      frequencies) computed through the simulated-GPU comparison kernels,
//   5. double-check the cohort for cryptic relatedness with KING-robust.
//
// Build & run:  ./build/examples/gwas_study
#include <algorithm>
#include <cstdio>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "io/rng.hpp"
#include "stats/assoc.hpp"
#include "stats/kinship.hpp"
#include "stats/qc.hpp"

int main() {
  using namespace snp;
  constexpr std::size_t kLoci = 400;
  constexpr std::size_t kSamples = 1500;
  constexpr std::size_t kCausal = 217;

  // 1. Cohort with 10-locus LD blocks; the causal variant sits mid-block.
  io::PopulationParams pop;
  pop.seed = 20260706;
  pop.spectrum = io::MafSpectrum::kUniform;
  pop.maf_min = 0.005;  // a few loci will fail the MAF filter
  pop.maf_max = 0.5;
  pop.ld_block_len = 10;
  pop.ld_copy = 0.85;
  const auto genotypes = io::generate_genotypes(kLoci, kSamples, pop);
  io::Rng rng(31337);
  std::vector<bool> is_case(kSamples);
  std::size_t n_cases = 0;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const double risk = 0.15 + 0.2 * genotypes.at(kCausal, s);
    is_case[s] = rng.next_bernoulli(risk);
    n_cases += is_case[s] ? 1u : 0u;
  }
  std::printf("cohort: %zu loci x %zu samples (%zu cases), causal locus "
              "#%zu\n",
              kLoci, kSamples, n_cases, kCausal);

  // 2. QC.
  stats::QcThresholds thresholds;
  thresholds.min_maf = 0.01;
  const auto qc = stats::qc_report(genotypes, {}, thresholds);
  std::size_t pass = 0;
  for (const auto& q : qc) {
    pass += q.pass() ? 1u : 0u;
  }
  std::printf("QC: %zu/%zu loci pass (MAF >= %.0f%%, HWE p >= %g)\n",
              pass, kLoci, 100.0 * thresholds.min_maf,
              thresholds.min_hwe_p);
  std::printf("causal locus #%zu: maf=%.4f -> %s\n", kCausal,
              qc[kCausal].maf,
              qc[kCausal].pass()
                  ? "passes QC (expect a direct hit)"
                  : "FAILS QC -- the scan can only find it through "
                    "LD-block tag SNPs, as in real studies");

  // 3. Association scan on passing loci.
  const auto assoc = stats::gwas_scan(genotypes, is_case);
  std::vector<std::size_t> order;
  for (std::size_t l = 0; l < kLoci; ++l) {
    if (qc[l].pass()) {
      order.push_back(l);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return assoc[a].p_trend < assoc[b].p_trend;
  });
  std::printf("\ntop association hits (trend test):\n");
  for (std::size_t k = 0; k < 5; ++k) {
    const std::size_t l = order[k];
    std::printf("  locus %3zu: p=%.3g OR=%.2f maf(case)=%.3f "
                "maf(ctrl)=%.3f%s\n",
                l, assoc[l].p_trend, assoc[l].odds_ratio,
                assoc[l].maf_cases, assoc[l].maf_controls,
                l == kCausal ? "   <-- planted causal variant" : "");
  }

  // 4. LD around the top hit, via the simulated Titan V and EM.
  const std::size_t hit = order[0];
  const std::size_t lo = hit >= 6 ? hit - 6 : 0;
  const std::size_t hi = std::min(hit + 7, kLoci);
  bits::GenotypeMatrix region(hi - lo, kSamples);
  for (std::size_t l = lo; l < hi; ++l) {
    for (std::size_t s = 0; s < kSamples; ++s) {
      region.at(l - lo, s) = genotypes.at(l, s);
    }
  }
  Context gpu = Context::gpu("titanv");
  const auto ld = gpu.genotype_ld(region);
  std::printf("\nEM genotype r^2 around the hit (locus %zu), on %s:\n  ",
              hit, gpu.device_name().c_str());
  for (std::size_t l = lo; l < hi; ++l) {
    std::printf("%5zu ", l);
  }
  std::printf("\n  ");
  const std::size_t hit_row = hit - lo;
  for (std::size_t j = 0; j < ld.loci; ++j) {
    std::printf("%5.2f ", ld.at(hit_row, j).r2);
  }
  std::printf("\n(4 plane comparisons on the device: kernel %.2f ms, "
              "end-to-end %.0f ms)\n",
              ld.timing.kernel_s * 1e3, ld.timing.end_to_end_s * 1e3);

  // 5. Relatedness screen. KING needs many *independent* markers (LD
  // blocks shrink the effective count and inflate the noise), so screen
  // on a dedicated pruned panel, exactly as real pipelines LD-prune
  // before kinship.
  io::PopulationParams pruned = pop;
  pruned.seed = 555;
  pruned.ld_block_len = 1;  // independent markers
  pruned.maf_min = 0.1;
  const auto screen = io::generate_genotypes(4000, 20, pruned);
  const auto kin = stats::kinship_matrix(screen);
  std::size_t related = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      if (kin[i * 20 + j].relationship != stats::Relationship::kUnrelated) {
        ++related;
      }
    }
  }
  std::printf("\nkinship screen (first 20 samples): %zu related pairs "
              "detected (expected 0)\n",
              related);
  return 0;
}
