// Population structure, end to end, on the comparison kernels:
//
//   1. simulate two diverged subpopulations (Balding-Nichols-style),
//   2. compute pairwise Hamming distances with the XOR kernel on a
//      simulated GPU,
//   3. recover the two groups with UPGMA clustering,
//   4. quantify the divergence with Hudson's Fst,
//   5. confirm the split is structure, not relatedness, with KING.
//
// Build & run:  ./build/examples/population_structure [device]
#include <cstdio>
#include <set>
#include <string>

#include "bits/genotype.hpp"
#include "core/snpcmp.hpp"
#include "io/rng.hpp"
#include "stats/cluster.hpp"
#include "stats/fst.hpp"
#include "stats/kinship.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  const std::string device = argc > 1 ? argv[1] : "gtx980";
  constexpr std::size_t kPerPop = 24;
  constexpr std::size_t kLoci = 4000;

  // 1. Two subpopulations around shared ancestral frequencies.
  io::Rng rng(777);
  bits::GenotypeMatrix genotypes(kLoci, 2 * kPerPop);
  for (std::size_t l = 0; l < kLoci; ++l) {
    const double anc = 0.15 + 0.6 * rng.next_double();
    const double shift = 0.25 * (rng.next_double() - 0.5);
    const double p1 = std::min(0.95, std::max(0.02, anc + shift));
    const double p2 = std::min(0.95, std::max(0.02, anc - shift));
    for (std::size_t s = 0; s < 2 * kPerPop; ++s) {
      const double p = s < kPerPop ? p1 : p2;
      genotypes.at(l, s) = static_cast<std::uint8_t>(
          static_cast<int>(rng.next_bernoulli(p)) +
          static_cast<int>(rng.next_bernoulli(p)));
    }
  }
  std::printf("cohort: %zu samples (2 populations of %zu) x %zu loci\n",
              2 * kPerPop, kPerPop, kLoci);

  // 2. Individual-major presence plane -> XOR distances on the device.
  const auto profiles = stats::encode_individual_major(
      genotypes, bits::EncodingPlane::kPresence);
  Context ctx = Context::gpu(device);
  const auto gamma =
      ctx.compare(profiles, profiles, bits::Comparison::kXor);
  std::printf("XOR distance matrix on %s: kernel %.3f ms, end-to-end "
              "%.0f ms\n",
              ctx.device_name().c_str(), gamma.timing.kernel_s * 1e3,
              gamma.timing.end_to_end_s * 1e3);

  // 3. UPGMA -> two clusters.
  const auto tree = stats::upgma(gamma.counts);
  const auto labels = tree.cut_k(2);
  std::size_t misassigned = 0;
  for (std::size_t s = 0; s < 2 * kPerPop; ++s) {
    const std::size_t truth = s < kPerPop ? labels[0] : labels[kPerPop];
    misassigned += labels[s] != truth ? 1u : 0u;
  }
  std::printf("UPGMA 2-way cut: %zu/%zu samples misassigned\n",
              misassigned, 2 * kPerPop);

  // 4. Fst between the recovered groups.
  std::vector<bool> in_pop1(2 * kPerPop);
  for (std::size_t s = 0; s < 2 * kPerPop; ++s) {
    in_pop1[s] = labels[s] == labels[0];
  }
  const auto fst = stats::fst_scan(genotypes, in_pop1);
  std::printf("Hudson Fst between the clusters: %.4f (typical human "
              "continental pairs: 0.05-0.15)\n",
              fst.genome_wide);

  // 5. Kinship screen: structure, not family.
  const auto kin = stats::kinship_matrix(genotypes);
  std::size_t related = 0;
  const std::size_t n = 2 * kPerPop;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      related += kin[i * n + j].relationship !=
                         stats::Relationship::kUnrelated
                     ? 1u
                     : 0u;
    }
  }
  std::printf("KING screen: %zu related pairs (expected 0 -- the split is "
              "population structure)\n",
              related);
  return misassigned == 0 ? 0 : 1;
}
