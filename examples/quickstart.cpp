// Quickstart: the five-minute tour of the snpcmp public API.
//
//   1. generate a small synthetic SNP dataset,
//   2. pack it into the bit-matrix format of the framework (paper Fig. 2),
//   3. run the same comparison on the CPU engine and on a simulated GPU,
//   4. check they agree and read the timing report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bits/genotype.hpp"
#include "core/snpcmp.hpp"
#include "io/datagen.hpp"

int main() {
  using namespace snp;

  // 1. Synthetic genotypes: 200 SNP loci x 512 samples, with LD blocks.
  io::PopulationParams params;
  params.seed = 42;
  params.ld_block_len = 16;
  const bits::GenotypeMatrix genotypes =
      io::generate_genotypes(200, 512, params);

  // 2. Pack the minor-allele presence plane into bit vectors.
  const bits::BitMatrix loci =
      bits::encode(genotypes, bits::EncodingPlane::kPresence);
  std::printf("packed %zu loci x %zu samples into %zu KiB of bit vectors\n",
              loci.rows(), loci.bit_cols(), loci.size_bytes() / 1024);

  // 3a. LD co-occurrence counts on the CPU (real execution).
  Context cpu = Context::cpu();
  const CompareResult on_cpu = cpu.ld(loci);
  std::printf("CPU engine:       %.3f ms, %.2f Gword-ops/s\n",
              on_cpu.timing.kernel_s * 1e3, on_cpu.timing.kernel_gops);

  // 3b. The same computation on a simulated Titan V.
  Context gpu = Context::gpu("titanv");
  const CompareResult on_gpu = gpu.ld(loci);
  std::printf("Titan V (sim):    kernel %.3f ms, end-to-end %.1f ms "
              "(init %.0f ms)\n",
              on_gpu.timing.kernel_s * 1e3,
              on_gpu.timing.end_to_end_s * 1e3,
              on_gpu.timing.init_s * 1e3);
  std::printf("kernel config:    %s\n", on_gpu.timing.config.c_str());

  // 4. Same gamma matrix either way.
  const bool agree = on_cpu.counts == on_gpu.counts;
  std::printf("engines agree:    %s\n", agree ? "yes" : "NO (bug!)");

  // Peek at one pair of loci: adjacent loci inside an LD block co-occur.
  std::printf("gamma[10,11] = %u shared minor-allele carriers "
              "(|locus10| = %zu, |locus11| = %zu of %zu samples)\n",
              on_cpu.counts.at(10, 11), loci.row_popcount(10),
              loci.row_popcount(11), loci.bit_cols());
  return agree ? 0 : 1;
}
