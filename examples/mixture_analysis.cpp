// FastID mixture analysis: the Eq. 3 workload of paper Section II-C.
//
// Builds a profile database, composes DNA mixtures as unions of 2-4
// contributor profiles, and asks: which database profiles are consistent
// with being contributors? A profile r is consistent when
// |r & ~mixture| == 0 — every minor allele it carries also appears in the
// mixture. The example runs both lowerings of Eq. 3 (fused AND-NOT and
// pre-negated database + AND), verifies they agree, and shows the Vega 64
// throughput argument for pre-negation.
//
// Build & run:  ./build/examples/mixture_analysis [device]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "stats/forensic.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  const std::string device = argc > 1 ? argv[1] : "vega64";
  constexpr std::size_t kProfiles = 20000;
  constexpr std::size_t kSnps = 768;
  constexpr std::size_t kMixtures = 4;

  io::ProfileDbParams params;
  params.seed = 77;
  params.maf_min = 0.02;
  params.maf_max = 0.2;  // sparse minor alleles keep mixtures informative
  const bits::BitMatrix db =
      io::generate_profile_db(kProfiles, kSnps, params);
  const io::MixtureSet mixtures =
      io::generate_mixtures(db, kMixtures, 3, 78);

  Context ctx = Context::gpu(device);
  const MixtureAnalysisResult fused =
      ctx.mixture_analysis(db, mixtures.mixtures);

  ComputeOptions pre;
  pre.pre_negate = true;
  const MixtureAnalysisResult negated =
      ctx.mixture_analysis(db, mixtures.mixtures, 0, pre);

  std::printf("mixture analysis: %zu profiles x %zu SNPs, %zu mixtures of "
              "3 contributors, on %s\n\n",
              kProfiles, kSnps, kMixtures, ctx.device_name().c_str());
  const bool agree = fused.comparison.counts == negated.comparison.counts;
  std::printf("Eq. 3 lowerings agree (fused AND-NOT == pre-negated AND): "
              "%s\n",
              agree ? "yes" : "NO (bug!)");
  std::printf("fused kernel:       %.2f ms (%s)\n",
              fused.comparison.timing.kernel_s * 1e3,
              fused.comparison.timing.config.c_str());
  std::printf("pre-negated kernel: %.2f ms (%s)\n\n",
              negated.comparison.timing.kernel_s * 1e3,
              negated.comparison.timing.config.c_str());

  for (std::size_t m = 0; m < kMixtures; ++m) {
    auto truth = mixtures.contributors[m];
    std::sort(truth.begin(), truth.end());
    truth.erase(std::unique(truth.begin(), truth.end()), truth.end());
    const auto& called = fused.included[m];
    std::size_t recovered = 0;
    for (const std::size_t t : truth) {
      recovered +=
          std::count(called.begin(), called.end(), t) > 0 ? 1u : 0u;
    }
    std::printf("mixture %zu: %zu true contributors, %zu profiles called "
                "consistent, %zu/%zu contributors recovered\n",
                m, truth.size(), called.size(), recovered, truth.size());
    // Show the evidence for one true contributor and one random outsider.
    const std::size_t contributor = truth[0];
    const std::size_t outsider = (contributor + kProfiles / 2) % kProfiles;
    std::printf("    profile %6zu (contributor): %u foreign alleles | "
                "profile %6zu (outsider): %u foreign alleles\n",
                contributor, fused.comparison.counts.at(contributor, m),
                outsider, fused.comparison.counts.at(outsider, m));
  }
  std::printf("\n(false inclusions are possible when a profile's minor "
              "alleles happen to be\n covered by the mixture; tolerance and "
              "the expected-if-random baseline in\n stats::call_contributors"
              " quantify that.)\n");
  return agree ? 0 : 1;
}
