// LD scan: the population-genomics workload of paper Section II-A.
//
// Generates a chromosome-like dataset with LD-block structure, computes the
// full pairwise gamma matrix on a simulated GPU, converts it into D / D' /
// r^2 with the stats layer, and prints the strongest associations plus a
// coarse r^2 "heatmap" revealing the block structure.
//
// Build & run:  ./build/examples/ld_scan [device] [loci] [samples]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bits/genotype.hpp"
#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "stats/ld.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  const std::string device = argc > 1 ? argv[1] : "vega64";
  const std::size_t n_loci =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 96;
  const std::size_t n_samples =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2048;

  io::PopulationParams params;
  params.seed = 7;
  params.spectrum = io::MafSpectrum::kUniform;
  params.maf_min = 0.1;
  params.maf_max = 0.5;
  params.ld_block_len = 12;
  params.ld_copy = 0.9;
  const auto genotypes = io::generate_genotypes(n_loci, n_samples, params);
  const auto loci =
      bits::encode(genotypes, bits::EncodingPlane::kPresence);

  Context ctx = Context::gpu(device);
  const CompareResult res = ctx.ld(loci);
  std::printf("LD scan of %zu loci x %zu samples on %s\n", n_loci,
              n_samples, ctx.device_name().c_str());
  std::printf("kernel %.3f ms (%.1f Gword-ops/s, %.1f%% of peak), "
              "end-to-end %.1f ms\n\n",
              res.timing.kernel_s * 1e3, res.timing.kernel_gops,
              res.timing.pct_of_peak, res.timing.end_to_end_s * 1e3);

  const auto counts = stats::row_counts(loci);
  struct Pair {
    std::size_t i, j;
    stats::LdStats s;
  };
  std::vector<Pair> top;
  for (std::size_t i = 0; i < n_loci; ++i) {
    for (std::size_t j = i + 1; j < n_loci; ++j) {
      const auto s = stats::ld_from_counts(res.counts.at(i, j), counts[i],
                                           counts[j], n_samples);
      if (top.size() < 10) {
        top.push_back({i, j, s});
      } else {
        auto worst = top.begin();
        for (auto it = top.begin(); it != top.end(); ++it) {
          if (it->s.r2 < worst->s.r2) {
            worst = it;
          }
        }
        if (s.r2 > worst->s.r2) {
          *worst = {i, j, s};
        }
      }
    }
  }
  std::printf("strongest pairwise LD (top 10 by r^2):\n");
  std::printf("  %5s %5s | %7s %7s %7s\n", "locus", "locus", "r^2", "D'",
              "D");
  for (const auto& p : top) {
    std::printf("  %5zu %5zu | %7.3f %7.3f %+7.4f\n", p.i, p.j, p.s.r2,
                p.s.d_prime, p.s.d);
  }

  // Coarse heatmap: mean r^2 over 8x8-locus cells; LD blocks appear as
  // bright squares on the diagonal.
  std::printf("\nmean-r^2 heatmap (8-locus cells; '.':<0.05  '+':<0.2  "
              "'#':>=0.2):\n");
  const std::size_t cell = 8;
  for (std::size_t bi = 0; bi < n_loci / cell; ++bi) {
    std::printf("  ");
    for (std::size_t bj = 0; bj < n_loci / cell; ++bj) {
      double sum = 0.0;
      for (std::size_t i = bi * cell; i < (bi + 1) * cell; ++i) {
        for (std::size_t j = bj * cell; j < (bj + 1) * cell; ++j) {
          sum += stats::ld_from_counts(res.counts.at(i, j), counts[i],
                                       counts[j], n_samples)
                     .r2;
        }
      }
      const double mean = sum / (cell * cell);
      std::printf("%c", mean >= 0.2 ? '#' : (mean >= 0.05 ? '+' : '.'));
    }
    std::printf("\n");
  }
  return 0;
}
