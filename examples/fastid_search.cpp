// FastID identity search: the forensic workload of paper Section II-B.
//
// Builds a synthetic reference database (a scaled-down stand-in for the
// ~18M-profile FBI NDIS the paper sizes Fig. 8 after), plants a few known
// identities plus one degraded sample (simulated genotyping noise), runs
// the XOR comparison on a simulated GPU, and ranks candidates per query.
// It then projects the same search to the paper's full 20M-profile scale
// with the data-free estimator.
//
// Build & run:  ./build/examples/fastid_search [device] [profiles] [snps]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "io/rng.hpp"
#include "stats/forensic.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  const std::string device = argc > 1 ? argv[1] : "titanv";
  const std::size_t profiles =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
  const std::size_t snps =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 512;

  io::ProfileDbParams params;
  params.seed = 2026;
  const bits::BitMatrix db = io::generate_profile_db(profiles, snps,
                                                     params);

  // Three exact suspects plus one degraded sample: flip ~1 % of its sites.
  const std::vector<std::size_t> planted = {123, profiles / 2,
                                            profiles - 7};
  bits::BitMatrix queries = io::extract_queries(db, planted);
  bits::BitMatrix degraded = io::extract_queries(db, {planted[0]});
  io::Rng noise(99);
  std::size_t flipped = 0;
  for (std::size_t k = 0; k < snps; ++k) {
    if (noise.next_bernoulli(0.01)) {
      degraded.set(0, k, !degraded.get(0, k));
      ++flipped;
    }
  }
  bits::BitMatrix all_queries(queries.rows() + 1, snps);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t k = 0; k < snps; ++k) {
      all_queries.set(q, k, queries.get(q, k));
    }
  }
  for (std::size_t k = 0; k < snps; ++k) {
    all_queries.set(queries.rows(), k, degraded.get(0, k));
  }

  Context ctx = Context::gpu(device);
  const IdentitySearchResult result =
      ctx.identity_search(all_queries, db);
  std::printf("FastID search: %zu queries vs %zu profiles x %zu SNPs on "
              "%s\n",
              all_queries.rows(), profiles, snps,
              ctx.device_name().c_str());
  std::printf("kernel %.2f ms, end-to-end %.1f ms (%d chunks, %.1f ms of "
              "transfer hidden)\n\n",
              result.comparison.timing.kernel_s * 1e3,
              result.comparison.timing.end_to_end_s * 1e3,
              result.comparison.timing.chunks,
              result.comparison.timing.overlap_hidden_s * 1e3);

  for (std::size_t q = 0; q < all_queries.rows(); ++q) {
    const bool is_degraded = q == all_queries.rows() - 1;
    const auto row = result.comparison.counts.raw().subspan(
        q * profiles, profiles);
    const auto ranked = stats::rank_matches(row, snps, 1.0, 3);
    std::printf("query %zu%s: ", q,
                is_degraded ? " (degraded copy of the planted suspect)"
                            : "");
    std::printf("best=%zu with %u mismatches", ranked[0].reference_index,
                ranked[0].mismatches);
    if (ranked.size() > 1) {
      std::printf(" (runner-up: %zu with %u)", ranked[1].reference_index,
                  ranked[1].mismatches);
    }
    const std::size_t truth =
        is_degraded ? planted[0] : planted[q];
    std::printf("  -> %s\n", ranked[0].reference_index == truth
                                 ? "correct identification"
                                 : "MISSED");
  }
  std::printf("(the degraded sample had %zu of %zu sites flipped and must "
              "still rank first)\n\n",
              flipped, snps);

  // Project to paper scale without materializing 20M profiles.
  ComputeOptions proj;
  proj.functional = false;
  const auto full = ctx.estimate(32, 20'000'000, 1024,
                                 bits::Comparison::kXor, proj);
  std::printf("projected to Fig. 8 scale (32 queries vs 20M profiles x "
              "1024 SNPs):\n  end-to-end %.2f s in %d chunks on %s\n",
              full.end_to_end_s, full.chunks, full.device.c_str());
  return 0;
}
