// Future-work tour: the two extensions the paper's conclusion sketches,
// implemented and runnable.
//
//   1. Sparse SNP representation — compare a rare-variant cohort with the
//      dense bit-parallel engine and the sparse intersection engine,
//      verify identical results, and show where the modeled GPU crossover
//      sits.
//   2. Multi-GPU scaling — shard a forensic search across a DGX-2-like
//      box of simulated devices and watch end-to-end time amortize.
//
// Build & run:  ./build/examples/future_work
#include <cstdio>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "multi/multi_gpu.hpp"
#include "sparse/engine.hpp"

int main() {
  using namespace snp;

  // --- 1. sparse representation ---------------------------------------
  std::printf("== sparse representation (paper Section VII) ==\n");
  io::ProfileDbParams rare;
  rare.seed = 321;
  rare.maf_min = 0.001;
  rare.maf_max = 0.03;  // rare-variant panel
  const auto cohort = io::generate_profile_db(400, 4096, rare);
  const auto sparse = sparse::SparseBitMatrix::from_dense(cohort);
  std::printf("cohort: %zu profiles x %zu sites, density %.2f%% "
              "(%zu KiB dense, %zu KiB sparse)\n",
              cohort.rows(), cohort.bit_cols(), 100.0 * sparse.density(),
              cohort.size_bytes() / 1024, sparse.size_bytes() / 1024);

  const auto dense_gamma =
      bits::compare_reference(cohort, cohort, bits::Comparison::kAnd);
  const auto sparse_gamma =
      sparse::sparse_compare(sparse, sparse, bits::Comparison::kAnd);
  std::printf("dense and sparse engines agree: %s\n",
              dense_gamma == sparse_gamma ? "yes" : "NO (bug!)");

  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const sim::KernelShape shape{8192, 8192, 4096 / 32};
    const double d = sparse.density();
    const auto dense_t =
        sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, shape);
    const auto sparse_t =
        sparse::estimate_sparse_kernel(dev, cfg, shape, d, d);
    std::printf("  %-8s modeled 8192^2 LD: dense %.2f ms, sparse %.2f ms "
                "(crossover at %.2f%% density)\n",
                dev.name.c_str(), dense_t.seconds * 1e3,
                sparse_t.seconds * 1e3,
                100.0 * sparse::crossover_density(dev, shape));
  }

  // --- 2. multi-GPU ----------------------------------------------------
  std::printf("\n== multi-GPU sharding (paper Section VII) ==\n");
  multi::MultiGpuOptions opts;
  opts.per_device.functional = false;
  std::printf("FastID, 32 queries vs 40M profiles x 1024 SNPs on Titan V "
              "boxes:\n");
  for (const int devices : {1, 2, 4, 8}) {
    multi::MultiGpuContext box("titanv", devices);
    const auto t =
        box.estimate(32, 40'000'000, 1024, bits::Comparison::kXor, opts);
    std::printf("  %d device%s: %7.0f ms end-to-end\n", devices,
                devices == 1 ? " " : "s", t.end_to_end_s * 1e3);
  }

  // And a small functional multi-GPU run to prove bit-identical results.
  const auto db = io::generate_profile_db(3000, 256, {});
  const auto queries = io::extract_queries(db, {5, 1500});
  multi::MultiGpuContext box("vega64", 4);
  const auto multi_r = box.compare(queries, db, bits::Comparison::kXor);
  Context single = Context::gpu("vega64");
  const auto single_r = single.compare(queries, db, bits::Comparison::kXor);
  std::printf("4-way shard matches single device bit-for-bit: %s\n",
              multi_r.counts == single_r.counts ? "yes" : "NO (bug!)");
  return 0;
}
