// Cohort manipulation: merging batches and panels, subsetting, metadata
// consistency.
#include "io/cohort_ops.hpp"

#include <gtest/gtest.h>

#include "io/datagen.hpp"

namespace snp::io {
namespace {

PlinkLiteDataset cohort(std::size_t loci, std::size_t samples,
                        std::uint64_t seed, const std::string& chrom,
                        const std::string& sample_prefix) {
  PopulationParams p;
  p.seed = seed;
  auto ds = with_synthetic_metadata(generate_genotypes(loci, samples, p),
                                    chrom);
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    ds.loci[l].id = chrom + "_rs" + std::to_string(l);
  }
  for (std::size_t s = 0; s < ds.samples.size(); ++s) {
    ds.samples[s] = sample_prefix + std::to_string(s);
  }
  ds.missing_per_locus.assign(loci, 0);
  return ds;
}

TEST(CohortOps, MergeLoci) {
  auto a = cohort(5, 8, 1, "1", "s");
  auto b = cohort(3, 8, 2, "2", "s");
  const auto m = merge_loci(a, b);
  ASSERT_TRUE(m.consistent());
  EXPECT_EQ(m.loci.size(), 8u);
  EXPECT_EQ(m.samples, a.samples);
  EXPECT_EQ(m.loci[0].id, "1_rs0");
  EXPECT_EQ(m.loci[5].id, "2_rs0");
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(m.genotypes.at(2, s), a.genotypes.at(2, s));
    EXPECT_EQ(m.genotypes.at(6, s), b.genotypes.at(1, s));
  }
  EXPECT_EQ(m.missing_per_locus.size(), 8u);
}

TEST(CohortOps, MergeLociRejections) {
  auto a = cohort(5, 8, 1, "1", "s");
  auto b = cohort(3, 9, 2, "2", "s");  // different sample count
  EXPECT_THROW((void)merge_loci(a, b), std::invalid_argument);
  auto c = cohort(3, 8, 3, "1", "s");  // duplicate locus ids
  EXPECT_THROW((void)merge_loci(a, c), std::invalid_argument);
}

TEST(CohortOps, MergeSamples) {
  auto a = cohort(6, 4, 4, "1", "batchA_");
  auto b = cohort(6, 5, 5, "1", "batchB_");
  const auto m = merge_samples(a, b);
  ASSERT_TRUE(m.consistent());
  EXPECT_EQ(m.samples.size(), 9u);
  EXPECT_EQ(m.loci.size(), 6u);
  EXPECT_EQ(m.samples[0], "batchA_0");
  EXPECT_EQ(m.samples[4], "batchB_0");
  for (std::size_t l = 0; l < 6; ++l) {
    EXPECT_EQ(m.genotypes.at(l, 2), a.genotypes.at(l, 2));
    EXPECT_EQ(m.genotypes.at(l, 4 + 3), b.genotypes.at(l, 3));
  }
}

TEST(CohortOps, MergeSamplesRejections) {
  auto a = cohort(6, 4, 4, "1", "x");
  auto b = cohort(5, 5, 5, "1", "y");  // locus count mismatch
  EXPECT_THROW((void)merge_samples(a, b), std::invalid_argument);
  auto c = cohort(6, 5, 6, "1", "x");  // duplicate sample names
  EXPECT_THROW((void)merge_samples(a, c), std::invalid_argument);
  auto d = cohort(6, 5, 7, "1", "z");
  d.loci[3].pos += 1;  // locus metadata mismatch
  EXPECT_THROW((void)merge_samples(a, d), std::invalid_argument);
}

TEST(CohortOps, SubsetSamples) {
  const auto ds = cohort(4, 6, 8, "1", "s");
  const auto sub = subset_samples(ds, {"s4", "s1"});
  ASSERT_TRUE(sub.consistent());
  EXPECT_EQ(sub.samples, (std::vector<std::string>{"s4", "s1"}));
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(sub.genotypes.at(l, 0), ds.genotypes.at(l, 4));
    EXPECT_EQ(sub.genotypes.at(l, 1), ds.genotypes.at(l, 1));
  }
  EXPECT_THROW((void)subset_samples(ds, {"nope"}), std::invalid_argument);
}

TEST(CohortOps, SubsetLoci) {
  const auto ds = cohort(7, 3, 9, "1", "s");
  const auto sub = subset_loci(ds, {6, 0, 3});
  ASSERT_TRUE(sub.consistent());
  ASSERT_EQ(sub.loci.size(), 3u);
  EXPECT_EQ(sub.loci[0].id, "1_rs6");
  EXPECT_EQ(sub.loci[1].id, "1_rs0");
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sub.genotypes.at(0, s), ds.genotypes.at(6, s));
    EXPECT_EQ(sub.genotypes.at(2, s), ds.genotypes.at(3, s));
  }
  EXPECT_THROW((void)subset_loci(ds, {7}), std::out_of_range);
}

TEST(CohortOps, RoundTripThroughMergeAndSubset) {
  // Splitting a cohort by samples and merging the halves back restores
  // the original (module the sample order chosen).
  const auto ds = cohort(5, 6, 10, "1", "s");
  const auto left = subset_samples(ds, {"s0", "s1", "s2"});
  const auto right = subset_samples(ds, {"s3", "s4", "s5"});
  const auto merged = merge_samples(left, right);
  EXPECT_EQ(merged.samples, ds.samples);
  for (std::size_t l = 0; l < 5; ++l) {
    for (std::size_t s = 0; s < 6; ++s) {
      EXPECT_EQ(merged.genotypes.at(l, s), ds.genotypes.at(l, s));
    }
  }
}

}  // namespace
}  // namespace snp::io
