// On-disk formats: round trips, corruption rejection, invariants.
#include "io/formats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"

namespace snp::io {
namespace {

TEST(Formats, BitMatrixRoundTrip) {
  const auto m = random_bitmatrix(17, 333, 0.4, 61, 4);
  std::stringstream ss;
  save_bitmatrix(m, ss);
  const auto back = load_bitmatrix(ss);
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.words64_per_row(), m.words64_per_row());
}

TEST(Formats, BitMatrixBadMagicRejected) {
  std::stringstream ss;
  ss << "NOPE garbage";
  EXPECT_THROW((void)load_bitmatrix(ss), std::runtime_error);
}

TEST(Formats, BitMatrixTruncatedRejected) {
  const auto m = random_bitmatrix(8, 100, 0.5, 62);
  std::stringstream ss;
  save_bitmatrix(m, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_bitmatrix(cut), std::runtime_error);
}

TEST(Formats, BitMatrixDirtyPaddingRejected) {
  bits::BitMatrix m(1, 10, 1);  // 54 padding bits in the single word
  std::stringstream ss;
  save_bitmatrix(m, ss);
  std::string blob = ss.str();
  blob[blob.size() - 1] = '\x80';  // set a padding bit
  std::stringstream dirty(blob);
  EXPECT_THROW((void)load_bitmatrix(dirty), std::runtime_error);
}

TEST(Formats, CountMatrixRoundTrip) {
  bits::CountMatrix c(3, 7);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      c.at(i, j) = static_cast<std::uint32_t>(i * 100 + j);
    }
  }
  std::stringstream ss;
  save_countmatrix(c, ss);
  EXPECT_TRUE(load_countmatrix(ss) == c);
}

TEST(Formats, GenotypeTsvRoundTrip) {
  bits::GenotypeMatrix g(4, 6);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t s = 0; s < 6; ++s) {
      g.at(l, s) = static_cast<std::uint8_t>((l + s) % 3);
    }
  }
  std::stringstream ss;
  save_genotypes_tsv(g, ss);
  const auto back = load_genotypes_tsv(ss);
  ASSERT_EQ(back.loci(), 4u);
  ASSERT_EQ(back.samples(), 6u);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t s = 0; s < 6; ++s) {
      EXPECT_EQ(back.at(l, s), g.at(l, s));
    }
  }
}

TEST(Formats, GenotypeTsvRejectsBadValues) {
  std::stringstream ss;
  ss << "#loci\t1\tsamples\t2\n0\t3\n";
  EXPECT_THROW((void)load_genotypes_tsv(ss), std::runtime_error);
  std::stringstream bad_header;
  bad_header << "wrong\t1\theader\t2\n";
  EXPECT_THROW((void)load_genotypes_tsv(bad_header), std::runtime_error);
}

TEST(Formats, FileRoundTrip) {
  // Unique subdirectory: TempDir() is shared with every concurrently
  // running test process, so generic names like "m.sbm" can collide.
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "snpcmp_formats_FileRoundTrip";
  std::filesystem::create_directories(dir);
  const auto path = dir / "m.sbm";
  const auto m = random_bitmatrix(5, 80, 0.5, 63);
  save_bitmatrix(m, path);
  EXPECT_EQ(load_bitmatrix(path), m);
  EXPECT_THROW((void)load_bitmatrix(std::filesystem::path(dir) / "nope"),
               std::runtime_error);
}

}  // namespace
}  // namespace snp::io
