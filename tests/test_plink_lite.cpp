// PLINK-lite format: round trips, metadata synthesis, malformed input.
#include "io/plink_lite.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"

namespace snp::io {
namespace {

PlinkLiteDataset sample_dataset() {
  PopulationParams p;
  p.seed = 501;
  return with_synthetic_metadata(generate_genotypes(6, 10, p), "chr2",
                                 5000, 250);
}

TEST(PlinkLite, SyntheticMetadata) {
  const auto ds = sample_dataset();
  ASSERT_TRUE(ds.consistent());
  EXPECT_EQ(ds.loci.size(), 6u);
  EXPECT_EQ(ds.samples.size(), 10u);
  EXPECT_EQ(ds.loci[0].chrom, "chr2");
  EXPECT_EQ(ds.loci[0].pos, 5000u);
  EXPECT_EQ(ds.loci[3].pos, 5750u);
  EXPECT_EQ(ds.loci[2].id, "rs100002");
  EXPECT_EQ(ds.samples[9], "sample9");
}

TEST(PlinkLite, RoundTrip) {
  const auto ds = sample_dataset();
  std::stringstream ss;
  save_plink_lite(ds, ss);
  const auto back = load_plink_lite(ss);
  ASSERT_TRUE(back.consistent());
  EXPECT_EQ(back.samples, ds.samples);
  ASSERT_EQ(back.loci.size(), ds.loci.size());
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    EXPECT_EQ(back.loci[l].id, ds.loci[l].id);
    EXPECT_EQ(back.loci[l].pos, ds.loci[l].pos);
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      EXPECT_EQ(back.genotypes.at(l, s), ds.genotypes.at(l, s));
    }
  }
  EXPECT_EQ(back.missing_calls, 0u);
}

TEST(PlinkLite, MissingCallsDecodeToZero) {
  std::stringstream ss;
  ss << "#plink-lite v1\n#samples\ta\tb\tc\n"
     << "1\trs1\t100\tA\tG\t.\t2\t1\n"
     << "1\trs2\t200\tC\tT\t0\t.\t.\n";
  const auto ds = load_plink_lite(ss);
  EXPECT_EQ(ds.missing_calls, 3u);
  EXPECT_EQ(ds.genotypes.at(0, 0), 0);
  EXPECT_EQ(ds.genotypes.at(0, 1), 2);
  EXPECT_EQ(ds.genotypes.at(1, 2), 0);
}

TEST(PlinkLite, CommentsAndBlankLinesSkipped) {
  std::stringstream ss;
  ss << "#plink-lite v1\n#samples\ta\n\n# a comment\n"
     << "1\trs1\t100\tA\tG\t1\n";
  const auto ds = load_plink_lite(ss);
  EXPECT_EQ(ds.loci.size(), 1u);
}

TEST(PlinkLite, MalformedInputsRejected) {
  {
    std::stringstream ss;
    ss << "not a header\n";
    EXPECT_THROW((void)load_plink_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;
    ss << "#plink-lite v1\nno samples line\n";
    EXPECT_THROW((void)load_plink_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // dosage out of range
    ss << "#plink-lite v1\n#samples\ta\n1\trs1\t1\tA\tG\t3\n";
    EXPECT_THROW((void)load_plink_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // wrong call count
    ss << "#plink-lite v1\n#samples\ta\tb\n1\trs1\t1\tA\tG\t1\n";
    EXPECT_THROW((void)load_plink_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // no samples at all
    ss << "#plink-lite v1\n#samples\n";
    EXPECT_THROW((void)load_plink_lite(ss), std::runtime_error);
  }
}

TEST(PlinkLite, InconsistentDatasetRejectedOnSave) {
  auto ds = sample_dataset();
  ds.samples.pop_back();
  std::stringstream ss;
  EXPECT_THROW(save_plink_lite(ds, ss), std::invalid_argument);
}

TEST(PlinkLite, FileRoundTrip) {
  const auto path =
      std::filesystem::path(::testing::TempDir()) / "ds.plink";
  const auto ds = sample_dataset();
  save_plink_lite(ds, path);
  const auto back = load_plink_lite(path);
  EXPECT_EQ(back.loci.size(), ds.loci.size());
  EXPECT_THROW(
      (void)load_plink_lite(std::filesystem::path("/nonexistent/x")),
      std::runtime_error);
}

}  // namespace
}  // namespace snp::io
