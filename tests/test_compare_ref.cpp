// The comparison operations (Eqs. 1-3): the word-level reference engine
// against the bit-level oracle, plus algebraic identities of the three ops.
#include "bits/compare.hpp"

#include <gtest/gtest.h>

#include "io/datagen.hpp"

namespace snp::bits {
namespace {

TEST(CompareApply, WordSemantics) {
  const Word64 a = 0b1100;
  const Word64 b = 0b1010;
  EXPECT_EQ(apply(Comparison::kAnd, a, b), Word64{0b1000});
  EXPECT_EQ(apply(Comparison::kXor, a, b), Word64{0b0110});
  EXPECT_EQ(apply(Comparison::kAndNot, a, b), Word64{0b0100});
}

TEST(CompareApply, LogicOpsPerWord) {
  EXPECT_EQ(logic_ops_per_word(Comparison::kAnd, false), 2);
  EXPECT_EQ(logic_ops_per_word(Comparison::kXor, false), 2);
  EXPECT_EQ(logic_ops_per_word(Comparison::kAndNot, true), 2);
  EXPECT_EQ(logic_ops_per_word(Comparison::kAndNot, false), 3);
}

TEST(CompareReference, RejectsMismatchedK) {
  const BitMatrix a(2, 64);
  const BitMatrix b(2, 65);
  EXPECT_THROW((void)compare_reference(a, b, Comparison::kAnd),
               std::invalid_argument);
}

TEST(CompareReference, KnownSmallCase) {
  BitMatrix a(2, 8);
  BitMatrix b(2, 8);
  // a0 = 11110000, a1 = 10101010; b0 = 11001100, b1 = 00001111
  for (const std::size_t i : {0u, 1u, 2u, 3u}) a.set(0, i, true);
  for (const std::size_t i : {0u, 2u, 4u, 6u}) a.set(1, i, true);
  for (const std::size_t i : {0u, 1u, 4u, 5u}) b.set(0, i, true);
  for (const std::size_t i : {4u, 5u, 6u, 7u}) b.set(1, i, true);
  const CountMatrix and_c = compare_reference(a, b, Comparison::kAnd);
  EXPECT_EQ(and_c.at(0, 0), 2u);  // {0,1}
  EXPECT_EQ(and_c.at(0, 1), 0u);
  EXPECT_EQ(and_c.at(1, 0), 2u);  // {0,4}
  EXPECT_EQ(and_c.at(1, 1), 2u);  // {4,6}
  const CountMatrix xor_c = compare_reference(a, b, Comparison::kXor);
  EXPECT_EQ(xor_c.at(0, 0), 4u);
  EXPECT_EQ(xor_c.at(1, 1), 4u);  // {0,2} ^ {5,7}
  const CountMatrix andn_c = compare_reference(a, b, Comparison::kAndNot);
  EXPECT_EQ(andn_c.at(0, 0), 2u);  // {2,3}
  EXPECT_EQ(andn_c.at(0, 1), 4u);  // all of a0
}

struct RefCase {
  std::size_t m, n, bits;
  double density;
};

class ReferenceVsOracle
    : public ::testing::TestWithParam<std::tuple<RefCase, Comparison>> {};

TEST_P(ReferenceVsOracle, Agree) {
  const auto& [c, op] = GetParam();
  const BitMatrix a = io::random_bitmatrix(c.m, c.bits, c.density, 11);
  const BitMatrix b = io::random_bitmatrix(c.n, c.bits, c.density, 22);
  EXPECT_EQ(compare_reference(a, b, op), compare_bitwise_oracle(a, b, op));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReferenceVsOracle,
    ::testing::Combine(
        ::testing::Values(RefCase{1, 1, 1, 0.5}, RefCase{3, 5, 63, 0.5},
                          RefCase{4, 4, 64, 0.2}, RefCase{5, 3, 65, 0.8},
                          RefCase{8, 2, 200, 0.1},
                          RefCase{2, 9, 129, 0.9}),
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot)));

TEST(CompareIdentities, AndSelfIsSymmetricWithMarginalDiagonal) {
  const BitMatrix a = io::random_bitmatrix(6, 300, 0.4, 5);
  const CountMatrix c = compare_reference(a, a, Comparison::kAnd);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(c.at(i, i), a.row_popcount(i));
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(c.at(i, j), c.at(j, i));
    }
  }
}

TEST(CompareIdentities, XorSelfDiagonalIsZero) {
  const BitMatrix a = io::random_bitmatrix(5, 256, 0.5, 6);
  const CountMatrix c = compare_reference(a, a, Comparison::kXor);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.at(i, i), 0u);
  }
}

TEST(CompareIdentities, InclusionExclusion) {
  // |a ^ b| = |a| + |b| - 2|a & b|  and  |a & ~b| = |a| - |a & b|.
  const BitMatrix a = io::random_bitmatrix(4, 500, 0.3, 77);
  const BitMatrix b = io::random_bitmatrix(4, 500, 0.6, 78);
  const CountMatrix land = compare_reference(a, b, Comparison::kAnd);
  const CountMatrix lxor = compare_reference(a, b, Comparison::kXor);
  const CountMatrix landn = compare_reference(a, b, Comparison::kAndNot);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto pa = static_cast<std::uint32_t>(a.row_popcount(i));
    for (std::size_t j = 0; j < 4; ++j) {
      const auto pb = static_cast<std::uint32_t>(b.row_popcount(j));
      EXPECT_EQ(lxor.at(i, j), pa + pb - 2 * land.at(i, j));
      EXPECT_EQ(landn.at(i, j), pa - land.at(i, j));
    }
  }
}

TEST(CompareIdentities, AndNotEqualsAndAgainstNegated) {
  // The Eq. 3 simplification: (r ^ m) & r == r & ~m, so AND-NOT against m
  // equals AND against the pre-negated ~m.
  const BitMatrix r = io::random_bitmatrix(5, 333, 0.25, 99);
  const BitMatrix m = io::random_bitmatrix(5, 333, 0.5, 100);
  EXPECT_EQ(compare_reference(r, m, Comparison::kAndNot),
            compare_reference(r, m.negated(), Comparison::kAnd));
}

TEST(CompareIdentities, MixtureDefinitionMatchesSimplification) {
  // popc((r ^ m) & r) == popc(r & ~m), verified bit-by-bit.
  const BitMatrix r = io::random_bitmatrix(3, 128, 0.3, 1);
  const BitMatrix m = io::random_bitmatrix(3, 128, 0.5, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      std::uint32_t direct = 0;
      for (std::size_t k = 0; k < 128; ++k) {
        const bool rv = r.get(i, k);
        const bool mv = m.get(j, k);
        direct += ((rv != mv) && rv) ? 1u : 0u;
      }
      EXPECT_EQ(direct,
                compare_reference(r, m, Comparison::kAndNot).at(i, j));
    }
  }
}

TEST(CompareIdentities, PaddingContributesNothing) {
  // Same logical content, different strides -> identical counts.
  const BitMatrix a = io::random_bitmatrix(4, 100, 0.5, 10);
  const BitMatrix b = io::random_bitmatrix(4, 100, 0.5, 20);
  const auto base = compare_reference(a, b, Comparison::kXor);
  EXPECT_EQ(compare_reference(a.with_stride(8), b.with_stride(8),
                              Comparison::kXor),
            base);
}

}  // namespace
}  // namespace snp::bits
