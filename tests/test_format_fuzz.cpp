// Format robustness: every binary loader must reject (throw, never crash
// or hang) arbitrary truncations and byte corruptions of valid files, and
// text loaders must survive line-level mangling. Parameterized sweeps
// stand in for a fuzzer in this offline environment.
#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "io/packed_genotypes.hpp"
#include "io/plink_lite.hpp"
#include "io/rng.hpp"
#include "io/vcf_lite.hpp"

namespace snp::io {
namespace {

std::string valid_sbm() {
  std::stringstream ss;
  save_bitmatrix(random_bitmatrix(6, 100, 0.5, 1), ss);
  return ss.str();
}

std::string valid_sgp() {
  std::stringstream ss;
  save_packed_genotypes(
      PackedGenotypes::pack(generate_genotypes(5, 9, {})), ss);
  return ss.str();
}

std::string valid_scm() {
  bits::CountMatrix c(3, 4);
  c.at(1, 2) = 7;
  std::stringstream ss;
  save_countmatrix(c, ss);
  return ss.str();
}

class TruncationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruncationSweep, BinaryLoadersRejectTruncation) {
  const double frac = GetParam();
  for (const auto& blob : {valid_sbm(), valid_sgp(), valid_scm()}) {
    const auto cut_len = static_cast<std::size_t>(
        frac * static_cast<double>(blob.size()));
    if (cut_len >= blob.size()) {
      continue;
    }
    const std::string cut = blob.substr(0, cut_len);
    bool threw_sbm = false, threw_sgp = false, threw_scm = false;
    try {
      std::stringstream ss(cut);
      (void)load_bitmatrix(ss);
    } catch (const std::exception&) {
      threw_sbm = true;
    }
    try {
      std::stringstream ss(cut);
      (void)load_packed_genotypes(ss);
    } catch (const std::exception&) {
      threw_sgp = true;
    }
    try {
      std::stringstream ss(cut);
      (void)load_countmatrix(ss);
    } catch (const std::exception&) {
      threw_scm = true;
    }
    // A truncated blob can only load under the *matching* loader when the
    // cut happens to land beyond that format's payload — impossible here
    // because cut_len < blob.size(); so at least the matching loader must
    // throw, and the mismatched ones always do (magic check).
    EXPECT_TRUE(threw_sbm || threw_sgp || threw_scm);
    EXPECT_GE(static_cast<int>(threw_sbm) + threw_sgp + threw_scm, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(CutPoints, TruncationSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.45, 0.7,
                                           0.95, 0.999));

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, HeaderCorruptionNeverCrashes) {
  // Flip random bytes in the header region; the loader must either throw
  // or produce a structurally sane object (never crash / overflow).
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::string blob = valid_sbm();
    const std::size_t header = 4 + 3 * 8;
    const auto at = static_cast<std::size_t>(rng.next_below(header));
    blob[at] = static_cast<char>(rng.next_u64() & 0xff);
    try {
      std::stringstream ss(blob);
      const auto m = load_bitmatrix(ss);
      // If it loaded, dimensions must be internally consistent.
      EXPECT_GE(m.words64_per_row() * 64, m.bit_cols());
      EXPECT_TRUE(m.padding_is_zero());
    } catch (const std::exception&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(TextFuzz, PlinkLiteLineMangling) {
  PopulationParams p;
  p.seed = 700;
  const auto ds =
      with_synthetic_metadata(generate_genotypes(4, 6, p));
  std::stringstream good;
  save_plink_lite(ds, good);
  const std::string text = good.str();
  // Drop a field from a random data line; the loader must throw.
  const auto first_nl = text.find('\n', text.find('\n') + 1);
  std::string mangled = text;
  const auto tab = mangled.rfind('\t');
  mangled.erase(tab, 2);  // removes the final separator + one digit
  std::stringstream bad(mangled);
  EXPECT_THROW((void)load_plink_lite(bad), std::runtime_error);
  (void)first_nl;
}

TEST(TextFuzz, VcfLiteGarbageLines) {
  const char* cases[] = {
      "garbage\n",
      "##meta only, no header\n",
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts\n"
      "1\tnot_a_number\trs\tA\tG\t.\t.\t.\tGT\t0/0\n",
  };
  for (const char* c : cases) {
    std::stringstream ss(c);
    EXPECT_THROW((void)load_vcf_lite(ss), std::exception) << c;
  }
}

}  // namespace
}  // namespace snp::io
