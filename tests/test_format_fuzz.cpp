// Format robustness: every binary loader must reject (throw, never crash
// or hang) arbitrary truncations and byte corruptions of valid files, and
// text loaders must survive line-level mangling. Parameterized sweeps
// stand in for a fuzzer in this offline environment.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "io/packed_genotypes.hpp"
#include "io/plink_lite.hpp"
#include "io/rng.hpp"
#include "io/vcf_lite.hpp"
#include "rt/fault.hpp"
#include "rt/status.hpp"

namespace snp::io {
namespace {

std::string valid_sbm() {
  std::stringstream ss;
  save_bitmatrix(random_bitmatrix(6, 100, 0.5, 1), ss);
  return ss.str();
}

std::string valid_sgp() {
  std::stringstream ss;
  save_packed_genotypes(
      PackedGenotypes::pack(generate_genotypes(5, 9, {})), ss);
  return ss.str();
}

std::string valid_scm() {
  bits::CountMatrix c(3, 4);
  c.at(1, 2) = 7;
  std::stringstream ss;
  save_countmatrix(c, ss);
  return ss.str();
}

class TruncationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruncationSweep, BinaryLoadersRejectTruncation) {
  const double frac = GetParam();
  for (const auto& blob : {valid_sbm(), valid_sgp(), valid_scm()}) {
    const auto cut_len = static_cast<std::size_t>(
        frac * static_cast<double>(blob.size()));
    if (cut_len >= blob.size()) {
      continue;
    }
    const std::string cut = blob.substr(0, cut_len);
    bool threw_sbm = false, threw_sgp = false, threw_scm = false;
    try {
      std::stringstream ss(cut);
      (void)load_bitmatrix(ss);
    } catch (const std::exception&) {
      threw_sbm = true;
    }
    try {
      std::stringstream ss(cut);
      (void)load_packed_genotypes(ss);
    } catch (const std::exception&) {
      threw_sgp = true;
    }
    try {
      std::stringstream ss(cut);
      (void)load_countmatrix(ss);
    } catch (const std::exception&) {
      threw_scm = true;
    }
    // A truncated blob can only load under the *matching* loader when the
    // cut happens to land beyond that format's payload — impossible here
    // because cut_len < blob.size(); so at least the matching loader must
    // throw, and the mismatched ones always do (magic check).
    EXPECT_TRUE(threw_sbm || threw_sgp || threw_scm);
    EXPECT_GE(static_cast<int>(threw_sbm) + threw_sgp + threw_scm, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(CutPoints, TruncationSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.45, 0.7,
                                           0.95, 0.999));

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, HeaderCorruptionNeverCrashes) {
  // Flip random bytes in the header region; the loader must either throw
  // or produce a structurally sane object (never crash / overflow).
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::string blob = valid_sbm();
    const std::size_t header = 4 + 3 * 8;
    const auto at = static_cast<std::size_t>(rng.next_below(header));
    blob[at] = static_cast<char>(rng.next_u64() & 0xff);
    try {
      std::stringstream ss(blob);
      const auto m = load_bitmatrix(ss);
      // If it loaded, dimensions must be internally consistent.
      EXPECT_GE(m.words64_per_row() * 64, m.bit_cols());
      EXPECT_TRUE(m.padding_is_zero());
    } catch (const std::exception&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(TextFuzz, PlinkLiteLineMangling) {
  PopulationParams p;
  p.seed = 700;
  const auto ds =
      with_synthetic_metadata(generate_genotypes(4, 6, p));
  std::stringstream good;
  save_plink_lite(ds, good);
  const std::string text = good.str();
  // Drop a field from a random data line; the loader must throw.
  const auto first_nl = text.find('\n', text.find('\n') + 1);
  std::string mangled = text;
  const auto tab = mangled.rfind('\t');
  mangled.erase(tab, 2);  // removes the final separator + one digit
  std::stringstream bad(mangled);
  EXPECT_THROW((void)load_plink_lite(bad), std::runtime_error);
  (void)first_nl;
}

TEST(TextFuzz, VcfLiteGarbageLines) {
  const char* cases[] = {
      "garbage\n",
      "##meta only, no header\n",
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts\n"
      "1\tnot_a_number\trs\tA\tG\t.\t.\t.\tGT\t0/0\n",
  };
  for (const char* c : cases) {
    std::stringstream ss(c);
    EXPECT_THROW((void)load_vcf_lite(ss), std::exception) << c;
  }
}

// --- rt::Status loader API (docs/robustness.md): truncation at *every*
// byte boundary must come back as a structured kIoCorrupt with the byte
// offset where parsing stopped — never a crash, hang, or silent success.

TEST(StatusApi, BinaryLoadersFlagEveryTruncationBoundaryWithOffset) {
  const struct {
    const char* name;
    std::string blob;
    std::function<rt::Status(std::istream&)> try_load;
  } cases[] = {
      {"sbm", valid_sbm(),
       [](std::istream& is) {
         bits::BitMatrix out;
         return try_load_bitmatrix(is, out);
       }},
      {"sgp", valid_sgp(),
       [](std::istream& is) {
         PackedGenotypes out;
         return try_load_packed_genotypes(is, out);
       }},
      {"scm", valid_scm(),
       [](std::istream& is) {
         bits::CountMatrix out;
         return try_load_countmatrix(is, out);
       }},
  };
  for (const auto& c : cases) {
    for (std::size_t cut = 0; cut < c.blob.size(); ++cut) {
      std::stringstream ss(c.blob.substr(0, cut));
      const rt::Status st = c.try_load(ss);
      ASSERT_FALSE(st.ok()) << c.name << " truncated at byte " << cut;
      EXPECT_EQ(st.code, rt::ErrorCode::kIoCorrupt)
          << c.name << " @" << cut << ": " << st.to_string();
      EXPECT_LE(st.offset, cut) << c.name << " @" << cut;
    }
    // The untruncated blob still loads clean through the same API.
    std::stringstream ss(c.blob);
    EXPECT_TRUE(c.try_load(ss).ok()) << c.name;
  }
}

TEST(StatusApi, TextLoadersNeverCrashOnTruncation) {
  // Text formats may truncate onto a line boundary and legitimately
  // parse as a shorter file; the contract is structured-status-or-ok,
  // never a crash or an unclassified escape.
  PopulationParams p;
  p.seed = 31;
  const auto ds = with_synthetic_metadata(generate_genotypes(4, 6, p));
  std::stringstream plink_ss, vcf_ss;
  save_plink_lite(ds, plink_ss);
  save_vcf_lite(ds, vcf_ss);
  const std::string plink_text = plink_ss.str();
  const std::string vcf_text = vcf_ss.str();
  for (std::size_t cut = 0; cut < plink_text.size(); ++cut) {
    std::stringstream ss(plink_text.substr(0, cut));
    PlinkLiteDataset out;
    const rt::Status st = try_load_plink_lite(ss, out);
    if (!st.ok()) {
      EXPECT_EQ(st.code, rt::ErrorCode::kIoCorrupt) << "plink @" << cut;
    }
  }
  for (std::size_t cut = 0; cut < vcf_text.size(); ++cut) {
    std::stringstream ss(vcf_text.substr(0, cut));
    PlinkLiteDataset out;
    const rt::Status st = try_load_vcf_lite(ss, out);
    if (!st.ok()) {
      EXPECT_EQ(st.code, rt::ErrorCode::kIoCorrupt) << "vcf @" << cut;
    }
  }
}

TEST(StatusApi, ThrowingAndStatusLoadersAgree) {
  const std::string blob = valid_sbm();
  const std::string cut = blob.substr(0, blob.size() / 2);
  std::stringstream ss1(cut);
  bits::BitMatrix out;
  const rt::Status st = try_load_bitmatrix(ss1, out);
  ASSERT_FALSE(st.ok());
  std::stringstream ss2(cut);
  try {
    (void)load_bitmatrix(ss2);
    FAIL() << "expected rt::Error";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), st.code);
    EXPECT_EQ(e.status().offset, st.offset);
  }
}

TEST(StatusApi, IoInjectionSiteSynthesizesCorruption) {
  rt::ScopedFaultPlan plan(rt::FaultPlan::parse("io:after=1"));
  const std::string blob = valid_sbm();
  std::stringstream ss(blob);
  bits::BitMatrix out;
  const rt::Status st = try_load_bitmatrix(ss, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code, rt::ErrorCode::kIoCorrupt);
  EXPECT_TRUE(st.injected);
  // Second load: the one-shot plan is spent, the bytes are fine.
  std::stringstream ss2(blob);
  EXPECT_TRUE(try_load_bitmatrix(ss2, out).ok());
}

}  // namespace
}  // namespace snp::io
