// Device-level lockstep simulation: single-core agreement with CoreSim,
// bus conservation laws, and the mechanistic validation of the soft-min
// contention curve the timing model calibrates.
#include "sim/device_sim.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/memory.hpp"

namespace snp::sim {
namespace {

model::GpuSpec probe_device() {
  auto d = model::gtx980();
  d.n_cores = 64;  // allow wide sweeps regardless of the real core count
  return d;
}

/// A memory/compute mix: per iteration, `ldgs` independent global loads
/// and `adds` independent integer adds.
Program mem_mix(int ldgs, int adds, std::uint64_t iterations) {
  Program p;
  constexpr int kLdgRegs = 8;
  constexpr int kAddRegs = 4;
  for (int i = 0; i < ldgs; ++i) {
    p.body.push_back({Opcode::kLdg, i % kLdgRegs, kNoReg, kNoReg, 0});
  }
  for (int j = 0; j < adds; ++j) {
    const int r = kLdgRegs + j % kAddRegs;
    p.body.push_back({Opcode::kAdd, r, r, kNoReg, 0});
  }
  p.iterations = iterations;
  for (int r = 0; r < kLdgRegs + kAddRegs; ++r) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, r, kNoReg, 0});
  }
  return p;
}

TEST(DeviceSim, RejectsBadConstruction) {
  DramBusSpec bad;
  bad.bytes_per_cycle = 0.0;
  EXPECT_THROW(DeviceSim(probe_device(), bad), std::invalid_argument);
  auto dev = probe_device();
  dev.pipes.clear();
  EXPECT_THROW(DeviceSim(dev, DramBusSpec{}), std::invalid_argument);
  const DeviceSim ok(probe_device(), DramBusSpec{});
  EXPECT_THROW((void)ok.run(mem_mix(1, 1, 1), 0, 1, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)ok.run(mem_mix(1, 1, 1), 1, 0, 1.0),
               std::invalid_argument);
}

TEST(DeviceSim, SingleCoreTracksCoreSim) {
  // With an effectively infinite bus, one DeviceSim core and CoreSim must
  // agree closely on a compute-heavy workload.
  const auto dev = probe_device();
  SimOptions opts;
  opts.loop_overhead_instrs = 0;
  const auto prog = independent_streams(Opcode::kAdd, 8, 8, 128);
  DramBusSpec bus;
  bus.bytes_per_cycle = 1e9;
  const DeviceSim dsim(dev, bus, opts);
  const CoreSim csim(dev, opts);
  const auto ds = dsim.run(prog, 8, 1, 4.0);
  const auto cs = csim.run(prog, 8);
  EXPECT_NEAR(static_cast<double>(ds.core_cycles[0]),
              static_cast<double>(cs.cycles),
              0.1 * static_cast<double>(cs.cycles));
  EXPECT_EQ(ds.instructions, cs.instructions);
}

TEST(DeviceSim, BusConservation) {
  const auto dev = probe_device();
  const auto prog = mem_mix(2, 4, 64);
  const DeviceSim dsim(dev, DramBusSpec{});
  constexpr double kBytes = 16.0;
  const auto stats = dsim.run(prog, 4, 3, kBytes);
  // Every LDG body instr plus every STG epilogue moves kBytes, per group,
  // per core.
  const double mem_ops = (2.0 * 64 + 12) * 4 * 3;
  EXPECT_NEAR(stats.dram_bytes_served, mem_ops * kBytes, 1e-9);
  EXPECT_GT(stats.bus_utilization, 0.0);
  EXPECT_LE(stats.bus_utilization, 1.0 + 1e-9);
}

TEST(DeviceSim, GenerousBusScalesPerfectly) {
  const auto dev = probe_device();
  SimOptions opts;
  opts.loop_overhead_instrs = 0;
  DramBusSpec bus;
  bus.bytes_per_cycle = 1e9;  // never the bottleneck
  const DeviceSim dsim(dev, bus, opts);
  const auto prog = mem_mix(1, 8, 128);
  const auto one = dsim.run(prog, 8, 1, 128.0);
  const auto many = dsim.run(prog, 8, 16, 128.0);
  EXPECT_NEAR(static_cast<double>(many.cycles),
              static_cast<double>(one.cycles),
              0.05 * static_cast<double>(one.cycles));
}

TEST(DeviceSim, SaturatedBusMatchesSoftMinAsymptote) {
  // The mechanistic check: measure single-core demand, then push core
  // counts far past saturation and compare per-core efficiency against
  // the analytic bandwidth share B / (n * d) the soft-min curve encodes.
  const auto dev = probe_device();
  SimOptions opts;
  opts.loop_overhead_instrs = 0;
  DramBusSpec bus;
  bus.bytes_per_cycle = 256.0;
  const DeviceSim dsim(dev, bus, opts);
  const auto prog = mem_mix(2, 2, 96);
  constexpr double kBytes = 128.0;

  const auto solo = dsim.run(prog, 8, 1, kBytes);
  const double demand_per_core =
      solo.dram_bytes_served / static_cast<double>(solo.core_cycles[0]);
  ASSERT_GT(demand_per_core, 0.0);

  for (const int n : {8, 16, 32}) {
    const auto t = dsim.run(prog, 8, n, kBytes);
    const double eff = static_cast<double>(solo.core_cycles[0]) /
                       static_cast<double>(t.cycles);
    const double share = bus.bytes_per_cycle / (n * demand_per_core);
    if (share < 0.8) {  // well past saturation
      EXPECT_NEAR(eff, share, 0.2 * share)
          << n << " cores: eff=" << eff << " share=" << share;
      // And the bus itself is essentially fully utilized.
      EXPECT_GT(t.bus_utilization, 0.9);
    }
  }
}

TEST(DeviceSim, EfficiencyIsMonotoneInCores) {
  const auto dev = probe_device();
  SimOptions opts;
  opts.loop_overhead_instrs = 0;
  DramBusSpec bus;
  bus.bytes_per_cycle = 512.0;
  const DeviceSim dsim(dev, bus, opts);
  const auto prog = mem_mix(2, 2, 64);
  const auto solo = dsim.run(prog, 8, 1, 128.0);
  double prev_eff = 1e9;
  for (const int n : {1, 2, 4, 8, 16, 32, 64}) {
    const auto t = dsim.run(prog, 8, n, 128.0);
    const double eff = static_cast<double>(solo.core_cycles[0]) /
                       static_cast<double>(t.cycles);
    EXPECT_LE(eff, prev_eff * 1.05) << n;
    prev_eff = eff;
  }
  EXPECT_LT(prev_eff, 0.35);  // 64 cores on this bus are deep in contention
}

TEST(DeviceSim, SoftMinCurveQualitativeAgreement) {
  // Across the whole sweep, the measured efficiency curve and the
  // calibrated soft-min (matched at the asymptote) should agree in shape:
  // near 1 below saturation, ~share beyond it.
  const auto dev = probe_device();
  SimOptions opts;
  opts.loop_overhead_instrs = 0;
  DramBusSpec bus;
  bus.bytes_per_cycle = 1024.0;
  const DeviceSim dsim(dev, bus, opts);
  const auto prog = mem_mix(2, 2, 64);
  const auto solo = dsim.run(prog, 8, 1, 128.0);
  const double d =
      solo.dram_bytes_served / static_cast<double>(solo.core_cycles[0]);

  auto soft_min = [&](int n) {
    const double ratio = n * d / bus.bytes_per_cycle;
    return std::pow(1.0 + std::pow(ratio, 4.0), -0.25);
  };
  for (const int n : {2, 8, 32, 64}) {
    const auto t = dsim.run(prog, 8, n, 128.0);
    const double eff = static_cast<double>(solo.core_cycles[0]) /
                       static_cast<double>(t.cycles);
    EXPECT_NEAR(eff, soft_min(n), 0.18) << n << " cores";
  }
}

}  // namespace
}  // namespace snp::sim
