// Deterministic RNG: reproducibility, range contracts, rough uniformity.
#include "io/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace snp::io {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += r.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(13);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(17);
  std::array<int, 7> seen{};
  for (int i = 0; i < 7000; ++i) {
    ++seen[r.next_below(7)];
  }
  for (const int count : seen) {
    EXPECT_GT(count, 700);  // each residue near 1000, allow wide slack
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(19);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += r.next_bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsIndependentAndDeterministic) {
  const Rng base(23);
  Rng f1 = base.fork(1);
  Rng f1_again = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = f1.next_u64();
    EXPECT_EQ(a, f1_again.next_u64());
    equal += a == f2.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace snp::io
