// BLIS-like CPU engine vs the naive reference, across shapes, ops and
// blocking parameters.
#include "cpu/engine.hpp"

#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "io/datagen.hpp"

namespace snp::cpu {
namespace {

using bits::Comparison;

TEST(CpuEngine, RejectsBadInput) {
  const auto a = io::random_bitmatrix(4, 64, 0.5, 1);
  const auto b = io::random_bitmatrix(4, 128, 0.5, 2);
  EXPECT_THROW((void)compare_blocked(a, b, Comparison::kAnd),
               std::invalid_argument);
  CpuBlocking bad;
  bad.m_c = 2;  // < m_r
  EXPECT_THROW((void)compare_blocked(a, a, Comparison::kAnd, bad),
               std::invalid_argument);
}

TEST(CpuEngine, EmptyDimensions) {
  const bits::BitMatrix a(0, 64);
  const bits::BitMatrix b(3, 64);
  const auto c = compare_blocked(a, b, Comparison::kAnd);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);
}

struct EngineCase {
  std::size_t m, n, bits;
};

class CpuEngineVsReference
    : public ::testing::TestWithParam<std::tuple<EngineCase, Comparison>> {};

TEST_P(CpuEngineVsReference, Agree) {
  const auto& [c, op] = GetParam();
  const auto a = io::random_bitmatrix(c.m, c.bits, 0.4, 101);
  const auto b = io::random_bitmatrix(c.n, c.bits, 0.6, 102);
  EXPECT_TRUE(compare_blocked(a, b, op) ==
              bits::compare_reference(a, b, op));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CpuEngineVsReference,
    ::testing::Combine(
        ::testing::Values(EngineCase{1, 1, 64},      // single micro-tile
                          EngineCase{4, 4, 256},     // exact micro-tile
                          EngineCase{5, 7, 130},     // fringe everywhere
                          EngineCase{64, 64, 512},   // one full block
                          EngineCase{65, 63, 1000},  // block + fringe
                          EngineCase{3, 130, 64},    // wide
                          EngineCase{130, 3, 64}),   // tall
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot)));

TEST(CpuEngine, DeepKCrossesPanels) {
  // K spans multiple k_c panels; accumulation across panels must be exact.
  CpuBlocking blk;
  blk.k_c = 4;  // 4-word panels force many panel iterations
  const auto a = io::random_bitmatrix(10, 2000, 0.5, 103);
  const auto b = io::random_bitmatrix(12, 2000, 0.5, 104);
  for (const auto op :
       {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
    EXPECT_TRUE(compare_blocked(a, b, op, blk) ==
                bits::compare_reference(a, b, op));
  }
}

TEST(CpuEngine, TinyBlockingStillCorrect) {
  CpuBlocking blk;
  blk.m_c = 4;
  blk.n_c = 4;
  blk.k_c = 1;
  const auto a = io::random_bitmatrix(17, 333, 0.3, 105);
  const auto b = io::random_bitmatrix(19, 333, 0.7, 106);
  EXPECT_TRUE(compare_blocked(a, b, Comparison::kXor, blk) ==
              bits::compare_reference(a, b, Comparison::kXor));
}

TEST(CpuEngine, LdCountsIsSelfAnd) {
  const auto a = io::random_bitmatrix(20, 500, 0.4, 107);
  const auto ld = ld_counts(a);
  EXPECT_TRUE(ld == bits::compare_reference(a, a, Comparison::kAnd));
  // Symmetry and diagonal-marginal invariants survive the blocked path.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(ld.at(i, i), a.row_popcount(i));
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(ld.at(i, j), ld.at(j, i));
    }
  }
}

TEST(CpuEngine, DensityExtremes) {
  const auto zeros = bits::BitMatrix(6, 256);
  const auto ones = io::random_bitmatrix(6, 256, 1.0, 108);
  const auto c0 = compare_blocked(zeros, ones, Comparison::kAnd);
  const auto c1 = compare_blocked(ones, ones, Comparison::kAnd);
  const auto cx = compare_blocked(ones, ones, Comparison::kXor);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(c0.at(i, j), 0u);
      EXPECT_EQ(c1.at(i, j), 256u);
      EXPECT_EQ(cx.at(i, j), 0u);
    }
  }
}

}  // namespace
}  // namespace snp::cpu
