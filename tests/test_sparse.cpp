// Sparse extension (paper future work): representation invariants,
// intersection kernel, equivalence with the dense engines across ops and
// densities, and the dense-vs-sparse performance-model crossover.
#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "io/datagen.hpp"
#include "sparse/engine.hpp"
#include "sparse/sparse_matrix.hpp"

namespace snp::sparse {
namespace {

using bits::Comparison;

TEST(SparseMatrix, FromRowsSortsAndDeduplicates) {
  auto m = SparseBitMatrix::from_rows({{5, 1, 3, 1}, {}, {7}}, 10);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.row_nnz(0), 3u);
  EXPECT_EQ(m.row(0)[0], 1u);
  EXPECT_EQ(m.row(0)[2], 5u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_TRUE(m.invariants_hold());
  EXPECT_THROW((void)SparseBitMatrix::from_rows({{10}}, 10),
               std::out_of_range);
}

TEST(SparseMatrix, DenseRoundTrip) {
  const auto dense = io::random_bitmatrix(20, 500, 0.1, 900);
  const auto sparse = SparseBitMatrix::from_dense(dense);
  EXPECT_TRUE(sparse.invariants_hold());
  EXPECT_EQ(sparse.to_dense(), dense);
  // nnz equals the dense popcount.
  std::size_t pop = 0;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    pop += dense.row_popcount(r);
  }
  EXPECT_EQ(sparse.nnz(), pop);
  EXPECT_NEAR(sparse.density(), 0.1, 0.02);
}

TEST(SparseMatrix, EmptyAndFullRows) {
  bits::BitMatrix dense(3, 100);
  for (std::size_t k = 0; k < 100; ++k) {
    dense.set(1, k, true);
  }
  const auto sparse = SparseBitMatrix::from_dense(dense);
  EXPECT_EQ(sparse.row_nnz(0), 0u);
  EXPECT_EQ(sparse.row_nnz(1), 100u);
  EXPECT_EQ(sparse.row_nnz(2), 0u);
  EXPECT_EQ(sparse.to_dense(), dense);
}

TEST(IntersectCount, SmallCases) {
  const std::vector<std::uint32_t> a = {1, 3, 5, 7, 9};
  const std::vector<std::uint32_t> b = {2, 3, 4, 7, 10};
  EXPECT_EQ(intersect_count(a, b), 2u);
  EXPECT_EQ(intersect_count(a, a), 5u);
  EXPECT_EQ(intersect_count(a, {}), 0u);
  EXPECT_EQ(intersect_count({}, b), 0u);
}

TEST(IntersectCount, GallopingMatchesMerge) {
  // One tiny side against a large side triggers the galloping path; the
  // result must match a straightforward merge.
  io::Rng rng(901);
  std::vector<std::uint32_t> large;
  for (std::uint32_t k = 0; k < 100000; ++k) {
    if (rng.next_bernoulli(0.3)) {
      large.push_back(k);
    }
  }
  for (const std::size_t small_n : {1u, 3u, 17u, 100u}) {
    std::vector<std::uint32_t> small;
    for (std::size_t i = 0; i < small_n; ++i) {
      small.push_back(
          static_cast<std::uint32_t>(rng.next_below(100000)));
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());
    std::uint32_t expected = 0;
    for (const auto x : small) {
      expected += std::binary_search(large.begin(), large.end(), x) ? 1u
                                                                    : 0u;
    }
    EXPECT_EQ(intersect_count(small, large), expected)
        << "small_n=" << small_n;
  }
}

struct SparseCase {
  std::size_t m, n, bits;
  double density;
};

class SparseVsDense
    : public ::testing::TestWithParam<std::tuple<SparseCase, Comparison>> {
};

TEST_P(SparseVsDense, Agree) {
  const auto& [c, op] = GetParam();
  const auto da = io::random_bitmatrix(c.m, c.bits, c.density, 902);
  const auto db = io::random_bitmatrix(c.n, c.bits, c.density * 2, 903);
  const auto expected = bits::compare_reference(da, db, op);
  const auto sa = SparseBitMatrix::from_dense(da);
  const auto sb = SparseBitMatrix::from_dense(db);
  EXPECT_TRUE(sparse_compare(sa, sb, op) == expected) << "sparse-sparse";
  EXPECT_TRUE(sparse_dense_compare(sa, db, op) == expected)
      << "sparse-dense";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseVsDense,
    ::testing::Combine(
        ::testing::Values(SparseCase{5, 7, 333, 0.02},
                          SparseCase{16, 16, 1024, 0.1},
                          SparseCase{3, 40, 4096, 0.005},
                          SparseCase{12, 9, 257, 0.3},
                          SparseCase{1, 1, 64, 0.5}),
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot)));

TEST(SparseEngine, MismatchedKRejected) {
  const auto a = SparseBitMatrix::from_rows({{1}}, 64);
  const auto b = SparseBitMatrix::from_rows({{1}}, 65);
  EXPECT_THROW((void)sparse_compare(a, b, Comparison::kAnd),
               std::invalid_argument);
}

TEST(SparseModel, SparseWinsAtLowDensityLosesAtHigh) {
  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const sim::KernelShape shape{8192, 8192, 383};
    const auto dense =
        sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape);
    const auto thin = estimate_sparse_kernel(dev, cfg, shape, 0.001, 0.001);
    const auto fat = estimate_sparse_kernel(dev, cfg, shape, 0.5, 0.5);
    EXPECT_LT(thin.seconds, dense.seconds) << dev.name;
    EXPECT_GT(fat.seconds, dense.seconds) << dev.name;
  }
}

TEST(SparseModel, TimeMonotoneInDensity) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const sim::KernelShape shape{4096, 4096, 383};
  double prev = 0.0;
  for (const double d : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    const auto t = estimate_sparse_kernel(dev, cfg, shape, d, d);
    EXPECT_GT(t.seconds, prev);
    prev = t.seconds;
  }
}

TEST(SparseModel, CrossoverDensityIsPlausible) {
  // The crossover must exist strictly inside (0, 1) and sit in the
  // few-percent regime where inverted-index methods usually pay off.
  for (const auto& dev : model::all_gpus()) {
    const double d =
        crossover_density(dev, sim::KernelShape{8192, 8192, 383});
    EXPECT_GT(d, 0.001) << dev.name;
    EXPECT_LT(d, 0.3) << dev.name;
    // Consistency: slightly below the crossover sparse wins, above loses.
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const sim::KernelShape shape{8192, 8192, 383};
    const double dense_s =
        sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape).seconds;
    EXPECT_LT(
        estimate_sparse_kernel(dev, cfg, shape, d * 0.8, d * 0.8).seconds,
        dense_s)
        << dev.name;
    EXPECT_GT(
        estimate_sparse_kernel(dev, cfg, shape, d * 1.2, d * 1.2).seconds,
        dense_s)
        << dev.name;
  }
}

TEST(SparseModel, RejectsBadArguments) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  EXPECT_THROW((void)estimate_sparse_kernel(dev, cfg, {0, 1, 1}, 0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)estimate_sparse_kernel(dev, cfg, {1, 1, 1}, -0.1, 0.1),
      std::invalid_argument);
  EXPECT_THROW((void)estimate_sparse_kernel(dev, cfg, {1, 1, 1}, 0.1, 1.5),
               std::invalid_argument);
}

TEST(SparseEngine, RareVariantPanelsSitBelowTheCrossover) {
  // The dense bit-parallel kernel is hard to beat: the modeled crossover
  // sits around 1 % density. Rare-variant panels (the kind FastID-style
  // kinship/mixture work increasingly uses) fall below it; common-variant
  // panels (MAF up to 0.5) do not — quantifying when the paper's
  // future-work extension actually pays.
  const double crossover = crossover_density(
      model::titan_v(), sim::KernelShape{8192, 8192, 2048 / 32});

  io::ProfileDbParams rare;
  rare.seed = 904;
  rare.maf_min = 0.0005;
  rare.maf_max = 0.02;
  const auto rare_db = io::generate_profile_db(200, 2048, rare);
  EXPECT_LT(SparseBitMatrix::from_dense(rare_db).density(), crossover);

  io::ProfileDbParams common;
  common.seed = 905;
  common.maf_min = 0.05;
  common.maf_max = 0.5;
  const auto common_db = io::generate_profile_db(200, 2048, common);
  EXPECT_GT(SparseBitMatrix::from_dense(common_db).density(), crossover);
}


TEST(SparseModel, SparseDenseScalesWithQueryDensityOnly) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  const sim::KernelShape shape{32, 100000, 32};
  double prev = 0.0;
  for (const double d : {0.001, 0.01, 0.05, 0.2}) {
    const auto t = estimate_sparse_dense_kernel(dev, cfg, shape, d);
    EXPECT_GT(t.seconds, prev) << d;
    prev = t.seconds;
  }
  EXPECT_THROW(
      (void)estimate_sparse_dense_kernel(dev, cfg, {0, 1, 1}, 0.1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)estimate_sparse_dense_kernel(dev, cfg, shape, 1.5),
      std::invalid_argument);
}

TEST(SparseModel, GatherTrafficLimitsSparseDenseFastId) {
  // The honest finding the model exposes: probe *compute* shrinks with
  // query density, but each probe costs a 32-byte gathered transaction,
  // so per-core bandwidth demand is density-independent and dwarfs the
  // dense kernel's streamed traffic. Naive sparse-query FastID therefore
  // cannot beat the dense kernel on these devices — it needs a
  // gather-coalescing layout first.
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  const sim::KernelShape shape{32, 500000, 32};
  const auto dense =
      sim::estimate_kernel(dev, cfg, bits::Comparison::kXor, shape);
  const auto sd_rare = estimate_sparse_dense_kernel(dev, cfg, shape,
                                                    0.002);
  const auto sd_common = estimate_sparse_dense_kernel(dev, cfg, shape,
                                                      0.05);
  // Demand per core exceeds the dense kernel's at every density (the
  // per-probe gather component is density-independent by construction:
  // probe rate rises exactly as nnz falls)...
  EXPECT_GT(sd_rare.per_core_demand_gbps, dense.per_core_demand_gbps);
  EXPECT_GT(sd_common.per_core_demand_gbps, dense.per_core_demand_gbps);
  // ...so rare queries only break even with dense despite doing ~16x
  // less arithmetic, and common ones lose outright.
  EXPECT_GT(sd_rare.seconds, 0.6 * dense.seconds);
  EXPECT_LT(sd_rare.seconds, 1.2 * dense.seconds);
  EXPECT_GT(sd_common.seconds, 2.0 * dense.seconds);
  // Against sparse-sparse it still wins on compute for rare queries vs a
  // dense-ish database (no merge over the long database rows).
  const auto ss = estimate_sparse_kernel(dev, cfg, shape, 0.002, 0.2);
  EXPECT_LT(sd_rare.seconds, ss.seconds);
}

}  // namespace
}  // namespace snp::sparse
