// Chrome-trace export: structural validity, event coverage, ordering,
// and the merged-trace conformance the request-flow arrows depend on:
// all three pids share one clock origin (host_anchor_us) and each flow
// chain's records appear start -> steps -> finish with monotone
// timestamps.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "model/device.hpp"
#include "sim/transfer.hpp"

namespace snp::sim {
namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

Timeline sample_timeline() {
  const auto d = model::titan_v();
  const std::vector<Chunk> chunks(4, Chunk{1 << 22, 0.003, 1 << 20});
  return run_timeline(d, chunks);
}

TEST(Trace, StructureAndCoverage) {
  const auto json = chrome_trace_json(sample_timeline(), "Titan V");
  // Array-shaped, balanced braces.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  // Track metadata + init + 3 stages x 4 chunks.
  EXPECT_EQ(count_occurrences(json, "thread_name"), 4u);
  EXPECT_EQ(count_occurrences(json, "platform init"), 1u);
  EXPECT_EQ(count_occurrences(json, "h2d chunk"), 4u);
  EXPECT_EQ(count_occurrences(json, "kernel chunk"), 4u);
  EXPECT_EQ(count_occurrences(json, "d2h chunk"), 4u);
  EXPECT_NE(json.find("Titan V"), std::string::npos);
  // Every complete event carries duration and timestamp fields.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""),
            count_occurrences(json, "\"dur\": "));
}

TEST(Trace, ZeroLengthStagesOmitted) {
  const auto d = model::gtx980();
  const Timeline tl = run_timeline(d, {Chunk{0, 0.001, 0}});
  const auto json = chrome_trace_json(tl);
  EXPECT_EQ(count_occurrences(json, "h2d chunk"), 0u);
  EXPECT_EQ(count_occurrences(json, "d2h chunk"), 0u);
  EXPECT_EQ(count_occurrences(json, "kernel chunk"), 1u);
}

TEST(Trace, EmptyTimelineIsValidJsonArray) {
  Timeline tl;
  const auto json = chrome_trace_json(tl);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 0u);
  EXPECT_EQ(count_occurrences(json, "thread_name"), 4u);
}

// ---- merged trace: clock anchoring & flow chains -----------------------

/// The emitter writes one JSON object per line; pull a numeric field out
/// of one line ("ts", "pid", "id", ...). Returns false when absent.
bool line_field(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    lines.push_back(line);
  }
  return lines;
}

/// Satellite 2: pid-0 (simulated device) and pid-2 (host pipeline)
/// timestamps must be shifted onto the span clock's origin by
/// host_anchor_us, while pid-1 span events keep their native session
/// timestamps — otherwise cross-pid flow arrows point backwards in time.
TEST(MergedTrace, AnchorShiftsDeviceAndPipelinePidsOnly) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  collector.begin_session();
  obs::TraceEvent span;
  span.name = "svc.batch";
  span.pid = 1;
  span.ts_us = 42.0;
  span.dur_us = 7.0;
  collector.record(span);

  const Timeline tl = sample_timeline();
  HostChunkEvent chunk;
  chunk.index = 0;
  chunk.rows = 8;
  chunk.host_pack_start = 0.001;
  chunk.host_pack_end = 0.002;
  chunk.host_exec_start = 0.002;
  chunk.host_exec_end = 0.004;
  chunk.host_drain_start = 0.004;
  chunk.host_drain_end = 0.005;
  const std::vector<HostChunkEvent> chunks{chunk};

  constexpr double kAnchor = 1500.0;
  const auto plain =
      lines_of(merged_chrome_trace_json(collector, &tl, chunks, "Titan V"));
  const auto anchored = lines_of(merged_chrome_trace_json(
      collector, &tl, chunks, "Titan V", kAnchor));
  ASSERT_EQ(plain.size(), anchored.size());

  std::size_t shifted = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    double pid = -1.0;
    double ts0 = 0.0;
    double ts1 = 0.0;
    if (!line_field(plain[i], "pid", &pid) ||
        !line_field(plain[i], "ts", &ts0) ||
        !line_field(anchored[i], "ts", &ts1)) {
      continue;  // metadata records carry no ts
    }
    if (pid == 1.0) {
      EXPECT_DOUBLE_EQ(ts1, ts0) << plain[i];
      ++kept;
    } else {
      EXPECT_DOUBLE_EQ(ts1, ts0 + kAnchor) << plain[i];
      ++shifted;
    }
  }
  EXPECT_GT(shifted, 0u);  // device + pipeline events were present
  EXPECT_GT(kept, 0u);     // and so was the host span
}

/// Request flow chains: the emitter must bind flow records to the slice
/// starts, order them s -> t -> f by timestamp, emit "bp": "e" on the
/// finish, and render zero-duration flow endpoints as instants.
TEST(MergedTrace, FlowChainIsOrderedAndWellFormed) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  collector.begin_session();

  obs::TraceEvent submit;
  submit.name = "req.submit";
  submit.ts_us = 10.0;
  submit.dur_us = 0.0;  // flow endpoint -> instant, not dropped
  submit.trace_id = 9;
  submit.flow_id = 9;
  submit.flow_phase = 's';
  collector.record(submit);

  obs::TraceEvent batch;
  batch.name = "svc.batch";
  batch.ts_us = 20.0;
  batch.dur_us = 5.0;
  batch.trace_id = 9;
  batch.flow_id = 9;
  batch.flow_phase = 't';
  collector.record(batch);

  obs::TraceEvent resolve;
  resolve.name = "req.resolve";
  resolve.ts_us = 40.0;
  resolve.dur_us = 0.0;
  resolve.trace_id = 9;
  resolve.flow_id = 9;
  resolve.flow_phase = 'f';
  collector.record(resolve);

  const std::string json =
      merged_chrome_trace_json(collector, nullptr, {}, "cpu");
  // Zero-duration flow endpoints survive as instants.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 2u) << json;
  // Exactly one flow record per phase, chained by the flow id.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), 1u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"t\""), 1u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"f\""), 1u) << json;
  EXPECT_EQ(count_occurrences(json, "\"bp\": \"e\""), 1u) << json;

  // The flow records appear in chain order with monotone timestamps.
  double last_ts = -1.0;
  std::string phases;
  for (const std::string& line : lines_of(json)) {
    for (const char phase : {'s', 't', 'f'}) {
      const std::string marker =
          std::string("\"ph\": \"") + phase + "\"";
      if (line.find(marker) == std::string::npos) {
        continue;
      }
      double id = 0.0;
      double ts = 0.0;
      ASSERT_TRUE(line_field(line, "id", &id)) << line;
      ASSERT_TRUE(line_field(line, "ts", &ts)) << line;
      EXPECT_EQ(id, 9.0) << line;
      EXPECT_GE(ts, last_ts) << "flow arrows must move forward: " << line;
      last_ts = ts;
      phases.push_back(phase);
    }
  }
  EXPECT_EQ(phases, "stf");
}

}  // namespace
}  // namespace snp::sim
