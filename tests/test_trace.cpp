// Chrome-trace export: structural validity, event coverage, ordering.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "model/device.hpp"
#include "sim/transfer.hpp"

namespace snp::sim {
namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

Timeline sample_timeline() {
  const auto d = model::titan_v();
  const std::vector<Chunk> chunks(4, Chunk{1 << 22, 0.003, 1 << 20});
  return run_timeline(d, chunks);
}

TEST(Trace, StructureAndCoverage) {
  const auto json = chrome_trace_json(sample_timeline(), "Titan V");
  // Array-shaped, balanced braces.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  // Track metadata + init + 3 stages x 4 chunks.
  EXPECT_EQ(count_occurrences(json, "thread_name"), 4u);
  EXPECT_EQ(count_occurrences(json, "platform init"), 1u);
  EXPECT_EQ(count_occurrences(json, "h2d chunk"), 4u);
  EXPECT_EQ(count_occurrences(json, "kernel chunk"), 4u);
  EXPECT_EQ(count_occurrences(json, "d2h chunk"), 4u);
  EXPECT_NE(json.find("Titan V"), std::string::npos);
  // Every complete event carries duration and timestamp fields.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""),
            count_occurrences(json, "\"dur\": "));
}

TEST(Trace, ZeroLengthStagesOmitted) {
  const auto d = model::gtx980();
  const Timeline tl = run_timeline(d, {Chunk{0, 0.001, 0}});
  const auto json = chrome_trace_json(tl);
  EXPECT_EQ(count_occurrences(json, "h2d chunk"), 0u);
  EXPECT_EQ(count_occurrences(json, "d2h chunk"), 0u);
  EXPECT_EQ(count_occurrences(json, "kernel chunk"), 1u);
}

TEST(Trace, EmptyTimelineIsValidJsonArray) {
  Timeline tl;
  const auto json = chrome_trace_json(tl);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 0u);
  EXPECT_EQ(count_occurrences(json, "thread_name"), 4u);
}

}  // namespace
}  // namespace snp::sim
