// LD statistics: D, D', r^2 identities and ranges.
#include "stats/ld.hpp"

#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "io/datagen.hpp"

namespace snp::stats {
namespace {

TEST(LdStats, PerfectPositiveLd) {
  // Identical loci: p_AB = p_A = p_B -> D' = 1, r^2 = 1.
  const auto s = ld_from_counts(40, 40, 40, 100);
  EXPECT_NEAR(s.d, 0.4 - 0.16, 1e-12);
  EXPECT_NEAR(s.d_prime, 1.0, 1e-12);
  EXPECT_NEAR(s.r2, 1.0, 1e-12);
}

TEST(LdStats, LinkageEquilibrium) {
  // p_AB == p_A * p_B -> D = 0.
  const auto s = ld_from_counts(20, 40, 50, 100);
  EXPECT_NEAR(s.d, 0.0, 1e-12);
  EXPECT_NEAR(s.r2, 0.0, 1e-12);
  EXPECT_NEAR(s.d_prime, 0.0, 1e-12);
}

TEST(LdStats, NegativeD) {
  // Fewer co-occurrences than independence predicts.
  const auto s = ld_from_counts(5, 40, 50, 100);
  EXPECT_LT(s.d, 0.0);
  EXPECT_GE(s.d_prime, 0.0);
  EXPECT_LE(s.d_prime, 1.0);
}

TEST(LdStats, DegenerateLocusGivesZeroR2) {
  // Monomorphic locus (p = 0 or 1): variance denominator is zero.
  EXPECT_DOUBLE_EQ(ld_from_counts(0, 0, 30, 100).r2, 0.0);
  EXPECT_DOUBLE_EQ(ld_from_counts(30, 100, 30, 100).r2, 0.0);
}

TEST(LdStats, InputValidation) {
  EXPECT_THROW((void)ld_from_counts(1, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)ld_from_counts(10, 5, 20, 100),
               std::invalid_argument);  // joint > min marginal
  EXPECT_THROW((void)ld_from_counts(5, 200, 20, 100),
               std::invalid_argument);  // marginal > samples
}

TEST(LdStats, RangesOnRandomData) {
  const auto a = io::random_bitmatrix(12, 400, 0.3, 301);
  const auto gamma = bits::compare_reference(a, a,
                                             bits::Comparison::kAnd);
  const auto counts = row_counts(a);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      const auto s =
          ld_from_counts(gamma.at(i, j), counts[i], counts[j], 400);
      EXPECT_GE(s.r2, 0.0);
      EXPECT_LE(s.r2, 1.0 + 1e-12);
      EXPECT_GE(s.d_prime, 0.0);
      EXPECT_LE(s.d_prime, 1.0 + 1e-12);
      EXPECT_GE(s.d, -0.25 - 1e-12);
      EXPECT_LE(s.d, 0.25 + 1e-12);
    }
  }
}

TEST(LdStats, R2MatrixDiagonalOfPolymorphicLociIsOne) {
  const auto a = io::random_bitmatrix(8, 200, 0.4, 302);
  const auto gamma = bits::compare_reference(a, a,
                                             bits::Comparison::kAnd);
  const auto counts = row_counts(a);
  const auto r2 = r2_matrix(gamma, counts, 200);
  for (std::size_t i = 0; i < 8; ++i) {
    if (counts[i] > 0 && counts[i] < 200) {
      EXPECT_NEAR(r2[i * 8 + i], 1.0, 1e-9);
    }
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(r2[i * 8 + j], r2[j * 8 + i], 1e-12);
    }
  }
}

TEST(LdStats, R2MatrixValidatesShape) {
  const bits::CountMatrix bad(3, 4);
  EXPECT_THROW((void)r2_matrix(bad, {1, 2, 3}, 10), std::invalid_argument);
  const bits::CountMatrix sq(3, 3);
  EXPECT_THROW((void)r2_matrix(sq, {1, 2}, 10), std::invalid_argument);
}

TEST(LdStats, CorrelatedLociShowHighR2) {
  // LD-block data: adjacent loci inside a block correlate strongly.
  io::PopulationParams p;
  p.spectrum = io::MafSpectrum::kFixed;
  p.maf_mean = 0.3;
  p.ld_block_len = 16;
  p.ld_copy = 0.95;
  p.seed = 303;
  const auto g = io::generate_genotypes(16, 600, p);
  const auto bits_m = bits::encode(g, bits::EncodingPlane::kPresence);
  const auto gamma = bits::compare_reference(bits_m, bits_m,
                                             bits::Comparison::kAnd);
  const auto counts = row_counts(bits_m);
  double within = 0.0;
  int n_within = 0;
  for (std::size_t i = 1; i < 16; ++i) {
    within += ld_from_counts(gamma.at(i, i - 1), counts[i], counts[i - 1],
                             600)
                  .r2;
    ++n_within;
  }
  EXPECT_GT(within / n_within, 0.5);
}

TEST(LdStats, RowCounts) {
  bits::BitMatrix m(2, 100);
  m.set(0, 3, true);
  m.set(0, 99, true);
  const auto c = row_counts(m);
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 0u);
}

}  // namespace
}  // namespace snp::stats
