// 2-bit packed genotypes: code points, pack/unpack round trips, missing
// calls, file container, compression ratio.
#include "io/packed_genotypes.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"

namespace snp::io {
namespace {

TEST(PackedGenotypes, CodePointsMatchPlink) {
  EXPECT_EQ(PackedGenotypes::kHomMajor, 0b00);
  EXPECT_EQ(PackedGenotypes::kMissing, 0b01);
  EXPECT_EQ(PackedGenotypes::kHet, 0b10);
  EXPECT_EQ(PackedGenotypes::kHomMinor, 0b11);
}

TEST(PackedGenotypes, SetGetCodes) {
  PackedGenotypes p(2, 6);
  p.set_code(0, 0, PackedGenotypes::kHet);
  p.set_code(0, 3, PackedGenotypes::kHomMinor);  // same byte, last slot
  p.set_code(0, 4, PackedGenotypes::kMissing);   // next byte
  p.set_code(1, 5, PackedGenotypes::kHomMinor);
  EXPECT_EQ(p.code(0, 0), PackedGenotypes::kHet);
  EXPECT_EQ(p.code(0, 1), PackedGenotypes::kHomMajor);
  EXPECT_EQ(p.code(0, 3), PackedGenotypes::kHomMinor);
  EXPECT_TRUE(p.is_missing(0, 4));
  EXPECT_EQ(p.dosage(0, 4), 0);  // missing reads as dosage 0
  EXPECT_EQ(p.dosage(1, 5), 2);
  EXPECT_THROW((void)p.code(2, 0), std::out_of_range);
  EXPECT_THROW((void)p.code(0, 6), std::out_of_range);
  EXPECT_THROW(p.set_code(0, 0, 4), std::invalid_argument);
}

TEST(PackedGenotypes, PackUnpackRoundTrip) {
  PopulationParams params;
  params.seed = 650;
  const auto g = generate_genotypes(31, 57, params);  // odd sizes
  const auto p = PackedGenotypes::pack(g);
  EXPECT_EQ(p.loci(), 31u);
  EXPECT_EQ(p.samples(), 57u);
  const auto back = p.unpack();
  for (std::size_t l = 0; l < 31; ++l) {
    for (std::size_t s = 0; s < 57; ++s) {
      EXPECT_EQ(back.at(l, s), g.at(l, s));
    }
  }
}

TEST(PackedGenotypes, QuarterTheBytes) {
  const auto g = generate_genotypes(100, 400, {});
  const auto p = PackedGenotypes::pack(g);
  // 400 samples -> 100 bytes per locus vs 400 bytes naive.
  EXPECT_EQ(p.size_bytes(), 100u * 100u);
}

TEST(PackedGenotypes, MissingMaskRoundTrip) {
  PopulationParams params;
  params.seed = 651;
  const auto g = generate_genotypes(10, 20, params);
  std::vector<bool> missing(10 * 20, false);
  missing[3 * 20 + 5] = true;
  missing[3 * 20 + 6] = true;
  missing[9 * 20 + 0] = true;
  const auto p = PackedGenotypes::pack(g, missing);
  EXPECT_TRUE(p.is_missing(3, 5));
  EXPECT_FALSE(p.is_missing(3, 4));
  std::vector<std::size_t> per_locus;
  const auto back = p.unpack(&per_locus);
  ASSERT_EQ(per_locus.size(), 10u);
  EXPECT_EQ(per_locus[3], 2u);
  EXPECT_EQ(per_locus[9], 1u);
  EXPECT_EQ(per_locus[0], 0u);
  EXPECT_EQ(back.at(3, 5), 0);  // decoded as dosage 0
  EXPECT_THROW((void)PackedGenotypes::pack(g, std::vector<bool>(7)),
               std::invalid_argument);
}

TEST(PackedGenotypes, StreamRoundTrip) {
  PopulationParams params;
  params.seed = 652;
  const auto g = generate_genotypes(13, 29, params);
  const auto p = PackedGenotypes::pack(g);
  std::stringstream ss;
  save_packed_genotypes(p, ss);
  const auto back = load_packed_genotypes(ss);
  EXPECT_TRUE(back == p);
}

TEST(PackedGenotypes, CorruptStreamsRejected) {
  {
    std::stringstream ss;
    ss << "BAD!";
    EXPECT_THROW((void)load_packed_genotypes(ss), std::runtime_error);
  }
  {
    const auto p = PackedGenotypes::pack(generate_genotypes(4, 8, {}));
    std::stringstream ss;
    save_packed_genotypes(p, ss);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - 3));
    EXPECT_THROW((void)load_packed_genotypes(cut), std::runtime_error);
  }
}

TEST(PackedGenotypes, FileRoundTrip) {
  const auto path =
      std::filesystem::path(::testing::TempDir()) / "g.sgp";
  const auto p = PackedGenotypes::pack(generate_genotypes(6, 10, {}));
  save_packed_genotypes(p, path);
  EXPECT_TRUE(load_packed_genotypes(path) == p);
}

}  // namespace
}  // namespace snp::io
