// Streaming results: chunk callbacks, keep_counts=false memory bounding,
// and the memory-bounded top-k identity search.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "stats/forensic.hpp"

namespace snp {
namespace {

using bits::Comparison;

TEST(Streaming, CallbackSeesEveryChunkInOrder) {
  Context ctx = Context::gpu("gtx980");
  const auto a = io::random_bitmatrix(8, 200, 0.4, 970);
  const auto b = io::random_bitmatrix(1000, 200, 0.5, 971);
  ComputeOptions opts;
  opts.chunk_rows = 300;
  std::vector<std::size_t> offsets;
  std::size_t cols_seen = 0;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& view) {
    EXPECT_TRUE(view.streamed_b);
    EXPECT_EQ(view.part.rows(), 8u);
    offsets.push_back(view.row0);
    cols_seen += view.part.cols();
  };
  const auto r = ctx.compare(a, b, Comparison::kXor, opts);
  EXPECT_EQ(offsets, (std::vector<std::size_t>{0, 300, 600, 900}));
  EXPECT_EQ(cols_seen, 1000u);
  // Counts still assembled since keep_counts defaulted true.
  EXPECT_TRUE(r.counts == bits::compare_reference(a, b, Comparison::kXor));
}

TEST(Streaming, KeepCountsFalseDropsTheMatrix) {
  Context ctx = Context::gpu("vega64");
  const auto a = io::random_bitmatrix(4, 128, 0.4, 972);
  const auto b = io::random_bitmatrix(500, 128, 0.5, 973);
  ComputeOptions opts;
  opts.keep_counts = false;
  opts.chunk_rows = 128;
  std::size_t seen = 0;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& view) {
    seen += view.part.cols();
  };
  const auto r = ctx.compare(a, b, Comparison::kXor, opts);
  EXPECT_EQ(r.counts.rows(), 0u);
  EXPECT_EQ(seen, 500u);
}

TEST(Streaming, KeepCountsFalseWithoutCallbackRejected) {
  Context ctx = Context::gpu("titanv");
  const auto a = io::random_bitmatrix(2, 64, 0.5, 974);
  ComputeOptions opts;
  opts.keep_counts = false;
  EXPECT_THROW((void)ctx.compare(a, a, Comparison::kAnd, opts),
               std::invalid_argument);
}

TEST(Streaming, CpuBackendDeliversSingleChunk) {
  Context ctx = Context::cpu();
  const auto a = io::random_bitmatrix(5, 96, 0.4, 975);
  const auto b = io::random_bitmatrix(7, 96, 0.5, 976);
  ComputeOptions opts;
  opts.keep_counts = false;
  int calls = 0;
  bits::CountMatrix captured;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& view) {
    ++calls;
    captured = view.part;
  };
  const auto r = ctx.compare(a, b, Comparison::kAndNot, opts);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.counts.rows(), 0u);
  EXPECT_TRUE(captured ==
              bits::compare_reference(a, b, Comparison::kAndNot));
}

TEST(Streaming, TopKSearchMatchesFullSearch) {
  Context ctx = Context::gpu("titanv");
  io::ProfileDbParams params;
  params.seed = 977;
  const auto db = io::generate_profile_db(3000, 256, params);
  const auto queries = io::extract_queries(db, {42, 2048});
  ComputeOptions opts;
  opts.chunk_rows = 700;  // force several chunks with ragged tail
  const auto streamed =
      ctx.identity_search_streaming(queries, db, 5, opts);
  // Reference: full gamma + rank_matches.
  const auto full = ctx.compare(queries, db, Comparison::kXor);
  ASSERT_EQ(streamed.top.size(), 2u);
  for (std::size_t q = 0; q < 2; ++q) {
    const auto expected = stats::rank_matches(
        full.counts.raw().subspan(q * db.rows(), db.rows()),
        db.bit_cols(), 1.0, 5);
    ASSERT_EQ(streamed.top[q].size(), 5u);
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(streamed.top[q][k].reference_index,
                expected[k].reference_index)
          << "q=" << q << " k=" << k;
      EXPECT_EQ(streamed.top[q][k].mismatches, expected[k].mismatches);
    }
  }
  // The planted identities rank first with zero mismatches.
  EXPECT_EQ(streamed.top[0][0].reference_index, 42u);
  EXPECT_EQ(streamed.top[0][0].mismatches, 0u);
  EXPECT_EQ(streamed.top[1][0].reference_index, 2048u);
}

TEST(Streaming, TopKLargerThanDatabase) {
  Context ctx = Context::gpu("gtx980");
  const auto db = io::random_bitmatrix(7, 128, 0.5, 978);
  const auto queries = io::random_bitmatrix(2, 128, 0.5, 979);
  const auto r = ctx.identity_search_streaming(queries, db, 100);
  ASSERT_EQ(r.top.size(), 2u);
  EXPECT_EQ(r.top[0].size(), 7u);  // everything, ranked
  for (std::size_t k = 1; k < 7; ++k) {
    EXPECT_GE(r.top[0][k].mismatches, r.top[0][k - 1].mismatches);
  }
  EXPECT_THROW((void)ctx.identity_search_streaming(queries, db, 0),
               std::invalid_argument);
}

TEST(Streaming, QueriesLargerThanDatabaseStreamsQueries) {
  // More queries than database rows: the query side streams; results must
  // still be per-query correct.
  Context ctx = Context::gpu("vega64");
  const auto db = io::random_bitmatrix(5, 96, 0.5, 980);
  const auto queries = io::random_bitmatrix(900, 96, 0.5, 981);
  ComputeOptions opts;
  opts.chunk_rows = 256;
  const auto streamed =
      ctx.identity_search_streaming(queries, db, 2, opts);
  const auto full = ctx.compare(queries, db, Comparison::kXor);
  ASSERT_EQ(streamed.top.size(), 900u);
  for (const std::size_t q : {0u, 255u, 256u, 899u}) {
    const auto expected = stats::rank_matches(
        full.counts.raw().subspan(q * 5, 5), db.bit_cols(), 1.0, 2);
    EXPECT_EQ(streamed.top[q][0].reference_index,
              expected[0].reference_index)
        << q;
    EXPECT_EQ(streamed.top[q][0].mismatches, expected[0].mismatches);
  }
}


TEST(Streaming, MixtureStreamingMatchesFull) {
  Context ctx = Context::gpu("vega64");
  io::ProfileDbParams params;
  params.seed = 982;
  params.maf_min = 0.02;
  params.maf_max = 0.2;
  const auto db = io::generate_profile_db(2000, 384, params);
  const auto set = io::generate_mixtures(db, 3, 3, 983);
  ComputeOptions opts;
  opts.chunk_rows = 512;
  const auto streamed =
      ctx.mixture_analysis_streaming(db, set.mixtures, 0, opts);
  const auto full = ctx.mixture_analysis(db, set.mixtures, 0);
  ASSERT_EQ(streamed.included.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    auto expected = full.included[m];
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(streamed.included[m], expected) << "mixture " << m;
    // Every planted contributor is found.
    for (const std::size_t c : set.contributors[m]) {
      EXPECT_TRUE(std::binary_search(streamed.included[m].begin(),
                                     streamed.included[m].end(), c));
    }
  }
  EXPECT_GT(streamed.timing.chunks, 1);
}

TEST(Streaming, MixtureToleranceAdmitsNearMisses) {
  Context ctx = Context::gpu("gtx980");
  bits::BitMatrix profiles(2, 64);
  bits::BitMatrix mixtures(1, 64);
  // Profile 0 fully covered; profile 1 has 2 foreign alleles.
  for (const std::size_t k : {0u, 5u, 9u}) {
    profiles.set(0, k, true);
    mixtures.set(0, k, true);
  }
  profiles.set(1, 5, true);
  profiles.set(1, 20, true);
  profiles.set(1, 21, true);
  const auto strict =
      ctx.mixture_analysis_streaming(profiles, mixtures, 0);
  EXPECT_EQ(strict.included[0], (std::vector<std::size_t>{0}));
  const auto loose =
      ctx.mixture_analysis_streaming(profiles, mixtures, 2);
  EXPECT_EQ(loose.included[0], (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace snp
