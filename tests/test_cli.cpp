// CLI driver: every subcommand end-to-end through temp files, plus
// error-path coverage.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "io/plink_lite.hpp"
#include "io/rng.hpp"

namespace snp::cli {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Per-test unique temp path. ctest -j runs each discovered test as its
/// own process of this binary; a shared name under TempDir() would let
/// concurrent tests clobber each other's files.
std::string tmp(const std::string& name) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("snpcmp_cli_") +
                        info->test_suite_name() + "_" + info->name());
  fs::create_directories(dir);
  return (dir / name).string();
}

TEST(Cli, HelpAndNoArgs) {
  const auto help = run_cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const auto none = run_cli({});
  EXPECT_EQ(none.code, 1);
  EXPECT_NE(none.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandAndOptions) {
  EXPECT_EQ(run_cli({"frobnicate"}).code, 1);
  const auto bad_opt = run_cli({"gen", "--out", tmp("x"), "--bogus", "1"});
  EXPECT_EQ(bad_opt.code, 1);
  EXPECT_NE(bad_opt.err.find("unknown option"), std::string::npos);
  const auto bad_val =
      run_cli({"gen", "--out", tmp("x"), "--loci", "abc"});
  EXPECT_EQ(bad_val.code, 1);
  const auto missing = run_cli({"gen", "--loci", "10"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("--out"), std::string::npos);
  const auto dangling = run_cli({"gen", "--out"});
  EXPECT_EQ(dangling.code, 1);
}

TEST(Cli, Devices) {
  const auto r = run_cli({"devices"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Titan V"), std::string::npos);
  EXPECT_NE(r.out.find("Vega 64"), std::string::npos);
  EXPECT_NE(r.out.find("cpu"), std::string::npos);
}

TEST(Cli, FullLdPipeline) {
  const std::string cohort = tmp("cohort.plink");
  const std::string packed = tmp("cohort.sbm");
  const std::string gamma = tmp("gamma.scm");
  auto r = run_cli({"gen", "--loci", "40", "--samples", "200", "--seed",
                    "9", "--ld-block", "8", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"encode", "--in", cohort, "--out", packed});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"ld", "--in", packed, "--device", "gtx980", "--out", gamma,
               "--top", "5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("GTX 980"), std::string::npos);
  EXPECT_NE(r.out.find("top locus pairs"), std::string::npos);
  EXPECT_TRUE(fs::exists(gamma));
}

TEST(Cli, SearchPipeline) {
  const std::string db = tmp("db.sbm");
  auto r = run_cli({"gendb", "--profiles", "500", "--snps", "256",
                    "--seed", "11", "--out", db});
  ASSERT_EQ(r.code, 0) << r.err;
  // Use the database itself (first rows) as queries: exact matches exist.
  const std::string queries = tmp("q.sbm");
  {
    const auto full = io::load_bitmatrix(fs::path(db));
    io::save_bitmatrix(full.row_slice(3, 5), fs::path(queries));
  }
  r = run_cli({"search", "--queries", queries, "--db", db, "--device",
               "titanv", "--top", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("query 0:  #3 (0 mismatches)"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("query 1:  #4 (0 mismatches)"), std::string::npos);
}

TEST(Cli, MixturePipeline) {
  const std::string db = tmp("mixdb.sbm");
  auto r = run_cli({"gendb", "--profiles", "100", "--snps", "512",
                    "--seed", "13", "--maf-min", "0.02", "--maf-max",
                    "0.15", "--out", db});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string mixtures = tmp("mix.sbm");
  {
    const auto full = io::load_bitmatrix(fs::path(db));
    const auto set = io::generate_mixtures(full, 2, 2, 14);
    io::save_bitmatrix(set.mixtures, fs::path(mixtures));
  }
  for (const char* pre : {"no", "yes"}) {
    r = run_cli({"mixture", "--profiles", db, "--mixtures", mixtures,
                 "--device", "vega64", "--pre-negate", pre});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("mixture 0:"), std::string::npos);
    EXPECT_NE(r.out.find("consistent profiles"), std::string::npos);
  }
}

TEST(Cli, EstimateCommand) {
  const auto r = run_cli({"estimate", "--m", "32", "--n", "1000000",
                          "--kbits", "512", "--op", "xor", "--device",
                          "vega64"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("projected 32 x 1000000 x 512 bits (XOR)"),
            std::string::npos);
  EXPECT_NE(r.out.find("end-to-end:"), std::string::npos);
  const auto cpu = run_cli({"estimate", "--device", "cpu", "--m", "100",
                            "--n", "100", "--kbits", "320", "--op",
                            "and"});
  EXPECT_EQ(cpu.code, 0);
  EXPECT_NE(cpu.out.find("Xeon"), std::string::npos);
}

TEST(Cli, EnvCommand) {
  const auto text = run_cli({"env"});
  ASSERT_EQ(text.code, 0) << text.err;
  EXPECT_NE(text.out.find("cpu:"), std::string::npos);
  EXPECT_NE(text.out.find("compiler:"), std::string::npos);
  EXPECT_NE(text.out.find("perf:"), std::string::npos);
  const auto json = run_cli({"env", "--format", "json"});
  ASSERT_EQ(json.code, 0) << json.err;
  EXPECT_EQ(json.out.front(), '{');
  EXPECT_NE(json.out.find("\"cpu_model\""), std::string::npos);
  EXPECT_NE(json.out.find("\"logical_cores\""), std::string::npos);
  EXPECT_EQ(run_cli({"env", "--format", "xml"}).code, 1);
}

TEST(Cli, EstimatePerfFlag) {
  // --perf must never change the computed results: with or without it,
  // the projection lines are identical, and the perf line itself is
  // either real counters or a clean "unavailable" note (no PMU in CI).
  const std::vector<std::string> base = {"estimate", "--m",      "32",
                                         "--n",      "1000000",  "--kbits",
                                         "512",      "--device", "gtx980"};
  const auto plain = run_cli(base);
  ASSERT_EQ(plain.code, 0) << plain.err;
  auto with_perf = base;
  with_perf.emplace_back("--perf");
  const auto perf = run_cli(with_perf);
  ASSERT_EQ(perf.code, 0) << perf.err;
  EXPECT_NE(perf.out.find("perf:"), std::string::npos) << perf.out;
  const bool have_counters =
      perf.out.find("IPC") != std::string::npos;
  const bool clean_fallback =
      perf.out.find("perf counters unavailable") != std::string::npos;
  EXPECT_TRUE(have_counters || clean_fallback) << perf.out;
  // Strip the perf line; everything else must match the plain run.
  std::string scrubbed;
  std::istringstream lines(perf.out);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("perf:", 0) == 0) {
      continue;
    }
    scrubbed += line + "\n";
  }
  EXPECT_EQ(scrubbed, plain.out);
}

TEST(Cli, GenTsvFormat) {
  const std::string path = tmp("g.tsv");
  const auto r = run_cli({"gen", "--loci", "5", "--samples", "8", "--out",
                          path, "--format", "tsv"});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto g = io::load_genotypes_tsv(fs::path(path));
  EXPECT_EQ(g.loci(), 5u);
  EXPECT_EQ(g.samples(), 8u);
  EXPECT_EQ(run_cli({"gen", "--out", path, "--format", "xml"}).code, 1);
}

TEST(Cli, VcfPipeline) {
  const std::string vcf = tmp("cohort.vcf");
  const std::string packed = tmp("vcf_cohort.sbm");
  auto r = run_cli({"gen", "--loci", "20", "--samples", "30", "--out",
                    vcf, "--format", "vcf"});
  ASSERT_EQ(r.code, 0) << r.err;
  // encode auto-detects the .vcf extension.
  r = run_cli({"encode", "--in", vcf, "--out", packed});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("encoded 20 loci x 30 samples"), std::string::npos)
      << r.out;
}

TEST(Cli, KinshipCommand) {
  const std::string cohort = tmp("kin.plink");
  auto r = run_cli({"gen", "--loci", "3000", "--samples", "10",
                    "--maf-min", "0.1", "--maf-max", "0.5", "--seed",
                    "77", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"kinship", "--in", cohort, "--top", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("KING-robust kinship over 3000 loci"),
            std::string::npos);
  EXPECT_NE(r.out.find("top related pairs"), std::string::npos);
  // Random cohort: every listed pair should be unrelated.
  EXPECT_NE(r.out.find("unrelated"), std::string::npos);
}

TEST(Cli, QcCommand) {
  const std::string cohort = tmp("qc.plink");
  auto r = run_cli({"gen", "--loci", "200", "--samples", "400",
                    "--maf-min", "0.001", "--maf-max", "0.5", "--seed",
                    "31", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string filtered = tmp("qc_pass.plink");
  r = run_cli({"qc", "--in", cohort, "--min-maf", "0.05", "--out",
               filtered});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("QC over 200 loci"), std::string::npos);
  EXPECT_NE(r.out.find("pass"), std::string::npos);
  // The filtered file loads and has fewer loci.
  const auto ds = io::load_plink_lite(std::filesystem::path(filtered));
  EXPECT_LT(ds.loci.size(), 200u);
  EXPECT_GT(ds.loci.size(), 0u);
}

TEST(Cli, AssocCommand) {
  const std::string cohort = tmp("assoc.plink");
  auto r = run_cli({"gen", "--loci", "50", "--samples", "60", "--maf-min",
                    "0.2", "--maf-max", "0.5", "--seed", "37", "--out",
                    cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  // Mixed name/index case spec.
  r = run_cli({"assoc", "--in", cohort, "--cases",
               "sample0,sample1,2,3,4,5,6,7,8,9,10,11,12,13,14", "--top",
               "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("association scan over 50 loci (15 cases / 60"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("top hits"), std::string::npos);
  EXPECT_NE(r.out.find("OR="), std::string::npos);
  // Bad case spec.
  r = run_cli({"assoc", "--in", cohort, "--cases", "nobody"});
  EXPECT_EQ(r.code, 1);
}


TEST(Cli, EstimateTraceExport) {
  const std::string trace = tmp("timeline.json");
  const auto r = run_cli({"estimate", "--m", "32", "--n", "2000000",
                          "--kbits", "512", "--device", "gtx980",
                          "--trace", trace});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote chrome://tracing timeline"),
            std::string::npos);
  std::ifstream is(trace);
  ASSERT_TRUE(is.good());
  std::string json((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("kernel chunk"), std::string::npos);
  EXPECT_NE(json.find("GTX 980"), std::string::npos);
}


TEST(Cli, AssocPhenoFile) {
  const std::string cohort = tmp("pheno_cohort.plink");
  auto r = run_cli({"gen", "--loci", "30", "--samples", "20", "--maf-min",
                    "0.2", "--seed", "41", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string pheno = tmp("pheno.tsv");
  {
    std::ofstream os(pheno);
    os << "sample0\tcase\nsample1\t1\nsample2\tcontrol\nsample3\t0\n";
  }
  r = run_cli({"assoc", "--in", cohort, "--pheno", pheno, "--top", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("(2 cases / 20 samples)"), std::string::npos)
      << r.out;
  // Mutually exclusive with --cases; bad status rejected.
  EXPECT_EQ(run_cli({"assoc", "--in", cohort, "--pheno", pheno, "--cases",
                     "0"})
                .code,
            1);
  {
    std::ofstream os(pheno);
    os << "sample0\tmaybe\n";
  }
  EXPECT_EQ(run_cli({"assoc", "--in", cohort, "--pheno", pheno}).code, 1);
}

TEST(Cli, ClusterCommand) {
  // Two diverged populations; the cluster command must separate the
  // sample names and report a positive Fst.
  const std::string path = tmp("twopop.plink");
  {
    io::Rng rng(4242);
    bits::GenotypeMatrix g(800, 12);
    for (std::size_t l = 0; l < 800; ++l) {
      const double p1 = 0.1 + 0.5 * rng.next_double();
      const double p2 = 0.9 - 0.5 * rng.next_double();
      for (std::size_t s = 0; s < 12; ++s) {
        const double p = s < 6 ? p1 : p2;
        g.at(l, s) = static_cast<std::uint8_t>(
            static_cast<int>(rng.next_bernoulli(p)) +
            static_cast<int>(rng.next_bernoulli(p)));
      }
    }
    io::save_plink_lite(io::with_synthetic_metadata(std::move(g)),
                        std::filesystem::path(path));
  }
  const auto r = run_cli({"cluster", "--in", path, "--k", "2",
                          "--device", "titanv"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cluster 0 (6):"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("cluster 1 (6):"), std::string::npos);
  EXPECT_NE(r.out.find("Hudson Fst"), std::string::npos);
}


TEST(Cli, KernelSrcCommand) {
  const auto r = run_cli({"kernel-src", "--device", "vega64",
                          "--workload", "fastid", "--op", "andnot"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("__kernel void snp_compare"), std::string::npos);
  EXPECT_NE(r.out.find("#define SNP_K_C 512"), std::string::npos);
  EXPECT_NE(r.out.find("nb_val"), std::string::npos);  // separate NOT
  const std::string path = tmp("kernel.cl");
  const auto w = run_cli({"kernel-src", "--out", path});
  ASSERT_EQ(w.code, 0) << w.err;
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
}


TEST(Cli, LintCleanOnEveryPresetCombination) {
  for (const std::string device : {"gtx980", "titanv", "vega64"}) {
    for (const std::string workload : {"ld", "fastid"}) {
      for (const std::string op : {"and", "xor", "andnot"}) {
        const auto r = run_cli({"lint", "--device", device, "--workload",
                                workload, "--op", op});
        EXPECT_EQ(r.code, 0) << device << " " << workload << " " << op
                             << "\n" << r.out << r.err;
        EXPECT_NE(r.out.find("0 error(s)"), std::string::npos);
        // The Eq. 5 discrepancy info rides along on every preset.
        EXPECT_NE(r.out.find("SNP-CFG-006"), std::string::npos);
        EXPECT_NE(r.out.find("DESIGN.md"), std::string::npos);
      }
    }
  }
}

TEST(Cli, LintJsonFormat) {
  const auto r = run_cli({"lint", "--device", "gtx980", "--format",
                          "json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"device\": \"GTX 980\""), std::string::npos);
  EXPECT_NE(r.out.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(r.out.find("\"diagnostics\": ["), std::string::npos);
  EXPECT_NE(r.out.find("SNP-CFG-006"), std::string::npos);
}

TEST(Cli, LintCorruptedConfigsExitNonZeroWithCheckIds) {
  // Exit 3 distinguishes "found errors" from usage (1) / runtime (2).
  auto r = run_cli({"lint", "--device", "titanv", "--k-c", "9999"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-SHMEM-001"), std::string::npos);
  r = run_cli({"lint", "--device", "gtx980", "--n-r", "24"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-CFG-005"), std::string::npos);
  r = run_cli({"lint", "--device", "vega64", "--m-c", "64"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-BANK-001"), std::string::npos);
  r = run_cli({"lint", "--device", "titanv", "--grid-m", "81"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-GRID-001"), std::string::npos);
}

TEST(Cli, LintRejectsBadFlags) {
  EXPECT_EQ(run_cli({"lint", "--workload", "bogus"}).code, 1);
  EXPECT_EQ(run_cli({"lint", "--format", "yaml"}).code, 1);
  EXPECT_EQ(run_cli({"lint", "--bogus", "1"}).code, 1);
}

TEST(Cli, LintUndersizedTileAllocationTripsBoundProof) {
  // --lds-words probes a launch-time LDS allocation smaller than the
  // staged tile: the interval bounds proof must reject it.
  const auto r = run_cli({"lint", "--device", "titanv", "--lds-words",
                          "64"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-BOUND-001"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Eq. 4/5"), std::string::npos) << r.out;
}

TEST(Cli, LintHugeTripCountTripsOverflowProof) {
  // --k-iters probes the real k-loop trip count; at 3e8 trips the Eq. 2-3
  // popcount accumulators provably wrap 32 bits.
  const auto r = run_cli({"lint", "--device", "titanv", "--k-iters",
                          "300000000"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("SNP-OVF-001"), std::string::npos) << r.out;
}

TEST(Cli, LintJsonOutputIsDeterministic) {
  // The machine-readable report is sorted by (check ID, section, index):
  // two runs must be byte-identical, and diagnostics carry their site.
  const std::vector<std::string> args = {"lint",   "--device",    "gtx980",
                                         "--format", "json"};
  const auto a = run_cli(args);
  const auto b = run_cli(args);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out.find("\"section\":"), std::string::npos);
  EXPECT_NE(a.out.find("\"index\":"), std::string::npos);
}

TEST(Cli, LintSoakRunsTheMutationSoundnessSweep) {
  const auto r = run_cli({"lint", "--soak", "1"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("18 corpus program(s)"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("0 failure(s)"), std::string::npos) << r.out;
}

TEST(Cli, SearchWithUndersizedLdsIsBlockedBeforeLaunch) {
  // Acceptance fixture: a fabricated out-of-bounds tile configuration
  // must be refused by the pre-launch verifier with exit 3 and the
  // check ID as the first stderr token.
  const std::string cohort = tmp("blocked.plink");
  const std::string packed = tmp("blocked.sbm");
  auto r = run_cli({"gen", "--loci", "8", "--samples", "128", "--seed",
                    "5", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"encode", "--in", cohort, "--out", packed});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"search", "--queries", packed, "--db", packed, "--device",
               "titanv", "--lds-words", "16"});
  EXPECT_EQ(r.code, 3);
  EXPECT_EQ(r.err.rfind("SNP-BOUND-001 ", 0), 0u) << r.err;
  EXPECT_NE(r.err.find("pre-launch verification failed"),
            std::string::npos)
      << r.err;
  // The same search without the corrupted allocation goes through.
  r = run_cli({"search", "--queries", packed, "--db", packed, "--device",
               "titanv"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, ComputeCommandsSurfaceLintNotes) {
  // An idle-core grid reaches the user as a `lint:` line in the timing
  // report (the pre-launch pass warns but only error severity blocks).
  const std::string cohort = tmp("lint_cohort.plink");
  const std::string packed = tmp("lint_cohort.sbm");
  auto r = run_cli({"gen", "--loci", "40", "--samples", "200", "--seed",
                    "11", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"encode", "--in", cohort, "--out", packed});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"ld", "--in", packed, "--device", "gtx980", "--top", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("lint:"), std::string::npos);
  EXPECT_NE(r.out.find("SNP-CFG-006"), std::string::npos);
}

TEST(Cli, QcLdPruneOption) {
  const std::string cohort = tmp("prune_cohort.plink");
  auto r = run_cli({"gen", "--loci", "60", "--samples", "800",
                    "--ld-block", "10", "--maf-min", "0.2", "--seed",
                    "53", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string pruned = tmp("pruned.plink");
  r = run_cli({"qc", "--in", cohort, "--min-maf", "0.0", "--min-hwe-p",
               "0.0", "--ld-prune-r2", "0.2", "--out", pruned});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LD pruning"), std::string::npos) << r.out;
  const auto ds = io::load_plink_lite(std::filesystem::path(pruned));
  EXPECT_LT(ds.loci.size(), 30u);  // 6 blocks of 10 collapse hard
  EXPECT_GE(ds.loci.size(), 6u);
}


TEST(Cli, MergeAndSubsetCommands) {
  const std::string cohort = tmp("ops_cohort.plink");
  auto r = run_cli({"gen", "--loci", "10", "--samples", "8", "--seed",
                    "61", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string left = tmp("ops_left.plink");
  const std::string right = tmp("ops_right.plink");
  r = run_cli({"subset", "--in", cohort, "--samples",
               "sample0,sample1,sample2,sample3", "--out", left});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"subset", "--in", cohort, "--samples",
               "sample4,sample5,sample6,sample7", "--out", right});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string merged = tmp("ops_merged.plink");
  r = run_cli({"merge", "--a", left, "--b", right, "--axis", "samples",
               "--out", merged});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("10 loci x 8 samples"), std::string::npos)
      << r.out;
  // Round trip restored the original genotypes.
  const auto orig = io::load_plink_lite(std::filesystem::path(cohort));
  const auto back = io::load_plink_lite(std::filesystem::path(merged));
  for (std::size_t l = 0; l < 10; ++l) {
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_EQ(back.genotypes.at(l, s), orig.genotypes.at(l, s));
    }
  }
  // Locus-range subset.
  const std::string window = tmp("ops_window.plink");
  r = run_cli({"subset", "--in", cohort, "--loci", "2-5", "--out",
               window});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("4 loci x 8 samples"), std::string::npos);
  // Usage errors.
  EXPECT_EQ(run_cli({"subset", "--in", cohort, "--out", window}).code, 1);
  EXPECT_EQ(run_cli({"merge", "--a", left, "--b", right, "--axis",
                     "diag", "--out", merged})
                .code,
            1);
}


TEST(Cli, ReportCommand) {
  const std::string cohort = tmp("report_cohort.plink");
  auto r = run_cli({"gen", "--loci", "60", "--samples", "40", "--maf-min",
                    "0.1", "--seed", "71", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string report = tmp("cohort_report.md");
  r = run_cli({"report", "--in", cohort, "--out", report, "--cases",
               "sample0,sample1,sample2", "--device", "vega64"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream is(report);
  ASSERT_TRUE(is.good());
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# snpcmp cohort report"), std::string::npos);
  EXPECT_NE(text.find("## Quality control"), std::string::npos);
  EXPECT_NE(text.find("## Relatedness"), std::string::npos);
  EXPECT_NE(text.find("## Association"), std::string::npos);
  EXPECT_NE(text.find("Vega 64"), std::string::npos);
  EXPECT_EQ(
      run_cli({"report", "--in", cohort, "--out", report, "--cases",
               "ghost"})
          .code,
      1);
}

TEST(Cli, MissingFileIsRuntimeError) {
  const auto r = run_cli({"ld", "--in", tmp("nonexistent.sbm")});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, UsageDocumentsFaultToleranceFlags) {
  const auto help = run_cli({"help"});
  EXPECT_NE(help.out.find("--fail-policy"), std::string::npos);
  EXPECT_NE(help.out.find("--inject-faults"), std::string::npos);
  EXPECT_NE(help.out.find("docs/robustness.md"), std::string::npos);
}

TEST(Cli, BadFaultFlagsAreUsageErrors) {
  const std::string db = tmp("db.sbm");
  auto r = run_cli({"gendb", "--profiles", "50", "--snps", "128",
                    "--out", db});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"search", "--queries", db, "--db", db, "--fail-policy",
               "panic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--fail-policy"), std::string::npos);
  r = run_cli({"search", "--queries", db, "--db", db, "--inject-faults",
               "warp:p=0.5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("bad fault plan"), std::string::npos);
}

TEST(Cli, LdRecoversUnderInjectionAndReportsFaults) {
  const std::string cohort = tmp("cohort.txt");
  const std::string packed = tmp("cohort.sbm");
  auto r = run_cli({"gen", "--loci", "30", "--samples", "128", "--seed",
                    "21", "--out", cohort});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"encode", "--in", cohort, "--out", packed});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto clean = run_cli(
      {"ld", "--in", packed, "--device", "titanv", "--top", "3"});
  ASSERT_EQ(clean.code, 0) << clean.err;
  EXPECT_EQ(clean.out.find("faults:"), std::string::npos);
  const auto faulty = run_cli(
      {"ld", "--in", packed, "--device", "titanv", "--top", "3",
       "--inject-faults", "launch:p=1:seed=4", "--fail-policy",
       "degrade"});
  ASSERT_EQ(faulty.code, 0) << faulty.err;
  EXPECT_NE(faulty.out.find("faults:"), std::string::npos);
  EXPECT_NE(faulty.out.find("degraded to CPU"), std::string::npos);
  // The ranked pairs (everything after the report) must be identical.
  const auto pairs_of = [](const std::string& text) {
    return text.substr(text.find("top locus pairs"));
  };
  EXPECT_EQ(pairs_of(faulty.out), pairs_of(clean.out));
}

TEST(Cli, AbortPolicyExitsFourWithStableCode) {
  const std::string db = tmp("db.sbm");
  auto r = run_cli({"gendb", "--profiles", "64", "--snps", "128",
                    "--out", db});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run_cli({"search", "--queries", db, "--db", db, "--inject-faults",
               "readback:after=1", "--fail-policy", "abort"});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.err.find("SNPRT-READBACK"), std::string::npos);
  // The plan is scoped to the command: a follow-up run is clean.
  r = run_cli({"search", "--queries", db, "--db", db});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("faults:"), std::string::npos);
}

}  // namespace
}  // namespace snp::cli
