// Public API: Context, streaming/double-buffering, timing reports, domain
// wrappers, failure injection.
#include "core/snpcmp.hpp"

#include <gtest/gtest.h>

#include "io/datagen.hpp"
#include "rt/status.hpp"

namespace snp {
namespace {

using bits::Comparison;

TEST(Context, CpuAndGpuIdentity) {
  Context cpu = Context::cpu();
  EXPECT_FALSE(cpu.is_gpu());
  EXPECT_THROW((void)cpu.gpu_spec(), std::logic_error);
  Context gpu = Context::gpu("titanv");
  EXPECT_TRUE(gpu.is_gpu());
  EXPECT_EQ(gpu.gpu_spec().name, "Titan V");
  EXPECT_THROW((void)Context::gpu("unknown"), std::invalid_argument);
}

TEST(Context, RejectsBadOperands) {
  Context ctx = Context::cpu();
  const auto a = io::random_bitmatrix(4, 64, 0.5, 1);
  const auto b = io::random_bitmatrix(4, 128, 0.5, 2);
  EXPECT_THROW((void)ctx.compare(a, b, Comparison::kAnd),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.compare(bits::BitMatrix(), b, Comparison::kAnd),
               std::invalid_argument);
  ComputeOptions opts;
  opts.pre_negate = true;
  const auto b2 = io::random_bitmatrix(4, 64, 0.5, 2);
  EXPECT_THROW((void)ctx.compare(a, b2, Comparison::kAnd, opts),
               std::invalid_argument);
}

TEST(Context, CpuCompareMatchesReference) {
  Context ctx = Context::cpu();
  const auto a = io::random_bitmatrix(9, 300, 0.4, 3);
  const auto b = io::random_bitmatrix(11, 300, 0.6, 4);
  const auto result = ctx.compare(a, b, Comparison::kXor);
  EXPECT_TRUE(result.counts ==
              bits::compare_reference(a, b, Comparison::kXor));
  EXPECT_GT(result.timing.kernel_s, 0.0);
  EXPECT_EQ(result.timing.chunks, 1);
}

TEST(Context, GpuCompareMatchesReferenceAllDevices) {
  const auto a = io::random_bitmatrix(20, 500, 0.4, 5);
  const auto b = io::random_bitmatrix(30, 500, 0.6, 6);
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context ctx = Context::gpu(name);
    const auto result = ctx.compare(a, b, Comparison::kAnd);
    EXPECT_TRUE(result.counts ==
                bits::compare_reference(a, b, Comparison::kAnd))
        << name;
    EXPECT_GT(result.timing.end_to_end_s, 0.0) << name;
    EXPECT_GT(result.timing.kernel_gops, 0.0) << name;
  }
}

TEST(Context, WorkloadPresetSelection) {
  Context ctx = Context::gpu("titanv");
  const auto q = io::random_bitmatrix(8, 256, 0.5, 7);
  const auto db = io::random_bitmatrix(5000, 256, 0.5, 8);
  const auto sq = io::random_bitmatrix(300, 256, 0.5, 9);
  // Tiny query vs huge database -> FastID preset (grid 1x80).
  const auto fid_cfg = ctx.effective_config(q, db, Comparison::kXor);
  EXPECT_EQ(fid_cfg.grid.grid_m, 1);
  EXPECT_EQ(fid_cfg.grid.grid_n, 80);
  // Square -> LD preset (grid 80x1).
  const auto ld_cfg = ctx.effective_config(sq, sq, Comparison::kAnd);
  EXPECT_EQ(ld_cfg.grid.grid_m, 80);
  // Explicit override wins.
  ComputeOptions opts;
  opts.config = model::paper_preset(ctx.gpu_spec(),
                                    model::WorkloadKind::kLd);
  const auto forced = ctx.effective_config(q, db, Comparison::kXor, opts);
  EXPECT_EQ(forced.grid.grid_m, 80);
}

TEST(Context, StreamingChunksProduceSameCounts) {
  // Force many small chunks; counts must equal the single-chunk result.
  Context ctx = Context::gpu("gtx980");
  const auto a = io::random_bitmatrix(16, 200, 0.4, 10);
  const auto b = io::random_bitmatrix(2000, 200, 0.5, 11);
  ComputeOptions one;
  one.chunk_rows = 2000;  // entire database in one chunk
  const auto whole = ctx.compare(a, b, Comparison::kXor, one);
  ComputeOptions chunked;
  chunked.chunk_rows = 768;  // not a divisor of 2000: ragged tail chunk
  const auto pieces = ctx.compare(a, b, Comparison::kXor, chunked);
  EXPECT_TRUE(whole.counts == pieces.counts);
  EXPECT_GT(pieces.timing.chunks, 1);
  EXPECT_EQ(whole.timing.chunks, 1);
}

TEST(Context, StreamsLargerOperandEitherSide) {
  // A much larger than B (mixture-analysis shape): chunking must happen on
  // A without changing results.
  Context ctx = Context::gpu("vega64");
  const auto profiles = io::random_bitmatrix(1500, 128, 0.3, 12);
  const auto mixtures = io::random_bitmatrix(4, 128, 0.6, 13);
  ComputeOptions opts;
  opts.chunk_rows = 333;
  const auto r = ctx.compare(profiles, mixtures, Comparison::kAndNot, opts);
  EXPECT_TRUE(r.counts == bits::compare_reference(
                              profiles, mixtures, Comparison::kAndNot));
  EXPECT_GT(r.timing.chunks, 3);
}

TEST(Context, PreNegationMatchesFusedResults) {
  Context ctx = Context::gpu("vega64");
  const auto profiles = io::random_bitmatrix(300, 256, 0.3, 14);
  const auto mixtures = io::random_bitmatrix(3, 256, 0.5, 15);
  ComputeOptions fused;
  const auto rf = ctx.compare(profiles, mixtures, Comparison::kAndNot,
                              fused);
  ComputeOptions pre;
  pre.pre_negate = true;
  const auto rp = ctx.compare(profiles, mixtures, Comparison::kAndNot, pre);
  EXPECT_TRUE(rf.counts == rp.counts);
  // Pre-negation avoids the in-kernel NOT: at least as fast on Vega.
  EXPECT_LE(rp.timing.kernel_s, rf.timing.kernel_s + 1e-12);
}

TEST(Context, TimingReportConsistency) {
  Context ctx = Context::gpu("titanv");
  const auto a = io::random_bitmatrix(64, 1024, 0.5, 16);
  const auto b = io::random_bitmatrix(512, 1024, 0.5, 17);
  const auto r = ctx.compare(a, b, Comparison::kAnd);
  const auto& t = r.timing;
  EXPECT_GT(t.init_s, 0.1);  // hundreds of ms (Section VI-B)
  EXPECT_GE(t.end_to_end_s, t.init_s + t.kernel_s);
  EXPECT_GT(t.h2d_s, 0.0);
  EXPECT_GT(t.d2h_s, 0.0);
  EXPECT_LE(t.pct_of_peak, 100.0);
  EXPECT_EQ(t.device, "Titan V");
  EXPECT_FALSE(t.config.empty());
}

TEST(Context, InitCanBeExcluded) {
  Context ctx = Context::gpu("gtx980");
  const auto a = io::random_bitmatrix(8, 128, 0.5, 18);
  const auto b = io::random_bitmatrix(8, 128, 0.5, 19);
  ComputeOptions with;
  ComputeOptions without;
  without.include_init = false;
  const auto rw = ctx.compare(a, b, Comparison::kAnd, with);
  const auto ro = ctx.compare(a, b, Comparison::kAnd, without);
  EXPECT_GT(rw.timing.end_to_end_s, ro.timing.end_to_end_s + 0.1);
  EXPECT_DOUBLE_EQ(ro.timing.init_s, 0.0);
}

TEST(Context, DoubleBufferingHidesTransfers) {
  Context ctx = Context::gpu("titanv");
  const auto a = io::random_bitmatrix(128, 4096, 0.5, 20);
  const auto b = io::random_bitmatrix(4096, 4096, 0.5, 21);
  ComputeOptions db;
  db.chunk_rows = 512;
  db.functional = false;  // timing-only keeps this test fast
  ComputeOptions serial = db;
  serial.double_buffer = false;
  const auto r_db = ctx.compare(a, b, Comparison::kAnd, db);
  const auto r_serial = ctx.compare(a, b, Comparison::kAnd, serial);
  EXPECT_LT(r_db.timing.end_to_end_s, r_serial.timing.end_to_end_s);
  EXPECT_GT(r_db.timing.overlap_hidden_s, 0.0);
}

TEST(Context, TimingOnlyModeSkipsCounts) {
  Context ctx = Context::gpu("vega64");
  const auto a = io::random_bitmatrix(32, 512, 0.5, 22);
  const auto b = io::random_bitmatrix(64, 512, 0.5, 23);
  ComputeOptions opts;
  opts.functional = false;
  const auto r = ctx.compare(a, b, Comparison::kAnd, opts);
  EXPECT_EQ(r.counts.rows(), 0u);
  EXPECT_GT(r.timing.kernel_s, 0.0);
}

TEST(Context, LdWrapper) {
  Context ctx = Context::gpu("gtx980");
  const auto loci = io::random_bitmatrix(40, 300, 0.35, 24);
  const auto r = ctx.ld(loci);
  EXPECT_TRUE(r.counts ==
              bits::compare_reference(loci, loci, Comparison::kAnd));
}

TEST(Context, IdentitySearchFindsPlantedMatches) {
  Context ctx = Context::gpu("titanv");
  io::ProfileDbParams params;
  params.seed = 25;
  const auto db = io::generate_profile_db(800, 512, params);
  const std::vector<std::size_t> planted = {17, 437, 799};
  const auto queries = io::extract_queries(db, planted);
  const auto result = ctx.identity_search(queries, db);
  ASSERT_EQ(result.best_match.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.best_match[i], planted[i]);
    EXPECT_EQ(result.best_mismatches[i], 0u);
  }
}

TEST(Context, MixtureAnalysisRecoversContributors) {
  Context ctx = Context::gpu("vega64");
  io::ProfileDbParams params;
  params.seed = 26;
  params.maf_min = 0.05;
  params.maf_max = 0.25;
  const auto db = io::generate_profile_db(300, 600, params);
  const auto mixtures = io::generate_mixtures(db, 2, 3, 27);
  const auto result = ctx.mixture_analysis(db, mixtures.mixtures);
  ASSERT_EQ(result.included.size(), 2u);
  for (std::size_t m = 0; m < 2; ++m) {
    for (const std::size_t c : mixtures.contributors[m]) {
      EXPECT_NE(std::find(result.included[m].begin(),
                          result.included[m].end(), c),
                result.included[m].end())
          << "mixture " << m << " missing contributor " << c;
    }
  }
}

TEST(Context, ResidentOperandTooLargeThrows) {
  Context ctx = Context::gpu("gtx980");  // max alloc ~0.98 GiB
  // Both sides of a square problem over the limit: the resident operand
  // cannot fit, so the framework refuses (data-free estimate path).
  EXPECT_THROW((void)ctx.estimate(600000, 600000, 16384, Comparison::kAnd),
               rt::Error);
}

TEST(Context, EstimateMatchesCompareChunking) {
  Context ctx = Context::gpu("gtx980");
  const auto a = io::random_bitmatrix(16, 200, 0.4, 30);
  const auto b = io::random_bitmatrix(2000, 200, 0.5, 31);
  ComputeOptions opts;
  opts.chunk_rows = 768;
  opts.functional = false;
  const auto measured = ctx.compare(a, b, Comparison::kXor, opts);
  const auto projected =
      ctx.estimate(16, 2000, 200, Comparison::kXor, opts);
  EXPECT_EQ(projected.chunks, measured.timing.chunks);
  EXPECT_NEAR(projected.kernel_s, measured.timing.kernel_s,
              0.05 * measured.timing.kernel_s);
  EXPECT_NEAR(projected.end_to_end_s, measured.timing.end_to_end_s,
              0.05 * measured.timing.end_to_end_s);
}

TEST(Context, EstimatePaperScaleDatabase) {
  // Fig. 8 scale without materializing data: 32 queries vs >20 M profiles.
  Context ctx = Context::gpu("titanv");
  ComputeOptions opts;
  opts.functional = false;
  const auto t =
      ctx.estimate(32, 20'000'000, 1024, Comparison::kXor, opts);
  EXPECT_GT(t.chunks, 1);
  EXPECT_GT(t.end_to_end_s, t.init_s);
  EXPECT_LT(t.end_to_end_s, 60.0);  // sanity: seconds, not hours
}

TEST(Context, EstimateCpuUsesXeonModel) {
  Context ctx = Context::cpu();
  const auto t = ctx.estimate(1000, 1000, 10000, Comparison::kAnd);
  // 1000*1000*313 word-ops at 85 % of 50.4 G/s.
  EXPECT_NEAR(t.kernel_s, 313e6 / (50.4e9 * 0.85), 1e-6);
  EXPECT_NE(t.device.find("Xeon"), std::string::npos);
}

}  // namespace
}  // namespace snp
