// Trace-context propagation conformance (PR 7): a request's trace id,
// allocated at svc submit(), must reach every span, flight record and
// fault event produced on its behalf — through dispatcher batch
// formation, exec::ThreadPool workers and the rt recovery ladder — and
// the flow chains in the collector must be well-formed (monotone,
// submit-opened, resolve-closed). The 50-seed fault soak pins the
// invariant under every recovery path the injector can trigger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "io/datagen.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "rt/fault.hpp"
#include "svc/service.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using obs::current_trace;
using obs::ScopedTraceContext;
using obs::TraceContext;
using svc::QueryResult;
using svc::ServiceConfig;
using svc::ServiceEngine;

TEST(TraceContext, AllocatorIsMonotonicAndNeverZero) {
  const std::uint64_t a = obs::next_trace_id();
  const std::uint64_t b = obs::next_trace_id();
  const std::uint64_t c = obs::next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(TraceContext, DefaultIsNoContext) {
  EXPECT_EQ(current_trace().trace_id, 0u);
  EXPECT_FALSE(current_trace().valid());
}

TEST(TraceContext, ScopedInstallNestsAndRestores) {
  {
    const ScopedTraceContext outer(TraceContext{11});
    EXPECT_EQ(current_trace().trace_id, 11u);
    {
      const ScopedTraceContext inner(TraceContext{22});
      EXPECT_EQ(current_trace().trace_id, 22u);
    }
    EXPECT_EQ(current_trace().trace_id, 11u);
  }
  EXPECT_EQ(current_trace().trace_id, 0u);
}

TEST(TraceContext, ThreadPoolCarriesPostersContext) {
  exec::ThreadPool pool(2);
  std::promise<std::uint64_t> seen_under;
  std::promise<std::uint64_t> seen_after;
  {
    const ScopedTraceContext ctx(TraceContext{77});
    pool.post([&] { seen_under.set_value(current_trace().trace_id); });
  }
  // Posted outside any scope: the worker must run context-free even
  // though the previous task installed 77 on the same worker thread.
  pool.post([&] { seen_after.set_value(current_trace().trace_id); });
  EXPECT_EQ(seen_under.get_future().get(), 77u);
  EXPECT_EQ(seen_after.get_future().get(), 0u);
}

TEST(TraceContext, InlinePoolAlsoPropagates) {
  exec::ThreadPool pool(0);  // tasks run inline on the posting thread
  std::uint64_t seen = 0;
  {
    const ScopedTraceContext ctx(TraceContext{31});
    pool.post([&] { seen = current_trace().trace_id; });
  }
  EXPECT_EQ(seen, 31u);
}

TEST(ServiceTracing, ResultsCarryUniqueIdsMatchingTraceOut) {
  const BitMatrix db = io::random_bitmatrix(24, 192, 0.5, 901);
  const BitMatrix queries = io::random_bitmatrix(6, 192, 0.4, 902);
  ServiceConfig cfg;
  cfg.device = "titanv";
  cfg.op = Comparison::kXor;
  cfg.cache_capacity = 0;
  cfg.start_paused = true;
  ServiceEngine engine(db, cfg);
  std::vector<std::future<QueryResult>> futs;
  std::vector<std::uint64_t> submitted_ids;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    std::uint64_t id = 0;
    futs.push_back(
        engine.submit(queries.row_slice(q, q + 1), std::nullopt, &id));
    submitted_ids.push_back(id);
  }
  engine.resume();
  std::set<std::uint64_t> unique;
  for (std::size_t q = 0; q < futs.size(); ++q) {
    const QueryResult qr = futs[q].get();
    EXPECT_NE(qr.trace_id, 0u);
    EXPECT_EQ(qr.trace_id, submitted_ids[q]);
    unique.insert(qr.trace_id);
  }
  EXPECT_EQ(unique.size(), futs.size());
}

TEST(ServiceTracing, CacheHitsKeepTheRequestsOwnId) {
  const BitMatrix db = io::random_bitmatrix(24, 192, 0.5, 903);
  const BitMatrix query = io::random_bitmatrix(1, 192, 0.4, 904);
  ServiceConfig cfg;
  cfg.device = "titanv";
  cfg.cache_capacity = 64;
  ServiceEngine engine(db, cfg);
  const QueryResult miss = engine.submit(query).get();
  const QueryResult hit = engine.submit(query).get();
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_NE(hit.trace_id, 0u);
  // The cached *row* is shared; the trace identity is per-request.
  EXPECT_NE(hit.trace_id, miss.trace_id);
}

/// Flow chains recorded through the collector must be well-formed per
/// request: opened by exactly one 's' endpoint, closed by exactly one
/// 'f', timestamps monotone along the chain.
TEST(ServiceTracing, CollectorFlowChainsAreWellFormed) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "flow points compile away under SNPCMP_OBS=OFF";
  }
  obs::TraceCollector& collector = obs::TraceCollector::global();
  collector.set_enabled(true);
  collector.begin_session();

  const BitMatrix db = io::random_bitmatrix(24, 192, 0.5, 905);
  const BitMatrix queries = io::random_bitmatrix(5, 192, 0.4, 906);
  std::vector<std::uint64_t> ids;
  {
    ServiceConfig cfg;
    cfg.device = "titanv";
    cfg.cache_capacity = 0;
    cfg.start_paused = true;
    ServiceEngine engine(db, cfg);
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      std::uint64_t id = 0;
      futs.push_back(
          engine.submit(queries.row_slice(q, q + 1), std::nullopt, &id));
      ids.push_back(id);
    }
    engine.resume();
    for (auto& f : futs) {
      (void)f.get();
    }
  }
  collector.set_enabled(false);

  // events() returns a snapshot by value; keep it alive for the
  // pointers collected below.
  const std::vector<obs::TraceEvent> events = collector.events();
  std::map<std::uint64_t, std::vector<const obs::TraceEvent*>> flows;
  for (const obs::TraceEvent& ev : events) {
    if (ev.flow_id != 0) {
      flows[ev.flow_id].push_back(&ev);
    }
  }
  for (const std::uint64_t id : ids) {
    auto it = flows.find(id);
    ASSERT_NE(it, flows.end()) << "request " << id << " left no flow";
    auto& chain = it->second;
    std::stable_sort(chain.begin(), chain.end(),
                     [](const obs::TraceEvent* x, const obs::TraceEvent* y) {
                       return x->ts_us < y->ts_us;
                     });
    EXPECT_EQ(chain.front()->flow_phase, 's') << "request " << id;
    EXPECT_EQ(chain.back()->flow_phase, 'f') << "request " << id;
    std::size_t starts = 0;
    std::size_t finishes = 0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      starts += chain[i]->flow_phase == 's' ? 1u : 0u;
      finishes += chain[i]->flow_phase == 'f' ? 1u : 0u;
      if (i > 0) {
        EXPECT_LE(chain[i - 1]->ts_us, chain[i]->ts_us)
            << "request " << id << " flow not monotone";
      }
    }
    EXPECT_EQ(starts, 1u) << "request " << id;
    EXPECT_EQ(finishes, 1u) << "request " << id;
  }
}

/// The ISSUE's 50-seed soak: under randomized fault injection every
/// batch / chunk / fault / retry flight record must carry a trace id
/// that belongs to a submitted request — no orphaned work, no id
/// invented downstream — across retry, failover and degrade rungs.
TEST(ServiceTracing, FiftySeedFaultSoakPropagatesIdsEverywhere) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "flight records compile away under SNPCMP_OBS=OFF";
  }
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const BitMatrix db = io::random_bitmatrix(20, 192, 0.5, 907);
  const BitMatrix queries = io::random_bitmatrix(4, 192, 0.4, 908);
  std::uint64_t faults_seen = 0;
  for (int seed = 1; seed <= 50; ++seed) {
    flight.clear();
    const rt::ScopedFaultPlan plan(
        "launch:p=0.3:seed=" + std::to_string(seed));
    std::set<std::uint64_t> ids;
    {
      ServiceConfig cfg;
      cfg.device = "titanv";
      cfg.cache_capacity = 0;
      cfg.max_batch_rows = 2;  // multiple batches per seed
      cfg.recovery.policy = rt::FailPolicy::kDegrade;
      cfg.recovery.backoff_base_s = 0.0;
      cfg.start_paused = true;
      ServiceEngine engine(db, cfg);
      std::vector<std::future<QueryResult>> futs;
      for (std::size_t q = 0; q < queries.rows(); ++q) {
        std::uint64_t id = 0;
        futs.push_back(
            engine.submit(queries.row_slice(q, q + 1), std::nullopt, &id));
        ids.insert(id);
      }
      engine.resume();
      for (std::size_t q = 0; q < futs.size(); ++q) {
        const QueryResult qr = futs[q].get();  // degrade never fails
        EXPECT_NE(ids.find(qr.trace_id), ids.end());
      }
    }
    for (const obs::FlightRecord& rec : flight.snapshot()) {
      switch (rec.kind) {
        case obs::FlightKind::kBatch:
        case obs::FlightKind::kChunkPack:
        case obs::FlightKind::kChunkExec:
        case obs::FlightKind::kChunkDrain:
        case obs::FlightKind::kFault:
        case obs::FlightKind::kRetry:
          EXPECT_NE(ids.find(rec.trace_id), ids.end())
              << "seed " << seed << ": " << to_string(rec.kind)
              << " record carries foreign trace id " << rec.trace_id;
          faults_seen += rec.kind == obs::FlightKind::kFault ||
                                 rec.kind == obs::FlightKind::kRetry
                             ? 1
                             : 0;
          break;
        default:
          break;
      }
    }
  }
  // p=0.3 over 50 seeds x 2 batches: the soak must actually have hit
  // the recovery ladder, or it proves nothing.
  EXPECT_GT(faults_seen, 0u);
  flight.clear();
}

}  // namespace
}  // namespace snp
