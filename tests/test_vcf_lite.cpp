// VCF-lite: round trips, GT decoding, strict rejection of what we don't
// support, interoperability with plink-lite through the shared dataset.
#include "io/vcf_lite.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"

namespace snp::io {
namespace {

PlinkLiteDataset sample_dataset() {
  PopulationParams p;
  p.seed = 601;
  return with_synthetic_metadata(generate_genotypes(5, 7, p), "7", 1000,
                                 500);
}

TEST(VcfLite, RoundTrip) {
  const auto ds = sample_dataset();
  std::stringstream ss;
  save_vcf_lite(ds, ss);
  const auto back = load_vcf_lite(ss);
  ASSERT_TRUE(back.consistent());
  EXPECT_EQ(back.samples, ds.samples);
  ASSERT_EQ(back.loci.size(), ds.loci.size());
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    EXPECT_EQ(back.loci[l].chrom, ds.loci[l].chrom);
    EXPECT_EQ(back.loci[l].pos, ds.loci[l].pos);
    EXPECT_EQ(back.loci[l].ref, ds.loci[l].ref);
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      EXPECT_EQ(back.genotypes.at(l, s), ds.genotypes.at(l, s));
    }
  }
}

TEST(VcfLite, GtVariantsAndMissing) {
  std::stringstream ss;
  ss << "##fileformat=VCFv4.2\n"
     << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\ts2\t"
        "s3\ts4\n"
     << "1\t100\trs1\tA\tG\t.\tPASS\t.\tGT\t0/0\t0|1\t1/0\t1|1\n"
     << "1\t200\trs2\tC\tT\t.\tPASS\t.\tGT:DP\t./.\t0/1:31\t1/1:12\t0/0\n";
  const auto ds = load_vcf_lite(ss);
  ASSERT_EQ(ds.loci.size(), 2u);
  EXPECT_EQ(ds.genotypes.at(0, 0), 0);
  EXPECT_EQ(ds.genotypes.at(0, 1), 1);  // phased het
  EXPECT_EQ(ds.genotypes.at(0, 2), 1);  // 1/0 het
  EXPECT_EQ(ds.genotypes.at(0, 3), 2);
  EXPECT_EQ(ds.genotypes.at(1, 0), 0);  // missing -> 0
  EXPECT_EQ(ds.missing_calls, 1u);
  EXPECT_EQ(ds.genotypes.at(1, 1), 1);  // GT:DP cell, GT first
}

TEST(VcfLite, RejectsUnsupportedConstructs) {
  const std::string header =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\n";
  {
    std::stringstream ss;  // record before header
    ss << "1\t1\trs\tA\tG\t.\t.\t.\tGT\t0/0\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // multiallelic ALT
    ss << header << "1\t1\trs\tA\tG,T\t.\t.\t.\tGT\t0/0\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // FORMAT without GT first
    ss << header << "1\t1\trs\tA\tG\t.\t.\t.\tDP:GT\t3:0/0\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // allele index beyond biallelic
    ss << header << "1\t1\trs\tA\tG\t.\t.\t.\tGT\t0/2\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // wrong column count
    ss << header << "1\t1\trs\tA\tG\t.\t.\t.\tGT\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // malformed GT separator
    ss << header << "1\t1\trs\tA\tG\t.\t.\t.\tGT\t0-0\n";
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
  {
    std::stringstream ss;  // empty stream
    EXPECT_THROW((void)load_vcf_lite(ss), std::runtime_error);
  }
}

TEST(VcfLite, InteroperatesWithPlinkLite) {
  // VCF in -> plink-lite out -> back: same genotypes.
  const auto ds = sample_dataset();
  std::stringstream vcf;
  save_vcf_lite(ds, vcf);
  const auto from_vcf = load_vcf_lite(vcf);
  std::stringstream plink;
  save_plink_lite(from_vcf, plink);
  const auto from_plink = load_plink_lite(plink);
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      EXPECT_EQ(from_plink.genotypes.at(l, s), ds.genotypes.at(l, s));
    }
  }
}

TEST(VcfLite, FileRoundTrip) {
  const auto path = std::filesystem::path(::testing::TempDir()) / "x.vcf";
  save_vcf_lite(sample_dataset(), path);
  EXPECT_EQ(load_vcf_lite(path).loci.size(), 5u);
  EXPECT_THROW((void)load_vcf_lite(std::filesystem::path("/nope.vcf")),
               std::runtime_error);
}

}  // namespace
}  // namespace snp::io
