// The static-analysis subsystem: check registry, config/IR/source passes,
// the full analyze() pipeline over every paper preset, and a seeded
// property sweep over perturbed devices (derive() output must always be
// error-free; targeted corruptions must trip their specific check IDs).
#include "analyze/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "io/rng.hpp"
#include "kern/kernel_program.hpp"
#include "kern/opencl_source.hpp"

namespace snp::analyze {
namespace {

using bits::Comparison;
using model::GpuSpec;
using model::KernelConfig;
using model::WorkloadKind;

Severity severity_of(const std::string& id) {
  for (const auto& c : check_registry()) {
    if (id == c.id) {
      return c.severity;
    }
  }
  ADD_FAILURE() << "check ID not in registry: " << id;
  return Severity::kInfo;
}

TEST(Diagnostics, ReportCountsAndQueries) {
  Report r;
  EXPECT_FALSE(r.has_errors());
  r.add("SNP-TST-001", Severity::kError, "e");
  r.add("SNP-TST-002", Severity::kWarn, "w");
  r.add("SNP-TST-003", Severity::kInfo, "i");
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(r.has("SNP-TST-002"));
  EXPECT_FALSE(r.has("SNP-TST-004"));
  EXPECT_EQ(r.count(Severity::kError), 1u);
  EXPECT_EQ(r.count(Severity::kWarn), 1u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
}

TEST(Diagnostics, TextAndJsonRendering) {
  Report r;
  r.add("SNP-TST-001", Severity::kError, "a \"quoted\" message");
  std::ostringstream text;
  r.write_text(text);
  EXPECT_NE(text.str().find("error  SNP-TST-001"), std::string::npos);
  std::ostringstream json;
  r.write_json(json);
  EXPECT_NE(json.str().find("\\\"quoted\\\""), std::string::npos)
      << json.str();
  EXPECT_EQ(json.str().front(), '[');
  EXPECT_EQ(json.str().back(), ']');
}

TEST(Registry, IdsAreUniqueAndWellFormed) {
  const auto& checks = check_registry();
  EXPECT_GE(checks.size(), 20u);
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const std::string id = checks[i].id;
    EXPECT_EQ(id.rfind("SNP-", 0), 0u) << id;
    for (std::size_t j = i + 1; j < checks.size(); ++j) {
      EXPECT_STRNE(checks[i].id, checks[j].id);
    }
  }
}

// ---- config pass -----------------------------------------------------

TEST(ConfigChecks, EveryPresetIsErrorFree) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::paper_preset(dev, kind);
      Report r;
      check_config(dev, cfg, r);
      EXPECT_FALSE(r.has_errors())
          << dev.name << " " << cfg.to_string();
    }
  }
}

TEST(ConfigChecks, Eq5DiscrepancyReportedAsInfoCitingDesignDoc) {
  // Satellite: the shipped m_c = N_b vs Eq. 5 as printed must surface as
  // an info diagnostic pointing at the DESIGN.md note, on every preset.
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      Report r;
      check_config(dev, model::paper_preset(dev, kind), r);
      ASSERT_TRUE(r.has("SNP-CFG-006")) << dev.name;
      const auto it = std::find_if(
          r.diagnostics().begin(), r.diagnostics().end(),
          [](const Diagnostic& d) { return d.id == "SNP-CFG-006"; });
      EXPECT_EQ(it->severity, Severity::kInfo);
      EXPECT_NE(it->message.find("DESIGN.md"), std::string::npos);
      EXPECT_NE(it->message.find(std::to_string(model::m_c_eq5(dev))),
                std::string::npos);
    }
  }
}

/// One corrupted field -> one specific check ID (plus possibly others).
void expect_trips(const GpuSpec& dev, const KernelConfig& cfg,
                  const std::string& id) {
  Report r;
  check_config(dev, cfg, r);
  EXPECT_TRUE(r.has(id)) << cfg.to_string() << " should trip " << id;
  EXPECT_EQ(severity_of(id), Severity::kError);
  EXPECT_TRUE(r.has_errors());
}

TEST(ConfigChecks, CorruptedConfigsTripTheirCheckIds) {
  const auto dev = model::gtx980();
  const auto base = model::paper_preset(dev, WorkloadKind::kLd);

  auto cfg = base;
  cfg.k_c = 9999;  // tile blows past usable shared memory
  expect_trips(dev, cfg, "SNP-SHMEM-001");

  cfg = base;
  cfg.n_r = 24;  // multiple of L_fn = 6 but below the Eq. 7 bound of 96
  expect_trips(dev, cfg, "SNP-CFG-005");

  cfg = base;
  cfg.n_r = 100;  // not a multiple of L_fn = 6
  expect_trips(dev, cfg, "SNP-CFG-004");

  cfg = base;
  cfg.m_r = 3;  // not a multiple of N_vec = 4
  expect_trips(dev, cfg, "SNP-CFG-002");

  cfg = base;
  cfg.m_c = 30;  // not a multiple of m_r = 4
  expect_trips(dev, cfg, "SNP-CFG-003");

  cfg = base;
  cfg.m_c = 0;
  expect_trips(dev, cfg, "SNP-CFG-001");

  cfg = base;
  cfg.n_r = 6144;  // 128 accumulators/thread: far past the register budget
  expect_trips(dev, cfg, "SNP-REG-001");

  cfg = base;
  cfg.grid = {17, 1};  // 17 > the GTX 980's 16 cores
  expect_trips(dev, cfg, "SNP-GRID-001");

  const auto vega = model::vega64();
  cfg = model::paper_preset(vega, WorkloadKind::kLd);
  cfg.m_c = 64;  // beyond N_b = 32
  expect_trips(vega, cfg, "SNP-BANK-001");

  auto small = dev;
  small.n_grp_max = 8;  // below the N_cl x L_fn = 24 plateau
  expect_trips(small, base, "SNP-OCC-001");

  auto broken = dev;
  broken.banks = 0;
  Report r;
  check_config(broken, base, r);
  EXPECT_TRUE(r.has("SNP-DEV-001"));
}

TEST(ConfigChecks, IdleCoresWarnButDoNotError) {
  const auto dev = model::gtx980();
  auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
  cfg.grid = {4, 2};  // 8 of 16 cores
  Report r;
  check_config(dev, cfg, r);
  EXPECT_TRUE(r.has("SNP-OCC-002"));
  EXPECT_FALSE(r.has_errors());
}

// ---- IR pass ---------------------------------------------------------

TEST(IrChecks, KernelProgramIsCleanAtPolicyOccupancy) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::paper_preset(dev, kind);
      const auto info = kern::build_kernel_program(
          dev, cfg, Comparison::kAndNot, 16, 2);
      Report r;
      check_program(dev, info.program, dev.groups_per_cluster(), r);
      EXPECT_TRUE(r.diagnostics().empty())
          << dev.name << ": " << r.diagnostics().front().id << " "
          << r.diagnostics().front().message;
    }
  }
}

TEST(IrChecks, MissingBarrierAfterStagingTripsIr001) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
  auto info = kern::build_kernel_program(dev, cfg, Comparison::kAnd, 8, 2);
  auto& pro = info.program.prologue;
  pro.erase(std::remove_if(pro.begin(), pro.end(),
                           [](const sim::Instr& i) {
                             return i.op == sim::Opcode::kBar;
                           }),
            pro.end());
  Report r;
  check_program(dev, info.program, dev.groups_per_cluster(), r);
  EXPECT_TRUE(r.has("SNP-IR-001"));
  EXPECT_TRUE(r.has_errors());
}

TEST(IrChecks, UndefinedRegisterReadTripsIr002) {
  sim::Program p;
  p.body.push_back({sim::Opcode::kAdd, 0, 0, 7, 0});  // r0, r7 undefined
  p.iterations = 4;
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg, 0});
  Report r;
  check_program(model::gtx980(), p, 1, r);
  EXPECT_TRUE(r.has("SNP-IR-002"));
}

TEST(IrChecks, DeadResultRegisterTripsIr003) {
  sim::Program p;
  p.prologue.push_back({sim::Opcode::kLdg, 0, sim::kNoReg, sim::kNoReg, 0});
  p.body.push_back({sim::Opcode::kPopc, 1, 0, sim::kNoReg, 0});  // r1 dead
  p.iterations = 4;
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg, 0});
  Report r;
  check_program(model::gtx980(), p, 1, r);
  EXPECT_TRUE(r.has("SNP-IR-003"));
  EXPECT_FALSE(r.has_errors());  // liveness is a warning, not an error
}

TEST(IrChecks, DeepDependentChainWarnsOnlyWhenOccupancyCannotHideIt) {
  const auto dev = model::gtx980();
  const auto lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;
  const auto p = sim::dependent_chain(sim::Opcode::kPopc, 16, 64);
  Report starved;
  check_program(dev, p, 1, starved);
  EXPECT_TRUE(starved.has("SNP-IR-004"));
  Report hidden;
  check_program(dev, p, lfn, hidden);
  EXPECT_FALSE(hidden.has("SNP-IR-004"));
}

TEST(IrChecks, StridedSharedAccessTripsBank002) {
  const auto dev = model::gtx980();  // 32 banks
  const auto p = sim::strided_lds(dev.banks, 4, 16);
  Report r;
  check_program(dev, p, 1, r);
  EXPECT_TRUE(r.has("SNP-BANK-002"));
  const auto unit = sim::strided_lds(1, 4, 16);
  Report clean;
  check_program(dev, unit, 1, clean);
  EXPECT_FALSE(clean.has("SNP-BANK-002"));
}

// ---- source pass -----------------------------------------------------

TEST(SourceChecks, RenderedKernelIsClean) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto op :
         {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
      const auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
      Report r;
      check_source(kern::render_config_header(dev, cfg, op),
                   kern::render_kernel_source(dev, cfg, op), r);
      EXPECT_TRUE(r.diagnostics().empty())
          << dev.name << ": " << r.diagnostics().front().message;
    }
  }
}

TEST(SourceChecks, UndefinedMacroTripsSrc001) {
  Report r;
  check_source("#define SNP_M_C 32\n",
               "__kernel void k() { int x = SNP_MISSING; }\n", r);
  EXPECT_TRUE(r.has("SNP-SRC-001"));
}

TEST(SourceChecks, ConflictingRedefinitionTripsSrc002) {
  Report r;
  check_source("#define SNP_M_C 32\n#define SNP_M_C 64\n",
               "__kernel void k() { int x = SNP_M_C; }\n", r);
  EXPECT_TRUE(r.has("SNP-SRC-002"));
  // Same value twice is benign (include-guard style), and commented-out
  // defines do not count.
  Report benign;
  check_source("#define SNP_M_C 32\n// #define SNP_M_C 64\n"
               "#define SNP_M_C 32\n",
               "__kernel void k() { int x = SNP_M_C; }\n", benign);
  EXPECT_FALSE(benign.has("SNP-SRC-002"));
}

TEST(SourceChecks, BarrierInDivergentControlFlowTripsSrc003) {
  Report r;
  check_source("",
               "__kernel void k(int t) {\n"
               "  if (t > 0) {\n"
               "    barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  }\n"
               "}\n",
               r);
  EXPECT_TRUE(r.has("SNP-SRC-003"));
  // Counted loops are uniform: every lane executes the same trip count.
  Report loop;
  check_source("",
               "__kernel void k(int n) {\n"
               "  for (int i = 0; i < n; ++i) {\n"
               "    barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  }\n"
               "}\n",
               loop);
  EXPECT_FALSE(loop.has("SNP-SRC-003"));
  Report unbalanced;
  check_source("", "__kernel void k() { {\n", unbalanced);
  EXPECT_TRUE(unbalanced.has("SNP-SRC-003"));
}

// ---- full pipeline ---------------------------------------------------

TEST(Analyze, EveryPresetWorkloadOpCombinationIsErrorFree) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      for (const auto op :
           {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
        for (const bool pre : {false, true}) {
          auto cfg = model::paper_preset(dev, kind);
          cfg.pre_negated = pre && op == Comparison::kAndNot;
          const Report r = analyze(dev, cfg, op);
          EXPECT_FALSE(r.has_errors())
              << dev.name << " " << bits::to_string(op);
          EXPECT_TRUE(r.has("SNP-CFG-006")) << dev.name;
        }
      }
    }
  }
}

TEST(Analyze, NeverThrowsOnGarbageConfigs) {
  const auto dev = model::titan_v();
  KernelConfig cfg;  // all zeros: build_kernel_program would throw
  const Report r = analyze(dev, cfg, Comparison::kAnd);
  EXPECT_TRUE(r.has("SNP-CFG-001"));
  EXPECT_TRUE(r.has_errors());
}

// ---- property sweep over perturbed devices ---------------------------

/// A random but internally consistent GpuSpec: fields move through
/// realistic ranges while the invariants derive() depends on hold (the
/// register file can hold the overhead, the group limit admits the
/// N_cl x L_fn plateau).
GpuSpec perturbed_device(std::uint64_t seed) {
  io::Rng rng(seed);
  GpuSpec dev;
  switch (rng.next_below(3)) {
    case 0:
      dev = model::gtx980();
      break;
    case 1:
      dev = model::titan_v();
      break;
    default:
      dev = model::vega64();
      break;
  }
  dev.n_t = rng.next_below(2) == 0 ? 32 : 64;
  dev.n_clusters = static_cast<int>(1 + rng.next_below(8));
  dev.banks = 16 << rng.next_below(3);  // 16, 32, 64
  dev.n_vec = 1 << rng.next_below(3);   // 1, 2, 4
  const int lfn = static_cast<int>(2 + rng.next_below(5));  // 2..6
  for (auto& pipe : dev.pipes) {
    pipe.latency_cycles = lfn;
    pipe.units_per_cluster = static_cast<int>(1 + rng.next_below(64));
  }
  dev.n_cores = static_cast<int>(1 + rng.next_below(100));
  dev.shared_bytes = (32u << rng.next_below(3)) * 1024u;  // 32/64/128 KiB
  dev.shared_reserved = rng.next_below(2) == 0 ? 0 : 128;
  dev.regs_per_core = (128u << rng.next_below(3)) * 1024u;
  dev.max_regs_per_thread = rng.next_below(2) == 0 ? 128 : 255;
  // Keep the resident-group limit above the occupancy plateau; derive()
  // has no n_grp_max escape hatch (that is exactly what SNP-OCC-001
  // guards in hand-written configs).
  dev.n_grp_max = dev.n_clusters * lfn +
                  static_cast<int>(rng.next_below(16));
  return dev;
}

TEST(AnalyzeProperty, DerivedConfigsPassOnAThousandPerturbedDevices) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const GpuSpec dev = perturbed_device(seed);
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::derive(dev, kind);
      const Report r = analyze(dev, cfg, Comparison::kXor);
      ASSERT_FALSE(r.has_errors())
          << "seed " << seed << " " << dev.name << " n_t=" << dev.n_t
          << " n_cl=" << dev.n_clusters << " banks=" << dev.banks
          << " cfg=" << cfg.to_string() << "\nfirst: "
          << r.diagnostics().front().id << " "
          << r.diagnostics().front().message;
    }
  }
}

TEST(AnalyzeProperty, CorruptedDerivedConfigsTripTheirCheckIds) {
  std::uint64_t shmem_tested = 0;
  std::uint64_t eq7_tested = 0;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const GpuSpec dev = perturbed_device(seed);
    const auto base = model::derive(dev, WorkloadKind::kLd);
    const int lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;

    // k_c inflated past N_shared must always trip the shared-memory check.
    auto cfg = base;
    cfg.k_c = base.k_c +
              static_cast<int>(dev.shared_bytes /
                               (4 * static_cast<std::size_t>(cfg.m_c)));
    Report r;
    check_config(dev, cfg, r);
    EXPECT_TRUE(r.has("SNP-SHMEM-001")) << "seed " << seed;
    ++shmem_tested;

    // n_r below Eq. 7 (when a positive L_fn-multiple below the bound
    // exists) must trip the latency-hiding bound.
    const int bound = model::n_r_lower_bound(dev, base.m_r, base.m_c);
    if (bound >= 2 * lfn) {
      cfg = base;
      cfg.n_r = bound - lfn;
      Report r2;
      check_config(dev, cfg, r2);
      EXPECT_TRUE(r2.has("SNP-CFG-005")) << "seed " << seed;
      ++eq7_tested;
    }
  }
  EXPECT_EQ(shmem_tested, 1000u);
  // The Eq. 7 corruption needs headroom below the bound; most sampled
  // devices have it, and the sweep must exercise a healthy share.
  EXPECT_GT(eq7_tested, 400u);
}

}  // namespace
}  // namespace snp::analyze
