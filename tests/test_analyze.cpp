// The static-analysis subsystem: check registry, config/IR/source passes,
// the dataflow verification engine (races, bounds, overflow, def-use) with
// hand-built trip/clean fixture pairs per check ID, a reduced-seed
// mutation soundness soak, the full analyze() pipeline over every paper
// preset, and a seeded property sweep over perturbed devices (derive()
// output must always be error-free; targeted corruptions must trip their
// specific check IDs).
#include "analyze/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analyze/mutate.hpp"
#include "io/rng.hpp"
#include "kern/kernel_program.hpp"
#include "kern/opencl_source.hpp"

namespace snp::analyze {
namespace {

using bits::Comparison;
using model::GpuSpec;
using model::KernelConfig;
using model::WorkloadKind;

Severity severity_of(const std::string& id) {
  for (const auto& c : check_registry()) {
    if (id == c.id) {
      return c.severity;
    }
  }
  ADD_FAILURE() << "check ID not in registry: " << id;
  return Severity::kInfo;
}

TEST(Diagnostics, ReportCountsAndQueries) {
  Report r;
  EXPECT_FALSE(r.has_errors());
  r.add("SNP-TST-001", Severity::kError, "e");
  r.add("SNP-TST-002", Severity::kWarn, "w");
  r.add("SNP-TST-003", Severity::kInfo, "i");
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(r.has("SNP-TST-002"));
  EXPECT_FALSE(r.has("SNP-TST-004"));
  EXPECT_EQ(r.count(Severity::kError), 1u);
  EXPECT_EQ(r.count(Severity::kWarn), 1u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
}

TEST(Diagnostics, TextAndJsonRendering) {
  Report r;
  r.add("SNP-TST-001", Severity::kError, "a \"quoted\" message");
  std::ostringstream text;
  r.write_text(text);
  EXPECT_NE(text.str().find("error  SNP-TST-001"), std::string::npos);
  std::ostringstream json;
  r.write_json(json);
  EXPECT_NE(json.str().find("\\\"quoted\\\""), std::string::npos)
      << json.str();
  EXPECT_EQ(json.str().front(), '[');
  EXPECT_EQ(json.str().back(), ']');
}

TEST(Registry, IdsAreUniqueAndWellFormed) {
  const auto& checks = check_registry();
  EXPECT_GE(checks.size(), 30u);
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const std::string id = checks[i].id;
    EXPECT_EQ(id.rfind("SNP-", 0), 0u) << id;
    for (std::size_t j = i + 1; j < checks.size(); ++j) {
      EXPECT_STRNE(checks[i].id, checks[j].id);
    }
  }
}

TEST(Registry, SupersededIdsStayRegisteredAndPointAtReplacements) {
  // Satellite: SNP-IR-001/002/003 were replaced by the dataflow engine but
  // keep stable registry entries so old suppression lists do not dangle.
  const struct {
    const char* old_id;
    const char* new_id;
  } kPairs[] = {{"SNP-IR-001", "SNP-RACE-002"},
                {"SNP-IR-002", "SNP-DF-001"},
                {"SNP-IR-003", "SNP-DF-002"}};
  for (const auto& pair : kPairs) {
    const CheckInfo* old_check = find_check(pair.old_id);
    ASSERT_NE(old_check, nullptr) << pair.old_id;
    ASSERT_NE(old_check->superseded_by, nullptr) << pair.old_id;
    EXPECT_STREQ(old_check->superseded_by, pair.new_id);
    // The replacement must itself exist and not be superseded in turn.
    const CheckInfo* new_check = find_check(pair.new_id);
    ASSERT_NE(new_check, nullptr) << pair.new_id;
    EXPECT_EQ(new_check->superseded_by, nullptr) << pair.new_id;
  }
  EXPECT_EQ(find_check("SNP-NOPE-999"), nullptr);
}

TEST(Diagnostics, ReportsRenderInCanonicalOrder) {
  // Satellite: diagnostics sort by (check ID, section, index) regardless
  // of insertion order, so `lint --format json` is byte-stable.
  Report r;
  r.add("SNP-TST-009", Severity::kWarn, "late id", "body", 4);
  r.add("SNP-TST-001", Severity::kError, "early id, late site", "body", 7);
  r.add("SNP-TST-001", Severity::kError, "early id, early site",
        "prologue", 2);
  const auto sorted = r.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].message, "early id, early site");
  EXPECT_EQ(sorted[1].message, "early id, late site");
  EXPECT_EQ(sorted[2].message, "late id");
  const auto* first = r.first_error();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->message, "early id, early site");

  std::ostringstream json;
  r.write_json(json);
  const std::string s = json.str();
  EXPECT_LT(s.find("early id, early site"), s.find("early id, late site"));
  EXPECT_LT(s.find("early id, late site"), s.find("late id"));
  EXPECT_NE(s.find("\"section\": \"prologue\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"index\": 2"), std::string::npos) << s;
}

// ---- config pass -----------------------------------------------------

TEST(ConfigChecks, EveryPresetIsErrorFree) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::paper_preset(dev, kind);
      Report r;
      check_config(dev, cfg, r);
      EXPECT_FALSE(r.has_errors())
          << dev.name << " " << cfg.to_string();
    }
  }
}

TEST(ConfigChecks, Eq5DiscrepancyReportedAsInfoCitingDesignDoc) {
  // Satellite: the shipped m_c = N_b vs Eq. 5 as printed must surface as
  // an info diagnostic pointing at the DESIGN.md note, on every preset.
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      Report r;
      check_config(dev, model::paper_preset(dev, kind), r);
      ASSERT_TRUE(r.has("SNP-CFG-006")) << dev.name;
      const auto it = std::find_if(
          r.diagnostics().begin(), r.diagnostics().end(),
          [](const Diagnostic& d) { return d.id == "SNP-CFG-006"; });
      EXPECT_EQ(it->severity, Severity::kInfo);
      EXPECT_NE(it->message.find("DESIGN.md"), std::string::npos);
      EXPECT_NE(it->message.find(std::to_string(model::m_c_eq5(dev))),
                std::string::npos);
    }
  }
}

/// One corrupted field -> one specific check ID (plus possibly others).
void expect_trips(const GpuSpec& dev, const KernelConfig& cfg,
                  const std::string& id) {
  Report r;
  check_config(dev, cfg, r);
  EXPECT_TRUE(r.has(id)) << cfg.to_string() << " should trip " << id;
  EXPECT_EQ(severity_of(id), Severity::kError);
  EXPECT_TRUE(r.has_errors());
}

TEST(ConfigChecks, CorruptedConfigsTripTheirCheckIds) {
  const auto dev = model::gtx980();
  const auto base = model::paper_preset(dev, WorkloadKind::kLd);

  auto cfg = base;
  cfg.k_c = 9999;  // tile blows past usable shared memory
  expect_trips(dev, cfg, "SNP-SHMEM-001");

  cfg = base;
  cfg.n_r = 24;  // multiple of L_fn = 6 but below the Eq. 7 bound of 96
  expect_trips(dev, cfg, "SNP-CFG-005");

  cfg = base;
  cfg.n_r = 100;  // not a multiple of L_fn = 6
  expect_trips(dev, cfg, "SNP-CFG-004");

  cfg = base;
  cfg.m_r = 3;  // not a multiple of N_vec = 4
  expect_trips(dev, cfg, "SNP-CFG-002");

  cfg = base;
  cfg.m_c = 30;  // not a multiple of m_r = 4
  expect_trips(dev, cfg, "SNP-CFG-003");

  cfg = base;
  cfg.m_c = 0;
  expect_trips(dev, cfg, "SNP-CFG-001");

  cfg = base;
  cfg.n_r = 6144;  // 128 accumulators/thread: far past the register budget
  expect_trips(dev, cfg, "SNP-REG-001");

  cfg = base;
  cfg.grid = {17, 1};  // 17 > the GTX 980's 16 cores
  expect_trips(dev, cfg, "SNP-GRID-001");

  const auto vega = model::vega64();
  cfg = model::paper_preset(vega, WorkloadKind::kLd);
  cfg.m_c = 64;  // beyond N_b = 32
  expect_trips(vega, cfg, "SNP-BANK-001");

  auto small = dev;
  small.n_grp_max = 8;  // below the N_cl x L_fn = 24 plateau
  expect_trips(small, base, "SNP-OCC-001");

  auto broken = dev;
  broken.banks = 0;
  Report r;
  check_config(broken, base, r);
  EXPECT_TRUE(r.has("SNP-DEV-001"));
}

TEST(ConfigChecks, IdleCoresWarnButDoNotError) {
  const auto dev = model::gtx980();
  auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
  cfg.grid = {4, 2};  // 8 of 16 cores
  Report r;
  check_config(dev, cfg, r);
  EXPECT_TRUE(r.has("SNP-OCC-002"));
  EXPECT_FALSE(r.has_errors());
}

// ---- IR pass ---------------------------------------------------------

TEST(IrChecks, KernelProgramIsCleanAtPolicyOccupancy) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::paper_preset(dev, kind);
      const auto info = kern::build_kernel_program(
          dev, cfg, Comparison::kAndNot, 16, 2);
      Report r;
      check_program(dev, info.program, dev.groups_per_cluster(), r);
      EXPECT_TRUE(r.diagnostics().empty())
          << dev.name << ": " << r.diagnostics().front().id << " "
          << r.diagnostics().front().message;
    }
  }
}

TEST(IrChecks, KernelProgramDeclaresItsFootprints) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
  const auto info =
      kern::build_kernel_program(dev, cfg, Comparison::kAnd, 16, 2);
  const auto& p = info.program;
  EXPECT_EQ(p.shared_words, cfg.m_c * cfg.k_c);
  EXPECT_EQ(p.extent_words[0],
            static_cast<long long>(cfg.m_c) * cfg.k_c);
  EXPECT_EQ(p.extent_words[1], 17LL * dev.n_t);  // k_iterations + 1
  EXPECT_EQ(p.extent_words[2],
            static_cast<long long>(info.outputs_per_thread) * dev.n_t);
}

// ---- race detection --------------------------------------------------

TEST(RaceChecks, DroppedStagingBarrierTripsRace002) {
  // The SNP-IR-001 scenario, now proven as a real read-write race: with
  // the staging barrier gone, the cooperative A-tile stores share an
  // interval with the body's LDS reads of the same tile.
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
  auto info = kern::build_kernel_program(dev, cfg, Comparison::kAnd, 8, 2);
  auto& pro = info.program.prologue;
  pro.erase(std::remove_if(pro.begin(), pro.end(),
                           [](const sim::Instr& i) {
                             return i.op == sim::Opcode::kBar;
                           }),
            pro.end());
  Report r;
  check_program(dev, info.program, dev.groups_per_cluster(), r);
  EXPECT_TRUE(r.has("SNP-RACE-002"));
  EXPECT_FALSE(r.has("SNP-IR-001"));  // superseded ID is never emitted
  EXPECT_TRUE(r.has_errors());
}

TEST(RaceChecks, OverlappingStoresTripRace001AndDisjointStoresAreClean) {
  const auto dev = model::gtx980();  // n_t = 32
  auto make = [](long long second_base) {
    sim::Program p;
    p.shared_words = 64;
    p.prologue.push_back({sim::Opcode::kMovi, 0, sim::kNoReg, sim::kNoReg,
                          0});
    // Lane l writes word l, then word second_base + l: the footprints
    // overlap whenever second_base < n_t.
    p.prologue.push_back({sim::Opcode::kSts, sim::kNoReg, 0, sim::kNoReg,
                          1, sim::Space::kShared, 0, 0});
    p.prologue.push_back({sim::Opcode::kSts, sim::kNoReg, 0, sim::kNoReg,
                          1, sim::Space::kShared, second_base, 0});
    return p;
  };
  Report trip;
  check_program(dev, make(16), 1, trip);
  EXPECT_TRUE(trip.has("SNP-RACE-001"));
  EXPECT_TRUE(trip.has_errors());
  Report clean;
  check_program(dev, make(32), 1, clean);
  EXPECT_FALSE(clean.has("SNP-RACE-001"));

  // A barrier between the two overlapping stores orders them: clean.
  auto ordered = make(16);
  ordered.prologue.insert(
      ordered.prologue.begin() + 2,
      {sim::Opcode::kBar, sim::kNoReg, sim::kNoReg, sim::kNoReg, 0});
  Report barred;
  check_program(dev, ordered, 1, barred);
  EXPECT_FALSE(barred.has("SNP-RACE-001"));
}

TEST(RaceChecks, BroadcastStoreSelfRacesAcrossLanes) {
  // Every lane writing the same word is a write-write race of the
  // instruction with itself (stride 0, n_t >= 2 lanes).
  const auto dev = model::gtx980();
  sim::Program p;
  p.shared_words = 4;
  p.prologue.push_back({sim::Opcode::kMovi, 0, sim::kNoReg, sim::kNoReg,
                        0});
  p.prologue.push_back({sim::Opcode::kSts, sim::kNoReg, 0, sim::kNoReg, 0,
                        sim::Space::kShared, 0, 0});
  Report r;
  check_program(dev, p, 1, r);
  EXPECT_TRUE(r.has("SNP-RACE-001"));
}

/// A double-buffer gone wrong: iteration i writes shared words
/// [32i, 32i+31] before a barrier and then reads words shifted one lane
/// into iteration i+1's slot — so consecutive iterations race across
/// lanes unless the body also ends with a barrier.
sim::Program cross_iteration_program(std::uint64_t iterations) {
  sim::Program p;
  p.shared_words = 1024;
  p.iterations = iterations;
  p.prologue.push_back({sim::Opcode::kMovi, 0, sim::kNoReg, sim::kNoReg,
                        0});
  p.body.push_back({sim::Opcode::kSts, sim::kNoReg, 0, sim::kNoReg, 1,
                    sim::Space::kShared, 0, 32});
  p.body.push_back({sim::Opcode::kBar, sim::kNoReg, sim::kNoReg,
                    sim::kNoReg, 0});
  p.body.push_back({sim::Opcode::kLds, 1, sim::kNoReg, sim::kNoReg, 1,
                    sim::Space::kShared, 33, 32});
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 1, sim::kNoReg,
                        0});
  return p;
}

TEST(RaceChecks, CrossIterationRaceNeedsTheTwoIterationUnrolling) {
  // Iteration i's read of word i+1 races with iteration i+1's write of
  // the same word — invisible to a single-trip analysis.
  const auto dev = model::gtx980();
  Report two;
  check_program(dev, cross_iteration_program(2), 1, two);
  EXPECT_TRUE(two.has("SNP-RACE-002"));
  Report one;
  check_program(dev, cross_iteration_program(1), 1, one);
  EXPECT_FALSE(one.has("SNP-RACE-002"));
}

TEST(RaceChecks, MovingFootprintsFallBackToConservativeOverlap) {
  // Beyond the two modeled trips a moving shared footprint is judged by
  // interval MAY-overlap; the same race is still caught, conservatively.
  const auto dev = model::gtx980();
  Report r;
  check_program(dev, cross_iteration_program(16), 1, r);
  EXPECT_TRUE(r.has("SNP-RACE-002"));
}

TEST(RaceChecks, TrailingBodyBarrierMakesCrossIterationAccessClean) {
  auto p = cross_iteration_program(2);
  p.body.push_back({sim::Opcode::kBar, sim::kNoReg, sim::kNoReg,
                    sim::kNoReg, 0});
  Report r;
  check_program(model::gtx980(), p, 1, r);
  EXPECT_FALSE(r.has("SNP-RACE-002"));
  EXPECT_FALSE(r.has("SNP-RACE-001"));
}

// ---- bounds proofs ---------------------------------------------------

TEST(BoundChecks, SharedAccessPastTheTileTripsBound001) {
  const auto dev = model::gtx980();  // n_t = 32
  auto make = [](long long base) {
    sim::Program p;
    p.shared_words = 64;
    p.prologue.push_back({sim::Opcode::kLds, 0, sim::kNoReg, sim::kNoReg,
                          1, sim::Space::kShared, base, 0});
    p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                          0});
    return p;
  };
  Report trip;
  check_program(dev, make(60), 1, trip);  // lane 31 reads word 91
  EXPECT_TRUE(trip.has("SNP-BOUND-001"));
  EXPECT_TRUE(trip.has_errors());
  Report clean;
  check_program(dev, make(32), 1, clean);  // lane 31 reads word 63
  EXPECT_FALSE(clean.has("SNP-BOUND-001"));
}

TEST(BoundChecks, GlobalAccessPastTheExtentTripsBound002) {
  const auto dev = model::gtx980();
  auto make = [](long long extent) {
    sim::Program p;
    p.extent_words[0] = extent;
    p.prologue.push_back({sim::Opcode::kLdg, 0, sim::kNoReg, sim::kNoReg,
                          1, sim::Space::kGlobalA, 16, 0});
    p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                          0});
    return p;
  };
  Report trip;
  check_program(dev, make(32), 1, trip);  // lane 31 reads word 47
  EXPECT_TRUE(trip.has("SNP-BOUND-002"));
  Report clean;
  check_program(dev, make(48), 1, clean);
  EXPECT_FALSE(clean.has("SNP-BOUND-002"));
}

TEST(BoundChecks, BodyAccessesAreProvenOverTheFullTripRange) {
  // The strided B stream is checked at the last iteration, not just the
  // two unrolled copies.
  const auto dev = model::gtx980();
  sim::Program p;
  p.iterations = 8;
  p.extent_words[1] = 8LL * dev.n_t;  // one iteration short of the need
  p.body.push_back({sim::Opcode::kLdg, 0, sim::kNoReg, sim::kNoReg, 1,
                    sim::Space::kGlobalB, dev.n_t, dev.n_t});
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                        0});
  Report trip;
  check_program(dev, p, 1, trip);
  EXPECT_TRUE(trip.has("SNP-BOUND-002"));
  p.extent_words[1] = 9LL * dev.n_t;
  Report clean;
  check_program(dev, p, 1, clean);
  EXPECT_FALSE(clean.has("SNP-BOUND-002"));
}

TEST(BoundChecks, OversizedTileAllocationTripsBound003) {
  const auto dev = model::gtx980();
  const auto usable =
      static_cast<long long>(dev.shared_bytes - dev.shared_reserved) / 4;
  sim::Program p;
  p.shared_words = static_cast<int>(usable) + 1;
  Report r;
  check_program(dev, p, 1, r);
  EXPECT_TRUE(r.has("SNP-BOUND-003"));
  p.shared_words = static_cast<int>(usable);
  Report clean;
  check_program(dev, p, 1, clean);
  EXPECT_FALSE(clean.has("SNP-BOUND-003"));
}

// ---- overflow proofs -------------------------------------------------

/// The Eq. 2-3 accumulation skeleton: r0 += popcount(...) once per trip.
sim::Program accumulation_program(std::uint64_t iterations) {
  sim::Program p;
  p.iterations = iterations;
  p.prologue.push_back({sim::Opcode::kMovi, 0, sim::kNoReg, sim::kNoReg,
                        0});
  p.prologue.push_back({sim::Opcode::kLdg, 2, sim::kNoReg, sim::kNoReg,
                        0});
  p.body.push_back({sim::Opcode::kPopc, 1, 2, sim::kNoReg, 0});
  p.body.push_back({sim::Opcode::kAdd, 0, 0, 1, 0});
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                        0});
  return p;
}

TEST(OverflowChecks, HugeTripCountTripsOvf001WithTheExactBound) {
  const auto dev = model::gtx980();
  const std::uint64_t n = 1ULL << 28;
  Report r;
  check_program(dev, accumulation_program(n), 1, r);
  ASSERT_TRUE(r.has("SNP-OVF-001"));
  EXPECT_TRUE(r.has_errors());
  const auto it = std::find_if(
      r.diagnostics().begin(), r.diagnostics().end(),
      [](const Diagnostic& d) { return d.id == "SNP-OVF-001"; });
  // 32 popcount bits per trip, extrapolated exactly: 32 * 2^28.
  EXPECT_NE(it->message.find("at most 8589934592"), std::string::npos)
      << it->message;
}

TEST(OverflowChecks, BoundedAccumulationIsClean) {
  const auto dev = model::gtx980();
  for (const std::uint64_t n : {1ULL, 3ULL, 16ULL, 1ULL << 20}) {
    Report r;
    check_program(dev, accumulation_program(n), 1, r);
    EXPECT_FALSE(r.has("SNP-OVF-001")) << "iterations " << n;
  }
}

TEST(OverflowChecks, NonAffineGrowthSaturatesConservatively) {
  // r0 doubles every trip — no affine extrapolation exists, so the proof
  // must fall back to "unbounded" rather than miss the overflow.
  const auto dev = model::gtx980();
  sim::Program p;
  p.iterations = 100;
  p.prologue.push_back({sim::Opcode::kMovi, 0, sim::kNoReg, sim::kNoReg,
                        1});
  p.body.push_back({sim::Opcode::kAdd, 0, 0, 0, 0});
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                        0});
  Report r;
  check_program(dev, p, 1, r);
  ASSERT_TRUE(r.has("SNP-OVF-001"));
  const auto it = std::find_if(
      r.diagnostics().begin(), r.diagnostics().end(),
      [](const Diagnostic& d) { return d.id == "SNP-OVF-001"; });
  EXPECT_NE(it->message.find("unbounded"), std::string::npos)
      << it->message;
}

TEST(OverflowChecks, WordArithmeticIsExemptFromTheProof) {
  // Adds over loaded words model modular address/word arithmetic; they
  // must not be mistaken for Eq. 2-3 accumulation.
  const auto dev = model::gtx980();
  sim::Program p;
  p.iterations = 1ULL << 30;
  p.prologue.push_back({sim::Opcode::kLdg, 0, sim::kNoReg, sim::kNoReg,
                        0});
  p.body.push_back({sim::Opcode::kAdd, 0, 0, 0, 0});
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg,
                        0});
  Report r;
  check_program(dev, p, 1, r);
  EXPECT_FALSE(r.has("SNP-OVF-001"));
}

// ---- def-use and liveness --------------------------------------------

TEST(DefUseChecks, UndefinedRegisterReadTripsDf001) {
  sim::Program p;
  p.body.push_back({sim::Opcode::kAdd, 0, 0, 7, 0});  // r0, r7 undefined
  p.iterations = 4;
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg, 0});
  Report r;
  check_program(model::gtx980(), p, 1, r);
  EXPECT_TRUE(r.has("SNP-DF-001"));
  EXPECT_FALSE(r.has("SNP-IR-002"));  // superseded ID is never emitted
  EXPECT_TRUE(r.has_errors());
}

TEST(DefUseChecks, DeadResultRegisterTripsDf002) {
  sim::Program p;
  p.prologue.push_back({sim::Opcode::kLdg, 0, sim::kNoReg, sim::kNoReg, 0});
  p.body.push_back({sim::Opcode::kPopc, 1, 0, sim::kNoReg, 0});  // r1 dead
  p.iterations = 4;
  p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, 0, sim::kNoReg, 0});
  Report r;
  check_program(model::gtx980(), p, 1, r);
  EXPECT_TRUE(r.has("SNP-DF-002"));
  EXPECT_FALSE(r.has_errors());  // liveness is a warning, not an error
}

// ---- mutation soundness soak (reduced-seed tier-1 variant) -----------

TEST(MutationSoak, ReducedSeedSweepHasNoFalseNegatives) {
  // Full soak (>= 1000 mutants) lives in test_mutation_soak (slow tier);
  // this keeps a 180-mutant canary in tier 1.
  const SoakStats stats = mutation_soak(2);
  EXPECT_EQ(stats.programs, 18u);
  EXPECT_GE(stats.mutants, 150u);
  for (const auto& f : stats.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(IrChecks, DeepDependentChainWarnsOnlyWhenOccupancyCannotHideIt) {
  const auto dev = model::gtx980();
  const auto lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;
  const auto p = sim::dependent_chain(sim::Opcode::kPopc, 16, 64);
  Report starved;
  check_program(dev, p, 1, starved);
  EXPECT_TRUE(starved.has("SNP-IR-004"));
  Report hidden;
  check_program(dev, p, lfn, hidden);
  EXPECT_FALSE(hidden.has("SNP-IR-004"));
}

TEST(IrChecks, StridedSharedAccessTripsBank002) {
  const auto dev = model::gtx980();  // 32 banks
  const auto p = sim::strided_lds(dev.banks, 4, 16);
  Report r;
  check_program(dev, p, 1, r);
  EXPECT_TRUE(r.has("SNP-BANK-002"));
  const auto unit = sim::strided_lds(1, 4, 16);
  Report clean;
  check_program(dev, unit, 1, clean);
  EXPECT_FALSE(clean.has("SNP-BANK-002"));
}

// ---- source pass -----------------------------------------------------

TEST(SourceChecks, RenderedKernelIsClean) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto op :
         {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
      const auto cfg = model::paper_preset(dev, WorkloadKind::kLd);
      Report r;
      check_source(kern::render_config_header(dev, cfg, op),
                   kern::render_kernel_source(dev, cfg, op), r);
      EXPECT_TRUE(r.diagnostics().empty())
          << dev.name << ": " << r.diagnostics().front().message;
    }
  }
}

TEST(SourceChecks, UndefinedMacroTripsSrc001) {
  Report r;
  check_source("#define SNP_M_C 32\n",
               "__kernel void k() { int x = SNP_MISSING; }\n", r);
  EXPECT_TRUE(r.has("SNP-SRC-001"));
}

TEST(SourceChecks, ConflictingRedefinitionTripsSrc002) {
  Report r;
  check_source("#define SNP_M_C 32\n#define SNP_M_C 64\n",
               "__kernel void k() { int x = SNP_M_C; }\n", r);
  EXPECT_TRUE(r.has("SNP-SRC-002"));
  // Same value twice is benign (include-guard style), and commented-out
  // defines do not count.
  Report benign;
  check_source("#define SNP_M_C 32\n// #define SNP_M_C 64\n"
               "#define SNP_M_C 32\n",
               "__kernel void k() { int x = SNP_M_C; }\n", benign);
  EXPECT_FALSE(benign.has("SNP-SRC-002"));
}

TEST(SourceChecks, BarrierInDivergentControlFlowTripsSrc003) {
  Report r;
  check_source("",
               "__kernel void k(int t) {\n"
               "  if (t > 0) {\n"
               "    barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  }\n"
               "}\n",
               r);
  EXPECT_TRUE(r.has("SNP-SRC-003"));
  // Counted loops are uniform: every lane executes the same trip count.
  Report loop;
  check_source("",
               "__kernel void k(int n) {\n"
               "  for (int i = 0; i < n; ++i) {\n"
               "    barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  }\n"
               "}\n",
               loop);
  EXPECT_FALSE(loop.has("SNP-SRC-003"));
  Report unbalanced;
  check_source("", "__kernel void k() { {\n", unbalanced);
  EXPECT_TRUE(unbalanced.has("SNP-SRC-003"));
}

// ---- full pipeline ---------------------------------------------------

TEST(Analyze, EveryPresetWorkloadOpCombinationIsErrorFree) {
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      for (const auto op :
           {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
        for (const bool pre : {false, true}) {
          auto cfg = model::paper_preset(dev, kind);
          cfg.pre_negated = pre && op == Comparison::kAndNot;
          const Report r = analyze(dev, cfg, op);
          EXPECT_FALSE(r.has_errors())
              << dev.name << " " << bits::to_string(op);
          EXPECT_TRUE(r.has("SNP-CFG-006")) << dev.name;
        }
      }
    }
  }
}

TEST(Analyze, NeverThrowsOnGarbageConfigs) {
  const auto dev = model::titan_v();
  KernelConfig cfg;  // all zeros: build_kernel_program would throw
  const Report r = analyze(dev, cfg, Comparison::kAnd);
  EXPECT_TRUE(r.has("SNP-CFG-001"));
  EXPECT_TRUE(r.has_errors());
}

// ---- property sweep over perturbed devices ---------------------------

/// A random but internally consistent GpuSpec: fields move through
/// realistic ranges while the invariants derive() depends on hold (the
/// register file can hold the overhead, the group limit admits the
/// N_cl x L_fn plateau).
GpuSpec perturbed_device(std::uint64_t seed) {
  io::Rng rng(seed);
  GpuSpec dev;
  switch (rng.next_below(3)) {
    case 0:
      dev = model::gtx980();
      break;
    case 1:
      dev = model::titan_v();
      break;
    default:
      dev = model::vega64();
      break;
  }
  dev.n_t = rng.next_below(2) == 0 ? 32 : 64;
  dev.n_clusters = static_cast<int>(1 + rng.next_below(8));
  dev.banks = 16 << rng.next_below(3);  // 16, 32, 64
  dev.n_vec = 1 << rng.next_below(3);   // 1, 2, 4
  const int lfn = static_cast<int>(2 + rng.next_below(5));  // 2..6
  for (auto& pipe : dev.pipes) {
    pipe.latency_cycles = lfn;
    pipe.units_per_cluster = static_cast<int>(1 + rng.next_below(64));
  }
  dev.n_cores = static_cast<int>(1 + rng.next_below(100));
  dev.shared_bytes = (32u << rng.next_below(3)) * 1024u;  // 32/64/128 KiB
  dev.shared_reserved = rng.next_below(2) == 0 ? 0 : 128;
  dev.regs_per_core = (128u << rng.next_below(3)) * 1024u;
  dev.max_regs_per_thread = rng.next_below(2) == 0 ? 128 : 255;
  // Keep the resident-group limit above the occupancy plateau; derive()
  // has no n_grp_max escape hatch (that is exactly what SNP-OCC-001
  // guards in hand-written configs).
  dev.n_grp_max = dev.n_clusters * lfn +
                  static_cast<int>(rng.next_below(16));
  return dev;
}

TEST(AnalyzeProperty, DerivedConfigsPassOnAThousandPerturbedDevices) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const GpuSpec dev = perturbed_device(seed);
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = model::derive(dev, kind);
      const Report r = analyze(dev, cfg, Comparison::kXor);
      ASSERT_FALSE(r.has_errors())
          << "seed " << seed << " " << dev.name << " n_t=" << dev.n_t
          << " n_cl=" << dev.n_clusters << " banks=" << dev.banks
          << " cfg=" << cfg.to_string() << "\nfirst: "
          << r.diagnostics().front().id << " "
          << r.diagnostics().front().message;
    }
  }
}

TEST(AnalyzeProperty, CorruptedDerivedConfigsTripTheirCheckIds) {
  std::uint64_t shmem_tested = 0;
  std::uint64_t eq7_tested = 0;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const GpuSpec dev = perturbed_device(seed);
    const auto base = model::derive(dev, WorkloadKind::kLd);
    const int lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;

    // k_c inflated past N_shared must always trip the shared-memory check.
    auto cfg = base;
    cfg.k_c = base.k_c +
              static_cast<int>(dev.shared_bytes /
                               (4 * static_cast<std::size_t>(cfg.m_c)));
    Report r;
    check_config(dev, cfg, r);
    EXPECT_TRUE(r.has("SNP-SHMEM-001")) << "seed " << seed;
    ++shmem_tested;

    // n_r below Eq. 7 (when a positive L_fn-multiple below the bound
    // exists) must trip the latency-hiding bound.
    const int bound = model::n_r_lower_bound(dev, base.m_r, base.m_c);
    if (bound >= 2 * lfn) {
      cfg = base;
      cfg.n_r = bound - lfn;
      Report r2;
      check_config(dev, cfg, r2);
      EXPECT_TRUE(r2.has("SNP-CFG-005")) << "seed " << seed;
      ++eq7_tested;
    }
  }
  EXPECT_EQ(shmem_tested, 1000u);
  // The Eq. 7 corruption needs headroom below the bound; most sampled
  // devices have it, and the sweep must exercise a healthy share.
  EXPECT_GT(eq7_tested, 400u);
}

}  // namespace
}  // namespace snp::analyze
