// Kernel configuration: Eqs. 4-7, Table II presets, validation, core grid.
#include "model/config.hpp"

#include <gtest/gtest.h>

namespace snp::model {
namespace {

TEST(Config, Eq4MrIsNvec) {
  for (const auto& d : all_gpus()) {
    const auto cfg = derive(d, WorkloadKind::kLd);
    EXPECT_EQ(cfg.m_r, d.n_vec) << d.name;
  }
}

TEST(Config, Eq5AsPrintedDisagreesWithTableII) {
  // The documented discrepancy: Eq. 5 yields N_b / N_cl = 8, Table II uses
  // 32 for every device.
  for (const auto& d : all_gpus()) {
    EXPECT_EQ(m_c_eq5(d), 8) << d.name;
    // Both values pinned for every paper preset: the shipped m_c is
    // N_b = 32 on each device and workload, never the printed 8.
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto preset = paper_preset(d, kind);
      EXPECT_EQ(preset.m_c, 32) << d.name;
      EXPECT_EQ(preset.m_c, d.banks) << d.name;
      EXPECT_NE(preset.m_c, m_c_eq5(d)) << d.name;
    }
  }
}

TEST(Config, Eq6KcFromSharedMemory) {
  // k_c = (N_shared - reserved) / (4 * N_b): 383 on NVIDIA (the runtime
  // reserves a few words, Section V-E), 512 on Vega.
  EXPECT_EQ(derive(gtx980(), WorkloadKind::kLd).k_c, 383);
  EXPECT_EQ(derive(titan_v(), WorkloadKind::kLd).k_c, 383);
  EXPECT_EQ(derive(vega64(), WorkloadKind::kLd).k_c, 512);
}

TEST(Config, Eq7LowerBound) {
  // n_r >= (N_T * m_r / m_c) * N_vec * L_fn.
  EXPECT_EQ(n_r_lower_bound(gtx980(), 4, 32), 96);    // 4*4*6
  EXPECT_EQ(n_r_lower_bound(titan_v(), 4, 32), 64);   // 4*4*4
  EXPECT_EQ(n_r_lower_bound(vega64(), 4, 32), 128);   // 8*4*4
}

TEST(Config, NrBoundsBracketPaperValues) {
  for (const auto& d : all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto preset = paper_preset(d, kind);
      EXPECT_GE(preset.n_r, n_r_lower_bound(d, preset.m_r, preset.m_c))
          << d.name;
      EXPECT_LE(preset.n_r, n_r_upper_bound(d, preset.m_r, preset.m_c))
          << d.name;
    }
  }
}

TEST(Config, TableIIPresetsExact) {
  const auto g_ld = paper_preset(gtx980(), WorkloadKind::kLd);
  EXPECT_EQ(g_ld.m_r, 4);
  EXPECT_EQ(g_ld.n_r, 384);
  EXPECT_EQ(g_ld.k_c, 383);
  EXPECT_EQ(g_ld.m_c, 32);
  EXPECT_EQ(g_ld.grid, (CoreGrid{4, 4}));
  const auto g_fid = paper_preset(gtx980(), WorkloadKind::kFastId);
  EXPECT_EQ(g_fid.n_r, 768);
  EXPECT_EQ(g_fid.grid, (CoreGrid{1, 16}));
  const auto t_ld = paper_preset(titan_v(), WorkloadKind::kLd);
  EXPECT_EQ(t_ld.n_r, 1024);
  EXPECT_EQ(t_ld.k_c, 383);
  EXPECT_EQ(t_ld.grid, (CoreGrid{80, 1}));
  const auto t_fid = paper_preset(titan_v(), WorkloadKind::kFastId);
  EXPECT_EQ(t_fid.grid, (CoreGrid{1, 80}));
  const auto v_ld = paper_preset(vega64(), WorkloadKind::kLd);
  EXPECT_EQ(v_ld.n_r, 1024);
  EXPECT_EQ(v_ld.k_c, 512);
  EXPECT_EQ(v_ld.grid, (CoreGrid{32, 2}));
  const auto v_fid = paper_preset(vega64(), WorkloadKind::kFastId);
  EXPECT_EQ(v_fid.grid, (CoreGrid{1, 64}));
}

TEST(Config, AllPresetsValidateOnTheirDevice) {
  for (const auto& d : all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto check = validate(paper_preset(d, kind), d);
      EXPECT_TRUE(check.ok) << d.name << ": " << check.reason;
    }
  }
}

TEST(Config, DerivedConfigsValidate) {
  for (const auto& d : all_gpus()) {
    for (const auto kind : {WorkloadKind::kLd, WorkloadKind::kFastId}) {
      const auto cfg = derive(d, kind);
      const auto check = validate(cfg, d);
      EXPECT_TRUE(check.ok) << d.name << ": " << check.reason << " "
                            << cfg.to_string();
    }
  }
}

TEST(Config, SharedTileFitsExactly) {
  // The A tile fills usable shared memory to the byte: m_c * k_c * 4 ==
  // N_shared - reserved on every device.
  for (const auto& d : all_gpus()) {
    const auto cfg = paper_preset(d, WorkloadKind::kLd);
    EXPECT_EQ(cfg.shared_tile_bytes(), d.shared_bytes - d.shared_reserved)
        << d.name;
  }
}

TEST(Config, ValidationCatchesEachViolation) {
  const auto d = titan_v();
  auto cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.m_r = 3;  // not a multiple of N_vec
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.k_c = 4000;  // overflows shared memory
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.n_r = 63;  // not divisible by L_fn and below Eq. 7
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.n_r = 32;  // below the Eq. 7 lower bound
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.grid = {81, 1};  // more cores than the device has
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.m_c = 0;
  EXPECT_FALSE(validate(cfg, d).ok);
  cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.m_c = 36;  // not a multiple of m_r=4? it is; use 34 instead
  cfg.m_c = 34;
  EXPECT_FALSE(validate(cfg, d).ok);
}

TEST(Config, RegisterSpillRejected) {
  // Inflate n_r beyond what the register file supports.
  const auto d = vega64();
  auto cfg = paper_preset(d, WorkloadKind::kLd);
  cfg.n_r = 8192;
  const auto check = validate(cfg, d);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("register"), std::string::npos);
}

TEST(Config, AccumulatorsPerThread) {
  // m_r * (n_r / L_fn) outputs spread over N_T threads.
  EXPECT_EQ(paper_preset(gtx980(), WorkloadKind::kLd)
                .accumulators_per_thread(gtx980()),
            8);   // 4 * 64 / 32
  EXPECT_EQ(paper_preset(titan_v(), WorkloadKind::kLd)
                .accumulators_per_thread(titan_v()),
            32);  // 4 * 256 / 32
  EXPECT_EQ(paper_preset(vega64(), WorkloadKind::kLd)
                .accumulators_per_thread(vega64()),
            16);  // 4 * 256 / 64
}

TEST(Config, OccupancyLimitedToNclTimesLfn) {
  EXPECT_EQ(paper_preset(gtx980(), WorkloadKind::kLd)
                .groups_per_core(gtx980()),
            24);  // 4 * 6 <= N_grp 32
  EXPECT_EQ(paper_preset(vega64(), WorkloadKind::kLd)
                .groups_per_core(vega64()),
            16);  // 4 * 4 == N_grp 16, exactly at the limit
}

TEST(CoreGrid, DeriveGridPrefersSkewForSkewedProblems) {
  // FastID: one query tile, millions of database tiles -> all cores on N.
  const CoreGrid fid = derive_grid(1, 1 << 20, 80);
  EXPECT_EQ(fid.grid_m, 1);
  EXPECT_EQ(fid.grid_n, 80);
  // Square problems -> balanced-ish grids.
  const CoreGrid sq = derive_grid(1024, 1024, 16);
  EXPECT_EQ(sq.grid_m * sq.grid_n, 16);
  EXPECT_LE(std::max(sq.grid_m, sq.grid_n), 8);
}

TEST(CoreGrid, DeriveGridHandlesEdges) {
  EXPECT_EQ(derive_grid(1, 1, 16).cores(), 16);
  EXPECT_THROW((void)derive_grid(1, 1, 0), std::invalid_argument);
  const CoreGrid one = derive_grid(100, 100, 1);
  EXPECT_EQ(one.grid_m, 1);
  EXPECT_EQ(one.grid_n, 1);
}

TEST(Config, ToStringMentionsAllParameters) {
  auto cfg = paper_preset(vega64(), WorkloadKind::kLd);
  cfg.pre_negated = true;
  const std::string s = cfg.to_string();
  EXPECT_NE(s.find("m_r=4"), std::string::npos);
  EXPECT_NE(s.find("k_c=512"), std::string::npos);
  EXPECT_NE(s.find("n_r=1024"), std::string::npos);
  EXPECT_NE(s.find("32x2"), std::string::npos);
  EXPECT_NE(s.find("pre-negated"), std::string::npos);
}

TEST(Config, PresetUnknownDeviceThrows) {
  GpuSpec d = gtx980();
  d.name = "Mystery GPU";
  EXPECT_THROW((void)paper_preset(d, WorkloadKind::kLd),
               std::invalid_argument);
}

}  // namespace
}  // namespace snp::model
