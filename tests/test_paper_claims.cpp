// Paper-shape regression tests: every headline quantitative claim of the
// paper's evaluation section, pinned so the reproduction cannot silently
// drift. Absolute times are simulated; the *shapes* asserted here — who
// wins, percentages of peak, scaling knees, crossovers, the Vega NOT
// penalty — are the reproduction targets (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "core/snpcmp.hpp"
#include "model/peak.hpp"
#include "sim/timing.hpp"

namespace snp {
namespace {

using bits::Comparison;

struct Fig5Case {
  const char* device;
  std::size_t max_snps;    // M = N, sized by the device's max allocation
  std::size_t max_k_bits;  // one-tile maximum: k_c * 32
  double paper_pct_of_peak;
};

class Fig5PctOfPeak : public ::testing::TestWithParam<Fig5Case> {};

TEST_P(Fig5PctOfPeak, MatchesPaper) {
  const auto& c = GetParam();
  const auto dev = model::gpu_by_name(c.device);
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const sim::KernelShape shape{c.max_snps, c.max_snps, c.max_k_bits / 32};
  const auto t = sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape);
  EXPECT_NEAR(t.pct_of_peak, c.paper_pct_of_peak, 1.5)
      << dev.name << " achieved " << t.pct_of_peak << " % of peak";
}

// Fig. 5: achieved throughput at max problem size per device. SNP counts
// are the paper's device maxima; K maxima are one k_c tile (12,256 =
// 383*32 bits on NVIDIA; 16,384 = 512*32 on Vega).
INSTANTIATE_TEST_SUITE_P(
    Devices, Fig5PctOfPeak,
    ::testing::Values(Fig5Case{"gtx980", 15360, 12256, 90.7},
                      Fig5Case{"titanv", 25600, 12256, 97.1},
                      Fig5Case{"vega64", 40960, 16384, 54.9}));

TEST(Fig5, MaxSnpCountsFitTheOutputAllocation) {
  // The paper's per-device SNP maxima are set by fitting the M x N output
  // matrix (4-byte counts) into the max allocation.
  struct {
    const char* device;
    std::size_t max_snps;
  } cases[] = {{"gtx980", 15360}, {"titanv", 25600}, {"vega64", 40960}};
  for (const auto& c : cases) {
    const auto dev = model::gpu_by_name(c.device);
    const std::size_t out_bytes = c.max_snps * c.max_snps * 4;
    EXPECT_LE(out_bytes, dev.max_alloc_bytes) << c.device;
    // ... and a modestly larger problem would not fit.
    const std::size_t next = (c.max_snps + 4096) * (c.max_snps + 4096) * 4;
    EXPECT_GT(next, dev.max_alloc_bytes) << c.device;
  }
}

TEST(Fig5, ThroughputRisesWithSnpStrings) {
  // The plotted curves rise monotonically toward peak as the number of
  // SNP strings (inner dimension) grows.
  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    double prev = 0.0;
    for (std::size_t k_bits = 1024; k_bits <= 12256; k_bits += 2048) {
      const auto t = sim::estimate_kernel(dev, cfg, Comparison::kAnd,
                                          {8192, 8192, k_bits / 32});
      EXPECT_GT(t.gops, prev) << dev.name;
      prev = t.gops;
    }
  }
}

TEST(Fig6, EndToEndCrossoverAndSpeedupBand) {
  // 10,000-SNP LD: the CPU wins tiny problems (OpenCL init dominates);
  // every GPU wins from ~10k sequences on, with speedups that grow into
  // the multi-hundred-percent band the paper reports (47 % - 677 %).
  Context cpu = Context::cpu();
  ComputeOptions o;
  o.functional = false;
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context gpu = Context::gpu(name);
    const auto small_gpu =
        gpu.estimate(10000, 10000, 1000, Comparison::kAnd, o);
    const auto small_cpu =
        cpu.estimate(10000, 10000, 1000, Comparison::kAnd, o);
    EXPECT_LT(small_cpu.end_to_end_s, small_gpu.end_to_end_s) << name;

    const auto big_gpu =
        gpu.estimate(10000, 10000, 50000, Comparison::kAnd, o);
    const auto big_cpu =
        cpu.estimate(10000, 10000, 50000, Comparison::kAnd, o);
    const double faster_pct =
        100.0 * (big_cpu.end_to_end_s / big_gpu.end_to_end_s - 1.0);
    EXPECT_GT(faster_pct, 300.0) << name;
    EXPECT_LT(faster_pct, 1000.0) << name;
  }
}

TEST(Fig7, TitanVScalesAlmostPerfectly) {
  // Per-core performance relative to the nominal-clock single-core model;
  // DVFS boost pushes small-core-count points above 100 %.
  const auto dev = model::titan_v();
  auto nominal = dev;
  nominal.boost_frac = 0.0;
  auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  cfg.grid = {1, 1};
  const sim::KernelShape per_core{32, 4096, 383};
  const auto base = sim::estimate_kernel(nominal, cfg, Comparison::kAnd,
                                         per_core);
  const double base_rate = base.wordops / base.seconds;
  auto rel = [&](int cores) {
    auto g = cfg;
    g.grid = {cores, 1};
    const sim::KernelShape s{32 * static_cast<std::size_t>(cores), 4096,
                             383};
    const auto t = sim::estimate_kernel(dev, g, Comparison::kAnd, s);
    return t.wordops / t.seconds / cores / base_rate;
  };
  EXPECT_GT(rel(4), 1.0);    // above 100 % for fewer cores
  EXPECT_GT(rel(80), 0.92);  // "losing virtually no performance"
}

TEST(Fig7, Gtx980ReachesNinetyPercentAtSixteenCores) {
  const auto dev = model::gtx980();
  auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  cfg.grid = {1, 1};
  const sim::KernelShape per_core{32, 4096, 383};
  const auto base = sim::estimate_kernel(dev, cfg, Comparison::kAnd,
                                         per_core);
  auto full = cfg;
  full.grid = {16, 1};
  const auto t = sim::estimate_kernel(dev, full, Comparison::kAnd,
                                      {32 * 16, 4096, 383});
  const double rel =
      (t.wordops / t.seconds / 16) / (base.wordops / base.seconds);
  EXPECT_NEAR(rel, 0.90, 0.04);
}

TEST(Fig7, VegaDropsPastEightCores) {
  const auto dev = model::vega64();
  auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  cfg.grid = {1, 1};
  const sim::KernelShape per_core{32, 8192, 512};
  const auto base = sim::estimate_kernel(dev, cfg, Comparison::kAnd,
                                         per_core);
  const double base_rate = base.wordops / base.seconds;
  auto rel = [&](int cores) {
    auto g = cfg;
    g.grid = {cores, 1};
    const sim::KernelShape s{32 * static_cast<std::size_t>(cores), 8192,
                             512};
    const auto t = sim::estimate_kernel(dev, g, Comparison::kAnd, s);
    return t.wordops / t.seconds / cores / base_rate;
  };
  EXPECT_GT(rel(8), 0.95);   // healthy up to 8 cores
  const double r16 = rel(16);
  const double r32 = rel(32);
  const double r64 = rel(64);
  EXPECT_LT(r16, 0.97);      // decline visible past 8
  EXPECT_LT(r32, r16);       // and monotone
  EXPECT_LT(r64, r32);
  EXPECT_NEAR(r64, 0.55, 0.05);  // consistent with 54.9 % of peak
}

TEST(Fig9, NotPenaltyOnVegaOnly) {
  // 1-core AND vs AND-NOT comparison (the paper pins this to 1 core to
  // decouple it from the scalability issue).
  for (const auto& dev : model::all_gpus()) {
    auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
    cfg.grid = {1, 1};
    const sim::KernelShape shape{
        32, 8192, static_cast<std::size_t>(cfg.k_c)};
    const auto t_and =
        sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape);
    const auto t_andn =
        sim::estimate_kernel(dev, cfg, Comparison::kAndNot, shape);
    if (dev.vendor == "AMD") {
      EXPECT_NEAR(t_and.gops / t_andn.gops, 1.5, 0.05) << dev.name;
    } else {
      EXPECT_NEAR(t_and.gops / t_andn.gops, 1.0, 1e-9) << dev.name;
    }
  }
}

TEST(Fig8, FastIdScalesWithSnpCountAndFitsTimeBudget) {
  // 32 queries vs 20 M profiles, SNP counts 128 -> 1024: end-to-end time
  // grows with SNP count and stays in the seconds range; the GTX 980 must
  // stream the database in more chunks than the larger-memory devices.
  ComputeOptions o;
  o.functional = false;
  int gtx_chunks = 0;
  int titan_chunks = 0;
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context ctx = Context::gpu(name);
    double prev = 0.0;
    for (const std::size_t snps : {128u, 256u, 512u, 1024u}) {
      const auto t =
          ctx.estimate(32, 20'000'000, snps, Comparison::kXor, o);
      EXPECT_GT(t.end_to_end_s, prev) << name << " snps=" << snps;
      EXPECT_LT(t.end_to_end_s, 30.0) << name;
      prev = t.end_to_end_s;
      if (snps == 1024) {
        if (std::string(name) == "gtx980") {
          gtx_chunks = t.chunks;
        }
        if (std::string(name) == "titanv") {
          titan_chunks = t.chunks;
        }
      }
    }
  }
  // The database must be streamed in many pipelined chunks everywhere; the
  // GTX 980's smaller memory never allows fewer chunks than the Titan V.
  EXPECT_GE(gtx_chunks, titan_chunks);
  EXPECT_GT(titan_chunks, 4);
}

TEST(TableI, PeaksAndBottlenecksSummary) {
  // The derived theoretical peaks the figures' dotted lines represent.
  EXPECT_NEAR(model::peak_wordops_per_s(model::gtx980(),
                                        Comparison::kAnd) /
                  1e9,
              700.0, 1.0);
  EXPECT_NEAR(model::peak_wordops_per_s(model::titan_v(),
                                        Comparison::kAnd) /
                  1e9,
              1862.4, 1.0);
  EXPECT_NEAR(model::peak_wordops_per_s(model::vega64(),
                                        Comparison::kAnd) /
                  1e9,
              3405.8, 1.0);
}

TEST(Contribution, GpuBeatsNearPeakCpuOnKernelThroughput) {
  // The paper's core motivation: even the slowest GPU's *achieved* kernel
  // throughput exceeds the Xeon's theoretical peak.
  const double cpu_peak =
      model::cpu_peak_wordops_per_s(model::xeon_e5_2620v2());
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto t = sim::estimate_kernel(dev, cfg, Comparison::kAnd,
                                      {15360, 15360, 383});
  EXPECT_GT(t.gops * 1e9, 5.0 * cpu_peak);
}

}  // namespace
}  // namespace snp
