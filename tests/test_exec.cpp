// Unit tests for snp::exec — the host-side thread pool, semaphore, and
// dependency-ordered task graph behind the asynchronous chunk pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"

namespace snp::exec {
namespace {

using namespace std::chrono_literals;

TEST(ThreadPool, ZeroThreadsRunsInlineOnThePostingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran = false;
  pool.post([&] {
    ran_on = std::this_thread::get_id();
    ran = true;
  });
  // Inline mode: the task has already run by the time post() returns.
  EXPECT_TRUE(ran);
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, SubmitCarriesResultsAndExceptions) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{3}}) {
    ThreadPool pool(threads);
    auto ok = pool.submit([] { return 6 * 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
  }
}

TEST(ThreadPool, DestructionDrainsEveryQueuedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&ran] {
        std::this_thread::sleep_for(100us);
        ran.fetch_add(1);
      });
    }
    // Destructor must execute all 64, not drop the still-queued tail.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, WaitIdleObservesAllPostedWork) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, PostedTaskExceptionPropagatesToWaitIdle) {
  // Regression: a throwing post()ed task used to escape the worker loop
  // (std::terminate). The first exception must be captured and rethrown
  // from the next wait_idle(); later tasks keep running.
  ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("task boom"); });
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.post([&ran] { ++ran; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.failed_count(), 1u);
  // Sticky until cleared, so callers that wait in several places cannot
  // miss it; clear_error() re-arms the pool for reuse.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.clear_error();
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(pool.failed_count(), 0u);
}

TEST(ThreadPool, OnlyTheFirstExceptionIsRethrown) {
  ThreadPool pool(1);  // single worker => deterministic failure order
  pool.post([] { throw std::runtime_error("first"); });
  pool.post([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(pool.failed_count(), 2u);
}

TEST(ThreadPool, InlineModePropagatesDirectlyFromPost) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.post([] { throw std::runtime_error("inline"); }),
               std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());  // nothing captured: it unwound
}

TEST(ThreadPool, DestructorDrainsCleanlyPastFailingTasks) {
  // Shutdown with a queue full of throwing tasks must drain and join
  // without terminating the process.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.post([&ran, i] {
        ++ran;
        if (i % 2 == 0) {
          throw std::runtime_error("flaky shutdown task");
        }
      });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(Semaphore, BlocksAtZeroUntilReleased) {
  Semaphore sem(2);
  sem.acquire();
  sem.acquire();
  EXPECT_EQ(sem.available(), 0u);

  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    sem.acquire();  // must block until the release below
    acquired.store(true);
  });
  std::this_thread::sleep_for(2ms);
  EXPECT_FALSE(acquired.load());
  sem.release();
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

TEST(TaskGraph, RespectsDependencyOrder) {
  ThreadPool pool(4);
  TaskGraph graph(pool);
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&order, &mu, tag] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  // Diamond: 0 -> {1, 2} -> 3.
  const auto t0 = graph.add(record(0));
  const auto t1 = graph.add(record(1), {t0});
  const auto t2 = graph.add(record(2), {t0});
  graph.add(record(3), {t1, t2});
  graph.wait();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
  EXPECT_EQ(graph.completed(), 4u);
}

TEST(TaskGraph, DrainChainDeliversInOrderUnderParallelism) {
  // The async compare() idiom: exec tasks run in any order, but drain i
  // depends on {exec i, drain i-1} and so fires strictly in stream order.
  ThreadPool pool(4);
  TaskGraph graph(pool);
  constexpr std::size_t kChunks = 48;
  std::vector<std::size_t> delivered;
  std::mutex mu;
  TaskGraph::TaskId prev_drain = 0;
  for (std::size_t i = 0; i < kChunks; ++i) {
    const auto exec_id = graph.add([i] {
      if (i % 3 == 0) {
        std::this_thread::sleep_for(200us);  // jitter the exec order
      }
    });
    std::vector<TaskGraph::TaskId> deps{exec_id};
    if (i > 0) {
      deps.push_back(prev_drain);
    }
    prev_drain = graph.add(
        [&delivered, &mu, i] {
          const std::lock_guard<std::mutex> lock(mu);
          delivered.push_back(i);
        },
        deps);
  }
  graph.wait();

  std::vector<std::size_t> expected(kChunks);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(delivered, expected);
}

TEST(TaskGraph, FirstExceptionPropagatesAndDependentsAreSkipped) {
  ThreadPool pool(2);
  TaskGraph graph(pool);
  std::atomic<int> ran{0};
  const auto boom = graph.add([] {
    throw std::runtime_error("chunk 2 failed");
  });
  const auto child = graph.add([&ran] { ran.fetch_add(1); }, {boom});
  graph.add([&ran] { ran.fetch_add(1); }, {child});  // transitive skip
  graph.add([&ran] { ran.fetch_add(1); });           // independent: runs
  EXPECT_THROW(graph.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(graph.completed(), 1u);
  EXPECT_EQ(graph.skipped(), 2u);
  // wait() after failure stays terminal and keeps rethrowing.
  EXPECT_THROW(graph.wait(), std::runtime_error);
}

TEST(TaskGraph, AddingToAFailedDependencySkipsImmediately) {
  ThreadPool pool(1);
  TaskGraph graph(pool);
  const auto boom = graph.add([] { throw std::logic_error("early"); });
  EXPECT_THROW(graph.wait(), std::logic_error);
  bool ran = false;
  graph.add([&ran] { ran = true; }, {boom});  // dep already failed
  EXPECT_THROW(graph.wait(), std::logic_error);
  EXPECT_FALSE(ran);
  EXPECT_EQ(graph.skipped(), 1u);
}

TEST(TaskGraph, SemaphoreBoundsTasksInFlight) {
  // The producer-side backpressure pattern from compare(): acquire a slot
  // before adding a chunk, release it from the chunk's final task. At most
  // `kSlots` chunks may ever be between acquire and release.
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kChunks = 40;
  ThreadPool pool(4);
  TaskGraph graph(pool);
  Semaphore slots(kSlots);
  std::atomic<std::size_t> in_flight{0};
  std::atomic<std::size_t> peak{0};
  for (std::size_t i = 0; i < kChunks; ++i) {
    slots.acquire();
    const std::size_t now = in_flight.fetch_add(1) + 1;
    std::size_t seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    graph.add([&] {
      std::this_thread::sleep_for(100us);
      in_flight.fetch_sub(1);
      slots.release();
    });
  }
  graph.wait();
  EXPECT_EQ(in_flight.load(), 0u);
  EXPECT_LE(peak.load(), kSlots);
  EXPECT_GE(peak.load(), 1u);
}

TEST(TaskGraph, DestructorQuiescesWithQueuedWork) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  {
    TaskGraph graph(pool);
    TaskGraph::TaskId prev = 0;
    for (int i = 0; i < 32; ++i) {
      std::vector<TaskGraph::TaskId> deps;
      if (i > 0) {
        deps.push_back(prev);
      }
      prev = graph.add(
          [&ran] {
            std::this_thread::sleep_for(100us);
            ran.fetch_add(1);
          },
          deps);
    }
    // No wait(): the destructor must block until the chain finishes.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskGraph, StressHundredsOfTinyTasksWithRandomDeps) {
  for (const std::size_t threads :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    ThreadPool pool(threads);
    TaskGraph graph(pool);
    constexpr std::size_t kTasks = 600;
    std::atomic<std::size_t> ran{0};
    std::vector<TaskGraph::TaskId> ids;
    ids.reserve(kTasks);
    std::uint64_t rng = 12345;
    for (std::size_t i = 0; i < kTasks; ++i) {
      std::vector<TaskGraph::TaskId> deps;
      if (!ids.empty()) {
        // Up to two pseudo-random earlier tasks as dependencies.
        for (int d = 0; d < 2; ++d) {
          rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
          if (rng % 3 != 0) {
            deps.push_back(ids[(rng >> 33) % ids.size()]);
          }
        }
      }
      ids.push_back(graph.add([&ran] { ran.fetch_add(1); }, deps));
    }
    graph.wait();
    EXPECT_EQ(ran.load(), kTasks) << threads << " threads";
    EXPECT_EQ(graph.added(), kTasks);
    EXPECT_EQ(graph.completed(), kTasks);
    EXPECT_EQ(graph.skipped(), 0u);
  }
}

}  // namespace
}  // namespace snp::exec
