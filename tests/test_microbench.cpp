// Microbenchmark methodology closure (paper Section V-C/D): the
// measurements recover the parameters each simulated device was configured
// with — latency chains, throughput plateaus, pipe-sharing discovery.
#include "micro/microbench.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "model/peak.hpp"

namespace snp::micro {
namespace {

/// Expected dependent-chain rate: max(L_fn, ceil(N_T / N_fn)) — issue
/// serialization can exceed the architectural latency on narrow pipes
/// (e.g. quarter-rate popcount on Volta).
double expected_chain_rate(const model::GpuSpec& d, model::InstrClass cls) {
  const auto& pipe = d.pipe(cls);
  const int occ = (d.n_t + pipe.units_per_cluster - 1) /
                  pipe.units_per_cluster;
  return std::max(pipe.latency_cycles, occ);
}

TEST(Microbench, LatencyChainsRecoverConfiguredRates) {
  for (const auto& d : model::all_gpus()) {
    const double popc =
        measure_latency(d, sim::Opcode::kPopc).cycles_per_instr;
    EXPECT_NEAR(popc, expected_chain_rate(d, model::InstrClass::kPopc),
                0.35)
        << d.name;
    const double add =
        measure_latency(d, sim::Opcode::kAdd).cycles_per_instr;
    EXPECT_NEAR(add, expected_chain_rate(d, model::InstrClass::kAdd), 0.35)
        << d.name;
  }
}

TEST(Microbench, MaxwellPopcChainMatchesTableI) {
  // On the GTX 980 the chain rate equals the Table I latency (6 > the
  // 4-cycle issue occupancy), so the paper's method reads L_fn directly.
  const double rate = measure_latency(model::gtx980(), sim::Opcode::kPopc)
                          .cycles_per_instr;
  EXPECT_NEAR(rate, 6.0, 0.35);
}

TEST(Microbench, ThroughputPlateausAtConfiguredUnits) {
  for (const auto& d : model::all_gpus()) {
    for (const auto op : {sim::Opcode::kPopc, sim::Opcode::kAnd}) {
      const double peak = peak_throughput(d, op);
      const auto cls = sim::instr_class(op);
      const double expected =
          static_cast<double>(d.pipe(cls).units_per_cluster) *
          d.n_clusters;
      EXPECT_NEAR(peak, expected, 0.12 * expected)
          << d.name << " " << sim::to_string(op);
    }
  }
}

TEST(Microbench, ThroughputSweepIsMonotoneAndSaturates) {
  const auto d = model::gtx980();
  const auto sweep = throughput_sweep(d, sim::Opcode::kPopc);
  ASSERT_FALSE(sweep.empty());
  // Group counts that are not multiples of N_cl leave clusters imbalanced
  // and dip below the envelope, so check monotonicity along the balanced
  // points only (the paper sweeps in those strides too).
  double best = 0.0;
  double prev_balanced = 0.0;
  for (const auto& pt : sweep) {
    if (pt.n_groups % d.n_clusters == 0) {
      EXPECT_GE(pt.lanes_per_cycle, prev_balanced * 0.99)
          << "groups=" << pt.n_groups;
      prev_balanced = pt.lanes_per_cycle;
    }
    best = std::max(best, pt.lanes_per_cycle);
  }
  // The paper's model: N_grp = N_cl * L_fn suffices for peak.
  const int saturating = d.n_clusters * d.groups_per_cluster();
  const auto at_sat = sweep[static_cast<std::size_t>(saturating - 1)];
  EXPECT_GE(at_sat.lanes_per_cycle, 0.95 * best);
}

TEST(Microbench, PipeSharingDiscovery) {
  // NVIDIA: popc is its own pipe; add+and share the INT pipe.
  for (const auto& d : {model::gtx980(), model::titan_v()}) {
    EXPECT_FALSE(
        probe_pipe_sharing(d, sim::Opcode::kPopc, sim::Opcode::kAdd)
            .shared_pipe)
        << d.name;
    EXPECT_TRUE(
        probe_pipe_sharing(d, sim::Opcode::kAdd, sim::Opcode::kAnd)
            .shared_pipe)
        << d.name;
  }
  // Vega: popc separate; add+and share (the Section V-D observation).
  const auto v = model::vega64();
  EXPECT_FALSE(probe_pipe_sharing(v, sim::Opcode::kPopc, sim::Opcode::kAdd)
                   .shared_pipe);
  EXPECT_TRUE(probe_pipe_sharing(v, sim::Opcode::kAdd, sim::Opcode::kAnd)
                  .shared_pipe);
}

TEST(Microbench, SharingSlowdownMagnitudes) {
  // Shared pipes show ~2x slowdown for an equal mix; separate pipes with
  // the cheap op hidden under the expensive one show ~1x.
  const auto r_shared = probe_pipe_sharing(model::vega64(),
                                           sim::Opcode::kAdd,
                                           sim::Opcode::kAnd);
  EXPECT_GT(r_shared.slowdown, 1.6);
  const auto r_sep = probe_pipe_sharing(model::gtx980(),
                                        sim::Opcode::kPopc,
                                        sim::Opcode::kAdd);
  EXPECT_LT(r_sep.slowdown, 1.4);
}

TEST(Microbench, CharacterizeProducesFullReport) {
  const auto rep = characterize(model::vega64());
  EXPECT_EQ(rep.dev.name, "Vega 64");
  ASSERT_EQ(rep.instrs.size(), 5u);
  EXPECT_TRUE(rep.popc_separate_from_int);
  EXPECT_TRUE(rep.add_and_share_pipe);
  EXPECT_GT(rep.saturating_groups, 0);
  EXPECT_LE(rep.saturating_groups, rep.dev.n_grp_max);
  for (const auto& c : rep.instrs) {
    EXPECT_GT(c.measured_latency, 0.0);
    EXPECT_GT(c.inferred_units_per_cluster, 0.0);
  }
}

TEST(Microbench, InferredUnitsMatchTableI) {
  const auto rep = characterize(model::gtx980());
  for (const auto& c : rep.instrs) {
    const auto cls = sim::instr_class(c.op);
    const double expected = model::gtx980().pipe(cls).units_per_cluster;
    EXPECT_NEAR(c.inferred_units_per_cluster, expected, 0.15 * expected)
        << sim::to_string(c.op);
  }
}

TEST(Microbench, NvidiaAddAndSharingIsNotPopcSharing) {
  // Sanity: the discovery is per-pair, not global.
  const auto d = model::titan_v();
  const auto popc_and =
      probe_pipe_sharing(d, sim::Opcode::kPopc, sim::Opcode::kAnd);
  EXPECT_FALSE(popc_and.shared_pipe);
}


TEST(Microbench, KernelPeakMatchesAnalyticRate) {
  // The §V-D per-kernel microbenchmark must land on the bottleneck-pipe
  // rate for every device and operation, including the Vega AND-NOT
  // penalty and its pre-negation remedy.
  for (const auto& d : model::all_gpus()) {
    for (const auto op : {bits::Comparison::kAnd, bits::Comparison::kXor,
                          bits::Comparison::kAndNot}) {
      const double measured = kernel_peak_throughput(d, op);
      const double analytic =
          model::cluster_rate(d, model::kernel_mix(d, op))
              .wordops_per_cycle *
          d.n_clusters;
      EXPECT_NEAR(measured, analytic, 0.08 * analytic)
          << d.name << " " << bits::to_string(op);
    }
  }
  const double vega_pre = kernel_peak_throughput(
      model::vega64(), bits::Comparison::kAndNot, /*pre_negated=*/true);
  const double vega_and =
      kernel_peak_throughput(model::vega64(), bits::Comparison::kAnd);
  EXPECT_NEAR(vega_pre, vega_and, 0.03 * vega_and);
}

}  // namespace
}  // namespace snp::micro
