// OpenCL source rendering: macro values, per-device/op variation, basic
// syntactic sanity (balanced delimiters, required constructs).
#include "kern/opencl_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace snp::kern {
namespace {

using bits::Comparison;

std::size_t count_char(const std::string& s, char c) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), c));
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(OpenclSource, ConfigHeaderCarriesTableIIValues) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto header = render_config_header(dev, cfg, Comparison::kAnd);
  EXPECT_TRUE(contains(header, "#define SNP_M_R 4"));
  EXPECT_TRUE(contains(header, "#define SNP_M_C 32"));
  EXPECT_TRUE(contains(header, "#define SNP_K_C 383"));
  EXPECT_TRUE(contains(header, "#define SNP_N_R 1024"));
  EXPECT_TRUE(contains(header, "#define SNP_N_T 32"));
  EXPECT_TRUE(contains(header, "#define SNP_L_FN 4"));
  EXPECT_TRUE(contains(header, "#define SNP_OUTPUTS_PER_THREAD 32"));
  EXPECT_TRUE(contains(header, "#define SNP_FUSED_ANDNOT 1"));
  EXPECT_TRUE(contains(header, "Titan V"));
}

TEST(OpenclSource, HeadersDifferAcrossDevices) {
  const auto op = Comparison::kAnd;
  const auto h_gtx = render_config_header(
      model::gtx980(),
      model::paper_preset(model::gtx980(), model::WorkloadKind::kLd), op);
  const auto h_vega = render_config_header(
      model::vega64(),
      model::paper_preset(model::vega64(), model::WorkloadKind::kLd), op);
  EXPECT_TRUE(contains(h_gtx, "#define SNP_L_FN 6"));
  EXPECT_TRUE(contains(h_vega, "#define SNP_K_C 512"));
  EXPECT_TRUE(contains(h_vega, "#define SNP_N_T 64"));
  EXPECT_FALSE(contains(h_vega, "SNP_FUSED_ANDNOT"));
}

TEST(OpenclSource, KernelBodyStructure) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto src = render_kernel_source(dev, cfg, Comparison::kAnd);
  EXPECT_TRUE(contains(src, "__kernel void snp_compare"));
  EXPECT_TRUE(contains(src, "__local uint a_tile[SNP_M_C * SNP_K_C]"));
  EXPECT_TRUE(contains(src, "barrier(CLK_LOCAL_MEM_FENCE)"));
  EXPECT_TRUE(contains(src, "popcount(a_val & b_val)"));
  EXPECT_EQ(count_char(src, '{'), count_char(src, '}'));
  EXPECT_EQ(count_char(src, '('), count_char(src, ')'));
  EXPECT_EQ(count_char(src, '['), count_char(src, ']'));
}

TEST(OpenclSource, OperationVariants) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  EXPECT_TRUE(contains(render_kernel_source(dev, cfg, Comparison::kXor),
                       "popcount(a_val ^ b_val)"));
  // Fused ANDN on NVIDIA: single expression.
  EXPECT_TRUE(contains(
      render_kernel_source(dev, cfg, Comparison::kAndNot),
      "popcount(a_val & ~b_val)"));
  // Separate NOT on Vega: explicit statement (the Fig. 9 penalty).
  const auto vega = model::vega64();
  const auto vcfg = model::paper_preset(vega, model::WorkloadKind::kFastId);
  const auto vsrc = render_kernel_source(vega, vcfg, Comparison::kAndNot);
  EXPECT_TRUE(contains(vsrc, "const uint nb_val = ~b_val;"));
  EXPECT_TRUE(contains(vsrc, "popcount(a_val & nb_val)"));
  // Pre-negated lowering: plain AND everywhere.
  auto pre = vcfg;
  pre.pre_negated = true;
  const auto psrc = render_kernel_source(vega, pre, Comparison::kAndNot);
  EXPECT_TRUE(contains(psrc, "popcount(a_val & b_val)"));
  EXPECT_FALSE(contains(psrc, "~b_val"));
}

TEST(OpenclSource, ProgramConcatenatesHeaderAndKernel) {
  const auto dev = model::vega64();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto prog = render_program(dev, cfg, Comparison::kAnd);
  EXPECT_LT(prog.find("#define SNP_M_C"),
            prog.find("__kernel void snp_compare"));
}

TEST(OpenclSource, InvalidConfigRejected) {
  auto cfg = model::paper_preset(model::gtx980(), model::WorkloadKind::kLd);
  cfg.k_c = 1 << 20;
  EXPECT_THROW((void)render_config_header(model::gtx980(), cfg,
                                          Comparison::kAnd),
               std::invalid_argument);
  EXPECT_THROW((void)render_kernel_source(model::gtx980(), cfg,
                                          Comparison::kAnd),
               std::invalid_argument);
}

}  // namespace
}  // namespace snp::kern
