// Forensic scoring: identity-search ranking and mixture inclusion calls.
#include "stats/forensic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace snp::stats {
namespace {

TEST(RankMatches, OrdersByMismatches) {
  const std::vector<std::uint32_t> gamma = {50, 0, 7, 7, 100};
  const auto ranked = rank_matches(gamma, 1000);
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0].reference_index, 1u);
  EXPECT_EQ(ranked[0].mismatches, 0u);
  EXPECT_EQ(ranked[1].reference_index, 2u);  // tie broken by index
  EXPECT_EQ(ranked[2].reference_index, 3u);
  EXPECT_EQ(ranked[3].reference_index, 0u);
  EXPECT_DOUBLE_EQ(ranked[3].mismatch_rate, 0.05);
}

TEST(RankMatches, TopKAndThreshold) {
  const std::vector<std::uint32_t> gamma = {10, 20, 30, 40, 50};
  const auto top2 = rank_matches(gamma, 100, 1.0, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].reference_index, 0u);
  const auto thresholded = rank_matches(gamma, 100, 0.25, 10);
  ASSERT_EQ(thresholded.size(), 2u);  // only rates 0.1 and 0.2 pass
}

TEST(RankMatches, Validation) {
  const std::vector<std::uint32_t> gamma = {1};
  EXPECT_THROW((void)rank_matches(gamma, 0), std::invalid_argument);
  EXPECT_TRUE(rank_matches({}, 10).empty());
}

TEST(CallContributors, ExactInclusion) {
  const std::vector<std::uint32_t> gamma = {0, 3, 0, 12};
  const std::vector<std::uint32_t> profile_counts = {40, 45, 50, 55};
  const auto calls = call_contributors(gamma, profile_counts, 120, 1000);
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_TRUE(calls[0].included);
  EXPECT_FALSE(calls[1].included);
  EXPECT_TRUE(calls[2].included);
  EXPECT_FALSE(calls[3].included);
  EXPECT_EQ(calls[3].foreign_alleles, 12u);
}

TEST(CallContributors, ToleranceAdmitsNearMisses) {
  const std::vector<std::uint32_t> gamma = {0, 3, 5};
  const std::vector<std::uint32_t> counts = {10, 10, 10};
  const auto calls = call_contributors(gamma, counts, 50, 1000, 3);
  EXPECT_TRUE(calls[0].included);
  EXPECT_TRUE(calls[1].included);
  EXPECT_FALSE(calls[2].included);
}

TEST(CallContributors, ExpectedIfRandom) {
  const std::vector<std::uint32_t> gamma = {0};
  const std::vector<std::uint32_t> counts = {100};
  // Mixture covers 250 of 1000 sites -> absent fraction 0.75.
  const auto calls = call_contributors(gamma, counts, 250, 1000);
  EXPECT_NEAR(calls[0].expected_if_random, 75.0, 1e-12);
}

TEST(CallContributors, Validation) {
  const std::vector<std::uint32_t> gamma = {0, 1};
  const std::vector<std::uint32_t> counts = {1};
  EXPECT_THROW((void)call_contributors(gamma, counts, 1, 100),
               std::invalid_argument);
  const std::vector<std::uint32_t> ok = {1, 1};
  EXPECT_THROW((void)call_contributors(gamma, ok, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace snp::stats
