// src/rt unit tests: error taxonomy, fault-plan parsing, deterministic
// injection, backoff schedule, and the with_retry rung.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "rt/fault.hpp"
#include "rt/recovery.hpp"
#include "rt/status.hpp"

namespace snp::rt {
namespace {

TEST(RtStatus, CodesHaveStableNames) {
  EXPECT_EQ(code_name(ErrorCode::kOk), "SNPRT-OK");
  EXPECT_EQ(code_name(ErrorCode::kAlloc), "SNPRT-ALLOC");
  EXPECT_EQ(code_name(ErrorCode::kLaunch), "SNPRT-LAUNCH");
  EXPECT_EQ(code_name(ErrorCode::kIoCorrupt), "SNPRT-IO-CORRUPT");
  EXPECT_EQ(code_name(ErrorCode::kShardLost), "SNPRT-SHARD-LOST");
  EXPECT_EQ(code_name(ErrorCode::kExhausted), "SNPRT-EXHAUSTED");
}

TEST(RtStatus, RetryabilityByClass) {
  EXPECT_TRUE(is_retryable(ErrorCode::kLaunch));
  EXPECT_TRUE(is_retryable(ErrorCode::kH2d));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_FALSE(is_retryable(ErrorCode::kIoCorrupt));
  EXPECT_FALSE(is_retryable(ErrorCode::kExhausted));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  // Injected faults are always retryable regardless of class, so plans
  // can exercise the retry rung at any site.
  Status st = Status::failure(ErrorCode::kInternal, "boom");
  EXPECT_FALSE(is_retryable(st));
  st.injected = true;
  EXPECT_TRUE(is_retryable(st));
}

TEST(RtStatus, ToStringCarriesCodeOffsetAndInjection) {
  Status st = Status::failure(ErrorCode::kIoCorrupt, "bad magic", 17);
  EXPECT_EQ(st.to_string(), "[SNPRT-IO-CORRUPT] bad magic (byte 17)");
  st.injected = true;
  EXPECT_EQ(st.to_string(),
            "[SNPRT-IO-CORRUPT] bad magic (byte 17) [injected]");
}

TEST(RtStatus, ErrorIsARuntimeError) {
  // Legacy catch sites (and EXPECT_THROW on std::runtime_error) must
  // keep working across the taxonomy migration.
  try {
    throw Error(ErrorCode::kAlloc, "over budget");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SNPRT-ALLOC"),
              std::string::npos);
  }
}

TEST(RtFaultPlan, ParsesTheDocumentedGrammar) {
  const FaultPlan plan =
      FaultPlan::parse("launch:p=0.25:seed=7,h2d:after=3,"
                       "shard:at=1:after=1:count=2");
  ASSERT_EQ(plan.clauses.size(), 3u);
  EXPECT_EQ(plan.clauses[0].site, FaultSite::kLaunch);
  EXPECT_DOUBLE_EQ(plan.clauses[0].p, 0.25);
  EXPECT_EQ(plan.clauses[0].seed, 7u);
  EXPECT_EQ(plan.clauses[1].site, FaultSite::kH2d);
  EXPECT_EQ(plan.clauses[1].after, 3u);
  EXPECT_EQ(plan.clauses[2].site, FaultSite::kShard);
  EXPECT_EQ(plan.clauses[2].at, 1);
  EXPECT_EQ(plan.clauses[2].count, 2u);
}

TEST(RtFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("warp:p=0.1"), Error);  // bad site
  EXPECT_THROW((void)FaultPlan::parse("launch:p=2"), Error);  // p > 1
  EXPECT_THROW((void)FaultPlan::parse("launch:bogus=1"), Error);
  EXPECT_THROW((void)FaultPlan::parse("launch"), Error);  // no trigger
  EXPECT_TRUE(FaultPlan::parse("").empty());  // unset env var == no plan
}

TEST(RtInjector, DisarmedChecksNeverFire) {
  auto& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_NO_THROW(maybe_inject(FaultSite::kLaunch));
}

TEST(RtInjector, AfterFiresOnExactlyTheNthCheck) {
  ScopedFaultPlan plan(FaultPlan::parse("launch:after=3"));
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  const auto st = inj.check(FaultSite::kLaunch);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->code, ErrorCode::kLaunch);
  EXPECT_TRUE(st->injected);
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_EQ(inj.fires(), 1u);
}

TEST(RtInjector, AtFiltersByOperandIndex) {
  ScopedFaultPlan plan(FaultPlan::parse("shard:at=2:after=1"));
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.check(FaultSite::kShard, 0).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kShard, 1).has_value());
  EXPECT_TRUE(inj.check(FaultSite::kShard, 2).has_value());
}

TEST(RtInjector, CountCapsTotalFires) {
  ScopedFaultPlan plan(FaultPlan::parse("h2d:p=1:count=2"));
  auto& inj = FaultInjector::global();
  EXPECT_TRUE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_TRUE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_EQ(inj.fires(), 2u);
}

TEST(RtInjector, ProbabilityDrawsAreSeedDeterministic) {
  // Same seed => the same fire pattern over an ordinal sequence; a
  // different seed must eventually disagree.
  auto pattern = [](std::uint64_t seed) {
    ScopedFaultPlan plan(FaultPlan::parse(
        "launch:p=0.3:seed=" + std::to_string(seed)));
    auto& inj = FaultInjector::global();
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i) {
      fired.push_back(inj.check(FaultSite::kLaunch).has_value());
    }
    return fired;
  };
  EXPECT_EQ(pattern(11), pattern(11));
  EXPECT_NE(pattern(11), pattern(12));
}

TEST(RtInjector, SitesDoNotPerturbEachOther) {
  // Interleaving checks at a second site must not shift the first
  // site's ordinals (stateless per-site hashing, no shared stream).
  auto pattern = [](bool interleave) {
    ScopedFaultPlan plan(FaultPlan::parse("launch:p=0.3:seed=5"));
    auto& inj = FaultInjector::global();
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      if (interleave) {
        (void)inj.check(FaultSite::kH2d);
      }
      fired.push_back(inj.check(FaultSite::kLaunch).has_value());
    }
    return fired;
  };
  EXPECT_EQ(pattern(false), pattern(true));
}

TEST(RtRecovery, PolicyNamesRoundTrip) {
  for (const auto policy :
       {FailPolicy::kAbort, FailPolicy::kRetry, FailPolicy::kFailover,
        FailPolicy::kDegrade}) {
    const auto parsed = parse_fail_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_fail_policy("panic").has_value());
}

TEST(RtRecovery, BackoffIsDeterministicExponentialWithCap) {
  RecoveryOptions opts;
  opts.backoff_base_s = 1e-3;
  opts.backoff_max_s = 3e-3;
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 1), 1e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 2), 2e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 3), 3e-3);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 9), 3e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 0), 0.0);
}

RecoveryOptions fast_retry() {
  RecoveryOptions opts;
  opts.policy = FailPolicy::kRetry;
  opts.max_attempts = 3;
  opts.backoff_base_s = 0.0;  // no sleeping in unit tests
  return opts;
}

TEST(RtRecovery, WithRetryRecoversTransientFaults) {
  FaultLog log;
  int calls = 0;
  const int v = with_retry(fast_retry(), "op", 7, &log, [&] {
    if (++calls < 3) {
      throw Error(ErrorCode::kLaunch, "flaky");
    }
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].action, "retry");
  EXPECT_EQ(events[0].chunk, 7);
  EXPECT_EQ(events[0].attempt, 1);
  EXPECT_EQ(events[1].attempt, 2);
}

TEST(RtRecovery, WithRetryExhaustionThrowsExhausted) {
  FaultLog log;
  int calls = 0;
  try {
    with_retry(fast_retry(), "op", -1, &log, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kH2d, "dead");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kExhausted);
  }
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(log.snapshot().back().action, "exhausted");
}

TEST(RtRecovery, ExhaustedIsNotRetriedByOuterScopes) {
  // Nested retry scopes must not multiply attempts: the inner rung's
  // kExhausted is terminal for the outer rung too.
  int outer_calls = 0;
  EXPECT_THROW(
      with_retry(fast_retry(), "outer", -1, nullptr, [&]() -> int {
        ++outer_calls;
        return with_retry(fast_retry(), "inner", -1, nullptr,
                          []() -> int {
                            throw Error(ErrorCode::kLaunch, "dead");
                          });
      }),
      Error);
  EXPECT_EQ(outer_calls, 1);
}

TEST(RtRecovery, AbortPolicyNeverRetries) {
  RecoveryOptions opts = fast_retry();
  opts.policy = FailPolicy::kAbort;
  int calls = 0;
  try {
    with_retry(opts, "op", -1, nullptr, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kLaunch, "boom");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLaunch);  // original, not wrapped
  }
  EXPECT_EQ(calls, 1);
}

TEST(RtRecovery, NonRetryableCodesPropagateImmediately) {
  int calls = 0;
  try {
    with_retry(fast_retry(), "op", -1, nullptr, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kIoCorrupt, "bad bytes", 9);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoCorrupt);
    EXPECT_EQ(e.status().offset, 9u);
  }
  EXPECT_EQ(calls, 1);
}

TEST(RtRecovery, DeadlineSamplesTheTimeoutSite) {
  ScopedFaultPlan plan(FaultPlan::parse("timeout:after=1"));
  const Deadline d(0.0);  // real watchdog off; only injection can fire
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(d.expired());
}

TEST(RtRecovery, WithRetryTurnsInjectedTimeoutIntoTimeoutError) {
  ScopedFaultPlan plan(FaultPlan::parse("timeout:after=1"));
  RecoveryOptions opts = fast_retry();
  FaultLog log;
  // First attempt hits the injected timeout, later attempts succeed.
  const int v = with_retry(opts, "op", -1, &log, [] { return 7; });
  EXPECT_EQ(v, 7);
  ASSERT_FALSE(log.snapshot().empty());
  EXPECT_EQ(log.snapshot()[0].code, ErrorCode::kTimeout);
}

TEST(RtDeadline, DisabledSentinelsNeverExpire) {
  // 0, +inf and NaN all mean "no deadline" — the watchdog is off and
  // remaining_s() reports an infinite budget.
  for (const double s :
       {0.0, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    const Deadline d(s);
    EXPECT_FALSE(d.expired()) << "seconds=" << s;
    EXPECT_TRUE(std::isinf(d.remaining_s())) << "seconds=" << s;
  }
}

TEST(RtDeadline, NegativeBudgetIsExpiredAtBirth) {
  // A negative budget (including -inf) models "already past due at
  // submission": expired from the first check, zero remaining.
  for (const double s :
       {-1e-9, -5.0, -std::numeric_limits<double>::infinity()}) {
    const Deadline d(s);
    EXPECT_TRUE(d.expired()) << "seconds=" << s;
    EXPECT_TRUE(d.expired()) << "stays expired, seconds=" << s;
    EXPECT_DOUBLE_EQ(d.remaining_s(), 0.0) << "seconds=" << s;
  }
}

TEST(RtDeadline, FiniteBudgetCountsDownMonotonically) {
  const Deadline d(3600.0);  // far future: never expires in-test
  EXPECT_FALSE(d.expired());
  const double r = d.remaining_s();
  EXPECT_GT(r, 0.0);
  EXPECT_LE(r, 3600.0);
  EXPECT_LE(d.remaining_s(), r);  // monotone non-increasing
}

TEST(RtDeadline, DeadlineCodeIsStableAndNotRetryable) {
  // SNPRT-DEADLINE is terminal by design: retrying an expired request
  // cannot un-expire it, so the recovery ladder must not recompute it.
  EXPECT_EQ(code_name(ErrorCode::kDeadline), "SNPRT-DEADLINE");
  EXPECT_FALSE(is_retryable(ErrorCode::kDeadline));
}

TEST(RtRetryBudget, BucketDrainsAndRefillsOnSuccess) {
  RetryBudget budget(2.0, 0.5);
  EXPECT_DOUBLE_EQ(budget.available(), 2.0);
  EXPECT_TRUE(budget.try_acquire());
  EXPECT_TRUE(budget.try_acquire());
  EXPECT_FALSE(budget.try_acquire());  // dry: fast-fail
  budget.note_success();
  EXPECT_DOUBLE_EQ(budget.available(), 0.5);
  EXPECT_FALSE(budget.try_acquire());  // still below one whole token
  budget.note_success();
  EXPECT_TRUE(budget.try_acquire());
  // Refill saturates at capacity, never above.
  for (int i = 0; i < 100; ++i) budget.note_success();
  EXPECT_DOUBLE_EQ(budget.available(), budget.capacity());
}

TEST(RtRetryBudget, WithRetryFastFailsWhenBudgetIsDry) {
  RecoveryOptions opts = fast_retry();
  opts.budget = std::make_shared<RetryBudget>(1.0, 0.0);
  FaultLog log;
  int calls = 0;
  try {
    with_retry(opts, "op", -1, &log, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kLaunch, "flaky");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kExhausted);
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
  }
  // One token bought exactly one retry; the second failure fast-failed
  // instead of burning the remaining max_attempts.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(log.snapshot().back().action, "exhausted");
}

TEST(RtRetryBudget, SuccessesRefillAcrossOperations) {
  RecoveryOptions opts = fast_retry();
  opts.budget = std::make_shared<RetryBudget>(1.0, 1.0);
  // Drain the single token on a flaky op...
  int calls = 0;
  const int v = with_retry(opts, "op", -1, nullptr, [&] {
    if (++calls < 2) throw Error(ErrorCode::kLaunch, "flaky");
    return 1;
  });
  EXPECT_EQ(v, 1);
  // ...the success refilled it (1:1 ratio here), so the next flaky op
  // can retry again instead of fast-failing.
  calls = 0;
  const int w = with_retry(opts, "op", -1, nullptr, [&] {
    if (++calls < 2) throw Error(ErrorCode::kLaunch, "flaky");
    return 2;
  });
  EXPECT_EQ(w, 2);
}

TEST(RtCancelToken, ExplicitCancelWinsAndIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.poll().has_value());
  EXPECT_NO_THROW(token.checkpoint());
  token.cancel(Status::failure(ErrorCode::kCancelled, "caller gave up"));
  EXPECT_TRUE(token.cancelled());
  try {
    token.checkpoint();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
  // First reason wins; later cancels must not overwrite it.
  token.cancel(Status::failure(ErrorCode::kInternal, "second"));
  EXPECT_EQ(token.poll()->code, ErrorCode::kCancelled);
}

TEST(RtCancelToken, AttachedDeadlineSurfacesAsDeadlineError) {
  CancelToken token{Deadline(-1.0)};  // expired at birth
  try {
    token.checkpoint(3);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
  }
  CancelToken alive{Deadline(3600.0)};
  EXPECT_NO_THROW(alive.checkpoint());
}

TEST(RtCancelToken, NoDeadlineMeansNoInjectorDraws) {
  // A token without a deadline must not sample the timeout site:
  // arming cancellation must not shift existing fault-plan ordinals.
  ScopedFaultPlan plan(FaultPlan::parse("timeout:after=1"));
  CancelToken token;
  EXPECT_NO_THROW(token.checkpoint());
  EXPECT_NO_THROW(token.checkpoint());
  // The injected timeout is still pending for the next real sampler.
  const Deadline d(0.0);
  EXPECT_TRUE(d.expired());
}

BreakerOptions fast_breaker() {
  BreakerOptions opts;
  opts.failure_threshold = 2;
  opts.probe_interval = 3;
  opts.success_threshold = 2;
  return opts;
}

TEST(RtBreaker, OpensAfterConsecutiveFailuresAndFastFails) {
  CircuitBreaker breaker("dev", fast_breaker());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.on_failure();  // threshold=2 reached
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Open state fast-fails until the probe_interval-th denial.
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());  // 3rd denied allow() becomes the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(RtBreaker, HalfOpenClosesAfterProbeSuccesses) {
  CircuitBreaker breaker("dev", fast_breaker());
  breaker.on_failure();
  breaker.on_failure();
  while (!breaker.allow()) {
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_success();  // success_threshold=2
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(RtBreaker, HalfOpenFailureReopensImmediately) {
  CircuitBreaker breaker("dev", fast_breaker());
  breaker.on_failure();
  breaker.on_failure();
  while (!breaker.allow()) {
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
}

TEST(RtBreaker, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker breaker("dev", fast_breaker());
  breaker.on_failure();
  breaker.on_success();  // breaks the streak
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(RtBreaker, ZeroThresholdDisablesTheBreaker) {
  BreakerOptions opts;
  opts.failure_threshold = 0;
  CircuitBreaker breaker("dev", opts);
  for (int i = 0; i < 16; ++i) breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(RtBreaker, RegistryKeysByDeviceNameAndResets) {
  BreakerRegistry::global().reset();
  CircuitBreaker& a = BreakerRegistry::global().get("titanv", fast_breaker());
  CircuitBreaker& b = BreakerRegistry::global().get("titanv", fast_breaker());
  CircuitBreaker& c = BreakerRegistry::global().get("vega64", fast_breaker());
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.on_failure();
  a.on_failure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(c.state(), CircuitBreaker::State::kClosed);
  BreakerRegistry::global().reset();
  EXPECT_EQ(BreakerRegistry::global().get("titanv", fast_breaker()).state(),
            CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace snp::rt
