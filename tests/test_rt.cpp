// src/rt unit tests: error taxonomy, fault-plan parsing, deterministic
// injection, backoff schedule, and the with_retry rung.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/fault.hpp"
#include "rt/recovery.hpp"
#include "rt/status.hpp"

namespace snp::rt {
namespace {

TEST(RtStatus, CodesHaveStableNames) {
  EXPECT_EQ(code_name(ErrorCode::kOk), "SNPRT-OK");
  EXPECT_EQ(code_name(ErrorCode::kAlloc), "SNPRT-ALLOC");
  EXPECT_EQ(code_name(ErrorCode::kLaunch), "SNPRT-LAUNCH");
  EXPECT_EQ(code_name(ErrorCode::kIoCorrupt), "SNPRT-IO-CORRUPT");
  EXPECT_EQ(code_name(ErrorCode::kShardLost), "SNPRT-SHARD-LOST");
  EXPECT_EQ(code_name(ErrorCode::kExhausted), "SNPRT-EXHAUSTED");
}

TEST(RtStatus, RetryabilityByClass) {
  EXPECT_TRUE(is_retryable(ErrorCode::kLaunch));
  EXPECT_TRUE(is_retryable(ErrorCode::kH2d));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_FALSE(is_retryable(ErrorCode::kIoCorrupt));
  EXPECT_FALSE(is_retryable(ErrorCode::kExhausted));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  // Injected faults are always retryable regardless of class, so plans
  // can exercise the retry rung at any site.
  Status st = Status::failure(ErrorCode::kInternal, "boom");
  EXPECT_FALSE(is_retryable(st));
  st.injected = true;
  EXPECT_TRUE(is_retryable(st));
}

TEST(RtStatus, ToStringCarriesCodeOffsetAndInjection) {
  Status st = Status::failure(ErrorCode::kIoCorrupt, "bad magic", 17);
  EXPECT_EQ(st.to_string(), "[SNPRT-IO-CORRUPT] bad magic (byte 17)");
  st.injected = true;
  EXPECT_EQ(st.to_string(),
            "[SNPRT-IO-CORRUPT] bad magic (byte 17) [injected]");
}

TEST(RtStatus, ErrorIsARuntimeError) {
  // Legacy catch sites (and EXPECT_THROW on std::runtime_error) must
  // keep working across the taxonomy migration.
  try {
    throw Error(ErrorCode::kAlloc, "over budget");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SNPRT-ALLOC"),
              std::string::npos);
  }
}

TEST(RtFaultPlan, ParsesTheDocumentedGrammar) {
  const FaultPlan plan =
      FaultPlan::parse("launch:p=0.25:seed=7,h2d:after=3,"
                       "shard:at=1:after=1:count=2");
  ASSERT_EQ(plan.clauses.size(), 3u);
  EXPECT_EQ(plan.clauses[0].site, FaultSite::kLaunch);
  EXPECT_DOUBLE_EQ(plan.clauses[0].p, 0.25);
  EXPECT_EQ(plan.clauses[0].seed, 7u);
  EXPECT_EQ(plan.clauses[1].site, FaultSite::kH2d);
  EXPECT_EQ(plan.clauses[1].after, 3u);
  EXPECT_EQ(plan.clauses[2].site, FaultSite::kShard);
  EXPECT_EQ(plan.clauses[2].at, 1);
  EXPECT_EQ(plan.clauses[2].count, 2u);
}

TEST(RtFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("warp:p=0.1"), Error);  // bad site
  EXPECT_THROW((void)FaultPlan::parse("launch:p=2"), Error);  // p > 1
  EXPECT_THROW((void)FaultPlan::parse("launch:bogus=1"), Error);
  EXPECT_THROW((void)FaultPlan::parse("launch"), Error);  // no trigger
  EXPECT_TRUE(FaultPlan::parse("").empty());  // unset env var == no plan
}

TEST(RtInjector, DisarmedChecksNeverFire) {
  auto& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_NO_THROW(maybe_inject(FaultSite::kLaunch));
}

TEST(RtInjector, AfterFiresOnExactlyTheNthCheck) {
  ScopedFaultPlan plan(FaultPlan::parse("launch:after=3"));
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  const auto st = inj.check(FaultSite::kLaunch);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->code, ErrorCode::kLaunch);
  EXPECT_TRUE(st->injected);
  EXPECT_FALSE(inj.check(FaultSite::kLaunch).has_value());
  EXPECT_EQ(inj.fires(), 1u);
}

TEST(RtInjector, AtFiltersByOperandIndex) {
  ScopedFaultPlan plan(FaultPlan::parse("shard:at=2:after=1"));
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.check(FaultSite::kShard, 0).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kShard, 1).has_value());
  EXPECT_TRUE(inj.check(FaultSite::kShard, 2).has_value());
}

TEST(RtInjector, CountCapsTotalFires) {
  ScopedFaultPlan plan(FaultPlan::parse("h2d:p=1:count=2"));
  auto& inj = FaultInjector::global();
  EXPECT_TRUE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_TRUE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_FALSE(inj.check(FaultSite::kH2d).has_value());
  EXPECT_EQ(inj.fires(), 2u);
}

TEST(RtInjector, ProbabilityDrawsAreSeedDeterministic) {
  // Same seed => the same fire pattern over an ordinal sequence; a
  // different seed must eventually disagree.
  auto pattern = [](std::uint64_t seed) {
    ScopedFaultPlan plan(FaultPlan::parse(
        "launch:p=0.3:seed=" + std::to_string(seed)));
    auto& inj = FaultInjector::global();
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i) {
      fired.push_back(inj.check(FaultSite::kLaunch).has_value());
    }
    return fired;
  };
  EXPECT_EQ(pattern(11), pattern(11));
  EXPECT_NE(pattern(11), pattern(12));
}

TEST(RtInjector, SitesDoNotPerturbEachOther) {
  // Interleaving checks at a second site must not shift the first
  // site's ordinals (stateless per-site hashing, no shared stream).
  auto pattern = [](bool interleave) {
    ScopedFaultPlan plan(FaultPlan::parse("launch:p=0.3:seed=5"));
    auto& inj = FaultInjector::global();
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      if (interleave) {
        (void)inj.check(FaultSite::kH2d);
      }
      fired.push_back(inj.check(FaultSite::kLaunch).has_value());
    }
    return fired;
  };
  EXPECT_EQ(pattern(false), pattern(true));
}

TEST(RtRecovery, PolicyNamesRoundTrip) {
  for (const auto policy :
       {FailPolicy::kAbort, FailPolicy::kRetry, FailPolicy::kFailover,
        FailPolicy::kDegrade}) {
    const auto parsed = parse_fail_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_fail_policy("panic").has_value());
}

TEST(RtRecovery, BackoffIsDeterministicExponentialWithCap) {
  RecoveryOptions opts;
  opts.backoff_base_s = 1e-3;
  opts.backoff_max_s = 3e-3;
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 1), 1e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 2), 2e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 3), 3e-3);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 9), 3e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 0), 0.0);
}

RecoveryOptions fast_retry() {
  RecoveryOptions opts;
  opts.policy = FailPolicy::kRetry;
  opts.max_attempts = 3;
  opts.backoff_base_s = 0.0;  // no sleeping in unit tests
  return opts;
}

TEST(RtRecovery, WithRetryRecoversTransientFaults) {
  FaultLog log;
  int calls = 0;
  const int v = with_retry(fast_retry(), "op", 7, &log, [&] {
    if (++calls < 3) {
      throw Error(ErrorCode::kLaunch, "flaky");
    }
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].action, "retry");
  EXPECT_EQ(events[0].chunk, 7);
  EXPECT_EQ(events[0].attempt, 1);
  EXPECT_EQ(events[1].attempt, 2);
}

TEST(RtRecovery, WithRetryExhaustionThrowsExhausted) {
  FaultLog log;
  int calls = 0;
  try {
    with_retry(fast_retry(), "op", -1, &log, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kH2d, "dead");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kExhausted);
  }
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(log.snapshot().back().action, "exhausted");
}

TEST(RtRecovery, ExhaustedIsNotRetriedByOuterScopes) {
  // Nested retry scopes must not multiply attempts: the inner rung's
  // kExhausted is terminal for the outer rung too.
  int outer_calls = 0;
  EXPECT_THROW(
      with_retry(fast_retry(), "outer", -1, nullptr, [&]() -> int {
        ++outer_calls;
        return with_retry(fast_retry(), "inner", -1, nullptr,
                          []() -> int {
                            throw Error(ErrorCode::kLaunch, "dead");
                          });
      }),
      Error);
  EXPECT_EQ(outer_calls, 1);
}

TEST(RtRecovery, AbortPolicyNeverRetries) {
  RecoveryOptions opts = fast_retry();
  opts.policy = FailPolicy::kAbort;
  int calls = 0;
  try {
    with_retry(opts, "op", -1, nullptr, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kLaunch, "boom");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLaunch);  // original, not wrapped
  }
  EXPECT_EQ(calls, 1);
}

TEST(RtRecovery, NonRetryableCodesPropagateImmediately) {
  int calls = 0;
  try {
    with_retry(fast_retry(), "op", -1, nullptr, [&]() -> int {
      ++calls;
      throw Error(ErrorCode::kIoCorrupt, "bad bytes", 9);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoCorrupt);
    EXPECT_EQ(e.status().offset, 9u);
  }
  EXPECT_EQ(calls, 1);
}

TEST(RtRecovery, DeadlineSamplesTheTimeoutSite) {
  ScopedFaultPlan plan(FaultPlan::parse("timeout:after=1"));
  const Deadline d(0.0);  // real watchdog off; only injection can fire
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(d.expired());
}

TEST(RtRecovery, WithRetryTurnsInjectedTimeoutIntoTimeoutError) {
  ScopedFaultPlan plan(FaultPlan::parse("timeout:after=1"));
  RecoveryOptions opts = fast_retry();
  FaultLog log;
  // First attempt hits the injected timeout, later attempts succeed.
  const int v = with_retry(opts, "op", -1, &log, [] { return 7; });
  EXPECT_EQ(v, 7);
  ASSERT_FALSE(log.snapshot().empty());
  EXPECT_EQ(log.snapshot()[0].code, ErrorCode::kTimeout);
}

}  // namespace
}  // namespace snp::rt
