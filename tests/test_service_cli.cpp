// CLI contract tests for `snpcmp serve` / `snpcmp submit` (PR 6): exit
// codes, fault propagation through the service path (exit 4 with the
// SNPRT-* code leading stderr), and golden checks on the deterministic
// "service:" report block and per-request lines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "obs/obs.hpp"

namespace snp::cli {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Per-test unique temp path (mirrors test_cli.cpp: ctest -j runs each
/// discovered test as its own process, so shared names would collide).
std::string tmp(const std::string& name) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("snpcmp_svc_") +
                        info->test_suite_name() + "_" + info->name());
  fs::create_directories(dir);
  return (dir / name).string();
}

/// A small deterministic db + query pair every test shares.
struct Fixture {
  std::string db = tmp("db.sbm");
  std::string queries = tmp("q.sbm");
  Fixture() {
    io::save_bitmatrix(io::random_bitmatrix(41, 192, 0.5, 8101),
                       fs::path(db));
    io::save_bitmatrix(io::random_bitmatrix(6, 192, 0.4, 8102),
                       fs::path(queries));
  }
};

std::string write_script(const std::string& path,
                         const std::vector<std::string>& lines) {
  std::ofstream os(path);
  for (const auto& line : lines) os << line << "\n";
  return path;
}

/// Extracts "digest=..." from the `req N:` line for request N.
std::string digest_of(const std::string& out, std::size_t req) {
  const std::string needle = "req " + std::to_string(req) + ": ";
  const auto pos = out.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "no line for request " << req << " in:\n" << out;
    return "";
  }
  const auto d = out.find("digest=", pos);
  if (d == std::string::npos) {
    ADD_FAILURE() << "no digest on request " << req << " in:\n" << out;
    return "";
  }
  return out.substr(d + 7, 16);
}

TEST(ServeCli, GoldenReportBlockAndRequestLines) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1})",
       R"({"submit": 2, "count": 2})", "# a comment, skipped", "",
       R"({"barrier": true})", R"({"submit": 0})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--max-batch", "8"});
  ASSERT_EQ(r.code, 0) << r.err;
  // The deterministic block, golden line by line. (The "slo:" line is
  // wall-clock and deliberately NOT matched.)
  EXPECT_NE(r.out.find("service:     device=cpu op=XOR pre-negate=no"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(
                "service:     requests=5 completed=5 failed=0 rejected=0"),
            std::string::npos)
      << r.out;
  EXPECT_NE(
      r.out.find("service:     batches=1 mean-width=4 max-width=4"),
      std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("service:     cache hits=1 misses=4"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("service:     queue peak=4 epoch=1"),
            std::string::npos)
      << r.out;
  // Approximate (bucket-upper-bound) percentiles carry the '~' marker;
  // with obs compiled out the CLI falls back to exact sorted-sample
  // percentiles and honestly drops the marker.
  if constexpr (obs::kEnabled) {
    EXPECT_NE(r.out.find("slo:         p50~="), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("(bucket upper bounds)"), std::string::npos)
        << r.out;
  } else {
    EXPECT_NE(r.out.find("slo:         p50="), std::string::npos) << r.out;
  }
  // Duplicate submissions of the same profile must carry one digest.
  EXPECT_EQ(digest_of(r.out, 2), digest_of(r.out, 3));
  EXPECT_EQ(digest_of(r.out, 0), digest_of(r.out, 4));
  EXPECT_NE(r.out.find("req 4: cache-hit epoch=1"), std::string::npos)
      << r.out;
}

TEST(ServeCli, SubmitVerbMatchesEquivalentScript) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"), {R"({"submit": 0})", R"({"submit": 1})",
                         R"({"submit": 2})", R"({"submit": 3})",
                         R"({"submit": 4})", R"({"submit": 5})"});
  const auto served =
      run_cli({"serve", "--db", f.db, "--queries", f.queries, "--script",
               script, "--device", "cpu", "--max-batch", "4"});
  const auto oneshot =
      run_cli({"submit", "--db", f.db, "--queries", f.queries, "--device",
               "cpu", "--max-batch", "4"});
  ASSERT_EQ(served.code, 0) << served.err;
  ASSERT_EQ(oneshot.code, 0) << oneshot.err;
  for (std::size_t q = 0; q < 6; ++q) {
    EXPECT_EQ(digest_of(served.out, q), digest_of(oneshot.out, q))
        << "query " << q;
  }
  EXPECT_NE(oneshot.out.find(
                "service:     requests=6 completed=6 failed=0 rejected=0"),
            std::string::npos)
      << oneshot.out;
  EXPECT_NE(oneshot.out.find(
                "service:     batches=2 mean-width=3 max-width=4"),
            std::string::npos)
      << oneshot.out;
}

TEST(ServeCli, InjectedFaultExitsFourWithCodeLeadingStderr) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1})", R"({"barrier": true})",
       R"({"submit": 2})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "titanv",
                          "--inject-faults", "launch:after=1",
                          "--fail-policy", "abort"});
  EXPECT_EQ(r.code, 4);
  // The stable code must be the first stderr token after "error:" —
  // scripts match on it (docs/robustness.md exit contract).
  EXPECT_EQ(r.err.rfind("error: [SNPRT-LAUNCH]", 0), 0U) << r.err;
  // The failed batch is per-request visible, and the next batch (after
  // the barrier) still completed — the report block proves the engine
  // survived the failure.
  EXPECT_NE(r.out.find("req 0: error [SNPRT-LAUNCH]"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(
                "service:     requests=3 completed=1 failed=2 rejected=0"),
            std::string::npos)
      << r.out;
}

/// Satellite 5 / acceptance: the fault-path flight dump is deterministic
/// and self-identifying — it names the SNPRT code and carries the failed
/// request's trace id, which is the same id printed on its `req N:` line.
TEST(ServeCli, FaultFlightDumpNamesCodeAndFailedRequest) {
  if (!obs::kEnabled) GTEST_SKIP() << "flight recorder compiled out";
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"), {R"({"submit": 0})", R"({"submit": 1})"});
  const auto dump = tmp("flight.json");
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "titanv",
                          "--inject-faults", "launch:after=1",
                          "--fail-policy", "abort", "--flight-out", dump});
  EXPECT_EQ(r.code, 4);
  // The SNPRT token must stay the first stderr token (exit contract);
  // the flight note follows it.
  EXPECT_EQ(r.err.rfind("error: [SNPRT-LAUNCH]", 0), 0U) << r.err;
  EXPECT_NE(r.err.find("flight: wrote " + dump), std::string::npos)
      << r.err;

  // The failed request's trace id, from its own report line.
  const auto line = r.out.find("req 0: error [SNPRT-LAUNCH]");
  ASSERT_NE(line, std::string::npos) << r.out;
  const auto tpos = r.out.find("trace=", line);
  ASSERT_NE(tpos, std::string::npos) << r.out;
  const auto tend =
      r.out.find_first_not_of("0123456789", tpos + 6);
  const std::string trace = r.out.substr(tpos + 6, tend - (tpos + 6));
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace, "0");

  std::ifstream is(dump);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"flight\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\": \"fault: SNPRT-LAUNCH\""),
            std::string::npos)
      << json;
  // The fault event carries the batch root's (= failed request's) trace
  // id and the named code.
  EXPECT_NE(json.find("\"kind\": \"fault\", \"trace\": " + trace),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"code\": \"SNPRT-LAUNCH\""), std::string::npos)
      << json;
  // Both requests resolved (exactly-once even on failure): resolve
  // events made it into the ring before the dump.
  EXPECT_NE(json.find("\"kind\": \"resolve\""), std::string::npos) << json;
}

TEST(ServeCli, OnDemandFlightDumpAndRequestTraceIds) {
  if (!obs::kEnabled) GTEST_SKIP() << "flight recorder compiled out";
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1})", R"({"barrier": true})",
       R"({"submit": 0})"});
  const auto dump = tmp("flight.json");
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--flight-out", dump});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote flight recording ("), std::string::npos)
      << r.out;
  // Every request line names its trace id; ids are unique, including
  // the cache hit (identity is per-request, the cached row is shared).
  std::vector<std::string> traces;
  for (std::size_t req = 0; req < 3; ++req) {
    const auto line = r.out.find("req " + std::to_string(req) + ": ");
    ASSERT_NE(line, std::string::npos) << r.out;
    const auto tpos = r.out.find("trace=", line);
    ASSERT_NE(tpos, std::string::npos) << r.out;
    const auto tend = r.out.find_first_not_of("0123456789", tpos + 6);
    traces.push_back(r.out.substr(tpos + 6, tend - (tpos + 6)));
    EXPECT_NE(traces.back(), "0");
    EXPECT_NE(traces.back(), "");
  }
  EXPECT_NE(traces[0], traces[1]);
  EXPECT_NE(traces[0], traces[2]);

  std::ifstream is(dump);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"reason\": \"on-demand\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kind\": \"enqueue\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"cache-hit\", \"trace\": " + traces[2]),
            std::string::npos)
      << json;
}

TEST(ServeCli, SloObjectiveReportsBurnAndExemplar) {
  if (!obs::kEnabled) GTEST_SKIP() << "SLO monitor compiled out";
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"), {R"({"submit": 0, "count": 4})"});
  // Unmeetable objective: every completion breaches, the monitor trips,
  // and the exemplar names a real request.
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--slo-ms", "0.000001"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("slo:         objective=1e-06 ms breaches=4/4"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(" trips=1"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("slo:         exemplar trace="), std::string::npos)
      << r.out;

  // A generous objective reports zero breaches and no trips.
  const auto ok = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                           "--script", script, "--device", "cpu",
                           "--slo-ms", "60000"});
  ASSERT_EQ(ok.code, 0) << ok.err;
  EXPECT_NE(ok.out.find("breaches=0/4"), std::string::npos) << ok.out;
  EXPECT_NE(ok.out.find(" trips=0"), std::string::npos) << ok.out;
}

TEST(ServeCli, DegradePolicyRecoversWithExitZero) {
  const Fixture f;
  const auto script =
      write_script(tmp("req.jsonl"), {R"({"submit": 0, "count": 4})"});
  const auto clean =
      run_cli({"serve", "--db", f.db, "--queries", f.queries, "--script",
               script, "--device", "titanv"});
  const auto faulty = run_cli(
      {"serve", "--db", f.db, "--queries", f.queries, "--script", script,
       "--device", "titanv", "--inject-faults", "launch:p=0.9:seed=5",
       "--fail-policy", "degrade"});
  ASSERT_EQ(clean.code, 0) << clean.err;
  ASSERT_EQ(faulty.code, 0) << faulty.err;
  // Degraded, slower — but bit-identical to the clean run.
  EXPECT_EQ(digest_of(clean.out, 0), digest_of(faulty.out, 0));
  EXPECT_NE(faulty.out.find("service:     faults="), std::string::npos)
      << faulty.out;
}

TEST(ServeCli, EpochSwapRecomputesAgainstNewDatabase) {
  const Fixture f;
  const std::string db2 = tmp("db2.sbm");
  io::save_bitmatrix(io::random_bitmatrix(41, 192, 0.5, 8201),
                     fs::path(db2));
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"barrier": true})", R"({"epoch": ")" + db2 +
                                                       R"("})",
       R"({"submit": 0})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Same profile, new epoch: cache must NOT serve the stale row.
  EXPECT_NE(r.out.find("req 0: batch=1"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("req 1: batch=2"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("epoch=2"), std::string::npos) << r.out;
  EXPECT_NE(digest_of(r.out, 0), digest_of(r.out, 1));
  EXPECT_NE(r.out.find("service:     queue peak=1 epoch=2"),
            std::string::npos)
      << r.out;
}

TEST(ServeCli, AdmissionRejectShedsAreReportedNotFatal) {
  const Fixture f;
  const auto script =
      write_script(tmp("req.jsonl"), {R"({"submit": 0, "count": 4})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--max-queue", "2", "--cache", "0"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("req 2: rejected [SNPRT-OVERLOAD]"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 3: rejected [SNPRT-OVERLOAD]"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(
                "service:     requests=4 completed=2 failed=0 rejected=2"),
            std::string::npos)
      << r.out;
}

TEST(ServeCli, UsageErrors) {
  const Fixture f;
  // Missing required options.
  EXPECT_EQ(run_cli({"serve", "--db", f.db}).code, 1);
  EXPECT_EQ(run_cli({"submit", "--db", f.db}).code, 1);
  // Bad option values.
  const auto script =
      write_script(tmp("req.jsonl"), {R"({"submit": 0})"});
  EXPECT_EQ(run_cli({"serve", "--db", f.db, "--queries", f.queries,
                     "--script", script, "--admission", "drop"})
                .code,
            1);
  EXPECT_EQ(run_cli({"serve", "--db", f.db, "--queries", f.queries,
                     "--script", script, "--op", "nand"})
                .code,
            1);
  // Missing script file.
  EXPECT_EQ(run_cli({"serve", "--db", f.db, "--queries", f.queries,
                     "--script", tmp("nope.jsonl")})
                .code,
            1);
}

TEST(ServeCli, ScriptErrorsCarryLineNumbers) {
  const Fixture f;
  {
    const auto script =
        write_script(tmp("bad1.jsonl"), {R"({"submit": 0})", R"({"pop": 1})"});
    const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                            "--script", script, "--device", "cpu"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find(":2:"), std::string::npos) << r.err;
  }
  {
    // Query row out of range.
    const auto script =
        write_script(tmp("bad2.jsonl"), {R"({"submit": 99})"});
    const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                            "--script", script, "--device", "cpu"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("out of range"), std::string::npos) << r.err;
  }
  {
    // Unknown per-request policy.
    const auto script = write_script(
        tmp("bad3.jsonl"), {R"({"submit": 0, "policy": "panic"})"});
    const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                            "--script", script, "--device", "cpu"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("bad policy"), std::string::npos) << r.err;
  }
}

TEST(ServeCli, PerRequestPolicySplitsBatches) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1, "policy": "degrade"})",
       R"({"submit": 2})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--max-batch", "8"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Different recovery classes never share a batch: [0], [1], [2].
  EXPECT_NE(r.out.find("req 0: batch=1 width=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 1: batch=2 width=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 2: batch=3 width=1"), std::string::npos)
      << r.out;
}

TEST(ServeCli, MetricsDumpIncludesServiceCounters) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics registry compiled out";
  const Fixture f;
  const std::string metrics = tmp("metrics.json");
  const auto script =
      write_script(tmp("req.jsonl"), {R"({"submit": 0, "count": 3})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--metrics-out", metrics});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream is(metrics);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("svc.requests"), std::string::npos);
  EXPECT_NE(buf.str().find("svc.batches"), std::string::npos);
}

/// PR-8 tentpole surface (b): the deterministic "cost:" report block and
/// the --cost-out ledger document. Counts are pure functions of the
/// scripted workload; the JSON is byte-stable modulo process-global
/// trace ids, which we normalize before comparing replays.
TEST(ServeCli, CostBlockAndLedgerJsonAreDeterministic) {
  if (!obs::kEnabled) GTEST_SKIP() << "cost ledger compiled out";
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1})",
       R"({"submit": 2, "count": 2})", R"({"barrier": true})",
       R"({"submit": 0})"});
  // Simulated device: attributed times come from the machine model, so
  // the whole document (not just counts) replays byte-identically.
  const auto run_once = [&](const std::string& cost_path) {
    return run_cli({"serve", "--db", f.db, "--queries", f.queries,
                    "--script", script, "--device", "titanv",
                    "--max-batch", "8", "--cost-out", cost_path});
  };
  const auto slurp = [](const std::string& path) {
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
  };
  const std::string cost1 = tmp("cost1.json");
  const std::string cost2 = tmp("cost2.json");
  const auto r1 = run_once(cost1);
  const auto r2 = run_once(cost2);
  ASSERT_EQ(r1.code, 0) << r1.err;
  ASSERT_EQ(r2.code, 0) << r2.err;

  // 4 misses coalesce into one batch before the barrier; the repeat of
  // query 0 is a cache hit that rides no batch.
  EXPECT_NE(r1.out.find(
                "cost:        requests=5 cache-hits=1 batches=1 dropped=0"),
            std::string::npos)
      << r1.out;
  EXPECT_NE(r1.out.find("cost:        h2d="), std::string::npos) << r1.out;
  EXPECT_NE(r1.out.find("wrote cost ledger (5 requests) to " + cost1),
            std::string::npos)
      << r1.out;

  const std::string j1 = slurp(cost1);
  EXPECT_NE(j1.find("\"cost\": 1"), std::string::npos) << j1;
  EXPECT_NE(j1.find("\"batches\""), std::string::npos) << j1;
  EXPECT_NE(j1.find("\"requests\""), std::string::npos) << j1;
  EXPECT_NE(j1.find("\"cache_hit\": true"), std::string::npos) << j1;
  // Wall-clock axes stay out of the document — that's what makes the
  // scripted replay below byte-comparable.
  EXPECT_EQ(j1.find("queue_wait"), std::string::npos) << j1;

  const std::regex trace_re("\"trace\": \\d+");
  const std::string n1 = std::regex_replace(j1, trace_re, "\"trace\": T");
  const std::string n2 =
      std::regex_replace(slurp(cost2), trace_re, "\"trace\": T");
  EXPECT_EQ(n1, n2);
}

/// PR-8 tentpole surface (c): `snpcmp report --trace` ingests the
/// artifacts one serve run wrote and produces a deterministic bottleneck
/// report. (Single serve per test: the metrics registry is
/// process-global, and Little's-law consistency is an engine-scoped
/// claim.)
TEST(ServeCli, ReportVerbAnalyzesServeArtifactsDeterministically) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1})", R"({"submit": 2})",
       R"({"barrier": true})", R"({"submit": 3, "count": 3})"});
  const std::string trace = tmp("trace.json");
  const std::string metrics = tmp("metrics.json");
  const std::string cost = tmp("cost.json");
  const auto served = run_cli(
      {"serve", "--db", f.db, "--queries", f.queries, "--script", script,
       "--device", "titanv", "--max-batch", "4", "--trace-out", trace,
       "--metrics-out", metrics, "--cost-out", cost});
  ASSERT_EQ(served.code, 0) << served.err;

  const auto report = [&] {
    return run_cli({"report", "--trace", trace, "--metrics", metrics,
                    "--cost", cost, "--top", "3"});
  };
  const auto p1 = report();
  const auto p2 = report();
  ASSERT_EQ(p1.code, 0) << p1.err;
  EXPECT_NE(p1.out.find("pipeline report:"), std::string::npos) << p1.out;
  // The Little's line renders with its decomposition. (PASS itself is
  // asserted where the process is known fresh — test_cost's engine-scoped
  // check and the check.sh serve->report smoke — because the wait
  // histogram is process-global and a direct whole-binary run of this
  // suite accumulates earlier tests' serves into it.)
  EXPECT_NE(p1.out.find("littles law: sum(wait)"), std::string::npos)
      << p1.out;
  EXPECT_NE(p1.out.find("[lambda"), std::string::npos) << p1.out;
  EXPECT_NE(p1.out.find("top requests by device time:"), std::string::npos)
      << p1.out;
  // Same input files, same report bytes.
  EXPECT_EQ(p1.out, p2.out);

  // --out writes the same report to a file.
  const std::string saved = tmp("report.txt");
  const auto p3 = run_cli({"report", "--trace", trace, "--metrics",
                           metrics, "--cost", cost, "--top", "3", "--out",
                           saved});
  ASSERT_EQ(p3.code, 0) << p3.err;
  EXPECT_NE(p3.out.find("wrote pipeline report to " + saved),
            std::string::npos)
      << p3.out;
  std::ifstream is(saved);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), p1.out);

  // Pipeline mode needs --metrics; the cohort-report mode (no --trace)
  // keeps requiring --in/--out.
  EXPECT_EQ(run_cli({"report", "--trace", trace}).code, 1);
  EXPECT_EQ(run_cli({"report"}).code, 1);
}

/// PR-10 surface (satellite b): "deadline_ms" in the script grammar, the
/// `deadlines:` report block, and the exit-4 contract extended to
/// SNPRT-DEADLINE. A negative deadline sheds at admission, a microsecond
/// one expires in the paused backlog and is shed at batch formation
/// (never launched), and a generous one is met — all deterministic, so
/// the block is golden.
TEST(ServeCli, DeadlineFieldsShedMeetAndReportGolden) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0, "deadline_ms": -1})",
       R"({"submit": 1, "deadline_ms": 600000})",
       R"({"submit": 2, "deadline_ms": 0.000001})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--cache", "0"});
  // A formation-shed request resolves with kDeadline: the first-error
  // exit contract extends to SNPRT-DEADLINE.
  EXPECT_EQ(r.code, 4);
  EXPECT_EQ(r.err.rfind("error: [SNPRT-DEADLINE]", 0), 0U) << r.err;
  EXPECT_NE(r.out.find("req 0: rejected [SNPRT-DEADLINE]"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 1: batch=1 width=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 2: error [SNPRT-DEADLINE]"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("deadlines:   met=1 expired=0 shed=2"),
            std::string::npos)
      << r.out;
  // The shed request never launched: exactly one batch, width 1.
  EXPECT_NE(r.out.find("service:     batches=1 mean-width=1 max-width=1"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(
                "service:     requests=3 completed=1 failed=1 rejected=1"),
            std::string::npos)
      << r.out;
}

TEST(ServeCli, SubmitDeadlineFlagAppliesToEveryRequest) {
  const Fixture f;
  const auto with = run_cli({"submit", "--db", f.db, "--queries",
                             f.queries, "--device", "cpu", "--deadline-ms",
                             "600000"});
  ASSERT_EQ(with.code, 0) << with.err;
  EXPECT_NE(with.out.find("deadlines:   met=6 expired=0 shed=0"),
            std::string::npos)
      << with.out;
  // Without deadlines the block stays silent — legacy goldens hold.
  const auto without = run_cli({"submit", "--db", f.db, "--queries",
                                f.queries, "--device", "cpu"});
  ASSERT_EQ(without.code, 0) << without.err;
  EXPECT_EQ(without.out.find("deadlines:"), std::string::npos)
      << without.out;
  // And the deadline must not change the results.
  for (std::size_t q = 0; q < 6; ++q) {
    EXPECT_EQ(digest_of(with.out, q), digest_of(without.out, q))
        << "query " << q;
  }
}

TEST(ServeCli, RequestClassFieldSplitsBatches) {
  const Fixture f;
  const auto script = write_script(
      tmp("req.jsonl"),
      {R"({"submit": 0})", R"({"submit": 1, "class": 2})",
       R"({"submit": 2})"});
  const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                          "--script", script, "--device", "cpu",
                          "--max-batch", "8"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Different request classes never share a batch: [0], [1], [2].
  EXPECT_NE(r.out.find("req 0: batch=1 width=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 1: batch=2 width=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("req 2: batch=3 width=1"), std::string::npos)
      << r.out;
}

TEST(ServeCli, MalformedDeadlineAndClassCarryLineNumbers) {
  const Fixture f;
  {
    const auto script = write_script(
        tmp("bad4.jsonl"), {R"({"submit": 0, "deadline_ms": "soon"})"});
    const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                            "--script", script, "--device", "cpu"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find(":1:"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("expects a number"), std::string::npos) << r.err;
  }
  {
    const auto script = write_script(
        tmp("bad5.jsonl"), {R"({"submit": 0, "class": "gold"})"});
    const auto r = run_cli({"serve", "--db", f.db, "--queries", f.queries,
                            "--script", script, "--device", "cpu"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("expects an integer"), std::string::npos)
        << r.err;
  }
}

}  // namespace
}  // namespace snp::cli
