// Per-locus QC: HWE goodness of fit, MAF and missingness thresholds,
// dataset filtering, loader integration.
#include "stats/qc.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/datagen.hpp"

namespace snp::stats {
namespace {

TEST(Qc, HweConsistentLocusPasses) {
  // 1000 samples at p = 0.3 in perfect HWE proportions.
  const auto qc = locus_qc(490, 420, 90, 0);
  EXPECT_TRUE(qc.pass());
  EXPECT_NEAR(qc.maf, 0.3, 1e-9);
  EXPECT_NEAR(qc.het_observed, 0.42, 1e-9);
  EXPECT_NEAR(qc.het_expected, 0.42, 1e-9);
  EXPECT_NEAR(qc.hwe_chi2, 0.0, 1e-9);
  EXPECT_NEAR(qc.hwe_p, 1.0, 1e-9);
}

TEST(Qc, ExcessHeterozygosityFails) {
  // Same allele frequency, but every carrier is heterozygous — the
  // classic genotyping-artifact signature.
  const auto qc = locus_qc(400, 600, 0, 0);
  EXPECT_FALSE(qc.pass());
  EXPECT_TRUE(qc.flags & kQcHweViolation);
  EXPECT_GT(qc.het_observed, qc.het_expected);
  EXPECT_LT(qc.hwe_p, 1e-6);
}

TEST(Qc, RareLocusFlagged) {
  const auto qc = locus_qc(995, 5, 0, 0);
  EXPECT_TRUE(qc.flags & kQcLowMaf);
  EXPECT_NEAR(qc.maf, 0.0025, 1e-9);
}

TEST(Qc, MissingnessFlagged) {
  QcThresholds t;
  t.max_missing_rate = 0.05;
  const auto qc = locus_qc(800, 100, 20, 80, t);
  EXPECT_TRUE(qc.flags & kQcHighMissing);
  EXPECT_NEAR(qc.missing_rate, 0.08, 1e-9);
}

TEST(Qc, MafIsFolded) {
  // "Minor" allele frequency folds above 0.5.
  const auto qc = locus_qc(90, 420, 490, 0);
  EXPECT_NEAR(qc.maf, 0.3, 1e-9);
}

TEST(Qc, Validation) {
  EXPECT_THROW((void)locus_qc(-1, 0, 0, 0), std::invalid_argument);
  const auto g = io::generate_genotypes(3, 10, {});
  EXPECT_THROW((void)qc_report(g, std::vector<std::size_t>(2)),
               std::invalid_argument);
}

TEST(Qc, HweCohortMostlyPasses) {
  io::PopulationParams p;
  p.seed = 888;
  p.maf_min = 0.05;
  p.maf_max = 0.5;
  const auto g = io::generate_genotypes(300, 2000, p);
  const auto report = qc_report(g);
  std::size_t passing = 0;
  for (const auto& qc : report) {
    passing += qc.pass() ? 1u : 0u;
  }
  // HWE-generated common variants: nearly everything passes.
  EXPECT_GT(passing, 290u);
}

TEST(Qc, FilterLociKeepsOnlyPassing) {
  io::PopulationParams p;
  p.seed = 889;
  p.spectrum = io::MafSpectrum::kUniform;
  p.maf_min = 0.001;  // some loci will fail the MAF threshold
  p.maf_max = 0.5;
  auto ds = io::with_synthetic_metadata(
      io::generate_genotypes(100, 500, p));
  const auto report = qc_report(ds.genotypes, ds.missing_per_locus);
  const auto filtered = filter_loci(ds, report);
  std::size_t expected = 0;
  for (const auto& qc : report) {
    expected += qc.pass() ? 1u : 0u;
  }
  EXPECT_EQ(filtered.loci.size(), expected);
  EXPECT_EQ(filtered.genotypes.loci(), expected);
  EXPECT_TRUE(filtered.consistent());
  EXPECT_LT(expected, 100u);  // at least one rare locus got dropped
  // Surviving loci keep their metadata identity.
  std::size_t k = 0;
  for (std::size_t l = 0; l < report.size(); ++l) {
    if (report[l].pass()) {
      EXPECT_EQ(filtered.loci[k].id, ds.loci[l].id);
      ++k;
    }
  }
}

TEST(Qc, LoaderMissingnessFlowsThrough) {
  std::stringstream ss;
  ss << "#plink-lite v1\n#samples\ta\tb\tc\td\n"
     << "1\trs1\t100\tA\tG\t0\t1\t2\t0\n"
     << "1\trs2\t200\tC\tT\t.\t.\t.\t1\n";
  const auto ds = io::load_plink_lite(ss);
  ASSERT_EQ(ds.missing_per_locus.size(), 2u);
  EXPECT_EQ(ds.missing_per_locus[0], 0u);
  EXPECT_EQ(ds.missing_per_locus[1], 3u);
  QcThresholds t;
  t.max_missing_rate = 0.5;
  t.min_maf = 0.0;
  t.min_hwe_p = 0.0;
  const auto report = qc_report(ds.genotypes, ds.missing_per_locus, t);
  EXPECT_TRUE(report[0].pass());
  EXPECT_TRUE(report[1].flags & kQcHighMissing);
  EXPECT_NEAR(report[1].missing_rate, 0.75, 1e-9);
  // The surviving single call (dosage 1 of 1 genotyped) gives maf 0.5.
  EXPECT_NEAR(report[1].maf, 0.5, 1e-9);
}

}  // namespace
}  // namespace snp::stats
