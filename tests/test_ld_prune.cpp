// LD pruning: block collapse, independence preservation, threshold
// monotonicity, the kept-set guarantee.
#include "stats/ld_prune.hpp"

#include <gtest/gtest.h>

#include "io/datagen.hpp"

namespace snp::stats {
namespace {

bits::GenotypeMatrix block_cohort(std::size_t loci, std::size_t block,
                                  double copy, std::uint64_t seed) {
  io::PopulationParams p;
  p.seed = seed;
  p.spectrum = io::MafSpectrum::kFixed;
  p.maf_mean = 0.3;
  p.ld_block_len = block;
  p.ld_copy = copy;
  return io::generate_genotypes(loci, 1200, p);
}

TEST(LdPrune, Validation) {
  const auto g = block_cohort(10, 1, 0.0, 1);
  EXPECT_THROW((void)ld_prune(g, {0, 0.2}), std::invalid_argument);
  EXPECT_THROW((void)ld_prune(g, {5, -0.1}), std::invalid_argument);
  EXPECT_THROW((void)pairwise_genotype_r2(g, 0, 10), std::out_of_range);
}

TEST(LdPrune, PairwiseR2Sanity) {
  const auto g = block_cohort(20, 10, 0.97, 2);
  // Within a block, adjacent loci correlate strongly; across the
  // boundary they do not.
  EXPECT_GT(pairwise_genotype_r2(g, 3, 4), 0.6);
  EXPECT_LT(pairwise_genotype_r2(g, 9, 10), 0.1);
  EXPECT_NEAR(pairwise_genotype_r2(g, 5, 5), 1.0, 1e-9);
}

TEST(LdPrune, IndependentLociAllKept) {
  const auto g = block_cohort(60, 1, 0.0, 3);
  const auto kept = ld_prune(g, {20, 0.2});
  EXPECT_EQ(kept.size(), 60u);
}

TEST(LdPrune, TightBlocksCollapse) {
  // 8 blocks of 10 near-duplicated loci: roughly one survivor per block.
  const auto g = block_cohort(80, 10, 0.97, 4);
  const auto kept = ld_prune(g, {20, 0.2});
  EXPECT_GE(kept.size(), 8u);
  EXPECT_LE(kept.size(), 16u);
  // The first locus always survives.
  EXPECT_EQ(kept.front(), 0u);
}

TEST(LdPrune, KeptSetHonorsThresholdWithinWindow) {
  const auto g = block_cohort(60, 6, 0.9, 5);
  const LdPruneParams params{15, 0.25};
  const auto kept = ld_prune(g, params);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      if (kept[j] - kept[i] > params.window) {
        break;
      }
      EXPECT_LE(pairwise_genotype_r2(g, kept[i], kept[j]),
                params.r2_threshold + 1e-9)
          << kept[i] << " vs " << kept[j];
    }
  }
}

TEST(LdPrune, LooserThresholdKeepsMore) {
  const auto g = block_cohort(60, 8, 0.85, 6);
  const auto strict = ld_prune(g, {20, 0.1});
  const auto loose = ld_prune(g, {20, 0.8});
  EXPECT_LT(strict.size(), loose.size());
  EXPECT_EQ(ld_prune(g, {20, 1.0}).size(), 60u);  // r2 <= 1 always passes
}

}  // namespace
}  // namespace snp::stats
