// Chaos-soak matrix (PR 10): the request-lifecycle robustness features
// — deadlines, per-class retry budgets, the per-device circuit breaker
// and the SLO brown-out — must compose. Each cell of the matrix runs a
// seeded fault soak with one feature combination enabled and checks the
// invariants that must hold in *every* cell: exactly-once resolution,
// bit-identical successful rows, stable SNPRT codes on failures, and no
// expired request ever reaching a launch. CI runs this suite under both
// ASan and TSan (chaos-soak job).
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "obs/obs.hpp"
#include "rt/fault.hpp"
#include "rt/recovery.hpp"
#include "svc/service.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using svc::QueryResult;
using svc::ServiceConfig;
using svc::ServiceEngine;

/// One matrix cell: which robustness features are armed.
struct ChaosCell {
  bool breaker;
  bool budget;
};

/// Serial ground truth for the soak workload (abort policy, no service).
std::vector<std::vector<std::uint32_t>> ground_truth(const BitMatrix& queries,
                                                     const BitMatrix& db) {
  Context ctx = Context::gpu("titanv");
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    ComputeOptions copts;
    copts.recovery.policy = rt::FailPolicy::kAbort;
    copts.lint = false;
    const auto r = ctx.compare(queries.row_slice(q, q + 1), db,
                               Comparison::kXor, copts);
    const auto span = r.counts.raw();
    rows.emplace_back(span.begin(), span.end());
  }
  return rows;
}

ServiceConfig chaos_config(const ChaosCell& cell) {
  ServiceConfig cfg;
  cfg.device = "titanv";
  cfg.op = Comparison::kXor;
  cfg.max_batch_rows = 4;
  cfg.cache_capacity = 0;
  cfg.compute_threads = 0;  // every checkpoint on the dispatcher thread
  cfg.recovery.policy = rt::FailPolicy::kRetry;
  cfg.recovery.backoff_base_s = 0.0;
  cfg.start_paused = true;
  if (cell.breaker) {
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.probe_interval = 3;
    cfg.breaker.success_threshold = 1;
  }
  if (cell.budget) {
    cfg.retry_budget = 4.0;
    cfg.retry_budget_refill = 0.5;
  }
  return cfg;
}

/// Per-request outcome: (0, row) on success, (SNPRT code, {}) otherwise.
using Outcome = std::pair<int, std::vector<std::uint32_t>>;

std::vector<Outcome> run_cell(const ChaosCell& cell, int seed,
                              const BitMatrix& queries, const BitMatrix& db,
                              std::size_t waves) {
  rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
      "timeout:p=0.06:seed=" + std::to_string(seed) +
      ",launch:p=0.06:seed=" + std::to_string(seed + 9000)));
  // The breaker registry is keyed by device name and process-global:
  // every cell must start from a closed breaker or cells would couple.
  rt::BreakerRegistry::global().reset();
  ServiceEngine engine(db, chaos_config(cell));
  std::vector<Outcome> outcomes;
  for (std::size_t wave = 0; wave < waves; ++wave) {
    svc::SubmitOptions options;
    options.deadline_ms = 1e7;  // armed, but only injection can fire it
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1), options));
    }
    engine.resume();
    engine.drain();
    engine.pause();
    for (auto& f : futs) {
      try {
        outcomes.emplace_back(0, f.get().row);
      } catch (const rt::Error& e) {
        outcomes.emplace_back(static_cast<int>(e.code()),
                              std::vector<std::uint32_t>{});
      }
    }
  }
  return outcomes;
}

/// Every cell, every seed: exactly-once resolution with bit-identical
/// rows on success and stable codes on failure, twice per seed to prove
/// the whole feature stack is deterministic (probes, refills and sheds
/// are ordinal-driven, never wall-clock).
TEST(ChaosSoak, FeatureMatrixIsDeterministicAndExactlyOnce) {
  const BitMatrix db = io::random_bitmatrix(21, 192, 0.5, 781);
  const BitMatrix queries = io::random_bitmatrix(6, 192, 0.4, 782);
  const auto expected = ground_truth(queries, db);

  for (const ChaosCell cell :
       {ChaosCell{false, false}, ChaosCell{true, false},
        ChaosCell{false, true}, ChaosCell{true, true}}) {
    for (int seed = 0; seed < 25; ++seed) {
      const auto first = run_cell(cell, seed, queries, db, 3);
      const auto second = run_cell(cell, seed, queries, db, 3);
      ASSERT_EQ(first, second)
          << "breaker=" << cell.breaker << " budget=" << cell.budget
          << " seed=" << seed << " diverged between runs";
      ASSERT_EQ(first.size(), 3 * queries.rows());
      for (std::size_t i = 0; i < first.size(); ++i) {
        if (first[i].first == 0) {
          EXPECT_EQ(first[i].second, expected[i % queries.rows()])
              << "successful row not bit-identical, request " << i;
        } else {
          // Failures carry a stable terminal code from the taxonomy.
          const auto code = static_cast<rt::ErrorCode>(first[i].first);
          EXPECT_TRUE(code == rt::ErrorCode::kExhausted ||
                      code == rt::ErrorCode::kDeadline ||
                      code == rt::ErrorCode::kTimeout ||
                      code == rt::ErrorCode::kLaunch ||
                      code == rt::ErrorCode::kCancelled)
              << "unexpected terminal code " << first[i].first;
        }
      }
    }
  }
  rt::BreakerRegistry::global().reset();
}

/// Breaker-specific invariant under chaos: once the breaker opens, the
/// fast-fail path must not feed back into the failure count (a breaker
/// that trips itself deeper open on its own fast-fails never recovers),
/// and probes must eventually close it again when the plan dries up.
TEST(ChaosSoak, BreakerRecoversAfterThePlanDriesUp) {
  const BitMatrix db = io::random_bitmatrix(21, 192, 0.5, 783);
  const BitMatrix queries = io::random_bitmatrix(4, 192, 0.4, 784);
  const auto expected = ground_truth(queries, db);
  rt::BreakerRegistry::global().reset();

  ChaosCell cell{true, false};
  ServiceConfig cfg = chaos_config(cell);
  cfg.recovery.max_attempts = 1;  // no retries: failures hit the breaker
  ServiceEngine engine(db, cfg);
  {
    // count-capped plan: enough fires to open the breaker, then clean.
    rt::ScopedFaultPlan plan(
        rt::FaultPlan::parse("launch:p=1:seed=3:count=4"));
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    engine.resume();
    engine.drain();
    engine.pause();
    for (auto& f : futs) {
      EXPECT_THROW((void)f.get(), rt::Error);
    }
  }
  // The plan is disarmed; keep submitting waves. Open-state fast-fails
  // (kCancelled from the breaker, degraded to nothing by kRetry policy)
  // may shed a wave or two, but the ordinal-driven probe schedule must
  // close the breaker and the engine must return to bit-identical rows.
  bool recovered = false;
  for (int wave = 0; wave < 8 && !recovered; ++wave) {
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    engine.resume();
    engine.drain();
    engine.pause();
    bool all_ok = true;
    for (std::size_t q = 0; q < futs.size(); ++q) {
      try {
        EXPECT_EQ(futs[q].get().row, expected[q]) << "query=" << q;
      } catch (const rt::Error&) {
        all_ok = false;  // breaker still open for this batch
      }
    }
    recovered = all_ok;
  }
  EXPECT_TRUE(recovered) << "breaker never closed after the faults ended";
  rt::BreakerRegistry::global().reset();
}

}  // namespace
}  // namespace snp
