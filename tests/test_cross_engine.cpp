// Cross-engine equivalence: the bitwise oracle, the word reference, the
// BLIS-like CPU engine, and the simulated GPU kernel on all three devices
// must produce identical gamma matrices on randomized workloads, for every
// comparison operation — the end-to-end correctness statement of the
// reproduction.
#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "core/snpcmp.hpp"
#include "cpu/engine.hpp"
#include "io/datagen.hpp"
#include "kern/gpu_kernel.hpp"

namespace snp {
namespace {

using bits::Comparison;

struct CrossCase {
  std::size_t m, n, bits;
  double density;
  std::uint64_t seed;
};

class AllEnginesAgree
    : public ::testing::TestWithParam<std::tuple<CrossCase, Comparison>> {};

TEST_P(AllEnginesAgree, OnRandomWorkloads) {
  const auto& [c, op] = GetParam();
  const auto a = io::random_bitmatrix(c.m, c.bits, c.density, c.seed);
  const auto b = io::random_bitmatrix(c.n, c.bits, 1.0 - c.density,
                                      c.seed + 1);
  const auto expected = bits::compare_reference(a, b, op);

  // CPU BLIS-like engine.
  EXPECT_TRUE(cpu::compare_blocked(a, b, op) == expected) << "cpu engine";

  // Simulated GPU kernel on each device, with each Table II preset.
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind :
         {model::WorkloadKind::kLd, model::WorkloadKind::kFastId}) {
      const kern::GpuSnpKernel kernel(dev, model::paper_preset(dev, kind),
                                      op);
      bits::CountMatrix out(c.m, c.n);
      kernel.execute(a, b, out);
      EXPECT_TRUE(out == expected)
          << dev.name << " "
          << (kind == model::WorkloadKind::kLd ? "LD" : "FastID");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllEnginesAgree,
    ::testing::Combine(
        ::testing::Values(CrossCase{1, 1, 33, 0.5, 1000},
                          CrossCase{13, 29, 257, 0.2, 2000},
                          CrossCase{70, 35, 1537, 0.5, 3000},
                          CrossCase{33, 130, 96, 0.8, 4000},
                          CrossCase{128, 128, 512, 0.35, 5000}),
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot)));

TEST(CrossEngine, PublicApiAgreesAcrossBackends) {
  const auto a = io::random_bitmatrix(25, 700, 0.4, 6000);
  const auto b = io::random_bitmatrix(60, 700, 0.5, 6001);
  Context cpu_ctx = Context::cpu();
  const auto cpu_counts =
      cpu_ctx.compare(a, b, Comparison::kXor).counts;
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context gpu_ctx = Context::gpu(name);
    EXPECT_TRUE(gpu_ctx.compare(a, b, Comparison::kXor).counts ==
                cpu_counts)
        << name;
  }
}

TEST(CrossEngine, LdPipelineEndToEnd) {
  // Genotypes -> encoding -> LD counts, CPU vs GPU, same statistics.
  io::PopulationParams p;
  p.seed = 6100;
  p.ld_block_len = 8;
  const auto g = io::generate_genotypes(60, 300, p);
  const auto loci = bits::encode(g, bits::EncodingPlane::kPresence);
  Context cpu_ctx = Context::cpu();
  Context gpu_ctx = Context::gpu("vega64");
  const auto c1 = cpu_ctx.ld(loci).counts;
  const auto c2 = gpu_ctx.ld(loci).counts;
  EXPECT_TRUE(c1 == c2);
}

TEST(CrossEngine, DeepKAccumulationAgrees) {
  // K spanning several k_c panels on every device (k_c 383/512 words).
  const auto a = io::random_bitmatrix(9, 40000, 0.5, 6200);
  const auto b = io::random_bitmatrix(7, 40000, 0.5, 6201);
  const auto expected = bits::compare_reference(a, b, Comparison::kAnd);
  EXPECT_TRUE(cpu::compare_blocked(a, b, Comparison::kAnd) == expected);
  for (const auto& dev : model::all_gpus()) {
    const kern::GpuSnpKernel kernel(
        dev, model::paper_preset(dev, model::WorkloadKind::kLd),
        Comparison::kAnd);
    bits::CountMatrix out(9, 7);
    kernel.execute(a, b, out);
    EXPECT_TRUE(out == expected) << dev.name;
  }
}

}  // namespace
}  // namespace snp
