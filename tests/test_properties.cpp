// Cross-cutting property tests over the whole stack: mathematical
// invariants of the three comparisons that must hold for every engine on
// randomized inputs (parameterized over seeds).
#include <gtest/gtest.h>

#include <future>
#include <random>
#include <vector>

#include "bits/compare.hpp"
#include "cpu/engine.hpp"
#include "io/datagen.hpp"
#include "kern/gpu_kernel.hpp"
#include "sparse/engine.hpp"
#include "svc/service.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using bits::CountMatrix;

class SeededProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededProperties, XorDistanceIsAMetric) {
  // gamma_xor is the Hamming distance: identity, symmetry, triangle
  // inequality over every row triple.
  const auto m = io::random_bitmatrix(9, 700, 0.5, GetParam());
  const auto d = cpu::compare_blocked(m, m, Comparison::kXor);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(d.at(i, i), 0u);
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(d.at(i, j), d.at(j, i));
      for (std::size_t k = 0; k < 9; ++k) {
        EXPECT_LE(d.at(i, k), d.at(i, j) + d.at(j, k))
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST_P(SeededProperties, CountsBoundedByMarginals) {
  const auto a = io::random_bitmatrix(6, 450, 0.4, GetParam() + 1);
  const auto b = io::random_bitmatrix(7, 450, 0.6, GetParam() + 2);
  const auto land = cpu::compare_blocked(a, b, Comparison::kAnd);
  const auto lxor = cpu::compare_blocked(a, b, Comparison::kXor);
  const auto landn = cpu::compare_blocked(a, b, Comparison::kAndNot);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto pa = static_cast<std::uint32_t>(a.row_popcount(i));
    for (std::size_t j = 0; j < 7; ++j) {
      const auto pb = static_cast<std::uint32_t>(b.row_popcount(j));
      EXPECT_LE(land.at(i, j), std::min(pa, pb));
      EXPECT_LE(lxor.at(i, j), pa + pb);
      EXPECT_GE(lxor.at(i, j), pa > pb ? pa - pb : pb - pa);
      EXPECT_LE(landn.at(i, j), pa);
      EXPECT_LE(lxor.at(i, j), 450u);
    }
  }
}

TEST_P(SeededProperties, SingleBitFlipMovesCountsByAtMostOne) {
  const std::uint64_t seed = GetParam();
  auto a = io::random_bitmatrix(3, 300, 0.5, seed + 10);
  const auto b = io::random_bitmatrix(3, 300, 0.5, seed + 11);
  const auto before = cpu::compare_blocked(a, b, Comparison::kAnd);
  io::Rng rng(seed);
  const auto row = static_cast<std::size_t>(rng.next_below(3));
  const auto bit = static_cast<std::size_t>(rng.next_below(300));
  a.set(row, bit, !a.get(row, bit));
  const auto after = cpu::compare_blocked(a, b, Comparison::kAnd);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const std::int64_t delta =
          static_cast<std::int64_t>(after.at(i, j)) -
          static_cast<std::int64_t>(before.at(i, j));
      if (i == row) {
        EXPECT_LE(std::abs(delta), 1);
      } else {
        EXPECT_EQ(delta, 0);
      }
    }
  }
}

TEST_P(SeededProperties, UnionIntersectionPartition) {
  // For every pair: |a & b| + |a & ~b| == |a| (AND/ANDNOT partition a).
  const auto a = io::random_bitmatrix(5, 512, 0.3, GetParam() + 20);
  const auto b = io::random_bitmatrix(5, 512, 0.7, GetParam() + 21);
  const auto land = cpu::compare_blocked(a, b, Comparison::kAnd);
  const auto landn = cpu::compare_blocked(a, b, Comparison::kAndNot);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto pa = static_cast<std::uint32_t>(a.row_popcount(i));
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(land.at(i, j) + landn.at(i, j), pa);
    }
  }
}

TEST_P(SeededProperties, SparseDenseAndGpuAgreeOnRandomInputs) {
  const std::uint64_t seed = GetParam();
  const auto a = io::random_bitmatrix(11, 384, 0.15, seed + 30);
  const auto b = io::random_bitmatrix(13, 384, 0.45, seed + 31);
  const auto sa = sparse::SparseBitMatrix::from_dense(a);
  const auto sb = sparse::SparseBitMatrix::from_dense(b);
  const auto dev = model::all_gpus()[seed % 3];
  const kern::GpuSnpKernel kernel(
      dev, model::paper_preset(dev, model::WorkloadKind::kLd),
      Comparison::kXor);
  CountMatrix gpu_out(11, 13);
  kernel.execute(a, b, gpu_out);
  const auto expected = bits::compare_reference(a, b, Comparison::kXor);
  EXPECT_TRUE(gpu_out == expected);
  EXPECT_TRUE(sparse::sparse_compare(sa, sb, Comparison::kXor) ==
              expected);
  EXPECT_TRUE(cpu::compare_blocked(a, b, Comparison::kXor) == expected);
}

TEST_P(SeededProperties, NegationDuality) {
  // |a & ~(~b)| == |a & b| and |~a ^ ~b| == |a ^ b|.
  const auto a = io::random_bitmatrix(4, 333, 0.5, GetParam() + 40);
  const auto b = io::random_bitmatrix(4, 333, 0.5, GetParam() + 41);
  EXPECT_TRUE(cpu::compare_blocked(a, b.negated(), Comparison::kAndNot) ==
              cpu::compare_blocked(a, b, Comparison::kAnd));
  EXPECT_TRUE(cpu::compare_blocked(a.negated(), b.negated(),
                                   Comparison::kXor) ==
              cpu::compare_blocked(a, b, Comparison::kXor));
}


TEST(Determinism, ParallelEnginesAreRunToRunIdentical)
{
  // The OpenMP engines write disjoint outputs with integer arithmetic, so
  // repeated runs must agree bit-for-bit (no scheduling sensitivity).
  const auto a = io::random_bitmatrix(64, 2048, 0.4, 424242);
  const auto b = io::random_bitmatrix(96, 2048, 0.6, 424243);
  const auto first = cpu::compare_blocked(a, b, Comparison::kAnd);
  for (int run = 0; run < 3; ++run) {
    EXPECT_TRUE(cpu::compare_blocked(a, b, Comparison::kAnd) == first);
  }
  const auto dev = model::vega64();
  const kern::GpuSnpKernel kernel(
      dev, model::paper_preset(dev, model::WorkloadKind::kLd),
      Comparison::kAnd);
  CountMatrix gpu_first(64, 96);
  kernel.execute(a, b, gpu_first);
  for (int run = 0; run < 3; ++run) {
    CountMatrix again(64, 96);
    kernel.execute(a, b, again);
    EXPECT_TRUE(again == gpu_first);
  }
  const auto sa = sparse::SparseBitMatrix::from_dense(a);
  const auto sb = sparse::SparseBitMatrix::from_dense(b);
  const auto sp_first = sparse::sparse_compare(sa, sb, Comparison::kAnd);
  EXPECT_TRUE(sparse::sparse_compare(sa, sb, Comparison::kAnd) ==
              sp_first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// ServiceEngine batching invariance (PR 6): for any partition of a query
// set Q into Q1 (+) Q2, serving Q in one engine yields exactly the rows of
// serving Q1 and Q2 in separate engines — i.e. which requests happen to
// coalesce into a batch is unobservable in the results. 500 seeds, each
// with its own random split.
TEST(ServiceProperties, PartitionedQuerySetsYieldIdenticalRows) {
  const auto db = io::random_bitmatrix(21, 128, 0.5, 7001);
  const auto queries = io::random_bitmatrix(6, 128, 0.4, 7002);

  const auto serve = [&](const std::vector<std::size_t>& subset) {
    svc::ServiceConfig cfg;
    cfg.device = "cpu";
    cfg.op = Comparison::kXor;
    cfg.max_batch_rows = 4;
    cfg.cache_capacity = 0;
    cfg.start_paused = true;  // one deterministic coalescing generation
    svc::ServiceEngine engine(db, cfg);
    std::vector<std::future<svc::QueryResult>> futs;
    futs.reserve(subset.size());
    for (const std::size_t q : subset) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    engine.resume();
    engine.drain();
    std::vector<std::vector<std::uint32_t>> rows;
    rows.reserve(futs.size());
    for (auto& f : futs) rows.push_back(f.get().row);
    return rows;
  };

  std::vector<std::size_t> all(queries.rows());
  for (std::size_t q = 0; q < all.size(); ++q) all[q] = q;
  const auto whole = serve(all);

  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::size_t> q1, q2;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      (rng() % 2 == 0 ? q1 : q2).push_back(q);
    }
    const auto rows1 = serve(q1);
    const auto rows2 = serve(q2);
    ASSERT_EQ(rows1.size() + rows2.size(), whole.size());
    for (std::size_t i = 0; i < q1.size(); ++i) {
      ASSERT_EQ(rows1[i], whole[q1[i]]) << "seed=" << seed << " q=" << q1[i];
    }
    for (std::size_t i = 0; i < q2.size(); ++i) {
      ASSERT_EQ(rows2[i], whole[q2[i]]) << "seed=" << seed << " q=" << q2[i];
    }
  }
}

}  // namespace
}  // namespace snp
