// Case-control association: table recovery, chi-square math, planted
// causal variants, null calibration.
#include "stats/assoc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "io/datagen.hpp"
#include "io/rng.hpp"

namespace snp::stats {
namespace {

TEST(Assoc, CountsRecovery) {
  // 100 samples (40 cases): cases pres 30, hom 10; overall pres 50,
  // hom 15.
  const auto c = assoc_counts(30, 10, 50, 15, 40, 100);
  EXPECT_DOUBLE_EQ(c.cases[2], 10);
  EXPECT_DOUBLE_EQ(c.cases[1], 20);
  EXPECT_DOUBLE_EQ(c.cases[0], 10);
  EXPECT_DOUBLE_EQ(c.controls[2], 5);
  EXPECT_DOUBLE_EQ(c.controls[1], 15);
  EXPECT_DOUBLE_EQ(c.controls[0], 40);
  EXPECT_DOUBLE_EQ(c.n_cases(), 40);
  EXPECT_DOUBLE_EQ(c.n_controls(), 60);
}

TEST(Assoc, CountsValidation) {
  EXPECT_THROW((void)assoc_counts(30, 10, 20, 15, 40, 100),
               std::invalid_argument);  // pres_case > pres_all
  EXPECT_THROW((void)assoc_counts(5, 10, 50, 15, 40, 100),
               std::invalid_argument);  // hom_case > pres_case
  EXPECT_THROW((void)assoc_counts(80, 10, 90, 15, 40, 100),
               std::invalid_argument);  // negative case-dosage-0 cell
}

TEST(Assoc, Chi2SurvivalKnownValues) {
  EXPECT_NEAR(chi2_sf_1df(3.841), 0.05, 0.001);
  EXPECT_NEAR(chi2_sf_1df(6.635), 0.01, 0.0005);
  EXPECT_NEAR(chi2_sf_1df(10.828), 0.001, 0.0001);
  EXPECT_DOUBLE_EQ(chi2_sf_1df(0.0), 1.0);
  EXPECT_DOUBLE_EQ(chi2_sf_1df(-1.0), 1.0);
}

TEST(Assoc, NoDifferenceGivesNullResult) {
  // Identical genotype distribution in cases and controls.
  AssocCounts c;
  c.cases[0] = 50;
  c.cases[1] = 40;
  c.cases[2] = 10;
  c.controls[0] = 100;
  c.controls[1] = 80;
  c.controls[2] = 20;
  const auto r = association_test(c);
  EXPECT_NEAR(r.chi2_allelic, 0.0, 1e-9);
  EXPECT_NEAR(r.chi2_trend, 0.0, 1e-9);
  EXPECT_NEAR(r.p_allelic, 1.0, 1e-9);
  EXPECT_NEAR(r.odds_ratio, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.maf_cases, r.maf_controls);
}

TEST(Assoc, StrongEffectDetected) {
  AssocCounts c;
  c.cases[0] = 10;
  c.cases[1] = 40;
  c.cases[2] = 50;  // minor allele enriched in cases
  c.controls[0] = 60;
  c.controls[1] = 30;
  c.controls[2] = 10;
  const auto r = association_test(c);
  EXPECT_GT(r.chi2_allelic, 30.0);
  EXPECT_LT(r.p_allelic, 1e-8);
  EXPECT_GT(r.chi2_trend, 30.0);
  EXPECT_GT(r.odds_ratio, 3.0);
  EXPECT_GT(r.maf_cases, r.maf_controls);
}

TEST(Assoc, DegenerateTables) {
  AssocCounts empty;
  const auto r0 = association_test(empty);
  EXPECT_DOUBLE_EQ(r0.p_allelic, 1.0);
  // Monomorphic locus: no minor alleles anywhere.
  AssocCounts mono;
  mono.cases[0] = 50;
  mono.controls[0] = 50;
  const auto rm = association_test(mono);
  EXPECT_DOUBLE_EQ(rm.chi2_allelic, 0.0);
  EXPECT_DOUBLE_EQ(rm.p_trend, 1.0);
}

TEST(Assoc, OddsRatioHaldaneCorrection) {
  // A zero cell must not produce infinity.
  AssocCounts c;
  c.cases[0] = 20;
  c.cases[2] = 30;
  c.controls[0] = 50;  // controls carry no minor allele at all
  const auto r = association_test(c);
  EXPECT_TRUE(std::isfinite(r.odds_ratio));
  EXPECT_GT(r.odds_ratio, 10.0);
}

TEST(Assoc, GwasScanFindsPlantedLocus) {
  // Cohort of null SNPs plus one causal SNP whose minor allele doubles
  // case probability.
  constexpr std::size_t kLoci = 200;
  constexpr std::size_t kSamples = 1200;
  constexpr std::size_t kCausal = 77;
  io::PopulationParams p;
  p.seed = 4242;
  p.spectrum = io::MafSpectrum::kFixed;
  p.maf_mean = 0.3;
  auto g = io::generate_genotypes(kLoci, kSamples, p);
  io::Rng rng(999);
  std::vector<bool> is_case(kSamples);
  for (std::size_t s = 0; s < kSamples; ++s) {
    const double risk = 0.2 + 0.25 * g.at(kCausal, s);  // additive risk
    is_case[s] = rng.next_bernoulli(risk);
  }
  const auto results = gwas_scan(g, is_case);
  ASSERT_EQ(results.size(), kLoci);
  // The planted locus is the strongest signal, genome-wide significant.
  std::size_t best = 0;
  for (std::size_t l = 1; l < kLoci; ++l) {
    if (results[l].chi2_trend > results[best].chi2_trend) {
      best = l;
    }
  }
  EXPECT_EQ(best, kCausal);
  EXPECT_LT(results[kCausal].p_trend, 1e-8);
  EXPECT_GT(results[kCausal].odds_ratio, 1.3);
  // Null calibration: most non-causal loci are unremarkable.
  std::size_t below_05 = 0;
  for (std::size_t l = 0; l < kLoci; ++l) {
    if (l != kCausal && results[l].p_trend < 0.05) {
      ++below_05;
    }
  }
  EXPECT_LT(below_05, 25u);  // ~5 % expected; generous bound
}

TEST(Assoc, GwasScanValidatesInput) {
  const auto g = io::generate_genotypes(5, 10, {});
  EXPECT_THROW((void)gwas_scan(g, std::vector<bool>(9)),
               std::invalid_argument);
}

TEST(Assoc, TrendAndAllelicAgreeUnderHwe) {
  // For HWE genotype distributions the two tests are asymptotically
  // equivalent; check they land close on a large synthetic table.
  AssocCounts c;
  const double p_case = 0.35, p_ctrl = 0.30;
  const double nc = 4000, nt = 6000;
  c.cases[0] = nc * (1 - p_case) * (1 - p_case);
  c.cases[1] = nc * 2 * p_case * (1 - p_case);
  c.cases[2] = nc * p_case * p_case;
  c.controls[0] = nt * (1 - p_ctrl) * (1 - p_ctrl);
  c.controls[1] = nt * 2 * p_ctrl * (1 - p_ctrl);
  c.controls[2] = nt * p_ctrl * p_ctrl;
  const auto r = association_test(c);
  EXPECT_NEAR(r.chi2_trend / r.chi2_allelic, 1.0, 0.02);
}

}  // namespace
}  // namespace snp::stats
