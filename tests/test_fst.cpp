// Hudson's Fst: estimator math, null calibration, known divergence.
#include "stats/fst.hpp"

#include <gtest/gtest.h>

#include "io/rng.hpp"

namespace snp::stats {
namespace {

TEST(Fst, Validation) {
  EXPECT_THROW((void)hudson_fst(-0.1, 0.5, 100, 100),
               std::invalid_argument);
  EXPECT_THROW((void)hudson_fst(0.5, 1.1, 100, 100),
               std::invalid_argument);
  EXPECT_THROW((void)hudson_fst(0.5, 0.5, 1, 100), std::invalid_argument);
  const bits::GenotypeMatrix g(3, 4);
  EXPECT_THROW((void)fst_scan(g, std::vector<bool>(3)),
               std::invalid_argument);
  EXPECT_THROW((void)fst_scan(g, std::vector<bool>(4, true)),
               std::invalid_argument);
}

TEST(Fst, IdenticalFrequenciesGiveNearZero) {
  // Infinite-sample limit: identical p -> Fst exactly the negative of the
  // sampling terms, i.e. ~0 for large n.
  const auto c = hudson_fst(0.3, 0.3, 20000, 20000);
  EXPECT_NEAR(c.fst(), 0.0, 1e-3);
}

TEST(Fst, FixedDifferenceGivesOne) {
  const auto c = hudson_fst(1.0, 0.0, 10000, 10000);
  EXPECT_NEAR(c.fst(), 1.0, 1e-3);
}

TEST(Fst, KnownAnalyticValue) {
  // Large-n limit: num -> (p1-p2)^2, den -> p1(1-p2)+p2(1-p1).
  const double p1 = 0.8, p2 = 0.2;
  const auto c = hudson_fst(p1, p2, 1e7, 1e7);
  const double expected =
      (p1 - p2) * (p1 - p2) / (p1 * (1 - p2) + p2 * (1 - p1));
  EXPECT_NEAR(c.fst(), expected, 1e-4);
}

/// Two-population cohort drawn from Balding-Nichols-like diverged
/// frequencies around a shared ancestral p.
bits::GenotypeMatrix diverged_cohort(std::size_t loci, std::size_t per_pop,
                                     double spread, std::uint64_t seed) {
  io::Rng rng(seed);
  bits::GenotypeMatrix g(loci, 2 * per_pop);
  for (std::size_t l = 0; l < loci; ++l) {
    const double anc = 0.2 + 0.6 * rng.next_double();
    const double shift = spread * (rng.next_double() - 0.5);
    const double p1 = std::min(0.99, std::max(0.01, anc + shift));
    const double p2 = std::min(0.99, std::max(0.01, anc - shift));
    for (std::size_t s = 0; s < 2 * per_pop; ++s) {
      const double p = s < per_pop ? p1 : p2;
      const auto x = static_cast<std::uint8_t>(rng.next_bernoulli(p));
      const auto y = static_cast<std::uint8_t>(rng.next_bernoulli(p));
      g.at(l, s) = static_cast<std::uint8_t>(x + y);
    }
  }
  return g;
}

TEST(Fst, NullCohortNearZero) {
  const auto g = diverged_cohort(2000, 100, 0.0, 91);
  std::vector<bool> pop1(200, false);
  for (std::size_t s = 0; s < 100; ++s) {
    pop1[s] = true;
  }
  const auto scan = fst_scan(g, pop1);
  ASSERT_EQ(scan.per_locus.size(), 2000u);
  EXPECT_NEAR(scan.genome_wide, 0.0, 0.005);
}

TEST(Fst, DivergenceOrdering) {
  // More frequency spread -> larger genome-wide Fst, monotonically.
  double prev = -1.0;
  for (const double spread : {0.0, 0.1, 0.3, 0.6}) {
    const auto g = diverged_cohort(1500, 80, spread, 92);
    std::vector<bool> pop1(160, false);
    for (std::size_t s = 0; s < 80; ++s) {
      pop1[s] = true;
    }
    const double fst = fst_scan(g, pop1).genome_wide;
    EXPECT_GT(fst, prev) << "spread=" << spread;
    EXPECT_LT(fst, 1.0);
    prev = fst;
  }
  EXPECT_GT(prev, 0.05);  // strong divergence clearly detected
}

}  // namespace
}  // namespace snp::stats
