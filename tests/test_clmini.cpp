// Mini-OpenCL host runtime: platform enumeration, buffer limits, event
// profiling semantics, engine overlap, barriers.
#include "cl/clmini.hpp"

#include "rt/status.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "sim/memory.hpp"

namespace snp::cl {
namespace {

TEST(Platform, EnumeratesPaperDevices) {
  const auto devs = Platform::devices();
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_EQ(devs[0].name(), "GTX 980");
  EXPECT_EQ(devs[1].name(), "Titan V");
  EXPECT_EQ(devs[2].name(), "Vega 64");
  EXPECT_EQ(Platform::device("vega64").name(), "Vega 64");
  EXPECT_THROW((void)Platform::device("cpu"), std::invalid_argument);
}

TEST(Context, ChargesInitTime) {
  Context ctx(Platform::device("gtx980"));
  EXPECT_NEAR(ctx.init_seconds(),
              sim::init_seconds(ctx.device().spec()), 1e-12);
  // Nothing starts before init completes.
  auto buf = ctx.create_buffer(64);
  std::vector<std::byte> src(64, std::byte{7});
  const Event ev = ctx.queue().enqueue_write(*buf, src);
  EXPECT_GE(ev.start, ctx.init_seconds());
}

TEST(Context, AllocationLimits) {
  Context ctx(Platform::device("gtx980"));
  const auto& dev = ctx.device();
  EXPECT_THROW((void)ctx.create_buffer(0), std::invalid_argument);
  try {
    (void)ctx.create_buffer(dev.max_alloc_bytes() + 1);
    FAIL() << "oversized allocation did not throw";
  } catch (const snp::rt::Error& e) {
    EXPECT_EQ(e.code(), snp::rt::ErrorCode::kAlloc);
    EXPECT_NE(std::string(e.what()).find("SNPRT-ALLOC"), std::string::npos);
  }
  // Exhaust global memory with max-size allocations.
  std::vector<std::shared_ptr<Buffer>> held;
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          held.push_back(ctx.create_buffer(dev.max_alloc_bytes()));
        }
      },
      snp::rt::Error);
  const std::size_t before = ctx.allocated_bytes();
  ctx.release_buffer(held.back());
  EXPECT_LT(ctx.allocated_bytes(), before);
}

TEST(Queue, WriteReadRoundTrip) {
  Context ctx(Platform::device("titanv"));
  auto buf = ctx.create_buffer(256);
  std::vector<std::byte> src(256);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  const Event w = ctx.queue().enqueue_write(*buf, src);
  std::vector<std::byte> dst(256, std::byte{0});
  const Event r = ctx.queue().enqueue_read(*buf, dst);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 256), 0);
  EXPECT_LE(w.queued, w.submitted);
  EXPECT_LE(w.submitted, w.start);
  EXPECT_LT(w.start, w.end);
  EXPECT_GE(r.start, w.end);  // read waits for the write
}

TEST(Queue, WriteDurationMatchesPcieModel) {
  Context ctx(Platform::device("vega64"));
  constexpr std::size_t kBytes = 1 << 24;
  auto buf = ctx.create_buffer(kBytes);
  std::vector<std::byte> src(kBytes, std::byte{1});
  const Event ev = ctx.queue().enqueue_write(*buf, src);
  // start is when the transfer engine begins moving bytes; the fixed
  // submission latency sits between submit and start.
  EXPECT_NEAR(ev.duration(), sim::pcie_seconds(ctx.device().spec(), kBytes),
              1e-9);
  EXPECT_GE(ev.start - ev.submitted,
            sim::pcie_latency_seconds() - 1e-12);
}

TEST(Queue, OversizeTransfersRejected) {
  Context ctx(Platform::device("gtx980"));
  auto buf = ctx.create_buffer(16);
  std::vector<std::byte> big(17);
  EXPECT_THROW((void)ctx.queue().enqueue_write(*buf, big),
               std::out_of_range);
  EXPECT_THROW((void)ctx.queue().enqueue_read(*buf, big),
               std::out_of_range);
}

TEST(Queue, KernelWaitsForInputsAndRunsFunctional) {
  Context ctx(Platform::device("gtx980"));
  auto in = ctx.create_buffer(1024);
  auto out = ctx.create_buffer(1024);
  std::vector<std::byte> src(1024, std::byte{3});
  const Event w = ctx.queue().enqueue_write(*in, src);
  bool ran = false;
  Buffer* reads[] = {in.get()};
  Buffer* writes[] = {out.get()};
  const Event k = ctx.queue().enqueue_kernel(
      0.001, reads, writes, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(k.start, w.end);
  EXPECT_NEAR(k.duration(), 0.001, 1e-12);
  // A write into `in` while the kernel reads it must wait.
  const Event w2 = ctx.queue().enqueue_write(*in, src);
  EXPECT_GE(w2.start, k.end);
}

TEST(Queue, IndependentChunksOverlapTransferAndCompute) {
  // Two chunks with separate buffers: the second upload overlaps the first
  // kernel (double buffering emerges from enqueue order).
  Context ctx(Platform::device("titanv"));
  constexpr std::size_t kBytes = 1 << 24;
  auto in0 = ctx.create_buffer(kBytes);
  auto in1 = ctx.create_buffer(kBytes);
  auto out0 = ctx.create_buffer(64);
  auto out1 = ctx.create_buffer(64);
  std::vector<std::byte> src(kBytes, std::byte{1});
  const double kernel_s =
      2.0 * sim::pcie_seconds(ctx.device().spec(), kBytes);

  (void)ctx.queue().enqueue_write(*in0, src);
  Buffer* r0[] = {in0.get()};
  Buffer* w0[] = {out0.get()};
  const Event k0 = ctx.queue().enqueue_kernel(kernel_s, r0, w0, {});
  const Event up1 = ctx.queue().enqueue_write(*in1, src);
  Buffer* r1[] = {in1.get()};
  Buffer* w1[] = {out1.get()};
  const Event k1 = ctx.queue().enqueue_kernel(kernel_s, r1, w1, {});

  EXPECT_LT(up1.start, k0.end);           // upload 1 overlaps kernel 0
  EXPECT_GE(k1.start, k0.end);            // compute engine is in-order
  EXPECT_LT(k1.start, k0.end + 1e-4);     // and starts right after
}

TEST(Queue, BarrierSerializes) {
  Context ctx(Platform::device("gtx980"));
  constexpr std::size_t kBytes = 1 << 22;
  auto in0 = ctx.create_buffer(kBytes);
  auto in1 = ctx.create_buffer(kBytes);
  std::vector<std::byte> src(kBytes, std::byte{1});
  Buffer* r0[] = {in0.get()};
  (void)ctx.queue().enqueue_write(*in0, src);
  const Event k0 = ctx.queue().enqueue_kernel(0.01, r0, {}, {});
  ctx.queue().barrier();
  const Event up1 = ctx.queue().enqueue_write(*in1, src);
  EXPECT_GE(up1.start, k0.end);
}

TEST(Queue, FinishReturnsCompletionTime) {
  Context ctx(Platform::device("vega64"));
  auto buf = ctx.create_buffer(64);
  std::vector<std::byte> src(64, std::byte{1});
  const Event ev = ctx.queue().enqueue_write(*buf, src);
  EXPECT_DOUBLE_EQ(ctx.queue().finish(), ev.end);
}

TEST(Buffer, TypedViews) {
  Context ctx(Platform::device("gtx980"));
  auto buf = ctx.create_buffer(16);
  auto u32 = buf->as<std::uint32_t>();
  ASSERT_EQ(u32.size(), 4u);
  std::iota(u32.begin(), u32.end(), 1u);
  const auto& cref = *buf;
  EXPECT_EQ(cref.as<std::uint32_t>()[3], 4u);
}

}  // namespace
}  // namespace snp::cl
