// Memory-system models: contention curve, PCIe, fixed overheads.
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include "model/device.hpp"

namespace snp::sim {
namespace {

TEST(Contention, NoDemandNoPenalty) {
  const auto d = model::titan_v();
  EXPECT_DOUBLE_EQ(contention_efficiency(d, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(contention_efficiency(d, 10, 0.0), 1.0);
}

TEST(Contention, MonotoneDecreasingInCores) {
  const auto d = model::vega64();
  double prev = 1.1;
  for (int n = 1; n <= d.n_cores; n *= 2) {
    const double eff = contention_efficiency(d, n, 7.0);
    EXPECT_LT(eff, prev);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    prev = eff;
  }
}

TEST(Contention, SoftMinLimitsToBandwidthShare) {
  // Far past saturation, per-core efficiency approaches B_eff / demand.
  const auto d = model::vega64();
  const double demand_per_core = 50.0;
  const int n = 64;
  const double eff = contention_efficiency(d, n, demand_per_core);
  const double asymptote = d.dram_gbps_effective / (n * demand_per_core);
  EXPECT_NEAR(eff, asymptote, 0.02 * asymptote + 0.01);
}

TEST(Contention, LowDemandNearUnity) {
  const auto d = model::titan_v();
  EXPECT_GT(contention_efficiency(d, 4, 1.0), 0.999);
}

TEST(Contention, SharperKneeWithLargerExponent) {
  auto d = model::vega64();
  const double demand = d.dram_gbps_effective / 32.0;  // half-saturation
  d.contention_p = 2.0;
  const double soft = contention_efficiency(d, 32, demand);
  d.contention_p = 8.0;
  const double sharp = contention_efficiency(d, 32, demand);
  EXPECT_LT(soft, sharp);  // sharper knee = flatter before saturation
}

TEST(Pcie, LinearInBytes) {
  const auto d = model::gtx980();
  const double one = pcie_seconds(d, 1'000'000);
  const double ten = pcie_seconds(d, 10'000'000);
  EXPECT_NEAR(ten, 10.0 * one, 1e-12);
  EXPECT_NEAR(one, 1e6 / (d.pcie_gbps * 1e9), 1e-15);
}

TEST(Overheads, PaperMagnitudes) {
  for (const auto& d : model::all_gpus()) {
    // "on the order of hundreds of milliseconds" for init.
    EXPECT_GE(init_seconds(d), 0.1) << d.name;
    EXPECT_LE(init_seconds(d), 0.5) << d.name;
    // Kernel launches are microseconds.
    EXPECT_GE(launch_seconds(d), 1e-6) << d.name;
    EXPECT_LE(launch_seconds(d), 1e-4) << d.name;
  }
  EXPECT_GT(pcie_latency_seconds(), 0.0);
}

}  // namespace
}  // namespace snp::sim
