// Pipe-bottleneck analysis and theoretical peaks (paper Sections IV/V-D).
#include "model/peak.hpp"

#include <gtest/gtest.h>

namespace snp::model {
namespace {

using bits::Comparison;

TEST(Peak, KernelMixAndXor) {
  for (const auto& d : all_gpus()) {
    for (const auto op : {Comparison::kAnd, Comparison::kXor}) {
      const InstrMix mix = kernel_mix(d, op);
      EXPECT_EQ(mix.logic, 1);
      EXPECT_EQ(mix.add, 1);
      EXPECT_EQ(mix.popc, 1);
    }
  }
}

TEST(Peak, AndNotMixDependsOnFusionAndLowering) {
  // NVIDIA fuses the negation (LOP3): no extra logic op. Vega executes a
  // separate NOT unless the database is pre-negated (Eq. 3).
  EXPECT_EQ(kernel_mix(gtx980(), Comparison::kAndNot).logic, 1);
  EXPECT_EQ(kernel_mix(titan_v(), Comparison::kAndNot).logic, 1);
  EXPECT_EQ(kernel_mix(vega64(), Comparison::kAndNot).logic, 2);
  EXPECT_EQ(kernel_mix(vega64(), Comparison::kAndNot, true).logic, 1);
}

TEST(Peak, ClusterRateBottlenecks) {
  // GTX 980: popc pipe 8 wide -> 8 word-ops/cycle/cluster, popc-bound.
  const auto g = cluster_rate(gtx980(), kernel_mix(gtx980(),
                                                   Comparison::kAnd));
  EXPECT_DOUBLE_EQ(g.wordops_per_cycle, 8.0);
  EXPECT_EQ(g.bottleneck_pipe, gtx980().pipe_index(InstrClass::kPopc));
  // Titan V: popc 4 wide -> 4 word-ops/cycle/cluster.
  const auto t = cluster_rate(titan_v(), kernel_mix(titan_v(),
                                                    Comparison::kAnd));
  EXPECT_DOUBLE_EQ(t.wordops_per_cycle, 4.0);
  EXPECT_EQ(t.bottleneck_pipe, titan_v().pipe_index(InstrClass::kPopc));
  // Vega: the shared logic/add pipe is the bottleneck (2 ops * 64/16 = 8
  // cycles vs popc 4) -> 8 word-ops/cycle/cluster.
  const auto v = cluster_rate(vega64(), kernel_mix(vega64(),
                                                   Comparison::kAnd));
  EXPECT_DOUBLE_EQ(v.wordops_per_cycle, 8.0);
  EXPECT_EQ(v.bottleneck_pipe, vega64().pipe_index(InstrClass::kLogic));
}

TEST(Peak, DevicePeaks) {
  // Peak = N_c * N_cl * cluster_rate * freq.
  EXPECT_NEAR(peak_wordops_per_s(gtx980(), Comparison::kAnd) / 1e9,
              16 * 4 * 8 * 1.367, 1e-6);  // ~700 G
  EXPECT_NEAR(peak_wordops_per_s(titan_v(), Comparison::kAnd) / 1e9,
              80 * 4 * 4 * 1.455, 1e-6);  // ~1862 G
  EXPECT_NEAR(peak_wordops_per_s(vega64(), Comparison::kAnd) / 1e9,
              64 * 4 * 8 * 1.663, 1e-6);  // ~3406 G
}

TEST(Peak, PeakOrderingMatchesPaper) {
  // Vega 64 has the highest raw peak, then Titan V, then GTX 980, and all
  // GPUs tower over the Xeon.
  const double g = peak_wordops_per_s(gtx980(), Comparison::kAnd);
  const double t = peak_wordops_per_s(titan_v(), Comparison::kAnd);
  const double v = peak_wordops_per_s(vega64(), Comparison::kAnd);
  const double c = cpu_peak_wordops_per_s(xeon_e5_2620v2());
  EXPECT_GT(v, t);
  EXPECT_GT(t, g);
  EXPECT_GT(g, 5.0 * c);
}

TEST(Peak, VegaNotPenaltyIsOneThird) {
  // Fig. 9: the in-kernel NOT costs Vega a third of its throughput
  // (3 logic-pipe ops instead of 2); NVIDIA is unaffected.
  const double v_and = peak_wordops_per_s(vega64(), Comparison::kAnd);
  const double v_andn = peak_wordops_per_s(vega64(), Comparison::kAndNot);
  EXPECT_NEAR(v_andn / v_and, 2.0 / 3.0, 1e-9);
  for (const auto& d : {gtx980(), titan_v()}) {
    EXPECT_DOUBLE_EQ(peak_wordops_per_s(d, Comparison::kAnd),
                     peak_wordops_per_s(d, Comparison::kAndNot));
  }
  // Pre-negation restores Vega's full rate.
  EXPECT_DOUBLE_EQ(peak_wordops_per_s(vega64(), Comparison::kAndNot, true),
                   v_and);
}

TEST(Peak, CpuPeakIsPopcountBound) {
  // 12 cores * 1 popcount/cycle * 2.1 GHz on 64-bit words = 25.2 G op64/s
  // = 50.4 G 32-bit-equivalent word-ops/s.
  EXPECT_NEAR(cpu_peak_wordops_per_s(xeon_e5_2620v2()) / 1e9, 50.4, 1e-9);
}

TEST(Peak, ActiveCoreScaling) {
  const auto d = gtx980();
  const double full = peak_wordops_per_s(d, Comparison::kAnd);
  const double half = peak_wordops_per_s(d, Comparison::kAnd, false, 8);
  EXPECT_NEAR(half / full, 0.5, 1e-12);
}

TEST(Peak, BottleneckDescriptions) {
  EXPECT_NE(describe_bottleneck(gtx980(), Comparison::kAnd)
                .find("popcount"),
            std::string::npos);
  EXPECT_NE(describe_bottleneck(vega64(), Comparison::kAnd)
                .find("logic/add"),
            std::string::npos);
}

TEST(Peak, WordopsToCups) {
  EXPECT_DOUBLE_EQ(wordops_to_cups(1.0), 32.0);
}

}  // namespace
}  // namespace snp::model
