// Cycle-level core simulator: latency semantics, pipe throughput, bank
// conflicts, round-robin latency hiding — the machine of Section IV-A.
#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include "model/device.hpp"

namespace snp::sim {
namespace {

/// A one-cluster toy device where the numbers are easy to reason about.
model::GpuSpec toy_device() {
  model::GpuSpec d;
  d.name = "Toy";
  d.vendor = "toy";
  d.microarch = "toy";
  d.freq_ghz = 1.0;
  d.n_t = 16;
  d.n_grp_max = 32;
  d.n_cores = 1;
  d.n_clusters = 1;
  d.n_vec = 4;
  // pipe 0: logic+add 16-wide (occupancy 1), latency 5;
  // pipe 1: popc 4-wide (occupancy 4), latency 5; pipe 2: mem.
  d.pipes = {{16, 5}, {4, 5}, {8, 5}};
  d.pipe_of[static_cast<int>(model::InstrClass::kLogic)] = 0;
  d.pipe_of[static_cast<int>(model::InstrClass::kAdd)] = 0;
  d.pipe_of[static_cast<int>(model::InstrClass::kPopc)] = 1;
  d.pipe_of[static_cast<int>(model::InstrClass::kMem)] = 2;
  d.shared_bytes = 1024;
  d.banks = 16;
  d.regs_per_core = 4096;
  d.max_regs_per_thread = 64;
  d.global_bytes = 1 << 20;
  d.max_alloc_bytes = 1 << 19;
  return d;
}

SimOptions no_overhead() {
  SimOptions o;
  o.loop_overhead_instrs = 0;
  return o;
}

TEST(Pipeline, DependentChainExposesLatency) {
  // One group, dependent logic chain: issue every L_fn = 5 cycles.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = dependent_chain(Opcode::kMov, 32, 64);
  const auto stats = sim.run(p, 1);
  const double rate = static_cast<double>(stats.cycles) /
                      static_cast<double>(32 * 64);
  EXPECT_NEAR(rate, 5.0, 0.3);  // prologue LDG amortized over 2048 instrs
}

TEST(Pipeline, DependentChainRateIsMaxOfLatencyAndOccupancy) {
  // Popc on the toy device: occupancy 16/4 = 4 < latency 5 -> rate 5.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = dependent_chain(Opcode::kPopc, 32, 64);
  const double rate = static_cast<double>(sim.run(p, 1).cycles) / (32 * 64);
  EXPECT_NEAR(rate, 5.0, 0.3);
  // Widen latency below occupancy: rate becomes the occupancy.
  auto fat = dev;
  fat.pipes[1].latency_cycles = 2;
  const CoreSim sim2(fat, no_overhead());
  const double rate2 =
      static_cast<double>(sim2.run(p, 1).cycles) / (32 * 64);
  EXPECT_NEAR(rate2, 4.0, 0.3);
}

TEST(Pipeline, IndependentStreamsSaturateOneGroupToOccupancy) {
  // With 8 independent streams, a single group issues a popc every
  // occupancy (4) cycles despite latency 5.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = independent_streams(Opcode::kPopc, 8, 8, 64);
  const double rate =
      static_cast<double>(sim.run(p, 1).cycles) / (8.0 * 8 * 64);
  EXPECT_NEAR(rate, 4.0, 0.3);
}

TEST(Pipeline, LogicPipeFullRate) {
  // Logic occupancy 1: one instruction per cycle from a single group with
  // enough ILP.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = independent_streams(Opcode::kAnd, 8, 8, 512);
  const double rate =
      static_cast<double>(sim.run(p, 1).cycles) / (8.0 * 8 * 512);
  EXPECT_NEAR(rate, 1.0, 0.05);
}

TEST(Pipeline, MultipleGroupsHideDependentLatency) {
  // L_fn groups of dependent popc chains: the pipe saturates at its
  // occupancy rate (1 instr / 4 cycles), hiding the 5-cycle latency.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = dependent_chain(Opcode::kPopc, 32, 32);
  const auto stats = sim.run(p, 5);
  const double per_instr =
      static_cast<double>(stats.cycles) / (5.0 * 32 * 32);
  EXPECT_NEAR(per_instr, 4.0, 0.3);
}

TEST(Pipeline, SeparatePipesOverlap) {
  // Equal counts of popc (occ 4) and add (occ 1) on different pipes: the
  // add stream hides entirely under the popc stream.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto solo = independent_streams(Opcode::kPopc, 4, 8, 64);
  const auto mixed = interleaved_pair(Opcode::kPopc, Opcode::kAdd, 32, 64);
  const auto solo_cycles = sim.run(solo, 2).cycles;
  const auto mixed_cycles = sim.run(mixed, 2).cycles;
  // mixed has the same number of popc ops as solo (32 vs 4*8 per iter).
  EXPECT_LT(static_cast<double>(mixed_cycles),
            1.2 * static_cast<double>(solo_cycles));
}

TEST(Pipeline, SharedPipeSerializes) {
  // add + and share pipe 0: the mix costs the sum of both.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto solo = independent_streams(Opcode::kAnd, 4, 8, 64);
  const auto mixed = interleaved_pair(Opcode::kAnd, Opcode::kAdd, 32, 64);
  const auto solo_cycles = sim.run(solo, 2).cycles;
  const auto mixed_cycles = sim.run(mixed, 2).cycles;
  EXPECT_GT(static_cast<double>(mixed_cycles),
            1.7 * static_cast<double>(solo_cycles));
}

TEST(Pipeline, LoopOverheadShrinksWithBodySize) {
  // The paper: "increasing the number of instructions in the loop body
  // will diminish the effects of managing the loop."
  const auto dev = toy_device();
  SimOptions with_overhead;
  with_overhead.loop_overhead_instrs = 2;
  const CoreSim sim(dev, with_overhead);
  const auto small = dependent_chain(Opcode::kMov, 4, 512);
  const auto large = dependent_chain(Opcode::kMov, 64, 32);
  const double rate_small =
      static_cast<double>(sim.run(small, 1).cycles) / (4 * 512);
  const double rate_large =
      static_cast<double>(sim.run(large, 1).cycles) / (64 * 32);
  EXPECT_GT(rate_small, rate_large + 0.2);
  EXPECT_NEAR(rate_large, 5.0, 0.5);
}

TEST(BankConflicts, ClassicStrides) {
  const auto dev = toy_device();  // 16 banks, 16 lanes
  EXPECT_EQ(bank_conflict_factor(dev, 0), 1);   // broadcast
  EXPECT_EQ(bank_conflict_factor(dev, 1), 1);   // conflict-free
  EXPECT_EQ(bank_conflict_factor(dev, 2), 2);   // 2-way
  EXPECT_EQ(bank_conflict_factor(dev, 4), 4);   // 4-way
  EXPECT_EQ(bank_conflict_factor(dev, 16), 16);  // all lanes one bank
  EXPECT_EQ(bank_conflict_factor(dev, 17), 1);  // odd stride: conflict-free
}

TEST(BankConflicts, WideGroupBaseline) {
  // Vega: 64 lanes over 32 banks -> 2 lanes/bank is unavoidable; stride 1
  // is therefore factor 1, stride 2 factor 2.
  const auto v = model::vega64();
  EXPECT_EQ(bank_conflict_factor(v, 1), 1);
  EXPECT_EQ(bank_conflict_factor(v, 2), 2);
  EXPECT_EQ(bank_conflict_factor(v, 32), 32);
}

TEST(BankConflicts, SlowLdsIssue) {
  // A strided LDS stream must cost ~factor x the conflict-free stream.
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto free_p = strided_lds(1, 16, 64);
  const auto conf_p = strided_lds(4, 16, 64);
  const auto free_c = sim.run(free_p, 2).cycles;
  const auto conf_c = sim.run(conf_p, 2).cycles;
  EXPECT_NEAR(static_cast<double>(conf_c) / static_cast<double>(free_c),
              4.0, 0.5);
}

TEST(Pipeline, StatsAreConsistent) {
  const auto dev = toy_device();
  const CoreSim sim(dev, no_overhead());
  const auto p = independent_streams(Opcode::kAnd, 4, 4, 16);
  const auto stats = sim.run(p, 3);
  EXPECT_EQ(stats.instructions, 3u * p.dynamic_instructions());
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.ipc(), 0.0);
  // Logic-pipe busy cycles: one per logic instruction issued.
  EXPECT_EQ(stats.pipe_busy_cycles[0], 3u * 4u * 4u * 16u);
}

TEST(Pipeline, RejectsBadInput) {
  const CoreSim sim(toy_device());
  EXPECT_THROW((void)sim.run(Program{}, 0), std::invalid_argument);
  model::GpuSpec bad = toy_device();
  bad.pipes.clear();
  EXPECT_THROW(CoreSim{bad}, std::invalid_argument);
}

TEST(Pipeline, RealDevicesRunMicrobenchPrograms) {
  for (const auto& d : model::all_gpus()) {
    const CoreSim sim(d, no_overhead());
    const auto p = dependent_chain(Opcode::kPopc, 16, 16);
    const auto stats = sim.run(p, d.n_clusters);
    EXPECT_GT(stats.cycles, 0u) << d.name;
  }
}

}  // namespace
}  // namespace snp::sim
