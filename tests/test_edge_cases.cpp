// Assorted edge cases gathered while hardening: stride shrink semantics,
// buffer accounting, timeline overlap accounting, config grids on tiny
// problems, single-word comparisons through the whole stack.
#include <gtest/gtest.h>

#include "cl/clmini.hpp"
#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "sim/transfer.hpp"

namespace snp {
namespace {

TEST(EdgeCases, WithStrideNeverLosesLogicalBits) {
  // Requesting a stride smaller than the logical width must still cover
  // every bit column (the constructor rounds up).
  const auto m = io::random_bitmatrix(3, 500, 0.5, 1111);  // 8 words wide
  const auto narrow = m.with_stride(1);
  EXPECT_EQ(narrow.words64_per_row(), 8u);
  EXPECT_EQ(narrow, m);
  const auto wide = m.with_stride(16);
  EXPECT_EQ(wide.words64_per_row(), 16u);
  EXPECT_EQ(wide, m);
  EXPECT_TRUE(wide.padding_is_zero());
}

TEST(EdgeCases, BufferAccountingAcrossRelease) {
  cl::Context ctx(cl::Platform::device("titanv"));
  const std::size_t before = ctx.allocated_bytes();
  auto a = ctx.create_buffer(1 << 20);
  auto b = ctx.create_buffer(1 << 21);
  EXPECT_EQ(ctx.allocated_bytes(), before + (1 << 20) + (1 << 21));
  ctx.release_buffer(a);
  EXPECT_EQ(ctx.allocated_bytes(), before + (1 << 21));
  ctx.release_buffer(nullptr);  // no-op
  EXPECT_EQ(ctx.allocated_bytes(), before + (1 << 21));
  ctx.release_buffer(b);
  EXPECT_EQ(ctx.allocated_bytes(), before);
}

TEST(EdgeCases, TimelineOverlapFractionBounds) {
  sim::Timeline empty;
  EXPECT_DOUBLE_EQ(empty.overlap_fraction(), 0.0);
  const auto d = model::titan_v();
  // Pure compute: no transfer to hide.
  const auto compute_only = sim::run_timeline(d, {{0, 0.01, 0}});
  EXPECT_DOUBLE_EQ(compute_only.overlap_fraction(), 0.0);
  // Heavily overlapped stream.
  const std::vector<sim::Chunk> chunks(12, sim::Chunk{1 << 24, 0.05,
                                                      1 << 20});
  const auto tl = sim::run_timeline(d, chunks);
  EXPECT_GE(tl.overlap_fraction(), 0.0);
  EXPECT_LE(tl.overlap_fraction(), 1.0);
  EXPECT_GT(tl.overlap_fraction(), 0.8);
}

TEST(EdgeCases, SingleWordProblemEndToEnd) {
  // 1x1 comparison over 1 bit through every backend.
  bits::BitMatrix a(1, 1);
  a.set(0, 0, true);
  bits::BitMatrix b(1, 1);
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context ctx = Context::gpu(name);
    EXPECT_EQ(ctx.compare(a, b, bits::Comparison::kXor).counts.at(0, 0),
              1u)
        << name;
    EXPECT_EQ(ctx.compare(a, a, bits::Comparison::kAndNot)
                  .counts.at(0, 0),
              0u)
        << name;
  }
  Context cpu = Context::cpu();
  EXPECT_EQ(cpu.compare(a, b, bits::Comparison::kAnd).counts.at(0, 0), 0u);
}

TEST(EdgeCases, ChunkRowsOfOne) {
  // Degenerate chunking: one streamed row per chunk still assembles the
  // exact gamma matrix (and exercises maximum pipeline depth).
  Context ctx = Context::gpu("gtx980");
  const auto a = io::random_bitmatrix(3, 96, 0.5, 1112);
  const auto b = io::random_bitmatrix(17, 96, 0.5, 1113);
  ComputeOptions opts;
  opts.chunk_rows = 1;
  const auto r = ctx.compare(a, b, bits::Comparison::kAnd, opts);
  EXPECT_EQ(r.timing.chunks, 17);
  EXPECT_TRUE(r.counts ==
              bits::compare_reference(a, b, bits::Comparison::kAnd));
}

TEST(EdgeCases, EstimateDegenerateShapesRejected) {
  Context ctx = Context::gpu("vega64");
  EXPECT_THROW((void)ctx.estimate(0, 1, 1, bits::Comparison::kAnd),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.estimate(1, 1, 0, bits::Comparison::kAnd),
               std::invalid_argument);
}

TEST(EdgeCases, KernelConfigOverrideOnCpuContextRejected) {
  Context cpu = Context::cpu();
  const auto a = io::random_bitmatrix(2, 64, 0.5, 1114);
  EXPECT_THROW((void)cpu.effective_config(a, a, bits::Comparison::kAnd),
               std::logic_error);
}

}  // namespace
}  // namespace snp
