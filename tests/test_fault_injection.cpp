// Fault-injection soak: every injection site x every recovery policy x
// many seeds must end with counts bit-identical to a clean serial run
// (the whole point of the recovery ladder — slower, never wrong), plus
// the observability and abort-path contracts around it.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/cli.hpp"
#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "multi/multi_gpu.hpp"
#include "rt/fault.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using bits::CountMatrix;

/// Small but multi-chunk workload: several chunks means every pipeline
/// site (h2d, launch, readback, pool, drain) is checked repeatedly.
struct Workload {
  BitMatrix a = io::random_bitmatrix(6, 256, 0.4, 4401);
  BitMatrix b = io::random_bitmatrix(97, 256, 0.5, 4402);
};

ComputeOptions soak_options(rt::FailPolicy policy) {
  ComputeOptions opts;
  opts.chunk_rows = 16;  // ~7 chunks
  opts.recovery.policy = policy;
  opts.recovery.backoff_base_s = 0.0;  // keep the soak fast
  return opts;
}

CountMatrix clean_baseline(const Workload& w) {
  Context ctx = Context::gpu("titanv");
  return ctx.compare(w.a, w.b, Comparison::kXor, soak_options(
                                                     rt::FailPolicy::kAbort))
      .counts;
}

TEST(FaultSoak, LaunchHundredSeedsUnderEveryRecoveryPolicy) {
  const Workload w;
  const CountMatrix expected = clean_baseline(w);
  for (const auto policy :
       {rt::FailPolicy::kRetry, rt::FailPolicy::kFailover,
        rt::FailPolicy::kDegrade}) {
    for (int seed = 0; seed < 100; ++seed) {
      rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
          "launch:p=0.05:seed=" + std::to_string(seed)));
      Context ctx = Context::gpu("titanv");
      const auto r =
          ctx.compare(w.a, w.b, Comparison::kXor, soak_options(policy));
      ASSERT_TRUE(r.counts == expected)
          << "policy=" << rt::to_string(policy) << " seed=" << seed;
      const std::uint64_t fires = rt::FaultInjector::global().fires();
      if (fires > 0) {
        EXPECT_FALSE(r.timing.fault_events.empty())
            << "policy=" << rt::to_string(policy) << " seed=" << seed;
      } else {
        EXPECT_TRUE(r.timing.fault_events.empty());
      }
    }
  }
}

TEST(FaultSoak, EverySiteEveryPolicyRecovers) {
  const Workload w;
  const CountMatrix expected = clean_baseline(w);
  for (const std::string site :
       {"alloc", "h2d", "launch", "readback", "pool", "timeout"}) {
    for (const auto policy :
         {rt::FailPolicy::kRetry, rt::FailPolicy::kFailover,
          rt::FailPolicy::kDegrade}) {
      for (int seed = 0; seed < 20; ++seed) {
        rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
            site + ":p=0.1:seed=" + std::to_string(seed)));
        Context ctx = Context::gpu("titanv");
        const auto r = ctx.compare(w.a, w.b, Comparison::kXor,
                                   soak_options(policy));
        ASSERT_TRUE(r.counts == expected)
            << "site=" << site << " policy=" << rt::to_string(policy)
            << " seed=" << seed;
      }
    }
  }
}

TEST(FaultSoak, AsyncPipelineRecoversToo) {
  const Workload w;
  const CountMatrix expected = clean_baseline(w);
  for (const std::string site : {"launch", "pool", "h2d"}) {
    for (int seed = 0; seed < 10; ++seed) {
      rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
          site + ":p=0.1:seed=" + std::to_string(seed)));
      ComputeOptions opts = soak_options(rt::FailPolicy::kDegrade);
      opts.threads = 3;
      Context ctx = Context::gpu("titanv");
      const auto r = ctx.compare(w.a, w.b, Comparison::kXor, opts);
      ASSERT_TRUE(r.counts == expected)
          << "site=" << site << " seed=" << seed;
    }
  }
}

TEST(FaultSoak, SameSeedReplaysTheSameRecoverySequence) {
  const Workload w;
  auto run = [&] {
    rt::ScopedFaultPlan plan(
        rt::FaultPlan::parse("launch:p=0.3:seed=77"));
    Context ctx = Context::gpu("titanv");
    const auto r = ctx.compare(w.a, w.b, Comparison::kXor,
                               soak_options(rt::FailPolicy::kDegrade));
    std::ostringstream os;
    for (const auto& ev : r.timing.fault_events) {
      os << ev.site << '/' << rt::code_name(ev.code) << '/' << ev.action
         << '/' << ev.chunk << '/' << ev.attempt << ';';
    }
    return os.str();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST(FaultSoak, AbortPropagatesTheSiteCode) {
  const Workload w;
  const struct {
    const char* site;
    rt::ErrorCode code;
  } cases[] = {
      {"alloc", rt::ErrorCode::kAlloc},
      {"h2d", rt::ErrorCode::kH2d},
      {"launch", rt::ErrorCode::kLaunch},
      {"readback", rt::ErrorCode::kReadback},
      {"pool", rt::ErrorCode::kPoolTask},
      {"timeout", rt::ErrorCode::kTimeout},
  };
  for (const auto& c : cases) {
    rt::ScopedFaultPlan plan(
        rt::FaultPlan::parse(std::string(c.site) + ":after=1"));
    Context ctx = Context::gpu("titanv");
    try {
      (void)ctx.compare(w.a, w.b, Comparison::kXor,
                        soak_options(rt::FailPolicy::kAbort));
      FAIL() << "expected rt::Error for site " << c.site;
    } catch (const rt::Error& e) {
      EXPECT_EQ(e.code(), c.code) << "site=" << c.site;
    }
  }
}

TEST(FaultSoak, DegradedStreamingDeliversEveryRowExactlyOnce) {
  // Full mid-run degradation with a streaming consumer: the CPU rung
  // must deliver only the undelivered remainder — never a chunk twice.
  const Workload w;
  const CountMatrix expected = clean_baseline(w);
  rt::ScopedFaultPlan plan(
      rt::FaultPlan::parse("launch:p=1:seed=1"));
  ComputeOptions opts = soak_options(rt::FailPolicy::kDegrade);
  opts.keep_counts = false;
  CountMatrix assembled(w.a.rows(), w.b.rows());
  std::set<std::size_t> seen_rows;
  bool duplicate = false;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& v) {
    const std::size_t len =
        v.streamed_b ? v.part.cols() : v.part.rows();
    for (std::size_t r = v.row0; r < v.row0 + len; ++r) {
      duplicate = duplicate || !seen_rows.insert(r).second;
    }
    for (std::size_t i = 0; i < v.part.rows(); ++i) {
      for (std::size_t j = 0; j < v.part.cols(); ++j) {
        if (v.streamed_b) {
          assembled.at(i, v.row0 + j) = v.part.at(i, j);
        } else {
          assembled.at(v.row0 + i, j) = v.part.at(i, j);
        }
      }
    }
  };
  Context ctx = Context::gpu("titanv");
  const auto r = ctx.compare(w.a, w.b, Comparison::kXor, opts);
  EXPECT_TRUE(r.timing.degraded);
  EXPECT_FALSE(duplicate);
  EXPECT_EQ(seen_rows.size(), w.b.rows());
  EXPECT_TRUE(assembled == expected);
}

TEST(FaultSoak, CliSearchRecoversAndReportsFaults) {
  // End-to-end through the CLI: inject heavily, require the recovered
  // ranking to match the clean run and the report to say what happened.
  const auto tmp = testing::TempDir();
  const std::string db = tmp + "/soak_db.sbm";
  const std::string q = tmp + "/soak_q.sbm";
  io::save_bitmatrix(io::random_bitmatrix(200, 256, 0.5, 4403),
                     std::filesystem::path(db));
  io::save_bitmatrix(io::random_bitmatrix(3, 256, 0.5, 4404),
                     std::filesystem::path(q));
  auto run = [&](const std::vector<std::string>& extra) {
    std::vector<std::string> args = {"search", "--queries", q, "--db",
                                     db, "--device", "titanv"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::ostringstream out, err;
    const int rc = cli::run(args, out, err);
    return std::pair<int, std::string>(rc, out.str());
  };
  const auto [clean_rc, clean_out] = run({});
  ASSERT_EQ(clean_rc, 0);
  const auto queries_of = [](const std::string& text) {
    std::string result;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) {
      if (line.rfind("query ", 0) == 0) result += line + '\n';
    }
    return result;
  };
  for (const char* policy : {"retry", "failover", "degrade"}) {
    const auto [rc, out] = run({"--inject-faults", "launch:p=0.5:seed=9",
                                "--fail-policy", policy});
    ASSERT_EQ(rc, 0) << policy;
    EXPECT_EQ(queries_of(out), queries_of(clean_out)) << policy;
    EXPECT_NE(out.find("faults:"), std::string::npos) << policy;
  }
  // Abort: non-zero exit with the stable code on stderr.
  std::ostringstream out, err;
  const int rc = cli::run({"search", "--queries", q, "--db", db,
                           "--inject-faults", "launch:after=1",
                           "--fail-policy", "abort"},
                          out, err);
  EXPECT_EQ(rc, 4);
  EXPECT_NE(err.str().find("SNPRT-LAUNCH"), std::string::npos);
  // A bad plan is a usage error, not a runtime failure.
  std::ostringstream out2, err2;
  EXPECT_EQ(cli::run({"search", "--queries", q, "--db", db,
                      "--inject-faults", "warp:p=1"},
                     out2, err2),
            1);
}

TEST(FaultSoak, MultiGpuSoakStaysBitIdentical) {
  const auto a = io::random_bitmatrix(5, 192, 0.4, 4405);
  const auto b = io::random_bitmatrix(240, 192, 0.5, 4406);
  Context single = Context::gpu("titanv");
  const auto expected = single.compare(a, b, Comparison::kAnd).counts;
  for (const auto policy :
       {rt::FailPolicy::kFailover, rt::FailPolicy::kDegrade}) {
    for (int seed = 0; seed < 15; ++seed) {
      rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
          "shard:p=0.3:seed=" + std::to_string(seed) +
          ",launch:p=0.02:seed=" + std::to_string(seed)));
      multi::MultiGpuContext mg("titanv", 3);
      multi::MultiGpuOptions opts;
      opts.per_device = soak_options(policy);
      const auto r = mg.compare(a, b, Comparison::kAnd, opts);
      ASSERT_TRUE(r.counts == expected)
          << "policy=" << rt::to_string(policy) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace snp
