// Roofline analysis: ridge points, attainability bound, the Fig. 5 sweep
// as a walk along the intensity axis.
#include "sim/roofline.hpp"

#include <gtest/gtest.h>

#include "model/peak.hpp"

namespace snp::sim {
namespace {

using bits::Comparison;

TEST(Roofline, RidgeIntensityDefinition) {
  for (const auto& dev : model::all_gpus()) {
    const double ridge = ridge_intensity(dev, Comparison::kAnd);
    const double peak =
        model::peak_wordops_per_s(dev, Comparison::kAnd) / 1e9;
    EXPECT_NEAR(ridge * dev.dram_gbps_effective, peak, 1e-9) << dev.name;
    EXPECT_GT(ridge, 0.0);
  }
}

TEST(Roofline, AchievedNeverExceedsAttainable) {
  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    for (const std::size_t kw : {8u, 64u, 383u}) {
      const auto p = roofline_for(dev, cfg, Comparison::kAnd,
                                  {8192, 8192, kw});
      EXPECT_LE(p.achieved_gops, p.attainable_gops * 1.02)
          << dev.name << " kw=" << kw;
      EXPECT_LE(p.attainable_gops, p.peak_gops + 1e-9);
      EXPECT_GT(p.arithmetic_intensity, 0.0);
    }
  }
}

TEST(Roofline, DeeperKRaisesIntensity) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  double prev = 0.0;
  for (const std::size_t kw : {4u, 16u, 64u, 256u, 383u}) {
    const auto p =
        roofline_for(dev, cfg, Comparison::kAnd, {8192, 8192, kw});
    EXPECT_GT(p.arithmetic_intensity, prev) << kw;
    prev = p.arithmetic_intensity;
  }
}

TEST(Roofline, ShallowKIsMemoryBoundDeepKIsNot) {
  // The Fig. 5 mechanism restated as roofline sides: tiny K sits left of
  // the ridge (memory-bound), a full k_c tile sits right of it on the
  // NVIDIA parts.
  for (const auto& dev : {model::gtx980(), model::titan_v()}) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const auto shallow =
        roofline_for(dev, cfg, Comparison::kAnd, {8192, 8192, 4});
    const auto deep = roofline_for(dev, cfg, Comparison::kAnd,
                                   {8192, 8192, 383});
    EXPECT_TRUE(shallow.memory_bound) << dev.name;
    EXPECT_FALSE(deep.memory_bound) << dev.name;
  }
}

TEST(Roofline, VegaLivesLeftOfItsRidge) {
  // Vega's huge FU peak pushes its ridge point beyond what the LD kernel's
  // intensity reaches even at a full tile — the roofline restatement of
  // its 54.9 % of peak.
  const auto dev = model::vega64();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto p =
      roofline_for(dev, cfg, Comparison::kAnd, {16384, 16384, 512});
  EXPECT_TRUE(p.memory_bound);
  EXPECT_LT(p.achieved_gops, 0.6 * p.peak_gops);
  // The NVIDIA parts at the same relative shape are compute-bound.
  const auto t = model::titan_v();
  const auto pt = roofline_for(
      t, model::paper_preset(t, model::WorkloadKind::kLd), Comparison::kAnd,
      {16384, 16384, 383});
  EXPECT_FALSE(pt.memory_bound);
}

TEST(Roofline, PreNegationShiftsVegaRidge) {
  // AND-NOT without pre-negation lowers the FU peak (NOT on the shared
  // pipe), lowering the ridge intensity.
  const auto dev = model::vega64();
  const double fused = ridge_intensity(dev, Comparison::kAndNot, false);
  const double pre = ridge_intensity(dev, Comparison::kAndNot, true);
  EXPECT_LT(fused, pre);
  EXPECT_NEAR(pre / fused, 1.5, 1e-9);
}

}  // namespace
}  // namespace snp::sim
