// Autotuner: feasibility of every returned config, ranking order, preset
// competitiveness (the Table II validation).
#include "sim/autotune.hpp"

#include <gtest/gtest.h>

namespace snp::sim {
namespace {

using bits::Comparison;

TEST(Autotune, ReturnsRankedFeasibleConfigs) {
  const auto dev = model::gtx980();
  const KernelShape shape{8192, 8192, 383};
  const auto ranked = autotune(dev, Comparison::kAnd, shape,
                               model::WorkloadKind::kLd);
  ASSERT_FALSE(ranked.empty());
  ASSERT_LE(ranked.size(), 5u);
  double prev = 0.0;
  for (const auto& tc : ranked) {
    EXPECT_TRUE(model::validate(tc.config, dev).ok)
        << tc.config.to_string();
    EXPECT_GE(tc.seconds, prev);
    prev = tc.seconds;
    EXPECT_GT(tc.gops, 0.0);
  }
}

TEST(Autotune, RejectsDegenerateShape) {
  EXPECT_THROW((void)autotune(model::gtx980(), Comparison::kAnd,
                              {0, 1, 1}, model::WorkloadKind::kLd),
               std::invalid_argument);
}

class PresetHeadroom : public ::testing::TestWithParam<int> {};

TEST_P(PresetHeadroom, TableIIPresetsAreNearOptimalForLd) {
  // Within the model, exhaustive search must not beat the shipped preset
  // by much on the paper's own Fig. 5 shape — the quantitative version of
  // "the analytical derivation is enough" (cf. Low et al., 'Analytical
  // modeling is enough for high-performance BLIS').
  const auto dev = model::all_gpus()[static_cast<std::size_t>(GetParam())];
  const KernelShape shape{16384, 16384,
                          static_cast<std::size_t>(
                              model::paper_preset(
                                  dev, model::WorkloadKind::kLd)
                                  .k_c)};
  const double headroom = tuning_headroom(dev, Comparison::kAnd, shape,
                                          model::WorkloadKind::kLd);
  EXPECT_GE(headroom, 1.0 - 1e-9) << dev.name;   // best can't be worse
  EXPECT_LE(headroom, 1.15) << dev.name;         // ...or much better
}

INSTANTIATE_TEST_SUITE_P(Devices, PresetHeadroom,
                         ::testing::Values(0, 1, 2));

TEST(Autotune, FastIdShapesPreferSkewedGrids) {
  // 32-query FastID: every top configuration should put (nearly) all
  // cores on the database dimension, as the Table II presets do.
  const auto dev = model::titan_v();
  const KernelShape shape{32, 4'000'000, 32};
  const auto ranked = autotune(dev, Comparison::kXor, shape,
                               model::WorkloadKind::kFastId);
  for (const auto& tc : ranked) {
    EXPECT_LE(tc.config.grid.grid_m, 2) << tc.config.to_string();
  }
}

TEST(Autotune, SearchSpaceKnobsRespected) {
  const auto dev = model::vega64();
  AutotuneOptions opts;
  opts.m_c_candidates = {32};
  opts.k_c_fractions = {1.0};
  opts.sweep_grid = false;
  opts.top_k = 3;
  const auto ranked = autotune(dev, Comparison::kAnd, {4096, 4096, 512},
                               model::WorkloadKind::kLd, opts);
  ASSERT_LE(ranked.size(), 3u);
  for (const auto& tc : ranked) {
    // Preset (32x2 grid) may appear; everything else uses the fixed grid.
    const bool preset_grid = tc.config.grid == model::CoreGrid{32, 2};
    const bool fixed_grid =
        tc.config.grid == model::CoreGrid{dev.n_cores, 1};
    EXPECT_TRUE(preset_grid || fixed_grid) << tc.config.to_string();
    EXPECT_EQ(tc.config.m_c, 32);
  }
}

TEST(Autotune, WorksOnCustomDeviceWithoutPreset) {
  auto dev = model::gtx980();
  dev.name = "Custom";
  const auto ranked = autotune(dev, Comparison::kAnd, {2048, 2048, 128},
                               model::WorkloadKind::kLd);
  EXPECT_FALSE(ranked.empty());
}

}  // namespace
}  // namespace snp::sim
