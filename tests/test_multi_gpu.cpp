// Multi-GPU extension (paper future work): sharding correctness, timing
// composition, gather model, estimate/compare agreement.
#include <gtest/gtest.h>

#include "io/datagen.hpp"
#include "multi/multi_gpu.hpp"
#include "rt/fault.hpp"

namespace snp::multi {
namespace {

using bits::Comparison;

TEST(MultiGpu, RejectsBadConstruction) {
  EXPECT_THROW(MultiGpuContext("titanv", 0), std::invalid_argument);
  EXPECT_THROW(MultiGpuContext("noDevice", 2), std::invalid_argument);
}

TEST(MultiGpu, SingleDeviceMatchesContext) {
  const auto a = io::random_bitmatrix(8, 256, 0.4, 950);
  const auto b = io::random_bitmatrix(300, 256, 0.5, 951);
  MultiGpuContext multi("vega64", 1);
  Context single = Context::gpu("vega64");
  const auto rm = multi.compare(a, b, Comparison::kXor);
  const auto rs = single.compare(a, b, Comparison::kXor);
  EXPECT_TRUE(rm.counts == rs.counts);
  EXPECT_NEAR(rm.timing.end_to_end_s, rs.timing.end_to_end_s, 1e-9);
  EXPECT_EQ(rm.timing.devices, 1);
}

TEST(MultiGpu, ShardedCountsAreBitIdentical) {
  const auto a = io::random_bitmatrix(8, 300, 0.4, 952);
  const auto b = io::random_bitmatrix(1001, 300, 0.5, 953);  // ragged
  Context single = Context::gpu("titanv");
  const auto expected = single.compare(a, b, Comparison::kAnd).counts;
  for (const int devices : {2, 3, 7}) {
    MultiGpuContext multi("titanv", devices);
    const auto r = multi.compare(a, b, Comparison::kAnd);
    EXPECT_TRUE(r.counts == expected) << devices << " devices";
    EXPECT_EQ(r.timing.devices, devices);
    EXPECT_EQ(r.timing.per_device_end_to_end_s.size(),
              static_cast<std::size_t>(devices));
  }
}

TEST(MultiGpu, ShardsLargerOperandOnEitherSide) {
  // A larger than B: sharding must happen on A rows.
  const auto a = io::random_bitmatrix(500, 128, 0.3, 954);
  const auto b = io::random_bitmatrix(4, 128, 0.6, 955);
  Context single = Context::gpu("gtx980");
  const auto expected =
      single.compare(a, b, Comparison::kAndNot).counts;
  MultiGpuContext multi("gtx980", 4);
  const auto r = multi.compare(a, b, Comparison::kAndNot);
  EXPECT_TRUE(r.counts == expected);
}

TEST(MultiGpu, MoreDevicesNeverSlower) {
  MultiGpuOptions opts;
  opts.per_device.functional = false;
  double prev = 1e9;
  for (const int devices : {1, 2, 4, 8, 16}) {
    MultiGpuContext multi("titanv", devices);
    const auto t =
        multi.estimate(32, 20'000'000, 1024, Comparison::kXor, opts);
    EXPECT_LE(t.end_to_end_s, prev + 1e-9) << devices;
    prev = t.end_to_end_s;
  }
}

TEST(MultiGpu, InitIsConcurrentNotSerial) {
  // End-to-end with N devices must be far below N * single-device time
  // (devices initialize and run concurrently).
  MultiGpuOptions opts;
  opts.per_device.functional = false;
  MultiGpuContext one("vega64", 1);
  MultiGpuContext eight("vega64", 8);
  const auto t1 =
      one.estimate(32, 20'000'000, 512, Comparison::kXor, opts);
  const auto t8 =
      eight.estimate(32, 20'000'000, 512, Comparison::kXor, opts);
  EXPECT_LT(t8.end_to_end_s, t1.end_to_end_s);
  EXPECT_GT(t8.end_to_end_s, t1.slowest_device.init_s);  // init is a floor
}

TEST(MultiGpu, GatherCostsAppearOnlyWhenRequested) {
  MultiGpuOptions plain;
  plain.per_device.functional = false;
  MultiGpuOptions gathered = plain;
  gathered.gather_on_device = true;
  MultiGpuContext multi("titanv", 4);
  const auto tp = multi.estimate(1000, 100000, 512, Comparison::kAnd,
                                 plain);
  const auto tg = multi.estimate(1000, 100000, 512, Comparison::kAnd,
                                 gathered);
  EXPECT_DOUBLE_EQ(tp.gather_s, 0.0);
  EXPECT_GT(tg.gather_s, 0.0);
  EXPECT_NEAR(tg.end_to_end_s - tp.end_to_end_s, tg.gather_s, 1e-9);
  // Ring all-gather: ~ (N-1)/N of the result over the link.
  const double bytes = 1000.0 * 100000.0 * 4.0;
  EXPECT_NEAR(tg.gather_s, bytes * 0.75 / 25e9 + 3 * 10e-6, 1e-6);
}

TEST(MultiGpu, EstimateTracksCompare) {
  const auto a = io::random_bitmatrix(8, 256, 0.4, 956);
  const auto b = io::random_bitmatrix(1200, 256, 0.5, 957);
  MultiGpuContext multi("gtx980", 3);
  MultiGpuOptions opts;
  opts.per_device.functional = false;
  opts.per_device.chunk_rows = 200;
  const auto measured = multi.compare(a, b, Comparison::kAnd, opts);
  const auto projected =
      multi.estimate(8, 1200, 256, Comparison::kAnd, opts);
  EXPECT_NEAR(projected.end_to_end_s, measured.timing.end_to_end_s,
              0.05 * measured.timing.end_to_end_s);
}

TEST(MultiGpu, MoreDevicesThanRowsDegradesGracefully) {
  const auto a = io::random_bitmatrix(2, 64, 0.5, 958);
  const auto b = io::random_bitmatrix(3, 64, 0.5, 959);
  MultiGpuContext multi("vega64", 8);
  const auto r = multi.compare(a, b, Comparison::kXor);
  EXPECT_EQ(r.timing.devices, 3);  // only 3 shards possible
  EXPECT_TRUE(r.counts == bits::compare_reference(a, b, Comparison::kXor));
}


TEST(MultiGpu, HeterogeneousBoxWeightsByThroughput) {
  // Titan V peak ~1862 G, GTX 980 ~700 G: shard split ~72.7 / 27.3.
  MultiGpuContext box(std::vector<std::string>{"titanv", "gtx980"});
  ASSERT_EQ(box.device_count(), 2);
  const auto& w = box.weights();
  EXPECT_NEAR(w[0], 1862.4 / (1862.4 + 699.9), 0.01);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_THROW(MultiGpuContext(std::vector<std::string>{}),
               std::invalid_argument);
}

TEST(MultiGpu, HeterogeneousShardingBalancesFinishTimes) {
  MultiGpuOptions opts;
  opts.per_device.functional = false;
  opts.per_device.include_init = false;  // isolate the compute balance
  MultiGpuContext box(std::vector<std::string>{"titanv", "gtx980"});
  // Deep-K compute-bound shape (throughput weighting can only balance the
  // compute term; PCIe is identical per row on every device).
  const auto t = box.estimate(10000, 50000, 100000,
                              bits::Comparison::kAnd, opts);
  ASSERT_EQ(t.per_device_end_to_end_s.size(), 2u);
  const double a = t.per_device_end_to_end_s[0];
  const double b = t.per_device_end_to_end_s[1];
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.25);
  // Against a uniform split the same shape leaves the GTX 980 ~2x behind.
  MultiGpuContext uniform_box(
      std::vector<std::string>{"titanv", "titanv"});
  (void)uniform_box;  // weights are uniform only for identical devices
}

TEST(MultiGpu, HeterogeneousResultsBitIdentical) {
  const auto a = io::random_bitmatrix(6, 200, 0.4, 960);
  const auto b = io::random_bitmatrix(777, 200, 0.5, 961);
  MultiGpuContext box(
      std::vector<std::string>{"vega64", "gtx980", "titanv"});
  const auto r = box.compare(a, b, bits::Comparison::kXor);
  EXPECT_TRUE(r.counts ==
              bits::compare_reference(a, b, bits::Comparison::kXor));
  EXPECT_EQ(r.timing.devices, 3);
}

// --- shard failover conformance (docs/robustness.md) ---

MultiGpuOptions failover_opts(rt::FailPolicy policy) {
  MultiGpuOptions opts;
  opts.per_device.recovery.policy = policy;
  opts.per_device.recovery.backoff_base_s = 0.0;
  return opts;
}

TEST(MultiGpuFailover, KillingEachShardKeepsCountsBitIdentical) {
  const auto a = io::random_bitmatrix(5, 192, 0.4, 970);
  const auto b = io::random_bitmatrix(500, 192, 0.5, 971);
  Context single = Context::gpu("titanv");
  const auto expected = single.compare(a, b, Comparison::kXor).counts;
  for (int k = 0; k < 3; ++k) {
    rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
        "shard:at=" + std::to_string(k) + ":after=1"));
    MultiGpuContext box("titanv", 3);
    const auto r = box.compare(a, b, Comparison::kXor,
                               failover_opts(rt::FailPolicy::kFailover));
    EXPECT_TRUE(r.counts == expected) << "killed shard " << k;
    ASSERT_EQ(r.timing.lost_devices.size(), 1u) << "killed shard " << k;
    EXPECT_NE(r.timing.lost_devices[0].find(
                  "[" + std::to_string(k) + "]"),
              std::string::npos)
        << r.timing.lost_devices[0];
    EXPECT_FALSE(r.timing.fault_events.empty());
    EXPECT_FALSE(r.timing.degraded);  // survivors absorbed the rows
  }
}

TEST(MultiGpuFailover, WholeBoxLossFallsToTheHostRung) {
  const auto a = io::random_bitmatrix(4, 128, 0.4, 972);
  const auto b = io::random_bitmatrix(300, 128, 0.5, 973);
  Context single = Context::gpu("gtx980");
  const auto expected = single.compare(a, b, Comparison::kAnd).counts;
  rt::ScopedFaultPlan plan(
      rt::FaultPlan::parse("shard:p=1"));  // every shard attempt dies
  MultiGpuContext box("gtx980", 3);
  const auto r = box.compare(a, b, Comparison::kAnd,
                             failover_opts(rt::FailPolicy::kFailover));
  EXPECT_TRUE(r.counts == expected);
  EXPECT_EQ(r.timing.lost_devices.size(), 3u);
  EXPECT_TRUE(r.timing.degraded);
}

TEST(MultiGpuFailover, DegradePolicyRecomputesTheShardOnHost) {
  const auto a = io::random_bitmatrix(4, 128, 0.4, 974);
  const auto b = io::random_bitmatrix(256, 128, 0.5, 975);
  Context single = Context::gpu("vega64");
  const auto expected = single.compare(a, b, Comparison::kXor).counts;
  rt::ScopedFaultPlan plan(
      rt::FaultPlan::parse("shard:at=1:after=1"));
  MultiGpuContext box("vega64", 2);
  const auto r = box.compare(a, b, Comparison::kXor,
                             failover_opts(rt::FailPolicy::kDegrade));
  EXPECT_TRUE(r.counts == expected);
  EXPECT_TRUE(r.timing.degraded);
  EXPECT_TRUE(r.timing.lost_devices.empty());  // no failover happened
}

TEST(MultiGpuFailover, AbortPolicyPropagatesShardLoss) {
  const auto a = io::random_bitmatrix(4, 128, 0.4, 976);
  const auto b = io::random_bitmatrix(200, 128, 0.5, 977);
  rt::ScopedFaultPlan plan(
      rt::FaultPlan::parse("shard:at=0:after=1"));
  MultiGpuContext box("titanv", 2);
  try {
    (void)box.compare(a, b, Comparison::kXor,
                      failover_opts(rt::FailPolicy::kAbort));
    FAIL() << "expected rt::Error";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), rt::ErrorCode::kShardLost);
  }
}

TEST(MultiGpuFailover, HostThreadsDoNotChangeFailoverResults) {
  const auto a = io::random_bitmatrix(5, 160, 0.4, 978);
  const auto b = io::random_bitmatrix(400, 160, 0.5, 979);
  Context single = Context::gpu("titanv");
  const auto expected = single.compare(a, b, Comparison::kXor).counts;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    rt::ScopedFaultPlan plan(
        rt::FaultPlan::parse("shard:at=2:after=1"));
    MultiGpuContext box("titanv", 4);
    MultiGpuOptions opts = failover_opts(rt::FailPolicy::kFailover);
    opts.host_threads = threads;
    const auto r = box.compare(a, b, Comparison::kXor, opts);
    EXPECT_TRUE(r.counts == expected) << threads << " host threads";
    EXPECT_EQ(r.timing.lost_devices.size(), 1u);
  }
}

}  // namespace
}  // namespace snp::multi
