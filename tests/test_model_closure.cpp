// Model closure: the cycle-level simulator executing the *actual* kernel
// inner loop must reproduce the analytical bottleneck-pipe rate the
// tile-level timing model prices kernels with — the validation DESIGN.md
// commits to. Also checks the occupancy policy (N_cl x L_fn groups) on
// the real instruction stream and the Vega NOT penalty at cycle level.
#include <gtest/gtest.h>

#include "kern/kernel_program.hpp"
#include "model/peak.hpp"
#include "sim/pipeline.hpp"

namespace snp::kern {
namespace {

using bits::Comparison;

/// Steady-state word-ops per cycle of one core running `groups` copies of
/// the kernel inner loop.
double simulated_ops_per_cycle(const model::GpuSpec& dev,
                               const model::KernelConfig& cfg,
                               Comparison op, int groups) {
  const auto info = build_kernel_program(dev, cfg, op, /*k_iterations=*/64,
                                         /*unroll=*/4);
  sim::SimOptions opts;
  opts.loop_overhead_instrs = 2;
  const sim::CoreSim core(dev, opts);
  const auto stats = core.run(info.program, groups);
  const double total_ops = static_cast<double>(
      info.wordops_per_iteration * info.program.iterations * static_cast<std::uint64_t>(groups));
  return total_ops / static_cast<double>(stats.cycles);
}

class ClosurePerDevice : public ::testing::TestWithParam<int> {};

TEST_P(ClosurePerDevice, CycleSimMatchesAnalyticRateForLd) {
  const auto dev = model::all_gpus()[static_cast<std::size_t>(GetParam())];
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const int groups = dev.n_clusters * dev.groups_per_cluster();
  const double simulated =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAnd,
                              std::min(groups, dev.n_grp_max));
  const double analytic =
      model::cluster_rate(dev, model::kernel_mix(dev, Comparison::kAnd))
          .wordops_per_cycle *
      dev.n_clusters;
  // Loop overhead and load instructions cost a few percent; the simulator
  // must land close to (and never above) the analytic bound.
  EXPECT_LE(simulated, analytic * 1.001) << dev.name;
  EXPECT_GE(simulated, analytic * 0.85) << dev.name;
}

TEST_P(ClosurePerDevice, OccupancyPolicySaturatesThroughput) {
  const auto dev = model::all_gpus()[static_cast<std::size_t>(GetParam())];
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const int policy = std::min(dev.n_clusters * dev.groups_per_cluster(),
                              dev.n_grp_max);
  const double at_policy =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAnd, policy);
  const double at_max =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAnd, dev.n_grp_max);
  // The framework's occupancy limit loses nothing (Volkov's observation).
  EXPECT_GE(at_policy, 0.97 * at_max) << dev.name;
  // And a single group per cluster cannot reach it (latency exposed).
  const double at_low =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAnd, dev.n_clusters);
  EXPECT_LT(at_low, at_policy) << dev.name;
}

INSTANTIATE_TEST_SUITE_P(Devices, ClosurePerDevice,
                         ::testing::Values(0, 1, 2));

TEST(ModelClosure, VegaNotPenaltyAtCycleLevel) {
  const auto dev = model::vega64();
  auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  const int groups = dev.n_grp_max;
  const double and_rate =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAnd, groups);
  const double andn_rate =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAndNot, groups);
  cfg.pre_negated = true;
  const double pre_rate =
      simulated_ops_per_cycle(dev, cfg, Comparison::kAndNot, groups);
  EXPECT_NEAR(andn_rate / and_rate, 2.0 / 3.0, 0.06);
  EXPECT_NEAR(pre_rate / and_rate, 1.0, 0.03);
}

TEST(ModelClosure, NvidiaFusedAndnHasNoPenaltyAtCycleLevel) {
  for (const auto& dev : {model::gtx980(), model::titan_v()}) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
    const int groups = std::min(
        dev.n_clusters * dev.groups_per_cluster(), dev.n_grp_max);
    const double and_rate =
        simulated_ops_per_cycle(dev, cfg, Comparison::kAnd, groups);
    const double andn_rate =
        simulated_ops_per_cycle(dev, cfg, Comparison::kAndNot, groups);
    EXPECT_NEAR(andn_rate / and_rate, 1.0, 0.02) << dev.name;
  }
}

TEST(KernelProgram, ShapeAndRegisterAccounting) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto info = build_kernel_program(dev, cfg, Comparison::kAnd, 16, 2);
  // GTX 980 LD: 4 * (384/6) / 32 = 8 outputs per thread.
  EXPECT_EQ(info.outputs_per_thread, 8);
  EXPECT_EQ(info.wordops_per_iteration, 8u * 32u * 2u);
  // Registers: 8 acc + 4 A + 2 B (double buffer) + 8 tmp = 22.
  EXPECT_EQ(info.registers_per_thread, 22);
  EXPECT_LE(info.registers_per_thread, dev.max_regs_per_thread);
  EXPECT_EQ(info.program.iterations, 16u);
  // Body: per k-step, 4 LDS + (amortized LDG) + 8 * 3 compute.
  EXPECT_GE(info.program.body.size(), 2u * (4 + 24));
}

TEST(KernelProgram, RejectsBadArguments) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  EXPECT_THROW(
      (void)build_kernel_program(dev, cfg, Comparison::kAnd, 0, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)build_kernel_program(dev, cfg, Comparison::kAnd, 1, 0),
      std::invalid_argument);
  auto bad = cfg;
  bad.k_c = 1 << 20;
  EXPECT_THROW(
      (void)build_kernel_program(dev, bad, Comparison::kAnd, 1, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace snp::kern
