// Device specs: Table I fidelity, validity, clocks, lookup.
#include "model/device.hpp"

#include <gtest/gtest.h>

namespace snp::model {
namespace {

TEST(Device, TableIGtx980) {
  const GpuSpec d = gtx980();
  EXPECT_EQ(d.microarch, "Maxwell");
  EXPECT_DOUBLE_EQ(d.freq_ghz, 1.367);
  EXPECT_EQ(d.n_t, 32);
  EXPECT_EQ(d.n_grp_max, 32);
  EXPECT_EQ(d.n_cores, 16);
  EXPECT_EQ(d.n_clusters, 4);
  EXPECT_EQ(d.pipe(InstrClass::kAdd).units_per_cluster, 32);
  EXPECT_EQ(d.pipe(InstrClass::kLogic).units_per_cluster, 32);
  EXPECT_EQ(d.pipe(InstrClass::kPopc).units_per_cluster, 8);
  EXPECT_EQ(d.pipe(InstrClass::kPopc).latency_cycles, 6);
  EXPECT_EQ(d.shared_bytes, 48u * 1024u);
  EXPECT_EQ(d.banks, 32);
  EXPECT_EQ(d.regs_per_core, 64u * 1024u);
  EXPECT_EQ(d.max_regs_per_thread, 255);
  EXPECT_TRUE(d.fused_andnot);
  EXPECT_TRUE(d.valid());
}

TEST(Device, TableITitanV) {
  const GpuSpec d = titan_v();
  EXPECT_EQ(d.microarch, "Volta");
  EXPECT_DOUBLE_EQ(d.freq_ghz, 1.455);
  EXPECT_EQ(d.n_cores, 80);
  EXPECT_EQ(d.pipe(InstrClass::kAdd).units_per_cluster, 16);
  EXPECT_EQ(d.pipe(InstrClass::kPopc).units_per_cluster, 4);
  EXPECT_EQ(d.pipe(InstrClass::kPopc).latency_cycles, 4);
  EXPECT_TRUE(d.valid());
}

TEST(Device, TableIVega64) {
  const GpuSpec d = vega64();
  EXPECT_EQ(d.vendor, "AMD");
  EXPECT_DOUBLE_EQ(d.freq_ghz, 1.663);
  EXPECT_EQ(d.n_t, 64);
  EXPECT_EQ(d.n_grp_max, 16);
  EXPECT_EQ(d.n_cores, 64);
  EXPECT_EQ(d.pipe(InstrClass::kPopc).units_per_cluster, 16);
  EXPECT_EQ(d.shared_bytes, 64u * 1024u);
  EXPECT_EQ(d.shared_reserved, 0u);
  EXPECT_FALSE(d.fused_andnot);
  // Section V-D: ADD and AND share the VALU pipe on Vega.
  EXPECT_EQ(d.pipe_index(InstrClass::kAdd),
            d.pipe_index(InstrClass::kLogic));
  // Popcount is its own pipe.
  EXPECT_NE(d.pipe_index(InstrClass::kPopc),
            d.pipe_index(InstrClass::kAdd));
  EXPECT_TRUE(d.valid());
}

TEST(Device, NvidiaPopcSeparatePipe) {
  for (const auto& d : {gtx980(), titan_v()}) {
    EXPECT_NE(d.pipe_index(InstrClass::kPopc),
              d.pipe_index(InstrClass::kAdd));
    EXPECT_EQ(d.pipe_index(InstrClass::kAdd),
              d.pipe_index(InstrClass::kLogic));
  }
}

TEST(Device, XeonBaseline) {
  const CpuSpec c = xeon_e5_2620v2();
  EXPECT_EQ(c.cores, 12);
  EXPECT_DOUBLE_EQ(c.freq_ghz, 2.1);
  EXPECT_EQ(c.popc_units, 1);
  EXPECT_GE(c.efficiency, 0.80);
  EXPECT_LE(c.efficiency, 0.90);
}

TEST(Device, ClockBoostMonotoneInIdleCores) {
  const GpuSpec d = titan_v();
  EXPECT_GT(d.clock_ghz(1), d.clock_ghz(d.n_cores));
  EXPECT_DOUBLE_EQ(d.clock_ghz(d.n_cores), d.freq_ghz);
  const GpuSpec v = vega64();  // no boost configured
  EXPECT_DOUBLE_EQ(v.clock_ghz(1), v.freq_ghz);
}

TEST(Device, GroupsPerClusterIsMaxLatency) {
  EXPECT_EQ(gtx980().groups_per_cluster(), 6);
  EXPECT_EQ(titan_v().groups_per_cluster(), 4);
  EXPECT_EQ(vega64().groups_per_cluster(), 4);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(gpu_by_name("gtx980").name, "GTX 980");
  EXPECT_EQ(gpu_by_name("GTX 980").name, "GTX 980");
  EXPECT_EQ(gpu_by_name("TitanV").name, "Titan V");
  EXPECT_EQ(gpu_by_name("titan-v").name, "Titan V");
  EXPECT_EQ(gpu_by_name("vega64").name, "Vega 64");
  EXPECT_EQ(gpu_by_name("Vega").name, "Vega 64");
  EXPECT_THROW((void)gpu_by_name("rtx5090"), std::invalid_argument);
}

TEST(Device, AllGpusInPaperOrder) {
  const auto gpus = all_gpus();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_EQ(gpus[0].name, "GTX 980");
  EXPECT_EQ(gpus[1].name, "Titan V");
  EXPECT_EQ(gpus[2].name, "Vega 64");
  for (const auto& g : gpus) {
    EXPECT_TRUE(g.valid()) << g.name;
    EXPECT_EQ(g.banks, 32) << g.name;
    EXPECT_EQ(g.n_clusters, 4) << g.name;
    EXPECT_GT(g.max_alloc_bytes, 0u) << g.name;
    EXPECT_LT(g.max_alloc_bytes, g.global_bytes) << g.name;
  }
}

TEST(Device, InvalidSpecsDetected) {
  GpuSpec d = gtx980();
  d.pipes.clear();
  EXPECT_FALSE(d.valid());
  d = gtx980();
  d.pipe_of[0] = 9;
  EXPECT_FALSE(d.valid());
  d = gtx980();
  d.freq_ghz = 0;
  EXPECT_FALSE(d.valid());
  d = gtx980();
  d.pipes[0].latency_cycles = 0;
  EXPECT_FALSE(d.valid());
}

}  // namespace
}  // namespace snp::model
