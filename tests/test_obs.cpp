// src/obs unit tests: registry concurrency (counters/gauges/histograms
// hammered from many threads), fixed-bucket histogram semantics, span
// nesting depth bookkeeping, and structural validity of the emitted
// metrics/trace JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/envinfo.hpp"
#include "obs/obs.hpp"
#include "sim/trace.hpp"

namespace snp::obs {
namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

/// Structural JSON sanity without a parser: balanced braces/brackets and
/// no trailing comma before a closer.
void expect_balanced_json(const std::string& s) {
  long braces = 0;
  long brackets = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
    if (c == ',') {
      const auto next = s.find_first_not_of(" \n\t", i + 1);
      ASSERT_NE(next, std::string::npos);
      EXPECT_NE(s[next], '}') << "trailing comma at offset " << i;
      EXPECT_NE(s[next], ']') << "trailing comma at offset " << i;
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a.b.c");
  Counter& c2 = reg.counter("a.b.c");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);

  Gauge& g = reg.gauge("a.b.level");
  g.set(7);
  g.sub(2);
  EXPECT_EQ(reg.gauge("a.b.level").value(), 5);
  EXPECT_EQ(g.peak(), 7);
}

TEST(MetricsRegistry, ConcurrentUpdatesFromManyThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Registration races with updates on purpose: every thread looks
      // the metrics up by name each iteration block.
      Counter& c = reg.counter("stress.counter");
      Gauge& g = reg.gauge("stress.gauge");
      Histogram& h =
          reg.histogram("stress.histo", {0.001, 0.01, 0.1, 1.0});
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        g.add(1);
        g.sub(1);
        h.observe(0.005);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("stress.counter"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.gauges.at("stress.gauge"), 0);
  EXPECT_GE(snap.gauge_peaks.at("stress.gauge"), 1);
  const auto& h = snap.histograms.at("stress.histo");
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kIters);
  // 0.005 lands in the (0.001, 0.01] bucket.
  EXPECT_EQ(h.counts[1], h.count);
  EXPECT_NEAR(h.sum, 0.005 * static_cast<double>(h.count),
              1e-6 * static_cast<double>(h.count));
}

TEST(Histogram, BucketBoundariesUseLowerInclusiveLeSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1        -> bucket 0
  h.observe(1.0);   // <= 1        -> bucket 0 (le is inclusive)
  h.observe(1.5);   // <= 2        -> bucket 1
  h.observe(5.0);   // <= 5        -> bucket 2
  h.observe(99.0);  // overflow    -> bucket 3
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 99.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

TEST(Histogram, LatencyBoundsAreStrictlyIncreasing) {
  const auto b = Histogram::latency_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) == b.end());
  EXPECT_LE(b.front(), 1e-6);
  EXPECT_GE(b.back(), 10.0);
}

TEST(Span, NestingTracksDepthAndContainment) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.begin_session();
  EXPECT_EQ(Span::current_depth(), 0);
  {
    Span outer("outer", collector);
    EXPECT_EQ(Span::current_depth(), 1);
    {
      Span inner("inner", collector);
      EXPECT_EQ(Span::current_depth(), 2);
    }
    EXPECT_EQ(Span::current_depth(), 1);
  }
  EXPECT_EQ(Span::current_depth(), 0);

  const auto events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  // Containment: outer's interval covers inner's.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
  // Same thread, same track.
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Span, DisabledCollectorRecordsNothing) {
  TraceCollector collector;
  ASSERT_FALSE(collector.enabled());
  {
    Span s("ignored", collector);
  }
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(Span::current_depth(), 0);
}

TEST(TraceCollector, BeginSessionClearsAndRezeroesEpoch) {
  TraceCollector collector;
  collector.set_enabled(true);
  { Span s("first", collector); }
  ASSERT_EQ(collector.size(), 1u);
  collector.begin_session();
  EXPECT_EQ(collector.size(), 0u);
  { Span s("second", collector); }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].ts_us, 0.0);
}

TEST(TraceWriter, EmitsValidChromeTraceJson) {
  std::vector<TrackLabel> tracks{{0, 0, "engine a"}, {1, 3, "thread 3"}};
  std::vector<TraceEvent> events;
  TraceEvent ev;
  ev.name = "slice \"quoted\"";
  ev.pid = 0;
  ev.tid = 0;
  ev.ts_us = 1.5;
  ev.dur_us = 2.5;
  events.push_back(ev);
  ev.name = "zero-length";
  ev.dur_us = 0.0;  // must be dropped
  events.push_back(ev);

  std::ostringstream os;
  write_trace_events(tracks, events, os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "thread_name"), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 1u);
  EXPECT_EQ(count_occurrences(json, "zero-length"), 0u);
  // The quote inside the span name must be escaped.
  EXPECT_NE(json.find("slice \\\"quoted\\\""), std::string::npos);
}

TEST(MetricsWriter, JsonSnapshotIsStructurallyValid) {
  MetricsRegistry reg;
  reg.counter("x.bytes").add(42);
  reg.gauge("x.depth").set(3);
  reg.histogram("x.lat", {0.1, 1.0}).observe(0.5);
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.bytes\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"gauge_peaks\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

TEST(MetricsWriter, PrometheusFormatSanitizesAndPrefixes) {
  MetricsRegistry reg;
  reg.counter("exec.pool.tasks_run").add(7);
  reg.gauge("exec.pool.queue_depth").set(2);
  reg.histogram("exec.pool.task_wait_seconds", {0.1, 1.0}).observe(0.05);
  std::ostringstream os;
  write_metrics_prometheus(reg.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("snpcmp_exec_pool_tasks_run 7"), std::string::npos);
  EXPECT_NE(text.find("snpcmp_exec_pool_queue_depth 2"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("_count 1"), std::string::npos);
  // Dots only survive inside `# HELP` text (where the exposition format
  // allows them and the original registry name is genuinely useful);
  // sample lines must use the sanitized spelling.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("# HELP ", 0) == 0) continue;
    EXPECT_EQ(line.find("exec.pool"), std::string::npos)
        << "dots must be sanitized outside HELP: " << line;
  }
}

TEST(MetricsWriter, PrometheusConformanceGolden) {
  // PR-8 satellite: the exposition format pinned byte-for-byte — HELP
  // before TYPE before samples for every family, build_info first with
  // escaped label values, gauges growing a _peak twin, histograms as
  // cumulative buckets + _sum + _count.
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.depth").set(2);
  auto& h = reg.histogram("c.lat_seconds", {0.5});
  h.observe(0.25);
  h.observe(2.0);
  EnvInfo env;
  env.compiler = "g++ \"13\"";
  env.git_sha = "abc123";
  env.hostname = "node\\1";
  env.kernel = "6.1";
  env.cpu_model = "Test\nCPU";
  std::ostringstream os;
  write_metrics_prometheus(reg.snapshot(), env, os);
  const std::string expected =
      "# HELP snpcmp_build_info execution environment of this process\n"
      "# TYPE snpcmp_build_info gauge\n"
      "snpcmp_build_info{compiler=\"g++ \\\"13\\\"\",git_sha=\"abc123\","
      "host=\"node\\\\1\",kernel=\"6.1\",cpu=\"Test\\nCPU\"} 1\n"
      "# HELP snpcmp_a_count snpcmp registry metric a.count\n"
      "# TYPE snpcmp_a_count counter\n"
      "snpcmp_a_count 3\n"
      "# HELP snpcmp_b_depth snpcmp registry metric b.depth\n"
      "# TYPE snpcmp_b_depth gauge\n"
      "snpcmp_b_depth 2\n"
      "# HELP snpcmp_b_depth_peak snpcmp registry metric b.depth "
      "high-water mark\n"
      "# TYPE snpcmp_b_depth_peak gauge\n"
      "snpcmp_b_depth_peak 2\n"
      "# HELP snpcmp_c_lat_seconds snpcmp registry metric c.lat_seconds\n"
      "# TYPE snpcmp_c_lat_seconds histogram\n"
      "snpcmp_c_lat_seconds_bucket{le=\"0.5\"} 1\n"
      "snpcmp_c_lat_seconds_bucket{le=\"+Inf\"} 2\n"
      "snpcmp_c_lat_seconds_sum 2.25\n"
      "snpcmp_c_lat_seconds_count 2\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(MetricsWriter, PrometheusHelpPrecedesTypeForEveryFamily) {
  MetricsRegistry reg;
  reg.counter("x.n").increment();
  reg.gauge("y.g").set(1);
  reg.histogram("z.h", {1.0}).observe(0.5);
  std::ostringstream os;
  write_metrics_prometheus(reg.snapshot(), os);
  const std::string text = os.str();
  // Scan line pairs: every `# TYPE <name>` must be directly preceded by
  // `# HELP <name>` (the format requires HELP first when both appear).
  std::istringstream is(text);
  std::string prev;
  std::string line;
  std::size_t families = 0;
  while (std::getline(is, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      ++families;
      const std::string name =
          line.substr(7, line.find(' ', 7) - 7);
      ASSERT_EQ(prev.rfind("# HELP " + name + " ", 0), 0U)
          << "TYPE for " << name << " not preceded by its HELP:\n"
          << text;
    }
    prev = line;
  }
  EXPECT_GE(families, 5U);  // build_info + counter + gauge + peak + hist
}

TEST(MetricsWriter, PrometheusNonFiniteValuesRenderPerExposition) {
  MetricsRegistry reg;
  // An infinite histogram bound and ±inf observations must render as
  // +Inf / -Inf (ostream would print "inf", which Prometheus rejects).
  auto& hi = reg.histogram("inf.bound",
                           {1.0, std::numeric_limits<double>::infinity()});
  hi.observe(std::numeric_limits<double>::infinity());
  auto& lo = reg.histogram("neg.obs", {1.0});
  lo.observe(-std::numeric_limits<double>::infinity());
  std::ostringstream os;
  write_metrics_prometheus(reg.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("snpcmp_inf_bound_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("snpcmp_inf_bound_sum +Inf"), std::string::npos)
      << text;
  EXPECT_NE(text.find("snpcmp_neg_obs_sum -Inf"), std::string::npos)
      << text;
  // Bare ostream spellings must never appear as sample values.
  EXPECT_EQ(text.find(" inf\n"), std::string::npos) << text;
  EXPECT_EQ(text.find(" nan\n"), std::string::npos) << text;
}

TEST(MetricsWriter, PromEscapeLabelHandlesEveryClass) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_escape_label("two\nlines"), "two\\nlines");
}

TEST(MetricsWriter, HistogramPercentilesAreMarkedApproximate) {
  MetricsRegistry reg;
  auto& h = reg.histogram("svc.latency", {0.001, 0.01, 0.1});
  h.observe(0.0005);
  h.observe(0.0005);
  h.observe(0.05);
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  const std::string json = os.str();
  expect_balanced_json(json);
  // Satellite 1: published percentiles are bucket upper bounds and say
  // so — "approx": true rides next to them in every histogram block.
  EXPECT_NE(json.find("\"percentiles\": {\"p50_le\": 0.001"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99_le\": 0.1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"approx\": true"), std::string::npos) << json;
}

TEST(MetricsWriter, EmptyAndOverflowPercentilesAreNull) {
  MetricsRegistry reg;
  (void)reg.histogram("svc.empty", {0.001});
  reg.histogram("svc.over", {0.001}).observe(5.0);  // overflow only
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  const std::string json = os.str();
  expect_balanced_json(json);
  // NaN (empty) and +inf (overflow bucket) are not JSON: both render as
  // null rather than poisoning the document.
  EXPECT_EQ(count_occurrences(json, "\"p50_le\": null"), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "nan"), 0u);
  EXPECT_EQ(count_occurrences(json, "inf"), 0u);
}

// ---- SLO burn-rate monitor ---------------------------------------------

TEST(Slo, ServiceLatencyBoundsAreStrictlyIncreasing) {
  const auto b = Histogram::service_latency_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) == b.end());
  EXPECT_LE(b.front(), 1e-5);
  EXPECT_GE(b.back(), 2.0);
}

TEST(Slo, PercentileLeIsBucketUpperBoundOverflowAndEmptyAreHonest) {
  SloMonitor mon(SloOptions{});  // no objective: histogram still feeds
  EXPECT_TRUE(std::isnan(mon.percentile_le(0.5)));

  mon.record(2e-5, 1);
  mon.record(2e-5, 2);
  mon.record(2e-5, 3);
  // All three sit in the (1e-5, 2.5e-5] bucket: p50 reports its upper
  // bound, never an interpolated fiction below a real observation.
  const double p50 = mon.percentile_le(0.5);
  EXPECT_GE(p50, 2e-5);
  EXPECT_LE(p50, 2.5e-5);

  mon.record(100.0, 4);  // beyond the last bound -> overflow
  EXPECT_TRUE(std::isinf(mon.percentile_le(1.0)));
}

TEST(Slo, ExemplarsRetainTheLatestTraceIdPerBucket) {
  SloMonitor mon(SloOptions{});
  mon.record(2e-5, 7);
  mon.record(2e-5, 9);    // same bucket: newest wins
  mon.record(0.5, 1234);  // far bucket
  const auto counts = mon.bucket_counts();
  const auto exemplars = mon.exemplars();
  ASSERT_EQ(counts.size(), mon.bounds().size() + 1);  // + overflow
  ASSERT_EQ(exemplars.size(), counts.size());
  std::uint64_t total = 0;
  bool saw9 = false;
  bool saw1234 = false;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (counts[i] == 0) {
      EXPECT_FALSE(exemplars[i].has_value());
      continue;
    }
    ASSERT_TRUE(exemplars[i].has_value());
    saw9 = saw9 || exemplars[i]->trace_id == 9;
    saw1234 = saw1234 || exemplars[i]->trace_id == 1234;
    EXPECT_NE(exemplars[i]->trace_id, 7u) << "stale exemplar kept";
  }
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(saw9);
  EXPECT_TRUE(saw1234);
}

TEST(Slo, BurnRateTripsOnceAndEdgeDetects) {
  SloOptions opt;
  opt.objective_s = 1e-9;  // everything breaches
  opt.error_budget = 0.01;
  opt.breach_burn_rate = 10.0;
  SloMonitor mon(opt);
  // Breach fraction 1.0 / budget 0.01 = burn 100 on both windows: the
  // first record crosses the trigger; the monitor then stays tripped
  // without re-firing (edge detection) while burn stays high.
  EXPECT_TRUE(mon.record(1.0, 1));
  EXPECT_FALSE(mon.record(1.0, 2));
  EXPECT_FALSE(mon.record(1.0, 3));
  const SloSnapshot snap = mon.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.breaches, 3u);
  EXPECT_EQ(snap.trips, 1u);
  EXPECT_GE(snap.burn_fast, opt.breach_burn_rate);
  EXPECT_GE(snap.burn_slow, opt.breach_burn_rate);
}

TEST(Slo, NoObjectiveMeansNoBurnEvaluation) {
  SloMonitor mon(SloOptions{});  // objective_s == 0
  EXPECT_FALSE(mon.record(100.0, 1));
  const SloSnapshot snap = mon.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.breaches, 0u);
  EXPECT_EQ(snap.trips, 0u);
  EXPECT_EQ(snap.burn_fast, 0.0);
  EXPECT_EQ(snap.burn_slow, 0.0);
}

TEST(MergedTrace, CombinesSpansTimelineAndChunksOnDistinctPids) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.begin_session();
  // Record a span-shaped event directly so its duration is deterministic
  // (a real Span closed immediately could round to 0 us and be dropped).
  TraceEvent span_ev;
  span_ev.name = "host work";
  span_ev.tid = 0;
  span_ev.ts_us = 10.0;
  span_ev.dur_us = 50.0;
  collector.record(span_ev);

  sim::Timeline tl;
  tl.init_seconds = 0.25;
  sim::ChunkTimes ct;
  ct.h2d_start = 0.25;
  ct.h2d_end = 0.5;
  ct.kernel_start = 0.5;
  ct.kernel_end = 1.0;
  ct.d2h_start = 1.0;
  ct.d2h_end = 1.25;
  tl.chunks.push_back(ct);

  sim::HostChunkEvent hc;
  hc.index = 0;
  hc.rows = 8;
  hc.host_pack_start = 0.001;
  hc.host_pack_end = 0.002;
  hc.host_exec_start = 0.002;
  hc.host_exec_end = 0.005;
  hc.host_drain_start = 0.005;
  hc.host_drain_end = 0.006;
  const std::vector<sim::HostChunkEvent> chunks{hc};

  std::ostringstream os;
  sim::write_merged_chrome_trace(collector, &tl, chunks, os, "testdev");
  const std::string json = os.str();
  expect_balanced_json(json);
  // All three pid groups appear: device engines (0), host spans (1),
  // pipeline stages (2).
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("host work"), std::string::npos);
  EXPECT_NE(json.find("kernel chunk 0"), std::string::npos);
  EXPECT_NE(json.find("pack chunk 0"), std::string::npos);
  EXPECT_NE(json.find("virtual clock"), std::string::npos);
}

TEST(ObsMacros, CompileAndUpdateTheGlobalRegistry) {
  // The macros target the process-global registry; read back through a
  // snapshot delta so other tests' metrics don't interfere.
  const auto before = MetricsRegistry::global().snapshot();
  const std::uint64_t base =
      before.counters.count("test.macro.counter") != 0
          ? before.counters.at("test.macro.counter")
          : 0;
  SNP_OBS_COUNT("test.macro.counter", 2);
  SNP_OBS_GAUGE_SET("test.macro.gauge", 5);
  SNP_OBS_OBSERVE("test.macro.lat", 0.001);
  {
    SNP_OBS_SPAN("test.macro.span");
  }
  const auto after = MetricsRegistry::global().snapshot();
  if constexpr (kEnabled) {
    EXPECT_EQ(after.counters.at("test.macro.counter"), base + 2);
    EXPECT_EQ(after.gauges.at("test.macro.gauge"), 5);
    EXPECT_GE(after.histograms.at("test.macro.lat").count, 1u);
  } else {
    EXPECT_EQ(after.counters.count("test.macro.counter"), 0u);
  }
}

// ------------------------------------------------------------------ stats

TEST(Stats, MedianAndMadOfKnownSeries) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  const std::vector<double> v{1.0, 1.0, 2.0, 2.0, 4.0};
  // raw MAD around median 2 is 1; scaled by 1.4826.
  EXPECT_NEAR(mad_of(v, 2.0), 1.4826, 1e-9);
}

TEST(Stats, OutlierRejectionIsDeterministicAndOrderPreserving) {
  const std::vector<double> v{10.0, 10.2, 9.9, 10.1, 50.0, 10.0, 9.8};
  std::size_t n1 = 0, n2 = 0;
  const auto kept1 = reject_outliers(v, 3.5, &n1);
  const auto kept2 = reject_outliers(v, 3.5, &n2);
  EXPECT_EQ(kept1, kept2);  // same input -> same subset, always
  EXPECT_EQ(n1, 1u);
  EXPECT_EQ(kept1.size(), 6u);
  EXPECT_TRUE(std::find(kept1.begin(), kept1.end(), 50.0) == kept1.end());
  // Zero MAD (majority identical) must reject nothing, even far points.
  std::size_t n3 = 0;
  const std::vector<double> flat{5.0, 5.0, 5.0, 5.0, 99.0};
  EXPECT_EQ(reject_outliers(flat, 3.5, &n3).size(), 5u);
  EXPECT_EQ(n3, 0u);
}

TEST(Stats, ConstantSamplesGiveZeroWidthCi) {
  const std::vector<double> v(12, 3.25);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3.25);
  EXPECT_DOUBLE_EQ(s.ci_lo, 3.25);
  EXPECT_DOUBLE_EQ(s.ci_hi, 3.25);
  EXPECT_DOUBLE_EQ(s.rel_ci_width(), 0.0);
  EXPECT_EQ(s.outliers_dropped, 0u);
}

TEST(Stats, CiShrinksWithMoreSamples) {
  // Deterministic pseudo-noise around 1.0; the bootstrap CI on the
  // median must tighten as the sample count grows.
  auto noisy = [](std::size_t n) {
    std::vector<double> v;
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      v.push_back(1.0 + 0.1 * (static_cast<double>(x % 1000) / 1000.0 -
                               0.5));
    }
    return v;
  };
  const Summary small = summarize(noisy(10));
  const Summary large = summarize(noisy(120));
  EXPECT_GT(small.rel_ci_width(), 0.0);
  EXPECT_LT(large.rel_ci_width(), small.rel_ci_width());
}

TEST(Stats, WarmupDetectionDropsLeadingColdSamples) {
  // 3 cold samples far above a long steady tail.
  std::vector<double> v{9.0, 7.5, 6.0};
  for (int i = 0; i < 20; ++i) {
    v.push_back(1.0 + 0.01 * (i % 3));
  }
  EXPECT_EQ(warmup_cutoff(v), 3u);
  const Summary s = summarize(v);
  EXPECT_EQ(s.warmup_dropped, 3u);
  EXPECT_LT(s.median, 1.1);
  // Short series are never trimmed: too little evidence to judge.
  const std::vector<double> tiny{5.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(warmup_cutoff(tiny), 0u);
  // A steady series keeps everything.
  const std::vector<double> steady(16, 2.0);
  EXPECT_EQ(warmup_cutoff(steady), 0u);
}

TEST(Stats, TCriticalMatchesStandardTables) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 0.01);
  EXPECT_NEAR(t_critical(0.95, 4), 2.776, 0.01);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 0.01);
  EXPECT_NEAR(t_critical(0.95, 1000), 1.962, 0.01);
  EXPECT_NEAR(t_critical(0.99, 10), 3.169, 0.02);
}

TEST(Stats, RunBenchmarkConvergesAtMinRepsForDeterministicFn) {
  std::size_t calls = 0;
  RepetitionPolicy p;
  p.min_reps = 5;
  p.max_reps = 200;
  const Summary s = run_benchmark(
      [&calls]() {
        ++calls;
        return 0.001;
      },
      p);
  // A zero-variance sample function satisfies the CI target immediately
  // after the minimum repetitions — no wasted work.
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(s.reps, 5u);
  EXPECT_DOUBLE_EQ(s.median, 0.001);
  EXPECT_DOUBLE_EQ(s.ci_lo, s.ci_hi);
}

TEST(Stats, RunBenchmarkRespectsMaxReps) {
  std::size_t calls = 0;
  RepetitionPolicy p;
  p.min_reps = 3;
  p.max_reps = 10;
  p.target_rel_ci = 0.0;  // unreachable: only max_reps can stop it
  p.time_budget_s = 1e9;
  std::uint64_t x = 1;
  (void)run_benchmark(
      [&]() {
        ++calls;
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return 1.0 + static_cast<double>(x % 100) / 100.0;
      },
      p);
  EXPECT_EQ(calls, 10u);
}

// ------------------------------------------------------- hardware counters

TEST(HwCountersTest, GracefulWhateverThePlatformAllows) {
  // This test must pass both on a PMU-enabled host and inside a locked
  // down container: either the counters count, or every operation is a
  // clean no-op with a reason attached.
  HwCounters hw;
  hw.start();
  volatile double acc = 0.0;
  for (int i = 0; i < 100000; ++i) {
    acc = acc + static_cast<double>(i) * 1e-9;
  }
  hw.stop();
  const HwCounterValues v = hw.read();
  if (hw.ok()) {
    if (v.valid) {
      EXPECT_GT(v.cycles, 0u);
      EXPECT_NE(v.to_line().find("ipc"), std::string::npos);
    }
  } else {
    EXPECT_FALSE(v.valid);
    EXPECT_FALSE(hw.error().empty());
    EXPECT_NE(v.to_line().find("perf counters unavailable"),
              std::string::npos);
  }
  // available() agrees with what construction experienced.
  EXPECT_EQ(HwCounters::available(), hw.ok());
}

TEST(HwCountersTest, InvalidValuesNeverPublish) {
  MetricsRegistry reg;
  HwCounterValues v;  // valid == false
  v.cycles = 123;
  HwCounters::publish(v, reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("obs.hw.cycles"), 0u);
  v.valid = true;
  v.has_instructions = true;
  v.instructions = 456;
  HwCounters::publish(v, reg);
  const auto snap2 = reg.snapshot();
  EXPECT_EQ(snap2.counters.at("obs.hw.cycles"), 123u);
  EXPECT_EQ(snap2.counters.at("obs.hw.instructions"), 456u);
}

TEST(HwCountersTest, DerivedRatesHandleZeroDenominators) {
  HwCounterValues v;
  EXPECT_DOUBLE_EQ(v.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(v.cache_miss_pct(), 0.0);
  EXPECT_DOUBLE_EQ(v.branch_miss_per_kinstr(), 0.0);
}

// ----------------------------------------------------------------- envinfo

TEST(EnvInfo, CollectNeverThrowsAndPopulatesCoreFields) {
  const EnvInfo env = collect_env_info();
  EXPECT_FALSE(env.cpu_model.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.kernel.empty());
  EXPECT_GE(env.logical_cores, 1);
  std::ostringstream os;
  write_env_json(env, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"cpu_model\""), std::string::npos);
  EXPECT_NE(json.find("\"logical_cores\""), std::string::npos);
}

TEST(EnvInfo, JsonEscapeHandlesEveryClass) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("a\x01" "b"), "a\\u0001b");
}

// --------------------------------------------------------- bench JsonWriter

TEST(BenchJsonWriter, EscapingAndNonFiniteRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(::testing::TempDir()) / "snp_obs_jsonwriter.json";
  {
    bench::JsonWriter w("escape \"me\"", path.string());
    ASSERT_TRUE(w.active());
    w.set_primary("wall_s", /*lower_better=*/true);
    w.header("label", bench::stats_cols("wall_s"), "ratio");
    Summary s;
    s.median = 1.5;
    s.ci_lo = 1.4;
    s.ci_hi = 1.6;
    s.reps = 7;
    w.row(std::string("tab\there \"q\" back\\slash"), s,
          std::numeric_limits<double>::quiet_NaN());
  }  // dtor closes the document
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  // Control characters and quotes must appear escaped, non-finite as
  // null — the document always parses.
  EXPECT_NE(doc.find("\"bench\": \"escape \\\"me\\\"\""),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("tab\\there \\\"q\\\" back\\\\slash"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"ratio\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"primary\": {\"metric\": \"wall_s\", "
                     "\"lower_better\": true}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"wall_s\": 1.5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wall_s_ci_lo\": 1.4"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wall_s_ci_hi\": 1.6"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wall_s_reps\": 7"), std::string::npos) << doc;
  EXPECT_EQ(doc.find('\t'), std::string::npos);  // no raw controls
  fs::remove(path);
}

}  // namespace
}  // namespace snp::obs
