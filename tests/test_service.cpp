// ServiceEngine conformance suite (PR 6): batching must be invisible —
// every coalesced result row bit-identical to a serial per-query
// core::compare — across device presets x ops x batch widths, under
// multi-threaded submission, under fault injection (exactly-once), and
// across cache/epoch and admission-control state changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/snpcmp.hpp"
#include "exec/thread_pool.hpp"
#include "io/datagen.hpp"
#include "obs/obs.hpp"
#include "rt/fault.hpp"
#include "svc/service.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using svc::QueryResult;
using svc::ServiceConfig;
using svc::ServiceEngine;

/// Serial per-query ground truth: one compare() per query row, abort
/// policy, no batching anywhere.
std::vector<std::vector<std::uint32_t>> serial_rows(const std::string& device,
                                                    const BitMatrix& queries,
                                                    const BitMatrix& db,
                                                    Comparison op) {
  Context ctx =
      device == "cpu" ? Context::cpu() : Context::gpu(device);
  std::vector<std::vector<std::uint32_t>> rows;
  rows.reserve(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    ComputeOptions copts;
    copts.recovery.policy = rt::FailPolicy::kAbort;
    copts.lint = false;
    const auto r =
        ctx.compare(queries.row_slice(q, q + 1), db, op, copts);
    const auto span = r.counts.raw();
    rows.emplace_back(span.begin(), span.end());
  }
  return rows;
}

ServiceConfig base_config(const std::string& device, Comparison op,
                          std::size_t width) {
  ServiceConfig cfg;
  cfg.device = device;
  cfg.op = op;
  cfg.max_batch_rows = width;
  cfg.cache_capacity = 0;  // force real computation in conformance sweeps
  cfg.recovery.policy = rt::FailPolicy::kAbort;
  cfg.recovery.backoff_base_s = 0.0;
  cfg.start_paused = true;
  return cfg;
}

TEST(ServiceConformance, BitIdenticalAcrossPresetsOpsAndWidths) {
  const BitMatrix db = io::random_bitmatrix(61, 256, 0.5, 601);
  const BitMatrix queries = io::random_bitmatrix(17, 256, 0.4, 602);
  for (const std::string device : {"gtx980", "titanv", "vega64"}) {
    for (const Comparison op :
         {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
      const auto expected = serial_rows(device, queries, db, op);
      for (const std::size_t width : {1UL, 8UL, 32UL}) {
        ServiceEngine engine(db, base_config(device, op, width));
        std::vector<std::future<QueryResult>> futs;
        for (std::size_t q = 0; q < queries.rows(); ++q) {
          futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
        }
        engine.resume();
        engine.drain();
        for (std::size_t q = 0; q < queries.rows(); ++q) {
          const QueryResult r = futs[q].get();
          ASSERT_EQ(r.row, expected[q])
              << device << " " << to_string(op) << " width=" << width
              << " query=" << q;
          EXPECT_LE(r.batch_rows, width);
          EXPECT_FALSE(r.cache_hit);
        }
        const auto s = engine.stats();
        EXPECT_EQ(s.completed, queries.rows());
        EXPECT_EQ(s.failed, 0U);
        EXPECT_EQ(s.max_batch_rows, std::min(width, queries.rows()));
        // Paused backlog release coalesces FIFO: batch count is exact.
        EXPECT_EQ(s.batches, (queries.rows() + width - 1) / width);
      }
    }
  }
}

TEST(ServiceConformance, MixedWidthMultiThreadedSubmissionIsInvisible) {
  const BitMatrix db = io::random_bitmatrix(53, 192, 0.5, 611);
  const BitMatrix queries = io::random_bitmatrix(24, 192, 0.35, 612);
  const auto expected = serial_rows("titanv", queries, db, Comparison::kXor);

  ServiceConfig cfg = base_config("titanv", Comparison::kXor, 8);
  cfg.start_paused = false;  // live dispatcher: widths emerge from timing
  ServiceEngine engine(db, cfg);

  constexpr std::size_t kClients = 4;
  std::vector<std::future<QueryResult>> futs(queries.rows());
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 jitter(913 + static_cast<unsigned>(c));
      std::uniform_int_distribution<int> delay_us(0, 120);
      for (std::size_t q = c; q < queries.rows(); q += kClients) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay_us(jitter)));
        futs[q] = engine.submit(queries.row_slice(q, q + 1));
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.drain();

  for (std::size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(futs[q].get().row, expected[q]) << "query=" << q;
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.completed, queries.rows());
  EXPECT_GE(s.batches, (queries.rows() + 7) / 8);  // widths never exceed 8
}

TEST(ServiceConformance, PreNegatedAndNotMatchesDirectAndNot) {
  const BitMatrix db = io::random_bitmatrix(47, 160, 0.5, 621);
  const BitMatrix queries = io::random_bitmatrix(9, 160, 0.4, 622);
  const auto expected =
      serial_rows("vega64", queries, db, Comparison::kAndNot);

  ServiceConfig cfg = base_config("vega64", Comparison::kAndNot, 8);
  cfg.pre_negate = true;  // stored ~db + AND, Eq. 3's rewrite
  ServiceEngine engine(db, cfg);
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
  }
  engine.resume();
  engine.drain();
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(futs[q].get().row, expected[q]) << "query=" << q;
  }
}

// ---- seeded multi-client fault-injection soak --------------------------

/// 50+ seeds x {retry, failover, degrade}: concurrent clients with
/// arrival jitter, faults planted at launch and readback, and every
/// request must still resolve exactly once with the bit-identical row.
TEST(ServiceSoak, MultiClientFaultInjectionBitIdenticalAndExactlyOnce) {
  const BitMatrix db = io::random_bitmatrix(43, 192, 0.5, 631);
  const BitMatrix queries = io::random_bitmatrix(12, 192, 0.4, 632);
  const auto expected = serial_rows("titanv", queries, db, Comparison::kXor);

  for (const auto policy :
       {rt::FailPolicy::kRetry, rt::FailPolicy::kFailover,
        rt::FailPolicy::kDegrade}) {
    for (int seed = 0; seed < 50; ++seed) {
      rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
          "launch:p=0.05:seed=" + std::to_string(seed) +
          ",readback:p=0.05:seed=" + std::to_string(seed + 1000)));
      ServiceConfig cfg = base_config("titanv", Comparison::kXor, 8);
      cfg.recovery.policy = policy;
      cfg.start_paused = false;
      ServiceEngine engine(db, cfg);

      constexpr std::size_t kClients = 3;
      std::vector<std::future<QueryResult>> futs(queries.rows());
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          std::mt19937 jitter(static_cast<unsigned>(seed) * 17 +
                              static_cast<unsigned>(c));
          std::uniform_int_distribution<int> delay_us(0, 80);
          for (std::size_t q = c; q < queries.rows(); q += kClients) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay_us(jitter)));
            futs[q] = engine.submit(queries.row_slice(q, q + 1));
          }
        });
      }
      for (auto& t : clients) t.join();
      engine.drain();

      for (std::size_t q = 0; q < queries.rows(); ++q) {
        // get() consumes the future: resolving here proves exactly-once
        // (a double-set would have thrown inside the engine already).
        const QueryResult r = futs[q].get();
        ASSERT_EQ(r.row, expected[q])
            << "policy=" << rt::to_string(policy) << " seed=" << seed
            << " query=" << q;
      }
      const auto s = engine.stats();
      EXPECT_EQ(s.submitted, queries.rows());
      EXPECT_EQ(s.completed, queries.rows());
      EXPECT_EQ(s.failed, 0U)
          << "policy=" << rt::to_string(policy) << " seed=" << seed;
    }
  }
}

// ---- result cache ------------------------------------------------------

TEST(ServiceCache, RepeatQueryHitsAndEpochBumpInvalidates) {
  const BitMatrix db1 = io::random_bitmatrix(37, 128, 0.5, 641);
  const BitMatrix db2 = io::random_bitmatrix(37, 128, 0.5, 642);
  const BitMatrix queries = io::random_bitmatrix(3, 128, 0.4, 643);
  const auto vs_db1 = serial_rows("cpu", queries, db1, Comparison::kXor);
  const auto vs_db2 = serial_rows("cpu", queries, db2, Comparison::kXor);

  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 8);
  cfg.cache_capacity = 16;
  cfg.start_paused = false;
  ServiceEngine engine(db1, cfg);

  auto first = engine.submit(queries.row_slice(0, 1));
  engine.drain();
  const QueryResult r1 = first.get();
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.row, vs_db1[0]);
  EXPECT_EQ(r1.epoch, 1U);

  // Same profile again: served from cache, bit-identical, no new batch.
  const auto batches_before = engine.stats().batches;
  const QueryResult r2 = engine.submit(queries.row_slice(0, 1)).get();
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.row, vs_db1[0]);
  EXPECT_EQ(engine.stats().batches, batches_before);
  EXPECT_EQ(engine.stats().cache_hits, 1U);

  // Epoch bump: the same query must be recomputed against db2 — a stale
  // hit here would be a coherence bug.
  engine.update_database(db2);
  EXPECT_EQ(engine.epoch(), 2U);
  auto third = engine.submit(queries.row_slice(0, 1));
  engine.drain();
  const QueryResult r3 = third.get();
  EXPECT_FALSE(r3.cache_hit);
  EXPECT_EQ(r3.epoch, 2U);
  EXPECT_EQ(r3.row, vs_db2[0]);

  // And the new epoch caches too.
  EXPECT_TRUE(engine.submit(queries.row_slice(0, 1)).get().cache_hit);
}

TEST(ServiceCache, CapacityZeroDisablesCaching) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 651);
  const BitMatrix queries = io::random_bitmatrix(1, 128, 0.4, 652);
  ServiceConfig cfg = base_config("cpu", Comparison::kAnd, 4);
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  const auto a = engine.submit(queries).get();
  const auto b = engine.submit(queries).get();
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(engine.stats().cache_hits, 0U);
}

TEST(ServiceCache, EvictionKeepsCapacityBounded) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 661);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 662);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 1);
  cfg.cache_capacity = 2;  // FIFO: only the 2 newest rows stay cached
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    (void)engine.submit(queries.row_slice(q, q + 1)).get();
  }
  // Oldest profile was evicted -> recomputed; newest still hits.
  EXPECT_FALSE(engine.submit(queries.row_slice(0, 1)).get().cache_hit);
  EXPECT_TRUE(engine.submit(queries.row_slice(5, 6)).get().cache_hit);
}

// ---- admission control -------------------------------------------------

TEST(ServiceAdmission, RejectPolicyShedsWithOverloadCode) {
  const BitMatrix db = io::random_bitmatrix(23, 128, 0.5, 671);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 672);
  const auto expected = serial_rows("cpu", queries, db, Comparison::kXor);

  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 8);
  cfg.max_queue = 4;  // paused engine: the 5th submission finds it full
  ServiceEngine engine(db, cfg);
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t q = 0; q < 4; ++q) {
    futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
  }
  try {
    (void)engine.submit(queries.row_slice(4, 5));
    FAIL() << "5th submission should have been shed";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), rt::ErrorCode::kOverload);
    EXPECT_NE(std::string(e.what()).find("SNPRT-OVERLOAD"),
              std::string::npos);
  }
  engine.resume();
  engine.drain();
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(futs[q].get().row, expected[q]);
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.rejected, 1U);
  EXPECT_EQ(s.completed, 4U);
  EXPECT_EQ(s.peak_queue_depth, 4U);
  // Shed requests are never half-processed: queue drained exactly 4.
  EXPECT_EQ(s.submitted, 5U);
}

TEST(ServiceAdmission, BlockPolicyBackpressuresInsteadOfShedding) {
  const BitMatrix db = io::random_bitmatrix(23, 128, 0.5, 681);
  const BitMatrix queries = io::random_bitmatrix(5, 128, 0.4, 682);
  const auto expected = serial_rows("cpu", queries, db, Comparison::kXor);

  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 2);
  cfg.max_queue = 2;
  cfg.admission = svc::AdmissionPolicy::kBlock;
  cfg.cache_capacity = 0;
  ServiceEngine engine(db, cfg);  // paused: queue fills to max_queue

  std::vector<std::future<QueryResult>> futs(queries.rows());
  std::atomic<std::size_t> accepted{0};
  std::thread client([&] {
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs[q] = engine.submit(queries.row_slice(q, q + 1));
      accepted.fetch_add(1);
    }
  });
  // The client must stall at the bound while the engine is paused.
  while (accepted.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(accepted.load(), 2U);
  engine.resume();  // dispatcher drains; blocked submits proceed
  client.join();
  engine.drain();
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_EQ(futs[q].get().row, expected[q]);
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.rejected, 0U);
  EXPECT_EQ(s.completed, queries.rows());
  EXPECT_LE(s.peak_queue_depth, 2U);
}

// ---- sticky-error regression (satellite: ThreadPool propagation) -------

/// exec-level contract first: a pool error is sticky until clear_error(),
/// and cleared pools run later work normally. This is the primitive the
/// service's per-batch clear depends on.
TEST(ServiceStickyError, ThreadPoolClearErrorUnpoisonsLaterWork) {
  exec::ThreadPool pool(1);
  pool.post([] { throw std::runtime_error("batch 1 exploded"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Sticky: rethrows again until cleared.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.clear_error();
  std::atomic<bool> ran{false};
  pool.post([&] { ran = true; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(pool.failed_count(), 0U);
}

/// Service-level regression: a batch killed by an injected fault under
/// --fail-policy abort scatters its error to exactly its own futures,
/// and the *next* batch — same engine, same pool — succeeds with rows
/// bit-identical to a clean run. Before the per-batch clear_error() this
/// poisoned every subsequent wait_idle().
TEST(ServiceStickyError, FailedBatchDoesNotPoisonSubsequentBatches) {
  const BitMatrix db = io::random_bitmatrix(29, 128, 0.5, 691);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 692);
  const auto expected =
      serial_rows("titanv", queries, db, Comparison::kXor);

  ServiceConfig cfg = base_config("titanv", Comparison::kXor, 4);
  cfg.cache_capacity = 0;
  ServiceEngine engine(db, cfg);  // paused

  std::vector<std::future<QueryResult>> doomed;
  {
    rt::ScopedFaultPlan plan(rt::FaultPlan::parse("launch:after=1"));
    for (std::size_t q = 0; q < 4; ++q) {
      doomed.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    engine.resume();
    engine.drain();
    engine.pause();
  }  // plan disarmed before the second wave

  for (std::size_t q = 0; q < 4; ++q) {
    try {
      (void)doomed[q].get();
      FAIL() << "request " << q << " should carry the batch's rt::Error";
    } catch (const rt::Error& e) {
      EXPECT_EQ(e.code(), rt::ErrorCode::kLaunch);
    }
  }
  EXPECT_EQ(engine.stats().failed, 4U);

  // Second wave on the same engine must be clean and bit-identical.
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t q = 4; q < 6; ++q) {
    futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
  }
  engine.resume();
  engine.drain();
  for (std::size_t q = 4; q < 6; ++q) {
    EXPECT_EQ(futs[q - 4].get().row, expected[q]) << "query=" << q;
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.completed, 2U);
  EXPECT_EQ(s.failed, 4U);
}

// ---- request classes & misc contracts ----------------------------------

TEST(ServiceEngineContract, DifferentRecoveryClassesNeverShareABatch) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 701);
  const BitMatrix queries = io::random_bitmatrix(4, 128, 0.4, 702);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 32);
  cfg.cache_capacity = 0;
  ServiceEngine engine(db, cfg);  // paused: all 4 pending together

  rt::RecoveryOptions degrade = cfg.recovery;
  degrade.policy = rt::FailPolicy::kDegrade;
  std::vector<std::future<QueryResult>> futs;
  futs.push_back(engine.submit(queries.row_slice(0, 1)));
  futs.push_back(engine.submit(queries.row_slice(1, 2)));
  futs.push_back(engine.submit(queries.row_slice(2, 3), degrade));
  futs.push_back(engine.submit(queries.row_slice(3, 4)));
  engine.resume();
  engine.drain();
  // FIFO class splitting: [abort, abort], [degrade], [abort].
  EXPECT_EQ(futs[0].get().batch_rows, 2U);
  EXPECT_EQ(futs[1].get().batch_rows, 2U);
  EXPECT_EQ(futs[2].get().batch_rows, 1U);
  EXPECT_EQ(futs[3].get().batch_rows, 1U);
  EXPECT_EQ(engine.stats().batches, 3U);
}

TEST(ServiceEngineContract, ShapeAndConstructionErrors) {
  const BitMatrix db = io::random_bitmatrix(11, 128, 0.5, 711);
  EXPECT_THROW(ServiceEngine(BitMatrix(), ServiceConfig{}),
               std::invalid_argument);
  {
    ServiceConfig cfg = base_config("cpu", Comparison::kXor, 0);
    EXPECT_THROW(ServiceEngine(db, cfg), std::invalid_argument);
  }
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  const BitMatrix wrong_cols = io::random_bitmatrix(1, 64, 0.5, 712);
  EXPECT_THROW((void)engine.submit(wrong_cols), std::invalid_argument);
  const BitMatrix two_rows = io::random_bitmatrix(2, 128, 0.5, 713);
  EXPECT_THROW((void)engine.submit(two_rows), std::invalid_argument);
  EXPECT_THROW(engine.update_database(wrong_cols), std::invalid_argument);
  EXPECT_THROW(engine.update_database(BitMatrix()), std::invalid_argument);
}

TEST(ServiceEngineContract, DestructionResolvesEveryAcceptedRequest) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 721);
  const BitMatrix queries = io::random_bitmatrix(5, 128, 0.4, 722);
  std::vector<std::future<QueryResult>> futs;
  {
    ServiceConfig cfg = base_config("cpu", Comparison::kXor, 2);
    cfg.cache_capacity = 0;
    ServiceEngine engine(db, cfg);  // paused the whole time
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
  }  // destructor must drain, not drop
  const auto expected = serial_rows("cpu", queries, db, Comparison::kXor);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_EQ(futs[q].get().row, expected[q]) << "query=" << q;
  }
}

TEST(ServiceEngineContract, StatsLatencyPercentilesArePopulated) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 731);
  const BitMatrix queries = io::random_bitmatrix(8, 128, 0.4, 732);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    (void)engine.submit(queries.row_slice(q, q + 1)).get();
  }
  const auto s = engine.stats();
  EXPECT_GT(s.p50_latency_s, 0.0);
  EXPECT_GE(s.p99_latency_s, s.p50_latency_s);
  EXPECT_GE(s.max_latency_s, s.p99_latency_s);
  EXPECT_GT(s.mean_batch_rows, 0.0);
}

TEST(ServiceSlo, TinyObjectiveCountsEveryCompletionAsBreach) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "SLO monitor compiles away under SNPCMP_OBS=OFF";
  }
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 741);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 742);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  cfg.slo.objective_s = 1e-12;  // everything breaches
  cfg.slo.error_budget = 0.01;
  cfg.slo.breach_burn_rate = 10.0;
  ServiceEngine engine(db, cfg);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    (void)engine.submit(queries.row_slice(q, q + 1)).get();
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.slo_breaches, queries.rows());
  EXPECT_GE(s.slo_trips, 1u);  // burn 100 >> 10 trips on first record
  EXPECT_GE(s.slo_burn_fast, 10.0);
  EXPECT_GE(s.slo_burn_slow, 10.0);

  const svc::SloReport report = engine.slo();
  EXPECT_DOUBLE_EQ(report.objective_s, 1e-12);
  EXPECT_EQ(report.state.total, queries.rows());
  EXPECT_EQ(report.state.breaches, queries.rows());
  EXPECT_GT(report.p50_le_s, 0.0);
  EXPECT_GE(report.p99_le_s, report.p50_le_s);
  ASSERT_TRUE(report.worst.has_value());
  EXPECT_NE(report.worst->trace_id, 0u);
  std::uint64_t total = 0;
  for (const std::uint64_t c : report.bucket_counts) {
    total += c;
  }
  EXPECT_EQ(total, queries.rows());
}

TEST(ServiceSlo, NoObjectiveStillFeedsApproxPercentiles) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "SLO monitor compiles away under SNPCMP_OBS=OFF";
  }
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 743);
  const BitMatrix query = io::random_bitmatrix(1, 128, 0.4, 744);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  (void)engine.submit(query).get();
  const auto s = engine.stats();
  EXPECT_EQ(s.slo_breaches, 0u);
  EXPECT_EQ(s.slo_trips, 0u);
  const svc::SloReport report = engine.slo();
  EXPECT_DOUBLE_EQ(report.objective_s, 0.0);
  EXPECT_EQ(report.state.total, 1u);
  EXPECT_GT(report.p50_le_s, 0.0);  // exemplar histogram fed regardless
}

// ---- deadlines, retry budgets, brown-out (PR 10) -----------------------

TEST(ServiceDeadline, NegativeDeadlineShedsAtAdmission) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 751);
  const BitMatrix query = io::random_bitmatrix(1, 128, 0.4, 752);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  ServiceEngine engine(db, cfg);  // paused
  svc::SubmitOptions options;
  options.deadline_ms = -1.0;
  std::uint64_t trace = 0;
  options.trace_out = &trace;
  try {
    (void)engine.submit(query, options);
    FAIL() << "expired-at-submission deadline must shed";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), rt::ErrorCode::kDeadline);
    EXPECT_NE(std::string(e.what()).find("SNPRT-DEADLINE"),
              std::string::npos);
  }
  EXPECT_NE(trace, 0u);  // trace id allocated before the throw
  const auto s = engine.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.deadline_shed, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST(ServiceDeadline, ExpiredRequestsAreShedAtFormationNeverLaunched) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 753);
  const BitMatrix queries = io::random_bitmatrix(4, 128, 0.4, 754);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 8);
  ServiceEngine engine(db, cfg);  // paused: deadlines expire in the queue

  svc::SubmitOptions options;
  options.deadline_ms = 1e-6;  // expires long before resume()
  std::vector<std::future<QueryResult>> futs;
  std::vector<std::uint64_t> traces(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    options.trace_out = &traces[q];
    futs.push_back(engine.submit(queries.row_slice(q, q + 1), options));
  }
  engine.resume();
  engine.drain();

  for (std::size_t q = 0; q < queries.rows(); ++q) {
    try {
      (void)futs[q].get();
      FAIL() << "request " << q << " should have been shed";
    } catch (const rt::Error& e) {
      EXPECT_EQ(e.code(), rt::ErrorCode::kDeadline);
    }
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.deadline_shed, queries.rows());
  EXPECT_EQ(s.failed, queries.rows());
  // The acceptance bar: an expired request never reaches a launch. No
  // batch may form from an all-expired backlog...
  EXPECT_EQ(s.batches, 0u);
  if (obs::kEnabled) {
    // ...and the flight recorder agrees: every shed trace id has a
    // deadline-shed record and appears in no batch-formation record.
    const auto records = obs::FlightRecorder::global().snapshot();
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      bool shed_seen = false;
      for (const auto& r : records) {
        if (r.trace_id != traces[q]) continue;
        EXPECT_NE(r.kind, obs::FlightKind::kBatch)
            << "shed request " << q << " reached batch formation";
        EXPECT_NE(r.kind, obs::FlightKind::kChunkExec)
            << "shed request " << q << " reached a kernel launch";
        shed_seen |= r.kind == obs::FlightKind::kDeadlineShed;
      }
      EXPECT_TRUE(shed_seen) << "no deadline-shed flight record for " << q;
    }
  }
}

TEST(ServiceDeadline, GenerousDeadlinesAreMetAndBitIdentical) {
  const BitMatrix db = io::random_bitmatrix(23, 128, 0.5, 755);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 756);
  const auto expected = serial_rows("cpu", queries, db, Comparison::kXor);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  ServiceEngine engine(db, cfg);
  svc::SubmitOptions options;
  options.deadline_ms = 1e7;  // hours: always met
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const QueryResult r =
        engine.submit(queries.row_slice(q, q + 1), options).get();
    EXPECT_EQ(r.row, expected[q]) << "query=" << q;
    EXPECT_FALSE(r.deadline_expired);
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.deadline_met, queries.rows());
  EXPECT_EQ(s.deadline_expired, 0u);
  EXPECT_EQ(s.deadline_shed, 0u);
}

TEST(ServiceDeadline, RequestClassesNeverShareABatch) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 757);
  const BitMatrix queries = io::random_bitmatrix(4, 128, 0.4, 758);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 32);
  cfg.cache_capacity = 0;
  ServiceEngine engine(db, cfg);  // paused: all 4 pending together

  auto submit_class = [&](std::size_t q, int cls) {
    svc::SubmitOptions options;
    options.request_class = cls;
    return engine.submit(queries.row_slice(q, q + 1), options);
  };
  std::vector<std::future<QueryResult>> futs;
  futs.push_back(submit_class(0, 1));
  futs.push_back(submit_class(1, 1));
  futs.push_back(submit_class(2, 2));  // priority boundary splits here
  futs.push_back(submit_class(3, 1));
  engine.resume();
  engine.drain();
  // FIFO class splitting: [1, 1], [2], [1].
  EXPECT_EQ(futs[0].get().batch_rows, 2u);
  EXPECT_EQ(futs[1].get().batch_rows, 2u);
  EXPECT_EQ(futs[2].get().batch_rows, 1u);
  EXPECT_EQ(futs[3].get().batch_rows, 1u);
  EXPECT_EQ(engine.stats().batches, 3u);
}

TEST(ServiceDeadline, BlockAdmissionWaitIsDeadlineBounded) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 759);
  const BitMatrix queries = io::random_bitmatrix(3, 128, 0.4, 760);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 2);
  cfg.max_queue = 2;
  cfg.admission = svc::AdmissionPolicy::kBlock;
  cfg.cache_capacity = 0;
  ServiceEngine engine(db, cfg);  // paused: the queue never drains

  std::vector<std::future<QueryResult>> futs;
  for (std::size_t q = 0; q < 2; ++q) {
    futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
  }
  // The third submission blocks on the full queue; its deadline must
  // bound the wait and surface as a kDeadline shed, not a hang.
  svc::SubmitOptions options;
  options.deadline_ms = 5.0;
  try {
    (void)engine.submit(queries.row_slice(2, 3), options);
    FAIL() << "blocked submission should have timed out";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), rt::ErrorCode::kDeadline);
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.deadline_shed, 1u);
  engine.resume();
  engine.drain();
  for (auto& f : futs) (void)f.get();
}

TEST(ServiceDeadline, BlockedSubmittersNeverDeadlockTheDestructor) {
  // Regression (satellite c): a client parked in a kBlock admission wait
  // while the engine is torn down must be released with kCancelled — the
  // destructor used to be able to join the dispatcher while a submitter
  // still waited on queue space, deadlocking both. Run under TSan.
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 761);
  const BitMatrix queries = io::random_bitmatrix(4, 128, 0.4, 762);
  for (int round = 0; round < 16; ++round) {
    ServiceConfig cfg = base_config("cpu", Comparison::kXor, 2);
    cfg.max_queue = 1;
    cfg.admission = svc::AdmissionPolicy::kBlock;
    cfg.cache_capacity = 0;
    std::vector<std::future<QueryResult>> futs(queries.rows());
    std::atomic<int> outcome{0};  // +accepted later, -1 cancelled
    std::thread client;
    {
      ServiceEngine engine(db, cfg);  // paused: queue capacity 1
      futs[0] = engine.submit(queries.row_slice(0, 1));
      std::atomic<bool> entered{false};
      client = std::thread([&] {
        try {
          entered = true;
          futs[1] = engine.submit(queries.row_slice(1, 2));
          outcome = 1;
        } catch (const rt::Error& e) {
          EXPECT_EQ(e.code(), rt::ErrorCode::kCancelled);
          outcome = -1;
        }
      });
      while (!entered.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    }  // destructor races the blocked submit() — must never deadlock
    client.join();
    ASSERT_NE(outcome.load(), 0);
    (void)futs[0].get();  // accepted before teardown: always resolved
    if (outcome.load() == 1) (void)futs[1].get();
  }
}

TEST(ServiceRobustness, PerClassRetryBudgetFastFailsWhenDry) {
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 763);
  const BitMatrix queries = io::random_bitmatrix(2, 128, 0.4, 764);
  rt::ScopedFaultPlan plan(rt::FaultPlan::parse("launch:p=1:seed=1"));
  ServiceConfig cfg = base_config("titanv", Comparison::kXor, 1);
  cfg.recovery.policy = rt::FailPolicy::kRetry;
  cfg.recovery.max_attempts = 5;
  cfg.retry_budget = 1.0;        // one retry token for the whole class
  cfg.retry_budget_refill = 0.0; // and no refill: the second op is dry
  ServiceEngine engine(db, cfg);
  auto f0 = engine.submit(queries.row_slice(0, 1));
  auto f1 = engine.submit(queries.row_slice(1, 2));
  engine.resume();
  engine.drain();
  for (auto* f : {&f0, &f1}) {
    try {
      (void)f->get();
      FAIL() << "every launch fails; the request cannot succeed";
    } catch (const rt::Error& e) {
      EXPECT_EQ(e.code(), rt::ErrorCode::kExhausted);
    }
  }
  // The class bucket held one token: exactly one retry was bought across
  // both requests (5 launch samples, not 10 — fast-fail, not burn-down).
  EXPECT_EQ(engine.stats().failed, 2u);
}

TEST(ServiceRobustness, BrownoutShedsLowestClassFirstAndReports) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "brown-out rides the SLO monitor (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 765);
  const BitMatrix queries = io::random_bitmatrix(4, 128, 0.4, 766);
  ServiceConfig cfg = base_config("cpu", Comparison::kXor, 4);
  cfg.start_paused = false;
  cfg.cache_capacity = 0;
  cfg.slo.objective_s = 1e-12;  // every completion breaches: trips fast
  cfg.brownout_class_max = 1;   // shed the default tier while browned out
  ServiceEngine engine(db, cfg);

  // First completion trips the burn-rate monitor and latches brown-out.
  svc::SubmitOptions express;
  express.request_class = 2;
  (void)engine.submit(queries.row_slice(0, 1), express).get();
  ASSERT_TRUE(engine.stats().brownout_active);
  EXPECT_GE(engine.stats().brownout_entries, 1u);

  // Browned out: class 1 sheds with kOverload, class 2 still completes.
  try {
    (void)engine.submit(queries.row_slice(1, 2));
    FAIL() << "class-1 request must shed during brown-out";
  } catch (const rt::Error& e) {
    EXPECT_EQ(e.code(), rt::ErrorCode::kOverload);
    EXPECT_NE(std::string(e.what()).find("brown-out"), std::string::npos);
  }
  const QueryResult r = engine.submit(queries.row_slice(2, 3), express).get();
  EXPECT_FALSE(r.row.empty());
  const auto s = engine.stats();
  EXPECT_EQ(s.brownout_shed, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
  // The burn rate stays pinned above the trip threshold (everything
  // breaches a 1 ps objective), so the brown-out must still be latched.
  EXPECT_TRUE(s.brownout_active);
}

/// 100-seed acceptance soak: with faults injected at the timeout site
/// (fired from deadline checkpoints inside the compare pipeline) and at
/// launch, the per-request outcome sequence — rows for successes, stable
/// SNPRT codes for failures — must be bit-identical across two runs of
/// every seed. compute_threads=0 keeps every checkpoint on the
/// dispatcher thread, so injector ordinals are a pure function of the
/// seed (probes and refills are ordinal-driven, never wall-clock).
TEST(ServiceSoak, DeadlineFaultSoakIsBitIdenticalAcrossSeeds) {
  const BitMatrix db = io::random_bitmatrix(23, 192, 0.5, 771);
  const BitMatrix queries = io::random_bitmatrix(8, 192, 0.4, 772);

  using Outcome = std::pair<int, std::vector<std::uint32_t>>;
  const auto run = [&](int seed) {
    rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
        "timeout:p=0.05:seed=" + std::to_string(seed) +
        ",launch:p=0.05:seed=" + std::to_string(seed + 500)));
    ServiceConfig cfg = base_config("titanv", Comparison::kXor, 4);
    cfg.recovery.policy = rt::FailPolicy::kRetry;
    cfg.recovery.backoff_base_s = 0.0;
    ServiceEngine engine(db, cfg);  // paused: one deterministic backlog
    svc::SubmitOptions options;
    options.deadline_ms = 1e7;  // real expiry never fires; injection can
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1), options));
    }
    engine.resume();
    engine.drain();
    std::vector<Outcome> outcomes;
    for (auto& f : futs) {
      try {
        outcomes.emplace_back(0, f.get().row);
      } catch (const rt::Error& e) {
        outcomes.emplace_back(static_cast<int>(e.code()),
                              std::vector<std::uint32_t>{});
      }
    }
    return outcomes;
  };

  for (int seed = 0; seed < 100; ++seed) {
    const auto first = run(seed);
    const auto second = run(seed);
    ASSERT_EQ(first, second) << "seed " << seed << " diverged";
  }
}

TEST(ServiceEngineContract, AdmissionPolicyParsing) {
  EXPECT_EQ(svc::parse_admission_policy("reject"),
            svc::AdmissionPolicy::kReject);
  EXPECT_EQ(svc::parse_admission_policy("block"),
            svc::AdmissionPolicy::kBlock);
  EXPECT_FALSE(svc::parse_admission_policy("drop").has_value());
  EXPECT_EQ(svc::to_string(svc::AdmissionPolicy::kReject), "reject");
  EXPECT_EQ(svc::to_string(svc::AdmissionPolicy::kBlock), "block");
}

}  // namespace
}  // namespace snp
