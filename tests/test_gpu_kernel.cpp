// The parameterized GPU kernel: functional correctness of the tiled path
// against the reference, config validation, Eq. 3 lowering, timing hookup.
#include "kern/gpu_kernel.hpp"

#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "io/datagen.hpp"

namespace snp::kern {
namespace {

using bits::Comparison;

model::KernelConfig small_cfg(const model::GpuSpec& d,
                              model::WorkloadKind kind) {
  return model::paper_preset(d, kind);
}

TEST(GpuKernel, RejectsInvalidConfig) {
  auto cfg = model::paper_preset(model::gtx980(), model::WorkloadKind::kLd);
  cfg.k_c = 100000;
  EXPECT_THROW(GpuSnpKernel(model::gtx980(), cfg, Comparison::kAnd),
               std::invalid_argument);
}

TEST(GpuKernel, RejectsPreNegationForNonAndNot) {
  auto cfg = model::paper_preset(model::vega64(), model::WorkloadKind::kLd);
  cfg.pre_negated = true;
  EXPECT_THROW(GpuSnpKernel(model::vega64(), cfg, Comparison::kAnd),
               std::invalid_argument);
}

TEST(GpuKernel, RejectsShapeMismatch) {
  const GpuSnpKernel k(model::gtx980(),
                       small_cfg(model::gtx980(), model::WorkloadKind::kLd),
                       Comparison::kAnd);
  const auto a = io::random_bitmatrix(4, 64, 0.5, 1);
  const auto b = io::random_bitmatrix(4, 128, 0.5, 2);
  bits::CountMatrix c(4, 4);
  EXPECT_THROW(k.execute(a, b, c), std::invalid_argument);
  const auto b2 = io::random_bitmatrix(4, 64, 0.5, 2);
  bits::CountMatrix wrong(3, 4);
  EXPECT_THROW(k.execute(a, b2, wrong), std::invalid_argument);
}

TEST(GpuKernel, LoweredOp) {
  const auto d = model::vega64();
  auto cfg = model::paper_preset(d, model::WorkloadKind::kFastId);
  GpuSnpKernel fused(d, cfg, Comparison::kAndNot);
  EXPECT_EQ(fused.lowered_op(), Comparison::kAndNot);
  cfg.pre_negated = true;
  GpuSnpKernel pre(d, cfg, Comparison::kAndNot);
  EXPECT_EQ(pre.lowered_op(), Comparison::kAnd);
  EXPECT_EQ(pre.max_panel_words(), 512u);
}

struct KernelCase {
  std::size_t m, n, bits;
};

class GpuKernelVsReference
    : public ::testing::TestWithParam<
          std::tuple<KernelCase, Comparison, int>> {};

TEST_P(GpuKernelVsReference, Agree) {
  const auto& [c, op, dev_idx] = GetParam();
  const auto devs = model::all_gpus();
  const auto& dev = devs[static_cast<std::size_t>(dev_idx)];
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const GpuSnpKernel kernel(dev, cfg, op);
  const auto a = io::random_bitmatrix(c.m, c.bits, 0.35, 201);
  const auto b = io::random_bitmatrix(c.n, c.bits, 0.65, 202);
  bits::CountMatrix out(c.m, c.n);
  kernel.execute(a, b, out);
  EXPECT_TRUE(out == bits::compare_reference(a, b, op));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GpuKernelVsReference,
    ::testing::Combine(
        ::testing::Values(KernelCase{1, 1, 32},      // single word
                          KernelCase{33, 17, 96},    // m_c fringe
                          KernelCase{64, 40, 1024},  // two row tiles
                          KernelCase{7, 390, 64},    // n_r fringe (GTX 980)
                          KernelCase{40, 50, 512}),
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot),
        ::testing::Values(0, 1, 2)));

TEST(GpuKernel, MultiPanelDeepK) {
  // K deeper than k_c exercises the multi-panel shared-memory path:
  // 383 words = 12,256 bits on NVIDIA, so go beyond it.
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const GpuSnpKernel kernel(dev, cfg, Comparison::kAnd);
  const auto a = io::random_bitmatrix(5, 13000, 0.5, 203);
  const auto b = io::random_bitmatrix(6, 13000, 0.5, 204);
  bits::CountMatrix out(5, 6);
  kernel.execute(a, b, out);
  EXPECT_TRUE(out == bits::compare_reference(a, b, Comparison::kAnd));
}

TEST(GpuKernel, AccumulateMode) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const GpuSnpKernel kernel(dev, cfg, Comparison::kXor);
  const auto a = io::random_bitmatrix(3, 100, 0.5, 205);
  const auto b = io::random_bitmatrix(4, 100, 0.5, 206);
  bits::CountMatrix out(3, 4);
  kernel.execute(a, b, out);
  const auto once = out;
  kernel.execute(a, b, out, /*accumulate=*/true);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(out.at(i, j), 2 * once.at(i, j));
    }
  }
  kernel.execute(a, b, out);  // overwrite resets
  EXPECT_TRUE(out == once);
}

TEST(GpuKernel, PreNegatedMatchesFused) {
  // The Eq. 3 equivalence end to end: AND against a pre-negated database
  // equals fused AND-NOT against the original.
  const auto dev = model::vega64();
  auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  const auto r = io::random_bitmatrix(10, 700, 0.3, 207);
  const auto m = io::random_bitmatrix(8, 700, 0.5, 208);

  const GpuSnpKernel fused(dev, cfg, Comparison::kAndNot);
  bits::CountMatrix out_fused(10, 8);
  fused.execute(r, m, out_fused);

  cfg.pre_negated = true;
  const GpuSnpKernel pre(dev, cfg, Comparison::kAndNot);
  bits::CountMatrix out_pre(10, 8);
  pre.execute(r, m.negated(), out_pre);

  EXPECT_TRUE(out_fused == out_pre);
}

TEST(GpuKernel, TimingMatchesEstimator) {
  const auto dev = model::titan_v();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const GpuSnpKernel kernel(dev, cfg, Comparison::kAnd);
  const sim::KernelShape shape{1024, 1024, 128};
  const auto t1 = kernel.timing(shape);
  const auto t2 = sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape);
  EXPECT_DOUBLE_EQ(t1.seconds, t2.seconds);
  EXPECT_DOUBLE_EQ(t1.gops, t2.gops);
}

TEST(GpuKernel, FastIdPresetHandlesQueryShapes) {
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
  const GpuSnpKernel kernel(dev, cfg, Comparison::kXor);
  const auto q = io::random_bitmatrix(32, 256, 0.3, 209);
  const auto db = io::random_bitmatrix(1000, 256, 0.3, 210);
  bits::CountMatrix out(32, 1000);
  kernel.execute(q, db, out);
  EXPECT_TRUE(out == bits::compare_reference(q, db, Comparison::kXor));
}

}  // namespace
}  // namespace snp::kern
