// Flight-recorder conformance: ring semantics (wraparound, drop
// accounting), dump schema, code naming, and the concurrency soak the
// TSan stage of tools/check.sh runs — concurrent writers with a dumper
// snapshotting mid-write must never surface a torn record.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace snp::obs {
namespace {

namespace fs = std::filesystem;

std::string tmp(const std::string& name) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("snpcmp_flight_") +
                        info->test_suite_name() + "_" + info->name());
  fs::create_directories(dir);
  return (dir / name).string();
}

TEST(Flight, KindNamesAreStable) {
  EXPECT_STREQ(to_string(FlightKind::kEnqueue), "enqueue");
  EXPECT_STREQ(to_string(FlightKind::kCacheHit), "cache-hit");
  EXPECT_STREQ(to_string(FlightKind::kShed), "shed");
  EXPECT_STREQ(to_string(FlightKind::kBatch), "batch");
  EXPECT_STREQ(to_string(FlightKind::kChunkPack), "chunk-pack");
  EXPECT_STREQ(to_string(FlightKind::kChunkExec), "chunk-exec");
  EXPECT_STREQ(to_string(FlightKind::kChunkDrain), "chunk-drain");
  EXPECT_STREQ(to_string(FlightKind::kFault), "fault");
  EXPECT_STREQ(to_string(FlightKind::kRetry), "retry");
  EXPECT_STREQ(to_string(FlightKind::kResolve), "resolve");
  EXPECT_STREQ(to_string(FlightKind::kEpoch), "epoch");
  EXPECT_STREQ(to_string(FlightKind::kSloBreach), "slo-breach");
}

TEST(Flight, RecordRoundTripsThroughSnapshot) {
  FlightRecorder rec(64);
  rec.record(FlightKind::kEnqueue, 42, 0, 3, 7);
  rec.record(FlightKind::kFault, 42, 9, -1, 2);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Merged snapshot is timestamp-sorted; both came from this thread.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_EQ(events[0].kind, FlightKind::kEnqueue);
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_EQ(events[0].a, 3);
  EXPECT_EQ(events[0].b, 7);
  EXPECT_EQ(events[1].kind, FlightKind::kFault);
  EXPECT_EQ(events[1].code, 9u);
  EXPECT_EQ(events[1].a, -1);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Flight, CapacityRoundsUpToPowerOfTwo) {
  const FlightRecorder round_up(9);
  EXPECT_EQ(round_up.capacity(), 16u);
  const FlightRecorder clamp(2);  // 16 is the floor
  EXPECT_EQ(clamp.capacity(), 16u);
  const FlightRecorder exact(64);
  EXPECT_EQ(exact.capacity(), 64u);
}

TEST(Flight, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder rec(16);
  for (std::int64_t i = 0; i < 40; ++i) {
    rec.record(FlightKind::kEnqueue, 1, 0, i, 0);
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(rec.dropped(), 24u);
  // The ring holds exactly the 16 most recent appends, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(24 + i));
  }
}

TEST(Flight, DisabledRecorderDropsSilently) {
  FlightRecorder rec(8);
  rec.set_enabled(false);
  rec.record(FlightKind::kEnqueue, 1, 0, 0, 0);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.set_enabled(true);
  rec.record(FlightKind::kEnqueue, 1, 0, 0, 0);
  EXPECT_EQ(rec.snapshot().size(), 1u);
}

TEST(Flight, ClearDropsEventsKeepsRings) {
  FlightRecorder rec(8);
  rec.record(FlightKind::kBatch, 1, 0, 1, 4);
  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(FlightKind::kBatch, 2, 0, 2, 4);
  EXPECT_EQ(rec.snapshot().size(), 1u);
}

TEST(Flight, DumpJsonSchemaAndCodeNaming) {
  FlightRecorder rec(16);
  rec.set_code_namer(+[](std::uint32_t c) {
    return c == 7 ? std::string_view("SNPRT-TEST") : std::string_view();
  });
  rec.record(FlightKind::kFault, 5, 7, 2, 1);
  rec.record(FlightKind::kRetry, 5, 250, 2, 1);  // unnamed -> number
  std::ostringstream os;
  rec.dump_json(os, "unit \"test\"");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"flight\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\": \"unit \\\"test\\\"\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ring_capacity\": 16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"fault\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\": \"SNPRT-TEST\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"code\": 250"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace\": 5"), std::string::npos) << json;
}

TEST(Flight, AutoDumpUsesConfiguredPath) {
  FlightRecorder rec(16);
  rec.record(FlightKind::kSloBreach, 3, 0, 1, 10);
  // No destination configured (and no env contract in-process): skip.
  EXPECT_EQ(rec.auto_dump("slo-breach"), "");
  const std::string path = tmp("dump.json");
  rec.set_dump_path(path);
  EXPECT_EQ(rec.auto_dump("slo-breach"), path);
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("\"reason\": \"slo-breach\""),
            std::string::npos);
  EXPECT_NE(buf.str().find("\"kind\": \"slo-breach\""), std::string::npos);
}

/// The check.sh TSan soak: several writers wrapping their rings many
/// times over while a dumper snapshots continuously. Payload words are
/// derived from one counter, so any torn (cross-generation) read shows
/// up as an inconsistent record, and TSan sees every access.
TEST(Flight, ConcurrentWritersAndDumperYieldOnlyWholeRecords) {
  FlightRecorder rec(128);
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightRecord& r : rec.snapshot()) {
        const auto tid = static_cast<std::uint64_t>(r.b);
        const auto i = static_cast<std::uint64_t>(r.a);
        // trace encodes (writer, iteration); a/b must agree with it and
        // the code channel carries iteration mod 251.
        if (r.trace_id != (tid << 32 | i) || tid >= kWriters ||
            i >= static_cast<std::uint64_t>(kPerWriter) ||
            r.code != i % 251 || r.kind != FlightKind::kChunkExec) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::uint64_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&rec, t] {
      for (std::int64_t i = 0; i < kPerWriter; ++i) {
        rec.record(FlightKind::kChunkExec,
                   t << 32 | static_cast<std::uint64_t>(i),
                   static_cast<std::uint32_t>(i % 251), i,
                   static_cast<std::int64_t>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();

  EXPECT_EQ(torn.load(), 0u);
  // Everything that survived is coherent, and the drop accounting covers
  // exactly what wrapped away.
  const auto final_events = rec.snapshot();
  EXPECT_EQ(final_events.size(), 4u * 128u);
  EXPECT_EQ(rec.dropped(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter -
                final_events.size());
}

// ---------------------------------------------------------------------
// SNPCMP_FLIGHT_RING parsing (PR-8 satellite). parse_flight_ring is the
// single source of truth for what the env var accepts; the table below
// is the contract docs/observability.md documents.

TEST(FlightEnv, ParseAcceptsBase10AndRoundsUpToPowerOfTwo) {
  struct Case {
    const char* text;
    std::size_t want;
  };
  const Case cases[] = {
      {"16", 16},          // lower bound, already a power of two
      {"17", 32},          // rounds up, never down
      {"100", 128},
      {"4096", 4096},
      {"  4096", 4096},    // leading whitespace tolerated
      {"4096  ", 4096},    // trailing whitespace tolerated
      {"\t 65535 \n", 65536},
      {"16777216", 1ULL << 24U},  // kMaxCapacity exactly
  };
  for (const auto& c : cases) {
    const auto got = parse_flight_ring(c.text);
    ASSERT_TRUE(got.has_value()) << "rejected: \"" << c.text << "\"";
    EXPECT_EQ(*got, c.want) << "input: \"" << c.text << "\"";
  }
}

TEST(FlightEnv, ParseRejectsEverythingElseWithoutThrowing) {
  const char* cases[] = {
      "",         // unset-equivalent
      "   ",      // blank
      "abc",      // non-digit
      "4096x",    // trailing garbage
      "1e4",      // no scientific notation
      "0x1000",   // no hex
      "+4096",    // no signs, even benign ones
      "-4096",
      "40 96",    // interior whitespace is garbage
      "15",       // below the 16-record floor
      "0",
      "16777217",                // above kMaxCapacity
      "99999999999999999999999"  // overflows uint64 parsing
  };
  for (const auto* c : cases) {
    EXPECT_FALSE(parse_flight_ring(c).has_value())
        << "accepted: \"" << c << "\"";
  }
}

TEST(FlightEnv, ParseBoundsMatchRecorderConstants) {
  // The accepted range is tied to the recorder's own limits so the two
  // can't drift apart silently.
  EXPECT_EQ(parse_flight_ring("16777216"), FlightRecorder::kMaxCapacity);
  EXPECT_FALSE(parse_flight_ring(
                   std::to_string(FlightRecorder::kMaxCapacity + 1))
                   .has_value());
}

}  // namespace
}  // namespace snp::obs
