// Per-request cost ledger conformance (PR 8): the exactness contract —
// split_exact shares telescope bit-identically to the batch totals on
// every integer axis, for any weights — plus the service-level
// attribution sweep (device presets x ops x batch widths), the fault
// soak (recovery surcharges attributed without breaking the identity),
// the deterministic --cost-out JSON, an in-process Little's-law
// agreement check, and the offline pipeline analyzer behind
// `snpcmp report`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <random>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "io/datagen.hpp"
#include "obs/cost.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "rt/fault.hpp"
#include "svc/service.hpp"

namespace snp {
namespace {

using bits::BitMatrix;
using bits::Comparison;
using obs::BatchCostTotals;
using obs::CostSnapshot;
using obs::RequestCost;
using svc::QueryResult;
using svc::ServiceConfig;
using svc::ServiceEngine;
using u128 = unsigned __int128;

// ---- split_exact: the telescoping identity -----------------------------

TEST(SplitExact, EmptyWeightsReturnEmpty) {
  EXPECT_TRUE(obs::split_exact(42, {}).empty());
}

TEST(SplitExact, ZeroTotalGivesAllZeroShares) {
  const std::vector<std::uint64_t> weights{3, 0, 7};
  const auto shares = obs::split_exact(0, weights);
  EXPECT_EQ(shares, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(SplitExact, AllZeroWeightsWithPositiveTotalThrows) {
  const std::vector<std::uint64_t> weights{0, 0, 0};
  EXPECT_THROW((void)obs::split_exact(1, weights), std::invalid_argument);
  // ... but a zero total over zero weights is a well-defined no-op.
  EXPECT_EQ(obs::split_exact(0, weights),
            (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(SplitExact, ZeroWeightMembersReceiveNothing) {
  const std::vector<std::uint64_t> weights{0, 3, 0, 5};
  const auto shares = obs::split_exact(17, weights);
  EXPECT_EQ(shares[0], 0U);
  EXPECT_EQ(shares[2], 0U);
  EXPECT_EQ(shares[0] + shares[1] + shares[2] + shares[3], 17U);
}

/// 500 random (total, weights) cases: shares must sum to the total
/// bit-identically AND each share must be within one unit of the
/// real-valued proportional split — |share*W - total*w| < W.
TEST(SplitExact, SharesTelescopeToTotalAndStayProportional) {
  std::mt19937_64 rng(8801);
  std::uniform_int_distribution<std::uint64_t> total_dist(
      0, 1'000'000'000'000'000'000ULL);
  std::uniform_int_distribution<std::size_t> n_dist(1, 33);
  std::uniform_int_distribution<std::uint64_t> w_dist(0, 1'000'000);
  for (int rep = 0; rep < 500; ++rep) {
    const std::size_t n = n_dist(rng);
    std::vector<std::uint64_t> weights(n);
    for (auto& w : weights) {
      w = rng() % 4 == 0 ? 0 : w_dist(rng);  // sprinkle zero weights
    }
    weights[rng() % n] += 1;  // never all-zero
    const std::uint64_t total = total_dist(rng);

    const auto shares = obs::split_exact(total, weights);
    ASSERT_EQ(shares.size(), n);
    u128 sum = 0;
    u128 weight_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += shares[i];
      weight_sum += weights[i];
    }
    ASSERT_EQ(static_cast<std::uint64_t>(sum), total) << "rep=" << rep;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 scaled = static_cast<u128>(shares[i]) * weight_sum;
      const u128 exact = static_cast<u128>(total) * weights[i];
      const u128 diff = scaled > exact ? scaled - exact : exact - scaled;
      ASSERT_LT(diff, weight_sum) << "rep=" << rep << " i=" << i;
      if (weights[i] == 0) {
        ASSERT_EQ(shares[i], 0U) << "rep=" << rep << " i=" << i;
      }
    }
  }
}

TEST(SplitExact, HugeTotalsUseWideArithmetic) {
  // total * cumulative-weight overflows u64 by ~19 decimal digits; the
  // u128 telescoping must still land exactly.
  const std::uint64_t total = ~0ULL;
  const std::vector<std::uint64_t> weights{~0ULL / 2, ~0ULL / 3, 12345};
  const auto shares = obs::split_exact(total, weights);
  u128 sum = 0;
  for (const auto s : shares) {
    sum += s;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(sum), total);
}

TEST(QuantizeCostNs, RoundsToNearestAndClampsJunk) {
  EXPECT_EQ(obs::quantize_cost_ns(1.0), 1'000'000'000ULL);
  EXPECT_EQ(obs::quantize_cost_ns(1.5e-9), 2ULL);  // round to nearest
  EXPECT_EQ(obs::quantize_cost_ns(0.25e-9), 0ULL);
  EXPECT_EQ(obs::quantize_cost_ns(0.0), 0ULL);
  EXPECT_EQ(obs::quantize_cost_ns(-3.0), 0ULL);
  EXPECT_EQ(obs::quantize_cost_ns(std::nan("")), 0ULL);
  EXPECT_EQ(obs::quantize_cost_ns(
                std::numeric_limits<double>::infinity()),
            0ULL);
}

// ---- attribute_batch ---------------------------------------------------

TEST(AttributeBatch, MetadataPropagatesAndAxesSumExactly) {
  BatchCostTotals batch;
  batch.batch_id = 7;
  batch.width = 3;
  batch.rows = 8;
  batch.epoch = 2;
  batch.degraded = true;
  batch.retries = 4;
  batch.failovers = 1;
  batch.device_ns = 1'000'003;
  batch.h2d_ns = 777;
  batch.d2h_ns = 13;
  batch.h2d_bytes = 4096;
  batch.d2h_bytes = 100;
  batch.wordops = 999'999'937;  // prime: no axis splits evenly
  const std::vector<std::uint64_t> traces{11, 22, 33};
  const std::vector<std::uint64_t> rows{1, 3, 4};

  const auto costs = obs::attribute_batch(batch, traces, rows);
  ASSERT_EQ(costs.size(), 3U);
  std::uint64_t device = 0, h2d = 0, d2h = 0, h2d_b = 0, d2h_b = 0, ops = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(costs[i].trace_id, traces[i]);
    EXPECT_EQ(costs[i].rows, rows[i]);
    EXPECT_EQ(costs[i].batch_id, 7U);
    EXPECT_EQ(costs[i].batch_width, 3U);
    EXPECT_EQ(costs[i].epoch, 2U);
    EXPECT_TRUE(costs[i].degraded);
    // Surcharges are batch-scoped incidents: carried whole, not split.
    EXPECT_EQ(costs[i].retries, 4U);
    EXPECT_EQ(costs[i].failovers, 1U);
    device += costs[i].device_ns;
    h2d += costs[i].h2d_ns;
    d2h += costs[i].d2h_ns;
    h2d_b += costs[i].h2d_bytes;
    d2h_b += costs[i].d2h_bytes;
    ops += costs[i].wordops;
  }
  EXPECT_EQ(device, batch.device_ns);
  EXPECT_EQ(h2d, batch.h2d_ns);
  EXPECT_EQ(d2h, batch.d2h_ns);
  EXPECT_EQ(h2d_b, batch.h2d_bytes);
  EXPECT_EQ(d2h_b, batch.d2h_bytes);
  EXPECT_EQ(ops, batch.wordops);
}

TEST(AttributeBatch, LengthMismatchThrows) {
  const BatchCostTotals batch;
  const std::vector<std::uint64_t> traces{1, 2};
  const std::vector<std::uint64_t> rows{1};
  EXPECT_THROW((void)obs::attribute_batch(batch, traces, rows),
               std::invalid_argument);
}

// ---- CostLedger store --------------------------------------------------

TEST(CostLedger, TotalsAccumulateAndClearResets) {
  obs::CostLedger ledger;
  BatchCostTotals b1;
  b1.batch_id = 1;
  b1.width = 2;
  b1.device_ns = 100;
  b1.h2d_bytes = 64;
  b1.retries = 1;
  b1.degraded = true;
  const std::vector<std::uint64_t> traces{5, 6};
  const std::vector<std::uint64_t> rows{1, 1};
  ledger.record_batch(b1, obs::attribute_batch(b1, traces, rows));
  RequestCost hit;
  hit.trace_id = 9;
  hit.cache_hit = true;
  ledger.record_cache_hit(hit);

  const CostSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.batches.size(), 1U);
  EXPECT_EQ(snap.requests.size(), 3U);
  EXPECT_EQ(snap.total_requests, 3U);
  EXPECT_EQ(snap.cache_hits, 1U);
  EXPECT_EQ(snap.device_ns, 100U);
  EXPECT_EQ(snap.h2d_bytes, 64U);
  EXPECT_EQ(snap.retries, 1U);
  EXPECT_EQ(snap.degraded_batches, 1U);

  ledger.clear();
  const CostSnapshot empty = ledger.snapshot();
  EXPECT_TRUE(empty.batches.empty());
  EXPECT_TRUE(empty.requests.empty());
  EXPECT_EQ(empty.total_requests, 0U);
}

TEST(CostLedger, FifoEvictionCountsDroppedKeepsTotals) {
  obs::CostLedger ledger;
  constexpr std::uint64_t kOver = 5;
  for (std::uint64_t i = 0; i < obs::CostLedger::kMaxRequests + kOver; ++i) {
    RequestCost hit;
    hit.trace_id = i + 1;
    hit.cache_hit = true;
    ledger.record_cache_hit(hit);
  }
  const CostSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.requests.size(), obs::CostLedger::kMaxRequests);
  EXPECT_EQ(snap.dropped_requests, kOver);
  EXPECT_EQ(snap.total_requests, obs::CostLedger::kMaxRequests + kOver);
  // FIFO: the oldest records went first.
  EXPECT_EQ(snap.requests.front().trace_id, kOver + 1);
}

// ---- service-level attribution -----------------------------------------

/// Groups a snapshot's request shares by batch and asserts every integer
/// axis sums bit-identically to the owning batch's totals.
void assert_shares_sum_to_batches(const CostSnapshot& snap,
                                  const std::string& what) {
  struct Axes {
    std::uint64_t device = 0, h2d = 0, d2h = 0;
    std::uint64_t h2d_b = 0, d2h_b = 0, ops = 0, rows = 0;
  };
  std::map<std::uint64_t, Axes> sums;
  for (const RequestCost& c : snap.requests) {
    if (c.cache_hit) {
      continue;
    }
    Axes& a = sums[c.batch_id];
    a.device += c.device_ns;
    a.h2d += c.h2d_ns;
    a.d2h += c.d2h_ns;
    a.h2d_b += c.h2d_bytes;
    a.d2h_b += c.d2h_bytes;
    a.ops += c.wordops;
    a.rows += c.rows;
  }
  ASSERT_EQ(sums.size(), snap.batches.size()) << what;
  for (const BatchCostTotals& b : snap.batches) {
    const auto it = sums.find(b.batch_id);
    ASSERT_NE(it, sums.end()) << what << " batch=" << b.batch_id;
    EXPECT_EQ(it->second.device, b.device_ns) << what;
    EXPECT_EQ(it->second.h2d, b.h2d_ns) << what;
    EXPECT_EQ(it->second.d2h, b.d2h_ns) << what;
    EXPECT_EQ(it->second.h2d_b, b.h2d_bytes) << what;
    EXPECT_EQ(it->second.d2h_b, b.d2h_bytes) << what;
    EXPECT_EQ(it->second.ops, b.wordops) << what;
    EXPECT_EQ(it->second.rows, b.rows) << what;
  }
}

ServiceConfig cost_config(const std::string& device, Comparison op,
                          std::size_t width) {
  ServiceConfig cfg;
  cfg.device = device;
  cfg.op = op;
  cfg.max_batch_rows = width;
  cfg.cache_capacity = 0;
  cfg.recovery.policy = rt::FailPolicy::kAbort;
  cfg.recovery.backoff_base_s = 0.0;
  cfg.start_paused = true;
  return cfg;
}

TEST(ServiceCost, SharesSumBitIdenticallyAcrossPresetsOpsAndWidths) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "cost attribution compiled out (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(31, 128, 0.5, 8811);
  const BitMatrix queries = io::random_bitmatrix(10, 128, 0.4, 8812);
  for (const std::string device : {"gtx980", "titanv", "vega64"}) {
    for (const Comparison op :
         {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
      for (const std::size_t width : {1UL, 8UL, 32UL}) {
        const std::string what = device + "/" + std::string(to_string(op)) +
                                 "/w" + std::to_string(width);
        ServiceEngine engine(db, cost_config(device, op, width));
        std::vector<std::future<QueryResult>> futs;
        for (std::size_t q = 0; q < queries.rows(); ++q) {
          futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
        }
        engine.resume();
        engine.drain();

        const CostSnapshot snap = engine.cost();
        ASSERT_EQ(snap.requests.size(), queries.rows()) << what;
        EXPECT_EQ(snap.total_requests, queries.rows()) << what;
        EXPECT_EQ(snap.dropped_requests, 0U) << what;
        assert_shares_sum_to_batches(snap, what);

        for (auto& f : futs) {
          const QueryResult r = f.get();
          // The result-side record is the ledger's record: same id,
          // same batch, real ownership, a measured service clock.
          EXPECT_EQ(r.cost.trace_id, r.trace_id) << what;
          EXPECT_EQ(r.cost.batch_id, r.batch_id) << what;
          EXPECT_EQ(r.cost.rows, 1U) << what;
          EXPECT_FALSE(r.cost.cache_hit) << what;
          EXPECT_GT(r.cost.service_ns, 0U) << what;
        }
      }
    }
  }
}

TEST(ServiceCost, CacheHitsRideNoBatchAndCostNoDeviceTime) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "cost attribution compiled out (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(19, 128, 0.5, 8821);
  const BitMatrix query = io::random_bitmatrix(1, 128, 0.4, 8822);
  ServiceConfig cfg = cost_config("titanv", Comparison::kXor, 4);
  cfg.cache_capacity = 16;
  ServiceEngine engine(db, cfg);
  auto miss = engine.submit(query);
  engine.resume();
  engine.drain();
  (void)miss.get();
  auto hit_fut = engine.submit(query);
  engine.drain();
  const QueryResult hit = hit_fut.get();
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.cost.cache_hit);
  EXPECT_EQ(hit.cost.batch_id, 0U);
  EXPECT_EQ(hit.cost.device_ns, 0U);
  EXPECT_EQ(hit.cost.h2d_bytes, 0U);
  const CostSnapshot snap = engine.cost();
  EXPECT_EQ(snap.cache_hits, 1U);
  EXPECT_EQ(snap.total_requests, 2U);
  assert_shares_sum_to_batches(snap, "cache-hit run");
}

/// 3 recovery policies x 50 seeds of launch+readback fault injection:
/// the attribution identity must survive retries, failovers and CPU
/// degradation, and the surcharges must land on the affected batches'
/// member requests.
TEST(ServiceCost, FaultSoakKeepsSharesExactAndAttributesSurcharges) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "cost attribution compiled out (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(29, 128, 0.5, 8831);
  const BitMatrix queries = io::random_bitmatrix(8, 128, 0.4, 8832);
  std::uint64_t surcharged_batches = 0;
  for (const auto policy :
       {rt::FailPolicy::kRetry, rt::FailPolicy::kFailover,
        rt::FailPolicy::kDegrade}) {
    for (int seed = 0; seed < 50; ++seed) {
      rt::ScopedFaultPlan plan(rt::FaultPlan::parse(
          "launch:p=0.05:seed=" + std::to_string(seed) +
          ",readback:p=0.05:seed=" + std::to_string(seed + 2000)));
      ServiceConfig cfg = cost_config("titanv", Comparison::kXor, 4);
      cfg.recovery.policy = policy;
      ServiceEngine engine(db, cfg);
      std::vector<std::future<QueryResult>> futs;
      for (std::size_t q = 0; q < queries.rows(); ++q) {
        futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
      }
      engine.resume();
      engine.drain();

      const std::string what = std::string(rt::to_string(policy)) +
                               " seed=" + std::to_string(seed);
      const CostSnapshot snap = engine.cost();
      assert_shares_sum_to_batches(snap, what);

      std::map<std::uint64_t, const BatchCostTotals*> by_id;
      for (const BatchCostTotals& b : snap.batches) {
        by_id[b.batch_id] = &b;
        if (b.retries > 0 || b.failovers > 0 || b.degraded) {
          surcharged_batches++;
        }
      }
      for (const RequestCost& c : snap.requests) {
        const BatchCostTotals* b = by_id.at(c.batch_id);
        // Surcharges are batch-scoped: every member carries its batch's
        // full incident counts, nothing more, nothing less.
        EXPECT_EQ(c.retries, b->retries) << what;
        EXPECT_EQ(c.failovers, b->failovers) << what;
        EXPECT_EQ(c.degraded, b->degraded) << what;
      }
      for (auto& f : futs) {
        (void)f.get();  // exactly-once; rows already pinned by test_service
      }
    }
  }
  // p=0.05 over 2 sites x ~2 batches x 150 runs: some batch somewhere
  // must have paid a recovery surcharge, or the plumbing is dead.
  EXPECT_GT(surcharged_batches, 0U);
}

TEST(ServiceCost, JsonIsDeterministicUnderScriptedReplay) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "cost attribution compiled out (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(23, 128, 0.5, 8841);
  const BitMatrix queries = io::random_bitmatrix(6, 128, 0.4, 8842);
  const auto run = [&] {
    ServiceEngine engine(db, cost_config("titanv", Comparison::kXor, 4));
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    engine.resume();
    engine.drain();
    for (auto& f : futs) {
      (void)f.get();
    }
    std::ostringstream os;
    engine.write_cost_json(os);
    return os.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_NE(a.find("\"cost\": 1"), std::string::npos);
  EXPECT_EQ(a.find("queue_wait"), std::string::npos)
      << "wall clock leaked into the deterministic document";
  // Trace ids come from a process-wide allocator, so two in-process runs
  // differ only there; normalize them and the documents must be
  // byte-identical (same batches, same shares, same order).
  const std::regex trace_re("\"trace\": \\d+");
  EXPECT_EQ(std::regex_replace(a, trace_re, "\"trace\": 0"),
            std::regex_replace(b, trace_re, "\"trace\": 0"));
}

/// In-process Little's-law agreement: the dispatcher's depth-time
/// integral (published as the svc.queue.depth_time_us gauge) and the
/// ledger's per-request queue waits integrate the same step function
/// with the same timestamps, so after a drain they agree to integer-µs
/// gauge rounding.
TEST(ServiceCost, WaitSumAgreesWithQueueDepthTimeIntegral) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "cost attribution compiled out (SNPCMP_OBS=OFF)";
  }
  const BitMatrix db = io::random_bitmatrix(31, 128, 0.5, 8851);
  const BitMatrix queries = io::random_bitmatrix(12, 128, 0.4, 8852);
  ServiceEngine engine(db, cost_config("titanv", Comparison::kXor, 4));
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
  }
  engine.resume();
  engine.drain();
  for (auto& f : futs) {
    (void)f.get();
  }

  std::uint64_t wait_sum_ns = 0;
  for (const RequestCost& c : engine.cost().requests) {
    wait_sum_ns += c.queue_wait_ns;
  }
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto it = snap.gauges.find("svc.queue.depth_time_us");
  ASSERT_NE(it, snap.gauges.end());
  const double integral_ns = static_cast<double>(it->second) * 1e3;
  const double wait_ns = static_cast<double>(wait_sum_ns);
  const double hi = std::max(wait_ns, integral_ns);
  ASSERT_GT(hi, 0.0);
  // Tolerance: 10% relative, floored at the µs-per-transition rounding
  // the gauge loses (2 transitions per request).
  const double slack =
      std::max(hi * 0.10, static_cast<double>(queries.rows()) * 2.0e3);
  EXPECT_NEAR(wait_ns, integral_ns, slack);
}

// ---- jsonlite + the offline analyzer -----------------------------------

TEST(Jsonlite, ParsesTheDialectWeEmit) {
  const auto v = obs::jsonlite::parse(
      R"({"a": [1, 2.5, "x\nA", true, null], "big": 18446744073709551615})");
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 5U);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, 2.5);
  EXPECT_EQ(a->items[2].text, "x\nA");
  EXPECT_TRUE(a->items[3].boolean);
  EXPECT_EQ(a->items[4].kind, obs::jsonlite::Value::Kind::kNull);
  // u64 values above 2^53 survive via the raw token.
  EXPECT_EQ(v.u64_or("big", 0), 18446744073709551615ULL);
  EXPECT_EQ(v.num_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.str_or("missing", "d"), "d");
}

TEST(Jsonlite, MalformedInputThrowsWithOffset) {
  EXPECT_THROW((void)obs::jsonlite::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)obs::jsonlite::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW((void)obs::jsonlite::parse("{} trailing"),
               std::runtime_error);
  try {
    (void)obs::jsonlite::parse("[1, x]");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

/// Synthetic documents with hand-computable answers: two device engines
/// half-overlapped, 6 rows over 2 batches with max 4, a wait histogram
/// agreeing exactly with the depth-time gauge.
TEST(PipelineAnalyzer, ComputesOverlapCoalescingWaitShareAndLittles) {
  const auto trace = obs::jsonlite::parse(R"([
    {"ph": "M", "pid": 0, "tid": 1, "name": "thread_name",
     "args": {"name": "h2d copy"}},
    {"ph": "M", "pid": 0, "tid": 2, "name": "thread_name",
     "args": {"name": "kernel"}},
    {"ph": "X", "pid": 0, "tid": 1, "ts": 0, "dur": 100, "name": "c0"},
    {"ph": "X", "pid": 0, "tid": 2, "ts": 50, "dur": 100, "name": "k0"}
  ])");
  const auto metrics = obs::jsonlite::parse(R"({
    "counters": {"svc.batches": 2, "svc.batch.rows": 6},
    "gauges": {"svc.config.max_batch_rows": 4,
               "svc.queue.depth_time_us": 3000},
    "histograms": {
      "svc.queue.wait_seconds": {"bounds": [0.001, 0.01],
        "counts": [3, 0, 0], "count": 3, "sum": 0.003},
      "svc.service.time_seconds": {"bounds": [0.001, 0.01],
        "counts": [0, 3, 0], "count": 3, "sum": 0.009}
    }
  })");
  const obs::PipelineReport rep = obs::analyze_pipeline(trace, metrics);

  EXPECT_EQ(rep.trace_events, 4U);
  EXPECT_DOUBLE_EQ(rep.span_us, 150.0);
  ASSERT_EQ(rep.tracks.size(), 2U);
  EXPECT_EQ(rep.tracks[0].name, "h2d copy");
  EXPECT_DOUBLE_EQ(rep.tracks[0].busy_us, 100.0);
  EXPECT_TRUE(rep.has_device_tracks);
  // serial 200, makespan 150, ideal 100: half the hideable time hidden.
  EXPECT_DOUBLE_EQ(rep.device_serial_us, 200.0);
  EXPECT_DOUBLE_EQ(rep.device_makespan_us, 150.0);
  EXPECT_DOUBLE_EQ(rep.device_ideal_us, 100.0);
  EXPECT_DOUBLE_EQ(rep.overlap_efficiency, 0.5);
  // 6 rows / 2 batches = mean 3 over max 4.
  EXPECT_EQ(rep.batches, 2U);
  EXPECT_DOUBLE_EQ(rep.mean_batch_rows, 3.0);
  EXPECT_DOUBLE_EQ(rep.coalescing_efficiency, 0.75);
  // wait 1 ms vs service 3 ms: a quarter of latency is queueing.
  EXPECT_EQ(rep.wait_count, 3U);
  EXPECT_DOUBLE_EQ(rep.mean_wait_s, 0.001);
  EXPECT_DOUBLE_EQ(rep.wait_share, 0.25);
  // 3000 µs gauge == 0.003 s wait sum: exact agreement.
  ASSERT_TRUE(rep.littles.evaluated);
  EXPECT_TRUE(rep.littles.pass);
  EXPECT_DOUBLE_EQ(rep.littles.wait_sum_s, 0.003);
  EXPECT_DOUBLE_EQ(rep.littles.depth_integral_s, 0.003);
  EXPECT_DOUBLE_EQ(rep.littles.rel_error, 0.0);

  std::ostringstream os;
  obs::write_pipeline_report(rep, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("pipeline report:"), std::string::npos);
  EXPECT_NE(text.find("-> PASS"), std::string::npos);
  EXPECT_NE(text.find("efficiency 50.0%"), std::string::npos);
  EXPECT_NE(text.find("efficiency 75.0%"), std::string::npos);
}

TEST(PipelineAnalyzer, LittlesFailsBeyondToleranceAndTopNIsStable) {
  const auto trace = obs::jsonlite::parse("[]");
  const auto metrics = obs::jsonlite::parse(R"({
    "counters": {}, "gauges": {"svc.queue.depth_time_us": 2000},
    "histograms": {
      "svc.queue.wait_seconds": {"bounds": [0.01],
        "counts": [4, 0], "count": 4, "sum": 0.004}
    }
  })");
  const auto cost = obs::jsonlite::parse(R"({
    "cost": 1, "dropped_requests": 2,
    "requests": [
      {"trace": 9, "batch": 1, "device_ns": 10, "h2d_ns": 0, "d2h_ns": 0},
      {"trace": 3, "batch": 1, "device_ns": 10, "h2d_ns": 0, "d2h_ns": 0},
      {"trace": 5, "batch": 2, "device_ns": 5, "h2d_ns": 0, "d2h_ns": 0}
    ]
  })");
  obs::ReportOptions opts;
  opts.top_n = 2;
  const obs::PipelineReport rep =
      obs::analyze_pipeline(trace, metrics, &cost, opts);
  // 0.004 s vs 0.002 s: 100% relative error, far over the 10% default.
  ASSERT_TRUE(rep.littles.evaluated);
  EXPECT_FALSE(rep.littles.pass);
  // Equal device time ranks by trace id ascending; truncation to top_n.
  ASSERT_TRUE(rep.has_cost);
  EXPECT_EQ(rep.cost_requests, 3U);
  EXPECT_EQ(rep.cost_dropped, 2U);
  ASSERT_EQ(rep.top_requests.size(), 2U);
  EXPECT_EQ(rep.top_requests[0].trace_id, 3U);
  EXPECT_EQ(rep.top_requests[1].trace_id, 9U);

  std::ostringstream os;
  obs::write_pipeline_report(rep, os);
  EXPECT_NE(os.str().find("-> FAIL"), std::string::npos);
}

TEST(PipelineAnalyzer, RejectsWrongDocumentShapes) {
  const auto obj = obs::jsonlite::parse("{}");
  const auto arr = obs::jsonlite::parse("[]");
  EXPECT_THROW((void)obs::analyze_pipeline(obj, obj), std::runtime_error);
  EXPECT_THROW((void)obs::analyze_pipeline(arr, arr), std::runtime_error);
}

}  // namespace
}  // namespace snp
