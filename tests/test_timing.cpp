// Tile-level kernel timing model: conservation laws, scaling behaviour,
// agreement with the bottleneck analysis.
#include "sim/timing.hpp"

#include <gtest/gtest.h>

#include "model/peak.hpp"

namespace snp::sim {
namespace {

using bits::Comparison;

model::KernelConfig ld_cfg(const model::GpuSpec& d) {
  return model::paper_preset(d, model::WorkloadKind::kLd);
}

TEST(Timing, NeverExceedsPeak) {
  for (const auto& d : model::all_gpus()) {
    const auto cfg = ld_cfg(d);
    for (const std::size_t k : {8u, 64u, 383u, 1000u}) {
      const KernelShape shape{4096, 4096, k};
      const auto t = estimate_kernel(d, cfg, Comparison::kAnd, shape);
      EXPECT_GT(t.seconds, 0.0) << d.name;
      EXPECT_LE(t.pct_of_peak, 100.0) << d.name << " k=" << k;
      EXPECT_GT(t.pct_of_peak, 0.0) << d.name;
    }
  }
}

TEST(Timing, ThroughputRisesWithK) {
  // Fig. 5's mechanism: deeper inner dimension = more reuse of C = closer
  // to peak.
  for (const auto& d : model::all_gpus()) {
    const auto cfg = ld_cfg(d);
    double prev = 0.0;
    for (const std::size_t k : {8u, 32u, 128u, 383u}) {
      const auto t = estimate_kernel(d, cfg, Comparison::kAnd,
                                     {8192, 8192, k});
      EXPECT_GT(t.gops, prev) << d.name << " k=" << k;
      prev = t.gops;
    }
  }
}

TEST(Timing, TimeScalesLinearlyInOutputArea) {
  const auto d = model::titan_v();
  const auto cfg = ld_cfg(d);
  const auto small = estimate_kernel(d, cfg, Comparison::kAnd,
                                     {10240, 10240, 383});
  const auto large = estimate_kernel(d, cfg, Comparison::kAnd,
                                     {20480, 20480, 383});
  EXPECT_NEAR(large.seconds / small.seconds, 4.0, 0.2);
}

TEST(Timing, EdgeQuantizationCostsThroughput) {
  // A shape one row beyond a tile boundary pays for a full extra tile row.
  const auto d = model::gtx980();
  const auto cfg = ld_cfg(d);
  const auto exact = estimate_kernel(d, cfg, Comparison::kAnd,
                                     {4096, 3840, 383});
  const auto ragged = estimate_kernel(d, cfg, Comparison::kAnd,
                                      {4097, 3841, 383});
  EXPECT_LT(ragged.gops, exact.gops);
  EXPECT_GT(ragged.seconds, exact.seconds);
}

TEST(Timing, VegaNotPenaltyOnlyWithoutPreNegation) {
  // As in Fig. 9, measure on 1 core so memory contention does not mask the
  // functional-unit penalty.
  const auto d = model::vega64();
  auto cfg = ld_cfg(d);
  cfg.grid = {1, 1};
  const KernelShape shape{128, 4096, 512};
  const auto fused = estimate_kernel(d, cfg, Comparison::kAndNot, shape,
                                     /*pre_negated=*/false);
  const auto pre = estimate_kernel(d, cfg, Comparison::kAndNot, shape,
                                   /*pre_negated=*/true);
  const auto base = estimate_kernel(d, cfg, Comparison::kAnd, shape);
  EXPECT_GT(fused.seconds, 1.2 * base.seconds);
  EXPECT_NEAR(pre.seconds, base.seconds, 1e-9);
}

TEST(Timing, NvidiaAndNotIsFree) {
  for (const auto& d : {model::gtx980(), model::titan_v()}) {
    const auto cfg = ld_cfg(d);
    const KernelShape shape{4096, 4096, 383};
    const auto andnot = estimate_kernel(d, cfg, Comparison::kAndNot, shape);
    const auto base = estimate_kernel(d, cfg, Comparison::kAnd, shape);
    EXPECT_NEAR(andnot.seconds, base.seconds, 1e-12) << d.name;
  }
}

TEST(Timing, ActiveCoresBoundedByTiles) {
  const auto d = model::titan_v();  // grid 80x1 for LD
  const auto cfg = ld_cfg(d);
  // Only 2 row tiles -> only 2 of the 80 grid_m cores can work.
  const auto t = estimate_kernel(d, cfg, Comparison::kAnd, {64, 1024, 64});
  EXPECT_EQ(t.active_cores, 2);
}

TEST(Timing, FewerCoresMoreTime) {
  const auto d = model::vega64();
  auto cfg = ld_cfg(d);
  const KernelShape shape{8192, 8192, 512};
  const auto full = estimate_kernel(d, cfg, Comparison::kAnd, shape);
  cfg.grid = {8, 1};
  const auto eighth = estimate_kernel(d, cfg, Comparison::kAnd, shape);
  EXPECT_GT(eighth.seconds, 4.0 * full.seconds);
}

TEST(Timing, PerCoreEfficiencyDropsWithMoreVegaCores) {
  // The Fig. 7 mechanism: per-core work fixed, more cores -> contention.
  const auto d = model::vega64();
  auto cfg = ld_cfg(d);
  double prev_eff = 1.1;
  for (const int cores : {1, 8, 32, 64}) {
    cfg.grid = {cores, 1};
    // One column of tiles per core, scaled problem.
    const KernelShape shape{static_cast<std::size_t>(32 * cores), 8192,
                            512};
    const auto t = estimate_kernel(d, cfg, Comparison::kAnd, shape);
    EXPECT_LT(t.mem_efficiency, prev_eff);
    prev_eff = t.mem_efficiency;
  }
  EXPECT_LT(prev_eff, 0.7);  // far below unity at 64 cores
}

TEST(Timing, InvalidInputsRejected) {
  const auto d = model::gtx980();
  const auto cfg = ld_cfg(d);
  EXPECT_THROW(
      (void)estimate_kernel(d, cfg, Comparison::kAnd, {0, 10, 10}),
      std::invalid_argument);
  auto bad = cfg;
  bad.k_c = 100000;
  EXPECT_THROW(
      (void)estimate_kernel(d, bad, Comparison::kAnd, {10, 10, 10}),
      std::invalid_argument);
}

TEST(Timing, WordopsExact) {
  const auto d = model::gtx980();
  const auto t = estimate_kernel(d, ld_cfg(d), Comparison::kAnd,
                                 {100, 200, 50});
  EXPECT_DOUBLE_EQ(t.wordops, 100.0 * 200.0 * 50.0);
}

TEST(Timing, CpuModelMatchesPeakAndEfficiency) {
  const auto cpu = model::xeon_e5_2620v2();
  const double ops = 1e12;
  const double s = cpu_kernel_seconds(cpu, ops);
  EXPECT_NEAR(
      s, ops / (model::cpu_peak_wordops_per_s(cpu) * cpu.efficiency),
      1e-12);
  // 1e12 word-ops at ~42.8 G effective ops/s is ~23 s.
  EXPECT_NEAR(s, 23.3, 0.5);
}

TEST(Timing, LaunchOverheadIncluded) {
  const auto d = model::gtx980();
  const auto t = estimate_kernel(d, ld_cfg(d), Comparison::kAnd,
                                 {32, 384, 8});
  EXPECT_DOUBLE_EQ(t.launch_seconds, d.launch_overhead_us * 1e-6);
  EXPECT_GT(t.total_seconds(), t.seconds);
}

}  // namespace
}  // namespace snp::sim
