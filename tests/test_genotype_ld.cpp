// Context::genotype_ld: the full unphased-LD pipeline (two planes, four
// device comparisons, table recovery, EM) across backends.
#include <gtest/gtest.h>

#include "core/snpcmp.hpp"
#include "io/datagen.hpp"

namespace snp {
namespace {

TEST(GenotypeLd, RejectsBadInput) {
  Context ctx = Context::cpu();
  EXPECT_THROW((void)ctx.genotype_ld(bits::GenotypeMatrix()),
               std::invalid_argument);
  ComputeOptions timing_only;
  timing_only.functional = false;
  const auto g = io::generate_genotypes(4, 50, {});
  EXPECT_THROW((void)ctx.genotype_ld(g, timing_only),
               std::invalid_argument);
}

TEST(GenotypeLd, DiagonalIsPerfectLd) {
  io::PopulationParams p;
  p.seed = 777;
  p.maf_min = 0.1;
  p.maf_max = 0.4;
  const auto g = io::generate_genotypes(12, 800, p);
  Context ctx = Context::cpu();
  const auto ld = ctx.genotype_ld(g);
  ASSERT_EQ(ld.loci, 12u);
  ASSERT_EQ(ld.pairs.size(), 144u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(ld.at(i, i).r2, 1.0, 1e-9) << "locus " << i;
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(ld.at(i, j).r2, ld.at(j, i).r2, 1e-9);
      EXPECT_GE(ld.at(i, j).r2, -1e-12);
      EXPECT_LE(ld.at(i, j).r2, 1.0 + 1e-9);
    }
  }
}

TEST(GenotypeLd, CpuAndGpuBackendsAgree) {
  io::PopulationParams p;
  p.seed = 778;
  p.ld_block_len = 6;
  p.ld_copy = 0.9;
  const auto g = io::generate_genotypes(18, 600, p);
  Context cpu = Context::cpu();
  Context gpu = Context::gpu("gtx980");
  const auto ld_cpu = cpu.genotype_ld(g);
  const auto ld_gpu = gpu.genotype_ld(g);
  ASSERT_EQ(ld_cpu.pairs.size(), ld_gpu.pairs.size());
  for (std::size_t k = 0; k < ld_cpu.pairs.size(); ++k) {
    EXPECT_NEAR(ld_cpu.pairs[k].r2, ld_gpu.pairs[k].r2, 1e-12);
    EXPECT_NEAR(ld_cpu.pairs[k].d, ld_gpu.pairs[k].d, 1e-12);
  }
  // The GPU timing charges init once across the four launches.
  EXPECT_GT(ld_gpu.timing.init_s, 0.1);
  EXPECT_LT(ld_gpu.timing.init_s, 0.5);
  EXPECT_GE(ld_gpu.timing.chunks, 4);
}

TEST(GenotypeLd, BlockStructureVisible) {
  io::PopulationParams p;
  p.seed = 779;
  p.spectrum = io::MafSpectrum::kFixed;
  p.maf_mean = 0.3;
  p.ld_block_len = 8;
  p.ld_copy = 0.95;
  const auto g = io::generate_genotypes(16, 1500, p);
  Context ctx = Context::gpu("vega64");
  const auto ld = ctx.genotype_ld(g);
  // Within-block neighbours show strong LD; across the block boundary
  // (loci 7 and 8) it collapses.
  EXPECT_GT(ld.at(2, 3).r2, 0.5);
  EXPECT_GT(ld.at(10, 11).r2, 0.5);
  EXPECT_LT(ld.at(7, 8).r2, 0.1);
}

}  // namespace
}  // namespace snp
