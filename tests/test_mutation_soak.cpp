// Full mutation soundness soak (slow tier): >= 1000 seeded mutants over
// the shipped corpus (device preset x workload x comparison op), each
// required to trip exactly its expected check. A reduced-seed canary of
// the same sweep runs in tier 1 (test_analyze).
#include "analyze/mutate.hpp"

#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "kern/kernel_program.hpp"
#include "model/config.hpp"
#include "model/device.hpp"

namespace snp::analyze {
namespace {

TEST(MutationSoak, ThousandSeedSweepHasNoFalseNegatives) {
  // 18 corpus programs x 5 mutations x 12 seeds = 1080 mutants.
  const SoakStats stats = mutation_soak(12);
  EXPECT_EQ(stats.programs, 18u);
  EXPECT_GE(stats.mutants, 1000u);
  EXPECT_EQ(stats.skipped, 0u);
  for (const auto& f : stats.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(MutationSoak, MutantsAreDeterministicInTheirSeed) {
  // The soak is only reproducible if mutate() is a pure function of
  // (program, mutation, seed); spot-check across mutation kinds.
  const auto dev = model::gtx980();
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const auto info = kern::build_kernel_program(
      dev, cfg, bits::Comparison::kXor, 16, 2);
  for (const auto m : kAllMutations) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Mutant a = mutate(info.program, m, seed);
      const Mutant b = mutate(info.program, m, seed);
      EXPECT_EQ(a.applicable, b.applicable) << to_string(m);
      EXPECT_EQ(a.note, b.note) << to_string(m) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace snp::analyze
