// BitMatrix: packing, padding, views, slicing, negation (paper Fig. 2).
#include "bits/bitmatrix.hpp"

#include <gtest/gtest.h>

#include "bits/word.hpp"
#include "io/datagen.hpp"

namespace snp::bits {
namespace {

TEST(BitMatrix, DefaultIsEmpty) {
  BitMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.bit_cols(), 0u);
}

TEST(BitMatrix, ZeroInitialized) {
  BitMatrix m(3, 100);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(m.row_popcount(r), 0u);
  }
  EXPECT_TRUE(m.padding_is_zero());
}

TEST(BitMatrix, StrideCoversColumnsAndRespectsRequest) {
  BitMatrix m(2, 65);  // needs 2 words
  EXPECT_EQ(m.words64_per_row(), 2u);
  BitMatrix wide(2, 65, 4);  // padded to a multiple of 4 words
  EXPECT_EQ(wide.words64_per_row(), 4u);
  BitMatrix tiny(2, 1, 8);
  EXPECT_EQ(tiny.words64_per_row(), 8u);
}

TEST(BitMatrix, ZeroStrideRejected) {
  EXPECT_THROW(BitMatrix(1, 1, 0), std::invalid_argument);
}

TEST(BitMatrix, SetGetRoundTrip) {
  BitMatrix m(4, 130);
  m.set(0, 0, true);
  m.set(1, 63, true);
  m.set(2, 64, true);
  m.set(3, 129, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(1, 63));
  EXPECT_TRUE(m.get(2, 64));
  EXPECT_TRUE(m.get(3, 129));
  EXPECT_FALSE(m.get(0, 1));
  m.set(1, 63, false);
  EXPECT_FALSE(m.get(1, 63));
  EXPECT_TRUE(m.padding_is_zero());
}

TEST(BitMatrix, OutOfRangeThrows) {
  BitMatrix m(2, 10);
  EXPECT_THROW(m.set(2, 0, true), std::out_of_range);
  EXPECT_THROW(m.set(0, 10, true), std::out_of_range);
  EXPECT_THROW((void)m.get(0, 10), std::out_of_range);
}

TEST(BitMatrix, RowPopcount) {
  BitMatrix m(1, 200);
  for (std::size_t i = 0; i < 200; i += 3) {
    m.set(0, i, true);
  }
  EXPECT_EQ(m.row_popcount(0), 67u);
}

TEST(BitMatrix, Word32And64ViewsAgree) {
  BitMatrix m(1, 64);
  m.set(0, 0, true);    // bit 0 -> word32[0] bit 0
  m.set(0, 31, true);   // bit 31 -> word32[0] bit 31
  m.set(0, 32, true);   // bit 32 -> word32[1] bit 0
  m.set(0, 63, true);   // bit 63 -> word32[1] bit 31
  const auto w32 = m.row32(0);
  EXPECT_EQ(w32[0], 0x80000001u);
  EXPECT_EQ(w32[1], 0x80000001u);
  const auto w64 = m.row64(0);
  EXPECT_EQ(w64[0], 0x8000000180000001ull);
}

TEST(BitMatrix, WithStridePreservesContent) {
  const BitMatrix m = io::random_bitmatrix(5, 150, 0.5, 42);
  const BitMatrix wide = m.with_stride(8);
  EXPECT_EQ(wide.words64_per_row(), 8u);
  EXPECT_EQ(m, wide);
  EXPECT_TRUE(wide.padding_is_zero());
}

TEST(BitMatrix, NegatedFlipsLogicalBitsOnly) {
  BitMatrix m(2, 70);
  m.set(0, 3, true);
  m.set(1, 69, true);
  const BitMatrix n = m.negated();
  EXPECT_FALSE(n.get(0, 3));
  EXPECT_TRUE(n.get(0, 4));
  EXPECT_FALSE(n.get(1, 69));
  EXPECT_TRUE(n.padding_is_zero());
  EXPECT_EQ(n.row_popcount(0), 69u);
  EXPECT_EQ(n.row_popcount(1), 69u);
}

TEST(BitMatrix, DoubleNegationIsIdentity) {
  const BitMatrix m = io::random_bitmatrix(7, 123, 0.3, 7);
  EXPECT_EQ(m.negated().negated(), m);
}

TEST(BitMatrix, RowSlice) {
  const BitMatrix m = io::random_bitmatrix(10, 90, 0.5, 3);
  const BitMatrix s = m.row_slice(3, 7);
  EXPECT_EQ(s.rows(), 4u);
  EXPECT_EQ(s.bit_cols(), 90u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 90; ++c) {
      EXPECT_EQ(s.get(r, c), m.get(r + 3, c));
    }
  }
  EXPECT_THROW((void)m.row_slice(7, 3), std::out_of_range);
  EXPECT_THROW((void)m.row_slice(0, 11), std::out_of_range);
}

TEST(BitMatrix, EqualityIgnoresStride) {
  const BitMatrix m = io::random_bitmatrix(4, 100, 0.5, 9);
  EXPECT_EQ(m, m.with_stride(6));
  BitMatrix other = m.with_stride(1);
  other.set(0, 0, !other.get(0, 0));
  EXPECT_FALSE(m == other);
}

TEST(CountMatrix, Basics) {
  CountMatrix c(3, 5);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 5u);
  c.at(2, 4) = 17;
  EXPECT_EQ(c.at(2, 4), 17u);
  EXPECT_EQ(c.size_bytes(), 3u * 5u * 4u);
  CountMatrix d(3, 5);
  EXPECT_FALSE(c == d);
  d.at(2, 4) = 17;
  EXPECT_TRUE(c == d);
}

class BitMatrixPaddingSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitMatrixPaddingSweep, PaddingStaysZeroUnderMutation) {
  const std::size_t bits = GetParam();
  BitMatrix m(3, bits, 4);
  for (std::size_t i = 0; i < bits; i += 2) {
    m.set(1, i, true);
  }
  EXPECT_TRUE(m.padding_is_zero());
  EXPECT_EQ(m.row_popcount(1), (bits + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(EdgeWidths, BitMatrixPaddingSweep,
                         ::testing::Values(1, 31, 32, 33, 63, 64, 65, 127,
                                           128, 255, 256, 1000));

}  // namespace
}  // namespace snp::bits
