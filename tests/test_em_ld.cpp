// EM genotype LD: table recovery from plane counts, EM convergence, and
// recovery of known haplotype-level LD from unphased genotypes.
#include "stats/em_ld.hpp"

#include <gtest/gtest.h>

#include "bits/compare.hpp"
#include "bits/genotype.hpp"
#include "io/rng.hpp"
#include "stats/ld.hpp"

namespace snp::stats {
namespace {

/// Simulates a diploid cohort from explicit haplotype frequencies
/// (p11: AB, p10: Ab, p01: aB, p00: ab) and returns both the genotype
/// matrix and the true gamete-level D.
struct SimulatedPair {
  bits::GenotypeMatrix genotypes;  // 2 loci x samples
  double true_d = 0.0;
  double true_r2 = 0.0;
};

SimulatedPair simulate_pair(double p11, double p10, double p01,
                            std::size_t samples, std::uint64_t seed) {
  const double p00 = 1.0 - p11 - p10 - p01;
  SimulatedPair out;
  out.genotypes = bits::GenotypeMatrix(2, samples);
  io::Rng rng(seed);
  auto draw_gamete = [&](bool& a, bool& b) {
    const double u = rng.next_double();
    if (u < p11) {
      a = true;
      b = true;
    } else if (u < p11 + p10) {
      a = true;
      b = false;
    } else if (u < p11 + p10 + p01) {
      a = false;
      b = true;
    } else {
      a = false;
      b = false;
    }
  };
  for (std::size_t s = 0; s < samples; ++s) {
    bool a1 = false, b1 = false, a2 = false, b2 = false;
    draw_gamete(a1, b1);
    draw_gamete(a2, b2);
    out.genotypes.at(0, s) = static_cast<std::uint8_t>(a1 + a2);
    out.genotypes.at(1, s) = static_cast<std::uint8_t>(b1 + b2);
  }
  const double pa = p11 + p10;
  const double pb = p11 + p01;
  out.true_d = p11 - pa * pb;
  const double var = pa * (1 - pa) * pb * (1 - pb);
  out.true_r2 = var > 0 ? out.true_d * out.true_d / var : 0.0;
  (void)p00;
  return out;
}

/// Runs the full framework path: encode both planes, compute the four
/// plane gammas with the reference engine, recover the table.
GenotypePairTable table_via_planes(const bits::GenotypeMatrix& g) {
  const auto pres = bits::encode(g, bits::EncodingPlane::kPresence);
  const auto hom = bits::encode(g, bits::EncodingPlane::kHomozygous);
  const auto pp = bits::compare_reference(pres, pres,
                                          bits::Comparison::kAnd);
  const auto hh = bits::compare_reference(hom, hom, bits::Comparison::kAnd);
  const auto ph = bits::compare_reference(pres, hom,
                                          bits::Comparison::kAnd);
  const auto hp = bits::compare_reference(hom, pres,
                                          bits::Comparison::kAnd);
  return table_from_plane_counts(
      pp.at(0, 1), hh.at(0, 1), ph.at(0, 1), hp.at(0, 1),
      static_cast<std::uint32_t>(pres.row_popcount(0)),
      static_cast<std::uint32_t>(hom.row_popcount(0)),
      static_cast<std::uint32_t>(pres.row_popcount(1)),
      static_cast<std::uint32_t>(hom.row_popcount(1)), g.samples());
}

/// Ground-truth table tallied straight from the genotypes.
GenotypePairTable table_direct(const bits::GenotypeMatrix& g) {
  GenotypePairTable t;
  for (std::size_t s = 0; s < g.samples(); ++s) {
    t.n[g.at(0, s)][g.at(1, s)] += 1.0;
  }
  return t;
}

TEST(EmLd, TableRecoveryMatchesDirectTally) {
  const auto sim = simulate_pair(0.2, 0.15, 0.25, 500, 42);
  const auto recovered = table_via_planes(sim.genotypes);
  const auto direct = table_direct(sim.genotypes);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(recovered.n[a][b], direct.n[a][b])
          << "cell " << a << "," << b;
    }
  }
}

TEST(EmLd, TableHelpers) {
  GenotypePairTable t;
  t.n[0][0] = 10;
  t.n[1][1] = 5;
  t.n[2][2] = 5;
  EXPECT_DOUBLE_EQ(t.total(), 20.0);
  EXPECT_DOUBLE_EQ(t.p_a(), (5 * 1 + 5 * 2) / 40.0);
  EXPECT_TRUE(t.valid());
  t.n[0][1] = -1;
  EXPECT_FALSE(t.valid());
}

TEST(EmLd, InconsistentPlaneCountsRejected) {
  // ph smaller than hh is impossible (P contains H).
  EXPECT_THROW((void)table_from_plane_counts(10, 5, 3, 6, 20, 8, 15, 7,
                                             100),
               std::invalid_argument);
}

TEST(EmLd, PerfectPositiveLd) {
  // Only AB and ab haplotypes: EM must find r2 == 1 exactly.
  const auto sim = simulate_pair(0.3, 0.0, 0.0, 400, 7);
  const auto r = em_ld(table_via_planes(sim.genotypes));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.r2, 1.0, 1e-6);
  EXPECT_NEAR(r.d_prime, 1.0, 1e-6);
}

TEST(EmLd, LinkageEquilibrium) {
  // Independent loci: D near zero (sampling noise only).
  const auto sim = simulate_pair(0.3 * 0.4, 0.3 * 0.6, 0.7 * 0.4, 20000,
                                 8);
  const auto r = em_ld(table_via_planes(sim.genotypes));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.d, 0.0, 0.01);
  EXPECT_LT(r.r2, 0.01);
}

class EmRecovery : public ::testing::TestWithParam<
                       std::tuple<double, double, double>> {};

TEST_P(EmRecovery, RecoversTrueHaplotypeLd) {
  const auto& [p11, p10, p01] = GetParam();
  const auto sim = simulate_pair(p11, p10, p01, 30000, 99);
  const auto r = em_ld(table_via_planes(sim.genotypes));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.d, sim.true_d, 0.01);
  EXPECT_NEAR(r.r2, sim.true_r2, 0.04);
  EXPECT_NEAR(r.p_a, p11 + p10, 0.01);
  EXPECT_NEAR(r.p_b, p11 + p01, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    HaplotypeFreqs, EmRecovery,
    ::testing::Values(std::make_tuple(0.25, 0.15, 0.10),   // positive D
                      std::make_tuple(0.05, 0.40, 0.30),   // negative D
                      std::make_tuple(0.12, 0.08, 0.42),
                      std::make_tuple(0.02, 0.18, 0.03),   // rare alleles
                      std::make_tuple(0.45, 0.05, 0.05)));  // strong LD

TEST(EmLd, EmMatchesHaplotypeLdWhenDataIsEffectivelyPhased) {
  // When one locus has no heterozygotes the phase is unambiguous, so EM
  // must agree exactly with the direct haplotype computation.
  GenotypePairTable t;
  t.n[0][0] = 30;
  t.n[0][2] = 10;
  t.n[2][0] = 5;
  t.n[2][2] = 55;
  const auto r = em_ld(t);
  // Equivalent haplotype counts: each individual contributes two
  // identical gametes.
  const double n_gametes = 200;
  const double ab = 110.0 / n_gametes;
  const double pa = (2 * (5 + 55)) / n_gametes;
  const double pb = (2 * (10 + 55)) / n_gametes;
  EXPECT_NEAR(r.p_ab, ab, 1e-9);
  EXPECT_NEAR(r.d, ab - pa * pb, 1e-9);
}

TEST(EmLd, DegenerateTables) {
  GenotypePairTable empty;
  const auto r0 = em_ld(empty);
  EXPECT_DOUBLE_EQ(r0.r2, 0.0);
  // Monomorphic locus: r2 defined as 0.
  GenotypePairTable mono;
  mono.n[0][0] = 50;
  mono.n[0][2] = 50;
  const auto rm = em_ld(mono);
  EXPECT_DOUBLE_EQ(rm.r2, 0.0);
  EXPECT_DOUBLE_EQ(rm.p_a, 0.0);
}

TEST(EmLd, HaplotypeInputReducesToPlainLd) {
  // Haploid-coded input (dosages 0/2 only, i.e. "phased" pseudo-diploids)
  // must reproduce ld_from_counts on the presence plane.
  const auto sim = simulate_pair(0.2, 0.2, 0.1, 5000, 11);
  bits::GenotypeMatrix phased(2, sim.genotypes.samples());
  for (std::size_t s = 0; s < phased.samples(); ++s) {
    phased.at(0, s) =
        static_cast<std::uint8_t>(sim.genotypes.at(0, s) >= 1 ? 2 : 0);
    phased.at(1, s) =
        static_cast<std::uint8_t>(sim.genotypes.at(1, s) >= 1 ? 2 : 0);
  }
  const auto em = em_ld(table_via_planes(phased));
  const auto pres = bits::encode(phased, bits::EncodingPlane::kPresence);
  const auto gamma = bits::compare_reference(pres, pres,
                                             bits::Comparison::kAnd);
  const auto plain = ld_from_counts(
      gamma.at(0, 1),
      static_cast<std::uint32_t>(pres.row_popcount(0)),
      static_cast<std::uint32_t>(pres.row_popcount(1)),
      phased.samples());
  EXPECT_NEAR(em.r2, plain.r2, 1e-9);
  EXPECT_NEAR(em.d, plain.d, 1e-9);
}

}  // namespace
}  // namespace snp::stats
