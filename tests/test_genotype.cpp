// Genotype dosage matrix and the Fig. 2 bit encoding.
#include "bits/genotype.hpp"

#include <gtest/gtest.h>

namespace snp::bits {
namespace {

GenotypeMatrix make_small() {
  GenotypeMatrix g(2, 4);
  g.at(0, 0) = 0;
  g.at(0, 1) = 1;
  g.at(0, 2) = 2;
  g.at(0, 3) = 0;
  g.at(1, 0) = 2;
  g.at(1, 1) = 2;
  g.at(1, 2) = 0;
  g.at(1, 3) = 1;
  return g;
}

TEST(Genotype, Maf) {
  const GenotypeMatrix g = make_small();
  EXPECT_DOUBLE_EQ(g.maf(0), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(g.maf(1), 5.0 / 8.0);
}

TEST(Genotype, MafOfEmptyIsZero) {
  const GenotypeMatrix g;
  EXPECT_DOUBLE_EQ(GenotypeMatrix(1, 0).maf(0), 0.0);
  (void)g;
}

TEST(Genotype, PresenceEncoding) {
  const BitMatrix m = encode(make_small(), EncodingPlane::kPresence);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.bit_cols(), 4u);
  EXPECT_FALSE(m.get(0, 0));
  EXPECT_TRUE(m.get(0, 1));
  EXPECT_TRUE(m.get(0, 2));
  EXPECT_FALSE(m.get(0, 3));
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 3));
}

TEST(Genotype, HomozygousEncoding) {
  const BitMatrix m = encode(make_small(), EncodingPlane::kHomozygous);
  EXPECT_FALSE(m.get(0, 1));  // het -> 0
  EXPECT_TRUE(m.get(0, 2));   // hom minor -> 1
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_FALSE(m.get(1, 3));
}

TEST(Genotype, HomozygousImpliesPresence) {
  GenotypeMatrix g(3, 50);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t s = 0; s < 50; ++s) {
      g.at(l, s) = static_cast<std::uint8_t>((l * 7 + s * 3) % 3);
    }
  }
  const BitMatrix hom = encode(g, EncodingPlane::kHomozygous);
  const BitMatrix pres = encode(g, EncodingPlane::kPresence);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t s = 0; s < 50; ++s) {
      EXPECT_TRUE(!hom.get(l, s) || pres.get(l, s));
    }
  }
}

TEST(Genotype, EncodeHonorsStride) {
  const BitMatrix m = encode(make_small(), EncodingPlane::kPresence, 8);
  EXPECT_EQ(m.words64_per_row(), 8u);
  EXPECT_TRUE(m.padding_is_zero());
}

}  // namespace
}  // namespace snp::bits
