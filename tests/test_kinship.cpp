// KING-robust kinship: plane algebra, classification thresholds, and
// recovery of known pedigree relationships from simulated families.
#include "stats/kinship.hpp"

#include <gtest/gtest.h>

#include "io/datagen.hpp"
#include "io/rng.hpp"

namespace snp::stats {
namespace {

TEST(Kinship, ClassificationThresholds) {
  EXPECT_EQ(classify_kinship(0.5), Relationship::kDuplicate);
  EXPECT_EQ(classify_kinship(0.25), Relationship::kFirstDegree);
  EXPECT_EQ(classify_kinship(0.125), Relationship::kSecondDegree);
  EXPECT_EQ(classify_kinship(0.0625), Relationship::kThirdDegree);
  EXPECT_EQ(classify_kinship(0.0), Relationship::kUnrelated);
  EXPECT_EQ(classify_kinship(-0.1), Relationship::kUnrelated);
  EXPECT_EQ(to_string(Relationship::kFirstDegree), "1st degree");
}

TEST(Kinship, KingRobustFormula) {
  // het_het = 40, ibs0 = (10-5) + (12-7) = 10, hets 50 + 50.
  const auto r = king_robust(40, 5, 7, 10, 12, 50, 50);
  EXPECT_EQ(r.n_ibs0, 10u);
  EXPECT_NEAR(r.phi, (40.0 - 20.0) / 100.0, 1e-12);
  EXPECT_EQ(r.relationship, Relationship::kFirstDegree);
  EXPECT_THROW((void)king_robust(1, 11, 0, 10, 12, 5, 5),
               std::invalid_argument);
  // No heterozygotes at all: phi defined as 0.
  EXPECT_DOUBLE_EQ(king_robust(0, 0, 0, 5, 5, 0, 0).phi, 0.0);
}

TEST(Kinship, IndividualMajorEncoding) {
  bits::GenotypeMatrix g(2, 3);  // 2 loci x 3 samples
  g.at(0, 0) = 1;
  g.at(1, 0) = 2;
  g.at(0, 2) = 2;
  const auto pres =
      encode_individual_major(g, bits::EncodingPlane::kPresence);
  EXPECT_EQ(pres.rows(), 3u);      // samples
  EXPECT_EQ(pres.bit_cols(), 2u);  // loci
  EXPECT_TRUE(pres.get(0, 0));
  EXPECT_TRUE(pres.get(0, 1));
  EXPECT_FALSE(pres.get(1, 0));
  EXPECT_TRUE(pres.get(2, 0));
  const auto hom =
      encode_individual_major(g, bits::EncodingPlane::kHomozygous);
  EXPECT_FALSE(hom.get(0, 0));
  EXPECT_TRUE(hom.get(0, 1));
}

TEST(Kinship, HetPlaneAlgebra) {
  bits::GenotypeMatrix g(3, 2);
  g.at(0, 0) = 1;  // het
  g.at(1, 0) = 2;  // hom
  g.at(2, 0) = 0;
  g.at(0, 1) = 2;
  const auto pres =
      encode_individual_major(g, bits::EncodingPlane::kPresence);
  const auto hom =
      encode_individual_major(g, bits::EncodingPlane::kHomozygous);
  const auto het = het_plane(pres, hom);
  EXPECT_TRUE(het.get(0, 0));    // sample 0 het at locus 0
  EXPECT_FALSE(het.get(0, 1));   // hom is not het
  EXPECT_FALSE(het.get(0, 2));   // absent is not het
  EXPECT_FALSE(het.get(1, 0));   // sample 1 hom at locus 0
  EXPECT_TRUE(het.padding_is_zero());
  const bits::BitMatrix wrong(2, 5);
  EXPECT_THROW((void)het_plane(pres, wrong), std::invalid_argument);
}

/// Simulated family: founder genotypes under HWE, children inherit one
/// allele from each parent, grandchild from child x new founder.
struct Family {
  bits::GenotypeMatrix g;  // loci x [p1, p2, child1, child2, spouse,
                           //          grandchild, unrelated, twin_of_p1]
};

Family simulate_family(std::size_t loci, std::uint64_t seed) {
  io::Rng rng(seed);
  Family fam;
  fam.g = bits::GenotypeMatrix(loci, 8);
  for (std::size_t l = 0; l < loci; ++l) {
    const double maf = 0.2 + 0.3 * rng.next_double();  // common variants
    auto allele = [&]() {
      return static_cast<std::uint8_t>(rng.next_bernoulli(maf));
    };
    // Founders carry two random alleles; store each individual's two
    // allele copies to mate them properly.
    const std::uint8_t p1a = allele(), p1b = allele();
    const std::uint8_t p2a = allele(), p2b = allele();
    const std::uint8_t spa = allele(), spb = allele();
    const std::uint8_t una = allele(), unb = allele();
    auto pick = [&](std::uint8_t x, std::uint8_t y) {
      return rng.next_bernoulli(0.5) ? x : y;
    };
    const std::uint8_t c1a = pick(p1a, p1b), c1b = pick(p2a, p2b);
    const std::uint8_t c2a = pick(p1a, p1b), c2b = pick(p2a, p2b);
    const std::uint8_t gca = pick(c1a, c1b), gcb = pick(spa, spb);
    fam.g.at(l, 0) = static_cast<std::uint8_t>(p1a + p1b);
    fam.g.at(l, 1) = static_cast<std::uint8_t>(p2a + p2b);
    fam.g.at(l, 2) = static_cast<std::uint8_t>(c1a + c1b);
    fam.g.at(l, 3) = static_cast<std::uint8_t>(c2a + c2b);
    fam.g.at(l, 4) = static_cast<std::uint8_t>(spa + spb);
    fam.g.at(l, 5) = static_cast<std::uint8_t>(gca + gcb);
    fam.g.at(l, 6) = static_cast<std::uint8_t>(una + unb);
    fam.g.at(l, 7) = fam.g.at(l, 0);  // monozygotic twin of p1
  }
  return fam;
}

TEST(Kinship, PedigreeRecovery) {
  const Family fam = simulate_family(20000, 1234);
  const auto phi = kinship_matrix(fam.g);
  const std::size_t n = 8;
  auto at = [&](std::size_t i, std::size_t j) { return phi[i * n + j]; };

  // Self and twin: phi ~ 0.5.
  EXPECT_NEAR(at(0, 0).phi, 0.5, 0.02);
  EXPECT_NEAR(at(0, 7).phi, 0.5, 0.02);
  EXPECT_EQ(at(0, 7).relationship, Relationship::kDuplicate);
  // Parent-offspring and full siblings: ~0.25, zero IBS0 for P-O.
  EXPECT_NEAR(at(0, 2).phi, 0.25, 0.03);
  EXPECT_EQ(at(0, 2).relationship, Relationship::kFirstDegree);
  EXPECT_EQ(at(0, 2).n_ibs0, 0u);  // parent and child always share
  EXPECT_NEAR(at(2, 3).phi, 0.25, 0.03);
  EXPECT_EQ(at(2, 3).relationship, Relationship::kFirstDegree);
  // Grandparent-grandchild: ~0.125.
  EXPECT_NEAR(at(0, 5).phi, 0.125, 0.03);
  EXPECT_EQ(at(0, 5).relationship, Relationship::kSecondDegree);
  // Unrelated pairs: ~0.
  EXPECT_NEAR(at(0, 6).phi, 0.0, 0.03);
  EXPECT_EQ(at(0, 6).relationship, Relationship::kUnrelated);
  EXPECT_NEAR(at(0, 4).phi, 0.0, 0.03);  // parent vs child's spouse
  // Symmetry.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(at(i, j).phi, at(j, i).phi, 1e-12);
    }
  }
}

TEST(Kinship, UnrelatedCohortIsUnrelated) {
  io::PopulationParams p;
  p.seed = 555;
  p.maf_min = 0.1;
  p.maf_max = 0.5;
  const auto g = io::generate_genotypes(5000, 12, p);
  const auto phi = kinship_matrix(g);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (i == j) {
        EXPECT_GT(phi[i * 12 + j].phi, 0.35);
      } else {
        EXPECT_EQ(phi[i * 12 + j].relationship, Relationship::kUnrelated)
            << i << "," << j << " phi=" << phi[i * 12 + j].phi;
      }
    }
  }
}

}  // namespace
}  // namespace snp::stats
