// UPGMA clustering: known small dendrograms, ultrametric property,
// planted-subpopulation recovery from the XOR kernel's distances.
#include "stats/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

#include "io/datagen.hpp"
#include "io/rng.hpp"

namespace snp::stats {
namespace {

bits::CountMatrix dist4() {
  // Two tight pairs {0,1} and {2,3}, far apart.
  bits::CountMatrix d(4, 4);
  const std::uint32_t m[4][4] = {{0, 2, 20, 22},
                                 {2, 0, 18, 20},
                                 {20, 18, 0, 4},
                                 {22, 20, 4, 0}};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      d.at(i, j) = m[i][j];
    }
  }
  return d;
}

TEST(Upgma, KnownSmallTree) {
  const auto tree = upgma(dist4());
  ASSERT_EQ(tree.nodes().size(), 7u);  // 4 leaves + 3 merges
  EXPECT_TRUE(tree.heights_monotone());
  // First merge: {0,1} at height 2; second: {2,3} at height 4.
  const auto& first = tree.nodes()[4];
  EXPECT_EQ(std::min(first.left, first.right), 0);
  EXPECT_EQ(std::max(first.left, first.right), 1);
  EXPECT_DOUBLE_EQ(first.height, 2.0);
  const auto& second = tree.nodes()[5];
  EXPECT_EQ(std::min(second.left, second.right), 2);
  EXPECT_EQ(std::max(second.left, second.right), 3);
  EXPECT_DOUBLE_EQ(second.height, 4.0);
  // Final merge height: average of the 4 cross distances = 20.
  EXPECT_DOUBLE_EQ(tree.nodes()[6].height, 20.0);
  EXPECT_EQ(tree.nodes()[6].size, 4u);
}

TEST(Upgma, CutK) {
  const auto tree = upgma(dist4());
  const auto two = tree.cut_k(2);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_EQ(two[2], two[3]);
  EXPECT_NE(two[0], two[2]);
  const auto one = tree.cut_k(1);
  EXPECT_EQ(one, (std::vector<std::size_t>{0, 0, 0, 0}));
  const auto four = tree.cut_k(4);
  EXPECT_EQ(std::set<std::size_t>(four.begin(), four.end()).size(), 4u);
  EXPECT_THROW((void)tree.cut_k(0), std::invalid_argument);
  EXPECT_THROW((void)tree.cut_k(5), std::invalid_argument);
}

TEST(Upgma, InputValidation) {
  EXPECT_THROW((void)upgma(bits::CountMatrix()), std::invalid_argument);
  EXPECT_THROW((void)upgma(bits::CountMatrix(2, 3)),
               std::invalid_argument);
  bits::CountMatrix asym(2, 2);
  asym.at(0, 1) = 5;
  EXPECT_THROW((void)upgma(asym), std::invalid_argument);
}

TEST(Upgma, SingleLeaf) {
  const auto tree = upgma(bits::CountMatrix(1, 1));
  EXPECT_EQ(tree.leaves(), 1u);
  EXPECT_EQ(tree.cut_k(1), (std::vector<std::size_t>{0}));
}

TEST(Upgma, RecoversPlantedSubpopulations) {
  // Two populations with divergent allele-frequency profiles; profiles
  // within a population are much closer in Hamming distance.
  constexpr std::size_t kPerPop = 12;
  constexpr std::size_t kSnps = 1024;
  io::Rng rng(2025);
  // Population-specific site frequencies.
  std::vector<double> freq_a(kSnps), freq_b(kSnps);
  for (std::size_t k = 0; k < kSnps; ++k) {
    freq_a[k] = 0.05 + 0.4 * rng.next_double();
    freq_b[k] = 0.05 + 0.4 * rng.next_double();
  }
  bits::BitMatrix profiles(2 * kPerPop, kSnps);
  for (std::size_t i = 0; i < 2 * kPerPop; ++i) {
    const auto& freq = i < kPerPop ? freq_a : freq_b;
    for (std::size_t k = 0; k < kSnps; ++k) {
      if (rng.next_bernoulli(freq[k])) {
        profiles.set(i, k, true);
      }
    }
  }
  const auto tree = upgma(hamming_distances(profiles));
  EXPECT_TRUE(tree.heights_monotone());
  const auto labels = tree.cut_k(2);
  for (std::size_t i = 1; i < kPerPop; ++i) {
    EXPECT_EQ(labels[i], labels[0]) << i;
    EXPECT_EQ(labels[kPerPop + i], labels[kPerPop]) << i;
  }
  EXPECT_NE(labels[0], labels[kPerPop]);
}

TEST(Upgma, ThreePopulations) {
  constexpr std::size_t kPerPop = 8;
  constexpr std::size_t kSnps = 2048;
  io::Rng rng(2026);
  std::vector<std::vector<double>> freqs(3, std::vector<double>(kSnps));
  for (auto& f : freqs) {
    for (auto& v : f) {
      v = 0.05 + 0.4 * rng.next_double();
    }
  }
  bits::BitMatrix profiles(3 * kPerPop, kSnps);
  for (std::size_t i = 0; i < 3 * kPerPop; ++i) {
    const auto& f = freqs[i / kPerPop];
    for (std::size_t k = 0; k < kSnps; ++k) {
      if (rng.next_bernoulli(f[k])) {
        profiles.set(i, k, true);
      }
    }
  }
  const auto labels = upgma(hamming_distances(profiles)).cut_k(3);
  for (std::size_t pop = 0; pop < 3; ++pop) {
    for (std::size_t i = 1; i < kPerPop; ++i) {
      EXPECT_EQ(labels[pop * kPerPop + i], labels[pop * kPerPop]);
    }
  }
  EXPECT_EQ(std::set<std::size_t>(labels.begin(), labels.end()).size(),
            3u);
}

}  // namespace
}  // namespace snp::stats
