// End-to-end timeline: double-buffering legality, overlap, serial ablation.
#include "sim/transfer.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace snp::sim {
namespace {

std::vector<Chunk> uniform_chunks(int n, std::size_t h2d, double k,
                                  std::size_t d2h) {
  return std::vector<Chunk>(static_cast<std::size_t>(n), Chunk{h2d, k, d2h});
}

TEST(Transfer, EmptyTimelineIsInitOnly) {
  const auto d = model::gtx980();
  const auto tl = run_timeline(d, {});
  EXPECT_DOUBLE_EQ(tl.total_seconds, init_seconds(d));
  EXPECT_DOUBLE_EQ(tl.init_seconds, init_seconds(d));
}

TEST(Transfer, InitCanBeExcluded) {
  const auto d = model::gtx980();
  TimelineOptions opts;
  opts.include_init = false;
  const auto tl = run_timeline(d, uniform_chunks(1, 1 << 20, 0.01, 1 << 20),
                               opts);
  EXPECT_DOUBLE_EQ(tl.init_seconds, 0.0);
  EXPECT_LT(tl.total_seconds, 0.1);
}

TEST(Transfer, ChunkOrderingLegality) {
  const auto d = model::titan_v();
  const auto tl = run_timeline(d, uniform_chunks(8, 1 << 24, 0.005, 1 << 22));
  ASSERT_EQ(tl.chunks.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& c = tl.chunks[i];
    EXPECT_LE(c.h2d_start, c.h2d_end);
    EXPECT_LE(c.h2d_end, c.kernel_start);  // kernel waits for its upload
    EXPECT_LT(c.kernel_start, c.kernel_end);
    EXPECT_LE(c.kernel_end, c.d2h_start);  // readback waits for the kernel
    if (i > 0) {
      // Engines are in-order.
      EXPECT_GE(c.h2d_start, tl.chunks[i - 1].h2d_end);
      EXPECT_GE(c.kernel_start, tl.chunks[i - 1].kernel_end);
      EXPECT_GE(c.d2h_start, tl.chunks[i - 1].d2h_end);
    }
    if (i >= 2) {
      // Buffer depth 2: chunk i reuses chunk i-2's input buffer.
      EXPECT_GE(c.h2d_start, tl.chunks[i - 2].kernel_end);
    }
  }
}

TEST(Transfer, DoubleBufferingHidesTransferUnderCompute) {
  const auto d = model::titan_v();
  // Compute-heavy chunks: uploads should hide almost entirely.
  const auto chunks = uniform_chunks(16, 1 << 24, 0.1, 1 << 20);
  const auto overlapped = run_timeline(d, chunks);
  TimelineOptions serial_opts;
  serial_opts.double_buffered = false;
  const auto serial = run_timeline(d, chunks, serial_opts);
  EXPECT_LT(overlapped.total_seconds, serial.total_seconds);
  EXPECT_GT(overlapped.overlap_fraction(), 0.8);
  EXPECT_LT(serial.overlap_fraction(), 0.05);
  // Serial total ~= init + sum of all stages.
  EXPECT_NEAR(serial.total_seconds,
              serial.init_seconds + serial.h2d_seconds +
                  serial.kernel_seconds + 16 * launch_seconds(d) +
                  serial.d2h_seconds,
              1e-3);
}

TEST(Transfer, TransferBoundWorkloadIsPcieLimited) {
  const auto d = model::gtx980();
  // Tiny kernels, fat transfers: makespan ~= init + total h2d time.
  const auto chunks = uniform_chunks(8, 1 << 26, 1e-5, 1 << 10);
  const auto tl = run_timeline(d, chunks);
  const double h2d_total = 8 * pcie_seconds(d, 1 << 26);
  EXPECT_GT(tl.total_seconds - tl.init_seconds, h2d_total * 0.95);
  EXPECT_LT(tl.total_seconds - tl.init_seconds, h2d_total * 1.25);
}

TEST(Transfer, BusyTimesAreSums) {
  const auto d = model::vega64();
  const auto chunks = uniform_chunks(4, 1 << 20, 0.002, 1 << 18);
  const auto tl = run_timeline(d, chunks);
  EXPECT_NEAR(tl.kernel_seconds, 4 * 0.002, 1e-12);
  EXPECT_NEAR(tl.h2d_seconds,
              4 * (pcie_seconds(d, 1 << 20) + pcie_latency_seconds()),
              1e-9);
}

TEST(Transfer, ZeroByteStagesAreFree) {
  const auto d = model::gtx980();
  const auto tl = run_timeline(d, {Chunk{0, 0.01, 0}});
  EXPECT_NEAR(tl.total_seconds,
              init_seconds(d) + launch_seconds(d) + 0.01, 1e-9);
}

TEST(Transfer, BadDepthRejected) {
  TimelineOptions opts;
  opts.buffer_depth = 0;
  EXPECT_THROW((void)run_timeline(model::gtx980(), {}, opts),
               std::invalid_argument);
}

TEST(Transfer, DeeperBuffersNeverSlower) {
  const auto d = model::titan_v();
  const auto chunks = uniform_chunks(16, 1 << 24, 0.01, 1 << 22);
  TimelineOptions o2;
  o2.buffer_depth = 2;
  TimelineOptions o4;
  o4.buffer_depth = 4;
  EXPECT_GE(run_timeline(d, chunks, o2).total_seconds + 1e-12,
            run_timeline(d, chunks, o4).total_seconds);
}

}  // namespace
}  // namespace snp::sim
