// Async-vs-serial conformance: the thread-pool chunk pipeline behind
// ComputeOptions::threads must be bit-identical to the serial legacy path
// — and both to the naive bitwise reference — for every operation, shape
// (including ragged K tails and degenerate M/N), chunk size, and thread
// count. Also pins the determinism contract: repeated async runs deliver
// identical bytes AND identical chunk-callback order.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "bits/compare.hpp"
#include "core/snpcmp.hpp"
#include "cpu/engine.hpp"
#include "exec/thread_pool.hpp"
#include "io/datagen.hpp"

namespace snp {
namespace {

using bits::Comparison;

struct ConfCase {
  std::size_t m, n, bits;
  std::size_t chunk_rows;  ///< 0 = planner default
  std::size_t threads;
  double density;
  std::uint64_t seed;
};

ComputeOptions async_options(const ConfCase& c) {
  ComputeOptions o;
  o.chunk_rows = c.chunk_rows;
  o.threads = c.threads;
  return o;
}

class AsyncMatchesSerial
    : public ::testing::TestWithParam<std::tuple<ConfCase, Comparison>> {};

TEST_P(AsyncMatchesSerial, CompareOnGpuContext) {
  const auto& [c, op] = GetParam();
  const auto a = io::random_bitmatrix(c.m, c.bits, c.density, c.seed);
  const auto b =
      io::random_bitmatrix(c.n, c.bits, 1.0 - c.density, c.seed + 1);
  const auto expected = bits::compare_reference(a, b, op);

  Context ctx = Context::gpu("gtx980");
  ComputeOptions serial;
  serial.chunk_rows = c.chunk_rows;
  const auto base = ctx.compare(a, b, op, serial);
  ASSERT_TRUE(base.counts == expected) << "serial path deviates";

  const auto async = ctx.compare(a, b, op, async_options(c));
  EXPECT_TRUE(async.counts == expected) << "async deviates from reference";
  EXPECT_TRUE(async.counts == base.counts) << "async deviates from serial";
  // The simulated device timeline must not depend on host threading.
  EXPECT_DOUBLE_EQ(async.timing.h2d_s, base.timing.h2d_s);
  EXPECT_DOUBLE_EQ(async.timing.kernel_s, base.timing.kernel_s);
  EXPECT_DOUBLE_EQ(async.timing.d2h_s, base.timing.d2h_s);
  EXPECT_EQ(async.timing.chunks, base.timing.chunks);
}

TEST_P(AsyncMatchesSerial, CompareOnCpuContext) {
  const auto& [c, op] = GetParam();
  const auto a = io::random_bitmatrix(c.m, c.bits, c.density, c.seed + 2);
  const auto b =
      io::random_bitmatrix(c.n, c.bits, 1.0 - c.density, c.seed + 3);
  const auto expected = bits::compare_reference(a, b, op);

  Context ctx = Context::cpu();
  const auto base = ctx.compare(a, b, op, {});
  ASSERT_TRUE(base.counts == expected);
  const auto async = ctx.compare(a, b, op, async_options(c));
  EXPECT_TRUE(async.counts == expected);
}

TEST_P(AsyncMatchesSerial, IdentitySearchTopMatches) {
  const auto& [c, op] = GetParam();
  (void)op;  // identity search is always XOR
  const auto queries =
      io::random_bitmatrix(c.m, c.bits, c.density, c.seed + 4);
  const auto db =
      io::random_bitmatrix(c.n, c.bits, 1.0 - c.density, c.seed + 5);

  Context ctx = Context::gpu("titanv");
  ComputeOptions serial;
  serial.chunk_rows = c.chunk_rows;
  const auto base = ctx.identity_search(queries, db, serial);
  const auto async = ctx.identity_search(queries, db, async_options(c));
  EXPECT_TRUE(async.comparison.counts == base.comparison.counts);
  EXPECT_EQ(async.best_match, base.best_match);
  EXPECT_EQ(async.best_mismatches, base.best_mismatches);

  const auto stream_base =
      ctx.identity_search_streaming(queries, db, 3, serial);
  const auto stream_async =
      ctx.identity_search_streaming(queries, db, 3, async_options(c));
  ASSERT_EQ(stream_async.top.size(), stream_base.top.size());
  for (std::size_t q = 0; q < stream_base.top.size(); ++q) {
    ASSERT_EQ(stream_async.top[q].size(), stream_base.top[q].size());
    for (std::size_t k = 0; k < stream_base.top[q].size(); ++k) {
      EXPECT_EQ(stream_async.top[q][k].reference_index,
                stream_base.top[q][k].reference_index);
      EXPECT_EQ(stream_async.top[q][k].mismatches,
                stream_base.top[q][k].mismatches);
    }
  }
}

// ~50 sampled tuples: every op x a spread of shapes (ragged K not a
// multiple of 64, M/N below the micro-tile, chunk sizes forcing ragged
// tail chunks) x thread counts 1/2/3/8.
INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncMatchesSerial,
    ::testing::Combine(
        ::testing::Values(
            // Multi-chunk with ragged tail chunk (n % chunk_rows != 0).
            ConfCase{5, 300, 512, 64, 2, 0.4, 100},
            ConfCase{5, 300, 512, 64, 8, 0.4, 100},
            ConfCase{7, 129, 96, 10, 3, 0.5, 200},
            // Ragged K (not a multiple of 64) and tiny M below m_r.
            ConfCase{3, 250, 130, 32, 2, 0.3, 300},
            ConfCase{1, 100, 65, 16, 1, 0.5, 400},
            ConfCase{2, 77, 33, 9, 8, 0.7, 500},
            // Streamed A (queries outnumber the database).
            ConfCase{200, 6, 512, 31, 2, 0.5, 600},
            ConfCase{150, 3, 257, 20, 3, 0.2, 700},
            // Single chunk (chunk_rows > n) and planner-default chunks.
            ConfCase{4, 40, 512, 0, 2, 0.5, 800},
            ConfCase{8, 64, 1024, 128, 2, 0.6, 900},
            // Square-ish, multiple chunks, K with tail words.
            ConfCase{33, 190, 1537, 48, 8, 0.35, 1000},
            ConfCase{16, 512, 320, 100, 2, 0.45, 1100},
            // Exercise max_inflight backpressure: many tiny chunks.
            ConfCase{6, 400, 192, 8, 2, 0.5, 1200},
            ConfCase{6, 400, 192, 8, 8, 0.5, 1200},
            ConfCase{12, 96, 64, 5, 1, 0.9, 1300},
            ConfCase{9, 257, 449, 19, 3, 0.15, 1400},
            ConfCase{64, 64, 640, 16, 8, 0.5, 1500}),
        ::testing::Values(Comparison::kAnd, Comparison::kXor,
                          Comparison::kAndNot)));

TEST(AsyncDeterminism, RepeatedRunsAreByteAndOrderIdentical) {
  const auto a = io::random_bitmatrix(6, 384, 0.5, 42);
  const auto b = io::random_bitmatrix(330, 384, 0.5, 43);
  Context ctx = Context::gpu("vega64");

  // Serial baseline: counts plus the chunk delivery order.
  ComputeOptions serial;
  serial.chunk_rows = 32;
  std::vector<std::size_t> base_order;
  serial.chunk_callback = [&](const ComputeOptions::ChunkView& v) {
    base_order.push_back(v.row0);
  };
  const auto base = ctx.compare(a, b, Comparison::kXor, serial);
  ASSERT_GT(base_order.size(), 1u) << "want a multi-chunk workload";

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (int rep = 0; rep < 5; ++rep) {
      ComputeOptions async;
      async.chunk_rows = 32;
      async.threads = threads;
      std::vector<std::size_t> order;
      async.chunk_callback = [&](const ComputeOptions::ChunkView& v) {
        order.push_back(v.row0);
      };
      const auto r = ctx.compare(a, b, Comparison::kXor, async);
      ASSERT_EQ(r.counts.rows(), base.counts.rows());
      ASSERT_EQ(r.counts.cols(), base.counts.cols());
      const auto raw = r.counts.raw();
      const auto braw = base.counts.raw();
      EXPECT_EQ(0, std::memcmp(raw.data(), braw.data(),
                               braw.size() * sizeof(std::uint32_t)))
          << threads << " threads, rep " << rep;
      EXPECT_EQ(order, base_order)
          << "delivery order drifted at " << threads << " threads";
    }
  }
}

TEST(AsyncDeterminism, CpuBlockedAsyncMatchesBlockedForAnyPoolSize) {
  const auto a = io::random_bitmatrix(70, 1537, 0.5, 7);
  const auto b = io::random_bitmatrix(133, 1537, 0.3, 8);
  for (const auto op :
       {Comparison::kAnd, Comparison::kXor, Comparison::kAndNot}) {
    const auto expected = cpu::compare_blocked(a, b, op);
    for (const std::size_t threads :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      exec::ThreadPool pool(threads);
      const auto got = cpu::compare_blocked_async(a, b, op, pool);
      EXPECT_TRUE(got == expected)
          << to_string(op) << " with " << threads << " threads";
    }
  }
}

TEST(AsyncDeterminism, StreamingMixtureMatchesAcrossThreadCounts) {
  const auto profiles = io::random_bitmatrix(260, 320, 0.4, 77);
  const auto mixtures = io::random_bitmatrix(4, 320, 0.8, 78);
  Context ctx = Context::gpu("gtx980");
  ComputeOptions serial;
  serial.chunk_rows = 48;
  const auto base =
      ctx.mixture_analysis_streaming(profiles, mixtures, 40, serial);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ComputeOptions async = serial;
    async.threads = threads;
    const auto got =
        ctx.mixture_analysis_streaming(profiles, mixtures, 40, async);
    EXPECT_EQ(got.included, base.included) << threads << " threads";
  }
}

TEST(AsyncConformance, ExceptionInChunkCallbackPropagates) {
  const auto a = io::random_bitmatrix(4, 256, 0.5, 9);
  const auto b = io::random_bitmatrix(200, 256, 0.5, 10);
  Context ctx = Context::gpu("gtx980");
  ComputeOptions opts;
  opts.chunk_rows = 32;
  opts.threads = 2;
  int fired = 0;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView&) {
    if (++fired == 2) {
      throw std::runtime_error("downstream consumer failed");
    }
  };
  EXPECT_THROW(ctx.compare(a, b, bits::Comparison::kXor, opts),
               std::runtime_error);
}

// Telemetry contract for the chunk pipeline: chunk_events arrive in
// stream order (index i at slot i, row ranges tiling the streamed
// operand) and their simulated timestamps are monotone — each engine
// (h2d, kernel, d2h) is an in-order FIFO and every chunk's stages are
// causally ordered. The async host stamps must respect the task-graph
// dependencies (pack -> execute -> drain, drains chained in order).
TEST(AsyncConformance, ChunkEventsStreamOrderedWithMonotonicTimestamps) {
  const auto a = io::random_bitmatrix(5, 384, 0.5, 13);
  const auto b = io::random_bitmatrix(310, 384, 0.5, 14);
  Context ctx = Context::gpu("gtx980");
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    ComputeOptions opts;
    opts.chunk_rows = 32;
    opts.threads = threads;
    const auto r = ctx.compare(a, b, Comparison::kXor, opts);
    const auto& evs = r.timing.chunk_events;
    ASSERT_GT(evs.size(), 1u) << "want a multi-chunk workload";
    std::size_t next_row = 0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const auto& e = evs[i];
      EXPECT_EQ(e.index, i) << "chunk out of stream order";
      EXPECT_EQ(e.row0, next_row) << "row ranges must tile the operand";
      ASSERT_GT(e.rows, 0u);
      next_row += e.rows;

      // Within a chunk the simulated stages are causally ordered.
      EXPECT_LE(e.h2d_start, e.h2d_end);
      EXPECT_LE(e.h2d_end, e.kernel_start) << "kernel before its upload";
      EXPECT_LE(e.kernel_start, e.kernel_end);
      EXPECT_LE(e.kernel_end, e.d2h_start) << "readback before kernel";
      EXPECT_LE(e.d2h_start, e.d2h_end);
      if (i > 0) {
        // Each simulated engine is an in-order FIFO.
        const auto& p = evs[i - 1];
        EXPECT_GE(e.h2d_start, p.h2d_end) << "h2d engine overlap";
        EXPECT_GE(e.kernel_start, p.kernel_end) << "kernel engine overlap";
        EXPECT_GE(e.d2h_start, p.d2h_end) << "d2h engine overlap";
      }
      if (threads > 0) {
        // Host wall-clock stamps follow the task-graph dependencies.
        EXPECT_LE(e.host_queued, e.host_pack_start);
        EXPECT_LE(e.host_pack_start, e.host_pack_end);
        EXPECT_LE(e.host_pack_end, e.host_exec_start);
        EXPECT_LE(e.host_exec_start, e.host_exec_end);
        EXPECT_LE(e.host_exec_end, e.host_drain_start);
        EXPECT_LE(e.host_drain_start, e.host_drain_end);
        if (i > 0) {
          EXPECT_GE(e.host_drain_start, evs[i - 1].host_drain_end)
              << "drains must run in stream order";
        }
      }
    }
    EXPECT_EQ(next_row, b.rows()) << "chunks must cover every row once";
  }
}

TEST(AsyncConformance, MaxInflightOneStillCorrect) {
  const auto a = io::random_bitmatrix(5, 192, 0.5, 11);
  const auto b = io::random_bitmatrix(180, 192, 0.5, 12);
  Context ctx = Context::gpu("gtx980");
  const auto expected = bits::compare_reference(a, b, Comparison::kAnd);
  ComputeOptions opts;
  opts.chunk_rows = 16;
  opts.threads = 4;
  opts.max_inflight_chunks = 1;
  const auto got = ctx.compare(a, b, Comparison::kAnd, opts);
  EXPECT_TRUE(got.counts == expected);
}

}  // namespace
}  // namespace snp
