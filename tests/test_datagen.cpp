// Synthetic dataset generators: MAF spectra, LD blocks, profile databases,
// planted queries, mixtures.
#include "io/datagen.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snp::io {
namespace {

TEST(DrawMaf, RespectsBounds) {
  PopulationParams p;
  p.spectrum = MafSpectrum::kUniform;
  p.maf_min = 0.05;
  p.maf_max = 0.4;
  for (const double m : draw_maf(1000, p)) {
    EXPECT_GE(m, 0.05);
    EXPECT_LE(m, 0.4);
  }
}

TEST(DrawMaf, FixedSpectrum) {
  PopulationParams p;
  p.spectrum = MafSpectrum::kFixed;
  p.maf_mean = 0.17;
  for (const double m : draw_maf(10, p)) {
    EXPECT_DOUBLE_EQ(m, 0.17);
  }
}

TEST(DrawMaf, UShapedSkewsRare) {
  PopulationParams p;
  p.spectrum = MafSpectrum::kUShaped;
  const auto maf = draw_maf(5000, p);
  double mean = 0.0;
  for (const double m : maf) {
    mean += m;
  }
  mean /= static_cast<double>(maf.size());
  // E[min + span*u^3] = min + span/4 ~= 0.1325 for [0.01, 0.5].
  EXPECT_NEAR(mean, 0.1325, 0.02);
}

TEST(DrawMaf, RejectsBadBounds) {
  PopulationParams p;
  p.maf_min = 0.4;
  p.maf_max = 0.2;
  EXPECT_THROW((void)draw_maf(1, p), std::invalid_argument);
  p.maf_min = 0.1;
  p.maf_max = 0.7;
  EXPECT_THROW((void)draw_maf(1, p), std::invalid_argument);
}

TEST(GenerateGenotypes, DosagesInRangeAndReproducible) {
  PopulationParams p;
  p.seed = 5;
  const auto g1 = generate_genotypes(50, 80, p);
  const auto g2 = generate_genotypes(50, 80, p);
  for (std::size_t l = 0; l < 50; ++l) {
    for (std::size_t s = 0; s < 80; ++s) {
      EXPECT_LE(g1.at(l, s), 2);
      EXPECT_EQ(g1.at(l, s), g2.at(l, s));
    }
  }
}

TEST(GenerateGenotypes, HardyWeinbergFrequency) {
  PopulationParams p;
  p.spectrum = MafSpectrum::kFixed;
  p.maf_mean = 0.25;
  p.seed = 6;
  const auto g = generate_genotypes(200, 500, p);
  double mean_maf = 0.0;
  for (std::size_t l = 0; l < g.loci(); ++l) {
    mean_maf += g.maf(l);
  }
  mean_maf /= static_cast<double>(g.loci());
  EXPECT_NEAR(mean_maf, 0.25, 0.01);
}

TEST(GenerateGenotypes, LdBlocksCorrelateAdjacentLoci) {
  PopulationParams p;
  p.spectrum = MafSpectrum::kFixed;
  p.maf_mean = 0.5;  // maximal variance makes correlation visible
  p.ld_block_len = 10;
  p.ld_copy = 0.95;
  p.seed = 7;
  const auto g = generate_genotypes(100, 400, p);
  // Within-block adjacent loci should agree far more often than chance.
  std::size_t agree = 0, total = 0;
  for (std::size_t l = 1; l < g.loci(); ++l) {
    if (l % p.ld_block_len == 0) {
      continue;  // block boundary
    }
    for (std::size_t s = 0; s < g.samples(); ++s) {
      agree += g.at(l, s) == g.at(l - 1, s) ? 1u : 0u;
      ++total;
    }
  }
  const double rate = static_cast<double>(agree) /
                      static_cast<double>(total);
  EXPECT_GT(rate, 0.9);  // chance agreement for HWE at maf 0.5 is 0.375
}

TEST(ProfileDb, ShapeDensityAndDeterminism) {
  ProfileDbParams p;
  p.spectrum = MafSpectrum::kFixed;
  p.maf_mean = 0.2;
  const auto db1 = generate_profile_db(100, 512, p);
  const auto db2 = generate_profile_db(100, 512, p);
  EXPECT_EQ(db1, db2);
  EXPECT_EQ(db1.rows(), 100u);
  EXPECT_EQ(db1.bit_cols(), 512u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < db1.rows(); ++r) {
    total += db1.row_popcount(r);
  }
  const double density = static_cast<double>(total) / (100.0 * 512.0);
  EXPECT_NEAR(density, 0.2, 0.02);
  EXPECT_TRUE(db1.padding_is_zero());
}

TEST(ExtractQueries, CopiesExactRows) {
  const auto db = random_bitmatrix(20, 300, 0.5, 31);
  const auto q = extract_queries(db, {3, 17, 0});
  EXPECT_EQ(q.rows(), 3u);
  EXPECT_EQ(q.row_slice(0, 1), db.row_slice(3, 4));
  EXPECT_EQ(q.row_slice(1, 2), db.row_slice(17, 18));
  EXPECT_EQ(q.row_slice(2, 3), db.row_slice(0, 1));
  EXPECT_THROW((void)extract_queries(db, {20}), std::out_of_range);
}

TEST(Mixtures, UnionOfContributors) {
  const auto db = random_bitmatrix(30, 200, 0.3, 41);
  const auto mix = generate_mixtures(db, 5, 3, 42);
  EXPECT_EQ(mix.mixtures.rows(), 5u);
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(mix.contributors[m].size(), 3u);
    // Every contributor bit is present in the mixture: |r & ~mix| == 0.
    for (const std::size_t c : mix.contributors[m]) {
      for (std::size_t k = 0; k < 200; ++k) {
        EXPECT_TRUE(!db.get(c, k) || mix.mixtures.get(m, k));
      }
    }
  }
  EXPECT_THROW((void)generate_mixtures(bits::BitMatrix(), 1, 1, 1),
               std::invalid_argument);
}

TEST(RandomBitMatrix, DensityAndFastPathAgreeStatistically) {
  const auto dense = random_bitmatrix(50, 1000, 0.5, 51);
  std::size_t total = 0;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    total += dense.row_popcount(r);
  }
  EXPECT_NEAR(static_cast<double>(total) / 50000.0, 0.5, 0.02);
  const auto sparse = random_bitmatrix(50, 1000, 0.05, 52);
  total = 0;
  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    total += sparse.row_popcount(r);
  }
  EXPECT_NEAR(static_cast<double>(total) / 50000.0, 0.05, 0.01);
  EXPECT_TRUE(dense.padding_is_zero());
  EXPECT_TRUE(sparse.padding_is_zero());
}

}  // namespace
}  // namespace snp::io
