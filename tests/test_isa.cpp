// Mini-IR: builders, instruction classes, register accounting.
#include "sim/isa.hpp"

#include <gtest/gtest.h>

namespace snp::sim {
namespace {

TEST(Isa, InstrClassMapping) {
  EXPECT_EQ(instr_class(Opcode::kAnd), model::InstrClass::kLogic);
  EXPECT_EQ(instr_class(Opcode::kXor), model::InstrClass::kLogic);
  EXPECT_EQ(instr_class(Opcode::kAndn), model::InstrClass::kLogic);
  EXPECT_EQ(instr_class(Opcode::kNot), model::InstrClass::kLogic);
  EXPECT_EQ(instr_class(Opcode::kMov), model::InstrClass::kLogic);
  EXPECT_EQ(instr_class(Opcode::kAdd), model::InstrClass::kAdd);
  EXPECT_EQ(instr_class(Opcode::kPopc), model::InstrClass::kPopc);
  EXPECT_EQ(instr_class(Opcode::kLds), model::InstrClass::kMem);
  EXPECT_EQ(instr_class(Opcode::kLdg), model::InstrClass::kMem);
  EXPECT_EQ(instr_class(Opcode::kStg), model::InstrClass::kMem);
}

TEST(Isa, OpcodeNames) {
  EXPECT_EQ(to_string(Opcode::kPopc), "POPC");
  EXPECT_EQ(to_string(Opcode::kAndn), "ANDN");
  EXPECT_EQ(to_string(Opcode::kLds), "LDS");
}

TEST(Isa, DependentChainShape) {
  const Program p = dependent_chain(Opcode::kPopc, 8, 100);
  ASSERT_EQ(p.body.size(), 8u);
  EXPECT_EQ(p.iterations, 100u);
  // Every body instruction reads the register it writes (the chain).
  for (const auto& in : p.body) {
    EXPECT_EQ(in.op, Opcode::kPopc);
    EXPECT_EQ(in.dst, 0);
    EXPECT_EQ(in.src1, 0);
  }
  // Prologue loads the seed value; epilogue stores it (defeats DCE).
  ASSERT_FALSE(p.prologue.empty());
  EXPECT_EQ(p.prologue[0].op, Opcode::kLdg);
  ASSERT_FALSE(p.epilogue.empty());
  EXPECT_EQ(p.epilogue[0].op, Opcode::kStg);
  EXPECT_EQ(p.dynamic_instructions(), 1u + 8u * 100u + 1u);
}

TEST(Isa, DependentChainBinaryOpGetsSecondSource) {
  const Program p = dependent_chain(Opcode::kAnd, 4, 10);
  for (const auto& in : p.body) {
    EXPECT_EQ(in.src2, 1);
  }
  EXPECT_EQ(p.prologue.size(), 2u);
}

TEST(Isa, IndependentStreamsAreIndependent) {
  const Program p = independent_streams(Opcode::kAdd, 4, 3, 10);
  EXPECT_EQ(p.body.size(), 12u);
  // Stream s only ever touches register s.
  for (std::size_t i = 0; i < p.body.size(); ++i) {
    EXPECT_EQ(p.body[i].dst, static_cast<int>(i % 4));
    EXPECT_EQ(p.body[i].src1, static_cast<int>(i % 4));
  }
}

TEST(Isa, InterleavedPairAlternates) {
  const Program p = interleaved_pair(Opcode::kPopc, Opcode::kAdd, 6, 10);
  ASSERT_EQ(p.body.size(), 12u);
  for (std::size_t i = 0; i < p.body.size(); i += 2) {
    EXPECT_EQ(p.body[i].op, Opcode::kPopc);
    EXPECT_EQ(p.body[i + 1].op, Opcode::kAdd);
  }
}

TEST(Isa, StridedLdsCarriesStride) {
  const Program p = strided_lds(7, 4, 10);
  for (const auto& in : p.body) {
    EXPECT_EQ(in.op, Opcode::kLds);
    EXPECT_EQ(in.imm, 7);
  }
}

TEST(Isa, BuildersRejectBadArguments) {
  EXPECT_THROW((void)dependent_chain(Opcode::kPopc, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)independent_streams(Opcode::kAdd, 0, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)interleaved_pair(Opcode::kAdd, Opcode::kAnd, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)strided_lds(-1, 1, 1), std::invalid_argument);
}

TEST(Isa, MaxRegister) {
  const Program p = independent_streams(Opcode::kAnd, 4, 2, 1);
  EXPECT_EQ(p.max_register(), 4);  // streams 0..3 plus shared source 4
  Program empty;
  EXPECT_EQ(empty.max_register(), -1);
}

}  // namespace
}  // namespace snp::sim
