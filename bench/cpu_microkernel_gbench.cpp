// google-benchmark harness for the real (natively executed) CPU engine —
// the Section III baseline. Measures the blocked popcount-GEMM throughput
// of this machine for each comparison operation and a packing-cost probe.
// Unlike the figure benches (which model the paper's Xeon), these numbers
// are real wall-clock measurements of the host CPU.
#include <benchmark/benchmark.h>

#include "bits/compare.hpp"
#include "cpu/engine.hpp"
#include "io/datagen.hpp"

namespace {

using snp::bits::Comparison;

void bench_compare(benchmark::State& state, Comparison op) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k_bits = static_cast<std::size_t>(state.range(1));
  const auto a = snp::io::random_bitmatrix(m, k_bits, 0.5, 1);
  const auto b = snp::io::random_bitmatrix(m, k_bits, 0.5, 2);
  for (auto _ : state) {
    auto c = snp::cpu::compare_blocked(a, b, op);
    benchmark::DoNotOptimize(c.raw().data());
  }
  const double wordops =
      static_cast<double>(m) * static_cast<double>(m) *
      static_cast<double>(snp::bits::ceil_div(k_bits, 32));
  state.counters["Gwordops/s"] = benchmark::Counter(
      wordops * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_CpuAnd(benchmark::State& state) {
  bench_compare(state, Comparison::kAnd);
}
void BM_CpuXor(benchmark::State& state) {
  bench_compare(state, Comparison::kXor);
}
void BM_CpuAndNot(benchmark::State& state) {
  bench_compare(state, Comparison::kAndNot);
}

BENCHMARK(BM_CpuAnd)->Args({256, 4096})->Args({512, 8192});
BENCHMARK(BM_CpuXor)->Args({256, 4096});
BENCHMARK(BM_CpuAndNot)->Args({256, 4096});

void BM_ReferenceAnd(benchmark::State& state) {
  // The unblocked reference, to show what the BLIS-like blocking buys.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k_bits = static_cast<std::size_t>(state.range(1));
  const auto a = snp::io::random_bitmatrix(m, k_bits, 0.5, 3);
  const auto b = snp::io::random_bitmatrix(m, k_bits, 0.5, 4);
  for (auto _ : state) {
    auto c = snp::bits::compare_reference(a, b, Comparison::kAnd);
    benchmark::DoNotOptimize(c.raw().data());
  }
}
BENCHMARK(BM_ReferenceAnd)->Args({256, 4096});

void BM_Encode(benchmark::State& state) {
  // Genotype packing cost (the host-side "pack" stage of the pipeline).
  const auto loci = static_cast<std::size_t>(state.range(0));
  snp::io::PopulationParams p;
  const auto g = snp::io::generate_genotypes(loci, 1024, p);
  for (auto _ : state) {
    auto m = snp::bits::encode(g, snp::bits::EncodingPlane::kPresence);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_Encode)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
