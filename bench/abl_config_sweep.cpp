// Ablation: sensitivity of kernel throughput to the four configuration
// parameters around each device's Table II preset — the quantitative case
// for the paper's analytical derivation (Eqs. 4-7) and for the §V-E
// observation that losing a little shared memory (k_c 384 -> 383) is
// inconsequential.
#include <cstdio>
#include <limits>

#include "bench_util.hpp"
#include "sim/timing.hpp"

namespace {

double gops_for(const snp::model::GpuSpec& dev,
                const snp::model::KernelConfig& cfg) {
  const auto check = snp::model::validate(cfg, dev);
  if (!check.ok) {
    return -1.0;  // invalid configuration
  }
  const snp::sim::KernelShape shape{8192, 8192,
                                    static_cast<std::size_t>(cfg.k_c)};
  return snp::sim::estimate_kernel(dev, cfg, snp::bits::Comparison::kAnd,
                                   shape)
      .gops;
}

void print_row(const char* label, double gops, double base) {
  if (gops < 0.0) {
    std::printf("  %-24s | %12s\n", label, "invalid cfg");
  } else {
    std::printf("  %-24s | %8.1f G/s | %+5.1f%%\n", label, gops,
                100.0 * (gops / base - 1.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- configuration sensitivity around the Table II "
               "presets");

  bench::CsvWriter csv("abl_config_sweep");
  csv.row("device", "variant", bench::stats_cols("gops"));
  bench::JsonWriter json("abl_config_sweep", argc, argv);
  json.set_primary("gops", /*lower_better=*/false);
  json.header("device", "variant", bench::stats_cols("gops"));

  for (const auto& dev : model::all_gpus()) {
    const auto preset = model::paper_preset(dev, model::WorkloadKind::kLd);
    const double base = gops_for(dev, preset);
    bench::section(dev.name + "  preset " + preset.to_string());

    // Emit a stats row for one variant: invalid configurations (gops < 0)
    // become null cells via a NaN median so the document stays parseable.
    const auto emit = [&](const char* label,
                          const model::KernelConfig& cfg) {
      const double gops = gops_for(dev, cfg);
      print_row(label, gops, base);
      if (gops < 0.0) {
        obs::Summary invalid;
        invalid.median = std::numeric_limits<double>::quiet_NaN();
        invalid.ci_lo = invalid.median;
        invalid.ci_hi = invalid.median;
        csv.row(dev.name, label, invalid);
        json.row(dev.name, label, invalid);
        return;
      }
      const auto st =
          bench::measure([&] { return gops_for(dev, cfg); });
      csv.row(dev.name, label, st);
      json.row(dev.name, label, st);
    };

    emit("preset", preset);

    // k_c: the shared-memory reservation effect (§V-E): one word fewer is
    // negligible; a quarter of the tile is not.
    auto cfg = preset;
    cfg.k_c = preset.k_c - 1;
    emit("k_c - 1 (reservation)", cfg);
    cfg = preset;
    cfg.k_c = preset.k_c / 2;
    emit("k_c / 2", cfg);

    // n_r: below the preset (less latency hiding / reuse), and the Eq. 7
    // lower bound.
    cfg = preset;
    cfg.n_r = model::n_r_lower_bound(dev, preset.m_r, preset.m_c);
    emit("n_r = Eq.7 lower bound", cfg);

    // m_c: the Eq. 5-as-printed value (8) vs the Table II value (32).
    cfg = preset;
    cfg.m_c = model::m_c_eq5(dev);
    cfg.k_c = preset.k_c;  // same depth; smaller tile
    emit("m_c = Eq.5 (N_b/N_cl)", cfg);

    // Grid: all cores on one dimension vs the preset split.
    cfg = preset;
    cfg.grid = {1, dev.n_cores};
    emit("grid 1 x N_c", cfg);
    cfg = preset;
    cfg.grid = {dev.n_cores, 1};
    emit("grid N_c x 1", cfg);
  }
  std::printf("\n  (k_c - 1 is the NVIDIA shared-memory reservation of "
              "Section V-E: 'the impact\n   ... is minimized since the "
              "reduced shared memory means reducing k_c by 1'.)\n\n");
  return 0;
}
