// Table II reproduction: software configuration parameters per device and
// workload — the paper's shipped presets next to the values our
// implementation of the Section V-A analytical derivation (Eqs. 4-7)
// produces, plus the per-equation intermediates and validation verdicts.
#include <cstdio>

#include "bench_util.hpp"
#include "model/config.hpp"

int main() {
  using namespace snp;
  bench::title("TABLE II -- software configuration (paper preset vs "
               "analytical derivation)");

  for (const auto kind :
       {model::WorkloadKind::kLd, model::WorkloadKind::kFastId}) {
    bench::section(kind == model::WorkloadKind::kLd
                       ? "Linkage disequilibrium"
                       : "FastID");
    std::printf("  %-8s | %-28s | %-28s\n", "GPU", "paper preset (Table II)",
                "derived (Eqs. 4-7)");
    for (const auto& dev : model::all_gpus()) {
      const auto preset = model::paper_preset(dev, kind);
      const auto derived = model::derive(dev, kind);
      std::printf("  %-8s | %-28s | %-28s\n", dev.name.c_str(),
                  preset.to_string().c_str(), derived.to_string().c_str());
      const auto vp = model::validate(preset, dev);
      const auto vd = model::validate(derived, dev);
      if (!vp.ok || !vd.ok) {
        std::printf("           ! validation: preset %s / derived %s\n",
                    vp.ok ? "ok" : vp.reason.c_str(),
                    vd.ok ? "ok" : vd.reason.c_str());
      }
    }
  }

  bench::section("per-equation intermediates");
  for (const auto& dev : model::all_gpus()) {
    const auto preset = model::paper_preset(dev, model::WorkloadKind::kLd);
    std::printf("  %-8s  Eq.4 m_r = N_vec = %d\n", dev.name.c_str(),
                dev.n_vec);
    std::printf("            Eq.5 as printed: N_b/N_cl = %d  (Table II "
                "uses N_b = %d; see DESIGN.md)\n",
                model::m_c_eq5(dev), dev.banks);
    std::printf("            Eq.6 k_c = (N_shared - reserved)/(4*N_b) = "
                "(%zu - %zu)/(4*%d) = %d\n",
                dev.shared_bytes, dev.shared_reserved, dev.banks,
                preset.k_c);
    std::printf("            Eq.7 n_r >= (N_T*m_r/m_c)*N_vec*L_fn = %d; "
                "register bound <= %d; preset uses %d\n",
                model::n_r_lower_bound(dev, preset.m_r, preset.m_c),
                model::n_r_upper_bound(dev, preset.m_r, preset.m_c),
                preset.n_r);
    std::printf("            occupancy: N_cl*L_fn = %d groups/core (device "
                "limit %d); accumulators/thread = %d\n",
                preset.groups_per_core(dev), dev.n_grp_max,
                preset.accumulators_per_thread(dev));
  }
  std::printf("\n");
  return 0;
}
