// Ablation (beyond the paper): host-side asynchronous chunk pipeline.
//
// The paper's device overlaps transfer with compute (Section VI-A); this
// bench measures the *host* analogue — ComputeOptions::threads schedules
// pack -> execute -> drain per chunk on the exec thread pool instead of
// the serial legacy loop. Functional runs only (real wall-clock of real
// work): identity search of 32 queries against a synthetic 1 M-profile
// database, streamed in chunks, results folded through a chunk callback
// in bounded memory. On a multi-core host the async pipeline overlaps
// chunk packing and result draining with the popcount kernel; the
// speedup column is serial / async wall time (expect >= 2x at 8 threads
// on an 8-way host; a single-core host shows ~1x — correctness and
// determinism are covered by tests/test_async_conformance.cpp).
//
// SNP_ABL_ASYNC_PROFILES overrides the database size for quick runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "bench_util.hpp"
#include "core/snpcmp.hpp"
#include "exec/thread_pool.hpp"
#include "io/datagen.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- async host pipeline vs serial chunk loop");

  std::size_t profiles = 1'000'000;
  if (const char* env = std::getenv("SNP_ABL_ASYNC_PROFILES")) {
    profiles = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  constexpr std::size_t kQueries = 32;
  constexpr std::size_t kSnps = 256;
  const std::size_t hw = exec::ThreadPool::hardware_threads();
  std::printf("\n  %zu queries x %zu profiles x %zu SNPs, functional, "
              "%zu hardware threads\n",
              kQueries, profiles, kSnps, hw);

  const auto queries = io::random_bitmatrix(kQueries, kSnps, 0.5, 1);
  const auto db = io::random_bitmatrix(profiles, kSnps, 0.5, 2);

  Context ctx = Context::gpu("titanv");
  bench::CsvWriter csv("abl_async");
  csv.row("threads", bench::stats_cols("wall_s"), "speedup", "chunks");
  bench::JsonWriter json("abl_async", argc, argv);
  json.set_primary("wall_s", /*lower_better=*/true);
  json.header("threads", bench::stats_cols("wall_s"), "speedup", "chunks");

  // Real wall-clock work: keep the repetition floor low so the bench
  // stays affordable, and let the CI width report the observed noise.
  auto policy = bench::bench_policy();
  policy.min_reps = std::min<std::size_t>(policy.min_reps, 3);

  // Streamed fold keeps host memory bounded (no 32 x 1M gamma matrix);
  // the checksum defeats dead-code elimination and pins bit-identity.
  const auto run = [&](std::size_t threads, std::uint64_t* checksum,
                       int* chunks) {
    ComputeOptions opts;
    opts.functional = true;
    opts.keep_counts = false;
    opts.threads = threads;
    std::uint64_t sum = 0;
    opts.chunk_callback = [&sum](const ComputeOptions::ChunkView& v) {
      for (std::size_t i = 0; i < v.part.rows(); ++i) {
        sum += v.part.at(i, 0) + v.part.at(i, v.part.cols() - 1);
      }
    };
    const auto r = ctx.compare(queries, db, bits::Comparison::kXor, opts);
    *checksum = sum;
    *chunks = r.timing.chunks;
  };

  std::uint64_t base_sum = 0;
  int chunks = 0;
  const auto serial_stats = bench::measure(
      [&] { return wall_seconds([&] { run(0, &base_sum, &chunks); }); },
      policy);
  const double serial_s = serial_stats.median;
  std::printf("\n  %-10s %12s %9s   (%d chunks)\n", "mode", "wall", "vs serial",
              chunks);
  std::printf("  %-10s %s %8s\n", "serial",
              bench::fmt_summary(serial_stats).c_str(), "1.00x");
  csv.row(0, serial_stats, 1.0, chunks);
  json.row(0, serial_stats, 1.0, chunks);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    std::uint64_t sum = 0;
    int ch = 0;
    const auto async_stats = bench::measure(
        [&] { return wall_seconds([&] { run(threads, &sum, &ch); }); },
        policy);
    const double async_s = async_stats.median;
    char label[32];
    std::snprintf(label, sizeof label, "async x%zu", threads);
    std::printf("  %-10s %s %7.2fx%s\n", label,
                bench::fmt_summary(async_stats).c_str(), serial_s / async_s,
                sum == base_sum ? "" : "  CHECKSUM MISMATCH");
    csv.row(threads, async_stats, serial_s / async_s, ch);
    json.row(threads, async_stats, serial_s / async_s, ch);
  }

  std::printf("\n  (Identical checksums across rows = the async pipeline "
              "is bit-identical to\n   the serial loop; the speedup is the "
              "host overlap of pack/drain with the\n   functional kernel, "
              "so it saturates around the hardware thread count.)\n\n");
  return 0;
}
