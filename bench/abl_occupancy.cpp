// Ablation: occupancy vs throughput for the *actual* kernel inner loop on
// the cycle-level simulator (paper Section V-E and Volkov's "better
// performance at lower occupancy"). The framework deliberately limits
// resident thread groups to N_cl x L_fn per core; this bench shows that
// policy reaching the throughput plateau on every device, and quantifies
// what a single group per cluster (latency exposed) loses.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "kern/kernel_program.hpp"
#include "model/peak.hpp"
#include "sim/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- occupancy vs throughput (cycle-level kernel "
               "inner loop)");

  bench::CsvWriter csv("abl_occupancy");
  csv.row("device", "groups", bench::stats_cols("wordops_per_cycle"),
          "pct_of_bound");
  bench::JsonWriter json("abl_occupancy", argc, argv);
  json.set_primary("wordops_per_cycle", /*lower_better=*/false);
  json.header("device", "groups", bench::stats_cols("wordops_per_cycle"),
              "pct_of_bound");

  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const auto info = kern::build_kernel_program(
        dev, cfg, bits::Comparison::kAnd, /*k_iterations=*/64,
        /*unroll=*/4);
    const sim::CoreSim core(dev);
    const double analytic =
        model::cluster_rate(dev,
                            model::kernel_mix(dev, bits::Comparison::kAnd))
            .wordops_per_cycle *
        dev.n_clusters;
    const int policy = std::min(
        dev.n_clusters * dev.groups_per_cluster(), dev.n_grp_max);

    bench::section(dev.name + "  (analytic bound " +
                   std::to_string(static_cast<int>(analytic)) +
                   " word-ops/cycle/core; policy occupancy " +
                   std::to_string(policy) + " groups)");
    std::printf("  %8s | %14s | %10s\n", "groups", "word-ops/cycle",
                "% of bound");
    for (int groups = dev.n_clusters; groups <= dev.n_grp_max;
         groups += dev.n_clusters) {
      const auto stats = core.run(info.program, groups);
      const double ops =
          static_cast<double>(info.wordops_per_iteration *
                              info.program.iterations) *
          groups;
      const double rate = ops / static_cast<double>(stats.cycles);
      const auto st = bench::measure([&] {
        return ops /
               static_cast<double>(core.run(info.program, groups).cycles);
      });
      std::printf("  %8d | %14.2f | %9.1f%%%s\n", groups, rate,
                  100.0 * rate / analytic,
                  groups == policy ? "   <-- framework occupancy" : "");
      csv.row(dev.name, groups, st, 100.0 * rate / analytic);
      json.row(dev.name, groups, st, 100.0 * rate / analytic);
    }
  }
  std::printf("\n  (The plateau at or before N_cl x L_fn groups is the "
              "model's occupancy claim;\n   beyond it extra groups add "
              "register pressure for no throughput -- the\n   Volkov "
              "argument the paper cites for capping occupancy.)\n\n");
  return 0;
}
