// Figure 5 reproduction: LD kernel throughput vs the number of SNP strings
// (the inner/dot-product dimension), with the SNP count (output dimension)
// fixed near each device's maximum — 15,360 (GTX 980), 25,600 (Titan V),
// 40,960 (Vega 64), set by fitting the output matrix into the device's max
// allocation. The strings axis sweeps to the one-tile maximum (k_c * 32 =
// 12,256 bits on the NVIDIA parts, 16,384 on Vega).
//
// Paper targets at the right edge: 90.7 % / 97.1 % / 54.9 % of each
// device's theoretical peak.
#include <cstdio>

#include "bench_util.hpp"
#include "model/peak.hpp"
#include "sim/timing.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("FIGURE 5 -- LD kernel throughput vs #SNP strings");
  bench::CsvWriter csv("fig5_ld_kernel");
  csv.row("device", "snp_strings", "gops", "pct_of_peak",
          bench::stats_cols("kernel_s"));
  bench::JsonWriter json("fig5_ld_kernel", argc, argv);
  json.set_primary("kernel_s", /*lower_better=*/true);
  json.header("device", "snp_strings", "gops", "pct_of_peak",
              bench::stats_cols("kernel_s"));

  struct Case {
    const char* name;
    std::size_t max_snps;
    std::size_t max_strings;
    double paper_pct;
  };
  const Case cases[] = {{"gtx980", 15360, 12256, 90.7},
                        {"titanv", 25600, 12256, 97.1},
                        {"vega64", 40960, 16384, 54.9}};

  for (const auto& c : cases) {
    const auto dev = model::gpu_by_name(c.name);
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const double peak =
        model::peak_wordops_per_s(dev, bits::Comparison::kAnd) / 1e9;
    bench::section(dev.name + "  (SNPs = " + std::to_string(c.max_snps) +
                   ", peak = " + std::to_string(static_cast<int>(peak)) +
                   " Gword-ops/s)");
    std::printf("  %10s | %12s | %10s | %10s\n", "strings", "Gword-ops/s",
                "% of peak", "kernel");
    for (std::size_t strings = 512; strings < c.max_strings;
         strings *= 2) {
      const std::size_t s = std::min(strings, c.max_strings);
      const sim::KernelShape shape{c.max_snps, c.max_snps,
                                   bits::ceil_div(s, 32)};
      const auto t =
          sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, shape);
      const auto st = bench::measure([&] {
        return sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, shape)
            .seconds;
      });
      std::printf("  %10zu | %12.1f | %9.1f%% | %s\n", s, t.gops,
                  t.pct_of_peak, bench::fmt_summary(st).c_str());
      csv.row(dev.name, s, t.gops, t.pct_of_peak, st);
      json.row(dev.name, s, t.gops, t.pct_of_peak, st);
    }
    // The exact right-edge point the paper quotes.
    const sim::KernelShape edge{c.max_snps, c.max_snps,
                                bits::ceil_div(c.max_strings, 32)};
    const auto t =
        sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, edge);
    const auto st = bench::measure([&] {
      return sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, edge)
          .seconds;
    });
    std::printf("  %10zu | %12.1f | %9.1f%% | %s   <-- paper: %.1f%%\n",
                c.max_strings, t.gops, t.pct_of_peak,
                bench::fmt_summary(st).c_str(), c.paper_pct);
    csv.row(dev.name, c.max_strings, t.gops, t.pct_of_peak, st);
    json.row(dev.name, c.max_strings, t.gops, t.pct_of_peak, st);
  }
  std::printf("\n");
  return 0;
}
