// Ablation: shared-memory bank conflicts (the paper's Eq. 5 motivation).
//
// The framework sizes m_c so that compute clusters hit distinct banks; a
// bad A-tile layout strides lanes across banks and serializes accesses.
// This bench measures, per device, (a) the analytical conflict factor per
// stride and (b) the measured slowdown of a shared-memory load loop on the
// cycle simulator — the two must agree, and odd strides must be free.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- shared-memory bank conflicts vs access stride");

  bench::CsvWriter csv("abl_bank_conflicts");
  csv.row("device", "stride", "model_factor",
          bench::stats_cols("slowdown"));
  bench::JsonWriter json("abl_bank_conflicts", argc, argv);
  json.set_primary("slowdown", /*lower_better=*/true);
  json.header("device", "stride", "model_factor",
              bench::stats_cols("slowdown"));

  for (const auto& dev : model::all_gpus()) {
    bench::section(dev.name + "  (" + std::to_string(dev.banks) +
                   " banks, N_T=" + std::to_string(dev.n_t) + ")");
    const sim::CoreSim core(dev);
    // Baseline: conflict-free stride-1 loads.
    const auto base_prog = sim::strided_lds(1, 16, 256);
    const auto base = core.run(base_prog, dev.n_clusters * 2).cycles;
    std::printf("  %8s | %14s | %16s\n", "stride", "model factor",
                "measured slowdown");
    for (const int stride : {0, 1, 2, 4, 8, 16, 32, 17, 33}) {
      const int factor = sim::bank_conflict_factor(dev, stride);
      const auto prog = sim::strided_lds(stride, 16, 256);
      const auto slowdown = bench::measure([&] {
        const auto cycles = core.run(prog, dev.n_clusters * 2).cycles;
        return static_cast<double>(cycles) / static_cast<double>(base);
      });
      std::printf("  %8d | %13dx | %15.2fx\n", stride, factor,
                  slowdown.median);
      csv.row(dev.name, stride, factor, slowdown);
      json.row(dev.name, stride, factor, slowdown);
    }
  }
  std::printf("\n  (Stride 0 is a broadcast; odd strides are conflict-free "
              "on %d banks; the\n   kernel's k-major A layout keeps the "
              "inner loop at stride 1.)\n\n",
              32);
  return 0;
}
