// Figure 8 reproduction: FastID identity search, end-to-end — 32 queries
// (the smallest query count that fills all shared-memory banks) against a
// database of more than 20 million profiles (sized after the FBI NDIS),
// for SNP counts 128 through 1024. The database streams through device
// memory in double-buffered chunks; on the GTX 980 the allocation limit
// forces many more chunks than on the larger-memory devices (paper
// Section VI-E-2).
#include <cstdio>

#include "bench_util.hpp"
#include "core/snpcmp.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("FIGURE 8 -- FastID: 32 queries vs 20 M profiles, "
               "end-to-end");

  constexpr std::size_t kQueries = 32;
  constexpr std::size_t kProfiles = 20'000'000;
  ComputeOptions opts;
  opts.functional = false;
  bench::CsvWriter csv("fig8_fastid");
  csv.row("snps", "device", bench::stats_cols("end_to_end_s"), "chunks");
  bench::JsonWriter json("fig8_fastid", argc, argv);
  json.set_primary("end_to_end_s", /*lower_better=*/true);
  json.header("snps", "device", bench::stats_cols("end_to_end_s"),
              "chunks");

  std::printf("\n  %6s", "SNPs");
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    std::printf(" | %-22s", name);
  }
  std::printf("\n");
  for (std::size_t snps = 128; snps <= 1024; snps *= 2) {
    std::printf("  %6zu", snps);
    for (const char* name : {"gtx980", "titanv", "vega64"}) {
      Context ctx = Context::gpu(name);
      const auto t = ctx.estimate(kQueries, kProfiles, snps,
                                  bits::Comparison::kXor, opts);
      const auto st = bench::measure([&] {
        return ctx
            .estimate(kQueries, kProfiles, snps, bits::Comparison::kXor,
                      opts)
            .end_to_end_s;
      });
      std::printf(" | %s (%3d ch)",
                  bench::fmt_time(t.end_to_end_s).c_str(), t.chunks);
      csv.row(snps, name, st, t.chunks);
      json.row(snps, name, st, t.chunks);
    }
    std::printf("\n");
  }

  bench::section("1024-SNP breakdown per device");
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context ctx = Context::gpu(name);
    const auto t = ctx.estimate(kQueries, kProfiles, 1024,
                                bits::Comparison::kXor, opts);
    std::printf("  %-8s init %s | h2d %s | kernel %s | d2h %s | total %s "
                "| hidden %s\n",
                name, bench::fmt_time(t.init_s).c_str(),
                bench::fmt_time(t.h2d_s).c_str(),
                bench::fmt_time(t.kernel_s).c_str(),
                bench::fmt_time(t.d2h_s).c_str(),
                bench::fmt_time(t.end_to_end_s).c_str(),
                bench::fmt_time(t.overlap_hidden_s).c_str());
  }
  std::printf("\n  (End-to-end time grows with SNP count: both the "
              "database transfer and the\n   kernel scale linearly; the "
              "result readback and init are constant.)\n\n");
  return 0;
}
