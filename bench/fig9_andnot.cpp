// Figure 9 reproduction: single-core throughput of the mixture-analysis
// kernel when the NOT executes inside the kernel (AND-NOT) versus the plain
// AND comparison, per device — plus the pre-negated-database lowering of
// Eq. 3. One core, as in the paper, to decouple the effect from
// scalability.
//
// Paper target shape: NVIDIA cards identical (the LOP3-style fused ANDN
// costs nothing); Vega 64 loses ~1/3 of throughput because NOT lands on
// the same VALU pipe as ADD and AND.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/timing.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("FIGURE 9 -- AND vs AND-NOT on 1 core (mixture analysis)");

  bench::CsvWriter csv("fig9_andnot");
  csv.row("device", "and_gops", bench::stats_cols("andnot_gops"),
          "prenegated_gops");
  bench::JsonWriter json("fig9_andnot", argc, argv);
  json.set_primary("andnot_gops", /*lower_better=*/false);
  json.header("device", "and_gops", bench::stats_cols("andnot_gops"),
              "prenegated_gops");
  std::printf("\n  %-8s | %10s | %10s | %12s | %s\n", "GPU", "AND",
              "AND-NOT", "pre-negated", "ANDNOT/AND");
  for (const auto& dev : model::all_gpus()) {
    auto cfg = model::paper_preset(dev, model::WorkloadKind::kFastId);
    cfg.grid = {1, 1};
    const sim::KernelShape shape{32, 16384,
                                 static_cast<std::size_t>(cfg.k_c)};
    const auto t_and =
        sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, shape);
    const auto t_andn =
        sim::estimate_kernel(dev, cfg, bits::Comparison::kAndNot, shape);
    const auto t_pre = sim::estimate_kernel(
        dev, cfg, bits::Comparison::kAndNot, shape, /*pre_negated=*/true);
    const auto st = bench::measure([&] {
      return sim::estimate_kernel(dev, cfg, bits::Comparison::kAndNot,
                                  shape)
          .gops;
    });
    std::printf("  %-8s | %6.1f G/s | %6.1f G/s | %8.1f G/s | %6.2fx  %s\n",
                dev.name.c_str(), t_and.gops, t_andn.gops, t_pre.gops,
                t_andn.gops / t_and.gops,
                dev.fused_andnot ? "(fused ANDN)" : "(separate NOT)");
    csv.row(dev.name, t_and.gops, st, t_pre.gops);
    json.row(dev.name, t_and.gops, st, t_pre.gops);
  }
  std::printf("\n  (Paper: no noticeable effect on the NVIDIA cards; "
              "throughput drops on the\n   Vega 64 because NOT shares the "
              "ADD/AND pipe. Pre-negating the database\n   restores full "
              "AND-rate on Vega -- the Eq. 3 simplification.)\n\n");
  return 0;
}
