// Ablation (beyond the paper): the price of always-on observability.
//
// PR 7 leaves the flight recorder recording on every serving hot path —
// enqueue, batch formation, chunk pack/execute/drain, resolution — on
// the claim that one append costs tens of nanoseconds and therefore
// disappears under real request work. This bench prices that claim with
// a same-binary A/B on the abl_service width-32 fixed-load drain: one
// arm runs the production default (flight recorder enabled), the other
// flips the runtime kill switch (FlightRecorder::set_enabled(false)),
// which leaves only the enabled-flag load at each call site. The span
// collector stays at its default (disabled) in both arms — --trace-out
// is an opt-in diagnostic, not an always-on path; what this bench prices
// is exactly what every production run pays.
//
// Design: the arms are *paired and interleaved*, not run back to back.
// One engine serves both; every pair times one flight-on drain and one
// flight-off drain adjacent in time (order alternating per pair), and
// the overhead estimate is summarized over the per-pair ratios. Arm-
// blocked runs of a millisecond-scale drain measure CPU-frequency and
// scheduler drift between the blocks (±8% swings either direction), not
// the nanosecond-scale appends; pairing cancels the drift.
//
// PR 8 adds a second always-on path: the per-request cost ledger
// (obs::CostLedger), which attributes every executed batch's totals to
// its member requests (integer splits + one mutex-guarded append per
// batch, plus the per-request queue/service clock reads). A second
// paired A/B arm prices it the same way — attribution on vs the
// runtime kill switch (CostLedger::set_attribution_enabled(false)) —
// with the flight recorder at its production default (on) in both arms,
// so each arm isolates exactly one knob.
//
// Reported: per-arm drain wall time and the paired overhead percentage
// with its CI. The acceptance gate for the PR is overhead < 2% (each
// arm); the bench reports rather than hard-fails, because on a noisy CI
// host the CI half-widths tell the real story — compare the intervals
// before believing a single percentage.
//
// SNP_ABL_SERVICE_QUERIES / SNP_ABL_SERVICE_PROFILES override the
// offered load, matching abl_service.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "io/datagen.hpp"
#include "obs/cost.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- always-on observability overhead (serve)");

  std::size_t profiles = 1024;
  std::size_t n_queries = 256;
  if (const char* env = std::getenv("SNP_ABL_SERVICE_PROFILES")) {
    profiles = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("SNP_ABL_SERVICE_QUERIES")) {
    n_queries = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  constexpr std::size_t kSnps = 256;
  constexpr std::size_t kWidth = 32;  // the abl_service SLO-gate config
  std::printf("\n  offered load: %zu queries x %zu resident profiles x "
              "%zu SNPs, xor, width %zu\n  obs build: %s; span collector "
              "disabled in both arms (opt-in diagnostic)\n",
              n_queries, profiles, kSnps, kWidth,
              obs::kEnabled ? "SNPCMP_OBS=ON" : "SNPCMP_OBS=OFF");

  const auto db = io::random_bitmatrix(profiles, kSnps, 0.5, 2);
  const auto queries = io::random_bitmatrix(n_queries, kSnps, 0.5, 1);

  bench::CsvWriter csv("abl_obs_overhead");
  csv.row("arm", bench::stats_cols("wall_s"), "qps", "overhead_pct");
  bench::JsonWriter json("abl_obs_overhead", argc, argv);
  // Primary is the per-arm wall time (with CI columns) rather than the
  // derived overhead_pct scalar: the regression gate needs the stats
  // triple, and a slowdown in either arm is what a regression looks like.
  json.set_primary("wall_s", /*lower_better=*/true);
  json.header("arm", bench::stats_cols("wall_s"), "qps", "overhead_pct");

  const auto policy = bench::bench_policy();

  svc::ServiceConfig cfg;
  cfg.device = "titanv";
  cfg.op = bits::Comparison::kXor;
  cfg.max_batch_rows = kWidth;
  cfg.max_queue = n_queries;
  cfg.cache_capacity = 0;  // measure compute, not cache hits
  cfg.start_paused = true;
  svc::ServiceEngine engine(db, cfg);

  // One rep = one fixed-load drain (pause, submit every query, resume,
  // drain) through the persistent engine above — the abl_service load
  // shape, with the engine (and its dispatcher/worker threads) living
  // for the whole run. A fresh engine per rep would re-pay each
  // thread's one-time flight-ring registration inside the timed window
  // and price engine construction, not the steady-state serving cost a
  // resident service actually pays.
  const auto rep = [&](std::uint64_t* checksum) {
    engine.pause();
    std::vector<std::future<svc::QueryResult>> futs;
    futs.reserve(n_queries);
    for (std::size_t q = 0; q < n_queries; ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine.resume();
    engine.drain();
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (auto& f : futs) {
      const auto r = f.get();
      sum += r.row.front() + r.row.back();
    }
    *checksum = sum;
    return std::chrono::duration<double>(t1 - t0).count();
  };

  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const auto timed = [&](bool flight_on, std::uint64_t* checksum) {
    flight.set_enabled(flight_on);
    const double s = rep(checksum);
    flight.set_enabled(true);  // restore the production default
    return s;
  };

  {  // warmup outside the measurement: registers every thread's ring
    std::uint64_t w = 0;
    (void)rep(&w);
  }

  std::vector<double> on_s, off_s, over_pct;
  std::uint64_t on_sum = 0, off_sum = 0;
  bool checksum_ok = true;
  const auto loop0 = std::chrono::steady_clock::now();
  for (std::size_t pair = 0;; ++pair) {
    // Alternate which arm leads so a cache/frequency advantage of
    // "whoever ran second" cannot masquerade as recorder cost.
    double a = 0.0, b = 0.0;
    if (pair % 2 == 0) {
      a = timed(true, &on_sum);
      b = timed(false, &off_sum);
    } else {
      b = timed(false, &off_sum);
      a = timed(true, &on_sum);
    }
    checksum_ok = checksum_ok && on_sum == off_sum;
    on_s.push_back(a);
    off_s.push_back(b);
    over_pct.push_back((a / b - 1.0) * 100.0);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loop0)
            .count();
    if (pair + 1 >= policy.min_reps &&
        (pair + 1 >= policy.max_reps || elapsed >= policy.time_budget_s)) {
      break;
    }
  }

  const obs::Summary on = obs::summarize(on_s, policy);
  const obs::Summary off = obs::summarize(off_s, policy);
  const obs::Summary over = obs::summarize(over_pct, policy);

  std::printf("\n  %-12s %14s %10s %10s\n", "arm", "wall", "qps",
              "overhead");
  struct Row {
    const char* name;
    const obs::Summary* wall;
    double overhead_pct;
  };
  const Row rows[] = {{"flight-on", &on, over.median},
                      {"flight-off", &off, 0.0}};
  for (const Row& r : rows) {
    const double qps = static_cast<double>(n_queries) / r.wall->median;
    std::printf("  %-12s %s %9.0f %9.2f%%%s\n", r.name,
                bench::fmt_summary(*r.wall).c_str(), qps, r.overhead_pct,
                checksum_ok ? "" : "  CHECKSUM MISMATCH");
    csv.row(r.name, *r.wall, qps, r.overhead_pct);
    json.row(r.name, *r.wall, qps, r.overhead_pct);
  }

  std::printf("\n  always-on flight recorder overhead: %+.2f%% "
              "(paired CI [%+.2f%%, %+.2f%%] over %zu pairs; acceptance "
              "gate: < 2%%)\n"
              "  (Per-pair interleaved A/B: drift cancels. A CI "
              "straddling 0 means the appends\n   vanished under request "
              "work.)\n\n",
              over.median, over.ci_lo, over.ci_hi, on_s.size());

  // ---- arm 2: per-request cost ledger (attribution on vs off) ----
  // Same paired-interleaved protocol; the flight recorder stays at its
  // production default (on) in both arms so this isolates only the
  // ledger: per-batch quantize + split_exact + mutex append, and the
  // per-request wall-clock bookkeeping in the accounting loop.
  const auto timed_ledger = [&](bool ledger_on, std::uint64_t* checksum) {
    obs::CostLedger::set_attribution_enabled(ledger_on);
    const double s = rep(checksum);
    obs::CostLedger::set_attribution_enabled(true);  // production default
    return s;
  };

  std::vector<double> lon_s, loff_s, lover_pct;
  std::uint64_t lon_sum = 0, loff_sum = 0;
  bool lchecksum_ok = true;
  const auto lloop0 = std::chrono::steady_clock::now();
  for (std::size_t pair = 0;; ++pair) {
    double a = 0.0, b = 0.0;
    if (pair % 2 == 0) {
      a = timed_ledger(true, &lon_sum);
      b = timed_ledger(false, &loff_sum);
    } else {
      b = timed_ledger(false, &loff_sum);
      a = timed_ledger(true, &lon_sum);
    }
    lchecksum_ok = lchecksum_ok && lon_sum == loff_sum;
    lon_s.push_back(a);
    loff_s.push_back(b);
    lover_pct.push_back((a / b - 1.0) * 100.0);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lloop0)
            .count();
    if (pair + 1 >= policy.min_reps &&
        (pair + 1 >= policy.max_reps || elapsed >= policy.time_budget_s)) {
      break;
    }
  }

  const obs::Summary lon = obs::summarize(lon_s, policy);
  const obs::Summary loff = obs::summarize(loff_s, policy);
  const obs::Summary lover = obs::summarize(lover_pct, policy);

  const Row lrows[] = {{"ledger-on", &lon, lover.median},
                       {"ledger-off", &loff, 0.0}};
  for (const Row& r : lrows) {
    const double qps = static_cast<double>(n_queries) / r.wall->median;
    std::printf("  %-12s %s %9.0f %9.2f%%%s\n", r.name,
                bench::fmt_summary(*r.wall).c_str(), qps, r.overhead_pct,
                lchecksum_ok ? "" : "  CHECKSUM MISMATCH");
    csv.row(r.name, *r.wall, qps, r.overhead_pct);
    json.row(r.name, *r.wall, qps, r.overhead_pct);
  }

  std::printf("\n  per-request cost ledger overhead: %+.2f%% "
              "(paired CI [%+.2f%%, %+.2f%%] over %zu pairs; acceptance "
              "gate: < 2%%)\n\n",
              lover.median, lover.ci_lo, lover.ci_hi, lon_s.size());
  return 0;
}
