// Extension bench (paper Section VII future work): multi-GPU scaling on a
// DGX-2-like box of simulated devices. Shards the FastID database (and an
// LD sequence panel) across 1..16 GPUs and reports end-to-end time, the
// dominant cost, and the optional device-side all-gather of results.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "multi/multi_gpu.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("EXTENSION -- multi-GPU scaling (DGX-2-like box)");

  bench::CsvWriter csv("abl_multigpu");
  csv.row("device", "devices", bench::stats_cols("end_to_end_s"),
          "speedup");
  bench::JsonWriter json("abl_multigpu", argc, argv);
  json.set_primary("end_to_end_s", /*lower_better=*/true);
  json.header("device", "devices", bench::stats_cols("end_to_end_s"),
              "speedup");

  multi::MultiGpuOptions opts;
  opts.per_device.functional = false;

  bench::section("FastID: 32 queries vs 80 M profiles x 1024 SNPs "
                 "(4x NDIS scale)");
  std::printf("  %-8s | %7s | %12s | %10s | %s\n", "GPU", "devices",
              "end-to-end", "speedup", "critical-path breakdown");
  for (const char* name : {"titanv", "vega64"}) {
    double base = 0.0;
    for (const int devices : {1, 2, 4, 8, 16}) {
      multi::MultiGpuContext box(name, devices);
      const auto t = box.estimate(32, 80'000'000, 1024,
                                  bits::Comparison::kXor, opts);
      if (devices == 1) {
        base = t.end_to_end_s;
      }
      const auto st = bench::measure([&] {
        return box
            .estimate(32, 80'000'000, 1024, bits::Comparison::kXor, opts)
            .end_to_end_s;
      });
      csv.row(name, devices, st, base / t.end_to_end_s);
      json.row(name, devices, st, base / t.end_to_end_s);
      const auto& s = t.slowest_device;
      std::printf("  %-8s | %7d | %s | %9.2fx | init %.0f ms, h2d %.0f "
                  "ms, kern %.0f ms, d2h %.0f ms\n",
                  name, devices, bench::fmt_time(t.end_to_end_s).c_str(),
                  base / t.end_to_end_s, s.init_s * 1e3, s.h2d_s * 1e3,
                  s.kernel_s * 1e3, s.d2h_s * 1e3);
    }
  }
  std::printf("  (Scaling saturates once the fixed per-device OpenCL init "
              "dominates --\n   the distributed-memory cost the paper "
              "anticipates.)\n");

  bench::section("LD: 40,960 SNPs x 100k sequences, with device-side "
                 "all-gather of gamma");
  std::printf("  %-8s | %7s | %12s | %12s\n", "GPU", "devices",
              "host-merged", "+ all-gather");
  multi::MultiGpuOptions gather = opts;
  gather.gather_on_device = true;
  for (const int devices : {1, 4, 16}) {
    multi::MultiGpuContext box("vega64", devices);
    const auto plain = box.estimate(40960, 40960, 100000,
                                    bits::Comparison::kAnd, opts);
    const auto g = box.estimate(40960, 40960, 100000,
                                bits::Comparison::kAnd, gather);
    std::printf("  %-8s | %7d | %s | %s\n", "vega64", devices,
                bench::fmt_time(plain.end_to_end_s).c_str(),
                bench::fmt_time(g.end_to_end_s).c_str());
  }
  std::printf("\n  (The gamma all-gather moves the full %0.1f GB output "
              "over the 25 GB/s\n   interconnect -- the communication cost "
              "that makes multi-GPU LD a\n   distributed-memory problem.)"
              "\n",
              40960.0 * 40960.0 * 4 / 1e9);

  bench::section("heterogeneous box: throughput-weighted sharding "
                 "(deep-K LD)");
  multi::MultiGpuOptions het = opts;
  het.per_device.include_init = false;
  multi::MultiGpuContext mixed(
      std::vector<std::string>{"titanv", "gtx980"});
  const auto& w = mixed.weights();
  std::printf("  titanv + gtx980, shard weights %.1f%% / %.1f%%\n",
              100.0 * w[0], 100.0 * w[1]);
  const auto t = mixed.estimate(10000, 50000, 100000,
                                bits::Comparison::kAnd, het);
  std::printf("  per-device finish times: %s vs %s (balanced within "
              "%.0f%%)\n",
              bench::fmt_time(t.per_device_end_to_end_s[0]).c_str(),
              bench::fmt_time(t.per_device_end_to_end_s[1]).c_str(),
              100.0 * std::abs(t.per_device_end_to_end_s[0] -
                               t.per_device_end_to_end_s[1]) /
                  t.end_to_end_s);
  multi::MultiGpuContext titan_only("titanv", 1);
  const auto solo = titan_only.estimate(10000, 50000, 100000,
                                        bits::Comparison::kAnd, het);
  std::printf("  vs Titan V alone: %s -> %s with the GTX 980 helping\n\n",
              bench::fmt_time(solo.end_to_end_s).c_str(),
              bench::fmt_time(t.end_to_end_s).c_str());
  return 0;
}
