// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper as aligned text, with the
// paper's reported values alongside where applicable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace snp::bench {

inline void title(const std::string& t) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Pretty seconds: ms below 1 s, s above.
inline std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%8.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%8.3f s ", seconds);
  }
  return buf;
}

/// Optional machine-readable output: when the SNP_BENCH_CSV environment
/// variable names a directory, each figure bench also writes its series
/// there as <name>.csv (header row first). Inactive otherwise — the
/// printed tables remain the primary output.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& name) {
    const char* dir = std::getenv("SNP_BENCH_CSV");
    if (dir == nullptr || *dir == '\0') {
      return;
    }
    std::filesystem::create_directories(dir);
    os_.open(std::filesystem::path(dir) / (name + ".csv"));
  }

  [[nodiscard]] bool active() const { return os_.is_open(); }

  template <typename... Cells>
  void row(const Cells&... cells) {
    if (!active()) {
      return;
    }
    std::ostringstream line;
    bool first = true;
    ((line << (first ? "" : ",") << cells, first = false), ...);
    os_ << line.str() << '\n';
  }

 private:
  std::ofstream os_;
};

/// Machine-readable output #2: `--json <path>` on the bench command line
/// writes the series as one JSON document
///   {"bench": "<name>", "rows": [{"col": value, ...}, ...]}
/// (falling back to $SNP_BENCH_JSON/<name>.json when the flag is absent
/// but that directory variable is set; inactive otherwise). Declare the
/// column names once with header(), then emit row() with matching cells —
/// numbers stay raw JSON numbers, everything else is quoted.
/// tools/run_bench.sh drives the flag and aggregates the documents into a
/// dated BENCH_<date>.json.
class JsonWriter {
 public:
  JsonWriter(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    std::string path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        path = argv[i + 1];
      }
    }
    if (path.empty()) {
      const char* dir = std::getenv("SNP_BENCH_JSON");
      if (dir == nullptr || *dir == '\0') {
        return;
      }
      std::filesystem::create_directories(dir);
      path = (std::filesystem::path(dir) / (name_ + ".json")).string();
    }
    os_.open(path);
    if (os_.is_open()) {
      os_ << "{\"bench\": \"" << name_ << "\", \"rows\": [";
    }
  }

  ~JsonWriter() {
    if (os_.is_open()) {
      os_ << "\n]}\n";
    }
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  [[nodiscard]] bool active() const { return os_.is_open(); }

  template <typename... Cells>
  void header(const Cells&... cells) {
    (keys_.push_back(std::string(cells)), ...);
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    if (!active()) {
      return;
    }
    const std::vector<std::string> vals{cell(cells)...};
    os_ << (first_ ? "\n" : ",\n") << "  {";
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const std::string key =
          i < keys_.size() ? keys_[i] : "col" + std::to_string(i);
      os_ << (i > 0 ? ", " : "") << "\"" << key << "\": " << vals[i];
    }
    os_ << "}";
    first_ = false;
  }

 private:
  template <typename T>
  static std::string cell(const T& v) {
    std::ostringstream ss;
    if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
      ss << v;
    } else {
      ss << '"' << v << '"';
    }
    return ss.str();
  }

  std::string name_;
  std::vector<std::string> keys_;
  std::ofstream os_;
  bool first_ = true;
};

}  // namespace snp::bench
