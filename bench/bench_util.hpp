// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper as aligned text, with the
// paper's reported values alongside where applicable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace snp::bench {

inline void title(const std::string& t) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Pretty seconds: ms below 1 s, s above.
inline std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%8.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%8.3f s ", seconds);
  }
  return buf;
}

/// Optional machine-readable output: when the SNP_BENCH_CSV environment
/// variable names a directory, each figure bench also writes its series
/// there as <name>.csv (header row first). Inactive otherwise — the
/// printed tables remain the primary output.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& name) {
    const char* dir = std::getenv("SNP_BENCH_CSV");
    if (dir == nullptr || *dir == '\0') {
      return;
    }
    std::filesystem::create_directories(dir);
    os_.open(std::filesystem::path(dir) / (name + ".csv"));
  }

  [[nodiscard]] bool active() const { return os_.is_open(); }

  template <typename... Cells>
  void row(const Cells&... cells) {
    if (!active()) {
      return;
    }
    std::ostringstream line;
    bool first = true;
    ((line << (first ? "" : ",") << cells, first = false), ...);
    os_ << line.str() << '\n';
  }

 private:
  std::ofstream os_;
};

}  // namespace snp::bench
