// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper as aligned text, with the
// paper's reported values alongside where applicable.
//
// Measurement discipline: every figure/ablation row carries a statistical
// summary (median, ci_lo, ci_hi, reps) produced by obs::run_benchmark —
// see src/obs/stats.hpp for the policy. Deterministic simulator estimates
// converge at min_reps with a zero-width CI; real wall-clock sections get
// genuine intervals. tools/bench_compare consumes these intervals to
// separate regressions from noise.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/envinfo.hpp"
#include "obs/stats.hpp"

namespace snp::bench {

inline void title(const std::string& t) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Pretty seconds: ms below 1 s, s above.
inline std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%8.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%8.3f s ", seconds);
  }
  return buf;
}

/// "1.234 ms ±2.1%" — median with relative CI half-width, for the printed
/// tables (the JSON carries the full interval).
inline std::string fmt_summary(const obs::Summary& s) {
  char buf[96];
  const double pct = 100.0 * s.rel_ci_width();
  if (pct >= 0.05) {
    std::snprintf(buf, sizeof buf, "%s ±%.1f%%",
                  fmt_time(s.median).c_str(), pct);
  } else {
    std::snprintf(buf, sizeof buf, "%s", fmt_time(s.median).c_str());
  }
  return buf;
}

/// The repetition policy all benches share, tunable per run via env:
///   SNP_BENCH_MIN_REPS / SNP_BENCH_MAX_REPS — repetition bounds
///   SNP_BENCH_BUDGET_S                      — wall budget per measurement
///   SNP_BENCH_TARGET_CI                     — target relative CI width
inline obs::RepetitionPolicy bench_policy() {
  obs::RepetitionPolicy p;
  if (const char* v = std::getenv("SNP_BENCH_MIN_REPS")) {
    p.min_reps = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = std::getenv("SNP_BENCH_MAX_REPS")) {
    p.max_reps = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = std::getenv("SNP_BENCH_BUDGET_S")) {
    p.time_budget_s = std::strtod(v, nullptr);
  }
  if (const char* v = std::getenv("SNP_BENCH_TARGET_CI")) {
    p.target_rel_ci = std::strtod(v, nullptr);
  }
  return p;
}

/// Adaptive measurement of one quantity: repeats `fn` (returning one
/// sample, usually seconds) under the shared policy and returns the robust
/// summary. The workhorse behind every stats-carrying bench row.
template <typename Fn>
[[nodiscard]] obs::Summary measure(Fn&& fn,
                                   const obs::RepetitionPolicy& policy =
                                       bench_policy()) {
  return obs::run_benchmark(std::function<double()>(std::forward<Fn>(fn)),
                            policy);
}

/// Tag type: expands to the four statistics column names in header() and
/// pairs with an obs::Summary cell in row(). Usage:
///   w.header("n", bench::stats_cols("end_to_end_s"));
///   w.row(n, summary);
struct StatsCols {
  std::string metric;
};
inline StatsCols stats_cols(std::string metric) {
  return StatsCols{std::move(metric)};
}

namespace detail {

/// One JSON-ready cell: numbers stay raw (non-finite becomes null so the
/// document always parses), strings are escaped and quoted.
template <typename T>
std::string json_cell(const T& v) {
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      if (!std::isfinite(static_cast<double>(v))) {
        return "null";
      }
    }
    std::ostringstream ss;
    ss << v;
    return ss.str();
  } else {
    std::ostringstream raw;
    raw << v;
    return '"' + obs::json_escape(raw.str()) + '"';
  }
}

/// Append a value's flattened cells: a Summary expands into its four
/// statistics, everything else is one cell.
inline void append_cells(std::vector<std::string>& out,
                         const obs::Summary& s) {
  out.push_back(json_cell(s.median));
  out.push_back(json_cell(s.ci_lo));
  out.push_back(json_cell(s.ci_hi));
  out.push_back(json_cell(s.reps));
}
template <typename T>
void append_cells(std::vector<std::string>& out, const T& v) {
  out.push_back(json_cell(v));
}

/// Append a header token's key names: StatsCols expands into
/// <metric>, <metric>_ci_lo, <metric>_ci_hi, <metric>_reps. The point
/// estimate keeps the plain metric name so bench_compare and older
/// consumers address it directly (it IS the median).
inline void append_keys(std::vector<std::string>& out, const StatsCols& c) {
  out.push_back(c.metric);
  out.push_back(c.metric + "_ci_lo");
  out.push_back(c.metric + "_ci_hi");
  out.push_back(c.metric + "_reps");
}
inline void append_keys(std::vector<std::string>& out, const char* key) {
  out.emplace_back(key);
}
inline void append_keys(std::vector<std::string>& out,
                        const std::string& key) {
  out.push_back(key);
}

/// CSV cells mirror the JSON flattening (Summary -> 4 columns) but keep
/// plain formatting.
inline void append_csv(std::ostringstream& line, bool& first,
                       const obs::Summary& s) {
  line << (first ? "" : ",") << s.median << ',' << s.ci_lo << ','
       << s.ci_hi << ',' << s.reps;
  first = false;
}
template <typename T>
void append_csv(std::ostringstream& line, bool& first, const T& v) {
  line << (first ? "" : ",") << v;
  first = false;
}
inline void append_csv(std::ostringstream& line, bool& first,
                       const StatsCols& c) {
  line << (first ? "" : ",") << c.metric << ',' << c.metric << "_ci_lo,"
       << c.metric << "_ci_hi," << c.metric << "_reps";
  first = false;
}

}  // namespace detail

/// Optional machine-readable output: when the SNP_BENCH_CSV environment
/// variable names a directory, each figure bench also writes its series
/// there as <name>.csv (header row first). Inactive otherwise — the
/// printed tables remain the primary output. Summary cells flatten to
/// median,ci_lo,ci_hi,reps columns exactly as in the JSON.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& name) {
    const char* dir = std::getenv("SNP_BENCH_CSV");
    if (dir == nullptr || *dir == '\0') {
      return;
    }
    std::filesystem::create_directories(dir);
    os_.open(std::filesystem::path(dir) / (name + ".csv"));
  }

  [[nodiscard]] bool active() const { return os_.is_open(); }

  template <typename... Cells>
  void row(const Cells&... cells) {
    if (!active()) {
      return;
    }
    std::ostringstream line;
    bool first = true;
    (detail::append_csv(line, first, cells), ...);
    os_ << line.str() << '\n';
  }

 private:
  std::ofstream os_;
};

/// Machine-readable output #2: `--json <path>` on the bench command line
/// writes the series as one JSON document
///   {"bench": "<name>",
///    "primary": {"metric": "...", "lower_better": true},   (if declared)
///    "rows": [{"col": value, ...}, ...]}
/// (falling back to $SNP_BENCH_JSON/<name>.json when the flag is absent
/// but that directory variable is set; inactive otherwise). Declare the
/// column names once with header() — a stats_cols("m") token expands to
/// m, m_ci_lo, m_ci_hi, m_reps and pairs with an obs::Summary cell in
/// row(). Strings are JSON-escaped; non-finite numbers become null.
/// tools/run_bench.sh drives the flag and aggregates the documents into a
/// dated BENCH_<date>.json consumed by tools/bench_compare.
class JsonWriter {
 public:
  JsonWriter(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    std::string path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        path = argv[i + 1];
      }
    }
    if (path.empty()) {
      const char* dir = std::getenv("SNP_BENCH_JSON");
      if (dir == nullptr || *dir == '\0') {
        return;
      }
      std::filesystem::create_directories(dir);
      path = (std::filesystem::path(dir) / (name_ + ".json")).string();
    }
    open(path);
  }

  /// Direct-to-path variant (tests, ad-hoc tooling).
  JsonWriter(std::string name, const std::string& path)
      : name_(std::move(name)) {
    open(path);
  }

  ~JsonWriter() {
    if (os_.is_open()) {
      close_prologue();
      os_ << "\n]}\n";
    }
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  [[nodiscard]] bool active() const { return os_.is_open(); }

  /// Declares which metric the regression gate should judge this bench
  /// by, and its direction. Must be called before the first row().
  void set_primary(std::string metric, bool lower_better) {
    primary_metric_ = std::move(metric);
    primary_lower_better_ = lower_better;
  }

  template <typename... Cells>
  void header(const Cells&... cells) {
    (detail::append_keys(keys_, cells), ...);
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    if (!active()) {
      return;
    }
    close_prologue();
    std::vector<std::string> vals;
    (detail::append_cells(vals, cells), ...);
    os_ << (first_ ? "\n" : ",\n") << "  {";
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const std::string key =
          i < keys_.size() ? keys_[i] : "col" + std::to_string(i);
      os_ << (i > 0 ? ", " : "") << "\"" << obs::json_escape(key)
          << "\": " << vals[i];
    }
    os_ << "}";
    first_ = false;
  }

 private:
  void open(const std::string& path) {
    os_.open(path);
    if (os_.is_open()) {
      os_ << "{\"bench\": \"" << obs::json_escape(name_) << "\"";
    }
  }

  /// The prologue (primary metadata + "rows": [) is deferred until the
  /// first row so set_primary() can run after construction.
  void close_prologue() {
    if (prologue_done_ || !os_.is_open()) {
      return;
    }
    if (!primary_metric_.empty()) {
      os_ << ", \"primary\": {\"metric\": \""
          << obs::json_escape(primary_metric_) << "\", \"lower_better\": "
          << (primary_lower_better_ ? "true" : "false") << "}";
    }
    os_ << ", \"rows\": [";
    prologue_done_ = true;
  }

  std::string name_;
  std::string primary_metric_;
  bool primary_lower_better_ = true;
  std::vector<std::string> keys_;
  std::ofstream os_;
  bool first_ = true;
  bool prologue_done_ = false;
};

}  // namespace snp::bench
