// Ablation: the roofline view of the reproduction — per device, the
// compute and memory roofs, the ridge point, and the LD kernel's walk
// along the intensity axis as K grows (the Fig. 5 sweep restated), as an
// ASCII log-log chart.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "model/peak.hpp"
#include "sim/roofline.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- roofline placement of the LD kernel");

  bench::CsvWriter csv("abl_roofline");
  csv.row("device", "k_words", "intensity", "attainable_gops",
          bench::stats_cols("achieved_gops"), "memory_bound");
  bench::JsonWriter json("abl_roofline", argc, argv);
  json.set_primary("achieved_gops", /*lower_better=*/false);
  json.header("device", "k_words", "intensity", "attainable_gops",
              bench::stats_cols("achieved_gops"), "memory_bound");

  for (const auto& dev : model::all_gpus()) {
    const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const double ridge = sim::ridge_intensity(dev, bits::Comparison::kAnd);
    bench::section(dev.name + "  (B_eff " +
                   std::to_string(static_cast<int>(
                       dev.dram_gbps_effective)) +
                   " GB/s, ridge at " + std::to_string(ridge).substr(0, 5) +
                   " word-ops/byte)");
    std::printf("  %8s | %10s | %12s | %12s | %s\n", "K words",
                "intensity", "attainable", "achieved", "regime");
    std::vector<sim::RooflinePoint> pts;
    for (const std::size_t kw : {2u, 8u, 32u, 128u,
                                 static_cast<unsigned>(cfg.k_c)}) {
      const auto p = sim::roofline_for(dev, cfg, bits::Comparison::kAnd,
                                       {8192, 8192, kw});
      pts.push_back(p);
      const auto st = bench::measure([&] {
        return sim::roofline_for(dev, cfg, bits::Comparison::kAnd,
                                 {8192, 8192, kw})
            .achieved_gops;
      });
      std::printf("  %8zu | %7.3f op/B | %8.0f G/s | %8.0f G/s | %s\n",
                  static_cast<std::size_t>(kw), p.arithmetic_intensity,
                  p.attainable_gops, p.achieved_gops,
                  p.memory_bound ? "memory-bound" : "compute-bound");
      csv.row(dev.name, static_cast<std::size_t>(kw),
              p.arithmetic_intensity, p.attainable_gops, st,
              p.memory_bound ? 1 : 0);
      json.row(dev.name, static_cast<std::size_t>(kw),
               p.arithmetic_intensity, p.attainable_gops, st,
               p.memory_bound ? 1 : 0);
    }

    // ASCII roofline: x = log2 intensity in [2^-3, 2^6], y = achieved
    // fraction of peak in 10 rows.
    constexpr int kWidth = 56;
    constexpr int kHeight = 10;
    auto col = [&](double intensity) {
      const double lo = -3.0, hi = 6.0;
      const double x = std::clamp(std::log2(intensity), lo, hi);
      return static_cast<int>((x - lo) / (hi - lo) * (kWidth - 1));
    };
    std::vector<std::string> grid(
        kHeight, std::string(static_cast<std::size_t>(kWidth), ' '));
    // Roofs.
    for (int c = 0; c < kWidth; ++c) {
      const double intensity =
          std::pow(2.0, -3.0 + 9.0 * c / (kWidth - 1));
      const double roof = std::min(
          1.0, intensity * dev.dram_gbps_effective /
                   (model::peak_wordops_per_s(dev, bits::Comparison::kAnd) /
                    1e9));
      const int row = static_cast<int>((1.0 - roof) * (kHeight - 1));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] =
          '-';
    }
    // Kernel points.
    for (const auto& p : pts) {
      const int c = col(p.arithmetic_intensity);
      const double frac = p.achieved_gops / p.peak_gops;
      const int row = static_cast<int>((1.0 - std::min(frac, 1.0)) *
                                       (kHeight - 1));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] =
          '*';
    }
    std::printf("\n  achieved/peak (roof '-', kernel '*'; x: intensity "
                "2^-3..2^6 op/B)\n");
    for (const auto& line : grid) {
      std::printf("  |%s|\n", line.c_str());
    }
  }
  std::printf("\n  (Vega 64's ridge sits beyond the LD kernel's maximum "
              "intensity -- the\n   roofline restatement of its 54.9%% of "
              "peak and its Fig. 7 scaling knee.)\n\n");
  return 0;
}
