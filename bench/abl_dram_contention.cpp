// Ablation: the DRAM-contention mechanism, derived rather than assumed.
//
// The tile-level timing model prices multi-core memory contention with a
// calibrated soft-min curve. Here a lockstep device simulation with a
// shared token-bucket bus *measures* per-core efficiency as cores scale,
// next to the soft-min prediction matched on the same single-core demand
// — showing the calibrated curve is the closed form of a real queueing
// mechanism, not an arbitrary fit. (tests/test_device_sim.cpp pins the
// agreement; this bench prints the curves.)
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/device_sim.hpp"

namespace {

snp::sim::Program mem_mix(int ldgs, int adds, std::uint64_t iterations) {
  using namespace snp::sim;
  Program p;
  for (int i = 0; i < ldgs; ++i) {
    p.body.push_back({Opcode::kLdg, i % 8, kNoReg, kNoReg, 0});
  }
  for (int j = 0; j < adds; ++j) {
    const int r = 8 + j % 4;
    p.body.push_back({Opcode::kAdd, r, r, kNoReg, 0});
  }
  p.iterations = iterations;
  for (int r = 0; r < 12; ++r) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, r, kNoReg, 0});
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- shared-DRAM contention: lockstep simulation "
               "vs the soft-min model");

  bench::CsvWriter csv("abl_dram_contention");
  csv.row("bus_bytes_per_cycle", "cores",
          bench::stats_cols("measured_eff_pct"), "softmin_pct",
          "bus_util_pct");
  bench::JsonWriter json("abl_dram_contention", argc, argv);
  json.set_primary("measured_eff_pct", /*lower_better=*/false);
  json.header("bus_bytes_per_cycle", "cores",
              bench::stats_cols("measured_eff_pct"), "softmin_pct",
              "bus_util_pct");

  auto dev = model::gtx980();
  dev.n_cores = 64;
  sim::SimOptions opts;
  opts.loop_overhead_instrs = 0;

  for (const double bus_rate : {512.0, 1024.0, 2048.0}) {
    sim::DramBusSpec bus;
    bus.bytes_per_cycle = bus_rate;
    const sim::DeviceSim dsim(dev, bus, opts);
    const auto prog = mem_mix(2, 2, 64);
    const auto solo = dsim.run(prog, 8, 1, 128.0);
    const double demand = solo.dram_bytes_served /
                          static_cast<double>(solo.core_cycles[0]);
    bench::section("bus " + std::to_string(static_cast<int>(bus_rate)) +
                   " B/cycle, per-core demand " +
                   std::to_string(demand).substr(0, 5) + " B/cycle");
    std::printf("  %6s | %10s | %10s | %10s\n", "cores", "measured",
                "soft-min", "bus util");
    for (const int n : {1, 2, 4, 8, 16, 32, 64}) {
      const auto t = dsim.run(prog, 8, n, 128.0);
      const double eff = static_cast<double>(solo.core_cycles[0]) /
                         static_cast<double>(t.cycles);
      const auto eff_stats = bench::measure([&] {
        const auto r = dsim.run(prog, 8, n, 128.0);
        return 100.0 * static_cast<double>(solo.core_cycles[0]) /
               static_cast<double>(r.cycles);
      });
      const double ratio = n * demand / bus_rate;
      const double soft = std::pow(1.0 + std::pow(ratio, 4.0), -0.25);
      std::printf("  %6d | %9.1f%% | %9.1f%% | %9.1f%%\n", n, 100.0 * eff,
                  100.0 * soft, 100.0 * t.bus_utilization);
      csv.row(bus_rate, n, eff_stats, 100.0 * soft,
              100.0 * t.bus_utilization);
      json.row(bus_rate, n, eff_stats, 100.0 * soft,
               100.0 * t.bus_utilization);
    }
  }
  std::printf("\n  (The lockstep bus simulation and the calibrated curve "
              "agree across three\n   saturation regimes -- flat, knee, "
              "bandwidth-share asymptote.)\n\n");
  return 0;
}
