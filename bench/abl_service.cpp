// Ablation (beyond the paper): query coalescing in the resident-DB
// service (src/svc).
//
// The paper's batch workflow packs both operands per run; the service
// keeps the database resident and answers point queries. Serving each
// query as its own core::compare launch re-pays the fixed per-launch
// cost (operand packing, preset resolution, chunk setup) once per query;
// coalescing W queued queries into one W-row A operand pays it once per
// batch. This bench offers a fixed load — every query submitted up
// front, engine paused, then resume + drain — and sweeps the coalescing
// width. Reported per width: p99 request latency (the SLO gate metric,
// primary, lower is better), drain wall time, sustained throughput, and
// throughput speedup vs the unbatched width-1 service. Expect >= 2x
// throughput at width 32; results are bit-identical across widths by
// tests/test_service.cpp, so the sweep is pure scheduling.
//
// PR 10 adds end-to-end request deadlines: admission/formation expiry
// checks, per-batch rt::CancelToken arming, and chunk-boundary
// checkpoints inside the compare pipeline. A second section prices that
// path with a paired, interleaved A/B at the width-32 SLO-gate config
// (the abl_obs_overhead protocol): one arm submits every query with a
// generous deadline — the full bookkeeping runs but nothing ever
// expires — the other submits without deadlines. Acceptance gate for
// the PR: < 2% overhead; reported, not hard-failed, because on a noisy
// CI host the paired CI half-widths tell the real story.
//
// SNP_ABL_SERVICE_QUERIES / SNP_ABL_SERVICE_PROFILES override the
// offered load and database size for quick CI smoke runs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "io/datagen.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- service query coalescing width sweep");

  std::size_t profiles = 1024;
  std::size_t n_queries = 256;
  if (const char* env = std::getenv("SNP_ABL_SERVICE_PROFILES")) {
    profiles = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("SNP_ABL_SERVICE_QUERIES")) {
    n_queries = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  constexpr std::size_t kSnps = 256;
  std::printf("\n  offered load: %zu queries x %zu resident profiles x "
              "%zu SNPs, xor\n", n_queries, profiles, kSnps);

  const auto db = io::random_bitmatrix(profiles, kSnps, 0.5, 2);
  const auto queries = io::random_bitmatrix(n_queries, kSnps, 0.5, 1);

  bench::CsvWriter csv("abl_service");
  csv.row("width", bench::stats_cols("p99_s"), "wall_s", "qps", "speedup",
          "batches");
  bench::JsonWriter json("abl_service", argc, argv);
  json.set_primary("p99_s", /*lower_better=*/true);
  json.header("width", bench::stats_cols("p99_s"), "wall_s", "qps",
              "speedup", "batches");

  // Real end-to-end drains; keep the repetition floor low like abl_async.
  auto policy = bench::bench_policy();
  policy.min_reps = std::min<std::size_t>(policy.min_reps, 3);

  // One rep = one fixed-load drain through a fresh engine: submit every
  // query while paused (all arrive at t=0), then resume and drain. The
  // scalar handed to the measurement harness is the p99 request latency;
  // wall time, batch count, and a result checksum ride along so the row
  // can also report sustained throughput.
  const auto rep = [&](std::size_t width, double* wall_s,
                       std::uint64_t* batches, std::uint64_t* checksum) {
    svc::ServiceConfig cfg;
    cfg.device = "titanv";
    cfg.op = bits::Comparison::kXor;
    cfg.max_batch_rows = width;
    cfg.max_queue = n_queries;
    cfg.cache_capacity = 0;  // measure compute, not cache hits
    cfg.start_paused = true;
    svc::ServiceEngine engine(db, cfg);
    std::vector<std::future<svc::QueryResult>> futs;
    futs.reserve(n_queries);
    for (std::size_t q = 0; q < n_queries; ++q) {
      futs.push_back(engine.submit(queries.row_slice(q, q + 1)));
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine.resume();
    engine.drain();
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (auto& f : futs) {
      const auto r = f.get();
      sum += r.row.front() + r.row.back();
    }
    const auto s = engine.stats();
    *wall_s = std::chrono::duration<double>(t1 - t0).count();
    *batches = s.batches;
    *checksum = sum;
    return s.p99_latency_s;
  };

  std::printf("\n  %-7s %14s %10s %10s %10s %9s\n", "width", "p99",
              "wall", "qps", "vs w=1", "batches");

  double base_qps = 0.0;
  std::uint64_t base_sum = 0;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}, std::size_t{32}}) {
    double wall_s = 0.0;
    std::uint64_t batches = 0;
    std::uint64_t sum = 0;
    const auto p99_stats = bench::measure(
        [&] { return rep(width, &wall_s, &batches, &sum); }, policy);
    const double qps = static_cast<double>(n_queries) / wall_s;
    if (width == 1) {
      base_qps = qps;
      base_sum = sum;
    }
    std::printf("  %-7zu %s %9.0f %9.2fx %8llu%s\n", width,
                bench::fmt_summary(p99_stats).c_str(), qps, qps / base_qps,
                static_cast<unsigned long long>(batches),
                sum == base_sum ? "" : "  CHECKSUM MISMATCH");
    csv.row(width, p99_stats, wall_s, qps, qps / base_qps, batches);
    json.row(width, p99_stats, wall_s, qps, qps / base_qps, batches);
  }

  std::printf("\n  (Identical checksums across widths = coalescing is "
              "bit-identical to serial\n   service; wider batches amortize "
              "the per-launch pack/setup cost across the\n   queued "
              "queries, so both p99 and throughput improve together.)\n\n");

  // ---- deadlines-on vs deadlines-off (PR 10 overhead gate) -------------
  // Paired and interleaved through one persistent engine: every pair
  // times one deadline-carrying drain and one plain drain adjacent in
  // time (order alternating per pair), and the overhead is summarized
  // over the per-pair ratios so frequency/scheduler drift cancels.
  {
    constexpr std::size_t kWidth = 32;
    svc::ServiceConfig cfg;
    cfg.device = "titanv";
    cfg.op = bits::Comparison::kXor;
    cfg.max_batch_rows = kWidth;
    cfg.max_queue = n_queries;
    cfg.cache_capacity = 0;
    cfg.start_paused = true;
    svc::ServiceEngine engine(db, cfg);

    const auto drain = [&](bool with_deadline, std::uint64_t* checksum) {
      engine.pause();
      svc::SubmitOptions options;
      // Generous deadline: the whole bookkeeping path runs — admission
      // stamp, formation sweep, cancel-token arming, chunk checkpoints,
      // delivery accounting — but nothing ever expires, so both arms do
      // identical compute work.
      options.deadline_ms = with_deadline ? 6e7 : 0.0;
      std::vector<std::future<svc::QueryResult>> futs;
      futs.reserve(n_queries);
      for (std::size_t q = 0; q < n_queries; ++q) {
        futs.push_back(engine.submit(queries.row_slice(q, q + 1), options));
      }
      const auto t0 = std::chrono::steady_clock::now();
      engine.resume();
      engine.drain();
      const auto t1 = std::chrono::steady_clock::now();
      std::uint64_t sum = 0;
      for (auto& f : futs) {
        const auto r = f.get();
        sum += r.row.front() + r.row.back();
      }
      *checksum = sum;
      return std::chrono::duration<double>(t1 - t0).count();
    };

    {  // warmup outside the measurement window
      std::uint64_t w = 0;
      (void)drain(false, &w);
    }

    std::vector<double> on_s, off_s, over_pct;
    std::uint64_t on_sum = 0, off_sum = 0;
    bool checksum_ok = true;
    const auto loop0 = std::chrono::steady_clock::now();
    for (std::size_t pair = 0;; ++pair) {
      double a = 0.0, b = 0.0;
      if (pair % 2 == 0) {
        a = drain(true, &on_sum);
        b = drain(false, &off_sum);
      } else {
        b = drain(false, &off_sum);
        a = drain(true, &on_sum);
      }
      checksum_ok = checksum_ok && on_sum == off_sum;
      on_s.push_back(a);
      off_s.push_back(b);
      over_pct.push_back((a / b - 1.0) * 100.0);
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - loop0)
                                 .count();
      if (pair + 1 >= policy.min_reps &&
          (pair + 1 >= policy.max_reps ||
           elapsed >= policy.time_budget_s)) {
        break;
      }
    }

    const obs::Summary on = obs::summarize(on_s, policy);
    const obs::Summary off = obs::summarize(off_s, policy);
    const obs::Summary over = obs::summarize(over_pct, policy);

    std::printf("  %-14s %14s %10s %10s\n", "arm", "wall", "qps",
                "overhead");
    struct Row {
      const char* name;
      const obs::Summary* wall;
      double overhead_pct;
    };
    const Row rows[] = {{"deadline-on", &on, over.median},
                        {"deadline-off", &off, 0.0}};
    for (const Row& r : rows) {
      const double qps = static_cast<double>(n_queries) / r.wall->median;
      std::printf("  %-14s %s %9.0f %9.2f%%%s\n", r.name,
                  bench::fmt_summary(*r.wall).c_str(), qps, r.overhead_pct,
                  checksum_ok ? "" : "  CHECKSUM MISMATCH");
      csv.row(r.name, *r.wall, qps, r.overhead_pct, 0);
      json.row(r.name, *r.wall, qps, r.overhead_pct, 0);
    }

    std::printf("\n  end-to-end deadline overhead: %+.2f%% (paired CI "
                "[%+.2f%%, %+.2f%%] over %zu pairs;\n   acceptance gate: "
                "< 2%%. Identical checksums = the deadline path changes "
                "when\n   work stops, never what it computes.)\n\n",
                over.median, over.ci_lo, over.ci_hi, on_s.size());
  }
  return 0;
}
