// Ablation: exhaustive configuration search vs the Table II presets,
// within the performance model. Quantifies the paper's implicit claim
// that the analytical derivation (Eqs. 4-7) leaves little on the table
// ("analytical modeling is enough", Low et al.).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/autotune.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- autotuned configuration vs Table II preset");

  bench::CsvWriter csv("abl_autotune");
  csv.row("workload", "device", "preset_s",
          bench::stats_cols("tuned_s"), "speedup");
  bench::JsonWriter json("abl_autotune", argc, argv);
  json.set_primary("tuned_s", /*lower_better=*/true);
  json.header("workload", "device", "preset_s",
              bench::stats_cols("tuned_s"), "speedup");

  struct Workload {
    const char* label;
    model::WorkloadKind kind;
    bits::Comparison op;
    sim::KernelShape shape;
  };
  const Workload workloads[] = {
      {"LD 16384^2, full-tile K", model::WorkloadKind::kLd,
       bits::Comparison::kAnd, {16384, 16384, 0 /* per-device k_c */}},
      {"FastID 32 x 4M x 1024 bits", model::WorkloadKind::kFastId,
       bits::Comparison::kXor, {32, 4'000'000, 32}},
  };

  for (const auto& w : workloads) {
    bench::section(w.label);
    std::printf("  %-8s | %-44s | %10s | %s\n", "GPU", "configuration",
                "kernel", "vs preset");
    for (const auto& dev : model::all_gpus()) {
      const auto preset = model::paper_preset(dev, w.kind);
      sim::KernelShape shape = w.shape;
      if (shape.k_words == 0) {
        shape.k_words = static_cast<std::size_t>(preset.k_c);
      }
      const auto pt = sim::estimate_kernel(dev, preset, w.op, shape,
                                           preset.pre_negated);
      const auto ranked = sim::autotune(dev, w.op, shape, w.kind);
      const auto& best = ranked.front();
      std::printf("  %-8s | preset %-37s | %s | baseline\n",
                  dev.name.c_str(), preset.to_string().c_str(),
                  bench::fmt_time(pt.seconds).c_str());
      const auto st = bench::measure([&] {
        return sim::estimate_kernel(dev, best.config, w.op, shape,
                                    best.config.pre_negated)
            .seconds;
      });
      std::printf("  %-8s | tuned  %-37s | %s | %.2fx\n", "",
                  best.config.to_string().c_str(),
                  bench::fmt_time(best.seconds).c_str(),
                  pt.seconds / best.seconds);
      csv.row(w.label, dev.name, pt.seconds, st,
              pt.seconds / best.seconds);
      json.row(w.label, dev.name, pt.seconds, st,
              pt.seconds / best.seconds);
    }
  }
  std::printf("\n  (Exhaustive search over the feasible space -- shared "
              "memory, registers,\n   occupancy, bank constraint, Eq. 7 "
              "-- buys at most a few percent over the\n   shipped presets; "
              "the analytical derivation is close to model-optimal.)\n\n");
  return 0;
}
