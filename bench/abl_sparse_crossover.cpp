// Extension bench (paper Section VII future work): dense bit-parallel vs
// sparse index-intersection kernels as a function of minor-allele density.
// Prints the modeled GPU time of both representations per device, the
// crossover density, and a real wall-clock CPU measurement of both engines
// to confirm the model's ordering on actual hardware.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "bits/compare.hpp"
#include "cpu/engine.hpp"
#include "io/datagen.hpp"
#include "sparse/engine.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("EXTENSION -- dense vs sparse representation crossover");

  bench::CsvWriter csv("abl_sparse_crossover");
  csv.row("density", bench::stats_cols("dense_s"),
          bench::stats_cols("sparse_s"), "agree");
  bench::JsonWriter json("abl_sparse_crossover", argc, argv);
  json.set_primary("dense_s", /*lower_better=*/true);
  json.header("density", bench::stats_cols("dense_s"),
              bench::stats_cols("sparse_s"), "agree");

  const sim::KernelShape shape{8192, 8192, 383};
  bench::section("modeled GPU kernel time (8192 x 8192 x 12,256 bits)");
  std::printf("  %-9s | %10s", "density", "dense");
  for (const auto& dev : model::all_gpus()) {
    std::printf(" | %-12s", dev.name.c_str());
  }
  std::printf("\n");
  for (const double d : {0.001, 0.003, 0.01, 0.03, 0.1, 0.3}) {
    std::printf("  %8.3f%% |", 100.0 * d);
    bool first = true;
    for (const auto& dev : model::all_gpus()) {
      const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
      const auto dense =
          sim::estimate_kernel(dev, cfg, bits::Comparison::kAnd, shape);
      const auto sparse =
          sparse::estimate_sparse_kernel(dev, cfg, shape, d, d);
      if (first) {
        std::printf(" %s |", bench::fmt_time(dense.seconds).c_str());
        first = false;
      }
      std::printf(" %s %s |", bench::fmt_time(sparse.seconds).c_str(),
                  sparse.seconds < dense.seconds ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("  (* = sparse wins; the dense column is %s's time -- dense "
              "cost is density-independent)\n",
              model::all_gpus()[0].name.c_str());

  bench::section("modeled crossover density per device");
  for (const auto& dev : model::all_gpus()) {
    std::printf("  %-8s : %.2f%%\n", dev.name.c_str(),
                100.0 * sparse::crossover_density(dev, shape));
  }

  bench::section("native CPU wall-clock sanity check (512 x 512 x 16,384 "
                 "bits)");
  std::printf("  %-9s | %12s | %12s | %s\n", "density", "dense engine",
              "sparse engine", "winner");
  for (const double d : {0.0002, 0.002, 0.01, 0.05, 0.2}) {
    const auto a = io::random_bitmatrix(512, 16384, d, 77);
    const auto b = io::random_bitmatrix(512, 16384, d, 78);
    const auto sa = sparse::SparseBitMatrix::from_dense(a);
    const auto sb = sparse::SparseBitMatrix::from_dense(b);
    const auto dense_c =
        cpu::compare_blocked(a, b, bits::Comparison::kAnd);
    const auto sparse_c =
        sparse::sparse_compare(sa, sb, bits::Comparison::kAnd);
    const bool agree = dense_c == sparse_c;
    // Real wall-clock: adaptive repetition under the shared policy gives
    // each engine a genuine CI instead of a single noisy reading.
    std::size_t sink = 0;
    const auto dense_stats = bench::measure([&] {
      const auto s0 = std::chrono::steady_clock::now();
      sink += cpu::compare_blocked(a, b, bits::Comparison::kAnd).rows();
      const auto s1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(s1 - s0).count();
    });
    const auto sparse_stats = bench::measure([&] {
      const auto s0 = std::chrono::steady_clock::now();
      sink +=
          sparse::sparse_compare(sa, sb, bits::Comparison::kAnd).rows();
      const auto s1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(s1 - s0).count();
    });
    if (sink == 0) {
      std::printf("  (empty results?)\n");
    }
    const double dense_s = dense_stats.median;
    const double sparse_s = sparse_stats.median;
    std::printf("  %8.1f%% | %s | %s | %s%s\n", 100.0 * d,
                bench::fmt_summary(dense_stats).c_str(),
                bench::fmt_summary(sparse_stats).c_str(),
                sparse_s < dense_s ? "sparse" : "dense",
                agree ? "" : "  !! RESULTS DISAGREE");
    csv.row(d, dense_stats, sparse_stats, agree ? 1 : 0);
    json.row(d, dense_stats, sparse_stats, agree ? 1 : 0);
  }
  std::printf("\n  (Engines agree bit-for-bit at every density; sparse "
              "time scales with nnz\n   while dense time is flat. The CPU "
              "crossover sits far lower than the modeled\n   GPU's ~1%% "
              "because each dense 64-bit word-op covers 64 sites while a "
              "merge\n   step covers one -- the word-parallelism advantage "
              "the paper's dense\n   representation is built on.)\n\n");
  return 0;
}
