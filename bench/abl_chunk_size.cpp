// Ablation: streaming chunk size vs end-to-end time (paper Section
// VI-E-2: "the amount of data to be transferred at each step must be
// evenly balanced with the amount of computation... to sufficiently
// overlap execution and data transfer"). Small chunks pay per-launch and
// per-transfer overheads; huge chunks forfeit the double-buffering
// overlap. The framework's automatic choice should sit in the flat bottom
// of the U.
#include <cstdio>

#include "bench_util.hpp"
#include "core/snpcmp.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- streaming chunk size (FastID 32 x 20M x 1024 "
               "bits)");

  bench::CsvWriter csv("abl_chunk_size");
  csv.row("device", "chunk_rows", "chunks",
          bench::stats_cols("end_to_end_s"), "hidden_s");
  bench::JsonWriter json("abl_chunk_size", argc, argv);
  json.set_primary("end_to_end_s", /*lower_better=*/true);
  json.header("device", "chunk_rows", "chunks",
              bench::stats_cols("end_to_end_s"), "hidden_s");

  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    Context ctx = Context::gpu(name);
    bench::section(ctx.device_name());
    std::printf("  %12s | %8s | %12s | %12s\n", "chunk rows", "chunks",
                "end-to-end", "hidden");
    ComputeOptions opts;
    opts.functional = false;
    double auto_time = 0.0;
    for (const std::size_t rows :
         {50'000u, 200'000u, 1'000'000u, 4'000'000u, 10'000'000u}) {
      opts.chunk_rows = rows;
      const auto t =
          ctx.estimate(32, 20'000'000, 1024, bits::Comparison::kXor, opts);
      const auto st = bench::measure([&] {
        return ctx
            .estimate(32, 20'000'000, 1024, bits::Comparison::kXor, opts)
            .end_to_end_s;
      });
      std::printf("  %12zu | %8d | %s | %s\n", rows, t.chunks,
                  bench::fmt_time(t.end_to_end_s).c_str(),
                  bench::fmt_time(t.overlap_hidden_s).c_str());
      csv.row(name, rows, t.chunks, st, t.overlap_hidden_s);
      json.row(name, rows, t.chunks, st, t.overlap_hidden_s);
    }
    opts.chunk_rows = 0;  // the framework's automatic choice
    const auto t =
        ctx.estimate(32, 20'000'000, 1024, bits::Comparison::kXor, opts);
    auto_time = t.end_to_end_s;
    const auto st = bench::measure([&] {
      return ctx
          .estimate(32, 20'000'000, 1024, bits::Comparison::kXor, opts)
          .end_to_end_s;
    });
    std::printf("  %12s | %8d | %s | %s   <-- automatic\n", "auto",
                t.chunks, bench::fmt_time(auto_time).c_str(),
                bench::fmt_time(t.overlap_hidden_s).c_str());
    csv.row(name, 0, t.chunks, st, t.overlap_hidden_s);
    json.row(name, 0, t.chunks, st, t.overlap_hidden_s);
  }
  std::printf("\n  (Tiny chunks pay PCIe latency and launch overhead per "
              "chunk; one giant\n   chunk serializes upload -> kernel -> "
              "readback. The automatic 256 MiB\n   pipelining granularity "
              "lands on the flat bottom.)\n\n");
  return 0;
}
