// Table I reproduction: hardware parameters of the evaluated platforms.
//
// The spec-sheet half comes straight from the device descriptors; the
// microbenchmarked half (per-instruction throughput, dependent-chain
// latency, pipe sharing) is *measured* by running the paper's Section V-C/D
// methodology on the cycle-level simulator, exactly as the authors measured
// their physical GPUs. "meas. chain" is the dependent-chain rate, which
// equals L_fn when the pipe is wide enough and the issue-serialization
// bound ceil(N_T / N_fn) otherwise.
#include <cstdio>

#include "bench_util.hpp"
#include "micro/microbench.hpp"
#include "model/peak.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("TABLE I -- platform parameters (spec + microbenchmarked)");

  bench::CsvWriter csv("table1_hwparams");
  csv.row("device", "instr", bench::stats_cols("cycles_per_instr"),
          "lanes_per_cycle", "units_per_cluster");
  bench::JsonWriter json("table1_hwparams", argc, argv);
  json.set_primary("cycles_per_instr", /*lower_better=*/true);
  json.header("device", "instr", bench::stats_cols("cycles_per_instr"),
              "lanes_per_cycle", "units_per_cluster");

  const auto cpu = model::xeon_e5_2620v2();
  std::printf("\nCPU baseline: %s (%s), %.1f GHz x %d cores\n",
              cpu.name.c_str(), cpu.microarch.c_str(), cpu.freq_ghz,
              cpu.cores);
  std::printf("  popcount units/core: %d (64-bit)  ->  peak %.1f Gword-ops/s"
              " (32-bit equivalent)\n",
              cpu.popc_units,
              model::cpu_peak_wordops_per_s(cpu) / 1e9);

  for (const auto& dev : model::all_gpus()) {
    bench::section(dev.name + " (" + dev.microarch + ", " + dev.vendor +
                   ")");
    std::printf("  freq %.3f GHz | N_T %d | N_grp %d | N_c %d | N_cl %d\n",
                dev.freq_ghz, dev.n_t, dev.n_grp_max, dev.n_cores,
                dev.n_clusters);
    std::printf("  shared %zu KiB (%zu B reserved) | banks %d | regs/core "
                "%zuK | max regs/thread %d\n",
                dev.shared_bytes / 1024, dev.shared_reserved, dev.banks,
                dev.regs_per_core / 1024, dev.max_regs_per_thread);
    std::printf("  global %.3f GiB | max alloc %.3f GiB\n",
                static_cast<double>(dev.global_bytes) / (1 << 30),
                static_cast<double>(dev.max_alloc_bytes) / (1 << 30));

    const auto rep = micro::characterize(dev);
    std::printf("  %-6s | %-10s | %-12s | %-14s\n", "instr",
                "meas.chain", "lanes/cycle", "units/cluster");
    for (const auto& c : rep.instrs) {
      const auto cls = sim::instr_class(c.op);
      const auto st = micro::measure_latency_stats(dev, c.op);
      std::printf("  %-6s | %7.2f    | %9.2f    | meas %5.1f (cfg %d, "
                  "L_fn %d)\n",
                  std::string(sim::to_string(c.op)).c_str(),
                  c.measured_latency, c.measured_lanes_per_cycle,
                  c.inferred_units_per_cluster,
                  dev.pipe(cls).units_per_cluster,
                  dev.pipe(cls).latency_cycles);
      csv.row(dev.name, std::string(sim::to_string(c.op)), st,
              c.measured_lanes_per_cycle, c.inferred_units_per_cluster);
      json.row(dev.name, std::string(sim::to_string(c.op)), st,
               c.measured_lanes_per_cycle, c.inferred_units_per_cluster);
    }
    std::printf("  pipe discovery: POPC %s from INT math; ADD & AND %s a "
                "pipe\n",
                rep.popc_separate_from_int ? "SEPARATE" : "shared",
                rep.add_and_share_pipe ? "SHARE" : "do not share");
    std::printf("  throughput saturates at %d resident groups/core "
                "(model: N_cl x L_fn = %d)\n",
                rep.saturating_groups,
                dev.n_clusters * dev.groups_per_cluster());
    const double kernel_meas =
        micro::kernel_peak_throughput(dev, bits::Comparison::kAnd);
    std::printf("  LD-kernel bottleneck: %s | theoretical peak %.0f "
                "Gword-ops/s\n",
                model::describe_bottleneck(dev, bits::Comparison::kAnd)
                    .c_str(),
                model::peak_wordops_per_s(dev, bits::Comparison::kAnd) /
                    1e9);
    std::printf("  per-kernel microbenchmark (S V-D): %.1f word-ops/cycle/"
                "core measured vs %.1f analytic\n",
                kernel_meas,
                model::cluster_rate(dev,
                                    model::kernel_mix(
                                        dev, bits::Comparison::kAnd))
                        .wordops_per_cycle *
                    dev.n_clusters);
  }
  std::printf("\n");
  return 0;
}
