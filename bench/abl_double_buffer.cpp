// Ablation: double buffering on/off (paper Section VI-A / VI-E-2).
//
// The paper implements double buffering "to hide the latency overhead of
// transferring data to and from the GPU". This bench quantifies what that
// design choice buys: end-to-end FastID and LD runs with overlap enabled
// vs fully serialized transfers, across chunk counts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/snpcmp.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("ABLATION -- double buffering vs serialized transfers");

  bench::CsvWriter csv("abl_double_buffer");
  csv.row("workload", "device", bench::stats_cols("overlapped_s"),
          "serialized_s", "chunks");
  bench::JsonWriter json("abl_double_buffer", argc, argv);
  json.set_primary("overlapped_s", /*lower_better=*/true);
  json.header("workload", "device", bench::stats_cols("overlapped_s"),
              "serialized_s", "chunks");

  struct Workload {
    const char* label;
    std::size_t m, n, k_bits;
    bits::Comparison op;
  };
  const Workload workloads[] = {
      {"FastID 32 x 20M x 512", 32, 20'000'000, 512,
       bits::Comparison::kXor},
      {"LD 10k SNPs x 50k seqs", 10000, 10000, 50000,
       bits::Comparison::kAnd},
  };

  for (const auto& w : workloads) {
    bench::section(w.label);
    std::printf("  %-8s | %12s | %12s | %8s | %s\n", "GPU", "overlapped",
                "serialized", "saved", "chunks");
    for (const char* name : {"gtx980", "titanv", "vega64"}) {
      Context ctx = Context::gpu(name);
      ComputeOptions on;
      on.functional = false;
      ComputeOptions off = on;
      off.double_buffer = false;
      const auto t_on = ctx.estimate(w.m, w.n, w.k_bits, w.op, on);
      const auto t_off = ctx.estimate(w.m, w.n, w.k_bits, w.op, off);
      const auto st = bench::measure([&] {
        return ctx.estimate(w.m, w.n, w.k_bits, w.op, on).end_to_end_s;
      });
      csv.row(w.label, name, st, t_off.end_to_end_s, t_on.chunks);
      json.row(w.label, name, st, t_off.end_to_end_s, t_on.chunks);
      std::printf("  %-8s | %s | %s | %6.1f%% | %d\n", name,
                  bench::fmt_time(t_on.end_to_end_s).c_str(),
                  bench::fmt_time(t_off.end_to_end_s).c_str(),
                  100.0 * (1.0 - t_on.end_to_end_s / t_off.end_to_end_s),
                  t_on.chunks);
    }
  }
  std::printf("\n  (Overlap matters most when transfer time is comparable "
              "to kernel time --\n   the FastID shape, where the database "
              "stream dominates.)\n\n");
  return 0;
}
