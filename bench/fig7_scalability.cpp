// Figure 7 reproduction: per-core LD performance relative to one core, as
// the number of compute cores in use grows (work per core held constant at
// the largest supported tile). Normalization is against the nominal-clock
// single-core model, so DVFS boost shows up as >100 % at small core counts
// (the Titan V effect the paper reports).
//
// Paper target shape: Titan V ~flat (slightly >100 % at few cores, "losing
// virtually no performance" at 80); GTX 980 ~90 % at 16; Vega 64 healthy to
// ~8 cores then declining steeply toward ~55 % at 64.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/timing.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("FIGURE 7 -- per-core performance vs #cores (relative to "
               "1 core)");
  bench::CsvWriter csv("fig7_scalability");
  csv.row("device", "cores", bench::stats_cols("perf_per_core_pct"),
          "mem_efficiency");
  bench::JsonWriter json("fig7_scalability", argc, argv);
  json.set_primary("perf_per_core_pct", /*lower_better=*/false);
  json.header("device", "cores", bench::stats_cols("perf_per_core_pct"),
              "mem_efficiency");

  for (const auto& dev : model::all_gpus()) {
    auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
    const auto kw = static_cast<std::size_t>(cfg.k_c);
    const auto n_cols = static_cast<std::size_t>(8 * cfg.n_r);

    // Nominal-clock single-core baseline.
    auto nominal = dev;
    nominal.boost_frac = 0.0;
    auto base_cfg = cfg;
    base_cfg.grid = {1, 1};
    const sim::KernelShape per_core{static_cast<std::size_t>(cfg.m_c),
                                    n_cols, kw};
    const auto base = sim::estimate_kernel(nominal, base_cfg,
                                           bits::Comparison::kAnd,
                                           per_core);
    const double base_rate = base.wordops / base.seconds;

    bench::section(dev.name);
    std::printf("  %6s | %12s | %10s\n", "cores", "perf/core", "mem eff");
    for (int cores = 1; cores <= dev.n_cores; cores *= 2) {
      auto g = cfg;
      g.grid = {cores, 1};
      const sim::KernelShape s{
          static_cast<std::size_t>(cfg.m_c) *
              static_cast<std::size_t>(cores),
          n_cols, kw};
      const auto t =
          sim::estimate_kernel(dev, g, bits::Comparison::kAnd, s);
      const auto rel = bench::measure([&] {
        const auto r = sim::estimate_kernel(dev, g, bits::Comparison::kAnd,
                                            s);
        return 100.0 * r.wordops / r.seconds / cores / base_rate;
      });
      std::printf("  %6d | %11.1f%% | %9.3f\n", cores, rel.median,
                  t.mem_efficiency);
      csv.row(dev.name, cores, rel, t.mem_efficiency);
      json.row(dev.name, cores, rel, t.mem_efficiency);
    }
    if ((dev.n_cores & (dev.n_cores - 1)) != 0) {
      // Also print the full-device point for non-power-of-two cores.
      auto g = cfg;
      g.grid = {dev.n_cores, 1};
      const sim::KernelShape s{
          static_cast<std::size_t>(cfg.m_c) *
              static_cast<std::size_t>(dev.n_cores),
          n_cols, kw};
      const auto t =
          sim::estimate_kernel(dev, g, bits::Comparison::kAnd, s);
      std::printf("  %6d | %11.1f%% | %9.3f\n", dev.n_cores,
                  100.0 * t.wordops / t.seconds / dev.n_cores / base_rate,
                  t.mem_efficiency);
    }
  }
  std::printf("\n  (Paper: Titan V >100%% at few cores and ~flat; GTX 980 "
              "~90%% @16;\n   Vega 64 drops sharply past ~8 cores.)\n\n");
  return 0;
}
