// Figure 6 reproduction: end-to-end LD execution time (OpenCL init + data
// transfer + kernel) on simulated datasets of 10,000 SNPs, as the number of
// sequences grows. The CPU line is the modeled Xeon E5-2620 v2 running the
// BLIS-like algorithm at the 85 % of peak reported in [11] — the same
// source the paper's Fig. 6 CPU line comes from.
//
// Paper target shape: the CPU wins small problems (init dominates the
// GPU); every GPU overtakes it as the problem grows, reaching speedups in
// the 47 % - 677 % band at the plotted sizes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/snpcmp.hpp"

int main(int argc, char** argv) {
  using namespace snp;
  bench::title("FIGURE 6 -- end-to-end LD, 10,000 SNPs, growing #sequences");

  constexpr std::size_t kSnps = 10000;
  const std::vector<std::size_t> sequences = {1000,  2000,  5000,  10000,
                                              20000, 50000, 100000};
  Context cpu = Context::cpu();
  ComputeOptions opts;
  opts.functional = false;
  bench::CsvWriter csv("fig6_ld_end2end");
  csv.row("sequences", "device", bench::stats_cols("end_to_end_s"),
          "cpu_model_s");
  bench::JsonWriter json("fig6_ld_end2end", argc, argv);
  json.set_primary("end_to_end_s", /*lower_better=*/true);
  json.header("sequences", "device", bench::stats_cols("end_to_end_s"),
              "cpu_model_s");

  std::printf("\n  %9s | %12s", "sequences", "Xeon (model)");
  for (const char* name : {"gtx980", "titanv", "vega64"}) {
    std::printf(" | %-23s", name);
  }
  std::printf("\n");

  for (const std::size_t seqs : sequences) {
    const auto tc =
        cpu.estimate(kSnps, kSnps, seqs, bits::Comparison::kAnd, opts);
    std::printf("  %9zu | %s", seqs, bench::fmt_time(tc.kernel_s).c_str());
    for (const char* name : {"gtx980", "titanv", "vega64"}) {
      Context gpu = Context::gpu(name);
      const auto tg =
          gpu.estimate(kSnps, kSnps, seqs, bits::Comparison::kAnd, opts);
      const auto st = bench::measure([&] {
        return gpu.estimate(kSnps, kSnps, seqs, bits::Comparison::kAnd,
                            opts)
            .end_to_end_s;
      });
      const double faster =
          100.0 * (tc.kernel_s / tg.end_to_end_s - 1.0);
      std::printf(" | %s (%+5.0f%%)",
                  bench::fmt_time(tg.end_to_end_s).c_str(), faster);
      csv.row(seqs, name, st, tc.kernel_s);
      json.row(seqs, name, st, tc.kernel_s);
    }
    std::printf("\n");
  }
  std::printf("\n  (+x%% = GPU end-to-end is x%% faster than the CPU; "
              "negative = CPU wins.\n   Paper band at its plotted sizes: "
              "+47%% to +677%%.)\n");

  bench::section("breakdown at 50,000 sequences (Titan V)");
  Context titan = Context::gpu("titanv");
  const auto t =
      titan.estimate(kSnps, kSnps, 50000, bits::Comparison::kAnd, opts);
  std::printf("  init %s | h2d %s | kernel %s | d2h %s | end-to-end %s\n",
              bench::fmt_time(t.init_s).c_str(),
              bench::fmt_time(t.h2d_s).c_str(),
              bench::fmt_time(t.kernel_s).c_str(),
              bench::fmt_time(t.d2h_s).c_str(),
              bench::fmt_time(t.end_to_end_s).c_str());
  std::printf("  transfer hidden under compute: %s (%d chunks, "
              "double-buffered)\n\n",
              bench::fmt_time(t.overlap_hidden_s).c_str(), t.chunks);
  return 0;
}
