// Thin main() around the snp::cli driver (see src/cli/).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return snp::cli::run(args, std::cout, std::cerr);
}
