#!/usr/bin/env bash
# Full verification sweep:
#   1. Release build + the whole test suite (tier1 + slow labels), plus
#      a telemetry smoke: a real search run with --metrics-out /
#      --trace-out whose outputs are validated as JSON.
#   2. ASan/UBSan build + tier-1 tests.
#   3. TSan build + the concurrency-heavy suites (exec scheduler,
#      async-vs-serial conformance, and the obs metrics/span registry) —
#      OpenMP is compiled out under TSan, so every data race the
#      thread-pool pipeline could introduce is visible to the tool.
#
# Usage: tools/check.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_san=no
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_san=yes

echo "== release build + full test suite =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== telemetry smoke (metrics + merged trace round-trip) =="
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
./build/tools/snpcmp gendb --out "$smoke/db.sbm" --profiles 200 --snps 256 >/dev/null
./build/tools/snpcmp gendb --out "$smoke/q.sbm" --profiles 4 --snps 256 >/dev/null
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  --threads 4 --metrics-out "$smoke/m.json" --trace-out "$smoke/t.json" >/dev/null
python3 - "$smoke/m.json" "$smoke/t.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics["counters"]["core.compare.chunks"] > 0, "no chunk counters"
assert "exec.pool.queue_depth" in metrics["gauge_peaks"], "no pool gauges"
trace = json.load(open(sys.argv[2]))
pids = {ev["pid"] for ev in trace}
assert {1, 2} <= pids, f"merged trace missing host tracks: {pids}"
assert all(ev["ph"] in ("M", "X") for ev in trace)
print(f"telemetry smoke ok: {len(metrics['counters'])} counters, "
      f"{len(trace)} trace events, pids {sorted(pids)}")
EOF

if [[ "$skip_san" == yes ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== ASan/UBSan build + tier-1 tests =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs"
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$jobs"

echo "== TSan build + exec/conformance/obs tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" \
  --target test_exec test_async_conformance test_obs
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_exec
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_async_conformance
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_obs

echo "== all checks passed =="
