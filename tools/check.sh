#!/usr/bin/env bash
# Full verification sweep:
#   1. Release build + the whole test suite (tier1 + slow labels), plus
#      a telemetry smoke: a real search run with --metrics-out /
#      --trace-out whose outputs are validated as JSON, and a
#      static-analyzer smoke: `snpcmp lint --format json` on two device
#      presets, validated the same way (zero errors, Eq. 5 note present),
#      and a dataflow-verifier smoke: fabricated out-of-bounds launches
#      must be blocked with exit 3 + their SNP-BOUND-*/SNP-OVF-* IDs,
#      and a reduced-seed mutation soak must be failure-free.
#   2. ASan/UBSan build + tier-1 tests.
#   3. TSan build + the concurrency-heavy suites (exec scheduler,
#      async-vs-serial conformance, the obs metrics/span registry, the
#      fault-injection soak, and the multi-client service-engine
#      soak) — OpenMP is compiled out under TSan, so
#      every data race the thread-pool pipeline could introduce is
#      visible to the tool.
#
# The release stage also runs a fault-injection smoke: an injected
# search under --fail-policy degrade must match the clean ranking and
# report its fault events; abort must exit 4 with the SNPRT-* code
# (docs/robustness.md).
#
# Usage: tools/check.sh [--skip-sanitizers | --ci]
#
# --ci is the GitHub Actions profile: release build, the full test
# suite, the telemetry smoke, the bench_compare self-test, and a quick
# benchmark-regression smoke (a mini aggregate compared against itself
# must be clean) — but no sanitizer rebuilds, which dominate wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_san=no
[[ "${1:-}" == "--skip-sanitizers" || "${1:-}" == "--ci" ]] && skip_san=yes
ci_mode=no
[[ "${1:-}" == "--ci" ]] && ci_mode=yes

echo "== release build + full test suite =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== telemetry smoke (metrics + merged trace round-trip) =="
if [[ "$ci_mode" == yes ]]; then
  # Persistent scratch dir in CI: the workflow uploads it as a failure
  # artifact (flight dumps, merged traces, cost ledgers).
  smoke=build/diag
  rm -rf "$smoke"
  mkdir -p "$smoke"
else
  smoke=$(mktemp -d)
  trap 'rm -rf "$smoke"' EXIT
fi
./build/tools/snpcmp gendb --out "$smoke/db.sbm" --profiles 200 --snps 256 >/dev/null
./build/tools/snpcmp gendb --out "$smoke/q.sbm" --profiles 4 --snps 256 >/dev/null
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  --threads 4 --metrics-out "$smoke/m.json" --trace-out "$smoke/t.json" >/dev/null
python3 - "$smoke/m.json" "$smoke/t.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics["counters"]["core.compare.chunks"] > 0, "no chunk counters"
assert "exec.pool.queue_depth" in metrics["gauge_peaks"], "no pool gauges"
trace = json.load(open(sys.argv[2]))
pids = {ev["pid"] for ev in trace}
assert {1, 2} <= pids, f"merged trace missing host tracks: {pids}"
# Slices + metadata plus the request-flow dialect: instants ("i") and
# flow records ("s"/"t"/"f") chained by id (docs/observability.md).
assert all(ev["ph"] in ("M", "X", "i", "s", "t", "f") for ev in trace)
assert all("id" in ev for ev in trace if ev["ph"] in ("s", "t", "f"))
print(f"telemetry smoke ok: {len(metrics['counters'])} counters, "
      f"{len(trace)} trace events, pids {sorted(pids)}")
EOF

echo "== static-analyzer smoke (snpcmp lint JSON round-trip) =="
# Two presets through the kernel/config analyzer: the JSON must parse,
# carry zero error-severity diagnostics, and surface the Eq. 5
# discrepancy info note (SNP-CFG-006, docs/static-analysis.md).
./build/tools/snpcmp lint --device gtx980 --format json \
  > "$smoke/lint_gtx980.json"
./build/tools/snpcmp lint --device vega64 --workload fastid --format json \
  > "$smoke/lint_vega64.json"
python3 - "$smoke/lint_gtx980.json" "$smoke/lint_vega64.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["errors"] == 0, f"{doc['device']}: {doc['errors']} errors"
    ids = {d["id"] for d in doc["diagnostics"]}
    assert "SNP-CFG-006" in ids, f"{doc['device']}: Eq. 5 note missing"
    sev = {d["severity"] for d in doc["diagnostics"]}
    assert sev <= {"warn", "info"}, f"{doc['device']}: bad severities {sev}"
    print(f"lint ok: {doc['device']} {doc['workload']} "
          f"{len(doc['diagnostics'])} diagnostic(s), 0 errors")
EOF

echo "== dataflow verifier smoke (blocked launch + mutation soak) =="
# docs/static-analysis.md: a fabricated out-of-bounds tile allocation
# must be refused before launch with exit 3 and the SNP-BOUND-* check ID
# as the first stderr token; a huge trip count must fail the overflow
# proof; and a reduced-seed mutation soak must have no false negatives.
set +e
./build/tools/snpcmp lint --device titanv --lds-words 64 \
  > "$smoke/blocked_tile.txt" 2>&1
rc=$?
set -e
[[ $rc -eq 3 ]] || { echo "undersized tile lint exited $rc, want 3"; exit 1; }
grep -q 'SNP-BOUND-001' "$smoke/blocked_tile.txt" || {
  echo "undersized tile lint lacks SNP-BOUND-001"; exit 1; }
set +e
./build/tools/snpcmp lint --device gtx980 --k-iters 300000000 \
  > "$smoke/overflow_trips.txt" 2>&1
rc=$?
set -e
[[ $rc -eq 3 ]] || { echo "overflow lint exited $rc, want 3"; exit 1; }
grep -q 'SNP-OVF-001' "$smoke/overflow_trips.txt" || {
  echo "overflow lint lacks SNP-OVF-001"; exit 1; }
set +e
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  --lds-words 16 > /dev/null 2> "$smoke/blocked_launch.err"
rc=$?
set -e
[[ $rc -eq 3 ]] || { echo "blocked launch exited $rc, want 3"; exit 1; }
head -1 "$smoke/blocked_launch.err" | grep -q '^SNP-BOUND-001 ' || {
  echo "blocked launch stderr does not lead with the check ID"; exit 1; }
./build/tools/snpcmp lint --soak 2 || {
  echo "mutation soundness soak reported failures"; exit 1; }
echo "dataflow verifier smoke ok: bad launches blocked, soak clean"

echo "== fault-injection smoke (recovery ladder end-to-end) =="
# docs/robustness.md: a heavily injected run under --fail-policy degrade
# must succeed, rank identically to the clean run, and report its fault
# events; abort must exit 4 with the stable SNPRT-* code on stderr.
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  > "$smoke/clean.txt"
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  --inject-faults 'launch:p=0.5:seed=9' --fail-policy degrade \
  > "$smoke/degraded.txt"
grep -q '^faults:' "$smoke/degraded.txt" || {
  echo "degraded run did not report its fault events"; exit 1; }
diff <(grep '^query ' "$smoke/clean.txt") \
     <(grep '^query ' "$smoke/degraded.txt") || {
  echo "degraded run diverged from the clean ranking"; exit 1; }
set +e
./build/tools/snpcmp search --queries "$smoke/q.sbm" --db "$smoke/db.sbm" \
  --inject-faults 'launch:after=1' --fail-policy abort \
  > /dev/null 2> "$smoke/abort.err"
rc=$?
set -e
[[ $rc -eq 4 ]] || { echo "abort policy exited $rc, want 4"; exit 1; }
grep -q 'SNPRT-LAUNCH' "$smoke/abort.err" || {
  echo "abort stderr lacks the stable SNPRT-LAUNCH code"; exit 1; }
echo "fault-injection smoke ok: degrade bit-identical, abort exits 4"

echo "== flight-recorder smoke (fault-path dump golden) =="
# docs/observability.md: a fault-injected serve with --flight-out must
# exit 4 with the SNPRT code leading stderr, note the dump it wrote, and
# the dump must be valid JSON naming the code and the failed request's
# trace id (the same id printed on its `req N:` line).
printf '{"submit": 0}\n{"submit": 1}\n' > "$smoke/req.jsonl"
set +e
./build/tools/snpcmp serve --db "$smoke/db.sbm" --queries "$smoke/q.sbm" \
  --script "$smoke/req.jsonl" --device titanv \
  --inject-faults 'launch:after=1' --fail-policy abort \
  --flight-out "$smoke/flight.json" \
  > "$smoke/serve.out" 2> "$smoke/serve.err"
rc=$?
set -e
[[ $rc -eq 4 ]] || { echo "fault serve exited $rc, want 4"; exit 1; }
head -1 "$smoke/serve.err" | grep -q '^error: \[SNPRT-LAUNCH\]' || {
  echo "SNPRT code does not lead stderr"; exit 1; }
grep -q "flight: wrote $smoke/flight.json" "$smoke/serve.err" || {
  echo "stderr lacks the flight-dump note"; exit 1; }
python3 - "$smoke/flight.json" "$smoke/serve.out" <<'EOF'
import json, re, sys
doc = json.load(open(sys.argv[1]))
assert doc["flight"] == 1, "bad schema marker"
assert doc["reason"] == "fault: SNPRT-LAUNCH", doc["reason"]
kinds = {ev["kind"] for ev in doc["events"]}
assert {"enqueue", "batch", "fault", "resolve"} <= kinds, kinds
faults = [ev for ev in doc["events"] if ev["kind"] == "fault"]
assert any(ev.get("code") == "SNPRT-LAUNCH" for ev in faults), faults
out = open(sys.argv[2]).read()
m = re.search(r"req 0: error \[SNPRT-LAUNCH\].* trace=(\d+)", out)
assert m, f"no traced failure line in:\n{out}"
trace = int(m.group(1))
assert any(ev["trace"] == trace for ev in faults), \
    f"fault events {faults} lack failed request trace {trace}"
print(f"flight dump ok: {len(doc['events'])} events, fault named and "
      f"correlated to request trace {trace}")
EOF

echo "== deadline smoke (shed / met / exit-4 contract end-to-end) =="
# docs/robustness.md "Request lifecycle": a negative deadline sheds at
# admission, a microsecond one is shed at batch formation (never
# launched), a generous one is met — and a formation shed extends the
# exit-4 contract to SNPRT-DEADLINE as the first stderr token.
printf '{"submit": 0, "deadline_ms": -1}\n{"submit": 1, "deadline_ms": 600000}\n{"submit": 2, "deadline_ms": 0.000001}\n' \
  > "$smoke/deadline.jsonl"
set +e
./build/tools/snpcmp serve --db "$smoke/db.sbm" --queries "$smoke/q.sbm" \
  --script "$smoke/deadline.jsonl" --device titanv --cache 0 \
  > "$smoke/deadline.out" 2> "$smoke/deadline.err"
rc=$?
set -e
[[ $rc -eq 4 ]] || { echo "deadline serve exited $rc, want 4"; exit 1; }
head -1 "$smoke/deadline.err" | grep -q '^error: \[SNPRT-DEADLINE\]' || {
  echo "SNPRT-DEADLINE does not lead stderr"; exit 1; }
grep -q 'req 0: rejected \[SNPRT-DEADLINE\]' "$smoke/deadline.out" || {
  echo "negative deadline was not shed at admission"; exit 1; }
grep -q 'req 2: error \[SNPRT-DEADLINE\]' "$smoke/deadline.out" || {
  echo "expired deadline was not shed at formation"; exit 1; }
grep -q 'deadlines:   met=1 expired=0 shed=2' "$smoke/deadline.out" || {
  echo "deadlines report block wrong:"; cat "$smoke/deadline.out"; exit 1; }
grep -q 'service:     batches=1 ' "$smoke/deadline.out" || {
  echo "a shed request reached a launch (batch count != 1)"; exit 1; }
echo "deadline smoke ok: shed at admission + formation, met in time," \
  "exit 4"

echo "== cost-ledger + pipeline-report smoke (serve -> report) =="
# docs/observability.md: the --cost-out shares must sum bit-identically
# to their batch totals on every integer axis, `snpcmp report` must be
# byte-deterministic over the same inputs, and its Little's-law
# consistency check must PASS on a drained scripted run.
printf '{"submit": 0}\n{"submit": 1}\n{"submit": 2, "count": 3}\n{"barrier": true}\n{"submit": 3, "count": 4}\n' \
  > "$smoke/cost.jsonl"
./build/tools/snpcmp serve --db "$smoke/db.sbm" --queries "$smoke/q.sbm" \
  --script "$smoke/cost.jsonl" --device titanv --max-batch 4 \
  --metrics-out "$smoke/cost_m.json" --trace-out "$smoke/cost_t.json" \
  --cost-out "$smoke/cost_c.json" > "$smoke/cost_serve.out"
grep -q '^cost:' "$smoke/cost_serve.out" || {
  echo "serve report lacks the cost: block"; exit 1; }
python3 - "$smoke/cost_c.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["cost"] == 1, "bad schema marker"
axes = ("device_ns", "h2d_ns", "d2h_ns", "h2d_bytes", "d2h_bytes",
        "wordops")
by_batch = {b["batch"]: b for b in doc["batches"]}
sums = {b: {a: 0 for a in axes} for b in by_batch}
for r in doc["requests"]:
    if r["cache_hit"]:
        continue
    for a in axes:
        sums[r["batch"]][a] += r[a]
for bid, batch in by_batch.items():
    for a in axes:
        assert sums[bid][a] == batch[a], \
            f"batch {bid} axis {a}: shares sum {sums[bid][a]} != " \
            f"total {batch[a]}"
print(f"cost ledger ok: {len(doc['requests'])} request shares sum "
      f"bit-identically across {len(by_batch)} batches x {len(axes)} axes")
EOF
./build/tools/snpcmp report --trace "$smoke/cost_t.json" \
  --metrics "$smoke/cost_m.json" --cost "$smoke/cost_c.json" \
  > "$smoke/report1.txt"
./build/tools/snpcmp report --trace "$smoke/cost_t.json" \
  --metrics "$smoke/cost_m.json" --cost "$smoke/cost_c.json" \
  > "$smoke/report2.txt"
cmp -s "$smoke/report1.txt" "$smoke/report2.txt" || {
  echo "snpcmp report is not deterministic over the same inputs"; exit 1; }
grep -q '^pipeline report:' "$smoke/report1.txt" || {
  echo "report lacks the pipeline header"; exit 1; }
grep -Eq 'littles law: .* PASS' "$smoke/report1.txt" || {
  echo "Little's-law consistency check did not PASS:"
  cat "$smoke/report1.txt"; exit 1; }
grep -q 'top requests by device time:' "$smoke/report1.txt" || {
  echo "report lacks the top-requests section"; exit 1; }
echo "pipeline report ok: deterministic bytes, Little's check PASS"

echo "== bench_compare self-test (regression-gate fixtures) =="
tools/bench_compare --self-test

echo "== benchmark regression smoke (mini aggregate vs itself) =="
# Fast subset with tiny workloads; a self-comparison must be clean, and
# the aggregate must carry the env header and per-row CI columns.
SNP_BENCH_MAX_REPS=8 SNP_BENCH_BUDGET_S=0.2 SNP_ABL_ASYNC_PROFILES=20000 \
  SNP_ABL_SERVICE_PROFILES=512 SNP_ABL_SERVICE_QUERIES=64 \
  tools/run_bench.sh "$smoke/bench.json" build >/dev/null
python3 - "$smoke/bench.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert "env" in doc and "cpu_model" in doc["env"], "no env header"
for name, b in doc["benches"].items():
    assert "primary" in b, f"{name}: no primary metric"
    m = b["primary"]["metric"]
    for row in b["rows"]:
        for col in (m, f"{m}_ci_lo", f"{m}_ci_hi", f"{m}_reps"):
            assert col in row, f"{name}: row missing {col}"
print(f"aggregate ok: {len(doc['benches'])} benches carry "
      f"median/ci_lo/ci_hi/reps on their primary metric")
EOF
tools/bench_compare "$smoke/bench.json" "$smoke/bench.json" --quiet
echo "self-comparison clean"

if [[ "$skip_san" == yes ]]; then
  if [[ "$ci_mode" == yes ]]; then
    echo "== ci profile complete =="
  else
    echo "== sanitizers skipped =="
  fi
  exit 0
fi

echo "== ASan/UBSan build + tier-1 tests =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs"
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$jobs"

echo "== TSan build + exec/conformance/obs/fault/service tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" \
  --target test_exec test_async_conformance test_obs test_fault_injection \
           test_service test_chaos test_flight test_tracing
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_exec
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_async_conformance
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_obs
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_fault_injection
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_service
# The chaos feature matrix (deadlines x breaker x retry budget under
# injected faults) and the blocked-submitter teardown race are the
# PR-10 concurrency surface.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_chaos
# The flight-recorder seqlock soak (concurrent writers + dumper) and the
# trace-context propagation suite are the PR-7 concurrency surface.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_flight
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_tracing

echo "== all checks passed =="
