#!/usr/bin/env bash
# Full verification sweep:
#   1. Release build + the whole test suite (tier1 + slow labels).
#   2. ASan/UBSan build + tier-1 tests.
#   3. TSan build + the concurrency-heavy suites (exec scheduler and
#      async-vs-serial conformance) — OpenMP is compiled out under TSan,
#      so every data race the thread-pool pipeline could introduce is
#      visible to the tool.
#
# Usage: tools/check.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_san=no
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_san=yes

echo "== release build + full test suite =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$skip_san" == yes ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== ASan/UBSan build + tier-1 tests =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs"
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$jobs"

echo "== TSan build + exec/conformance tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" \
  --target test_exec test_async_conformance
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_exec
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_async_conformance

echo "== all checks passed =="
