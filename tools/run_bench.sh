#!/usr/bin/env bash
# Runs the figure/ablation benches with --json and aggregates the results
# into one dated document, BENCH_<date>.json, at the repo root (or $1).
#
#   tools/run_bench.sh [output.json] [build-dir]
#
# Build-dir defaults to build/ (the default CMake preset). Benches that
# have not been built are skipped with a note; the aggregate maps bench
# name -> its {"bench": ..., "rows": [...]} document plus a run header.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-${repo_root}/BENCH_$(date +%Y%m%d).json}"
build_dir="${2:-${repo_root}/build}"
bench_dir="${build_dir}/bench"

benches=(
  fig5_ld_kernel
  fig6_ld_end2end
  fig7_scalability
  fig8_fastid
  fig9_andnot
  table1_hwparams
  abl_async
  abl_autotune
  abl_bank_conflicts
  abl_chunk_size
  abl_config_sweep
  abl_double_buffer
  abl_dram_contention
  abl_multigpu
  abl_obs_overhead
  abl_occupancy
  abl_roofline
  abl_service
  abl_sparse_crossover
)

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

ran=()
for b in "${benches[@]}"; do
  bin="${bench_dir}/${b}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip ${b}: not built (${bin})" >&2
    continue
  fi
  echo "running ${b} ..." >&2
  "${bin}" --json "${tmp}/${b}.json" > "${tmp}/${b}.txt"
  ran+=("${b}")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no benches found under ${bench_dir}; build first" >&2
  exit 1
fi

# Environment fingerprint for the run header, so a regression flagged by
# tools/bench_compare can be told apart from a host/compiler change.
snpcmp="${build_dir}/tools/snpcmp"
if [[ -x "${snpcmp}" ]]; then
  "${snpcmp}" env --format json > "${tmp}/env.json"
else
  echo '{}' > "${tmp}/env.json"
fi

python3 - "${out}" "${tmp}" "${ran[@]}" <<'EOF'
import datetime
import json
import sys

out, tmp, names = sys.argv[1], sys.argv[2], sys.argv[3:]
with open(f"{tmp}/env.json") as f:
    env = json.load(f)
doc = {
    "date": datetime.date.today().isoformat(),
    "env": env,
    "benches": {},
}
for name in names:
    with open(f"{tmp}/{name}.json") as f:
        doc["benches"][name] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
rows = sum(len(b["rows"]) for b in doc["benches"].values())
print(f"wrote {out}: {len(names)} benches, {rows} rows")
EOF
