#!/usr/bin/env bash
# Runs the figure/ablation benches with --json and aggregates the results
# into one dated document, BENCH_<date>.json, at the repo root (or $1).
#
#   tools/run_bench.sh [output.json] [build-dir]
#
# Build-dir defaults to build/ (the default CMake preset). Benches that
# have not been built are skipped with a note; the aggregate maps bench
# name -> its {"bench": ..., "rows": [...]} document plus a run header.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-${repo_root}/BENCH_$(date +%Y%m%d).json}"
build_dir="${2:-${repo_root}/build}"
bench_dir="${build_dir}/bench"

benches=(
  fig5_ld_kernel
  fig6_ld_end2end
  fig7_scalability
  fig8_fastid
  fig9_andnot
  abl_async
)

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

ran=()
for b in "${benches[@]}"; do
  bin="${bench_dir}/${b}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip ${b}: not built (${bin})" >&2
    continue
  fi
  echo "running ${b} ..." >&2
  "${bin}" --json "${tmp}/${b}.json" > "${tmp}/${b}.txt"
  ran+=("${b}")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no benches found under ${bench_dir}; build first" >&2
  exit 1
fi

python3 - "${out}" "${tmp}" "${ran[@]}" <<'EOF'
import datetime
import json
import sys

out, tmp, names = sys.argv[1], sys.argv[2], sys.argv[3:]
doc = {
    "date": datetime.date.today().isoformat(),
    "benches": {},
}
for name in names:
    with open(f"{tmp}/{name}.json") as f:
        doc["benches"][name] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
rows = sum(len(b["rows"]) for b in doc["benches"].values())
print(f"wrote {out}: {len(names)} benches, {rows} rows")
EOF
