#!/usr/bin/env bash
# Sweep `snpcmp lint` across every device preset x workload x op
# combination (the acceptance matrix for the static analyzer): each run
# must exit 0 with zero error-severity diagnostics. Used by the CI lint
# job and callable locally after any change to src/analyze, src/model,
# or src/kern.
#
# Usage: tools/lint_all.sh [path/to/snpcmp]   (default: build/tools/snpcmp)
set -euo pipefail
cd "$(dirname "$0")/.."

snpcmp=${1:-build/tools/snpcmp}
if [[ ! -x "$snpcmp" ]]; then
  echo "lint_all: $snpcmp not built (cmake --build build)" >&2
  exit 2
fi

combos=0
for device in gtx980 titanv vega64; do
  for workload in ld fastid; do
    for op in and xor andnot; do
      if ! out=$("$snpcmp" lint --device "$device" --workload "$workload" \
                 --op "$op"); then
        echo "lint_all: FAILED for $device $workload $op:" >&2
        echo "$out" >&2
        exit 1
      fi
      # The machine-readable report must be byte-stable (diagnostics are
      # sorted by check ID, section, index) — downstream tooling diffs it.
      json_a=$("$snpcmp" lint --device "$device" --workload "$workload" \
               --op "$op" --format json)
      json_b=$("$snpcmp" lint --device "$device" --workload "$workload" \
               --op "$op" --format json)
      if [[ "$json_a" != "$json_b" ]]; then
        echo "lint_all: nondeterministic JSON for $device $workload $op" >&2
        exit 1
      fi
      combos=$((combos + 1))
    done
  done
done
echo "lint_all: $combos preset combinations clean (JSON byte-stable)"

# One-seed mutation soundness soak: every planted bug must trip exactly
# its expected check (the full sweep runs as test_mutation_soak).
if ! out=$("$snpcmp" lint --soak 1); then
  echo "lint_all: mutation soak FAILED:" >&2
  echo "$out" >&2
  exit 1
fi
echo "lint_all: $out"
