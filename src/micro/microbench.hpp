// Instruction microbenchmarks (paper Sections V-C and V-D).
//
// The paper determines the hardware parameters its analytical model needs —
// instruction latency L_fn, per-pipe throughput N_fn, and which instructions
// share a pipe — by black-box measurement: dependent chains expose latency,
// thread-group sweeps expose throughput plateaus, and interleaved
// instruction mixes expose pipe sharing ("population count is on a separate
// pipeline from integer math... on the Vega 64 the addition and logical AND
// operations fall on the same pipeline").
//
// We run the same programs on the cycle-level simulator. This closes the
// loop on the methodology: the measurements must recover the parameters the
// device was configured with, and the same code would run unmodified
// against real hardware through an OpenCL backend.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/compare.hpp"
#include "model/device.hpp"
#include "obs/stats.hpp"
#include "sim/isa.hpp"
#include "sim/pipeline.hpp"

namespace snp::micro {

struct LatencyResult {
  sim::Opcode op{};
  double cycles_per_instr = 0.0;  ///< measured dependent-chain rate
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

/// Section V-C: one thread group, a long chain of dependent instructions
/// inside a counted loop. "Executing the kernel with one thread group is
/// sufficient to measure instruction latency."
[[nodiscard]] LatencyResult measure_latency(const model::GpuSpec& dev,
                                            sim::Opcode op,
                                            int chain_len = 64,
                                            std::uint64_t iterations = 256);

/// Statistical variant of measure_latency: repeats the dependent-chain
/// measurement with varying loop iteration counts, so the amortization of
/// prologue and loop overhead produces a genuine distribution of
/// cycles-per-instruction readings, and summarizes them under `policy`
/// (median, MAD, bootstrap CI — see obs/stats.hpp). The median converges
/// on the same value measure_latency reports with long chains.
[[nodiscard]] obs::Summary measure_latency_stats(
    const model::GpuSpec& dev, sim::Opcode op, int chain_len = 64,
    const obs::RepetitionPolicy& policy = {});

struct ThroughputPoint {
  int n_groups = 0;
  /// Lane-operations per cycle per core: instrs * N_T / cycles.
  double lanes_per_cycle = 0.0;
};

/// Section V-D: same program, sweeping the number of resident thread
/// groups on one core. The curve plateaus once N_cl * L_fn groups saturate
/// the pipes.
[[nodiscard]] std::vector<ThroughputPoint> throughput_sweep(
    const model::GpuSpec& dev, sim::Opcode op, int max_groups = 0);

/// Peak measured throughput (lane-ops/cycle/core) at saturating occupancy.
[[nodiscard]] double peak_throughput(const model::GpuSpec& dev,
                                     sim::Opcode op);

struct SharingResult {
  sim::Opcode a{}, b{};
  std::uint64_t solo_a_cycles = 0;
  std::uint64_t solo_b_cycles = 0;
  std::uint64_t combined_cycles = 0;
  /// combined / max(solo): ~1 for separate pipes, ~(sum/max) for a shared
  /// pipe.
  double slowdown = 0.0;
  bool shared_pipe = false;
};

/// "Combining different instructions can expose which instructions share
/// functional unit pipelines": equal counts of `a` and `b` interleaved on
/// independent accumulators, compared against each instruction alone.
[[nodiscard]] SharingResult probe_pipe_sharing(const model::GpuSpec& dev,
                                               sim::Opcode a, sim::Opcode b);

struct InstrCharacterization {
  sim::Opcode op{};
  double measured_latency = 0.0;       ///< chain cycles/instr
  double measured_lanes_per_cycle = 0.0;
  double inferred_units_per_cluster = 0.0;  ///< lanes/cycle / N_cl
};

struct HardwareReport {
  model::GpuSpec dev;
  std::vector<InstrCharacterization> instrs;
  bool popc_separate_from_int = false;  ///< NVIDIA & Vega observation
  bool add_and_share_pipe = false;      ///< true on Vega (§V-D)
  int saturating_groups = 0;            ///< measured plateau point per core
};

/// Full characterization of a device — the microbenchmarked half of
/// Table I (drives bench/table1_hwparams).
[[nodiscard]] HardwareReport characterize(const model::GpuSpec& dev);

/// Section V-D: "Microbenchmarking each kernel (LD, FastID) was
/// sufficient to determine what peak throughput would be." Runs the
/// kernel's compute triple (logic, popcount, accumulate — with the
/// standalone NOT where the device lacks fused ANDN) as a saturated
/// program and returns word-ops per cycle per core. Must agree with
/// model::cluster_rate * N_cl.
[[nodiscard]] double kernel_peak_throughput(const model::GpuSpec& dev,
                                            bits::Comparison op,
                                            bool pre_negated = false);

}  // namespace snp::micro
