#include "micro/microbench.hpp"

#include <algorithm>
#include <cmath>

namespace snp::micro {

namespace {

/// The loop body must dominate prologue (global-load latency) and loop
/// maintenance, per the paper's guidance on sizing microbenchmarks.
constexpr int kStreams = 8;
constexpr int kPerStream = 16;
constexpr std::uint64_t kIterations = 64;

std::uint64_t body_ops(const sim::Program& p) {
  return p.body.size() * p.iterations;
}

int saturating_occupancy(const model::GpuSpec& dev) {
  return dev.n_clusters * dev.groups_per_cluster();
}

}  // namespace

LatencyResult measure_latency(const model::GpuSpec& dev, sim::Opcode op,
                              int chain_len, std::uint64_t iterations) {
  const sim::Program prog = sim::dependent_chain(op, chain_len, iterations);
  const sim::CoreSim core(dev);
  const sim::CoreStats stats = core.run(prog, 1);
  LatencyResult r;
  r.op = op;
  r.instructions = body_ops(prog);
  r.cycles = stats.cycles;
  r.cycles_per_instr =
      static_cast<double>(stats.cycles) / static_cast<double>(r.instructions);
  return r;
}

obs::Summary measure_latency_stats(const model::GpuSpec& dev,
                                   sim::Opcode op, int chain_len,
                                   const obs::RepetitionPolicy& policy) {
  // Vary the loop trip count across repetitions: each reading amortizes
  // the fixed prologue/loop overhead differently, giving the summary a
  // real spread around the asymptotic chain latency.
  std::size_t k = 0;
  return obs::run_benchmark(
      [&] {
        const std::uint64_t iterations = 192 + 16 * (k++ % 9);
        return measure_latency(dev, op, chain_len, iterations)
            .cycles_per_instr;
      },
      policy);
}

std::vector<ThroughputPoint> throughput_sweep(const model::GpuSpec& dev,
                                              sim::Opcode op,
                                              int max_groups) {
  if (max_groups <= 0) {
    max_groups = dev.n_grp_max;
  }
  const sim::Program prog =
      sim::independent_streams(op, kStreams, kPerStream, kIterations);
  const sim::CoreSim core(dev);
  std::vector<ThroughputPoint> points;
  for (int g = 1; g <= max_groups; ++g) {
    const sim::CoreStats stats = core.run(prog, g);
    ThroughputPoint pt;
    pt.n_groups = g;
    pt.lanes_per_cycle = static_cast<double>(body_ops(prog)) * g * dev.n_t /
                         static_cast<double>(stats.cycles);
    points.push_back(pt);
  }
  return points;
}

double peak_throughput(const model::GpuSpec& dev, sim::Opcode op) {
  const int groups = std::min(saturating_occupancy(dev), dev.n_grp_max);
  const sim::Program prog =
      sim::independent_streams(op, kStreams, kPerStream, kIterations);
  const sim::CoreSim core(dev);
  const sim::CoreStats stats = core.run(prog, groups);
  return static_cast<double>(body_ops(prog)) * groups * dev.n_t /
         static_cast<double>(stats.cycles);
}

SharingResult probe_pipe_sharing(const model::GpuSpec& dev, sim::Opcode a,
                                 sim::Opcode b) {
  const int groups = std::min(saturating_occupancy(dev), dev.n_grp_max);
  constexpr int kPairs = 32;
  const sim::CoreSim core(dev);

  const sim::Program pa =
      sim::independent_streams(a, 4, kPairs / 4, kIterations);
  const sim::Program pb =
      sim::independent_streams(b, 4, kPairs / 4, kIterations);
  const sim::Program pab = sim::interleaved_pair(a, b, kPairs, kIterations);

  SharingResult r;
  r.a = a;
  r.b = b;
  r.solo_a_cycles = core.run(pa, groups).cycles;
  r.solo_b_cycles = core.run(pb, groups).cycles;
  r.combined_cycles = core.run(pab, groups).cycles;
  const auto worst_solo = static_cast<double>(
      std::max(r.solo_a_cycles, r.solo_b_cycles));
  r.slowdown = static_cast<double>(r.combined_cycles) / worst_solo;
  // Separate pipes: the combined mix hides the cheaper instruction under
  // the more contended one (slowdown ~= 1). A shared pipe must serialize
  // both, pushing the slowdown toward (solo_a + solo_b) / max(solo).
  const double serialized =
      static_cast<double>(r.solo_a_cycles + r.solo_b_cycles) / worst_solo;
  r.shared_pipe = r.slowdown > 0.5 * (1.0 + serialized);
  return r;
}

HardwareReport characterize(const model::GpuSpec& dev) {
  HardwareReport rep;
  rep.dev = dev;
  const sim::Opcode ops[] = {sim::Opcode::kAnd, sim::Opcode::kXor,
                             sim::Opcode::kNot, sim::Opcode::kAdd,
                             sim::Opcode::kPopc};
  for (const auto op : ops) {
    InstrCharacterization c;
    c.op = op;
    c.measured_latency = measure_latency(dev, op).cycles_per_instr;
    c.measured_lanes_per_cycle = peak_throughput(dev, op);
    c.inferred_units_per_cluster =
        c.measured_lanes_per_cycle / dev.n_clusters;
    rep.instrs.push_back(c);
  }
  rep.popc_separate_from_int =
      !probe_pipe_sharing(dev, sim::Opcode::kPopc, sim::Opcode::kAdd)
           .shared_pipe;
  rep.add_and_share_pipe =
      probe_pipe_sharing(dev, sim::Opcode::kAdd, sim::Opcode::kAnd)
          .shared_pipe;

  // Locate the throughput plateau: first group count reaching 98 % of the
  // final sweep value.
  const auto sweep = throughput_sweep(dev, sim::Opcode::kPopc);
  const double peak = sweep.back().lanes_per_cycle;
  for (const auto& pt : sweep) {
    if (pt.lanes_per_cycle >= 0.98 * peak) {
      rep.saturating_groups = pt.n_groups;
      break;
    }
  }
  return rep;
}

double kernel_peak_throughput(const model::GpuSpec& dev,
                              bits::Comparison op, bool pre_negated) {
  // The compute triple per output, software-pipelined over 8 independent
  // outputs (no loads: §V-D measures the functional-unit ceiling).
  constexpr int kOutputs = 8;
  const bool separate_not = op == bits::Comparison::kAndNot &&
                            !pre_negated && !dev.fused_andnot;
  const auto logic_op = [&] {
    switch (op) {
      case bits::Comparison::kXor:
        return sim::Opcode::kXor;
      case bits::Comparison::kAndNot:
        return pre_negated ? sim::Opcode::kAnd : sim::Opcode::kAndn;
      case bits::Comparison::kAnd:
        break;
    }
    return sim::Opcode::kAnd;
  }();

  sim::Program p;
  const int a_reg = 2 * kOutputs;
  const int b_reg = a_reg + 1;
  p.prologue.push_back({sim::Opcode::kLdg, a_reg, sim::kNoReg,
                        sim::kNoReg, 0});
  p.prologue.push_back({sim::Opcode::kLdg, b_reg, sim::kNoReg,
                        sim::kNoReg, 0});
  for (int o = 0; o < kOutputs; ++o) {
    const int tmp = kOutputs + o;
    if (separate_not) {
      p.body.push_back({sim::Opcode::kNot, tmp, b_reg, sim::kNoReg, 0});
      p.body.push_back({sim::Opcode::kAnd, tmp, a_reg, tmp, 0});
    } else {
      p.body.push_back({logic_op, tmp, a_reg, b_reg, 0});
    }
  }
  for (int o = 0; o < kOutputs; ++o) {
    p.body.push_back(
        {sim::Opcode::kPopc, kOutputs + o, kOutputs + o, sim::kNoReg, 0});
  }
  for (int o = 0; o < kOutputs; ++o) {
    p.body.push_back({sim::Opcode::kAdd, o, o, kOutputs + o, 0});
  }
  p.iterations = 256;
  for (int o = 0; o < kOutputs; ++o) {
    p.epilogue.push_back({sim::Opcode::kStg, sim::kNoReg, o, sim::kNoReg,
                          0});
  }

  const int groups = std::min(saturating_occupancy(dev), dev.n_grp_max);
  sim::SimOptions opts;
  opts.loop_overhead_instrs = 0;
  const sim::CoreSim core(dev, opts);
  const auto stats = core.run(p, groups);
  const double wordops = static_cast<double>(kOutputs) * 256.0 * groups *
                         dev.n_t;
  return wordops / static_cast<double>(stats.cycles);
}

}  // namespace snp::micro
