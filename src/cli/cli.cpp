#include "cli/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analyze/analyzer.hpp"
#include "analyze/mutate.hpp"
#include "bits/genotype.hpp"
#include "core/snpcmp.hpp"
#include "io/datagen.hpp"
#include "io/formats.hpp"
#include "io/plink_lite.hpp"
#include "io/cohort_ops.hpp"
#include "io/vcf_lite.hpp"
#include "kern/opencl_source.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "rt/fault.hpp"
#include "rt/recovery.hpp"
#include "rt/status.hpp"
#include "sim/trace.hpp"
#include "stats/assoc.hpp"
#include "stats/forensic.hpp"
#include "stats/cluster.hpp"
#include "stats/fst.hpp"
#include "stats/kinship.hpp"
#include "stats/ld.hpp"
#include "stats/ld_prune.hpp"
#include "stats/qc.hpp"
#include "svc/service.hpp"

namespace snp::cli {

namespace {

/// Minimal `--key value` option parser with typed accessors and
/// unknown-flag detection.
class Options {
 public:
  Options(const std::vector<std::string>& args, std::size_t first) {
    // Boolean flags take no value; everything else is `--key value`.
    static const std::set<std::string> kBoolFlags = {"perf"};
    for (std::size_t i = first; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + a + "'");
      }
      const std::string key = a.substr(2);
      if (kBoolFlags.count(key) != 0) {
        values_[key] = "yes";
        continue;
      }
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for '" + a + "'");
      }
      values_[key] = args[++i];
    }
  }

  /// Presence of a boolean flag (declared in kBoolFlags above).
  [[nodiscard]] bool flag(const std::string& key) {
    used_.insert(key);
    return values_.find(key) != values_.end();
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) {
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required --" + key);
    }
    return it->second;
  }

  [[nodiscard]] std::uint64_t num(const std::string& key,
                                  std::uint64_t fallback) {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    std::uint64_t v = 0;
    const auto* begin = it->second.data();
    const auto* end = begin + it->second.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr != end) {
      throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                  it->second + "'");
    }
    return v;
  }

  [[nodiscard]] double real(const std::string& key, double fallback) {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) {
        throw std::invalid_argument("");
      }
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + " expects a number, got '" +
                                  it->second + "'");
    }
  }

  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      if (used_.find(key) == used_.end()) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

/// Shared `--metrics-out F` / `--trace-out F` / `--metrics-format
/// json|prom` / `--perf` handling for the compute commands. Construct
/// before reject_unknown() (parsing marks the flags used), call begin()
/// before the work starts (arms the global TraceCollector and zeroes its
/// epoch; opens and starts the hardware counter group when --perf was
/// given) and finish() after (prints the IPC/cache line, publishes the
/// obs.hw.* counters, then writes the metrics snapshot and the merged
/// Chrome trace). Counter failures never affect the computed results —
/// an unavailable PMU degrades to a one-line note.
class Telemetry {
 public:
  explicit Telemetry(Options& opt)
      : metrics_path_(opt.str("metrics-out", "")),
        trace_path_(opt.str("trace-out", "")),
        flight_path_(opt.str("flight-out", "")),
        format_(opt.str("metrics-format", "json")),
        perf_(opt.flag("perf")) {
    if (format_ != "json" && format_ != "prom") {
      throw std::invalid_argument(
          "--metrics-format must be json or prom");
    }
  }

  [[nodiscard]] bool wants_trace() const { return !trace_path_.empty(); }

  void begin() const {
    if (perf_) {
      hw_ = std::make_unique<obs::HwCounters>();
      hw_->start();
    }
    if (!flight_path_.empty()) {
      // Configure the recorder's automatic-dump destination up front so
      // the exit-4 fault path and SLO-breach dumps land here too — those
      // fire while this command's stack is unwinding, after finish() can
      // no longer run.
      obs::FlightRecorder::global().set_dump_path(flight_path_);
    }
    if (wants_trace()) {
      obs::TraceCollector::global().set_enabled(true);
      obs::TraceCollector::global().begin_session();
    }
  }

  /// `tl` (may be null) and `chunks` (may be empty) add the simulated
  /// device timeline and the host chunk pipeline as extra track groups
  /// alongside the collected spans. `host_anchor_us` is the span-clock
  /// time at which the compare started (TimingReport::trace_anchor_us);
  /// it re-anchors the pid-0/pid-2 tracks onto the span clock so flow
  /// arrows stay monotone across pids.
  void finish(std::ostream& out, const sim::Timeline* tl,
              std::span<const sim::HostChunkEvent> chunks,
              const std::string& device,
              double host_anchor_us = 0.0) const {
    if (hw_) {
      hw_->stop();
      const obs::HwCounterValues v = hw_->read();
      if (v.valid) {
        out << "perf:        " << v.to_line() << "\n";
        // Into the registry before the snapshot below, so --metrics-out
        // dumps carry the same numbers.
        obs::HwCounters::publish(v, obs::MetricsRegistry::global());
      } else {
        out << "perf:        perf counters unavailable"
            << (hw_->error().empty() ? "" : " (" + hw_->error() + ")")
            << "\n";
      }
    }
    if (!metrics_path_.empty()) {
      std::ofstream os(metrics_path_);
      if (!os) {
        throw std::runtime_error("cannot open metrics file " +
                                 metrics_path_);
      }
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::global().snapshot();
      if (format_ == "prom") {
        obs::write_metrics_prometheus(snap, os);
      } else {
        obs::write_metrics_json(snap, os);
      }
      out << "wrote metrics (" << format_ << ") to " << metrics_path_
          << "\n";
    }
    if (wants_trace()) {
      obs::TraceCollector& spans = obs::TraceCollector::global();
      spans.set_enabled(false);
      std::ofstream os(trace_path_);
      if (!os) {
        throw std::runtime_error("cannot open trace file " + trace_path_);
      }
      sim::write_merged_chrome_trace(spans, tl, chunks, os, device,
                                     host_anchor_us);
      out << "wrote merged chrome trace (" << spans.size()
          << " host spans, " << chunks.size() << " pipeline chunks) to "
          << trace_path_ << "\n";
    }
    if (!flight_path_.empty()) {
      // On-demand dump for runs that finished cleanly; faulted runs are
      // dumped by the exit-4 path in run() instead.
      obs::FlightRecorder& fr = obs::FlightRecorder::global();
      if (fr.dump_to_file(flight_path_, "on-demand")) {
        out << "wrote flight recording (" << fr.snapshot().size()
            << " events) to " << flight_path_ << "\n";
      } else {
        throw std::runtime_error("cannot open flight file " + flight_path_);
      }
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string flight_path_;
  std::string format_;
  bool perf_ = false;
  /// Owned lazily by the const begin()/finish() pair — the Telemetry
  /// object itself stays logically const through the command body.
  mutable std::unique_ptr<obs::HwCounters> hw_;
};

/// Shared `--inject-faults SPEC` / `--fail-policy P` handling for the
/// compute commands (docs/robustness.md). Construct before
/// reject_unknown(); apply() validates the flags, sets the recovery
/// policy on the compute options, and arms the fault plan for this
/// object's lifetime — i.e. exactly the command body, so sequential
/// in-process cli::run() calls (tests, batch drivers) never leak an
/// armed plan into each other.
class FaultControl {
 public:
  explicit FaultControl(Options& opt)
      : spec_(opt.str("inject-faults", "")),
        policy_text_(opt.str("fail-policy", "")) {}

  void apply(ComputeOptions& copts) {
    if (!policy_text_.empty()) {
      const auto policy = rt::parse_fail_policy(policy_text_);
      if (!policy) {
        throw std::invalid_argument(
            "--fail-policy must be abort, retry, failover or degrade");
      }
      copts.recovery.policy = *policy;
    }
    if (!spec_.empty()) {
      try {
        scoped_.emplace(rt::FaultPlan::parse(spec_));
      } catch (const rt::Error& e) {
        throw std::invalid_argument(e.status().message);
      }
    }
  }

 private:
  std::string spec_;
  std::string policy_text_;
  std::optional<rt::ScopedFaultPlan> scoped_;
};

bits::Comparison parse_op(const std::string& s) {
  if (s == "and" || s == "ld") {
    return bits::Comparison::kAnd;
  }
  if (s == "xor" || s == "identity") {
    return bits::Comparison::kXor;
  }
  if (s == "andnot" || s == "mixture") {
    return bits::Comparison::kAndNot;
  }
  throw std::invalid_argument("unknown op '" + s +
                              "' (and|xor|andnot)");
}

Context make_context(const std::string& device) {
  if (device == "cpu") {
    return Context::cpu();
  }
  return Context::gpu(device);
}

void print_timing(std::ostream& out, const TimingReport& t) {
  out << "device:      " << t.device << "\n";
  if (!t.config.empty()) {
    out << "config:      " << t.config << "\n";
  }
  for (const auto& note : t.lint_notes) {
    out << "lint:        " << note << "\n";
  }
  out << "init:        " << t.init_s * 1e3 << " ms\n"
      << "h2d:         " << t.h2d_s * 1e3 << " ms\n"
      << "kernel:      " << t.kernel_s * 1e3 << " ms\n"
      << "d2h:         " << t.d2h_s * 1e3 << " ms\n"
      << "end-to-end:  " << t.end_to_end_s * 1e3 << " ms\n"
      << "chunks:      " << t.chunks << "\n";
  // Only on faulty runs, so golden output on clean runs stays stable.
  if (!t.fault_events.empty() || t.degraded) {
    out << "faults:      " << t.fault_events.size() << " event(s)"
        << (t.degraded ? ", degraded to CPU" : "") << "\n";
    const std::size_t shown =
        std::min<std::size_t>(t.fault_events.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const rt::FaultEvent& ev = t.fault_events[i];
      out << "  fault:     " << ev.site << " " << rt::code_name(ev.code)
          << " -> " << ev.action;
      if (ev.chunk >= 0) {
        out << " (chunk " << ev.chunk << ")";
      }
      if (ev.attempt > 0) {
        out << " attempt " << ev.attempt;
      }
      out << "\n";
    }
    if (t.fault_events.size() > shown) {
      out << "  ...        " << t.fault_events.size() - shown
          << " more event(s)\n";
    }
  }
  if (t.kernel_gops > 0.0) {
    out << "throughput:  " << t.kernel_gops << " Gword-ops/s ("
        << t.pct_of_peak << "% of peak)\n";
  }
  if (t.attainable_gops > 0.0) {
    // Achieved-vs-model roofline efficiency (obs::EfficiencySummary);
    // peak recovered from pct_of_peak = achieved / peak * 100.
    obs::EfficiencySummary eff;
    eff.achieved_gops = t.kernel_gops;
    eff.attainable_gops = t.attainable_gops;
    eff.peak_gops = t.pct_of_peak > 0.0
                        ? t.kernel_gops * 100.0 / t.pct_of_peak
                        : 0.0;
    eff.memory_bound = t.memory_bound;
    out << "roofline:    " << eff.to_line() << "\n";
  }
}

int cmd_devices(std::ostream& out) {
  out << "cpu        native BLIS-like engine (host)\n";
  for (const auto& dev : model::all_gpus()) {
    out << dev.name << "  [" << dev.microarch << ", " << dev.vendor
        << "]  " << dev.n_cores << " cores x " << dev.n_clusters
        << " clusters @ " << dev.freq_ghz << " GHz, "
        << dev.shared_bytes / 1024 << " KiB shared, "
        << static_cast<double>(dev.global_bytes) / (1 << 30)
        << " GiB global\n";
  }
  return 0;
}

/// `snpcmp env`: the benchmark-environment fingerprint (CPU model,
/// cores, governor, compiler, git sha) plus perf-counter availability —
/// the header tools/run_bench.sh embeds in every aggregated BENCH json
/// so regressions can be told apart from hardware changes.
int cmd_env(Options& opt, std::ostream& out) {
  const std::string format = opt.str("format", "text");
  opt.reject_unknown();
  const obs::EnvInfo env = obs::collect_env_info();
  const bool perf_ok = obs::HwCounters::available();
  if (format == "json") {
    obs::write_env_json(env, out);
    out << "\n";
  } else if (format == "text") {
    out << "cpu:        " << env.cpu_model << "\n"
        << "cores:      " << env.logical_cores << "\n"
        << "governor:   " << env.governor << "\n"
        << "compiler:   " << env.compiler << "\n"
        << "git_sha:    " << env.git_sha << "\n"
        << "hostname:   " << env.hostname << "\n"
        << "kernel:     " << env.kernel << "\n"
        << "perf:       "
        << (perf_ok ? "hardware counters available"
                    : "perf counters unavailable")
        << "\n";
  } else {
    throw std::invalid_argument("--format must be json or text");
  }
  return 0;
}

int cmd_gen(Options& opt, std::ostream& out) {
  const std::size_t loci = opt.num("loci", 1000);
  const std::size_t samples = opt.num("samples", 512);
  io::PopulationParams p;
  p.seed = opt.num("seed", 1);
  p.ld_block_len = opt.num("ld-block", 1);
  p.maf_min = opt.real("maf-min", 0.01);
  p.maf_max = opt.real("maf-max", 0.5);
  const std::string path = opt.require("out");
  const std::string format = opt.str("format", "plink");
  opt.reject_unknown();
  auto g = io::generate_genotypes(loci, samples, p);
  if (format == "plink") {
    io::save_plink_lite(io::with_synthetic_metadata(std::move(g)), path);
  } else if (format == "vcf") {
    io::save_vcf_lite(io::with_synthetic_metadata(std::move(g)), path);
  } else if (format == "tsv") {
    io::save_genotypes_tsv(g, std::filesystem::path(path));
  } else {
    throw std::invalid_argument("--format must be plink, vcf or tsv");
  }
  out << "wrote " << loci << " loci x " << samples << " samples to "
      << path << " (" << format << ")\n";
  return 0;
}

int cmd_gendb(Options& opt, std::ostream& out) {
  const std::size_t profiles = opt.num("profiles", 100000);
  const std::size_t snps = opt.num("snps", 512);
  io::ProfileDbParams p;
  p.seed = opt.num("seed", 2);
  p.maf_min = opt.real("maf-min", 0.05);
  p.maf_max = opt.real("maf-max", 0.5);
  const std::string path = opt.require("out");
  opt.reject_unknown();
  const auto db = io::generate_profile_db(profiles, snps, p);
  io::save_bitmatrix(db, std::filesystem::path(path));
  out << "wrote profile database " << profiles << " x " << snps
      << " bits (" << db.size_bytes() / 1024 << " KiB) to " << path
      << "\n";
  return 0;
}

/// Loads a genotype dataset, auto-detecting VCF by extension unless the
/// caller forces a format.
io::PlinkLiteDataset load_dataset(const std::string& path,
                                  const std::string& format) {
  const bool vcf =
      format == "vcf" ||
      (format == "auto" && path.size() > 4 &&
       path.compare(path.size() - 4, 4, ".vcf") == 0);
  return vcf ? io::load_vcf_lite(std::filesystem::path(path))
             : io::load_plink_lite(std::filesystem::path(path));
}

int cmd_encode(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string out_path = opt.require("out");
  const std::string plane = opt.str("plane", "presence");
  const std::string format = opt.str("format", "auto");
  opt.reject_unknown();
  const auto ds = load_dataset(in, format);
  const auto enc = plane == "presence" ? bits::EncodingPlane::kPresence
                  : plane == "hom"     ? bits::EncodingPlane::kHomozygous
                                       : throw std::invalid_argument(
                                             "--plane must be presence "
                                             "or hom");
  const auto m = bits::encode(ds.genotypes, enc);
  io::save_bitmatrix(m, std::filesystem::path(out_path));
  out << "encoded " << m.rows() << " loci x " << m.bit_cols()
      << " samples (" << plane << " plane) to " << out_path << "\n";
  return 0;
}

int cmd_ld(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string device = opt.str("device", "titanv");
  const std::string gamma_out = opt.str("out", "");
  const std::size_t top = opt.num("top", 10);
  const std::size_t threads = opt.num("threads", 0);
  const Telemetry tele(opt);
  FaultControl faults(opt);
  opt.reject_unknown();
  tele.begin();
  const auto m = io::load_bitmatrix(std::filesystem::path(in));
  Context ctx = make_context(device);
  ComputeOptions copts;
  copts.threads = threads;
  faults.apply(copts);
  const auto res = ctx.ld(m, copts);
  if (!gamma_out.empty()) {
    io::save_countmatrix(res.counts, std::filesystem::path(gamma_out));
  }
  print_timing(out, res.timing);
  tele.finish(out, nullptr, res.timing.chunk_events, res.timing.device,
              res.timing.trace_anchor_us);
  const auto counts = stats::row_counts(m);
  struct Hit {
    std::size_t i, j;
    double r2;
  };
  std::vector<Hit> hits;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.rows(); ++j) {
      const double r2 =
          stats::ld_from_counts(res.counts.at(i, j), counts[i], counts[j],
                                m.bit_cols())
              .r2;
      hits.push_back({i, j, r2});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.r2 > b.r2; });
  out << "top locus pairs by r^2:\n";
  for (std::size_t k = 0; k < std::min(top, hits.size()); ++k) {
    out << "  " << hits[k].i << " x " << hits[k].j << "  r2=" << hits[k].r2
        << "\n";
  }
  return 0;
}

int cmd_search(Options& opt, std::ostream& out) {
  const std::string qpath = opt.require("queries");
  const std::string dbpath = opt.require("db");
  const std::string device = opt.str("device", "titanv");
  const std::size_t top = opt.num("top", 3);
  const std::size_t threads = opt.num("threads", 0);
  const std::string host_trace = opt.str("host-trace", "");
  const auto lds_words = static_cast<int>(opt.num("lds-words", 0));
  const Telemetry tele(opt);
  FaultControl faults(opt);
  opt.reject_unknown();
  tele.begin();
  const auto queries = io::load_bitmatrix(std::filesystem::path(qpath));
  const auto db = io::load_bitmatrix(std::filesystem::path(dbpath));
  Context ctx = make_context(device);
  ComputeOptions copts;
  copts.threads = threads;
  copts.lds_words = lds_words;
  faults.apply(copts);
  const auto res = ctx.identity_search(queries, db, copts);
  print_timing(out, res.comparison.timing);
  tele.finish(out, nullptr, res.comparison.timing.chunk_events,
              res.comparison.timing.device,
              res.comparison.timing.trace_anchor_us);
  if (!host_trace.empty()) {
    std::ofstream os(host_trace);
    if (!os) {
      throw std::runtime_error("cannot open trace file " + host_trace);
    }
    sim::write_host_chrome_trace(res.comparison.timing.chunk_events, os,
                                 device + " host pipeline");
    out << "wrote host-pipeline timeline ("
        << res.comparison.timing.chunk_events.size() << " chunks) to "
        << host_trace << "\n";
  }
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto row = res.comparison.counts.raw().subspan(q * db.rows(),
                                                         db.rows());
    const auto ranked = stats::rank_matches(row, db.bit_cols(), 1.0, top);
    out << "query " << q << ":";
    for (const auto& c : ranked) {
      out << "  #" << c.reference_index << " (" << c.mismatches
          << " mismatches)";
    }
    out << "\n";
  }
  return 0;
}

int cmd_mixture(Options& opt, std::ostream& out) {
  const std::string ppath = opt.require("profiles");
  const std::string mpath = opt.require("mixtures");
  const std::string device = opt.str("device", "vega64");
  const auto tolerance = static_cast<std::uint32_t>(opt.num("tolerance",
                                                            0));
  const bool pre_negate = opt.str("pre-negate", "no") == "yes";
  const std::size_t threads = opt.num("threads", 0);
  const Telemetry tele(opt);
  FaultControl faults(opt);
  opt.reject_unknown();
  tele.begin();
  const auto profiles = io::load_bitmatrix(std::filesystem::path(ppath));
  const auto mixtures = io::load_bitmatrix(std::filesystem::path(mpath));
  Context ctx = make_context(device);
  ComputeOptions copts;
  copts.pre_negate = pre_negate;
  copts.threads = threads;
  faults.apply(copts);
  const auto res =
      ctx.mixture_analysis(profiles, mixtures, tolerance, copts);
  print_timing(out, res.comparison.timing);
  tele.finish(out, nullptr, res.comparison.timing.chunk_events,
              res.comparison.timing.device,
              res.comparison.timing.trace_anchor_us);
  for (std::size_t m = 0; m < mixtures.rows(); ++m) {
    out << "mixture " << m << ": " << res.included[m].size()
        << " consistent profiles:";
    for (const std::size_t p : res.included[m]) {
      out << " " << p;
    }
    out << "\n";
  }
  return 0;
}

int cmd_kinship(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string format = opt.str("format", "auto");
  const std::size_t top = opt.num("top", 10);
  opt.reject_unknown();
  const auto ds = load_dataset(in, format);
  const auto phi = stats::kinship_matrix(ds.genotypes);
  const std::size_t n = ds.samples.size();
  out << "KING-robust kinship over " << ds.loci.size() << " loci, " << n
      << " samples\n";
  struct Pair {
    std::size_t i, j;
    stats::KinshipResult r;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairs.push_back({i, j, phi[i * n + j]});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.r.phi > b.r.phi;
  });
  out << "top related pairs:\n";
  for (std::size_t k = 0; k < std::min(top, pairs.size()); ++k) {
    const auto& p = pairs[k];
    out << "  " << ds.samples[p.i] << " x " << ds.samples[p.j]
        << "  phi=" << p.r.phi << "  ("
        << stats::to_string(p.r.relationship)
        << ", het-het=" << p.r.n_het_het << ", ibs0=" << p.r.n_ibs0
        << ")\n";
  }
  return 0;
}

int cmd_qc(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string format = opt.str("format", "auto");
  const std::string out_path = opt.str("out", "");
  stats::QcThresholds t;
  t.min_maf = opt.real("min-maf", t.min_maf);
  t.max_missing_rate = opt.real("max-missing", t.max_missing_rate);
  t.min_hwe_p = opt.real("min-hwe-p", t.min_hwe_p);
  const double prune_r2 = opt.real("ld-prune-r2", 0.0);
  const std::size_t prune_window = opt.num("ld-prune-window", 50);
  opt.reject_unknown();
  const auto ds = load_dataset(in, format);
  const auto report =
      stats::qc_report(ds.genotypes, ds.missing_per_locus, t);
  std::size_t pass = 0, low_maf = 0, missing = 0, hwe = 0;
  for (const auto& qc : report) {
    pass += qc.pass() ? 1u : 0u;
    low_maf += (qc.flags & stats::kQcLowMaf) ? 1u : 0u;
    missing += (qc.flags & stats::kQcHighMissing) ? 1u : 0u;
    hwe += (qc.flags & stats::kQcHweViolation) ? 1u : 0u;
  }
  out << "QC over " << report.size() << " loci x " << ds.samples.size()
      << " samples: " << pass << " pass, " << low_maf << " low-MAF, "
      << missing << " high-missing, " << hwe << " HWE-violating\n";
  if (!out_path.empty()) {
    auto filtered = stats::filter_loci(ds, report);
    if (prune_r2 > 0.0) {
      const auto kept = stats::ld_prune(
          filtered.genotypes,
          stats::LdPruneParams{prune_window, prune_r2});
      std::vector<stats::LocusQc> keep_mask(filtered.loci.size());
      for (auto& qc : keep_mask) {
        qc.flags = stats::kQcLowMaf;  // default: drop
      }
      for (const std::size_t k : kept) {
        keep_mask[k].flags = stats::kQcPass;
      }
      filtered = stats::filter_loci(filtered, keep_mask);
      out << "LD pruning (r2 > " << prune_r2 << " within "
          << prune_window << "): " << kept.size() << " loci kept\n";
    }
    io::save_plink_lite(filtered, std::filesystem::path(out_path));
    out << "wrote " << filtered.loci.size() << " passing loci to "
        << out_path << "\n";
  }
  return 0;
}

int cmd_assoc(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string format = opt.str("format", "auto");
  const std::string cases_spec = opt.str("cases", "");
  const std::string pheno_path = opt.str("pheno", "");
  const std::size_t top = opt.num("top", 10);
  opt.reject_unknown();
  if (cases_spec.empty() == pheno_path.empty()) {
    throw std::invalid_argument(
        "assoc: give exactly one of --cases or --pheno");
  }
  const auto ds = load_dataset(in, format);
  std::vector<bool> is_case(ds.samples.size(), false);
  if (!pheno_path.empty()) {
    // Phenotype file: one "sample<TAB>status" line per sample; status in
    // {0, 1, case, control}. Unlisted samples default to control.
    std::ifstream ph(pheno_path);
    if (!ph) {
      throw std::runtime_error("assoc: cannot open --pheno " + pheno_path);
    }
    std::string name, status;
    while (ph >> name >> status) {
      const auto it =
          std::find(ds.samples.begin(), ds.samples.end(), name);
      if (it == ds.samples.end()) {
        throw std::invalid_argument("assoc: unknown sample '" + name +
                                    "' in --pheno");
      }
      const bool value = status == "1" || status == "case";
      if (!value && status != "0" && status != "control") {
        throw std::invalid_argument("assoc: bad status '" + status + "'");
      }
      is_case[static_cast<std::size_t>(it - ds.samples.begin())] = value;
    }
  }
  // --cases is a comma-separated list of sample names or indices.
  std::istringstream cs(cases_spec);
  std::string token;
  while (std::getline(cs, token, ',')) {
    auto it = std::find(ds.samples.begin(), ds.samples.end(), token);
    if (it != ds.samples.end()) {
      is_case[static_cast<std::size_t>(it - ds.samples.begin())] = true;
      continue;
    }
    try {
      const std::size_t idx = std::stoul(token);
      if (idx >= is_case.size()) {
        throw std::out_of_range("");
      }
      is_case[idx] = true;
    } catch (const std::exception&) {
      throw std::invalid_argument("--cases entry '" + token +
                                  "' is neither a sample name nor index");
    }
  }
  const auto results = stats::gwas_scan(ds.genotypes, is_case);
  std::vector<std::size_t> order(results.size());
  for (std::size_t l = 0; l < order.size(); ++l) {
    order[l] = l;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return results[a].p_trend < results[b].p_trend;
  });
  out << "association scan over " << results.size() << " loci ("
      << std::count(is_case.begin(), is_case.end(), true) << " cases / "
      << ds.samples.size() << " samples)\n";
  out << "top hits by trend test:\n";
  for (std::size_t k = 0; k < std::min(top, order.size()); ++k) {
    const std::size_t l = order[k];
    out << "  " << ds.loci[l].id << " (chr" << ds.loci[l].chrom << ":"
        << ds.loci[l].pos << ")  p=" << results[l].p_trend
        << "  OR=" << results[l].odds_ratio
        << "  maf case/ctrl=" << results[l].maf_cases << "/"
        << results[l].maf_controls << "\n";
  }
  return 0;
}

int cmd_cluster(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string format = opt.str("format", "auto");
  const std::string device = opt.str("device", "gtx980");
  const std::size_t k = opt.num("k", 2);
  opt.reject_unknown();
  const auto ds = load_dataset(in, format);
  const auto profiles = stats::encode_individual_major(
      ds.genotypes, bits::EncodingPlane::kPresence);
  Context ctx = make_context(device);
  const auto gamma =
      ctx.compare(profiles, profiles, bits::Comparison::kXor);
  const auto tree = stats::upgma(gamma.counts);
  const auto labels = tree.cut_k(k);
  out << "UPGMA over " << ds.samples.size() << " samples x "
      << ds.loci.size() << " loci (XOR distances on "
      << ctx.device_name() << ")\n";
  std::vector<std::vector<std::string>> members(k);
  for (std::size_t s = 0; s < labels.size(); ++s) {
    members[labels[s]].push_back(ds.samples[s]);
  }
  for (std::size_t c = 0; c < k; ++c) {
    out << "cluster " << c << " (" << members[c].size() << "):";
    for (const auto& name : members[c]) {
      out << " " << name;
    }
    out << "\n";
  }
  if (k == 2) {
    std::vector<bool> in_pop1(labels.size());
    for (std::size_t s = 0; s < labels.size(); ++s) {
      in_pop1[s] = labels[s] == 0;
    }
    out << "Hudson Fst between the two clusters: "
        << stats::fst_scan(ds.genotypes, in_pop1).genome_wide << "\n";
  }
  return 0;
}

void save_dataset(const io::PlinkLiteDataset& ds, const std::string& path,
                  const std::string& format) {
  const bool vcf =
      format == "vcf" ||
      (format == "auto" && path.size() > 4 &&
       path.compare(path.size() - 4, 4, ".vcf") == 0);
  if (vcf) {
    io::save_vcf_lite(ds, std::filesystem::path(path));
  } else {
    io::save_plink_lite(ds, std::filesystem::path(path));
  }
}

int cmd_merge(Options& opt, std::ostream& out) {
  const std::string a_path = opt.require("a");
  const std::string b_path = opt.require("b");
  const std::string out_path = opt.require("out");
  const std::string axis = opt.str("axis", "samples");
  const std::string format = opt.str("format", "auto");
  opt.reject_unknown();
  const auto a = load_dataset(a_path, format);
  const auto b = load_dataset(b_path, format);
  const auto merged = axis == "samples" ? io::merge_samples(a, b)
                      : axis == "loci"  ? io::merge_loci(a, b)
                                        : throw std::invalid_argument(
                                              "--axis must be samples or "
                                              "loci");
  save_dataset(merged, out_path, format);
  out << "merged " << axis << ": " << merged.loci.size() << " loci x "
      << merged.samples.size() << " samples -> " << out_path << "\n";
  return 0;
}

int cmd_subset(Options& opt, std::ostream& out) {
  const std::string in = opt.require("in");
  const std::string out_path = opt.require("out");
  const std::string samples_spec = opt.str("samples", "");
  const std::string loci_spec = opt.str("loci", "");
  const std::string format = opt.str("format", "auto");
  opt.reject_unknown();
  if (samples_spec.empty() && loci_spec.empty()) {
    throw std::invalid_argument("subset: give --samples and/or --loci");
  }
  auto ds = load_dataset(in, format);
  if (!loci_spec.empty()) {
    // "--loci a-b" keeps the inclusive index range; or a comma list.
    std::vector<std::size_t> keep;
    const auto dash = loci_spec.find('-');
    if (dash != std::string::npos) {
      const std::size_t lo = std::stoul(loci_spec.substr(0, dash));
      const std::size_t hi = std::stoul(loci_spec.substr(dash + 1));
      if (hi < lo) {
        throw std::invalid_argument("subset: bad --loci range");
      }
      for (std::size_t l = lo; l <= hi; ++l) {
        keep.push_back(l);
      }
    } else {
      std::istringstream ls(loci_spec);
      std::string token;
      while (std::getline(ls, token, ',')) {
        keep.push_back(std::stoul(token));
      }
    }
    ds = io::subset_loci(ds, keep);
  }
  if (!samples_spec.empty()) {
    std::vector<std::string> names;
    std::istringstream ss(samples_spec);
    std::string token;
    while (std::getline(ss, token, ',')) {
      names.push_back(token);
    }
    ds = io::subset_samples(ds, names);
  }
  save_dataset(ds, out_path, format);
  out << "subset: " << ds.loci.size() << " loci x " << ds.samples.size()
      << " samples -> " << out_path << "\n";
  return 0;
}

/// `snpcmp report --trace T --metrics M [--cost C]`: offline pipeline
/// bottleneck analysis over the artifacts a run already wrote (see
/// obs::analyze_pipeline / docs/observability.md). Deterministic: same
/// input files, same report bytes.
int cmd_report_pipeline(Options& opt, std::ostream& out) {
  const std::string trace_path = opt.require("trace");
  const std::string metrics_path = opt.require("metrics");
  const std::string cost_path = opt.str("cost", "");
  const std::string out_path = opt.str("out", "");
  obs::ReportOptions ropts;
  ropts.top_n = opt.num("top", 5);
  ropts.littles_tolerance = opt.real("littles-tol", 0.10);
  opt.reject_unknown();

  const auto slurp = [](const std::string& path) {
    std::ifstream is(path);
    if (!is) {
      throw std::runtime_error("report: cannot open " + path);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  const obs::jsonlite::Value trace = obs::jsonlite::parse(slurp(trace_path));
  const obs::jsonlite::Value metrics =
      obs::jsonlite::parse(slurp(metrics_path));
  std::optional<obs::jsonlite::Value> cost;
  if (!cost_path.empty()) {
    cost = obs::jsonlite::parse(slurp(cost_path));
  }
  const obs::PipelineReport rep = obs::analyze_pipeline(
      trace, metrics, cost ? &*cost : nullptr, ropts);
  if (out_path.empty()) {
    obs::write_pipeline_report(rep, out);
  } else {
    std::ofstream os(out_path);
    if (!os) {
      throw std::runtime_error("report: cannot open " + out_path);
    }
    obs::write_pipeline_report(rep, os);
    out << "wrote pipeline report to " << out_path << "\n";
  }
  return 0;
}

int cmd_report(Options& opt, std::ostream& out) {
  // --trace selects the pipeline-bottleneck mode; the original cohort
  // report (--in/--out) is unchanged.
  if (!opt.str("trace", "").empty()) {
    return cmd_report_pipeline(opt, out);
  }
  const std::string in = opt.require("in");
  const std::string out_path = opt.require("out");
  const std::string format = opt.str("format", "auto");
  const std::string device = opt.str("device", "titanv");
  const std::string cases_spec = opt.str("cases", "");
  opt.reject_unknown();
  const auto ds = load_dataset(in, format);

  std::ofstream os(out_path);
  if (!os) {
    throw std::runtime_error("report: cannot open " + out_path);
  }
  os << "# snpcmp cohort report\n\n"
     << "Input: `" << in << "` — " << ds.loci.size() << " loci x "
     << ds.samples.size() << " samples";
  if (ds.missing_calls > 0) {
    os << " (" << ds.missing_calls << " missing calls)";
  }
  os << "\n\n## Quality control\n\n";
  const auto qc = stats::qc_report(ds.genotypes, ds.missing_per_locus);
  std::size_t pass = 0, low_maf = 0, missing = 0, hwe = 0;
  double mean_maf = 0.0, mean_het = 0.0;
  for (const auto& q : qc) {
    pass += q.pass() ? 1u : 0u;
    low_maf += (q.flags & stats::kQcLowMaf) ? 1u : 0u;
    missing += (q.flags & stats::kQcHighMissing) ? 1u : 0u;
    hwe += (q.flags & stats::kQcHweViolation) ? 1u : 0u;
    mean_maf += q.maf;
    mean_het += q.het_observed;
  }
  os << "| metric | value |\n|---|---|\n"
     << "| passing loci | " << pass << " / " << qc.size() << " |\n"
     << "| low MAF | " << low_maf << " |\n"
     << "| high missingness | " << missing << " |\n"
     << "| HWE violations | " << hwe << " |\n"
     << "| mean MAF | " << mean_maf / static_cast<double>(qc.size())
     << " |\n"
     << "| mean heterozygosity | "
     << mean_het / static_cast<double>(qc.size()) << " |\n";

  os << "\n## Relatedness (KING-robust)\n\n";
  const auto kin = stats::kinship_matrix(ds.genotypes);
  const std::size_t n = ds.samples.size();
  std::size_t related = 0;
  double max_phi = -1.0;
  std::size_t max_i = 0, max_j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto& r = kin[i * n + j];
      related +=
          r.relationship != stats::Relationship::kUnrelated ? 1u : 0u;
      if (r.phi > max_phi) {
        max_phi = r.phi;
        max_i = i;
        max_j = j;
      }
    }
  }
  os << related << " related pair(s); closest: " << ds.samples[max_i]
     << " x " << ds.samples[max_j] << " (phi=" << max_phi << ", "
     << stats::to_string(stats::classify_kinship(max_phi)) << ")\n";

  if (!cases_spec.empty()) {
    os << "\n## Association (Cochran-Armitage trend)\n\n";
    std::vector<bool> is_case(n, false);
    std::istringstream cs(cases_spec);
    std::string token;
    while (std::getline(cs, token, ',')) {
      const auto it =
          std::find(ds.samples.begin(), ds.samples.end(), token);
      if (it == ds.samples.end()) {
        throw std::invalid_argument("report: unknown case '" + token +
                                    "'");
      }
      is_case[static_cast<std::size_t>(it - ds.samples.begin())] = true;
    }
    const auto assoc = stats::gwas_scan(ds.genotypes, is_case);
    std::vector<std::size_t> order(assoc.size());
    for (std::size_t l = 0; l < order.size(); ++l) {
      order[l] = l;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return assoc[a].p_trend < assoc[b].p_trend;
              });
    os << "| locus | p (trend) | OR |\n|---|---|---|\n";
    for (std::size_t k = 0; k < std::min<std::size_t>(5, order.size());
         ++k) {
      const std::size_t l = order[k];
      os << "| " << ds.loci[l].id << " | " << assoc[l].p_trend << " | "
         << assoc[l].odds_ratio << " |\n";
    }
  }

  os << "\n## Projected device performance\n\n";
  Context ctx = make_context(device);
  if (ctx.is_gpu()) {
    ComputeOptions copts;
    copts.functional = false;
    const auto t = ctx.estimate(ds.loci.size(), ds.loci.size(),
                                ds.samples.size(),
                                bits::Comparison::kAnd, copts);
    os << "All-pairs LD on " << t.device << ": kernel "
       << t.kernel_s * 1e3 << " ms, end-to-end " << t.end_to_end_s * 1e3
       << " ms (" << t.kernel_gops << " Gword-ops/s, " << t.pct_of_peak
       << "% of peak)\n";
    if (t.attainable_gops > 0.0) {
      obs::EfficiencySummary eff;
      eff.achieved_gops = t.kernel_gops;
      eff.attainable_gops = t.attainable_gops;
      eff.peak_gops = t.pct_of_peak > 0.0
                          ? t.kernel_gops * 100.0 / t.pct_of_peak
                          : 0.0;
      eff.memory_bound = t.memory_bound;
      os << "\nRoofline: " << eff.to_line() << "\n";
    }
  }

  // Process-wide telemetry accumulated while building this report (io
  // loads, model estimates, any pool activity) — the `report` summary
  // view of the src/obs registry.
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().snapshot();
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    os << "\n## Telemetry\n\n| metric | value |\n|---|---|\n";
    for (const auto& [name, value] : snap.counters) {
      os << "| " << name << " | " << value << " |\n";
    }
    for (const auto& [name, value] : snap.gauges) {
      os << "| " << name << " (gauge) | " << value << " |\n";
    }
  }
  out << "wrote report to " << out_path << "\n";
  return 0;
}

int cmd_kernel_src(Options& opt, std::ostream& out) {
  const std::string device = opt.str("device", "titanv");
  const std::string workload = opt.str("workload", "ld");
  const auto op = parse_op(opt.str("op", workload == "ld" ? "and" : "xor"));
  const bool pre_negate = opt.str("pre-negate", "no") == "yes";
  const std::string out_path = opt.str("out", "");
  opt.reject_unknown();
  const auto dev = model::gpu_by_name(device);
  auto cfg = model::paper_preset(
      dev, workload == "ld" ? model::WorkloadKind::kLd
                            : model::WorkloadKind::kFastId);
  cfg.pre_negated = pre_negate && op == bits::Comparison::kAndNot;
  const std::string program = kern::render_program(dev, cfg, op);
  if (out_path.empty()) {
    out << program;
  } else {
    std::ofstream os(out_path);
    if (!os) {
      throw std::runtime_error("cannot open " + out_path);
    }
    os << program;
    out << "wrote OpenCL program (" << program.size() << " bytes) to "
        << out_path << "\n";
  }
  return 0;
}

/// `snpcmp lint`: the src/analyze static analyzer as a CLI verb. With no
/// overrides it checks the Table II preset for --device/--workload; the
/// --m-r/--m-c/--k-c/--n-r/--grid-m/--grid-n overrides let CI and tests
/// probe deliberately corrupted configs, --lds-words/--k-iters probe a
/// specific launch shape (allocation and trip count) against the dataflow
/// proofs, and --soak N runs the analyzer's own mutation soundness soak
/// (N seeds per corpus cell). Exit 0 = clean (warn/info allowed), 3 = at
/// least one error-severity diagnostic (or any soak failure); 1/2 keep
/// their usual usage/runtime meanings.
int cmd_lint(Options& opt, std::ostream& out) {
  const auto soak_seeds = static_cast<int>(opt.num("soak", 0));
  if (soak_seeds > 0) {
    opt.reject_unknown();
    const auto stats = analyze::mutation_soak(soak_seeds);
    out << "soak: " << stats.programs << " corpus program(s), "
        << stats.mutants << " mutant(s), " << stats.skipped
        << " inapplicable, " << stats.failures.size() << " failure(s)\n";
    for (const auto& f : stats.failures) {
      out << "soak failure: " << f << "\n";
    }
    return stats.failures.empty() ? 0 : 3;
  }
  const std::string device = opt.str("device", "titanv");
  const std::string workload = opt.str("workload", "ld");
  if (workload != "ld" && workload != "fastid") {
    throw std::invalid_argument("--workload must be ld or fastid");
  }
  const auto kind = workload == "ld" ? model::WorkloadKind::kLd
                                     : model::WorkloadKind::kFastId;
  const auto op = parse_op(opt.str("op", workload == "ld" ? "and" : "xor"));
  const bool pre_negate = opt.str("pre-negate", "no") == "yes";
  const std::string format = opt.str("format", "text");
  if (format != "text" && format != "json") {
    throw std::invalid_argument("--format must be text or json");
  }
  const auto dev = model::gpu_by_name(device);
  auto cfg = model::paper_preset(dev, kind);
  cfg.pre_negated = pre_negate && op == bits::Comparison::kAndNot;
  cfg.m_r = static_cast<int>(
      opt.num("m-r", static_cast<std::uint64_t>(cfg.m_r)));
  cfg.m_c = static_cast<int>(
      opt.num("m-c", static_cast<std::uint64_t>(cfg.m_c)));
  cfg.k_c = static_cast<int>(
      opt.num("k-c", static_cast<std::uint64_t>(cfg.k_c)));
  cfg.n_r = static_cast<int>(
      opt.num("n-r", static_cast<std::uint64_t>(cfg.n_r)));
  cfg.grid.grid_m = static_cast<int>(
      opt.num("grid-m", static_cast<std::uint64_t>(cfg.grid.grid_m)));
  cfg.grid.grid_n = static_cast<int>(
      opt.num("grid-n", static_cast<std::uint64_t>(cfg.grid.grid_n)));
  analyze::AnalyzeOptions aopts;
  aopts.k_iterations = opt.num("k-iters", aopts.k_iterations);
  aopts.lds_words = static_cast<int>(opt.num("lds-words", 0));
  opt.reject_unknown();

  const analyze::Report report = analyze::analyze(dev, cfg, op, aopts);
  const auto errors = report.count(analyze::Severity::kError);
  const auto warns = report.count(analyze::Severity::kWarn);
  const auto infos = report.count(analyze::Severity::kInfo);
  if (format == "json") {
    out << "{\"device\": \"" << obs::json_escape(dev.name)
        << "\", \"workload\": \"" << workload << "\", \"op\": \""
        << to_string(op) << "\", \"config\": \""
        << obs::json_escape(cfg.to_string()) << "\", \"errors\": "
        << errors << ", \"warnings\": " << warns << ", \"infos\": "
        << infos << ", \"diagnostics\": ";
    report.write_json(out);
    out << "}\n";
  } else {
    out << "lint: " << dev.name << " " << workload << " " << to_string(op)
        << " " << cfg.to_string() << "\n";
    report.write_text(out);
    out << errors << " error(s), " << warns << " warning(s), " << infos
        << " info(s)\n";
  }
  return report.has_errors() ? 3 : 0;
}

int cmd_estimate(Options& opt, std::ostream& out) {
  const std::size_t m = opt.num("m", 32);
  const std::size_t n = opt.num("n", 20'000'000);
  const std::size_t k_bits = opt.num("kbits", 1024);
  const auto op = parse_op(opt.str("op", "xor"));
  const std::string device = opt.str("device", "titanv");
  const bool no_init = opt.str("no-init", "no") == "yes";
  const std::string trace_path = opt.str("trace", "");
  const Telemetry tele(opt);
  opt.reject_unknown();
  tele.begin();
  Context ctx = make_context(device);
  ComputeOptions copts;
  copts.functional = false;
  copts.include_init = !no_init;
  sim::Timeline timeline;
  const bool want_timeline = !trace_path.empty() || tele.wants_trace();
  if (want_timeline) {
    copts.timeline_out = &timeline;
  }
  const auto t = ctx.estimate(m, n, k_bits, op, copts);
  out << "projected " << m << " x " << n << " x " << k_bits << " bits ("
      << to_string(op) << ")\n";
  print_timing(out, t);
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      throw std::runtime_error("cannot open trace file " + trace_path);
    }
    sim::write_chrome_trace(timeline, os, t.device);
    out << "wrote chrome://tracing timeline to " << trace_path << "\n";
  }
  tele.finish(out, want_timeline && ctx.is_gpu() ? &timeline : nullptr, {},
              t.device, t.trace_anchor_us);
  return 0;
}

// ---- serve / submit: the ServiceEngine front-end (docs/service.md) ----

/// FNV-1a over a gamma row — a stable per-request digest, so golden CLI
/// tests can pin result identity without printing thousands of counts.
std::string row_digest(std::span<const std::uint32_t> row) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint32_t v : row) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Minimal field extractors for the request-script JSONL lines — the
/// grammar is three fixed keys, not general JSON (docs/service.md).
std::optional<std::string> json_field(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) return std::nullopt;
  if (line[pos] == '"') {
    const auto end = line.find('"', pos + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ' ') {
    ++end;
  }
  return line.substr(pos, end - pos);
}

std::optional<std::uint64_t> json_num(const std::string& line,
                                      const std::string& key) {
  const auto text = json_field(line, key);
  if (!text) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text->data(), text->data() + text->size(), v);
  if (ec != std::errc{} || ptr != text->data() + text->size()) {
    throw std::invalid_argument("script: '" + key +
                                "' expects an integer, got '" + *text + "'");
  }
  return v;
}

/// Signed-double variant for keys like "deadline_ms", where a negative
/// value means "already expired at submission" (docs/service.md).
std::optional<double> json_real(const std::string& line,
                                const std::string& key) {
  const auto text = json_field(line, key);
  if (!text) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(*text, &consumed);
    if (consumed != text->size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("script: '" + key +
                                "' expects a number, got '" + *text + "'");
  }
}

svc::ServiceConfig parse_service_config(Options& opt) {
  svc::ServiceConfig cfg;
  cfg.device = opt.str("device", "titanv");
  cfg.op = parse_op(opt.str("op", "xor"));
  cfg.pre_negate = opt.str("pre-negate", "no") == "yes";
  cfg.max_batch_rows = opt.num("max-batch", 32);
  cfg.coalesce_window_s = opt.real("window-ms", 0.0) / 1e3;
  cfg.max_queue = opt.num("max-queue", 256);
  cfg.cache_capacity = opt.num("cache", 1024);
  cfg.compute_threads = opt.num("threads", 0);
  const std::string admission = opt.str("admission", "reject");
  const auto policy = svc::parse_admission_policy(admission);
  if (!policy) {
    throw std::invalid_argument("--admission must be reject or block");
  }
  cfg.admission = *policy;
  // Latency SLO: --slo-ms arms the burn-rate monitor (docs/observability
  // .md); a breach dumps the flight recorder to the --flight-out /
  // $SNPCMP_FLIGHT_OUT destination.
  cfg.slo.objective_s = opt.real("slo-ms", 0.0) / 1e3;
  // Request-lifecycle robustness knobs (docs/robustness.md): a per-device
  // circuit breaker ahead of the recovery ladder, a per-class retry token
  // bucket, and the brown-out shed ceiling used when the SLO trips.
  cfg.breaker.failure_threshold = static_cast<int>(opt.num("breaker", 0));
  cfg.retry_budget = opt.real("retry-budget", 0.0);
  cfg.brownout_class_max =
      static_cast<int>(opt.num("brownout-class", 0));
  // Script-driven runs gate batch formation on barriers, so batch ids and
  // widths are a pure function of the script — CI-golden by construction.
  cfg.start_paused = true;
  return cfg;
}

/// One scripted request's outcome slot, resolved after the final barrier.
struct ScriptedRequest {
  std::future<svc::QueryResult> fut;
  std::string shed_code;        ///< non-empty: rejected at admission
  std::uint64_t trace_id = 0;   ///< allocated by submit() even for sheds
};

/// The deterministic "service:" report block (golden in test_service_cli)
/// plus the wall-clock "slo:" line, which goldens must not match on.
void print_service_report(std::ostream& out, const svc::ServiceEngine& eng) {
  const svc::ServiceStats s = eng.stats();
  const svc::ServiceConfig& cfg = eng.config();
  out << "service:     device=" << cfg.device << " op=" << to_string(cfg.op)
      << " pre-negate=" << (cfg.pre_negate ? "yes" : "no") << "\n"
      << "service:     requests=" << s.submitted << " completed="
      << s.completed << " failed=" << s.failed << " rejected=" << s.rejected
      << "\n"
      << "service:     batches=" << s.batches << " mean-width="
      << s.mean_batch_rows << " max-width=" << s.max_batch_rows << "\n"
      << "service:     cache hits=" << s.cache_hits << " misses="
      << s.cache_misses << "\n"
      << "service:     queue peak=" << s.peak_queue_depth << " epoch="
      << s.epoch << "\n";
  if (s.fault_events > 0 || s.degraded_batches > 0) {
    out << "service:     faults=" << s.fault_events << " degraded-batches="
        << s.degraded_batches << "\n";
  }
  // Deadline outcomes (docs/robustness.md): sheds never reached a kernel
  // launch; expired means the result was delivered late or the batch was
  // cancelled mid-pipeline. Silent when no request carried a deadline, so
  // legacy goldens are unaffected.
  if (s.deadline_shed > 0 || s.deadline_expired > 0 || s.deadline_met > 0) {
    out << "deadlines:   met=" << s.deadline_met << " expired="
        << s.deadline_expired << " shed=" << s.deadline_shed << "\n";
  }
  if (s.brownout_entries > 0 || s.brownout_shed > 0) {
    out << "brownout:    entries=" << s.brownout_entries << " shed="
        << s.brownout_shed
        << (s.brownout_active ? " active=yes" : " active=no") << "\n";
  }
  // Honest percentiles: the SLO monitor's histogram gives bucket upper
  // bounds, marked '~=' (docs/observability.md). Falls back to the exact
  // sorted-sample readout when obs is compiled out (empty histogram).
  const svc::SloReport slo = eng.slo();
  if (slo.state.total > 0) {
    out << "slo:         p50~=" << slo.p50_le_s * 1e3 << " ms p99~="
        << slo.p99_le_s * 1e3 << " ms max=" << s.max_latency_s * 1e3
        << " ms (bucket upper bounds)\n";
  } else {
    out << "slo:         p50=" << s.p50_latency_s * 1e3 << " ms p99="
        << s.p99_latency_s * 1e3 << " ms max=" << s.max_latency_s * 1e3
        << " ms\n";
  }
  if (slo.objective_s > 0.0) {
    out << "slo:         objective=" << slo.objective_s * 1e3
        << " ms breaches=" << slo.state.breaches << "/" << slo.state.total
        << " burn fast=" << slo.state.burn_fast << " slow="
        << slo.state.burn_slow << " trips=" << slo.state.trips << "\n";
    if (slo.worst.has_value()) {
      out << "slo:         exemplar trace=" << slo.worst->trace_id
          << " latency=" << slo.worst->latency_s * 1e3 << " ms\n";
    }
  }
}

/// The deterministic "cost:" report block: ledger totals over the run.
/// Counts and bytes/word-ops are pure functions of a scripted workload
/// (CI-golden); attributed times are kept off these lines because the
/// degrade rung adds measured wall clock to them. Silent when the ledger
/// is empty (SNPCMP_OBS=OFF or attribution disabled).
void print_cost_report(std::ostream& out, const svc::ServiceEngine& eng) {
  const obs::CostSnapshot cs = eng.cost();
  if (cs.total_requests == 0 && cs.batches.empty()) {
    return;
  }
  out << "cost:        requests=" << cs.total_requests << " cache-hits="
      << cs.cache_hits << " batches=" << cs.batches.size() << " dropped="
      << cs.dropped_requests << "\n"
      << "cost:        h2d=" << cs.h2d_bytes << " B d2h=" << cs.d2h_bytes
      << " B wordops=" << cs.wordops << "\n";
  if (cs.retries > 0 || cs.failovers > 0 || cs.degraded_batches > 0) {
    out << "cost:        retries=" << cs.retries << " failovers="
        << cs.failovers << " degraded-batches=" << cs.degraded_batches
        << "\n";
  }
}

/// Shared `--cost-out F.json` handling for serve/submit: writes the
/// engine ledger's deterministic JSON document after the report blocks.
void write_cost_out(std::ostream& out, const svc::ServiceEngine& eng,
                    const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open cost file " + path);
  }
  eng.write_cost_json(os);
  out << "wrote cost ledger (" << eng.cost().total_requests
      << " requests) to " << path << "\n";
}

/// Resolves every scripted request in submission order, prints its stable
/// per-request line, and returns the first batch failure (the CLI rethrows
/// it after the report so the SNPRT-* exit-4 contract holds end to end).
std::exception_ptr print_request_lines(std::ostream& out,
                                       std::vector<ScriptedRequest>& reqs) {
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    out << "req " << i << ": ";
    // Every line ends with the request's trace id — the handle into the
    // merged Perfetto trace and the flight-recorder dump.
    if (!reqs[i].shed_code.empty()) {
      out << "rejected [" << reqs[i].shed_code << "] trace="
          << reqs[i].trace_id << "\n";
      continue;
    }
    try {
      const svc::QueryResult r = reqs[i].fut.get();
      if (r.cache_hit) {
        out << "cache-hit epoch=" << r.epoch;
      } else {
        out << "batch=" << r.batch_id << " width=" << r.batch_rows
            << " epoch=" << r.epoch;
      }
      if (r.degraded) {
        out << " degraded";
      }
      out << " digest=" << row_digest(r.row) << " trace=" << r.trace_id
          << "\n";
    } catch (const rt::Error& e) {
      out << "error [" << rt::code_name(e.code()) << "] trace="
          << reqs[i].trace_id << "\n";
      if (!first_error) first_error = std::current_exception();
    } catch (const std::exception&) {
      out << "error trace=" << reqs[i].trace_id << "\n";
      if (!first_error) first_error = std::current_exception();
    }
  }
  return first_error;
}

/// Submits query row `q`, mapping an admission shed to a printed line
/// instead of a fatal error (the service kept running — that is the point
/// of a shed policy). Overload and expired-deadline sheds both stay
/// non-fatal; every other admission error is a real bug and propagates.
void submit_one(svc::ServiceEngine& engine, const bits::BitMatrix& queries,
                std::size_t q, const svc::SubmitOptions& base,
                std::vector<ScriptedRequest>& reqs) {
  ScriptedRequest slot;
  svc::SubmitOptions options = base;
  options.trace_out = &slot.trace_id;
  try {
    slot.fut = engine.submit(queries.row_slice(q, q + 1), options);
  } catch (const rt::Error& e) {
    if (e.code() != rt::ErrorCode::kOverload &&
        e.code() != rt::ErrorCode::kDeadline) {
      throw;
    }
    slot.shed_code = rt::code_name(e.code());
  }
  reqs.push_back(std::move(slot));
}

/// `snpcmp serve`: drive a ServiceEngine from a JSONL request script.
/// Lines: {"submit": Q [, "policy": "...", "count": N, "deadline_ms": X,
/// "class": C]} enqueues query row Q; {"barrier": true} releases the
/// backlog and waits for it (resume -> drain -> pause), closing the
/// current coalescing generation; {"epoch": "FILE.sbm"} swaps the
/// resident database. '#' and blank lines are skipped; a final barrier
/// is implicit.
int cmd_serve(Options& opt, std::ostream& out) {
  const std::string dbpath = opt.require("db");
  const std::string qpath = opt.require("queries");
  const std::string script_path = opt.require("script");
  const std::string cost_path = opt.str("cost-out", "");
  svc::ServiceConfig cfg = parse_service_config(opt);
  const Telemetry tele(opt);
  FaultControl faults(opt);
  opt.reject_unknown();
  tele.begin();
  // Reuse the shared fault flags: the armed plan spans the engine's whole
  // lifetime, and the recovery policy becomes the engine default.
  ComputeOptions proto;
  faults.apply(proto);
  cfg.recovery = proto.recovery;

  const auto queries = io::load_bitmatrix(std::filesystem::path(qpath));
  svc::ServiceEngine engine(
      io::load_bitmatrix(std::filesystem::path(dbpath)), cfg);

  std::ifstream script(script_path);
  if (!script) {
    throw std::invalid_argument("serve: cannot open --script " +
                                script_path);
  }
  std::vector<ScriptedRequest> reqs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(script, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      if (json_field(line, "barrier")) {
        engine.resume();
        engine.drain();
        engine.pause();
      } else if (const auto path = json_field(line, "epoch")) {
        engine.update_database(
            io::load_bitmatrix(std::filesystem::path(*path)));
      } else if (const auto q = json_num(line, "submit")) {
        if (*q >= queries.rows()) {
          throw std::invalid_argument("query row out of range");
        }
        svc::SubmitOptions options;
        if (const auto policy_text = json_field(line, "policy")) {
          const auto policy = rt::parse_fail_policy(*policy_text);
          if (!policy) {
            throw std::invalid_argument("bad policy '" + *policy_text +
                                        "'");
          }
          options.recovery = cfg.recovery;
          options.recovery->policy = *policy;
        }
        options.deadline_ms = json_real(line, "deadline_ms").value_or(0.0);
        options.request_class = static_cast<int>(
            json_num(line, "class").value_or(1));
        const std::uint64_t count = json_num(line, "count").value_or(1);
        for (std::uint64_t c = 0; c < count; ++c) {
          submit_one(engine, queries, *q, options, reqs);
        }
      } else {
        throw std::invalid_argument(
            "expected \"submit\", \"barrier\" or \"epoch\"");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("serve: " + script_path + ":" +
                                  std::to_string(lineno) + ": " + e.what());
    }
  }
  engine.resume();
  engine.drain();

  const std::exception_ptr first_error = print_request_lines(out, reqs);
  print_service_report(out, engine);
  print_cost_report(out, engine);
  write_cost_out(out, engine, cost_path);
  tele.finish(out, nullptr, {}, cfg.device);
  if (first_error) std::rethrow_exception(first_error);
  return 0;
}

/// `snpcmp submit`: one-shot convenience — every row of --queries becomes
/// one request, coalesced under --max-batch. Equivalent to a script of N
/// submit lines and one barrier.
int cmd_submit(Options& opt, std::ostream& out) {
  const std::string dbpath = opt.require("db");
  const std::string qpath = opt.require("queries");
  const std::string cost_path = opt.str("cost-out", "");
  svc::ServiceConfig cfg = parse_service_config(opt);
  svc::SubmitOptions options;
  options.deadline_ms = opt.real("deadline-ms", 0.0);
  options.request_class = static_cast<int>(opt.num("class", 1));
  const Telemetry tele(opt);
  FaultControl faults(opt);
  opt.reject_unknown();
  tele.begin();
  ComputeOptions proto;
  faults.apply(proto);
  cfg.recovery = proto.recovery;

  const auto queries = io::load_bitmatrix(std::filesystem::path(qpath));
  svc::ServiceEngine engine(
      io::load_bitmatrix(std::filesystem::path(dbpath)), cfg);
  std::vector<ScriptedRequest> reqs;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    submit_one(engine, queries, q, options, reqs);
  }
  engine.resume();
  engine.drain();

  const std::exception_ptr first_error = print_request_lines(out, reqs);
  print_service_report(out, engine);
  print_cost_report(out, engine);
  write_cost_out(out, engine, cost_path);
  tele.finish(out, nullptr, {}, cfg.device);
  if (first_error) std::rethrow_exception(first_error);
  return 0;
}

}  // namespace

std::string usage() {
  return R"(usage: snpcmp <command> [--option value ...]

commands:
  devices                       list available (simulated) devices
  env       [--format text|json]
                                benchmark environment fingerprint (CPU,
                                governor, compiler, git sha, perf-counter
                                availability)
  gen       --out F             generate a genotype cohort
            [--loci N] [--samples N] [--seed S] [--ld-block N]
            [--maf-min X] [--maf-max X] [--format plink|vcf|tsv]
  gendb     --out F             generate a forensic profile database (.sbm)
            [--profiles N] [--snps N] [--seed S] [--maf-min X] [--maf-max X]
  encode    --in F --out F      pack genotypes into bit vectors
            [--plane presence|hom] [--format auto|plink|vcf]
  kinship   --in F              KING-robust relatedness over a cohort
            [--top K] [--format auto|plink|vcf]
  qc        --in F              per-locus QC (MAF, missingness, HWE)
            [--min-maf X] [--max-missing X] [--min-hwe-p X]
            [--ld-prune-r2 X [--ld-prune-window N]]
            [--out F: write passing loci] [--format auto|plink|vcf]
  assoc     --in F               case-control GWAS scan (trend + allelic)
            --cases L | --pheno F  (L = comma-separated names/indices;
            pheno file = "sample<TAB>0|1|case|control" lines)
            [--top K] [--format auto|plink|vcf]
  cluster   --in F               UPGMA population structure (+ Fst at k=2)
            [--k N] [--device D] [--format auto|plink|vcf]
  ld        --in F.sbm          linkage disequilibrium (Eq. 1)
            [--device D] [--out gamma.scm] [--top K] [--threads N]
            [telemetry flags]
  search    --queries F --db F  FastID identity search (Eq. 2)
            [--device D] [--top K] [--threads N] [--host-trace F.json]
            [--lds-words N: launch-time LDS allocation the pre-launch
            verifier proves the kernel against; blocked with exit 3 if
            too small] [telemetry flags]
  mixture   --profiles F --mixtures F   FastID mixture analysis (Eq. 3)
            [--device D] [--tolerance T] [--pre-negate yes|no]
            [--threads N] [telemetry flags]
  merge     --a F --b F --out F [--axis samples|loci]
            combine genotyping batches (samples) or marker panels (loci)
  subset    --in F --out F [--samples n1,n2,...] [--loci a-b | i,j,...]
            extract a sample/locus subset
  kernel-src [--device D] [--workload ld|fastid] [--op and|xor|andnot]
            [--pre-negate yes|no] [--out F.cl]
            render the parameterized OpenCL kernel for a device
  lint      [--device D] [--workload ld|fastid] [--op and|xor|andnot]
            [--pre-negate yes|no] [--format text|json]
            [--m-r N] [--m-c N] [--k-c N] [--n-r N] [--grid-m N] [--grid-n N]
            [--lds-words N] [--k-iters N] [--soak N]
            static analysis of the kernel config, instruction IR
            (dataflow race/bounds/overflow proofs), and rendered OpenCL
            source (docs/static-analysis.md); --lds-words/--k-iters probe
            an explicit launch shape, --soak N runs the mutation
            soundness soak with N seeds per corpus cell; exit 3 when
            error-severity diagnostics (or soak failures) are present
  report    --in F --out R.md   markdown cohort report (QC + kinship +
            optional association + projected device performance)
            [--cases L] [--device D] [--format auto|plink|vcf]
  report    --trace T.json --metrics M.json
            pipeline bottleneck analysis over a run's telemetry
            artifacts: per-stage utilization, overlap and coalescing
            efficiency, queue-wait decomposition, Little's-law
            consistency check, top-N most expensive requests
            [--cost C.json: cost ledger for the top-N section]
            [--top N] [--littles-tol X] [--out R.txt]
  estimate  [--m N] [--n N] [--kbits N] [--op and|xor|andnot]
            [--device D] [--no-init yes|no] [--trace F.json]
            [telemetry flags]
            paper-scale projection (+ chrome://tracing timeline)
  serve     --db F.sbm --queries F.sbm --script R.jsonl
            script-driven resident-DB query service (docs/service.md);
            script lines: {"submit": Q[, "policy": P, "count": N,
            "deadline_ms": X, "class": C]}, {"barrier": true},
            {"epoch": "F.sbm"}; deadline_ms sets the request's
            end-to-end deadline (negative = already expired; shed at
            admission with SNPRT-DEADLINE), class its brown-out shed
            priority (lowest sheds first)
            [--device D] [--op and|xor|andnot] [--pre-negate yes|no]
            [--max-batch N] [--window-ms X] [--max-queue N]
            [--admission reject|block] [--cache N] [--threads N]
            [--slo-ms X: latency objective for the burn-rate monitor;
            a breach dumps the flight recorder and, with
            --brownout-class, starts shedding low classes]
            [--breaker N: open the per-device circuit breaker after N
            consecutive device failures (docs/robustness.md)]
            [--retry-budget X: per-class retry token bucket capacity;
            an empty bucket fast-fails instead of retrying]
            [--brownout-class C: during brown-out, shed classes <= C]
            [--cost-out F.json: per-request cost ledger (exact batch-
            cost shares by gamma-row ownership; docs/observability.md)]
            [fault-tolerance flags] [telemetry flags]
  submit    --db F.sbm --queries F.sbm
            one-shot service submission: every query row becomes one
            request, coalesced under --max-batch (same options as
            serve, plus [--deadline-ms X] [--class C] applied to every
            request)

fault-tolerance flags (ld, search, mixture, serve, submit;
docs/robustness.md):
  --fail-policy abort|retry|failover|degrade
                                recovery policy for device faults
                                (default retry; degrade falls back to the
                                host engine with bit-identical results)
  --inject-faults SPEC          deterministic fault plan, e.g.
                                "launch:p=0.05:seed=7" or "h2d:after=3"
                                (sites: alloc h2d launch readback pool io
                                shard timeout; also via SNPCMP_FAULTS);
                                unrecovered faults exit 4 with the stable
                                SNPRT-* code on stderr

telemetry flags (ld, search, mixture, estimate, serve, submit):
  --metrics-out F.json          dump the process metrics registry
  --metrics-format json|prom    metrics dump format (default json)
  --trace-out F.json            merged Perfetto/chrome://tracing trace:
                                host spans + chunk pipeline + simulated
                                device timeline in one file, with flow
                                arrows linking each service request's
                                submit -> batch -> chunks -> resolution
  --flight-out F.json           dump the always-on flight recorder (ring
                                of enqueue/batch/chunk/fault events) at
                                exit; also the destination for automatic
                                dumps on exit-4 faults and SLO breaches
                                (env fallback: SNPCMP_FLIGHT_OUT)
  --perf                        wrap the run in hardware perf counters
                                (Linux perf_event_open) and print IPC and
                                cache/branch miss rates; degrades to a
                                note where counters are unavailable

devices: cpu, gtx980, titanv, vega64
)";
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 1 : 0;
  }
  // In-process callers (tests, batch drivers) run many commands through
  // this entry point: a previous command's --flight-out must not become
  // this command's automatic fault-dump destination.
  obs::FlightRecorder::global().set_dump_path("");
  try {
    const std::string& cmd = args[0];
    if (cmd == "devices") {
      return cmd_devices(out);
    }
    Options opt(args, 1);
    if (cmd == "env") {
      return cmd_env(opt, out);
    }
    if (cmd == "gen") {
      return cmd_gen(opt, out);
    }
    if (cmd == "gendb") {
      return cmd_gendb(opt, out);
    }
    if (cmd == "encode") {
      return cmd_encode(opt, out);
    }
    if (cmd == "ld") {
      return cmd_ld(opt, out);
    }
    if (cmd == "search") {
      return cmd_search(opt, out);
    }
    if (cmd == "mixture") {
      return cmd_mixture(opt, out);
    }
    if (cmd == "kinship") {
      return cmd_kinship(opt, out);
    }
    if (cmd == "qc") {
      return cmd_qc(opt, out);
    }
    if (cmd == "assoc") {
      return cmd_assoc(opt, out);
    }
    if (cmd == "cluster") {
      return cmd_cluster(opt, out);
    }
    if (cmd == "kernel-src") {
      return cmd_kernel_src(opt, out);
    }
    if (cmd == "lint") {
      return cmd_lint(opt, out);
    }
    if (cmd == "merge") {
      return cmd_merge(opt, out);
    }
    if (cmd == "subset") {
      return cmd_subset(opt, out);
    }
    if (cmd == "report") {
      return cmd_report(opt, out);
    }
    if (cmd == "estimate") {
      return cmd_estimate(opt, out);
    }
    if (cmd == "serve") {
      return cmd_serve(opt, out);
    }
    if (cmd == "submit") {
      return cmd_submit(opt, out);
    }
    err << "unknown command '" << cmd << "'\n" << usage();
    return 1;
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << "\n" << usage();
    return 1;
  } catch (const analyze::VerificationError& e) {
    // Pre-launch verification failure: the dataflow engine proved the
    // configured kernel unsafe, so nothing launched. The stable check ID
    // is the first stderr token (same contract as SNPRT-* faults) and
    // the exit code matches `snpcmp lint`'s error exit.
    err << e.check_id() << " " << e.what() << "\n";
    return 3;
  } catch (const rt::Error& e) {
    // Structured runtime failure (exhausted retries under --fail-policy
    // abort/retry, unrecoverable corruption, ...): the stable SNPRT-*
    // code is the first token so scripts can match on it. The flight
    // recorder is dumped after the error line (stderr contract: the code
    // stays first) to --flight-out / $SNPCMP_FLIGHT_OUT when configured.
    err << "error: " << e.what() << "\n";
    const std::string dumped = obs::FlightRecorder::global().auto_dump(
        "fault: " + std::string(rt::code_name(e.code())));
    if (!dumped.empty()) {
      err << "flight: wrote " << dumped << "\n";
    }
    return 4;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace snp::cli
