// snpcmp command-line driver.
//
// The downstream-user surface for file-based pipelines: generate synthetic
// cohorts and forensic databases, encode genotypes to the packed bit
// format, run LD / identity search / mixture analysis on any simulated
// device (or the CPU), and project paper-scale runs with the data-free
// estimator. Implemented as a library entry point so tests can drive it
// in-process; `tools/snpcmp_cli.cpp` is the thin main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace snp::cli {

/// Runs one CLI invocation. `args` excludes the program name. Normal
/// output goes to `out`, diagnostics to `err`; the return value is the
/// process exit code (0 success, 1 usage error, 2 runtime failure,
/// 3 lint errors, 4 structured rt::Error — the stable SNPRT-* code is
/// the first stderr token).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// The usage/help text (also printed by `run` on bad input).
[[nodiscard]] std::string usage();

}  // namespace snp::cli
