#include "kern/kernel_program.hpp"

#include <stdexcept>

namespace snp::kern {

using sim::Instr;
using sim::kNoReg;
using sim::Opcode;
using sim::Space;

KernelProgramInfo build_kernel_program(const model::GpuSpec& dev,
                                       const model::KernelConfig& cfg,
                                       bits::Comparison op,
                                       std::uint64_t k_iterations,
                                       int unroll) {
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("build_kernel_program: " + check.reason);
  }
  if (unroll <= 0 || k_iterations == 0) {
    throw std::invalid_argument(
        "build_kernel_program: unroll and k_iterations must be positive");
  }
  const int lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;
  const int cols_per_group = cfg.n_r / lfn;
  const int outputs_per_group = cfg.m_r * cols_per_group;
  const int outputs_per_thread =
      std::max(1, outputs_per_group / dev.n_t);

  // Register file layout (per thread):
  //   [0, n_acc)                       accumulators
  //   [n_acc, n_acc+m_r)               A values (from shared memory)
  //   b_stage, b_consume               double-buffered B (global memory)
  //   [.., +n_acc)                     one temporary per in-flight output
  const int n_acc = outputs_per_thread;
  const int a_base = n_acc;
  const int b_stage = a_base + cfg.m_r;
  const int b_consume = b_stage + 1;
  const int tmp_base = b_consume + 1;

  KernelProgramInfo info;
  info.outputs_per_thread = outputs_per_thread;
  info.registers_per_thread = tmp_base + n_acc;

  sim::Program& p = info.program;
  const long long n_t = dev.n_t;
  // Declared footprints the dataflow verifier proves accesses against:
  // the Eq. 4/5 LDS tile, the packed A panel, the streamed B words (one
  // n_t-wide vector per iteration plus the primed one), and the gamma
  // write-back.
  p.shared_words = cfg.m_c * cfg.k_c;
  p.extent_words[0] = static_cast<long long>(cfg.m_c) * cfg.k_c;
  p.extent_words[1] =
      (static_cast<long long>(k_iterations) + 1) * n_t;
  p.extent_words[2] = static_cast<long long>(n_acc) * n_t;

  // Prologue: this thread's share of the cooperative A-tile staging (the
  // third loop packs A into local memory, k-major so lanes land in
  // distinct banks), published to the group by a barrier before any lane
  // reads it back; then zero the accumulators and prime the B double
  // buffer from global memory. Staging is coalesced: row r's share is
  // the contiguous words [r*n_t, (r+1)*n_t), lane id selecting the word.
  for (int r = 0; r < cfg.m_r; ++r) {
    p.prologue.push_back({Opcode::kLdg, a_base + r, kNoReg, kNoReg, 1,
                          Space::kGlobalA, r * n_t, 0});
  }
  for (int r = 0; r < cfg.m_r; ++r) {
    p.prologue.push_back({Opcode::kSts, kNoReg, a_base + r, kNoReg, 1,
                          Space::kShared, r * n_t, 0});
  }
  p.prologue.push_back({Opcode::kBar, kNoReg, kNoReg, kNoReg, 0});
  for (int acc = 0; acc < n_acc; ++acc) {
    p.prologue.push_back({Opcode::kMovi, acc, kNoReg, kNoReg, 0});
  }
  p.prologue.push_back(
      {Opcode::kLdg, b_stage, kNoReg, kNoReg, 1, Space::kGlobalB, 0, 0});

  const Opcode logic_op = [&] {
    switch (op) {
      case bits::Comparison::kAnd:
        return Opcode::kAnd;
      case bits::Comparison::kXor:
        return Opcode::kXor;
      case bits::Comparison::kAndNot:
        return Opcode::kAndn;
    }
    return Opcode::kAnd;
  }();
  const bool needs_separate_not = op == bits::Comparison::kAndNot &&
                                  !cfg.pre_negated && !dev.fused_andnot;
  const bool lowered_to_and =
      op == bits::Comparison::kAndNot && cfg.pre_negated;

  // Body: `unroll` k-steps. The vectorized B load is double-buffered:
  // consume what the *previous* iteration staged, then immediately issue
  // the next stage load so its global-memory latency hides under the
  // iteration's compute (the double buffering the real kernel performs
  // with its registers).
  p.body.push_back({Opcode::kMov, b_consume, b_stage, kNoReg, 0});
  // Iteration i stages iteration i+1's B vector: lane-coalesced words
  // [(i+1)*n_t, (i+2)*n_t).
  p.body.push_back({Opcode::kLdg, b_stage, kNoReg, kNoReg, 1,
                    Space::kGlobalB, n_t, dev.n_t});
  for (int u = 0; u < unroll; ++u) {
    // m_r A values from the k-major staged tile (word k*m_c + row). The
    // whole group walks the same k-slot, so each read is a broadcast of
    // one word (stride 0, conflict-free); the walk stays inside the
    // staged tile, so the footprint is iteration-invariant.
    for (int r = 0; r < cfg.m_r; ++r) {
      p.body.push_back({Opcode::kLds, a_base + r, kNoReg, kNoReg, 0,
                        Space::kShared,
                        static_cast<long long>(u) * cfg.m_c + r, 0});
    }

    // Software-pipelined emission (what the compiler's scheduler does to
    // the micro-kernel): all logic ops, then all popcounts, then all
    // accumulates, each output in its own temporary, so the in-order
    // front end never stalls on the op -> popc -> add chain.
    for (int o = 0; o < outputs_per_thread; ++o) {
      const int a_reg = a_base + o % cfg.m_r;
      const int b_reg = b_consume;
      const int tmp = tmp_base + o;
      if (needs_separate_not) {
        // NOT then AND on the logic pipe (the Vega penalty of Fig. 9).
        p.body.push_back({Opcode::kNot, tmp, b_reg, kNoReg, 0});
        p.body.push_back({Opcode::kAnd, tmp, a_reg, tmp, 0});
      } else {
        p.body.push_back({lowered_to_and ? Opcode::kAnd : logic_op, tmp,
                          a_reg, b_reg, 0});
      }
    }
    for (int o = 0; o < outputs_per_thread; ++o) {
      p.body.push_back({Opcode::kPopc, tmp_base + o, tmp_base + o, kNoReg,
                        0});
    }
    for (int o = 0; o < outputs_per_thread; ++o) {
      p.body.push_back({Opcode::kAdd, o, o, tmp_base + o, 0});
    }
  }
  p.iterations = k_iterations;

  // Epilogue: store the accumulators (defeats nothing here, but mirrors
  // the real kernel's C write-back).
  for (int acc = 0; acc < n_acc; ++acc) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, acc, kNoReg, 1,
                          Space::kGlobalC, acc * n_t, 0});
  }

  info.wordops_per_iteration =
      static_cast<std::uint64_t>(outputs_per_thread) *
      static_cast<std::uint64_t>(dev.n_t) * static_cast<std::uint64_t>(
                                                unroll);
  return info;
}

}  // namespace snp::kern
