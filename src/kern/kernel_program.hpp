// Lowers the SNP-comparison inner loop to the mini instruction IR.
//
// The tile-level timing model (sim/timing.cpp) prices the kernel from an
// analytical instruction mix; this generator emits the *actual* per-thread-
// group instruction stream of the micro-kernel — shared-memory loads of
// the A values, global loads of the streamed B words, then the
// (logic, popcount, accumulate) triple per output — so the cycle-level
// CoreSim can execute it. Tests close the loop: the simulated steady-state
// throughput must match the analytical bottleneck-pipe rate, and the
// occupancy sweep must plateau at N_cl x L_fn groups exactly as the
// framework's occupancy policy assumes.
#pragma once

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/isa.hpp"

namespace snp::kern {

struct KernelProgramInfo {
  sim::Program program;
  /// Lane word-ops (logic+popc+add triples) per loop iteration, for
  /// throughput accounting: body word-ops = outputs_per_group * unroll.
  std::uint64_t wordops_per_iteration = 0;
  int outputs_per_thread = 0;
  int registers_per_thread = 0;
};

/// Builds one thread group's inner loop under `cfg` on `dev` for `op`
/// (after Eq. 3 lowering): each iteration covers `unroll` k-steps of the
/// m_r x (n_r / L_fn) sub-tile the group owns.
[[nodiscard]] KernelProgramInfo build_kernel_program(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    bits::Comparison op, std::uint64_t k_iterations, int unroll = 4);

}  // namespace snp::kern
