// OpenCL C source rendering of the parameterized kernel.
//
// The paper's shipped artifact is exactly this: one OpenCL kernel whose
// blocking is fixed by C macros in a configuration header ("our GPU kernel
// is parameterized via C macros which are captured in a header file").
// This module renders both pieces — the per-device/per-workload macro
// header and the kernel body implementing the third BLIS loop (cooperative
// A-tile load into local memory, barrier, B streamed from global memory,
// register accumulators) — so the reproduction can be pointed at a real
// OpenCL runtime, and so tests can pin the source-level differences
// between devices (fused vs separate NOT, L_fn column counts, k_c).
#pragma once

#include <string>

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"

namespace snp::kern {

/// The configuration header: every model parameter the kernel consumes,
/// as #defines (the paper's "users are expected to only identify the
/// hardware features" interface).
[[nodiscard]] std::string render_config_header(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    bits::Comparison op);

/// The kernel body (`__kernel void snp_compare(...)`), written against
/// the macros from render_config_header.
[[nodiscard]] std::string render_kernel_source(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    bits::Comparison op);

/// Header + kernel in one translation unit, ready for
/// clCreateProgramWithSource.
[[nodiscard]] std::string render_program(const model::GpuSpec& dev,
                                         const model::KernelConfig& cfg,
                                         bits::Comparison op);

}  // namespace snp::kern
