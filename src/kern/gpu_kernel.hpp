// The parameterized GPU SNP-comparison kernel (paper Sections IV-C and V).
//
// This is the BLIS third loop around the micro-kernel and its contents,
// exactly as the paper's OpenCL kernel implements it: for each m_c x n_r
// tile of C assigned to a compute core, the kernel packs an m_c x k_c tile
// of A into shared memory, then streams B from global memory while the
// thread groups accumulate popcount inner products in registers. Where the
// paper configures the kernel with C macros in a header, we configure it
// with a model::KernelConfig — same four values (m_c, m_r, k_c, n_r) plus
// the core grid.
//
// Execution here is functional (it produces the real counts, on 32-bit
// words as on the GPU) with the identical tiling/traversal; the time the
// simulated device takes comes from sim::estimate_kernel on the same
// config, so results and timings always describe the same loop structure.
#pragma once

#include <optional>

#include "bits/bitmatrix.hpp"
#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/timing.hpp"

namespace snp::kern {

class GpuSnpKernel {
 public:
  /// Throws std::invalid_argument when `cfg` fails model::validate for
  /// `dev` (the compile-time config check of the paper's header file).
  GpuSnpKernel(model::GpuSpec dev, model::KernelConfig cfg,
               bits::Comparison op);

  [[nodiscard]] const model::GpuSpec& device() const { return dev_; }
  [[nodiscard]] const model::KernelConfig& config() const { return cfg_; }
  [[nodiscard]] bits::Comparison op() const { return op_; }

  /// The comparison the kernel physically executes after the Eq. 3
  /// lowering (AND when the database is pre-negated).
  [[nodiscard]] bits::Comparison lowered_op() const;

  /// Functional execution: accumulates gamma[i,j] += popc(op(A[i,:],
  /// B[j,:])) into `c` with the GPU tiling (32-bit words, shared-memory
  /// A tile, streamed B). `c` must be a.rows() x b.rows(); pass
  /// `accumulate = false` to overwrite instead (beta = 0).
  void execute(const bits::BitMatrix& a, const bits::BitMatrix& b,
               bits::CountMatrix& c, bool accumulate = false) const;

  /// Largest K (in 32-bit words) a single A tile supports: k_c. Problems
  /// deeper than this run multiple packed panels (handled by execute).
  [[nodiscard]] std::size_t max_panel_words() const {
    return static_cast<std::size_t>(cfg_.k_c);
  }

  /// Simulated execution time for this kernel on a given shape.
  [[nodiscard]] sim::KernelTiming timing(const sim::KernelShape& shape)
      const;

 private:
  model::GpuSpec dev_;
  model::KernelConfig cfg_;
  bits::Comparison op_;
};

}  // namespace snp::kern
