#include "kern/opencl_source.hpp"

#include <sstream>
#include <stdexcept>

namespace snp::kern {

namespace {

/// The word-level comparison expression for the inner loop. On devices
/// with a fused negate-AND (NVIDIA LOP3), `a & ~b` is one instruction, so
/// the expression is emitted directly; without it (Vega), the explicit
/// NOT is its own statement so the penalty is visible in the source too.
const char* op_expression(bits::Comparison op, bool pre_negated) {
  switch (op) {
    case bits::Comparison::kAnd:
      return "(a_val & b_val)";
    case bits::Comparison::kXor:
      return "(a_val ^ b_val)";
    case bits::Comparison::kAndNot:
      return pre_negated ? "(a_val & b_val)" : "(a_val & ~b_val)";
  }
  return "(a_val & b_val)";
}

}  // namespace

std::string render_config_header(const model::GpuSpec& dev,
                                 const model::KernelConfig& cfg,
                                 bits::Comparison op) {
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("render_config_header: " + check.reason);
  }
  const int lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;
  std::ostringstream os;
  os << "/* snpcmp kernel configuration: " << dev.name << " ("
     << dev.microarch << "), " << bits::to_string(op) << " */\n"
     << "#define SNP_M_R " << cfg.m_r << "\n"
     << "#define SNP_M_C " << cfg.m_c << "\n"
     << "#define SNP_K_C " << cfg.k_c << "\n"
     << "#define SNP_N_R " << cfg.n_r << "\n"
     << "#define SNP_N_T " << dev.n_t << "\n"
     << "#define SNP_L_FN " << lfn << "\n"
     << "#define SNP_N_VEC " << dev.n_vec << "\n"
     << "#define SNP_COLS_PER_GROUP (SNP_N_R / SNP_L_FN)\n"
     << "#define SNP_OUTPUTS_PER_THREAD "
     << cfg.accumulators_per_thread(dev) << "\n"
     << "#define SNP_GROUPS_PER_CORE " << cfg.groups_per_core(dev)
     << "\n";
  if (cfg.pre_negated) {
    os << "#define SNP_PRE_NEGATED 1\n";
  }
  if (dev.fused_andnot) {
    os << "#define SNP_FUSED_ANDNOT 1\n";
  }
  return os.str();
}

std::string render_kernel_source(const model::GpuSpec& dev,
                                 const model::KernelConfig& cfg,
                                 bits::Comparison op) {
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("render_kernel_source: " + check.reason);
  }
  const bool needs_explicit_not = op == bits::Comparison::kAndNot &&
                                  !cfg.pre_negated && !dev.fused_andnot;
  std::ostringstream os;
  os << R"(/*
 * snp_compare: the third BLIS loop around the micro-kernel.
 *
 * One work-group per (m_c x n_r) tile of C. The group cooperatively
 * packs the m_c x k_c tile of A into local memory k-major — word (r, k)
 * lives at a_tile[k * SNP_M_C + r], so the lanes of a group (consecutive
 * rows at one k) touch consecutive words and hit distinct banks as long
 * as SNP_M_C <= N_b (the Eq. 5 constraint) — then streams B from global
 * memory while each thread
 * accumulates SNP_OUTPUTS_PER_THREAD popcount inner products in
 * registers. A is (m x k_words) and B is (n x k_words), both row-major
 * over the shared K dimension; C is (m x n) counts.
 */
__kernel void snp_compare(__global const uint* restrict A,
                          __global const uint* restrict B,
                          __global uint* restrict C,
                          const uint m, const uint n,
                          const uint k_words, const uint lda,
                          const uint ldb) {
  __local uint a_tile[SNP_M_C * SNP_K_C];

  const uint tile_row = get_group_id(0) * SNP_M_C;
  const uint tile_col = get_group_id(1) * SNP_N_R;
  const uint lid = get_local_id(0);
  const uint lsize = get_local_size(0);

  uint acc[SNP_OUTPUTS_PER_THREAD];
  for (uint o = 0; o < SNP_OUTPUTS_PER_THREAD; ++o) {
    acc[o] = 0u;
  }

  for (uint k0 = 0; k0 < k_words; k0 += SNP_K_C) {
    const uint kw = min((uint)SNP_K_C, k_words - k0);

    /* Cooperative A-tile load, k-major: consecutive work-items write
     * consecutive local words (conflict-free stores), zero-filling edge
     * rows so compute below is branch-free. */
    for (uint idx = lid; idx < SNP_M_C * kw; idx += lsize) {
      const uint r = idx % SNP_M_C;
      const uint k = idx / SNP_M_C;
      a_tile[k * SNP_M_C + r] =
          (tile_row + r < m) ? A[(tile_row + r) * lda + k0 + k] : 0u;
    }
    barrier(CLK_LOCAL_MEM_FENCE);

    /* Each thread owns SNP_OUTPUTS_PER_THREAD (row, column) cells of the
     * tile; B words are loaded once and reused across SNP_M_R rows. */
    for (uint k = 0; k < kw; ++k) {
      for (uint o = 0; o < SNP_OUTPUTS_PER_THREAD; ++o) {
        const uint out_idx = lid + o * lsize;
        const uint row = out_idx % SNP_M_C;
        const uint col = out_idx / SNP_M_C;
        const uint gcol = tile_col + col;
        const uint a_val = a_tile[k * SNP_M_C + row];
        const uint b_val = (gcol < n) ? B[gcol * ldb + k0 + k] : 0u;
)";
  if (needs_explicit_not) {
    os << "        const uint nb_val = ~b_val; /* separate VALU NOT: the\n"
          "           Fig. 9 penalty on devices without fused ANDN */\n"
          "        acc[o] += popcount(a_val & nb_val);\n";
  } else {
    os << "        acc[o] += popcount" << op_expression(op,
                                                        cfg.pre_negated)
       << ";\n";
  }
  os << R"(      }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }

  /* Write back the tile. */
  for (uint o = 0; o < SNP_OUTPUTS_PER_THREAD; ++o) {
    const uint out_idx = lid + o * lsize;
    const uint row = tile_row + out_idx % SNP_M_C;
    const uint col = tile_col + out_idx / SNP_M_C;
    if (row < m && col < n) {
      C[row * n + col] = acc[o];
    }
  }
}
)";
  return os.str();
}

std::string render_program(const model::GpuSpec& dev,
                           const model::KernelConfig& cfg,
                           bits::Comparison op) {
  return render_config_header(dev, cfg, op) + "\n" +
         render_kernel_source(dev, cfg, op);
}

}  // namespace snp::kern
