#include "kern/gpu_kernel.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace snp::kern {

using bits::Comparison;
using bits::Word32;

GpuSnpKernel::GpuSnpKernel(model::GpuSpec dev, model::KernelConfig cfg,
                           bits::Comparison op)
    : dev_(std::move(dev)), cfg_(cfg), op_(op) {
  const auto check = model::validate(cfg_, dev_);
  if (!check.ok) {
    throw std::invalid_argument("GpuSnpKernel: " + check.reason + " for " +
                                dev_.name + " with " + cfg_.to_string());
  }
  if (cfg_.pre_negated && op_ != Comparison::kAndNot) {
    throw std::invalid_argument(
        "GpuSnpKernel: pre-negation only applies to AND-NOT (Eq. 3)");
  }
}

Comparison GpuSnpKernel::lowered_op() const {
  if (op_ == Comparison::kAndNot && cfg_.pre_negated) {
    return Comparison::kAnd;  // (r ^ m) & r == r & ~m == AND vs stored ~m
  }
  return op_;
}

void GpuSnpKernel::execute(const bits::BitMatrix& a, const bits::BitMatrix& b,
                           bits::CountMatrix& c, bool accumulate) const {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "GpuSnpKernel::execute: operands must share the K dimension");
  }
  if (c.rows() != a.rows() || c.cols() != b.rows()) {
    throw std::invalid_argument(
        "GpuSnpKernel::execute: output shape mismatch");
  }
  if (!accumulate) {
    std::fill(c.raw().begin(), c.raw().end(), 0u);
  }
  const Comparison op = lowered_op();
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k_words =
      bits::ceil_div(a.bit_cols(), bits::kBitsPerWord32);
  if (m == 0 || n == 0 || k_words == 0) {
    return;
  }
  const auto m_c = static_cast<std::size_t>(cfg_.m_c);
  const auto n_r = static_cast<std::size_t>(cfg_.n_r);
  const auto k_c = static_cast<std::size_t>(cfg_.k_c);
  const std::size_t tiles_m = bits::ceil_div(m, m_c);
  const std::size_t tiles_n = bits::ceil_div(n, n_r);
  const std::size_t tiles = tiles_m * tiles_n;
  std::uint32_t* cdata = c.raw().data();

  // Each iteration is one tile job exactly as a compute core would run it.
#pragma omp parallel default(none) \
    shared(a, b, cdata) firstprivate(m, n, k_words, m_c, n_r, k_c, tiles, \
                                         tiles_n, op)
  {
    // "Shared memory": the packed m_c x k_c A tile, k-major per row so the
    // inner loop walks it with unit stride (bank-friendly layout).
    std::vector<Word32> shared_a(m_c * k_c);
#pragma omp for schedule(dynamic)
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      const std::size_t tm = tile / tiles_n;
      const std::size_t tn = tile % tiles_n;
      const std::size_t row0 = tm * m_c;
      const std::size_t col0 = tn * n_r;
      const std::size_t rows = std::min(m_c, m - row0);
      const std::size_t cols = std::min(n_r, n - col0);

      for (std::size_t k0 = 0; k0 < k_words; k0 += k_c) {
        const std::size_t kw = std::min(k_c, k_words - k0);
        // Pack the A panel into shared memory (zero-fill edge rows so the
        // full-tile compute below stays branch-free, as on the GPU).
        for (std::size_t r = 0; r < m_c; ++r) {
          Word32* dst = shared_a.data() + r * k_c;
          if (row0 + r < m) {
            const auto src = a.row32(row0 + r);
            std::copy_n(src.data() + k0, kw, dst);
          } else {
            std::fill_n(dst, kw, Word32{0});
          }
        }
        // Stream B from "global memory"; accumulate into C registers.
        for (std::size_t j = 0; j < cols; ++j) {
          const Word32* brow = b.row32(col0 + j).data() + k0;
          for (std::size_t r = 0; r < rows; ++r) {
            const Word32* arow = shared_a.data() + r * k_c;
            std::uint32_t acc = 0;
            for (std::size_t k = 0; k < kw; ++k) {
              acc += static_cast<std::uint32_t>(
                  bits::popcount(bits::apply(op, arow[k], brow[k])));
            }
            cdata[(row0 + r) * n + col0 + j] += acc;
          }
        }
      }
    }
  }
}

sim::KernelTiming GpuSnpKernel::timing(const sim::KernelShape& shape) const {
  return sim::estimate_kernel(dev_, cfg_, op_, shape, cfg_.pre_negated);
}

}  // namespace snp::kern
