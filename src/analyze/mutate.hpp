// snp::analyze — seeded program mutator and mutation soundness soak.
//
// The dataflow verifier (analyze/dataflow.hpp) is itself checked by
// construction-by-contradiction: take a known-clean kernel program, break
// exactly one property with a seeded mutation, and require the analyzer to
// trip exactly the expected check. Five mutation kinds cover the four
// proof families:
//
//   kDropBarrier    — remove one kBar            -> SNP-RACE-002
//   kBumpStride     — widen one kSts lane stride -> SNP-RACE-001
//   kShrinkTile     — shrink the declared tile   -> SNP-BOUND-001
//   kWidenTripCount — inflate the k trip count   -> SNP-OVF-001
//   kSwapRegister   — redirect a body logic op's
//                     source to a fresh register -> SNP-DF-001
//
// mutation_soak() sweeps device preset x workload x op x mutation x seed:
// the unmutated corpus must analyze clean, and every applicable mutant
// must report its expected check as the *only* error-severity ID (lower
// severity fallout, e.g. a dead store created by kSwapRegister, is
// allowed). Any deviation is a soundness failure — a false negative (the
// analyzer missed a planted bug) or a false positive (it flagged a clean
// program) — and is returned verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/isa.hpp"

namespace snp::analyze {

enum class Mutation {
  kDropBarrier,
  kBumpStride,
  kShrinkTile,
  kWidenTripCount,
  kSwapRegister,
};

inline constexpr Mutation kAllMutations[] = {
    Mutation::kDropBarrier,    Mutation::kBumpStride,
    Mutation::kShrinkTile,     Mutation::kWidenTripCount,
    Mutation::kSwapRegister,
};

[[nodiscard]] const char* to_string(Mutation m);

/// The check ID a mutant of this kind must trip.
[[nodiscard]] const char* expected_check(Mutation m);

struct Mutant {
  sim::Program program;
  /// False when the base program has no site for this mutation (e.g. no
  /// barrier to drop); `program` is then the unmodified base.
  bool applicable = false;
  const char* expected = nullptr;
  std::string note;  ///< human-readable description of the applied edit
};

/// Applies one seeded mutation to a copy of `base`. Deterministic in
/// (base, m, seed).
[[nodiscard]] Mutant mutate(const sim::Program& base, Mutation m,
                            std::uint64_t seed);

struct SoakStats {
  std::uint64_t programs = 0;  ///< corpus programs analyzed clean
  std::uint64_t mutants = 0;   ///< applicable mutants analyzed
  std::uint64_t skipped = 0;   ///< inapplicable (mutation had no site)
  std::vector<std::string> failures;
};

/// Runs the soundness soak over the shipped corpus (every device preset x
/// workload x comparison op) with `seeds_per_cell` seeds per (program,
/// mutation) cell. ~1000 mutants at seeds_per_cell = 12.
[[nodiscard]] SoakStats mutation_soak(int seeds_per_cell);

}  // namespace snp::analyze
