#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/checks.hpp"

namespace snp::analyze {

namespace {

/// Blanks out // and /* */ comments (and string literals, which the
/// kernels do not use but which would otherwise hide tokens) so the
/// token scans below cannot match inside them.
std::string strip_comments(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock } st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch (st) {
      case St::kCode:
        if (out[i] == '/' && i + 1 < out.size() && out[i + 1] == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (out[i] == '/' && i + 1 < out.size() &&
                   out[i + 1] == '*') {
          st = St::kBlock;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (out[i] == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (out[i] == '*' && i + 1 < out.size() && out[i + 1] == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (out[i] != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Trailing/leading whitespace trimmed.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// `name -> value` for every `#define name value` line (value may be
/// empty for flag macros).
std::map<std::string, std::string> parse_defines(const std::string& src,
                                                 Report& report) {
  std::map<std::string, std::string> defines;
  std::istringstream is(src);
  std::string line;
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (t.rfind("#define", 0) != 0) {
      continue;
    }
    std::string rest = trim(t.substr(7));
    std::size_t split = 0;
    while (split < rest.size() && ident_char(rest[split])) {
      ++split;
    }
    const std::string name = rest.substr(0, split);
    const std::string value = trim(rest.substr(split));
    if (name.empty()) {
      continue;
    }
    const auto it = defines.find(name);
    if (it != defines.end() && it->second != value) {
      report.add("SNP-SRC-002", Severity::kError,
                 "macro " + name + " defined twice with different values ('" +
                     it->second + "' vs '" + value + "')");
    }
    defines[name] = value;
  }
  return defines;
}

/// All `SNP_*` identifiers referenced in `src`, in order of appearance.
std::set<std::string> snp_macro_refs(const std::string& src) {
  std::set<std::string> refs;
  for (std::size_t i = 0; i < src.size();) {
    if (!ident_char(src[i]) ||
        (i > 0 && ident_char(src[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < src.size() && ident_char(src[j])) {
      ++j;
    }
    const std::string tok = src.substr(i, j - i);
    if (tok.rfind("SNP_", 0) == 0) {
      refs.insert(tok);
    }
    i = j;
  }
  return refs;
}

}  // namespace

void check_source(const std::string& header, const std::string& body,
                  Report& report) {
  const std::string clean_header = strip_comments(header);
  const std::string clean_body = strip_comments(body);

  // SNP-SRC-001/002: macro definitions and references. Macros may also
  // be defined inside the body (the header is the usual place).
  auto defines = parse_defines(clean_header, report);
  for (auto& [name, value] : parse_defines(clean_body, report)) {
    const auto it = defines.find(name);
    if (it != defines.end() && it->second != value) {
      report.add("SNP-SRC-002", Severity::kError,
                 "macro " + name + " defined twice with different values ('" +
                     it->second + "' vs '" + value + "')");
    }
    defines.emplace(name, value);
  }
  for (const auto& ref : snp_macro_refs(clean_body)) {
    if (defines.count(ref) == 0) {
      report.add("SNP-SRC-001", Severity::kError,
                 "kernel body references " + ref +
                     " but the config header never defines it");
    }
  }
  // References inside macro replacement values count too (e.g.
  // SNP_COLS_PER_GROUP expands to SNP_N_R / SNP_L_FN).
  for (const auto& [name, value] : defines) {
    for (const auto& ref : snp_macro_refs(value)) {
      if (defines.count(ref) == 0) {
        report.add("SNP-SRC-001", Severity::kError,
                   "macro " + name + " expands to undefined macro " + ref);
      }
    }
  }

  // SNP-SRC-003: barrier() must sit in uniform control flow. Work-group
  // barriers inside if/else (potentially divergent) deadlock lanes that
  // take the other path; counted `for`/`while` loops over uniform bounds
  // are fine. A brace-kind stack approximates the scope nesting.
  std::vector<char> scopes;  // 'd' = divergent (if/else/switch), 'u' = other
  char pending = 0;          // scope keyword seen, waiting for its '{'
  int paren_depth = 0;
  for (std::size_t i = 0; i < clean_body.size();) {
    const char c = clean_body[i];
    if (ident_char(c) && (i == 0 || !ident_char(clean_body[i - 1]))) {
      std::size_t j = i;
      while (j < clean_body.size() && ident_char(clean_body[j])) {
        ++j;
      }
      const std::string tok = clean_body.substr(i, j - i);
      if (tok == "if" || tok == "else" || tok == "switch") {
        pending = 'd';
      } else if (tok == "for" || tok == "while" || tok == "do") {
        pending = 'u';
      } else if (tok == "barrier") {
        bool divergent = pending == 'd';
        for (const char s : scopes) {
          divergent = divergent || s == 'd';
        }
        if (divergent) {
          report.add("SNP-SRC-003", Severity::kError,
                     "barrier() inside divergent control flow (if/else/"
                     "switch): lanes taking the other path deadlock the "
                     "group");
        }
      }
      i = j;
      continue;
    }
    if (c == '(') {
      ++paren_depth;
    } else if (c == ')') {
      --paren_depth;
    } else if (c == '{') {
      scopes.push_back(pending == 0 ? 'u' : pending);
      pending = 0;
    } else if (c == '}') {
      if (scopes.empty()) {
        report.add("SNP-SRC-003", Severity::kError,
                   "unbalanced braces: '}' with no open scope");
      } else {
        scopes.pop_back();
      }
    } else if (c == ';' && paren_depth == 0) {
      pending = 0;  // statement ended before any '{' — scope never opened
    }
    ++i;
  }
  if (!scopes.empty()) {
    report.add("SNP-SRC-003", Severity::kError,
               "unbalanced braces: " + std::to_string(scopes.size()) +
                   " scope(s) never closed");
  }
}

}  // namespace snp::analyze
