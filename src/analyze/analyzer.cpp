#include "analyze/analyzer.hpp"

#include "kern/kernel_program.hpp"
#include "kern/opencl_source.hpp"

namespace snp::analyze {

const std::vector<CheckInfo>& check_registry() {
  static const std::vector<CheckInfo> kChecks = {
      {"SNP-DEV-001", Severity::kError,
       "device spec incomplete or inconsistent"},
      {"SNP-CFG-001", Severity::kError,
       "non-positive blocking parameter"},
      {"SNP-CFG-002", Severity::kError, "m_r violates Eq. 4 (N_vec)"},
      {"SNP-CFG-003", Severity::kError, "m_c not a multiple of m_r"},
      {"SNP-CFG-004", Severity::kError, "n_r not divisible by L_fn"},
      {"SNP-CFG-005", Severity::kError, "n_r below the Eq. 7 lower bound"},
      {"SNP-CFG-006", Severity::kInfo,
       "m_c follows Table II (N_b), not Eq. 5 as printed"},
      {"SNP-SHMEM-001", Severity::kError,
       "A tile exceeds usable shared memory"},
      {"SNP-SHMEM-002", Severity::kInfo,
       "A tile leaves >25% of shared memory idle"},
      {"SNP-REG-001", Severity::kError,
       "per-thread registers exceed the budget (spill)"},
      {"SNP-OCC-001", Severity::kError,
       "N_cl x L_fn plateau exceeds the resident-group limit"},
      {"SNP-OCC-002", Severity::kWarn, "core grid leaves cores idle"},
      {"SNP-GRID-001", Severity::kError,
       "core grid invalid or larger than the device"},
      {"SNP-BANK-001", Severity::kError,
       "m_c beyond N_b serializes every A-tile access"},
      {"SNP-BANK-002", Severity::kWarn,
       "strided shared access collides modulo N_b"},
      // Superseded IDs stay listed forever: suppressions and goldens
      // reference them, and the registry documents what replaced them.
      // They are never emitted again.
      {"SNP-IR-001", Severity::kError,
       "shared read before barrier publication (superseded)",
       "SNP-RACE-002"},
      {"SNP-IR-002", Severity::kError,
       "read of an undefined register (superseded)", "SNP-DF-001"},
      {"SNP-IR-003", Severity::kWarn,
       "result register never consumed (superseded)", "SNP-DF-002"},
      {"SNP-IR-004", Severity::kWarn,
       "dependent chains too deep to hide pipe latency"},
      {"SNP-RACE-001", Severity::kError,
       "cross-lane shared-memory write-write overlap in one barrier "
       "interval"},
      {"SNP-RACE-002", Severity::kError,
       "cross-lane shared-memory read-write overlap with no intervening "
       "barrier"},
      {"SNP-BOUND-001", Severity::kError,
       "shared access escapes the declared Eq. 4/5 tile allocation"},
      {"SNP-BOUND-002", Severity::kError,
       "global access escapes the declared operand extent"},
      {"SNP-BOUND-003", Severity::kError,
       "declared LDS allocation exceeds usable shared memory"},
      {"SNP-OVF-001", Severity::kError,
       "Eq. 2-3 popcount accumulator can overflow its 32-bit register"},
      {"SNP-DF-001", Severity::kError, "read of a never-written register"},
      {"SNP-DF-002", Severity::kWarn,
       "register written but never consumed (dead store)"},
      {"SNP-SRC-001", Severity::kError,
       "kernel references an undefined macro"},
      {"SNP-SRC-002", Severity::kError,
       "macro redefined with a different value"},
      {"SNP-SRC-003", Severity::kError,
       "barrier in divergent control flow or unbalanced scopes"},
  };
  return kChecks;
}

const CheckInfo* find_check(std::string_view id) {
  for (const auto& c : check_registry()) {
    if (id == c.id) {
      return &c;
    }
  }
  return nullptr;
}

Report analyze(const model::GpuSpec& dev, const model::KernelConfig& cfg,
               bits::Comparison op, const AnalyzeOptions& opts) {
  Report report;
  check_config(dev, cfg, report);
  if (report.has_errors()) {
    // The kern builders throw on exactly these conditions; the envelope
    // findings above already explain why.
    return report;
  }
  if (opts.ir) {
    auto info = kern::build_kernel_program(dev, cfg, op,
                                           opts.k_iterations,
                                           opts.unroll);
    if (opts.lds_words > 0) {
      // Probe an explicit launch-time allocation instead of the config's
      // Eq. 4/5 tile (how an autotune point under-allocating the tile is
      // caught before launch).
      info.program.shared_words = opts.lds_words;
    }
    // The occupancy policy keeps L_fn groups per cluster resident
    // (model::KernelConfig::groups_per_core spread over N_cl clusters).
    check_program(dev, info.program, dev.groups_per_cluster(), report);
  }
  if (opts.source) {
    check_source(kern::render_config_header(dev, cfg, op),
                 kern::render_kernel_source(dev, cfg, op), report);
  }
  return report;
}

}  // namespace snp::analyze
