#include "analyze/mutate.hpp"

#include <array>
#include <sstream>
#include <vector>

#include "analyze/checks.hpp"
#include "bits/compare.hpp"
#include "kern/kernel_program.hpp"
#include "model/config.hpp"
#include "model/device.hpp"

namespace snp::analyze {

namespace {

using sim::Instr;
using sim::Opcode;

/// splitmix64 — deterministic, dependency-free seed mixer; good enough to
/// spread seeds over mutation sites.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::size_t pick(std::uint64_t seed, std::size_t n) {
  return static_cast<std::size_t>(mix(seed) % n);
}

/// Sections in program order, for mutations that address "the i-th
/// instruction matching a predicate" across the whole program.
std::array<std::vector<Instr>*, 3> sections(sim::Program& p) {
  return {&p.prologue, &p.body, &p.epilogue};
}

const char* section_name(std::size_t s) {
  return s == 0 ? "prologue" : (s == 1 ? "body" : "epilogue");
}

}  // namespace

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kDropBarrier:
      return "drop-barrier";
    case Mutation::kBumpStride:
      return "bump-stride";
    case Mutation::kShrinkTile:
      return "shrink-tile";
    case Mutation::kWidenTripCount:
      return "widen-trip-count";
    case Mutation::kSwapRegister:
      return "swap-register";
  }
  return "?";
}

const char* expected_check(Mutation m) {
  switch (m) {
    case Mutation::kDropBarrier:
      return "SNP-RACE-002";
    case Mutation::kBumpStride:
      return "SNP-RACE-001";
    case Mutation::kShrinkTile:
      return "SNP-BOUND-001";
    case Mutation::kWidenTripCount:
      return "SNP-OVF-001";
    case Mutation::kSwapRegister:
      return "SNP-DF-001";
  }
  return "?";
}

Mutant mutate(const sim::Program& base, Mutation m, std::uint64_t seed) {
  Mutant out;
  out.program = base;
  out.expected = expected_check(m);
  sim::Program& p = out.program;
  std::ostringstream note;

  switch (m) {
    case Mutation::kDropBarrier: {
      // Remove one kBar: the stores it published now share a barrier
      // interval with the reads that consume them.
      std::vector<std::pair<std::size_t, std::size_t>> bars;
      const auto secs = sections(p);
      for (std::size_t s = 0; s < secs.size(); ++s) {
        for (std::size_t i = 0; i < secs[s]->size(); ++i) {
          if ((*secs[s])[i].op == Opcode::kBar) {
            bars.emplace_back(s, i);
          }
        }
      }
      if (bars.empty()) {
        return out;
      }
      const auto [s, i] = bars[pick(seed, bars.size())];
      secs[s]->erase(secs[s]->begin() + static_cast<std::ptrdiff_t>(i));
      note << "dropped barrier at " << section_name(s) << "[" << i << "]";
      break;
    }
    case Mutation::kBumpStride: {
      // Widen one staging store's per-lane stride so its footprint climbs
      // into the next store's range: a cross-lane write-write overlap.
      // Eligible stores need an upward neighbor (another kSts at a higher
      // base) to collide with.
      std::vector<std::pair<std::size_t, std::size_t>> stores;
      const auto secs = sections(p);
      for (std::size_t s = 0; s < secs.size(); ++s) {
        for (std::size_t i = 0; i < secs[s]->size(); ++i) {
          const Instr& in = (*secs[s])[i];
          if (in.op != Opcode::kSts || in.imm < 1) {
            continue;
          }
          bool has_upward_neighbor = false;
          for (const auto* sec : secs) {
            for (const Instr& other : *sec) {
              if (&other != &in && other.op == Opcode::kSts &&
                  other.base > in.base) {
                has_upward_neighbor = true;
              }
            }
          }
          if (has_upward_neighbor) {
            stores.emplace_back(s, i);
          }
        }
      }
      if (stores.empty()) {
        return out;
      }
      const auto [s, i] = stores[pick(seed, stores.size())];
      Instr& in = (*secs[s])[i];
      const int factor = 2 << (mix(seed ^ 0xB00ULL) % 3);  // 2, 4, or 8
      note << "bumped STS stride at " << section_name(s) << "[" << i
           << "] from " << in.imm << " to " << in.imm * factor;
      in.imm *= factor;
      break;
    }
    case Mutation::kShrinkTile: {
      // Under-declare the LDS allocation, as a bad autotune point would:
      // the staged footprint no longer fits.
      if (p.shared_words <= 2) {
        return out;
      }
      bool any_shared = false;
      for (const auto* sec : sections(p)) {
        for (const Instr& in : *sec) {
          if (in.space == sim::Space::kShared) {
            any_shared = true;
          }
        }
      }
      if (!any_shared) {
        return out;
      }
      note << "shrank declared tile from " << p.shared_words
           << " to 2 words";
      p.shared_words = 2;
      break;
    }
    case Mutation::kWidenTripCount: {
      // Inflate the k trip count far past what a 32-bit accumulator can
      // absorb. Operand extents scale with the trip count in the builder,
      // so the mutation clears them (unknown extent = no bounds claim):
      // the overflow proof must catch this alone.
      if (p.iterations == 0) {
        return out;
      }
      const std::uint64_t trips =
          (1ULL << 28) + mix(seed ^ 0x717ULL) % 4096;
      note << "widened trip count from " << p.iterations << " to "
           << trips;
      p.iterations = trips;
      p.extent_words = {0, 0, 0};
      break;
    }
    case Mutation::kSwapRegister: {
      // Redirect one body logic source to a register nothing writes.
      std::vector<std::size_t> cands;
      for (std::size_t i = 0; i < p.body.size(); ++i) {
        const Instr& in = p.body[i];
        if (sim::instr_class(in.op) == model::InstrClass::kLogic &&
            in.op != Opcode::kMovi && in.src1 != sim::kNoReg) {
          cands.push_back(i);
        }
      }
      if (cands.empty()) {
        return out;
      }
      const std::size_t i = cands[pick(seed, cands.size())];
      Instr& in = p.body[i];
      const int fresh = p.max_register() + 1;
      const bool swap_src2 =
          in.src2 != sim::kNoReg && (mix(seed ^ 0x5EED) & 1) != 0;
      note << "redirected " << sim::to_string(in.op) << " body[" << i
           << "] " << (swap_src2 ? "src2" : "src1") << " to unwritten r"
           << fresh;
      (swap_src2 ? in.src2 : in.src1) = fresh;
      break;
    }
  }

  out.applicable = true;
  out.note = note.str();
  return out;
}

SoakStats mutation_soak(int seeds_per_cell) {
  SoakStats stats;
  constexpr std::array<bits::Comparison, 3> kOps = {
      bits::Comparison::kAnd, bits::Comparison::kXor,
      bits::Comparison::kAndNot};
  constexpr std::array<model::WorkloadKind, 2> kKinds = {
      model::WorkloadKind::kLd, model::WorkloadKind::kFastId};

  std::uint64_t cell = 0;
  for (const auto& dev : model::all_gpus()) {
    for (const auto kind : kKinds) {
      const auto cfg = model::paper_preset(dev, kind);
      for (const auto op : kOps) {
        const auto info = kern::build_kernel_program(dev, cfg, op, 16, 2);
        auto describe = [&](Mutation m, std::uint64_t seed) {
          std::ostringstream os;
          os << dev.name << "/"
             << (kind == model::WorkloadKind::kLd ? "ld" : "fastid") << "/"
             << bits::to_string(op) << " " << to_string(m) << " seed "
             << seed;
          return os.str();
        };

        Report clean;
        check_program(dev, info.program, dev.groups_per_cluster(), clean);
        ++stats.programs;
        if (!clean.diagnostics().empty()) {
          stats.failures.push_back(
              describe(Mutation::kDropBarrier, 0) +
              ": unmutated program not clean, first id " +
              clean.diagnostics().front().id);
          continue;
        }

        for (const auto m : kAllMutations) {
          ++cell;
          for (int s = 0; s < seeds_per_cell; ++s) {
            const std::uint64_t seed =
                mix(cell * 1000003ULL) + static_cast<std::uint64_t>(s);
            const Mutant mut = mutate(info.program, m, seed);
            if (!mut.applicable) {
              ++stats.skipped;
              continue;
            }
            Report r;
            check_program(dev, mut.program, dev.groups_per_cluster(), r);
            ++stats.mutants;
            if (!r.has(mut.expected)) {
              stats.failures.push_back(describe(m, seed) +
                                       ": FALSE NEGATIVE, expected " +
                                       mut.expected + " (" + mut.note +
                                       ")");
              continue;
            }
            for (const auto& d : r.diagnostics()) {
              if (d.severity == Severity::kError && d.id != mut.expected) {
                stats.failures.push_back(describe(m, seed) +
                                         ": unexpected error " + d.id +
                                         " alongside " + mut.expected +
                                         " (" + mut.note + ")");
                break;
              }
            }
          }
        }
      }
    }
  }
  return stats;
}

}  // namespace snp::analyze
