// snp::analyze — full static-analysis pipeline over one kernel instance.
//
// `analyze()` proves a (device, config, op) triple safe and well-formed
// before anything runs: the config envelope is checked first, and only a
// config with zero error-severity findings proceeds to IR generation
// (kern::build_kernel_program) and source rendering (kern::render_*),
// because those builders reject invalid configs by throwing. The result
// is a Report the caller renders (CLI `snpcmp lint`) or attaches to a
// TimingReport (the warn-only pre-launch pass in core::compare).
#pragma once

#include <cstdint>

#include "analyze/checks.hpp"
#include "bits/compare.hpp"

namespace snp::analyze {

struct AnalyzeOptions {
  bool ir = true;      ///< run the sim::Program IR dataflow pass
  bool source = true;  ///< run the rendered-OpenCL lint pass
  /// IR generation shape. The dataflow proofs (races, bounds, overflow)
  /// hold for exactly this trip count; pass the real k-loop trip count
  /// (as the pre-launch pass does) to prove the actual launch.
  std::uint64_t k_iterations = 16;
  int unroll = 2;
  /// When > 0, overrides the program's declared LDS allocation (in words)
  /// with an explicit launch-time value, e.g. an autotuner's proposed
  /// tile. The SNP-BOUND-* proofs then run against this allocation.
  int lds_words = 0;
};

/// Runs every applicable pass and returns the combined report.
[[nodiscard]] Report analyze(const model::GpuSpec& dev,
                             const model::KernelConfig& cfg,
                             bits::Comparison op,
                             const AnalyzeOptions& opts = {});

}  // namespace snp::analyze
