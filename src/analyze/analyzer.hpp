// snp::analyze — full static-analysis pipeline over one kernel instance.
//
// `analyze()` proves a (device, config, op) triple safe and well-formed
// before anything runs: the config envelope is checked first, and only a
// config with zero error-severity findings proceeds to IR generation
// (kern::build_kernel_program) and source rendering (kern::render_*),
// because those builders reject invalid configs by throwing. The result
// is a Report the caller renders (CLI `snpcmp lint`) or attaches to a
// TimingReport (the warn-only pre-launch pass in core::compare).
#pragma once

#include <cstdint>

#include "analyze/checks.hpp"
#include "bits/compare.hpp"

namespace snp::analyze {

struct AnalyzeOptions {
  bool ir = true;      ///< run the sim::Program IR pass
  bool source = true;  ///< run the rendered-OpenCL lint pass
  /// IR generation shape: enough k-steps to expose steady-state behavior
  /// without inflating analysis time.
  std::uint64_t k_iterations = 16;
  int unroll = 2;
};

/// Runs every applicable pass and returns the combined report.
[[nodiscard]] Report analyze(const model::GpuSpec& dev,
                             const model::KernelConfig& cfg,
                             bits::Comparison op,
                             const AnalyzeOptions& opts = {});

}  // namespace snp::analyze
