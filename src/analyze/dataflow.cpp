#include "analyze/dataflow.hpp"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace snp::analyze {

namespace {

using sim::Instr;
using sim::Opcode;
using sim::Space;

constexpr unsigned long long kWordMax = 0xFFFFFFFFULL;

const char* section_name(int s) {
  return s == 0 ? "prologue" : (s == 1 ? "body" : "epilogue");
}

bool is_mem_access(Opcode op) {
  return op == Opcode::kLds || op == Opcode::kSts || op == Opcode::kLdg ||
         op == Opcode::kStg;
}

bool is_write(Opcode op) {
  return op == Opcode::kSts || op == Opcode::kStg;
}

/// One executed instruction instance in the two-iteration unrolling:
/// prologue, body copy (iter 0), body copy (iter 1, when iterations >= 2),
/// epilogue. `interval` counts barriers seen so far — accesses by
/// different lanes are unordered within an interval.
struct Exec {
  const Instr* ins;
  int section;        ///< 0 = prologue, 1 = body, 2 = epilogue
  std::size_t index;  ///< position within its section
  std::uint64_t iter;  ///< body copy's iteration number (0 otherwise)
  int interval;
};

std::vector<Exec> unroll_two(const sim::Program& p) {
  std::vector<Exec> out;
  const std::uint64_t copies = std::min<std::uint64_t>(2, p.iterations);
  out.reserve(p.prologue.size() + p.body.size() * copies +
              p.epilogue.size());
  int interval = 0;
  auto append = [&](const std::vector<Instr>& sec, int section,
                    std::uint64_t iter) {
    for (std::size_t i = 0; i < sec.size(); ++i) {
      if (sec[i].op == Opcode::kBar) {
        ++interval;
        continue;
      }
      out.push_back({&sec[i], section, i, iter, interval});
    }
  };
  append(p.prologue, 0, 0);
  for (std::uint64_t c = 0; c < copies; ++c) {
    append(p.body, 1, c);
  }
  append(p.epilogue, 2, 0);
  return out;
}

/// Lane `lane`'s word address for access `e` at its modeled iteration.
long long addr_at(const Exec& e, int lane) {
  return e.ins->base +
         static_cast<long long>(lane) * e.ins->imm +
         static_cast<long long>(e.iter) * e.ins->iter_stride;
}

/// True when the two-copy unrolling is an exact model of this access for
/// race purposes: either its footprint never moves across iterations, or
/// the program runs at most the two modeled trips.
bool exact_for_races(const sim::Program& p, const Exec& e) {
  return e.ins->iter_stride == 0 || e.section != 1 || p.iterations <= 2;
}

struct Witness {
  int lane1 = 0;
  int lane2 = 0;
  long long word = 0;
};

/// Exact cross-lane collision: lanes l1 != l2 with addr1(l1) == addr2(l2).
bool collide_exact(const Exec& a, const Exec& b, int n_t, Witness* w) {
  const long long s2 = b.ins->imm;
  const long long b2 = b.ins->base +
                       static_cast<long long>(b.iter) * b.ins->iter_stride;
  for (int l1 = 0; l1 < n_t; ++l1) {
    const long long word = addr_at(a, l1);
    if (s2 == 0) {
      if (word != b2) {
        continue;
      }
      // Every lane of `b` touches this word; any lane other than l1 races.
      if (n_t >= 2) {
        w->lane1 = l1;
        w->lane2 = l1 == 0 ? 1 : 0;
        w->word = word;
        return true;
      }
      continue;
    }
    const long long num = word - b2;
    if (num % s2 != 0) {
      continue;
    }
    const long long l2 = num / s2;
    if (l2 >= 0 && l2 < n_t && l2 != l1) {
      w->lane1 = l1;
      w->lane2 = static_cast<int>(l2);
      w->word = word;
      return true;
    }
  }
  return false;
}

/// Conservative MAY-overlap of the two accesses' full footprints over all
/// lanes and all trips (used when a shared footprint moves across
/// iterations beyond the two modeled copies).
bool overlap_may(const sim::Program& p, const Exec& a, const Exec& b,
                 int n_t) {
  auto range = [&](const Exec& e) {
    const std::uint64_t last_iter =
        e.section == 1 && p.iterations > 0 ? p.iterations - 1 : 0;
    long long lo = e.ins->base;
    long long hi = e.ins->base;
    for (const long long lane : {0LL, static_cast<long long>(n_t - 1)}) {
      for (const std::uint64_t it : {std::uint64_t{0}, last_iter}) {
        const long long v = e.ins->base + lane * e.ins->imm +
                            static_cast<long long>(it) * e.ins->iter_stride;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    return std::pair<long long, long long>{lo, hi};
  };
  const auto [alo, ahi] = range(a);
  const auto [blo, bhi] = range(b);
  return alo <= bhi && blo <= ahi;
}

/// Saturating arithmetic so the analysis itself cannot overflow.
unsigned long long sat_add(unsigned long long a, unsigned long long b) {
  return a > ULLONG_MAX - b ? ULLONG_MAX : a + b;
}

unsigned long long sat_mul(unsigned long long a, unsigned long long b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a > ULLONG_MAX / b ? ULLONG_MAX : a * b;
}

/// Abstract value: either an arbitrary 32-bit word (loads, logic results —
/// inherently in [0, 2^32-1], modular arithmetic) or a proven interval
/// (immediates, popcounts, and sums thereof). Only interval-kind kAdd
/// results participate in the overflow proof; word-typed adds model
/// address/word arithmetic whose wraparound is intended.
struct Val {
  bool word = true;
  unsigned long long lo = 0;
  unsigned long long hi = kWordMax;
};

Val transfer(const Instr& ins, const std::map<int, Val>& regs) {
  auto read = [&](int r) -> Val {
    const auto it = regs.find(r);
    return it == regs.end() ? Val{} : it->second;
  };
  switch (ins.op) {
    case Opcode::kMovi: {
      const auto v = static_cast<unsigned long long>(
          ins.imm < 0 ? 0 : ins.imm);
      return {false, v, v};
    }
    case Opcode::kMov:
      return read(ins.src1);
    case Opcode::kPopc:
      return {false, 0, 32};
    case Opcode::kAdd: {
      const Val a = read(ins.src1);
      const Val b = read(ins.src2);
      if (a.word || b.word) {
        return Val{};
      }
      return {false, sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
    }
    default:
      return Val{};
  }
}

}  // namespace

void check_races(const model::GpuSpec& dev, const sim::Program& program,
                 Report& report) {
  const auto execs = unroll_two(program);
  const int n_t = std::max(dev.n_t, 1);
  std::ostringstream msg;

  std::vector<std::size_t> shared;
  for (std::size_t i = 0; i < execs.size(); ++i) {
    if (is_mem_access(execs[i].ins->op) &&
        execs[i].ins->space == Space::kShared) {
      shared.push_back(i);
    }
  }

  // One diagnostic per (check, earlier instruction): a racy store is
  // reported once, not once per racing partner.
  std::set<std::tuple<std::string, int, std::size_t>> reported;
  auto emit = [&](const char* id, const Exec& a, const Exec& b,
                  bool exact, const Witness& w) {
    if (!reported.insert({id, a.section, a.index}).second) {
      return;
    }
    msg.str("");
    msg << sim::to_string(a.ins->op) << " at " << section_name(a.section)
        << "[" << a.index << "] and " << sim::to_string(b.ins->op)
        << " at " << section_name(b.section) << "[" << b.index << "]";
    if (a.section == 1 || b.section == 1) {
      msg << " (iterations " << a.iter << "/" << b.iter << ")";
    }
    if (exact) {
      msg << " touch shared word " << w.word << " from lanes " << w.lane1
          << " and " << w.lane2;
    } else {
      msg << " have overlapping iteration-strided shared footprints";
    }
    msg << " with no intervening barrier";
    report.add(id, Severity::kError, msg.str(), section_name(a.section),
               a.index);
  };

  for (std::size_t x = 0; x < shared.size(); ++x) {
    for (std::size_t y = x; y < shared.size(); ++y) {
      const Exec& a = execs[shared[x]];
      const Exec& b = execs[shared[y]];
      if (a.interval != b.interval) {
        continue;
      }
      const bool aw = is_write(a.ins->op);
      const bool bw = is_write(b.ins->op);
      if (!aw && !bw) {
        continue;
      }
      if (shared[x] == shared[y] && !aw) {
        continue;  // an instruction only self-races when it writes
      }
      const char* id = aw && bw ? "SNP-RACE-001" : "SNP-RACE-002";
      Witness w;
      if (exact_for_races(program, a) && exact_for_races(program, b)) {
        if (collide_exact(a, b, n_t, &w)) {
          emit(id, a, b, true, w);
        }
      } else if (overlap_may(program, a, b, n_t)) {
        emit(id, a, b, false, w);
      }
    }
  }
}

void check_bounds(const model::GpuSpec& dev, const sim::Program& program,
                  Report& report) {
  std::ostringstream msg;

  const long long usable_words =
      (static_cast<long long>(dev.shared_bytes) -
       static_cast<long long>(dev.shared_reserved)) /
      4;
  if (program.shared_words > 0 && program.shared_words > usable_words) {
    msg.str("");
    msg << "declared LDS allocation of " << program.shared_words
        << " words exceeds the " << usable_words
        << " usable shared-memory words (N_shared minus the runtime "
           "reservation)";
    report.add("SNP-BOUND-003", Severity::kError, msg.str(), "prologue",
               0);
  }

  const auto execs = unroll_two(program);
  const int n_t = std::max(dev.n_t, 1);
  std::set<std::pair<int, std::size_t>> seen;
  for (const Exec& e : execs) {
    if (!is_mem_access(e.ins->op) || e.ins->space == Space::kNone) {
      continue;
    }
    const long long extent = program.extent_of(e.ins->space);
    if (extent <= 0) {
      continue;  // undeclared extent: nothing to prove against
    }
    if (!seen.insert({e.section, e.index}).second) {
      continue;  // body copy 0 already covered the full iteration range
    }
    const std::uint64_t last_iter =
        e.section == 1 && program.iterations > 0 ? program.iterations - 1
                                                 : 0;
    long long lo = e.ins->base;
    long long hi = e.ins->base;
    for (const long long lane : {0LL, static_cast<long long>(n_t - 1)}) {
      for (const std::uint64_t it : {std::uint64_t{0}, last_iter}) {
        const long long v = e.ins->base + lane * e.ins->imm +
                            static_cast<long long>(it) * e.ins->iter_stride;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (lo >= 0 && hi < extent) {
      continue;
    }
    const bool is_shared = e.ins->space == Space::kShared;
    msg.str("");
    msg << sim::to_string(e.ins->op) << " at " << section_name(e.section)
        << "[" << e.index << "] touches ";
    msg << (is_shared ? "shared" : "global") << " ";
    if (!is_shared) {
      msg << "operand " << sim::to_string(e.ins->space) << " ";
    }
    msg << "words [" << lo << ", " << hi << "] over lanes 0.." << n_t - 1;
    if (last_iter > 0) {
      msg << " and iterations 0.." << last_iter;
    }
    msg << "; the declared "
        << (is_shared ? "tile allocation (Eq. 4/5)" : "extent") << " is [0, "
        << extent << ")";
    report.add(is_shared ? "SNP-BOUND-001" : "SNP-BOUND-002",
               Severity::kError, msg.str(), section_name(e.section),
               e.index);
  }
}

void check_overflow(const model::GpuSpec& /*dev*/,
                    const sim::Program& program, Report& report) {
  std::ostringstream msg;
  std::map<int, Val> regs;
  // One diagnostic per accumulator register (not per add instruction):
  // the reported instruction is the one producing the register's peak.
  std::set<int> flagged;

  auto trip = [&](const Instr& ins, int section, std::size_t index,
                  unsigned long long bound, bool exact) {
    if (!flagged.insert(ins.dst).second) {
      return;
    }
    msg.str("");
    msg << "ADD at " << section_name(section) << "[" << index
        << "] accumulates r" << ins.dst << " to ";
    if (exact) {
      msg << "at most " << bound;
    } else {
      msg << "an unbounded value";
    }
    msg << " over " << program.iterations
        << " iteration(s); exceeds the 32-bit register maximum "
        << kWordMax << " (Eq. 2-3 popcount accumulation would wrap)";
    report.add("SNP-OVF-001", Severity::kError, msg.str(),
               section_name(section), index);
  };

  auto step = [&](const std::vector<Instr>& sec, int section,
                  std::vector<unsigned long long>* add_his,
                  std::vector<unsigned long long>* add_los) {
    std::size_t add_idx = 0;
    for (std::size_t i = 0; i < sec.size(); ++i) {
      const Instr& ins = sec[i];
      if (ins.dst == sim::kNoReg) {
        continue;
      }
      const Val v = transfer(ins, regs);
      regs[ins.dst] = v;
      if (ins.op == Opcode::kAdd && !v.word) {
        if (add_his != nullptr) {
          if (add_idx >= add_his->size()) {
            add_his->resize(add_idx + 1, 0);
            add_los->resize(add_idx + 1, 0);
          }
          (*add_his)[add_idx] = v.hi;
          (*add_los)[add_idx] = v.lo;
          ++add_idx;
        } else if (v.hi > kWordMax) {
          trip(ins, section, i, v.hi, true);
        }
      }
    }
  };

  step(program.prologue, 0, nullptr, nullptr);

  // Maps the n-th interval-kind kAdd of a body pass to its body index.
  std::vector<std::size_t> add_index;

  const std::uint64_t n = program.iterations;
  if (n <= 3) {
    for (std::uint64_t i = 0; i < n; ++i) {
      step(program.body, 1, nullptr, nullptr);
    }
  } else {
    std::vector<unsigned long long> h1, h2, h3, l1, l2, l3;
    step(program.body, 1, &h1, &l1);
    step(program.body, 1, &h2, &l2);
    step(program.body, 1, &h3, &l3);
    // Record which body instruction each interval-kind add was on the
    // third (steady-state) pass.
    {
      std::map<int, Val> probe = regs;
      for (std::size_t i = 0; i < program.body.size(); ++i) {
        const Instr& ins = program.body[i];
        if (ins.dst == sim::kNoReg) {
          continue;
        }
        const Val v = transfer(ins, probe);
        probe[ins.dst] = v;
        if (ins.op == Opcode::kAdd && !v.word) {
          add_index.push_back(i);
        }
      }
    }
    const bool shape_stable =
        h1.size() == h2.size() && h2.size() == h3.size() &&
        add_index.size() == h3.size();
    struct Peak {
      std::size_t body_i = 0;
      unsigned long long hi = 0;
      bool exact = true;
    };
    std::map<int, Peak> peaks;  // per destination register
    for (std::size_t a = 0; a < h3.size(); ++a) {
      const std::size_t body_i = a < add_index.size() ? add_index[a] : 0;
      if (!shape_stable) {
        // The add set itself is unstable: saturate conservatively.
        if (h3[a] > 0) {
          trip(program.body[body_i], 1, body_i, ULLONG_MAX, false);
        }
        continue;
      }
      const unsigned long long dh = h3[a] - h2[a];
      const unsigned long long dl = l3[a] - l2[a];
      unsigned long long final_hi = 0;
      bool exact = false;
      if (h3[a] >= h2[a] && h2[a] >= h1[a] && h2[a] - h1[a] == dh &&
          l3[a] >= l2[a] && l2[a] >= l1[a] && l2[a] - l1[a] == dl) {
        // Affine growth: extrapolate the exact peak at trip n.
        final_hi = sat_add(h1[a], sat_mul(n - 1, dh));
        exact = true;
      } else if (dh == 0) {
        final_hi = h3[a];  // stabilized after warmup
        exact = true;
      } else {
        final_hi = ULLONG_MAX;  // non-affine growth: saturate
      }
      const Instr& ins = program.body[body_i];
      if (ins.dst != sim::kNoReg) {
        auto& pk = peaks[ins.dst];
        if (final_hi >= pk.hi) {
          pk = {body_i, final_hi, exact};
        }
        // Seed the register state for the epilogue with the extrapolated
        // bound so downstream adds see the full-trip value.
        auto& rv = regs[ins.dst];
        if (!rv.word) {
          rv.hi = std::max(rv.hi, final_hi);
          rv.lo = std::max(rv.lo, sat_add(l1[a], sat_mul(n - 1, dl)));
        }
      }
    }
    for (const auto& [reg, pk] : peaks) {
      (void)reg;
      if (pk.hi > kWordMax) {
        trip(program.body[pk.body_i], 1, pk.body_i, pk.hi,
             pk.exact && pk.hi != ULLONG_MAX);
      }
    }
  }

  step(program.epilogue, 2, nullptr, nullptr);
}

void check_defuse(const sim::Program& program, Report& report) {
  std::ostringstream msg;

  struct Located {
    const Instr* ins;
    int section;
    std::size_t index;
  };
  std::vector<Located> linear;
  linear.reserve(program.prologue.size() + program.body.size() +
                 program.epilogue.size());
  for (std::size_t i = 0; i < program.prologue.size(); ++i) {
    linear.push_back({&program.prologue[i], 0, i});
  }
  for (std::size_t i = 0; i < program.body.size(); ++i) {
    linear.push_back({&program.body[i], 1, i});
  }
  for (std::size_t i = 0; i < program.epilogue.size(); ++i) {
    linear.push_back({&program.epilogue[i], 2, i});
  }

  // SNP-DF-001: use-before-def. A body read is defined on iteration 1
  // only by the prologue or by earlier body instructions; later
  // iterations see strictly more definitions, so iteration 1 is the
  // weakest ordering.
  std::set<int> defined;
  std::set<int> reported_undef;
  for (const auto& li : linear) {
    for (const int src : {li.ins->src1, li.ins->src2}) {
      if (src != sim::kNoReg && defined.count(src) == 0 &&
          reported_undef.insert(src).second) {
        msg.str("");
        msg << sim::to_string(li.ins->op) << " at "
            << section_name(li.section) << "[" << li.index << "] reads r"
            << src << " before any instruction defines it";
        report.add("SNP-DF-001", Severity::kError, msg.str(),
                   section_name(li.section), li.index);
      }
    }
    if (li.ins->dst != sim::kNoReg) {
      defined.insert(li.ins->dst);
    }
  }

  // SNP-DF-002: liveness — a register written somewhere but read nowhere
  // (stores count as reads) holds a result no one consumes.
  std::set<int> read;
  for (const auto& li : linear) {
    if (li.ins->src1 != sim::kNoReg) {
      read.insert(li.ins->src1);
    }
    if (li.ins->src2 != sim::kNoReg) {
      read.insert(li.ins->src2);
    }
  }
  std::vector<int> dead;
  for (const int reg : defined) {
    if (read.count(reg) == 0) {
      dead.push_back(reg);
    }
  }
  if (!dead.empty()) {
    msg.str("");
    msg << "result registers written but never read or stored:";
    for (const int reg : dead) {
      msg << " r" << reg;
    }
    report.add("SNP-DF-002", Severity::kWarn, msg.str());
  }
}

}  // namespace snp::analyze
