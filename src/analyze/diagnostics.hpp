// snp::analyze — diagnostics for the kernel/config static analyzer.
//
// Every finding the analyzer produces is a Diagnostic: a stable check ID
// (e.g. "SNP-SHMEM-001", documented in docs/static-analysis.md), a
// severity, and a human-readable message. IDs are part of the tool's
// interface — tests pin them, CI greps them, and users suppress by them —
// so existing IDs never change meaning; new checks get new IDs.
//
// Severity policy:
//   kError — the config/kernel is unsafe or cannot work on the device
//            (would fail validate(), spill, or exceed a hard limit).
//            `snpcmp lint` exits non-zero when any are present.
//   kWarn  — runs, but the analytical model predicts degraded performance
//            (idle cores, bank conflicts, unhidden latency).
//   kInfo  — noteworthy modeling facts, e.g. the Eq. 5 discrepancy.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace snp::analyze {

enum class Severity { kError, kWarn, kInfo };

[[nodiscard]] std::string_view to_string(Severity s);

struct Diagnostic {
  std::string id;        ///< stable check ID, "SNP-<AREA>-<NNN>"
  Severity severity = Severity::kInfo;
  std::string message;
  /// Where the finding anchors: a program section ("prologue", "body",
  /// "epilogue"), "config", or "source". Empty for pass-level findings.
  std::string section;
  /// Position within `section` (instruction index, line, or an emission
  /// counter when no natural position exists). Together with (id,
  /// section) this keys the canonical output order.
  std::size_t index = 0;
};

/// Accumulates diagnostics across analyzer passes. Never throws on add;
/// the analyzer reports problems, it does not fail on them.
class Report {
 public:
  void add(std::string id, Severity severity, std::string message);
  void add(std::string id, Severity severity, std::string message,
           std::string section, std::size_t index);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  /// True when at least one diagnostic with exactly this ID is present.
  [[nodiscard]] bool has(std::string_view id) const;
  [[nodiscard]] bool has_errors() const {
    return count(Severity::kError) > 0;
  }
  [[nodiscard]] std::size_t count(Severity severity) const;
  /// The first error-severity diagnostic in canonical order, or nullptr.
  [[nodiscard]] const Diagnostic* first_error() const;

  /// Diagnostics in canonical order: sorted by (id, section, index).
  /// Emission order is an implementation detail of the passes; both
  /// writers below use this order so output is deterministic.
  [[nodiscard]] std::vector<Diagnostic> sorted() const;

  /// One `severity  ID  message` line per diagnostic, canonical order.
  void write_text(std::ostream& os) const;
  /// JSON array of {"id", "severity", "message", "section", "index"}
  /// objects, canonical order.
  void write_json(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t seq_ = 0;  ///< fallback index for section-less adds
};

/// Thrown by the blocking pre-launch verification pass when the analyzer
/// proves a configured kernel unsafe (error-severity findings). Carries
/// the first failed check's stable ID so callers can surface it as the
/// leading stderr token (the CLI maps this to exit code 3).
class VerificationError : public std::runtime_error {
 public:
  VerificationError(std::string check_id, const std::string& message)
      : std::runtime_error(message), check_id_(std::move(check_id)) {}

  [[nodiscard]] const std::string& check_id() const { return check_id_; }

 private:
  std::string check_id_;
};

}  // namespace snp::analyze
