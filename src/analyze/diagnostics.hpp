// snp::analyze — diagnostics for the kernel/config static analyzer.
//
// Every finding the analyzer produces is a Diagnostic: a stable check ID
// (e.g. "SNP-SHMEM-001", documented in docs/static-analysis.md), a
// severity, and a human-readable message. IDs are part of the tool's
// interface — tests pin them, CI greps them, and users suppress by them —
// so existing IDs never change meaning; new checks get new IDs.
//
// Severity policy:
//   kError — the config/kernel is unsafe or cannot work on the device
//            (would fail validate(), spill, or exceed a hard limit).
//            `snpcmp lint` exits non-zero when any are present.
//   kWarn  — runs, but the analytical model predicts degraded performance
//            (idle cores, bank conflicts, unhidden latency).
//   kInfo  — noteworthy modeling facts, e.g. the Eq. 5 discrepancy.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace snp::analyze {

enum class Severity { kError, kWarn, kInfo };

[[nodiscard]] std::string_view to_string(Severity s);

struct Diagnostic {
  std::string id;        ///< stable check ID, "SNP-<AREA>-<NNN>"
  Severity severity = Severity::kInfo;
  std::string message;
};

/// Accumulates diagnostics across analyzer passes. Never throws on add;
/// the analyzer reports problems, it does not fail on them.
class Report {
 public:
  void add(std::string id, Severity severity, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  /// True when at least one diagnostic with exactly this ID is present.
  [[nodiscard]] bool has(std::string_view id) const;
  [[nodiscard]] bool has_errors() const {
    return count(Severity::kError) > 0;
  }
  [[nodiscard]] std::size_t count(Severity severity) const;

  /// One `severity  ID  message` line per diagnostic.
  void write_text(std::ostream& os) const;
  /// JSON array of {"id", "severity", "message"} objects.
  void write_json(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace snp::analyze
