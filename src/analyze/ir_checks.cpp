#include <array>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analyze/checks.hpp"
#include "analyze/dataflow.hpp"
#include "sim/pipeline.hpp"

namespace snp::analyze {

namespace {

using sim::Instr;
using sim::Opcode;

const char* section_name(int s) {
  return s == 0 ? "prologue" : (s == 1 ? "body" : "epilogue");
}

struct Located {
  const Instr* ins;
  int section;        ///< 0 = prologue, 1 = body, 2 = epilogue
  std::size_t index;  ///< position within its section
};

/// Prologue + ONE body iteration + epilogue, for the per-instruction
/// scans below (the dataflow engine does its own two-iteration
/// unrolling).
std::vector<Located> linearize(const sim::Program& p) {
  std::vector<Located> out;
  out.reserve(p.prologue.size() + p.body.size() + p.epilogue.size());
  for (std::size_t i = 0; i < p.prologue.size(); ++i) {
    out.push_back({&p.prologue[i], 0, i});
  }
  for (std::size_t i = 0; i < p.body.size(); ++i) {
    out.push_back({&p.body[i], 1, i});
  }
  for (std::size_t i = 0; i < p.epilogue.size(); ++i) {
    out.push_back({&p.epilogue[i], 2, i});
  }
  return out;
}

bool is_compute(model::InstrClass c) {
  return c != model::InstrClass::kMem;
}

}  // namespace

void check_program(const model::GpuSpec& dev, const sim::Program& program,
                   int resident_groups_per_cluster, Report& report) {
  // The dataflow engine (analyze/dataflow.hpp): per-lane race detection
  // (SNP-RACE-*, superseding the SNP-IR-001 pending-STS heuristic),
  // bounds proofs (SNP-BOUND-*), accumulator overflow proofs (SNP-OVF-*)
  // and def-use/liveness (SNP-DF-*, superseding SNP-IR-002/003).
  check_races(dev, program, report);
  check_bounds(dev, program, report);
  check_overflow(dev, program, report);
  check_defuse(program, report);

  const auto linear = linearize(program);
  std::ostringstream msg;

  // SNP-IR-004: dependent-chain depth vs latency hiding. For each compute
  // class, the body's longest same-class dependence chain D bounds the
  // independent work per iteration at n/D; with G resident groups the
  // pipe sees G*n/D independent instructions, which must reach L_fn to
  // cover the latency (Eq. 7's purpose).
  const int resident = std::max(resident_groups_per_cluster, 1);
  constexpr std::array<model::InstrClass, 3> kComputeClasses = {
      model::InstrClass::kLogic, model::InstrClass::kAdd,
      model::InstrClass::kPopc};
  for (const auto cls : kComputeClasses) {
    // chain[r] = number of class-`cls` instructions on the longest
    // dependence path (through any registers) ending in r's value.
    std::map<int, long long> chain;
    long long depth = 0;
    long long count = 0;
    for (const auto& ins : program.body) {
      if (!is_compute(sim::instr_class(ins.op))) {
        continue;
      }
      long long in = 0;
      for (const int src : {ins.src1, ins.src2}) {
        if (src != sim::kNoReg) {
          const auto it = chain.find(src);
          if (it != chain.end()) {
            in = std::max(in, it->second);
          }
        }
      }
      const bool mine = sim::instr_class(ins.op) == cls;
      const long long out = in + (mine ? 1 : 0);
      if (ins.dst != sim::kNoReg) {
        chain[ins.dst] = out;
      }
      if (mine) {
        count += 1;
        depth = std::max(depth, out);
      }
    }
    if (count == 0 || depth == 0) {
      continue;
    }
    const int lfn = dev.pipe(cls).latency_cycles;
    if (static_cast<long long>(resident) * count < depth * lfn) {
      msg.str("");
      msg << "dependent chain of " << depth << " ops (of " << count
          << " per iteration) on the "
          << (cls == model::InstrClass::kPopc
                  ? "popcount"
                  : (cls == model::InstrClass::kAdd ? "add" : "logic"))
          << " pipe: " << resident << " resident group(s) leave fewer "
          << "than L_fn = " << lfn
          << " independent instructions in flight (latency not hidden)";
      report.add("SNP-IR-004", Severity::kWarn, msg.str());
    }
  }

  // SNP-BANK-002: strided shared-memory accesses that collide modulo N_b.
  std::set<std::pair<bool, int>> reported_strides;
  for (const auto& li : linear) {
    if (li.ins->op != Opcode::kLds && li.ins->op != Opcode::kSts) {
      continue;
    }
    const int factor = sim::bank_conflict_factor(dev, li.ins->imm);
    if (factor > 1 &&
        reported_strides.insert({li.ins->op == Opcode::kSts, li.ins->imm})
            .second) {
      msg.str("");
      msg << sim::to_string(li.ins->op) << " with per-lane stride "
          << li.ins->imm << " words serializes " << factor
          << "x across the " << dev.banks << " shared-memory banks";
      report.add("SNP-BANK-002", Severity::kWarn, msg.str(),
                 section_name(li.section), li.index);
    }
  }
}

}  // namespace snp::analyze
