#include "analyze/diagnostics.hpp"

#include <algorithm>
#include <ostream>

#include "obs/envinfo.hpp"

namespace snp::analyze {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarn:
      return "warn";
    case Severity::kInfo:
      return "info";
  }
  return "?";
}

void Report::add(std::string id, Severity severity, std::string message) {
  diags_.push_back({std::move(id), severity, std::move(message)});
}

bool Report::has(std::string_view id) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.id == id; });
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

void Report::write_text(std::ostream& os) const {
  for (const auto& d : diags_) {
    os << to_string(d.severity) << "  " << d.id << "  " << d.message
       << "\n";
  }
}

void Report::write_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const auto& d : diags_) {
    os << (first ? "" : ", ") << "{\"id\": \"" << obs::json_escape(d.id)
       << "\", \"severity\": \"" << to_string(d.severity)
       << "\", \"message\": \"" << obs::json_escape(d.message) << "\"}";
    first = false;
  }
  os << "]";
}

}  // namespace snp::analyze
