#include "analyze/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "obs/envinfo.hpp"

namespace snp::analyze {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarn:
      return "warn";
    case Severity::kInfo:
      return "info";
  }
  return "?";
}

void Report::add(std::string id, Severity severity, std::string message) {
  diags_.push_back({std::move(id), severity, std::move(message), "",
                    seq_++});
}

void Report::add(std::string id, Severity severity, std::string message,
                 std::string section, std::size_t index) {
  diags_.push_back({std::move(id), severity, std::move(message),
                    std::move(section), index});
  ++seq_;
}

bool Report::has(std::string_view id) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.id == id; });
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

namespace {

/// Sections sort in program order, not lexicographically; diagnostics
/// without a section (rank 0, empty string) keep their insertion index.
int section_rank(const std::string& s) {
  if (s == "prologue") {
    return 1;
  }
  if (s == "body") {
    return 2;
  }
  if (s == "epilogue") {
    return 3;
  }
  return s.empty() ? 0 : 4;
}

bool canonical_less(const Diagnostic& a, const Diagnostic& b) {
  const int ra = section_rank(a.section);
  const int rb = section_rank(b.section);
  return std::tie(a.id, ra, a.section, a.index) <
         std::tie(b.id, rb, b.section, b.index);
}

}  // namespace

const Diagnostic* Report::first_error() const {
  const Diagnostic* best = nullptr;
  for (const auto& d : diags_) {
    if (d.severity != Severity::kError) {
      continue;
    }
    if (best == nullptr || canonical_less(d, *best)) {
      best = &d;
    }
  }
  return best;
}

std::vector<Diagnostic> Report::sorted() const {
  std::vector<Diagnostic> out = diags_;
  std::stable_sort(out.begin(), out.end(), canonical_less);
  return out;
}

void Report::write_text(std::ostream& os) const {
  for (const auto& d : sorted()) {
    os << to_string(d.severity) << "  " << d.id << "  " << d.message
       << "\n";
  }
}

void Report::write_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const auto& d : sorted()) {
    os << (first ? "" : ", ") << "{\"id\": \"" << obs::json_escape(d.id)
       << "\", \"severity\": \"" << to_string(d.severity)
       << "\", \"message\": \"" << obs::json_escape(d.message)
       << "\", \"section\": \"" << obs::json_escape(d.section)
       << "\", \"index\": " << d.index << "}";
    first = false;
  }
  os << "]";
}

}  // namespace snp::analyze
