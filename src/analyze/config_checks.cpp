#include <sstream>

#include "analyze/checks.hpp"

namespace snp::analyze {

namespace {

int latency(const model::GpuSpec& dev) {
  return dev.pipe(model::InstrClass::kPopc).latency_cycles;
}

/// A tile filling less than this fraction of usable shared memory leaves
/// reuse on the table (Eq. 6 sizes k_c to fill it).
constexpr int kShmemUseNumer = 3;
constexpr int kShmemUseDenom = 4;

}  // namespace

void check_config(const model::GpuSpec& dev, const model::KernelConfig& cfg,
                  Report& report) {
  std::ostringstream msg;
  if (!dev.valid() || dev.n_vec <= 0 || dev.n_grp_max <= 0 ||
      dev.regs_per_core == 0 || dev.max_regs_per_thread <= 0 ||
      dev.shared_reserved >= dev.shared_bytes) {
    report.add("SNP-DEV-001", Severity::kError,
               "device spec '" + dev.name +
                   "' is incomplete or inconsistent; no further checks run");
    return;
  }
  if (cfg.m_r <= 0 || cfg.m_c <= 0 || cfg.k_c <= 0 || cfg.n_r <= 0) {
    msg << "all blocking parameters must be positive, got " <<
        cfg.to_string();
    report.add("SNP-CFG-001", Severity::kError, msg.str());
    return;  // everything below divides by them
  }

  const int lfn = latency(dev);
  if (cfg.m_r % dev.n_vec != 0) {
    msg.str("");
    msg << "m_r = " << cfg.m_r << " is not a multiple of N_vec = "
        << dev.n_vec << " (Eq. 4: vectorized loads need m_r = N_vec)";
    report.add("SNP-CFG-002", Severity::kError, msg.str());
  }
  if (cfg.m_c % cfg.m_r != 0) {
    msg.str("");
    msg << "m_c = " << cfg.m_c << " is not a multiple of m_r = " << cfg.m_r
        << "; row sub-tiles would straddle micro-tile boundaries";
    report.add("SNP-CFG-003", Severity::kError, msg.str());
  }
  if (cfg.n_r % lfn != 0) {
    msg.str("");
    msg << "n_r = " << cfg.n_r << " does not split into L_fn = " << lfn
        << " latency-hiding column groups";
    report.add("SNP-CFG-004", Severity::kError, msg.str());
  }
  if (cfg.n_r < model::n_r_lower_bound(dev, cfg.m_r, cfg.m_c)) {
    msg.str("");
    msg << "n_r = " << cfg.n_r << " is below the Eq. 7 lower bound "
        << model::n_r_lower_bound(dev, cfg.m_r, cfg.m_c)
        << "; too few columns per core to hide pipe latency";
    report.add("SNP-CFG-005", Severity::kError, msg.str());
  }
  if (cfg.m_c == dev.banks && cfg.m_c != model::m_c_eq5(dev)) {
    msg.str("");
    msg << "m_c = N_b = " << cfg.m_c
        << " follows Table II, not Eq. 5 as printed (N_b / N_cl = "
        << model::m_c_eq5(dev)
        << "); see the Eq. 5 discrepancy note in DESIGN.md";
    report.add("SNP-CFG-006", Severity::kInfo, msg.str());
  }

  // Shared-memory envelope.
  const std::size_t usable = dev.shared_bytes - dev.shared_reserved;
  const std::size_t tile = cfg.shared_tile_bytes();
  if (tile > usable) {
    msg.str("");
    msg << "A tile (m_c * k_c * 4 = " << tile
        << " bytes) exceeds usable shared memory (" << usable
        << " bytes = N_shared - reserved)";
    report.add("SNP-SHMEM-001", Severity::kError, msg.str());
  } else if (tile * kShmemUseDenom < usable * kShmemUseNumer) {
    msg.str("");
    msg << "A tile uses only " << tile << " of " << usable
        << " usable shared-memory bytes; Eq. 6 would pick k_c = "
        << usable / (4 * static_cast<std::size_t>(cfg.m_c))
        << " to maximize B reuse";
    report.add("SNP-SHMEM-002", Severity::kInfo, msg.str());
  }

  // Register envelope at the N_cl x L_fn occupancy plateau.
  const int demand = model::register_demand_per_thread(cfg, dev);
  const int budget = model::register_budget_per_thread(dev);
  if (demand > budget) {
    msg.str("");
    msg << "per-thread register demand " << demand
        << " exceeds the budget " << budget
        << " at N_cl x L_fn occupancy (the compiler would spill)";
    report.add("SNP-REG-001", Severity::kError, msg.str());
  }

  // Occupancy plateau vs the device's resident-group limit.
  const int plateau = cfg.groups_per_core(dev);
  if (plateau > dev.n_grp_max) {
    msg.str("");
    msg << "occupancy plateau N_cl * L_fn = " << plateau
        << " groups/core exceeds the device limit N_grp = "
        << dev.n_grp_max;
    report.add("SNP-OCC-001", Severity::kError, msg.str());
  }

  // Core grid.
  if (cfg.grid.grid_m <= 0 || cfg.grid.grid_n <= 0 ||
      cfg.grid.cores() > dev.n_cores) {
    msg.str("");
    msg << "core grid " << cfg.grid.to_string()
        << " is invalid or uses more than the device's " << dev.n_cores
        << " cores";
    report.add("SNP-GRID-001", Severity::kError, msg.str());
  } else if (cfg.grid.cores() < dev.n_cores) {
    msg.str("");
    msg << "core grid " << cfg.grid.to_string() << " uses "
        << cfg.grid.cores() << " of " << dev.n_cores
        << " cores; the rest idle for the whole comparison";
    report.add("SNP-OCC-002", Severity::kWarn, msg.str());
  }

  // Bank layout: the k-major A tile gives lanes stride 1 over rows, which
  // is conflict-free exactly while a row index fits in one bank pass.
  if (cfg.m_c > dev.banks) {
    msg.str("");
    msg << "m_c = " << cfg.m_c << " > N_b = " << dev.banks
        << ": lanes of a group collide modulo N_b on every A-tile access "
        << "(the Eq. 5 bank constraint)";
    report.add("SNP-BANK-001", Severity::kError, msg.str());
  }
}

}  // namespace snp::analyze
