// snp::analyze — dataflow/abstract-interpretation engine over sim::Program.
//
// The engine models one cooperative thread group of N_T lanes executing a
// program's prologue, counted body, and epilogue, and proves four families
// of properties about every lane and every loop trip:
//
//   SNP-RACE-*  — per-lane shared-memory race freedom. Each kSts/kLds
//                 footprint is the affine per-lane address
//                     word(lane, iter) = base + lane*imm + iter*iter_stride
//                 Accesses by *different* lanes within the same barrier
//                 interval are unordered; two such accesses that touch the
//                 same word with at least one write race. The body is
//                 unrolled two iterations so races between the end of trip
//                 i and the start of trip i+1 are visible.
//   SNP-BOUND-* — interval bounds proofs. Every tracked access must stay
//                 inside its declared extent (Program::shared_words for
//                 the Eq. 4/5 LDS tile, Program::extent_words for global
//                 operands) for all lanes and all trips, evaluated at the
//                 corners of the affine address function.
//   SNP-OVF-*   — accumulator width proofs. Values are intervals; kPopc
//                 yields [0, 32], kAdd sums. The body's transfer function
//                 is iterated symbolically and, when per-trip growth is
//                 affine (delta-equal across consecutive trips), the exact
//                 peak after Program::iterations trips is extrapolated; a
//                 kAdd result that can exceed 2^32-1 is an error with the
//                 exact bound in the diagnostic. Non-affine growth
//                 saturates conservatively.
//   SNP-DF-*    — def-use/liveness: reads of never-written registers and
//                 registers written but never consumed.
//
// The engine is exact (no false positives) on programs whose tracked
// accesses are affine and whose shared-memory footprints do not move
// across iterations — which covers every program the kern builders emit —
// and falls back to conservative MAY answers (reported as races/bounds
// errors) when an access pattern defeats the exact analysis.
//
// Analyzer soundness is enforced by the seeded mutation soak in
// analyze/mutate.hpp: every mutant of the shipped kernel corpus must trip
// exactly its expected check.
#pragma once

#include "analyze/diagnostics.hpp"
#include "model/device.hpp"
#include "sim/isa.hpp"

namespace snp::analyze {

/// Per-lane shared-memory race detection (SNP-RACE-001 write-write,
/// SNP-RACE-002 unsynchronized read-write).
void check_races(const model::GpuSpec& dev, const sim::Program& program,
                 Report& report);

/// Bounds proofs for every tracked memory access (SNP-BOUND-001 shared,
/// SNP-BOUND-002 global) and the declared LDS allocation itself
/// (SNP-BOUND-003).
void check_bounds(const model::GpuSpec& dev, const sim::Program& program,
                  Report& report);

/// Accumulator overflow proofs over the full trip count (SNP-OVF-001).
void check_overflow(const model::GpuSpec& dev, const sim::Program& program,
                    Report& report);

/// Def-use/liveness (SNP-DF-001 read-before-def, SNP-DF-002 dead store).
void check_defuse(const sim::Program& program, Report& report);

}  // namespace snp::analyze
