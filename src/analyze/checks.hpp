// The individual analyzer passes. Each pass appends Diagnostics to a
// Report and never throws; callers that need the full pipeline (config ->
// IR -> source, with generation gated on a clean config) use
// analyze::analyze() from analyzer.hpp instead of calling these directly.
//
// Check IDs, severities, and rationale are documented in
// docs/static-analysis.md; check_registry() is the machine-readable copy.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/isa.hpp"

namespace snp::analyze {

struct CheckInfo {
  const char* id;
  Severity severity;
  const char* summary;
  /// Non-null when a newer check replaced this one. The old ID stays in
  /// the registry forever (suppressions and goldens reference it) but is
  /// never emitted again; diagnostics come from the superseding check.
  const char* superseded_by = nullptr;
};

/// Every check the analyzer can emit, with its fixed severity — the
/// authoritative list docs/static-analysis.md and tests are pinned to.
[[nodiscard]] const std::vector<CheckInfo>& check_registry();

/// Registry entry for `id`, or nullptr for an unknown ID.
[[nodiscard]] const CheckInfo* find_check(std::string_view id);

/// Resource-envelope, blocking-equation, occupancy, and bank-layout checks
/// on a (device, config) pair. Mirrors model::validate() as diagnostics
/// (every validate() failure maps to an error-severity check) and adds the
/// warn/info findings validate() has no channel for.
void check_config(const model::GpuSpec& dev, const model::KernelConfig& cfg,
                  Report& report);

/// IR-level dataflow verification of a sim::Program (see
/// analyze/dataflow.hpp for the engine): per-lane shared-memory race
/// detection between barrier intervals (SNP-RACE-*), interval bounds
/// proofs for every tracked memory access (SNP-BOUND-*), accumulator
/// overflow proofs over the full trip count (SNP-OVF-*), register
/// def-use/liveness (SNP-DF-*), dependent-chain depth vs the latency the
/// resident groups can hide (SNP-IR-004), and bank-conflict strides
/// (SNP-BANK-002). `resident_groups_per_cluster` is the occupancy the
/// schedule assumes (the N_cl x L_fn policy passes L_fn).
void check_program(const model::GpuSpec& dev, const sim::Program& program,
                   int resident_groups_per_cluster, Report& report);

/// Source-level lint of the rendered OpenCL C: every SNP_* macro the body
/// references is defined by the header, no macro is redefined to a
/// different value, and barriers sit in uniform control flow.
void check_source(const std::string& header, const std::string& body,
                  Report& report);

}  // namespace snp::analyze
