// Kinship estimation from bit-plane comparisons (KING-robust).
//
// The forensic motivation of the paper (Section I cites kinship toolkits
// like KinLinks) ultimately needs relatedness estimates between profiles.
// The KING-robust kinship coefficient (Manichaikul et al. 2010) is, like
// LD and FastID, pure popcount arithmetic over bit planes:
//
//   phi = (N_AaAa - 2 * N_IBS0) / (N_Aa(i) + N_Aa(j))
//
// where N_AaAa counts loci where both individuals are heterozygous,
// N_IBS0 counts loci with opposite homozygotes, and N_Aa are per-
// individual heterozygote counts. With individual-major presence (P) and
// homozygous (H) planes:
//   Het       = P & ~H                      (a derived plane)
//   N_AaAa    = |Het_i & Het_j|             (AND comparison)
//   N_IBS0    = (|H_i| - |H_i & P_j|) + (|H_j| - |H_j & P_i|)
// — all products of the framework's standard kernels.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bits/bitmatrix.hpp"
#include "bits/genotype.hpp"

namespace snp::stats {

enum class Relationship {
  kDuplicate,     ///< phi >= 0.354 (monozygotic twin / duplicate sample)
  kFirstDegree,   ///< [0.177, 0.354): parent-offspring, full siblings
  kSecondDegree,  ///< [0.0884, 0.177)
  kThirdDegree,   ///< [0.0442, 0.0884)
  kUnrelated,     ///< below 0.0442
};

[[nodiscard]] constexpr std::string_view to_string(Relationship r) {
  switch (r) {
    case Relationship::kDuplicate:
      return "duplicate/twin";
    case Relationship::kFirstDegree:
      return "1st degree";
    case Relationship::kSecondDegree:
      return "2nd degree";
    case Relationship::kThirdDegree:
      return "3rd degree";
    case Relationship::kUnrelated:
      return "unrelated";
  }
  return "?";
}

/// The KING inference thresholds (powers of 2^-1.5 around 2^-(d+1.5)).
[[nodiscard]] Relationship classify_kinship(double phi);

struct KinshipResult {
  double phi = 0.0;
  std::uint32_t n_het_het = 0;
  std::uint32_t n_ibs0 = 0;
  std::uint32_t n_het_i = 0;
  std::uint32_t n_het_j = 0;
  Relationship relationship = Relationship::kUnrelated;
};

/// KING-robust from precomputed comparison counts. `h_p_ij` = |H_i & P_j|,
/// `h_p_ji` = |H_j & P_i|; `hom_*` / `het_*` are plane marginals.
[[nodiscard]] KinshipResult king_robust(std::uint32_t het_het,
                                        std::uint32_t h_p_ij,
                                        std::uint32_t h_p_ji,
                                        std::uint32_t hom_i,
                                        std::uint32_t hom_j,
                                        std::uint32_t het_i,
                                        std::uint32_t het_j);

/// Individual-major plane encoding: rows = samples, bit columns = loci
/// (the transpose of bits::encode's orientation).
[[nodiscard]] bits::BitMatrix encode_individual_major(
    const bits::GenotypeMatrix& g, bits::EncodingPlane plane);

/// Heterozygote plane P & ~H for individual-major planes.
[[nodiscard]] bits::BitMatrix het_plane(const bits::BitMatrix& presence,
                                        const bits::BitMatrix& homozygous);

/// Full pairwise kinship matrix (samples x samples, row-major) from a
/// genotype cohort, computed with the framework's comparison kernels.
[[nodiscard]] std::vector<KinshipResult> kinship_matrix(
    const bits::GenotypeMatrix& g);

}  // namespace snp::stats
