// Linkage-disequilibrium statistics (paper Section II-A).
//
// The GPU/CPU engines produce the raw co-occurrence counts
// gamma[i,j] = |a_i & a_j| (Eq. 1). This module turns them into the
// population-genetics quantities of interest: D = p_AB - p_A p_B, the
// normalized D' of Lewontin, and the squared correlation r^2 — the
// statistics LD scans actually report.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitmatrix.hpp"

namespace snp::stats {

struct LdStats {
  double p_a = 0.0;   ///< minor-allele frequency at locus A
  double p_b = 0.0;   ///< minor-allele frequency at locus B
  double p_ab = 0.0;  ///< joint frequency
  double d = 0.0;     ///< D = p_AB - p_A * p_B
  double d_prime = 0.0;
  double r2 = 0.0;
};

/// Computes LD statistics for one locus pair from the comparison output:
/// `joint` = gamma[i,j], `count_a` / `count_b` = per-locus set-bit counts,
/// `samples` = number of sample columns (the denominator).
[[nodiscard]] LdStats ld_from_counts(std::uint32_t joint,
                                     std::uint32_t count_a,
                                     std::uint32_t count_b,
                                     std::size_t samples);

/// All-pairs r^2 from a full gamma matrix (as produced by an LD kernel run
/// of A against itself) and the per-locus counts. Returns a dense
/// loci x loci matrix in row-major order.
[[nodiscard]] std::vector<double> r2_matrix(
    const bits::CountMatrix& gamma,
    const std::vector<std::uint32_t>& locus_counts, std::size_t samples);

/// Per-row set-bit counts of a bit matrix (the marginals LD needs).
[[nodiscard]] std::vector<std::uint32_t> row_counts(const bits::BitMatrix&
                                                        m);

}  // namespace snp::stats
