// LD from *unphased genotype* data via the EM algorithm.
//
// The presence-plane gamma counts give haplotype-style LD only when the
// input rows are phased haplotypes. Real cohorts are unphased diploid
// genotypes; the standard remedy (Hill 1974; what PLINK's --r2 does) is an
// EM estimate of the four haplotype frequencies, where only the
// double-heterozygote cell is phase-ambiguous.
//
// The 3x3 joint genotype table a pair of loci needs is exactly recoverable
// from the bit-comparison framework's outputs on the two encoding planes
// (presence P: dosage >= 1, homozygous H: dosage == 2):
//   n22 = |H_i & H_j|,      n12 + n22 = |P_i & H_j|,
//   n21 + n22 = |H_i & P_j|, and sum_{a>=1,b>=1} = |P_i & P_j|,
// plus the per-locus marginals — so genotype-level LD rides on the same
// GPU kernels (four AND comparisons instead of one).
#pragma once

#include <cstdint>

namespace snp::stats {

/// Joint genotype counts for one locus pair: cell(a, b) = individuals with
/// minor-allele dosage a at locus A and b at locus B.
struct GenotypePairTable {
  double n[3][3] = {};

  [[nodiscard]] double total() const;
  /// Minor-allele frequency at locus A / B implied by the table.
  [[nodiscard]] double p_a() const;
  [[nodiscard]] double p_b() const;
  /// All cells non-negative (a recovered table can be checked with this).
  [[nodiscard]] bool valid() const;
};

/// Recovers the 3x3 table from the four plane-pair gamma values and the
/// per-locus plane marginals. `pp` = |P_i & P_j|, `hh` = |H_i & H_j|,
/// `ph` = |P_i & H_j|, `hp` = |H_i & P_j|; `pres_*`/`hom_*` are row
/// popcounts of the planes; `samples` the cohort size.
/// Throws std::invalid_argument when the counts are inconsistent (any
/// recovered cell negative).
[[nodiscard]] GenotypePairTable table_from_plane_counts(
    std::uint32_t pp, std::uint32_t hh, std::uint32_t ph, std::uint32_t hp,
    std::uint32_t pres_a, std::uint32_t hom_a, std::uint32_t pres_b,
    std::uint32_t hom_b, std::size_t samples);

struct EmLdResult {
  double p_ab = 0.0;  ///< estimated AB haplotype frequency
  double p_a = 0.0;   ///< minor-allele frequency, locus A
  double p_b = 0.0;
  double d = 0.0;
  double d_prime = 0.0;
  double r2 = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Hill's EM over the haplotype frequencies. Converges in a handful of
/// iterations for real tables; `tol` bounds the p_AB change per step.
[[nodiscard]] EmLdResult em_ld(const GenotypePairTable& table,
                               int max_iterations = 100,
                               double tol = 1e-12);

}  // namespace snp::stats
