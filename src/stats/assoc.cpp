#include "stats/assoc.hpp"

#include <cmath>
#include <stdexcept>

#include "bits/compare.hpp"

namespace snp::stats {

bool AssocCounts::valid() const {
  for (int i = 0; i < 3; ++i) {
    if (cases[i] < 0.0 || controls[i] < 0.0) {
      return false;
    }
  }
  return true;
}

AssocCounts assoc_counts(std::uint32_t pres_case, std::uint32_t hom_case,
                         std::uint32_t pres_all, std::uint32_t hom_all,
                         std::size_t n_case, std::size_t n_all) {
  if (n_case > n_all || pres_case > pres_all || hom_case > hom_all ||
      hom_case > pres_case || hom_all > pres_all) {
    throw std::invalid_argument("assoc_counts: inconsistent counts");
  }
  AssocCounts c;
  c.cases[2] = hom_case;
  c.cases[1] = static_cast<double>(pres_case) - hom_case;
  c.cases[0] = static_cast<double>(n_case) - pres_case;
  c.controls[2] = static_cast<double>(hom_all) - hom_case;
  c.controls[1] = static_cast<double>(pres_all - pres_case) -
                  c.controls[2];
  c.controls[0] = static_cast<double>(n_all - n_case) -
                  static_cast<double>(pres_all - pres_case);
  if (!c.valid()) {
    throw std::invalid_argument("assoc_counts: inconsistent counts "
                                "(negative cell)");
  }
  return c;
}

double chi2_sf_1df(double chi2) {
  if (chi2 <= 0.0) {
    return 1.0;
  }
  return std::erfc(std::sqrt(chi2 / 2.0));
}

AssocResult association_test(const AssocCounts& c) {
  AssocResult r;
  const double n_case = c.n_cases();
  const double n_ctrl = c.n_controls();
  const double n = n_case + n_ctrl;
  if (n_case <= 0.0 || n_ctrl <= 0.0) {
    return r;
  }

  // Allelic 2x2: minor vs major allele counts by status.
  const double a_case = c.cases[1] + 2.0 * c.cases[2];
  const double a_ctrl = c.controls[1] + 2.0 * c.controls[2];
  const double ref_case = 2.0 * n_case - a_case;
  const double ref_ctrl = 2.0 * n_ctrl - a_ctrl;
  r.maf_cases = a_case / (2.0 * n_case);
  r.maf_controls = a_ctrl / (2.0 * n_ctrl);
  const double total_alleles = 2.0 * n;
  const double row1 = a_case + ref_case;
  const double row2 = a_ctrl + ref_ctrl;
  const double col1 = a_case + a_ctrl;
  const double col2 = ref_case + ref_ctrl;
  if (col1 > 0.0 && col2 > 0.0) {
    const double det = a_case * ref_ctrl - ref_case * a_ctrl;
    r.chi2_allelic = total_alleles * det * det / (row1 * row2 * col1 *
                                                  col2);
    r.p_allelic = chi2_sf_1df(r.chi2_allelic);
    // Haldane-Anscombe-corrected OR when any cell is zero.
    const bool any_zero = a_case == 0.0 || a_ctrl == 0.0 ||
                          ref_case == 0.0 || ref_ctrl == 0.0;
    const double h = any_zero ? 0.5 : 0.0;
    r.odds_ratio = ((a_case + h) * (ref_ctrl + h)) /
                   ((ref_case + h) * (a_ctrl + h));
  }

  // Cochran-Armitage trend with additive weights t = {0, 1, 2}:
  // chi2 = N (N * sum t_i r_i - R * sum t_i n_i)^2
  //        / (R (N - R) (N * sum t_i^2 n_i - (sum t_i n_i)^2)).
  const double t[3] = {0.0, 1.0, 2.0};
  double sum_tr = 0.0, sum_tn = 0.0, sum_ttn = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double n_i = c.cases[i] + c.controls[i];
    sum_tr += t[i] * c.cases[i];
    sum_tn += t[i] * n_i;
    sum_ttn += t[i] * t[i] * n_i;
  }
  const double num = n * sum_tr - n_case * sum_tn;
  const double denom =
      n_case * (n - n_case) * (n * sum_ttn - sum_tn * sum_tn);
  if (denom > 0.0) {
    r.chi2_trend = n * num * num / denom;
    r.p_trend = chi2_sf_1df(r.chi2_trend);
  }
  return r;
}

std::vector<AssocResult> gwas_scan(const bits::GenotypeMatrix& genotypes,
                                   const std::vector<bool>& is_case) {
  if (is_case.size() != genotypes.samples()) {
    throw std::invalid_argument(
        "gwas_scan: case vector must match the sample count");
  }
  const auto pres =
      bits::encode(genotypes, bits::EncodingPlane::kPresence);
  const auto hom =
      bits::encode(genotypes, bits::EncodingPlane::kHomozygous);

  // The case-status mask, packed with the loci's stride so rows align.
  bits::BitMatrix mask(1, genotypes.samples(), pres.words64_per_row());
  std::size_t n_case = 0;
  for (std::size_t s = 0; s < is_case.size(); ++s) {
    if (is_case[s]) {
      mask.set(0, s, true);
      ++n_case;
    }
  }
  const auto mask_row = mask.row64(0);

  std::vector<AssocResult> out(genotypes.loci());
  for (std::size_t l = 0; l < genotypes.loci(); ++l) {
    const auto p_row = pres.row64(l);
    const auto h_row = hom.row64(l);
    std::uint32_t pres_case = 0, hom_case = 0;
    for (std::size_t w = 0; w < mask_row.size(); ++w) {
      pres_case += static_cast<std::uint32_t>(
          bits::popcount(p_row[w] & mask_row[w]));
      hom_case += static_cast<std::uint32_t>(
          bits::popcount(h_row[w] & mask_row[w]));
    }
    const auto counts = assoc_counts(
        pres_case, hom_case,
        static_cast<std::uint32_t>(pres.row_popcount(l)),
        static_cast<std::uint32_t>(hom.row_popcount(l)), n_case,
        genotypes.samples());
    out[l] = association_test(counts);
  }
  return out;
}

}  // namespace snp::stats
