#include "stats/cluster.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "bits/compare.hpp"
#include "cpu/engine.hpp"

namespace snp::stats {

std::vector<std::size_t> Dendrogram::cut_k(std::size_t k) const {
  if (k == 0 || k > leaves_) {
    throw std::invalid_argument("Dendrogram::cut_k: k out of range");
  }
  // Nodes created by the first (leaves - k) merges stay glued; the last
  // (k - 1) merges are undone. Union-find over the kept merges.
  std::vector<std::size_t> parent(nodes_.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    parent[i] = i;
  }
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const std::size_t kept_merges = leaves_ - k;
  for (std::size_t m = 0; m < kept_merges; ++m) {
    const std::size_t node = leaves_ + m;
    parent[find(static_cast<std::size_t>(nodes_[node].left))] = node;
    parent[find(static_cast<std::size_t>(nodes_[node].right))] = node;
  }
  // Compact root ids to labels 0..k-1 in first-seen order.
  std::vector<std::size_t> labels(leaves_);
  std::vector<std::size_t> roots;
  for (std::size_t leaf = 0; leaf < leaves_; ++leaf) {
    const std::size_t root = find(leaf);
    const auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      labels[leaf] = roots.size();
      roots.push_back(root);
    } else {
      labels[leaf] = static_cast<std::size_t>(it - roots.begin());
    }
  }
  return labels;
}

bool Dendrogram::heights_monotone() const {
  double prev = -std::numeric_limits<double>::infinity();
  for (std::size_t i = leaves_; i < nodes_.size(); ++i) {
    if (nodes_[i].height + 1e-9 < prev) {
      return false;
    }
    prev = nodes_[i].height;
  }
  return true;
}

Dendrogram upgma(const bits::CountMatrix& d) {
  const std::size_t n = d.rows();
  if (n == 0 || d.cols() != n) {
    throw std::invalid_argument("upgma: need a non-empty square matrix");
  }
  std::vector<ClusterNode> nodes(n);  // leaves
  // Active clusters: node index + current average distance to every other
  // active cluster, maintained densely.
  std::vector<std::size_t> active;
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    active.push_back(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (d.at(i, j) != d.at(j, i)) {
        throw std::invalid_argument("upgma: matrix must be symmetric");
      }
      dist[i][j] = d.at(i, j);
    }
  }
  std::vector<std::vector<double>> node_dist = std::move(dist);
  node_dist.reserve(2 * n);

  while (active.size() > 1) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 1;
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t b = a + 1; b < active.size(); ++b) {
        const double v = node_dist[active[a]][active[b]];
        if (v < best) {
          best = v;
          bi = a;
          bj = b;
        }
      }
    }
    const std::size_t left = active[bi];
    const std::size_t right = active[bj];
    ClusterNode merged;
    merged.left = static_cast<int>(left);
    merged.right = static_cast<int>(right);
    merged.height = best;
    merged.size = nodes[left].size + nodes[right].size;
    const std::size_t id = nodes.size();
    nodes.push_back(merged);

    // Size-weighted average distances to the new cluster.
    std::vector<double> row(nodes.size(), 0.0);
    for (const std::size_t other : active) {
      if (other == left || other == right) {
        continue;
      }
      const double wl = static_cast<double>(nodes[left].size);
      const double wr = static_cast<double>(nodes[right].size);
      row[other] = (wl * node_dist[left][other] +
                    wr * node_dist[right][other]) /
                   (wl + wr);
    }
    for (auto& existing : node_dist) {
      existing.push_back(0.0);
    }
    node_dist.push_back(row);
    for (const std::size_t other : active) {
      node_dist[other][id] = row[other];
    }

    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bi));
    active.push_back(id);
  }
  return Dendrogram(std::move(nodes), n);
}

bits::CountMatrix hamming_distances(const bits::BitMatrix& profiles) {
  return cpu::compare_blocked(profiles, profiles,
                              bits::Comparison::kXor);
}

}  // namespace snp::stats
