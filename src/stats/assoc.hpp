// Case-control association testing from bit-plane counts (the GWAS use
// case motivating the paper's Section I: "population genetic studies of
// human diseases identification ... through genome-wide association
// studies").
//
// With per-locus presence (P) and homozygous (H) planes and a case-status
// bit mask C over the samples, the full 2x3 genotype-by-status table is
// popcount arithmetic:
//   cases with dosage 2   = |H & C|
//   cases with dosage >=1 = |P & C|
// and controls follow from the locus marginals — the same AND kernel the
// rest of the framework runs. On top of the table we provide the two
// standard single-SNP tests: the allelic 2x2 chi-square and the
// Cochran-Armitage trend test, both with 1-df p-values and the allelic
// odds ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitmatrix.hpp"
#include "bits/genotype.hpp"

namespace snp::stats {

/// Genotype-by-status counts for one locus.
struct AssocCounts {
  double cases[3] = {};     ///< case counts by minor-allele dosage
  double controls[3] = {};  ///< control counts by dosage

  [[nodiscard]] double n_cases() const {
    return cases[0] + cases[1] + cases[2];
  }
  [[nodiscard]] double n_controls() const {
    return controls[0] + controls[1] + controls[2];
  }
  [[nodiscard]] bool valid() const;
};

/// Builds the table from plane/mask popcounts: `pres_case` = |P & C|,
/// `hom_case` = |H & C|, `pres_all`/`hom_all` the locus marginals,
/// `n_case`/`n_all` the cohort split. Throws on inconsistent counts.
[[nodiscard]] AssocCounts assoc_counts(std::uint32_t pres_case,
                                       std::uint32_t hom_case,
                                       std::uint32_t pres_all,
                                       std::uint32_t hom_all,
                                       std::size_t n_case,
                                       std::size_t n_all);

struct AssocResult {
  double chi2_allelic = 0.0;
  double p_allelic = 1.0;
  double chi2_trend = 0.0;  ///< Cochran-Armitage, additive weights 0/1/2
  double p_trend = 1.0;
  double odds_ratio = 1.0;  ///< allelic OR (minor allele, case vs control)
  double maf_cases = 0.0;
  double maf_controls = 0.0;
};

[[nodiscard]] AssocResult association_test(const AssocCounts& counts);

/// Upper-tail probability of a 1-df chi-square (erfc form).
[[nodiscard]] double chi2_sf_1df(double chi2);

/// Whole-cohort scan: one AssocResult per locus, computed through the
/// bit-plane path (planes x case mask popcounts).
[[nodiscard]] std::vector<AssocResult> gwas_scan(
    const bits::GenotypeMatrix& genotypes,
    const std::vector<bool>& is_case);

}  // namespace snp::stats
