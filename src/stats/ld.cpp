#include "stats/ld.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::stats {

LdStats ld_from_counts(std::uint32_t joint, std::uint32_t count_a,
                       std::uint32_t count_b, std::size_t samples) {
  if (samples == 0) {
    throw std::invalid_argument("ld_from_counts: samples must be > 0");
  }
  if (joint > std::min(count_a, count_b) || count_a > samples ||
      count_b > samples) {
    throw std::invalid_argument("ld_from_counts: inconsistent counts");
  }
  LdStats s;
  const auto n = static_cast<double>(samples);
  s.p_a = count_a / n;
  s.p_b = count_b / n;
  s.p_ab = joint / n;
  s.d = s.p_ab - s.p_a * s.p_b;

  const double qa = 1.0 - s.p_a;
  const double qb = 1.0 - s.p_b;
  const double denom_var = s.p_a * qa * s.p_b * qb;
  s.r2 = denom_var > 0.0 ? s.d * s.d / denom_var : 0.0;

  double d_max;
  if (s.d >= 0.0) {
    d_max = std::min(s.p_a * qb, qa * s.p_b);
  } else {
    d_max = std::min(s.p_a * s.p_b, qa * qb);
  }
  s.d_prime = d_max > 0.0 ? std::abs(s.d) / d_max : 0.0;
  return s;
}

std::vector<double> r2_matrix(const bits::CountMatrix& gamma,
                              const std::vector<std::uint32_t>& locus_counts,
                              std::size_t samples) {
  if (gamma.rows() != gamma.cols() ||
      gamma.rows() != locus_counts.size()) {
    throw std::invalid_argument("r2_matrix: shape mismatch");
  }
  const std::size_t loci = gamma.rows();
  std::vector<double> out(loci * loci, 0.0);
  for (std::size_t i = 0; i < loci; ++i) {
    for (std::size_t j = 0; j < loci; ++j) {
      out[i * loci + j] = ld_from_counts(gamma.at(i, j), locus_counts[i],
                                         locus_counts[j], samples)
                              .r2;
    }
  }
  return out;
}

std::vector<std::uint32_t> row_counts(const bits::BitMatrix& m) {
  std::vector<std::uint32_t> out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    out[r] = static_cast<std::uint32_t>(m.row_popcount(r));
  }
  return out;
}

}  // namespace snp::stats
