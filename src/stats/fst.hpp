// Population differentiation: Hudson's Fst estimator.
//
// With subpopulation allele counts straight from the bit planes (per-locus
// popcounts over each population's sample columns), Hudson's estimator
// gives per-locus and genome-wide Fst — the standard measure of
// between-population differentiation, and the quantitative companion to
// the UPGMA structure analysis in stats/cluster.hpp. Ratio-of-averages
// aggregation per Bhatia et al. (2013).
#pragma once

#include <cstddef>
#include <vector>

#include "bits/genotype.hpp"

namespace snp::stats {

struct FstComponents {
  double numerator = 0.0;    ///< (p1-p2)^2 - within-pop sampling terms
  double denominator = 0.0;  ///< p1(1-p2) + p2(1-p1)

  [[nodiscard]] double fst() const {
    return denominator > 0.0 ? numerator / denominator : 0.0;
  }
};

/// Hudson's per-locus components from allele *frequencies* p1, p2 and the
/// number of sampled alleles n1, n2 (= 2 x diploid sample counts).
[[nodiscard]] FstComponents hudson_fst(double p1, double p2, double n1,
                                       double n2);

struct FstScan {
  std::vector<FstComponents> per_locus;
  /// Ratio-of-averages genome-wide estimate (robust aggregation).
  double genome_wide = 0.0;
};

/// Scans a cohort split into two subpopulations by `in_pop1` (one flag per
/// sample column).
[[nodiscard]] FstScan fst_scan(const bits::GenotypeMatrix& genotypes,
                               const std::vector<bool>& in_pop1);

}  // namespace snp::stats
