// Forensic scoring on top of the comparison kernels (paper Sections II-B,
// II-C; Ricke's FastID method).
//
// Identity search: gamma[q, r] = |query_q XOR ref_r| counts mismatching
// SNP sites; gamma == 0 is an exact match and small gamma ranks near
// matches (degraded samples, kinship).
//
// Mixture analysis: gamma[r, m] = |r & ~mixture_m| counts minor alleles
// present in the reference but absent from the mixture ("foreign"
// alleles); gamma == 0 means the profile is consistent with being a
// contributor, and the count is inversely related to inclusion likelihood.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitmatrix.hpp"

namespace snp::stats {

struct MatchCandidate {
  std::size_t reference_index = 0;
  std::uint32_t mismatches = 0;
  double mismatch_rate = 0.0;  ///< mismatches / snp_sites
};

/// Ranks database entries for one query from its row of the XOR gamma
/// matrix: ascending mismatches, ties by index; entries above
/// `max_mismatch_rate` are dropped.
[[nodiscard]] std::vector<MatchCandidate> rank_matches(
    std::span<const std::uint32_t> gamma_row, std::size_t snp_sites,
    double max_mismatch_rate = 1.0, std::size_t top_k = 10);

struct InclusionCall {
  std::size_t profile_index = 0;
  std::uint32_t foreign_alleles = 0;  ///< |r & ~m|
  bool included = false;
  /// Expected foreign alleles if the profile were a random non-contributor
  /// (profile's minor-allele count x probability a site is absent from the
  /// mixture); used to normalize the call.
  double expected_if_random = 0.0;
};

/// Calls contributors for one mixture from its column of the AND-NOT gamma
/// matrix. `profile_counts` are per-profile minor-allele counts and
/// `mixture_count` the mixture's; `tolerance` allows a few foreign alleles
/// (genotyping error).
[[nodiscard]] std::vector<InclusionCall> call_contributors(
    std::span<const std::uint32_t> gamma_col,
    std::span<const std::uint32_t> profile_counts,
    std::uint32_t mixture_count, std::size_t snp_sites,
    std::uint32_t tolerance = 0);

}  // namespace snp::stats
