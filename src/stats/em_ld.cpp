#include "stats/em_ld.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snp::stats {

double GenotypePairTable::total() const {
  double t = 0.0;
  for (const auto& row : n) {
    for (const double v : row) {
      t += v;
    }
  }
  return t;
}

double GenotypePairTable::p_a() const {
  const double t = total();
  if (t <= 0.0) {
    return 0.0;
  }
  double alleles = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      alleles += a * n[a][b];
    }
  }
  return alleles / (2.0 * t);
}

double GenotypePairTable::p_b() const {
  const double t = total();
  if (t <= 0.0) {
    return 0.0;
  }
  double alleles = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      alleles += b * n[a][b];
    }
  }
  return alleles / (2.0 * t);
}

bool GenotypePairTable::valid() const {
  for (const auto& row : n) {
    for (const double v : row) {
      if (v < 0.0 || !std::isfinite(v)) {
        return false;
      }
    }
  }
  return true;
}

GenotypePairTable table_from_plane_counts(
    std::uint32_t pp, std::uint32_t hh, std::uint32_t ph, std::uint32_t hp,
    std::uint32_t pres_a, std::uint32_t hom_a, std::uint32_t pres_b,
    std::uint32_t hom_b, std::size_t samples) {
  GenotypePairTable t;
  // Joint cells straight from the plane gammas.
  const double n22 = hh;
  const double n12 = static_cast<double>(ph) - n22;
  const double n21 = static_cast<double>(hp) - n22;
  const double n11 = static_cast<double>(pp) - n12 - n21 - n22;
  // Marginals close the remaining cells.
  const double a1 = static_cast<double>(pres_a) - hom_a;  // dosage 1 at A
  const double a2 = hom_a;
  const double b1 = static_cast<double>(pres_b) - hom_b;
  const double b2 = hom_b;
  const double n10 = a1 - n11 - n12;
  const double n20 = a2 - n21 - n22;
  const double n01 = b1 - n11 - n21;
  const double n02 = b2 - n12 - n22;
  const double n00 = static_cast<double>(samples) - (n10 + n20 + n01 +
                                                     n02 + n11 + n12 +
                                                     n21 + n22);
  t.n[0][0] = n00;
  t.n[0][1] = n01;
  t.n[0][2] = n02;
  t.n[1][0] = n10;
  t.n[1][1] = n11;
  t.n[1][2] = n12;
  t.n[2][0] = n20;
  t.n[2][1] = n21;
  t.n[2][2] = n22;
  if (!t.valid()) {
    throw std::invalid_argument(
        "table_from_plane_counts: inconsistent plane counts (negative "
        "cell)");
  }
  return t;
}

EmLdResult em_ld(const GenotypePairTable& table, int max_iterations,
                 double tol) {
  EmLdResult r;
  const double n = table.total();
  if (n <= 0.0) {
    return r;
  }
  r.p_a = table.p_a();
  r.p_b = table.p_b();

  // Unambiguous haplotype contributions (each individual = 2 gametes).
  // Cell (a, b): dosage-2 rows/cols fix both gametes; dosage 1 with a
  // homozygous partner fixes phase; only (1,1) is ambiguous.
  const auto& c = table.n;
  const double known_ab = 2 * c[2][2] + c[2][1] + c[1][2];  // "AB" gamete
  const double known_aB = 2 * c[2][0] + c[2][1] + c[1][0];  // A with b=0
  const double known_bA = 2 * c[0][2] + c[1][2] + c[0][1];  // B with a=0
  const double known_oo = 2 * c[0][0] + c[1][0] + c[0][1];  // neither
  const double dh = c[1][1];  // double heterozygotes
  const double gametes = 2.0 * n;

  // Initialize at linkage equilibrium.
  double p11 = r.p_a * r.p_b;
  for (r.iterations = 0; r.iterations < max_iterations; ++r.iterations) {
    const double p10 = std::max(r.p_a - p11, 0.0);
    const double p01 = std::max(r.p_b - p11, 0.0);
    const double p00 = std::max(1.0 - r.p_a - r.p_b + p11, 0.0);
    // E-step: split double-hets between AB/ab and Ab/aB phases.
    const double cis = p11 * p00;
    const double trans = p10 * p01;
    const double frac = cis + trans > 0.0 ? cis / (cis + trans) : 0.5;
    // M-step.
    const double next = (known_ab + dh * frac) / gametes;
    const bool done = std::abs(next - p11) < tol;
    p11 = next;
    if (done) {
      r.converged = true;
      ++r.iterations;
      break;
    }
  }
  (void)known_aB;
  (void)known_bA;
  (void)known_oo;

  r.p_ab = p11;
  r.d = p11 - r.p_a * r.p_b;
  const double qa = 1.0 - r.p_a;
  const double qb = 1.0 - r.p_b;
  const double var = r.p_a * qa * r.p_b * qb;
  r.r2 = var > 0.0 ? r.d * r.d / var : 0.0;
  double d_max;
  if (r.d >= 0.0) {
    d_max = std::min(r.p_a * qb, qa * r.p_b);
  } else {
    d_max = std::min(r.p_a * r.p_b, qa * qb);
  }
  r.d_prime = d_max > 0.0 ? std::abs(r.d) / d_max : 0.0;
  return r;
}

}  // namespace snp::stats
