#include "stats/ld_prune.hpp"

#include <stdexcept>

#include "bits/compare.hpp"
#include "stats/em_ld.hpp"

namespace snp::stats {

namespace {

std::uint32_t joint_count(const bits::BitMatrix& a, std::size_t i,
                          const bits::BitMatrix& b, std::size_t j) {
  const auto ra = a.row64(i);
  const auto rb = b.row64(j);
  std::uint32_t n = 0;
  for (std::size_t w = 0; w < ra.size(); ++w) {
    n += static_cast<std::uint32_t>(bits::popcount(ra[w] & rb[w]));
  }
  return n;
}

}  // namespace

double pairwise_genotype_r2(const bits::GenotypeMatrix& g,
                            std::size_t locus_a, std::size_t locus_b) {
  if (locus_a >= g.loci() || locus_b >= g.loci()) {
    throw std::out_of_range("pairwise_genotype_r2: locus out of range");
  }
  const auto pres = bits::encode(g, bits::EncodingPlane::kPresence);
  const auto hom = bits::encode(g, bits::EncodingPlane::kHomozygous);
  const auto table = table_from_plane_counts(
      joint_count(pres, locus_a, pres, locus_b),
      joint_count(hom, locus_a, hom, locus_b),
      joint_count(pres, locus_a, hom, locus_b),
      joint_count(hom, locus_a, pres, locus_b),
      static_cast<std::uint32_t>(pres.row_popcount(locus_a)),
      static_cast<std::uint32_t>(hom.row_popcount(locus_a)),
      static_cast<std::uint32_t>(pres.row_popcount(locus_b)),
      static_cast<std::uint32_t>(hom.row_popcount(locus_b)),
      g.samples());
  return em_ld(table).r2;
}

std::vector<std::size_t> ld_prune(const bits::GenotypeMatrix& g,
                                  const LdPruneParams& params) {
  if (params.window == 0 || params.r2_threshold < 0.0) {
    throw std::invalid_argument("ld_prune: bad parameters");
  }
  // Encode the planes once; pairwise tables come from row AND popcounts.
  const auto pres = bits::encode(g, bits::EncodingPlane::kPresence);
  const auto hom = bits::encode(g, bits::EncodingPlane::kHomozygous);
  std::vector<std::uint32_t> pres_n(g.loci()), hom_n(g.loci());
  for (std::size_t l = 0; l < g.loci(); ++l) {
    pres_n[l] = static_cast<std::uint32_t>(pres.row_popcount(l));
    hom_n[l] = static_cast<std::uint32_t>(hom.row_popcount(l));
  }

  std::vector<std::size_t> kept;
  for (std::size_t l = 0; l < g.loci(); ++l) {
    bool drop = false;
    // Only kept loci within the window can veto this one.
    for (auto it = kept.rbegin();
         it != kept.rend() && l - *it <= params.window; ++it) {
      const std::size_t k = *it;
      const auto table = table_from_plane_counts(
          joint_count(pres, l, pres, k), joint_count(hom, l, hom, k),
          joint_count(pres, l, hom, k), joint_count(hom, l, pres, k),
          pres_n[l], hom_n[l], pres_n[k], hom_n[k], g.samples());
      if (em_ld(table).r2 > params.r2_threshold) {
        drop = true;
        break;
      }
    }
    if (!drop) {
      kept.push_back(l);
    }
  }
  return kept;
}

}  // namespace snp::stats
