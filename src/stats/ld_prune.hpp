// Greedy windowed LD pruning (the PLINK --indep-pairwise workflow).
//
// Kinship and structure methods assume (nearly) independent markers; LD
// blocks violate that and inflate estimator noise (see the gwas_study
// example). Pruning scans loci in genomic order and drops any locus whose
// genotype r^2 with an already-kept locus inside the window exceeds the
// threshold. r^2 comes from the EM haplotype fit over the two-plane
// counts — the same machinery Context::genotype_ld uses, evaluated only
// for nearby pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "bits/genotype.hpp"

namespace snp::stats {

struct LdPruneParams {
  std::size_t window = 50;     ///< loci on each side to test against
  double r2_threshold = 0.2;   ///< drop when r^2 exceeds this
};

/// Returns the indices of the kept loci, in order.
[[nodiscard]] std::vector<std::size_t> ld_prune(
    const bits::GenotypeMatrix& genotypes, const LdPruneParams& params = {});

/// EM genotype r^2 between two loci of a cohort (the pairwise primitive
/// ld_prune uses; exposed for tests and ad-hoc queries).
[[nodiscard]] double pairwise_genotype_r2(const bits::GenotypeMatrix& g,
                                          std::size_t locus_a,
                                          std::size_t locus_b);

}  // namespace snp::stats
