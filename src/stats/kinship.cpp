#include "stats/kinship.hpp"

#include <stdexcept>

#include "bits/compare.hpp"
#include "cpu/engine.hpp"

namespace snp::stats {

Relationship classify_kinship(double phi) {
  if (phi >= 0.3536) {
    return Relationship::kDuplicate;
  }
  if (phi >= 0.1768) {
    return Relationship::kFirstDegree;
  }
  if (phi >= 0.0884) {
    return Relationship::kSecondDegree;
  }
  if (phi >= 0.0442) {
    return Relationship::kThirdDegree;
  }
  return Relationship::kUnrelated;
}

KinshipResult king_robust(std::uint32_t het_het, std::uint32_t h_p_ij,
                          std::uint32_t h_p_ji, std::uint32_t hom_i,
                          std::uint32_t hom_j, std::uint32_t het_i,
                          std::uint32_t het_j) {
  if (h_p_ij > hom_i || h_p_ji > hom_j) {
    throw std::invalid_argument(
        "king_robust: |H & P| cannot exceed the H marginal");
  }
  KinshipResult r;
  r.n_het_het = het_het;
  // IBS0: i homozygous-minor where j carries no minor allele, plus the
  // symmetric case.
  r.n_ibs0 = (hom_i - h_p_ij) + (hom_j - h_p_ji);
  r.n_het_i = het_i;
  r.n_het_j = het_j;
  const double denom = static_cast<double>(het_i) + het_j;
  r.phi = denom > 0.0
              ? (static_cast<double>(het_het) - 2.0 * r.n_ibs0) / denom
              : 0.0;
  r.relationship = classify_kinship(r.phi);
  return r;
}

bits::BitMatrix encode_individual_major(const bits::GenotypeMatrix& g,
                                        bits::EncodingPlane plane) {
  bits::BitMatrix out(g.samples(), g.loci());
  const std::uint8_t threshold =
      plane == bits::EncodingPlane::kPresence ? 1 : 2;
  for (std::size_t s = 0; s < g.samples(); ++s) {
    for (std::size_t l = 0; l < g.loci(); ++l) {
      if (g.at(l, s) >= threshold) {
        out.set(s, l, true);
      }
    }
  }
  return out;
}

bits::BitMatrix het_plane(const bits::BitMatrix& presence,
                          const bits::BitMatrix& homozygous) {
  if (presence.rows() != homozygous.rows() ||
      presence.bit_cols() != homozygous.bit_cols()) {
    throw std::invalid_argument("het_plane: plane shape mismatch");
  }
  bits::BitMatrix out(presence.rows(), presence.bit_cols(),
                      presence.words64_per_row());
  for (std::size_t r = 0; r < presence.rows(); ++r) {
    const auto p = presence.row64(r);
    const auto h = homozygous.row64(r);
    auto dst = out.row64(r);
    for (std::size_t w = 0; w < dst.size(); ++w) {
      dst[w] = p[w] & ~h[w];  // heterozygous: present but not homozygous
    }
  }
  return out;
}

std::vector<KinshipResult> kinship_matrix(const bits::GenotypeMatrix& g) {
  const auto pres =
      encode_individual_major(g, bits::EncodingPlane::kPresence);
  const auto hom =
      encode_individual_major(g, bits::EncodingPlane::kHomozygous);
  const auto het = het_plane(pres, hom);

  // Two comparison kernels cover every pair: Het x Het, and H x P (whose
  // transpose provides the symmetric term).
  const auto het_het =
      cpu::compare_blocked(het, het, bits::Comparison::kAnd);
  const auto hom_pres =
      cpu::compare_blocked(hom, pres, bits::Comparison::kAnd);

  const std::size_t n = g.samples();
  std::vector<std::uint32_t> hom_count(n), het_count(n);
  for (std::size_t i = 0; i < n; ++i) {
    hom_count[i] = static_cast<std::uint32_t>(hom.row_popcount(i));
    het_count[i] = static_cast<std::uint32_t>(het.row_popcount(i));
  }

  std::vector<KinshipResult> out(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out[i * n + j] = king_robust(
          het_het.at(i, j), hom_pres.at(i, j), hom_pres.at(j, i),
          hom_count[i], hom_count[j], het_count[i], het_count[j]);
    }
  }
  return out;
}

}  // namespace snp::stats
