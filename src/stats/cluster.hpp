// Population structure from comparison kernels: UPGMA hierarchical
// clustering over the Hamming (XOR-gamma) distance matrix.
//
// The XOR comparison the FastID kernel computes *is* the pairwise Hamming
// distance between profiles; average-linkage clustering on it recovers
// population substructure — the classic identity-by-state workflow, again
// riding entirely on the framework's bit kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "bits/bitmatrix.hpp"

namespace snp::stats {

/// One merge tree node. Leaves are [0, leaves); internal nodes follow in
/// merge order, each joining two earlier nodes at `height` (the average
/// inter-cluster distance at the merge).
struct ClusterNode {
  int left = -1;
  int right = -1;
  double height = 0.0;
  std::size_t size = 1;

  [[nodiscard]] bool is_leaf() const { return left < 0; }
};

class Dendrogram {
 public:
  Dendrogram(std::vector<ClusterNode> nodes, std::size_t leaves)
      : nodes_(std::move(nodes)), leaves_(leaves) {}

  [[nodiscard]] std::size_t leaves() const { return leaves_; }
  [[nodiscard]] const std::vector<ClusterNode>& nodes() const {
    return nodes_;
  }

  /// Cluster assignment (labels 0..k-1) from cutting the tree into `k`
  /// clusters (undoing the last k-1 merges). k in [1, leaves].
  [[nodiscard]] std::vector<std::size_t> cut_k(std::size_t k) const;

  /// Heights are non-decreasing along the merge order (the UPGMA
  /// ultrametric property); exposed for tests.
  [[nodiscard]] bool heights_monotone() const;

 private:
  std::vector<ClusterNode> nodes_;
  std::size_t leaves_ = 0;
};

/// Average-linkage (UPGMA) clustering of a symmetric distance matrix.
/// O(n^3) — intended for cohort-scale (hundreds) structure analysis.
[[nodiscard]] Dendrogram upgma(const bits::CountMatrix& distances);

/// Pairwise Hamming distances of profile rows: the XOR gamma matrix.
[[nodiscard]] bits::CountMatrix hamming_distances(
    const bits::BitMatrix& profiles);

}  // namespace snp::stats
