#include "stats/fst.hpp"

#include <stdexcept>

namespace snp::stats {

FstComponents hudson_fst(double p1, double p2, double n1, double n2) {
  if (p1 < 0.0 || p1 > 1.0 || p2 < 0.0 || p2 > 1.0) {
    throw std::invalid_argument("hudson_fst: frequencies must be in [0,1]");
  }
  if (n1 < 2.0 || n2 < 2.0) {
    throw std::invalid_argument(
        "hudson_fst: need at least two sampled alleles per population");
  }
  FstComponents c;
  const double diff = p1 - p2;
  c.numerator = diff * diff - p1 * (1.0 - p1) / (n1 - 1.0) -
                p2 * (1.0 - p2) / (n2 - 1.0);
  c.denominator = p1 * (1.0 - p2) + p2 * (1.0 - p1);
  return c;
}

FstScan fst_scan(const bits::GenotypeMatrix& genotypes,
                 const std::vector<bool>& in_pop1) {
  if (in_pop1.size() != genotypes.samples()) {
    throw std::invalid_argument(
        "fst_scan: population vector must match the sample count");
  }
  std::size_t s1 = 0;
  for (const bool b : in_pop1) {
    s1 += b ? 1u : 0u;
  }
  const std::size_t s2 = genotypes.samples() - s1;
  if (s1 < 1 || s2 < 1) {
    throw std::invalid_argument(
        "fst_scan: both populations need at least one sample");
  }

  FstScan scan;
  scan.per_locus.reserve(genotypes.loci());
  double sum_num = 0.0, sum_den = 0.0;
  for (std::size_t l = 0; l < genotypes.loci(); ++l) {
    double a1 = 0.0, a2 = 0.0;  // minor-allele counts per population
    for (std::size_t s = 0; s < genotypes.samples(); ++s) {
      (in_pop1[s] ? a1 : a2) += genotypes.at(l, s);
    }
    const double n1 = 2.0 * static_cast<double>(s1);
    const double n2 = 2.0 * static_cast<double>(s2);
    const auto c = hudson_fst(a1 / n1, a2 / n2, n1, n2);
    sum_num += c.numerator;
    sum_den += c.denominator;
    scan.per_locus.push_back(c);
  }
  scan.genome_wide = sum_den > 0.0 ? sum_num / sum_den : 0.0;
  return scan;
}

}  // namespace snp::stats
