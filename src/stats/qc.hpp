// Per-locus quality control — the gatekeeping every real cohort passes
// through before LD scans or association testing: minor-allele frequency,
// missing-call rate, and the Hardy-Weinberg equilibrium goodness-of-fit
// test (excess heterozygosity is the classic genotyping-artifact
// signature).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/genotype.hpp"
#include "io/plink_lite.hpp"

namespace snp::stats {

struct QcThresholds {
  double min_maf = 0.01;
  double max_missing_rate = 0.1;
  double min_hwe_p = 1e-6;
};

/// Reasons a locus failed, OR-able.
enum QcFlag : std::uint8_t {
  kQcPass = 0,
  kQcLowMaf = 1,
  kQcHighMissing = 2,
  kQcHweViolation = 4,
};

struct LocusQc {
  double maf = 0.0;
  double missing_rate = 0.0;
  double het_observed = 0.0;  ///< observed heterozygosity
  double het_expected = 0.0;  ///< 2pq under HWE
  double hwe_chi2 = 0.0;
  double hwe_p = 1.0;
  std::uint8_t flags = kQcPass;

  [[nodiscard]] bool pass() const { return flags == kQcPass; }
};

/// QC for one locus from its genotype counts (by dosage) and the number
/// of missing calls.
[[nodiscard]] LocusQc locus_qc(double n0, double n1, double n2,
                               std::size_t missing,
                               const QcThresholds& thresholds = {});

/// Whole-cohort report. `missing_per_locus` may be empty (no missingness
/// information, e.g. generated data) or one entry per locus (as the
/// plink-lite / vcf-lite loaders provide).
[[nodiscard]] std::vector<LocusQc> qc_report(
    const bits::GenotypeMatrix& genotypes,
    const std::vector<std::size_t>& missing_per_locus = {},
    const QcThresholds& thresholds = {});

/// Returns a dataset containing only the passing loci (metadata and
/// genotypes filtered together).
[[nodiscard]] io::PlinkLiteDataset filter_loci(
    const io::PlinkLiteDataset& ds, const std::vector<LocusQc>& qc);

}  // namespace snp::stats
