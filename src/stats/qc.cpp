#include "stats/qc.hpp"

#include <stdexcept>

#include "stats/assoc.hpp"  // chi2_sf_1df

namespace snp::stats {

LocusQc locus_qc(double n0, double n1, double n2, std::size_t missing,
                 const QcThresholds& thresholds) {
  if (n0 < 0 || n1 < 0 || n2 < 0) {
    throw std::invalid_argument("locus_qc: negative genotype count");
  }
  LocusQc qc;
  const double n = n0 + n1 + n2;
  const double total_calls = n + static_cast<double>(missing);
  qc.missing_rate =
      total_calls > 0 ? static_cast<double>(missing) / total_calls : 0.0;
  if (n <= 0) {
    qc.flags |= kQcLowMaf;
    return qc;
  }
  const double p = (n1 + 2.0 * n2) / (2.0 * n);
  qc.maf = std::min(p, 1.0 - p);
  qc.het_observed = n1 / n;
  qc.het_expected = 2.0 * p * (1.0 - p);

  // HWE goodness of fit (1 df): observed genotype counts vs the
  // frequencies implied by p.
  const double q = 1.0 - p;
  const double e0 = n * q * q;
  const double e1 = n * 2.0 * p * q;
  const double e2 = n * p * p;
  if (e0 > 0 && e1 > 0 && e2 > 0) {
    qc.hwe_chi2 = (n0 - e0) * (n0 - e0) / e0 +
                  (n1 - e1) * (n1 - e1) / e1 +
                  (n2 - e2) * (n2 - e2) / e2;
    qc.hwe_p = chi2_sf_1df(qc.hwe_chi2);
  }

  if (qc.maf < thresholds.min_maf) {
    qc.flags |= kQcLowMaf;
  }
  if (qc.missing_rate > thresholds.max_missing_rate) {
    qc.flags |= kQcHighMissing;
  }
  if (qc.hwe_p < thresholds.min_hwe_p) {
    qc.flags |= kQcHweViolation;
  }
  return qc;
}

std::vector<LocusQc> qc_report(
    const bits::GenotypeMatrix& genotypes,
    const std::vector<std::size_t>& missing_per_locus,
    const QcThresholds& thresholds) {
  if (!missing_per_locus.empty() &&
      missing_per_locus.size() != genotypes.loci()) {
    throw std::invalid_argument(
        "qc_report: missing_per_locus must be empty or one entry per "
        "locus");
  }
  std::vector<LocusQc> out(genotypes.loci());
  for (std::size_t l = 0; l < genotypes.loci(); ++l) {
    double counts[3] = {};
    for (std::size_t s = 0; s < genotypes.samples(); ++s) {
      counts[genotypes.at(l, s)] += 1.0;
    }
    const std::size_t missing =
        missing_per_locus.empty() ? 0 : missing_per_locus[l];
    // Missing calls were decoded as dosage 0 by the loaders; remove them
    // from the reference-homozygote cell so frequencies aren't biased.
    counts[0] -= static_cast<double>(missing);
    if (counts[0] < 0) {
      throw std::invalid_argument(
          "qc_report: more missing calls than dosage-0 entries");
    }
    out[l] = locus_qc(counts[0], counts[1], counts[2], missing,
                      thresholds);
  }
  return out;
}

io::PlinkLiteDataset filter_loci(const io::PlinkLiteDataset& ds,
                                 const std::vector<LocusQc>& qc) {
  if (!ds.consistent() || qc.size() != ds.loci.size()) {
    throw std::invalid_argument("filter_loci: shape mismatch");
  }
  io::PlinkLiteDataset out;
  out.samples = ds.samples;
  out.missing_calls = ds.missing_calls;
  std::vector<std::size_t> keep;
  for (std::size_t l = 0; l < qc.size(); ++l) {
    if (qc[l].pass()) {
      keep.push_back(l);
    }
  }
  out.genotypes = bits::GenotypeMatrix(keep.size(), ds.samples.size());
  out.loci.reserve(keep.size());
  out.missing_per_locus.reserve(keep.size());
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const std::size_t l = keep[k];
    out.loci.push_back(ds.loci[l]);
    if (!ds.missing_per_locus.empty()) {
      out.missing_per_locus.push_back(ds.missing_per_locus[l]);
    }
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      out.genotypes.at(k, s) = ds.genotypes.at(l, s);
    }
  }
  return out;
}

}  // namespace snp::stats
