#include "stats/forensic.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::stats {

std::vector<MatchCandidate> rank_matches(
    std::span<const std::uint32_t> gamma_row, std::size_t snp_sites,
    double max_mismatch_rate, std::size_t top_k) {
  if (snp_sites == 0) {
    throw std::invalid_argument("rank_matches: snp_sites must be > 0");
  }
  std::vector<MatchCandidate> all;
  all.reserve(gamma_row.size());
  for (std::size_t i = 0; i < gamma_row.size(); ++i) {
    MatchCandidate c;
    c.reference_index = i;
    c.mismatches = gamma_row[i];
    c.mismatch_rate =
        static_cast<double>(c.mismatches) / static_cast<double>(snp_sites);
    if (c.mismatch_rate <= max_mismatch_rate) {
      all.push_back(c);
    }
  }
  const std::size_t keep = std::min(top_k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end(), [](const auto& x, const auto& y) {
                      return x.mismatches != y.mismatches
                                 ? x.mismatches < y.mismatches
                                 : x.reference_index < y.reference_index;
                    });
  all.resize(keep);
  return all;
}

std::vector<InclusionCall> call_contributors(
    std::span<const std::uint32_t> gamma_col,
    std::span<const std::uint32_t> profile_counts,
    std::uint32_t mixture_count, std::size_t snp_sites,
    std::uint32_t tolerance) {
  if (gamma_col.size() != profile_counts.size()) {
    throw std::invalid_argument("call_contributors: size mismatch");
  }
  if (snp_sites == 0) {
    throw std::invalid_argument("call_contributors: snp_sites must be > 0");
  }
  const double absent_frac =
      1.0 - static_cast<double>(mixture_count) /
                static_cast<double>(snp_sites);
  std::vector<InclusionCall> calls(gamma_col.size());
  for (std::size_t i = 0; i < gamma_col.size(); ++i) {
    InclusionCall& c = calls[i];
    c.profile_index = i;
    c.foreign_alleles = gamma_col[i];
    c.included = c.foreign_alleles <= tolerance;
    c.expected_if_random = profile_counts[i] * absent_frac;
  }
  return calls;
}

}  // namespace snp::stats
