// Sparse SNP representation (paper Section VII, future work).
//
// "This approach represents SNP strings as dense bitvectors, but a typical
// DNA sample is expected to contain mostly major alleles. This suggests
// that sparse representations of the SNP strings may be beneficial.
// Extending the framework to sparse matrix-matrix multiplication
// operations is a goal for future work."
//
// This module is that extension: a CSR-style matrix storing, per row, the
// sorted column indices of set bits (minor alleles). The key observation
// making the three comparisons cheap in this form is that each reduces to
// the *intersection size* plus marginals:
//   |a & b|  = |a ∩ b|
//   |a ^ b|  = |a| + |b| - 2 |a ∩ b|
//   |a & ~b| = |a| - |a ∩ b|
// so one sorted-merge/galloping intersection kernel serves all of Eqs. 1-3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitmatrix.hpp"

namespace snp::sparse {

class SparseBitMatrix {
 public:
  SparseBitMatrix() = default;

  /// Builds from explicit per-row index lists. Indices must be < bit_cols;
  /// they are sorted and deduplicated here.
  static SparseBitMatrix from_rows(std::vector<std::vector<std::uint32_t>>
                                       rows,
                                   std::size_t bit_cols);

  /// Converts a packed dense matrix (cheap scan over set bits).
  static SparseBitMatrix from_dense(const bits::BitMatrix& dense);

  /// Materializes back to the packed dense representation.
  [[nodiscard]] bits::BitMatrix to_dense() const;

  [[nodiscard]] std::size_t rows() const { return row_ptr_.empty()
                                               ? 0
                                               : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t bit_cols() const { return bit_cols_; }
  [[nodiscard]] std::size_t nnz() const { return indices_.size(); }
  [[nodiscard]] std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  /// Sorted set-bit column indices of one row.
  [[nodiscard]] std::span<const std::uint32_t> row(std::size_t r) const {
    return {indices_.data() + row_ptr_[r], row_nnz(r)};
  }
  /// Fraction of set bits over the logical area.
  [[nodiscard]] double density() const;

  /// Storage footprint (indices + row pointers), for the dense-vs-sparse
  /// transfer accounting.
  [[nodiscard]] std::size_t size_bytes() const {
    return indices_.size() * sizeof(std::uint32_t) +
           row_ptr_.size() * sizeof(std::size_t);
  }

  /// Structural invariant: every row strictly sorted, all indices within
  /// bit_cols. Cheap enough for tests and debug assertions.
  [[nodiscard]] bool invariants_hold() const;

  [[nodiscard]] bool operator==(const SparseBitMatrix&) const = default;

 private:
  std::size_t bit_cols_ = 0;
  std::vector<std::uint32_t> indices_;
  std::vector<std::size_t> row_ptr_ = {0};
};

/// Size in set bits of the intersection of two strictly-sorted index
/// spans. Uses linear merge for similar sizes and galloping (binary-probe)
/// when one side is much smaller — the standard inverted-index technique.
[[nodiscard]] std::uint32_t intersect_count(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b);

}  // namespace snp::sparse
