#include "sparse/sparse_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::sparse {

SparseBitMatrix SparseBitMatrix::from_rows(
    std::vector<std::vector<std::uint32_t>> rows, std::size_t bit_cols) {
  SparseBitMatrix m;
  m.bit_cols_ = bit_cols;
  m.row_ptr_.reserve(rows.size() + 1);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    if (!row.empty() && row.back() >= bit_cols) {
      throw std::out_of_range(
          "SparseBitMatrix::from_rows: index beyond bit_cols");
    }
    m.indices_.insert(m.indices_.end(), row.begin(), row.end());
    m.row_ptr_.push_back(m.indices_.size());
  }
  return m;
}

SparseBitMatrix SparseBitMatrix::from_dense(const bits::BitMatrix& dense) {
  SparseBitMatrix m;
  m.bit_cols_ = dense.bit_cols();
  m.row_ptr_.reserve(dense.rows() + 1);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    const auto row = dense.row64(r);
    for (std::size_t w = 0; w < row.size(); ++w) {
      bits::Word64 word = row[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(
            std::countr_zero(word));
        m.indices_.push_back(
            static_cast<std::uint32_t>(w * bits::kBitsPerWord64) + bit);
        word &= word - 1;  // clear lowest set bit
      }
    }
    m.row_ptr_.push_back(m.indices_.size());
  }
  return m;
}

bits::BitMatrix SparseBitMatrix::to_dense() const {
  bits::BitMatrix out(rows(), bit_cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (const std::uint32_t idx : row(r)) {
      out.set(r, idx, true);
    }
  }
  return out;
}

double SparseBitMatrix::density() const {
  const double area =
      static_cast<double>(rows()) * static_cast<double>(bit_cols_);
  return area > 0.0 ? static_cast<double>(nnz()) / area : 0.0;
}

bool SparseBitMatrix::invariants_hold() const {
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto idx = row(r);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (idx[i] >= bit_cols_) {
        return false;
      }
      if (i > 0 && idx[i] <= idx[i - 1]) {
        return false;
      }
    }
  }
  return row_ptr_.front() == 0 && row_ptr_.back() == indices_.size();
}

namespace {

/// Galloping intersection: probe each element of the small side into the
/// large side with exponential + binary search.
std::uint32_t gallop_intersect(std::span<const std::uint32_t> small,
                               std::span<const std::uint32_t> large) {
  std::uint32_t count = 0;
  std::size_t pos = 0;  // frontier into `large`
  const std::size_t limit = large.size();
  for (const std::uint32_t x : small) {
    // Exponential probe for the first element >= x, then binary search in
    // the bracketed window.
    std::size_t bound = 1;
    while (pos + bound < limit && large[pos + bound] < x) {
      bound *= 2;
    }
    const std::size_t hi = std::min(pos + bound + 1, limit);
    const auto it = std::lower_bound(
        large.begin() + static_cast<std::ptrdiff_t>(pos),
        large.begin() + static_cast<std::ptrdiff_t>(hi), x);
    pos = static_cast<std::size_t>(it - large.begin());
    if (pos < limit && large[pos] == x) {
      ++count;
      ++pos;
    }
    if (pos >= limit) {
      break;
    }
  }
  return count;
}

}  // namespace

std::uint32_t intersect_count(std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b) {
  if (a.empty() || b.empty()) {
    return 0;
  }
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  // Galloping wins when one side is much smaller; 32x is a conventional
  // threshold for index intersection.
  if (b.size() / a.size() >= 32) {
    return gallop_intersect(a, b);
  }
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    count += x == y ? 1u : 0u;
    i += x <= y ? 1 : 0;
    j += y <= x ? 1 : 0;
  }
  return count;
}

}  // namespace snp::sparse
