#include "sparse/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/peak.hpp"
#include "sim/memory.hpp"

namespace snp::sparse {

using bits::Comparison;

namespace {

std::uint32_t from_intersection(Comparison op, std::uint32_t nnz_a,
                                std::uint32_t nnz_b,
                                std::uint32_t intersection) {
  switch (op) {
    case Comparison::kAnd:
      return intersection;
    case Comparison::kXor:
      return nnz_a + nnz_b - 2 * intersection;
    case Comparison::kAndNot:
      return nnz_a - intersection;
  }
  return 0;
}

void check_k(std::size_t a_bits, std::size_t b_bits) {
  if (a_bits != b_bits) {
    throw std::invalid_argument(
        "sparse compare: operands must share the K (bit) dimension");
  }
}

}  // namespace

bits::CountMatrix sparse_compare(const SparseBitMatrix& a,
                                 const SparseBitMatrix& b, Comparison op) {
  check_k(a.bit_cols(), b.bit_cols());
  bits::CountMatrix c(a.rows(), b.rows());
  std::uint32_t* cdata = c.raw().data();
  const std::size_t n = b.rows();
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(a, b, cdata) firstprivate(n, op)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row_a = a.row(i);
    const auto nnz_a = static_cast<std::uint32_t>(row_a.size());
    for (std::size_t j = 0; j < n; ++j) {
      const auto row_b = b.row(j);
      const std::uint32_t inter = intersect_count(row_a, row_b);
      cdata[i * n + j] = from_intersection(
          op, nnz_a, static_cast<std::uint32_t>(row_b.size()), inter);
    }
  }
  return c;
}

bits::CountMatrix sparse_dense_compare(const SparseBitMatrix& a,
                                       const bits::BitMatrix& b,
                                       Comparison op) {
  check_k(a.bit_cols(), b.bit_cols());
  bits::CountMatrix c(a.rows(), b.rows());
  std::uint32_t* cdata = c.raw().data();
  const std::size_t n = b.rows();
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(a, b, cdata) firstprivate(n, op)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row_a = a.row(i);
    const auto nnz_a = static_cast<std::uint32_t>(row_a.size());
    for (std::size_t j = 0; j < n; ++j) {
      const auto row_b = b.row64(j);
      std::uint32_t inter = 0;
      for (const std::uint32_t idx : row_a) {
        const bits::Word64 word = row_b[idx / bits::kBitsPerWord64];
        inter += static_cast<std::uint32_t>(
            (word >> (idx % bits::kBitsPerWord64)) & 1u);
      }
      const auto nnz_b = static_cast<std::uint32_t>(b.row_popcount(j));
      cdata[i * n + j] = from_intersection(op, nnz_a, nnz_b, inter);
    }
  }
  return c;
}

sim::KernelTiming estimate_sparse_kernel(const model::GpuSpec& dev,
                                         const model::KernelConfig& cfg,
                                         const sim::KernelShape& shape,
                                         double density_a,
                                         double density_b) {
  if (shape.m == 0 || shape.n == 0 || shape.k_words == 0) {
    throw std::invalid_argument("estimate_sparse_kernel: degenerate shape");
  }
  if (density_a < 0.0 || density_a > 1.0 || density_b < 0.0 ||
      density_b > 1.0) {
    throw std::invalid_argument(
        "estimate_sparse_kernel: densities must be in [0, 1]");
  }
  const double k_bits = static_cast<double>(shape.k_words) * 32.0;
  const double nnz_a = density_a * k_bits;
  const double nnz_b = density_b * k_bits;

  // Merge cost per output element: one step per index on either side;
  // each step is ~3 instructions (compare, conditional advance, count
  // accumulate) on the logic/add pipes, with no popcount involvement.
  constexpr double kMergeInstrsPerStep = 3.0;
  const double steps = nnz_a + nnz_b;
  const auto& logic = dev.pipe(model::InstrClass::kLogic);
  // Per-cluster instruction throughput in lane-instructions per cycle.
  const double lane_instrs_per_cycle =
      static_cast<double>(logic.units_per_cluster);
  // Divergence penalty: merge loops across the N_T lanes of a thread
  // group advance irregularly, so SIMT lanes idle part of the time.
  constexpr double kDivergenceEfficiency = 0.5;
  const double elems_per_cycle_cluster =
      lane_instrs_per_cycle * kDivergenceEfficiency /
      (steps * kMergeInstrsPerStep);

  const std::size_t tiles_m =
      bits::ceil_div(shape.m, static_cast<std::size_t>(cfg.m_c));
  const std::size_t tiles_n =
      bits::ceil_div(shape.n, static_cast<std::size_t>(cfg.n_r));
  const auto gm = static_cast<std::size_t>(cfg.grid.grid_m);
  const auto gn = static_cast<std::size_t>(cfg.grid.grid_n);
  const std::size_t tiles_per_core =
      bits::ceil_div(tiles_m, gm) * bits::ceil_div(tiles_n, gn);
  const int active_cores = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(cfg.grid.cores()),
      std::min(tiles_m, gm) * std::min(tiles_n, gn)));

  const double elems_per_tile = static_cast<double>(cfg.m_c) *
                                static_cast<double>(cfg.n_r);
  const double core_cycles =
      static_cast<double>(tiles_per_core) * elems_per_tile /
      (elems_per_cycle_cluster * dev.n_clusters);

  sim::KernelTiming t;
  t.active_cores = active_cores;
  t.clock_ghz = dev.clock_ghz(active_cores);
  t.core_cycles = core_cycles;
  const double raw_seconds = core_cycles / (t.clock_ghz * 1e9);

  // DRAM traffic: index streams (4 B per index) for both operands per
  // tile, plus the C writeback.
  const double tile_bytes =
      4.0 * (static_cast<double>(cfg.m_c) * nnz_a +
             static_cast<double>(cfg.n_r) * nnz_b +
             static_cast<double>(cfg.m_c) * static_cast<double>(cfg.n_r));
  const double core_bytes = static_cast<double>(tiles_per_core) *
                            tile_bytes;
  t.per_core_demand_gbps =
      raw_seconds > 0.0 ? core_bytes / raw_seconds / 1e9 : 0.0;
  t.mem_efficiency =
      sim::contention_efficiency(dev, active_cores, t.per_core_demand_gbps);
  t.seconds = raw_seconds / t.mem_efficiency;
  t.launch_seconds = sim::launch_seconds(dev);
  t.dram_bytes = core_bytes * active_cores;

  // Dense-equivalent accounting so dense and sparse are comparable.
  t.wordops = static_cast<double>(shape.m) * static_cast<double>(shape.n) *
              static_cast<double>(shape.k_words);
  t.gops = t.wordops / t.seconds / 1e9;
  t.peak_gops = model::peak_wordops_per_s(dev, Comparison::kAnd, false,
                                          active_cores) /
                1e9;
  t.pct_of_peak = 100.0 * t.gops / t.peak_gops;
  return t;
}

sim::KernelTiming estimate_sparse_dense_kernel(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    const sim::KernelShape& shape, double density_a) {
  if (shape.m == 0 || shape.n == 0 || shape.k_words == 0) {
    throw std::invalid_argument(
        "estimate_sparse_dense_kernel: degenerate shape");
  }
  if (density_a < 0.0 || density_a > 1.0) {
    throw std::invalid_argument(
        "estimate_sparse_dense_kernel: density must be in [0, 1]");
  }
  const double k_bits = static_cast<double>(shape.k_words) * 32.0;
  const double nnz_a = density_a * k_bits;

  // Per output element: one gathered load + shift/mask test + conditional
  // add per query index (~3 instructions: 1 mem, 2 logic/add).
  const auto& logic = dev.pipe(model::InstrClass::kLogic);
  const auto& lsu = dev.pipe(model::InstrClass::kMem);
  const double logic_cycles = 2.0 * nnz_a / logic.units_per_cluster;
  const double mem_cycles = 1.0 * nnz_a / lsu.units_per_cluster;
  // Gathered (random-word) loads diverge worse than streamed ones.
  constexpr double kGatherEfficiency = 0.5;
  const double cycles_per_elem_cluster =
      std::max(logic_cycles, mem_cycles / kGatherEfficiency);
  const double elems_per_cycle_cluster =
      cycles_per_elem_cluster > 0.0 ? 1.0 / cycles_per_elem_cluster : 1e9;

  const std::size_t tiles_m =
      bits::ceil_div(shape.m, static_cast<std::size_t>(cfg.m_c));
  const std::size_t tiles_n =
      bits::ceil_div(shape.n, static_cast<std::size_t>(cfg.n_r));
  const auto gm = static_cast<std::size_t>(cfg.grid.grid_m);
  const auto gn = static_cast<std::size_t>(cfg.grid.grid_n);
  const std::size_t tiles_per_core =
      bits::ceil_div(tiles_m, gm) * bits::ceil_div(tiles_n, gn);
  const int active_cores = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(cfg.grid.cores()),
      std::min(tiles_m, gm) * std::min(tiles_n, gn)));

  sim::KernelTiming t;
  t.active_cores = active_cores;
  t.clock_ghz = dev.clock_ghz(active_cores);
  const double elems_per_tile = static_cast<double>(cfg.m_c) *
                                static_cast<double>(cfg.n_r);
  t.core_cycles = static_cast<double>(tiles_per_core) * elems_per_tile /
                  (elems_per_cycle_cluster * dev.n_clusters);
  const double raw_seconds = t.core_cycles / (t.clock_ghz * 1e9);

  // DRAM: query indices (tiny) + gathered database cache lines. Model a
  // 32-byte transaction per probe, the dominant term.
  const double tile_bytes =
      elems_per_tile * nnz_a * 32.0 / static_cast<double>(cfg.m_c) +
      4.0 * elems_per_tile;
  const double core_bytes =
      static_cast<double>(tiles_per_core) * tile_bytes;
  t.per_core_demand_gbps =
      raw_seconds > 0.0 ? core_bytes / raw_seconds / 1e9 : 0.0;
  t.mem_efficiency =
      sim::contention_efficiency(dev, active_cores, t.per_core_demand_gbps);
  t.seconds = raw_seconds / t.mem_efficiency;
  t.launch_seconds = sim::launch_seconds(dev);
  t.dram_bytes = core_bytes * active_cores;
  t.wordops = static_cast<double>(shape.m) * static_cast<double>(shape.n) *
              static_cast<double>(shape.k_words);
  t.gops = t.wordops / t.seconds / 1e9;
  t.peak_gops = model::peak_wordops_per_s(dev, Comparison::kAnd, false,
                                          active_cores) /
                1e9;
  t.pct_of_peak = 100.0 * t.gops / t.peak_gops;
  return t;
}

double crossover_density(const model::GpuSpec& dev,
                         const sim::KernelShape& shape) {
  const auto cfg = model::paper_preset(dev, model::WorkloadKind::kLd);
  const double dense_s =
      sim::estimate_kernel(dev, cfg, Comparison::kAnd, shape).seconds;
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double sparse_s =
        estimate_sparse_kernel(dev, cfg, shape, mid, mid).seconds;
    (sparse_s < dense_s ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace snp::sparse
