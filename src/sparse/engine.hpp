// Sparse comparison engines and the sparse-kernel performance model — the
// future-work extension of paper Section VII, built to the same standard
// as the dense path: a real (tested) CPU engine plus an analytical GPU
// model on the same device descriptors, so the dense-vs-sparse crossover
// can be charted per device.
#pragma once

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/timing.hpp"
#include "sparse/sparse_matrix.hpp"

namespace snp::sparse {

/// gamma[i,j] for Eqs. 1-3 from sparse operands: one intersection per
/// output element plus the row marginals (|a ^ b| = |a|+|b|-2|∩|, etc.).
/// OpenMP-parallel over output rows.
[[nodiscard]] bits::CountMatrix sparse_compare(const SparseBitMatrix& a,
                                               const SparseBitMatrix& b,
                                               bits::Comparison op);

/// Mixed representation: sparse queries against a packed dense database —
/// each set bit of the sparse row probes the dense row directly. This is
/// the form a sparse FastID would use (tiny sparse queries, dense DB).
[[nodiscard]] bits::CountMatrix sparse_dense_compare(
    const SparseBitMatrix& a, const bits::BitMatrix& b,
    bits::Comparison op);

/// Analytical GPU timing for a sparse-sparse comparison kernel on the
/// model device: each output element costs a merge over the two rows'
/// indices (~kMergeInstrsPerStep logic/add-pipe instructions per step, no
/// popcount), and DRAM traffic is the index streams instead of the packed
/// words. Returns the same KernelTiming record as the dense estimator;
/// `gops` counts *dense-equivalent* word-ops (m*n*k_words) so the two are
/// directly comparable.
[[nodiscard]] sim::KernelTiming estimate_sparse_kernel(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    const sim::KernelShape& shape, double density_a, double density_b);

/// Density at which the modeled sparse kernel matches the dense kernel on
/// `dev` for a square LD-like shape (bisection over the two estimators).
/// Below this density the sparse representation wins.
[[nodiscard]] double crossover_density(const model::GpuSpec& dev,
                                       const sim::KernelShape& shape);

/// Mixed-representation GPU model: sparse queries (density_a) against a
/// dense database. Each output element costs one probe per query index —
/// a gathered load plus a bit test, no merge and no popcount — so the
/// *compute* cost scales with the query's nnz only. The model also prices
/// the gathers honestly (a 32-byte transaction per probe): because probe
/// rate rises exactly as nnz falls, per-core bandwidth demand is
/// density-independent and stays far above the dense kernel's streamed
/// traffic — so rare-variant queries merely break even with dense despite
/// an order of magnitude less arithmetic, and common queries lose. A
/// gather-coalescing database layout is the prerequisite for sparse
/// FastID to pay (tests/test_sparse.cpp pins this finding).
[[nodiscard]] sim::KernelTiming estimate_sparse_dense_kernel(
    const model::GpuSpec& dev, const model::KernelConfig& cfg,
    const sim::KernelShape& shape, double density_a);

}  // namespace snp::sparse
