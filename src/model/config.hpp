// Software configuration of the parameterized GPU kernel (paper Section V).
//
// Only four values configure the kernel for a device — m_c, m_r, k_c, n_r,
// the BLIS blocking parameters — plus the distribution of compute cores
// between the second and third loops around the micro-kernel (the "core
// configuration" of Table II). `derive()` implements the analytical mapping
// of Section V-A (Eqs. 4-7); `paper_preset()` returns the exact Table II
// values. Note: Eq. 5 as printed gives m_c = N_b / N_cl = 8, while every
// Table II entry uses m_c = 32 = N_b; we implement the equation faithfully
// (exposed as `m_c_eq5`) but default to the empirical N_b choice the
// authors shipped, and document the discrepancy in DESIGN.md.
#pragma once

#include <cstddef>
#include <string>

#include "bits/compare.hpp"
#include "model/device.hpp"

namespace snp::model {

/// Which of the paper's workload families a configuration targets; it
/// affects n_r and the core grid (Table II has separate LD / FastID rows).
enum class WorkloadKind { kLd, kFastId };

struct CoreGrid {
  int grid_m = 1;  ///< cores distributed over the 3rd loop (M tiles)
  int grid_n = 1;  ///< cores distributed over the 2nd loop (N tiles)

  [[nodiscard]] int cores() const { return grid_m * grid_n; }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(grid_m) + "x" + std::to_string(grid_n);
  }
  [[nodiscard]] bool operator==(const CoreGrid&) const = default;
};

struct KernelConfig {
  int m_r = 0;  ///< micro-tile rows per thread (Eq. 4: N_vec)
  int m_c = 0;  ///< A-tile rows resident in shared memory
  int k_c = 0;  ///< A-tile depth in 32-bit words (Eq. 6)
  int n_r = 0;  ///< C-tile columns per core (Eq. 7 lower-bounds it)
  CoreGrid grid;

  /// Eq. 3 lowering for mixture analysis: true = database stored negated
  /// and the kernel runs plain AND; false = NOT (or fused ANDN) in-kernel.
  bool pre_negated = false;

  /// Shared-memory bytes the A tile occupies.
  [[nodiscard]] std::size_t shared_tile_bytes() const {
    return static_cast<std::size_t>(m_c) * static_cast<std::size_t>(k_c) * 4;
  }
  /// Thread groups resident per core: the framework limits occupancy to
  /// N_cl clusters x L_fn latency-hiding groups each (paper §V-E); the
  /// (m_c / m_r) row sub-tiles are worked through sequentially per cluster.
  [[nodiscard]] int groups_per_core(const GpuSpec& dev) const;
  /// Accumulator registers each thread holds: m_r * (n_r / L_fn) outputs
  /// spread over the N_T threads of its group.
  [[nodiscard]] int accumulators_per_thread(const GpuSpec& dev) const;

  [[nodiscard]] std::string to_string() const;
};

/// Validation verdict with a reason, so callers can surface config errors.
struct ConfigCheck {
  bool ok = true;
  std::string reason;
};
[[nodiscard]] ConfigCheck validate(const KernelConfig& cfg,
                                   const GpuSpec& dev);

/// Eq. 5 exactly as printed: m_c = N_b / N_cl.
[[nodiscard]] int m_c_eq5(const GpuSpec& dev);

/// Registers a thread needs beyond its accumulators: the m_r A values and
/// N_vec B values in flight, loop counters and addresses.
inline constexpr int kRegOverheadPerThread = 16;

/// Per-thread register demand of `cfg`: accumulators plus the fixed
/// kRegOverheadPerThread overhead.
[[nodiscard]] int register_demand_per_thread(const KernelConfig& cfg,
                                             const GpuSpec& dev);

/// Per-thread register budget at the framework's occupancy plateau
/// (N_cl x L_fn resident groups of N_T threads), capped by the ISA's
/// per-thread limit.
[[nodiscard]] int register_budget_per_thread(const GpuSpec& dev);

/// Eq. 7 lower bound: n_r >= (N_T * m_r / m_c) * N_vec * L_fn.
[[nodiscard]] int n_r_lower_bound(const GpuSpec& dev, int m_r, int m_c);

/// Largest n_r (multiple of the Eq. 7 step) that keeps per-thread register
/// use within regs_per_core / resident-threads and max_regs_per_thread,
/// capped at the framework maximum of 1024 (the largest value the paper
/// deploys; beyond it the compiler spills in practice).
[[nodiscard]] int n_r_upper_bound(const GpuSpec& dev, int m_r, int m_c);

/// Analytical derivation of Section V-A. Produces m_r = N_vec, m_c = N_b,
/// k_c from Eq. 6 (minus the runtime's reserved bytes, §V-E) and the
/// largest feasible n_r; the grid comes from `derive_grid`.
[[nodiscard]] KernelConfig derive(const GpuSpec& dev, WorkloadKind kind,
                                  std::size_t m_tiles_hint = 0,
                                  std::size_t n_tiles_hint = 0);

/// The exact Table II software configuration for a device and workload.
[[nodiscard]] KernelConfig paper_preset(const GpuSpec& dev,
                                        WorkloadKind kind);

/// Distributes cores between the 2nd (N) and 3rd (M) loops: picks the
/// divisor pair of `cores` minimizing the per-core tile load
/// ceil(m_tiles/grid_m) * ceil(n_tiles/grid_n), preferring skew toward the
/// dimension with more parallelism (paper Section IV-C).
[[nodiscard]] CoreGrid derive_grid(std::size_t m_tiles, std::size_t n_tiles,
                                   int cores);

}  // namespace snp::model
