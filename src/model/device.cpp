#include "model/device.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace snp::model {

double GpuSpec::clock_ghz(int active_cores) const {
  if (active_cores <= 0 || n_cores <= 1) {
    return freq_ghz;
  }
  const double idle_frac =
      1.0 - static_cast<double>(active_cores) / static_cast<double>(n_cores);
  return freq_ghz * (1.0 + boost_frac * idle_frac);
}

int GpuSpec::groups_per_cluster() const {
  int max_latency = 0;
  for (const auto& p : pipes) {
    max_latency = std::max(max_latency, p.latency_cycles);
  }
  return max_latency;
}

bool GpuSpec::valid() const {
  if (freq_ghz <= 0 || n_t <= 0 || n_cores <= 0 || n_clusters <= 0 ||
      banks <= 0 || shared_bytes == 0 || pipes.empty()) {
    return false;
  }
  for (const int p : pipe_of) {
    if (p < 0 || static_cast<std::size_t>(p) >= pipes.size()) {
      return false;
    }
  }
  for (const auto& p : pipes) {
    if (p.units_per_cluster <= 0 || p.latency_cycles <= 0) {
      return false;
    }
  }
  return true;
}

namespace {
constexpr std::size_t kGiB = 1024ull * 1024ull * 1024ull;
constexpr std::size_t kKiB = 1024ull;
}  // namespace

GpuSpec gtx980() {
  GpuSpec d;
  d.name = "GTX 980";
  d.microarch = "Maxwell";
  d.vendor = "NVIDIA";
  d.freq_ghz = 1.367;
  d.n_t = 32;
  d.n_grp_max = 32;
  d.n_cores = 16;
  d.n_clusters = 4;
  d.n_vec = 4;
  // Pipe 0: 32-wide INT/logic pipe; pipe 1: 8-wide popcount pipe;
  // pipe 2: 8-wide LSU. Popcount is on its own pipeline (paper §V-D),
  // L_fn^popcount = 6 on Maxwell (Table I).
  d.pipes = {{32, 6}, {8, 6}, {8, 6}};
  d.pipe_of[static_cast<int>(InstrClass::kLogic)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kAdd)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kPopc)] = 1;
  d.pipe_of[static_cast<int>(InstrClass::kMem)] = 2;
  d.fused_andnot = true;  // LOP3 fuses the negation
  d.shared_bytes = 48 * kKiB;
  d.shared_reserved = 128;  // NVIDIA OpenCL reserves a few words (§V-E)
  d.banks = 32;
  d.regs_per_core = 64 * kKiB;
  d.max_regs_per_thread = 255;
  d.global_bytes = static_cast<std::size_t>(3.934 * static_cast<double>(kGiB));
  d.max_alloc_bytes =
      static_cast<std::size_t>(0.983 * static_cast<double>(kGiB));
  d.dram_gbps_effective = 125.0;  // calibrated: 90.7 % of peak at 16 cores
  d.contention_p = 4.0;
  d.pcie_gbps = 6.0;
  d.launch_overhead_us = 8.0;
  d.init_ms = 240.0;
  d.boost_frac = 0.0;
  return d;
}

GpuSpec titan_v() {
  GpuSpec d;
  d.name = "Titan V";
  d.microarch = "Volta";
  d.vendor = "NVIDIA";
  d.freq_ghz = 1.455;
  d.n_t = 32;
  d.n_grp_max = 32;
  d.n_cores = 80;
  d.n_clusters = 4;
  d.n_vec = 4;
  // Pipe 0: 16-wide INT pipe; pipe 1: 4-wide popcount; pipe 2: 8-wide LSU.
  // L_fn = 4 on Volta (Table I).
  d.pipes = {{16, 4}, {4, 4}, {8, 4}};
  d.pipe_of[static_cast<int>(InstrClass::kLogic)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kAdd)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kPopc)] = 1;
  d.pipe_of[static_cast<int>(InstrClass::kMem)] = 2;
  d.fused_andnot = true;
  d.shared_bytes = 48 * kKiB;
  d.shared_reserved = 128;
  d.banks = 32;
  d.regs_per_core = 64 * kKiB;
  d.max_regs_per_thread = 255;
  d.global_bytes =
      static_cast<std::size_t>(11.754 * static_cast<double>(kGiB));
  d.max_alloc_bytes =
      static_cast<std::size_t>(2.939 * static_cast<double>(kGiB));
  d.dram_gbps_effective = 436.0;  // calibrated: 97.1 % of peak at 80 cores
  d.contention_p = 4.0;
  d.pcie_gbps = 6.0;
  d.launch_overhead_us = 6.0;
  d.init_ms = 260.0;
  d.boost_frac = 0.05;  // reproduces the >100 % few-core scaling of Fig. 7
  return d;
}

GpuSpec vega64() {
  GpuSpec d;
  d.name = "Vega 64";
  d.microarch = "Vega (GCN5)";
  d.vendor = "AMD";
  d.freq_ghz = 1.663;
  d.n_t = 64;
  d.n_grp_max = 16;
  d.n_cores = 64;
  d.n_clusters = 4;
  d.n_vec = 4;
  // Pipe 0: the 16-wide VALU executes logic AND adds (shared pipe — the
  // bottleneck the paper identifies in §V-D); pipe 1: 16-wide popcount;
  // pipe 2: 16-wide LSU. L_fn = 4.
  d.pipes = {{16, 4}, {16, 4}, {16, 4}};
  d.pipe_of[static_cast<int>(InstrClass::kLogic)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kAdd)] = 0;
  d.pipe_of[static_cast<int>(InstrClass::kPopc)] = 1;
  d.pipe_of[static_cast<int>(InstrClass::kMem)] = 2;
  d.fused_andnot = false;  // the NOT is a separate VALU op (Fig. 9)
  d.shared_bytes = 64 * kKiB;
  d.shared_reserved = 0;  // "no such limitation on the Vega 64" (§V-E)
  d.banks = 32;
  d.regs_per_core = 64 * kKiB;
  d.max_regs_per_thread = 256;
  d.global_bytes = static_cast<std::size_t>(7.984 * static_cast<double>(kGiB));
  d.max_alloc_bytes =
      static_cast<std::size_t>(6.786 * static_cast<double>(kGiB));
  // Calibrated so full-device LD lands at 54.9 % of peak with a knee that
  // begins around 8-16 cores (Fig. 5 + Fig. 7 from one mechanism).
  d.dram_gbps_effective = 306.0;
  d.contention_p = 2.0;
  d.pcie_gbps = 6.0;
  d.launch_overhead_us = 10.0;
  d.init_ms = 230.0;
  d.boost_frac = 0.0;
  return d;
}

CpuSpec xeon_e5_2620v2() {
  CpuSpec c;
  c.name = "2x Xeon E5-2620 v2";
  c.microarch = "Ivy Bridge";
  c.freq_ghz = 2.1;
  c.cores = 12;
  c.popc_units = 1;
  c.add_units = 4;
  c.logic_units = 4;
  c.popc_latency = 3;
  c.efficiency = 0.85;  // the 80-90 % of peak reported in [11]
  return c;
}

std::vector<GpuSpec> all_gpus() { return {gtx980(), titan_v(), vega64()}; }

GpuSpec gpu_by_name(const std::string& name) {
  std::string key;
  for (const char ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch)) != 0) {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    }
  }
  if (key == "gtx980" || key == "maxwell") {
    return gtx980();
  }
  if (key == "titanv" || key == "volta") {
    return titan_v();
  }
  if (key == "vega64" || key == "vega" || key == "gcn5") {
    return vega64();
  }
  throw std::invalid_argument("unknown GPU: " + name);
}

}  // namespace snp::model
