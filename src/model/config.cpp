#include "model/config.hpp"

#include <algorithm>
#include <sstream>
#include <cstdlib>
#include <stdexcept>

namespace snp::model {

namespace {

/// The paper never deploys n_r beyond 1024; larger values spill in
/// practice, which the analytical model cannot see (Eq. 7 is an
/// inequality for exactly this reason).
constexpr int kNrFrameworkCap = 1024;

int latency(const GpuSpec& dev) {
  return dev.pipe(InstrClass::kPopc).latency_cycles;
}

}  // namespace

int KernelConfig::groups_per_core(const GpuSpec& dev) const {
  return dev.n_clusters * latency(dev);
}

int KernelConfig::accumulators_per_thread(const GpuSpec& dev) const {
  const int outputs_per_group = m_r * (n_r / latency(dev));
  return std::max(1, outputs_per_group / dev.n_t);
}

std::string KernelConfig::to_string() const {
  std::ostringstream os;
  os << "{m_r=" << m_r << ", m_c=" << m_c << ", k_c=" << k_c
     << ", n_r=" << n_r << ", grid=" << grid.to_string()
     << (pre_negated ? ", pre-negated" : "") << "}";
  return os.str();
}

ConfigCheck validate(const KernelConfig& cfg, const GpuSpec& dev) {
  auto fail = [](std::string reason) {
    return ConfigCheck{false, std::move(reason)};
  };
  if (cfg.m_r <= 0 || cfg.m_c <= 0 || cfg.k_c <= 0 || cfg.n_r <= 0) {
    return fail("all blocking parameters must be positive");
  }
  if (cfg.m_r % dev.n_vec != 0) {
    return fail("m_r must be a multiple of N_vec (Eq. 4)");
  }
  if (cfg.m_c % cfg.m_r != 0) {
    return fail("m_c must be a multiple of m_r (row sub-tiling)");
  }
  if (cfg.m_c > dev.banks) {
    return fail("m_c beyond N_b would serialize shared-memory accesses "
                "(the Eq. 5 bank-conflict constraint)");
  }
  if (cfg.shared_tile_bytes() > dev.shared_bytes - dev.shared_reserved) {
    return fail("A tile (m_c*k_c*4 bytes) exceeds usable shared memory");
  }
  const int lfn = latency(dev);
  if (cfg.n_r % lfn != 0) {
    return fail("n_r must split evenly into L_fn latency-hiding columns");
  }
  if (cfg.n_r < n_r_lower_bound(dev, cfg.m_r, cfg.m_c)) {
    return fail("n_r below the Eq. 7 lower bound");
  }
  if (register_demand_per_thread(cfg, dev) >
      register_budget_per_thread(dev)) {
    return fail("per-thread register demand exceeds the device budget "
                "(register spill)");
  }
  if (cfg.groups_per_core(dev) > dev.n_grp_max) {
    return fail("requested occupancy (N_cl * L_fn groups) exceeds the "
                "device's resident-group limit");
  }
  if (cfg.grid.cores() > dev.n_cores) {
    return fail("core grid uses more cores than the device has");
  }
  if (cfg.grid.grid_m <= 0 || cfg.grid.grid_n <= 0) {
    return fail("core grid must be positive");
  }
  return {};
}

int m_c_eq5(const GpuSpec& dev) { return dev.banks / dev.n_clusters; }

int register_demand_per_thread(const KernelConfig& cfg, const GpuSpec& dev) {
  return cfg.accumulators_per_thread(dev) + kRegOverheadPerThread;
}

int register_budget_per_thread(const GpuSpec& dev) {
  const auto resident_threads = static_cast<std::size_t>(
      dev.n_clusters * latency(dev) * dev.n_t);
  const auto budget = static_cast<int>(
      dev.regs_per_core / std::max<std::size_t>(resident_threads, 1));
  return std::min(budget, dev.max_regs_per_thread);
}

int n_r_lower_bound(const GpuSpec& dev, int m_r, int m_c) {
  // Eq. 7: n_r >= (N_T * m_r / m_c) * N_vec * L_fn.
  return (dev.n_t * m_r / m_c) * dev.n_vec * latency(dev);
}

int n_r_upper_bound(const GpuSpec& dev, int m_r, int m_c) {
  const int lfn = latency(dev);
  const int step = std::max(n_r_lower_bound(dev, m_r, m_c), lfn);
  const int reg_cap = register_budget_per_thread(dev) - kRegOverheadPerThread;
  // accumulators/thread = m_r * n_r / (L_fn * N_T) <= reg_cap
  const auto by_regs =
      static_cast<int>(static_cast<long long>(reg_cap) * lfn * dev.n_t / m_r);
  const int cap = std::min(by_regs, kNrFrameworkCap);
  return std::max(step, cap / step * step);
}

KernelConfig derive(const GpuSpec& dev, WorkloadKind kind,
                    std::size_t m_tiles_hint, std::size_t n_tiles_hint) {
  KernelConfig cfg;
  cfg.m_r = dev.n_vec;   // Eq. 4
  cfg.m_c = dev.banks;   // Table II choice; see m_c_eq5 for Eq. 5 as printed
  const std::size_t usable = dev.shared_bytes - dev.shared_reserved;
  cfg.k_c = static_cast<int>(usable /
                             (4 * static_cast<std::size_t>(dev.banks)));
  cfg.n_r = n_r_upper_bound(dev, cfg.m_r, cfg.m_c);
  if (m_tiles_hint == 0 || n_tiles_hint == 0) {
    // Default shapes: LD outputs are square; FastID has a tiny query (M)
    // dimension against a huge database (N).
    if (kind == WorkloadKind::kLd) {
      m_tiles_hint = n_tiles_hint = 1024;
    } else {
      m_tiles_hint = 1;
      n_tiles_hint = 1u << 20;
    }
  }
  cfg.grid = derive_grid(m_tiles_hint, n_tiles_hint, dev.n_cores);
  return cfg;
}

KernelConfig paper_preset(const GpuSpec& dev, WorkloadKind kind) {
  KernelConfig cfg;
  cfg.m_r = 4;
  cfg.m_c = 32;
  const bool ld = kind == WorkloadKind::kLd;
  if (dev.name == "GTX 980") {
    cfg.k_c = 383;
    cfg.n_r = ld ? 384 : 768;
    cfg.grid = ld ? CoreGrid{4, 4} : CoreGrid{1, 16};
  } else if (dev.name == "Titan V") {
    cfg.k_c = 383;
    cfg.n_r = 1024;
    cfg.grid = ld ? CoreGrid{80, 1} : CoreGrid{1, 80};
  } else if (dev.name == "Vega 64") {
    cfg.k_c = 512;
    cfg.n_r = 1024;
    cfg.grid = ld ? CoreGrid{32, 2} : CoreGrid{1, 64};
  } else {
    throw std::invalid_argument("paper_preset: no Table II entry for " +
                                dev.name);
  }
  return cfg;
}

CoreGrid derive_grid(std::size_t m_tiles, std::size_t n_tiles, int cores) {
  if (cores <= 0) {
    throw std::invalid_argument("derive_grid: cores must be positive");
  }
  m_tiles = std::max<std::size_t>(m_tiles, 1);
  n_tiles = std::max<std::size_t>(n_tiles, 1);
  CoreGrid best{1, cores};
  auto load = [&](const CoreGrid& g) {
    return bits::ceil_div(m_tiles, static_cast<std::size_t>(g.grid_m)) *
           bits::ceil_div(n_tiles, static_cast<std::size_t>(g.grid_n));
  };
  auto balance = [](const CoreGrid& g) {
    return std::abs(g.grid_m - g.grid_n);
  };
  for (int gm = 1; gm <= cores; ++gm) {
    if (cores % gm != 0) {
      continue;
    }
    const CoreGrid g{gm, cores / gm};
    // Minimize per-core load; on ties prefer the more balanced grid
    // (square-ish tiles of C maximize A/B reuse).
    if (load(g) < load(best) ||
        (load(g) == load(best) && balance(g) < balance(best))) {
      best = g;
    }
  }
  return best;
}

}  // namespace snp::model
