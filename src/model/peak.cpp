#include "model/peak.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::model {

InstrMix kernel_mix(const GpuSpec& dev, bits::Comparison op,
                    bool pre_negated) {
  InstrMix mix;
  mix.popc = 1;
  mix.add = 1;
  if (op == bits::Comparison::kAndNot && !pre_negated && !dev.fused_andnot) {
    mix.logic = 2;  // NOT + AND as separate ops on the logic pipe
  } else {
    mix.logic = 1;  // AND / XOR / fused ANDN / AND-vs-pre-negated-DB
  }
  return mix;
}

ClusterRate cluster_rate(const GpuSpec& dev, const InstrMix& mix) {
  ClusterRate r;
  if (dev.pipes.size() > r.cycles_per_group.size()) {
    throw std::invalid_argument("cluster_rate: too many pipes");
  }
  for (int c = 0; c < kNumInstrClasses; ++c) {
    const auto cls = static_cast<InstrClass>(c);
    const int count = mix.count(cls);
    if (count == 0) {
      continue;
    }
    const int pipe = dev.pipe_index(cls);
    const auto& spec = dev.pipes[static_cast<std::size_t>(pipe)];
    r.cycles_per_group[static_cast<std::size_t>(pipe)] +=
        static_cast<double>(count) * dev.n_t / spec.units_per_cluster;
  }
  double worst = 0.0;
  for (std::size_t p = 0; p < dev.pipes.size(); ++p) {
    if (r.cycles_per_group[p] > worst) {
      worst = r.cycles_per_group[p];
      r.bottleneck_pipe = static_cast<int>(p);
    }
  }
  r.wordops_per_cycle = worst > 0.0 ? dev.n_t / worst : 0.0;
  return r;
}

double peak_wordops_per_s(const GpuSpec& dev, bits::Comparison op,
                          bool pre_negated, int active_cores) {
  const int cores = active_cores > 0 ? active_cores : dev.n_cores;
  const ClusterRate rate = cluster_rate(dev, kernel_mix(dev, op,
                                                        pre_negated));
  return rate.wordops_per_cycle * dev.n_clusters * cores *
         dev.clock_ghz(cores) * 1e9;
}

double cpu_peak_wordops_per_s(const CpuSpec& cpu) {
  // Per 64-bit word-op: 1 AND + 1 ADD on the logic/add ports, 1 POPCNT on
  // its single port. Ivy Bridge issues one POPCNT per cycle per core, which
  // is the bottleneck ([11]). One 64-bit word-op == two 32-bit word-ops.
  const double and_add_cycles =
      2.0 / static_cast<double>(std::min(cpu.logic_units, cpu.add_units));
  const double popc_cycles = 1.0 / cpu.popc_units;
  const double cycles_per_op64 = std::max(and_add_cycles, popc_cycles);
  return 2.0 * cpu.cores * cpu.freq_ghz * 1e9 / cycles_per_op64;
}

std::string describe_bottleneck(const GpuSpec& dev, bits::Comparison op,
                                bool pre_negated) {
  const ClusterRate rate = cluster_rate(dev, kernel_mix(dev, op,
                                                        pre_negated));
  if (rate.bottleneck_pipe < 0) {
    return "none";
  }
  const auto& pipe = dev.pipes[static_cast<std::size_t>(rate.bottleneck_pipe)];
  const bool is_popc =
      dev.pipe_index(InstrClass::kPopc) == rate.bottleneck_pipe;
  std::string name = is_popc ? "popcount pipe" : "logic/add pipe";
  return name + " (" + std::to_string(pipe.units_per_cluster) +
         " units/cluster)";
}

}  // namespace snp::model
