// Theoretical-peak and pipe-bottleneck analysis (paper Sections IV-V).
//
// The unit of work is one 32-bit "word-op": the (logic-op, popcount,
// accumulate) triple applied to one 32-bit word pair, i.e. 32 SNP-site
// comparisons. Peak throughput is set by the most contended execution pipe,
// exactly the accounting the paper uses ("the peak throughput per functional
// unit can be determined by identifying the bottleneck, i.e. the minimum
// throughput on all pipelines in use").
#pragma once

#include <array>
#include <string>

#include "bits/compare.hpp"
#include "model/device.hpp"

namespace snp::model {

/// Per-word-op instruction counts by class for a comparison kernel's inner
/// loop (memory instructions are amortized separately by the timing model).
struct InstrMix {
  int logic = 0;  ///< AND / XOR / ANDN (+ standalone NOT when not fused)
  int add = 0;    ///< accumulate
  int popc = 0;

  [[nodiscard]] int count(InstrClass c) const {
    switch (c) {
      case InstrClass::kLogic:
        return logic;
      case InstrClass::kAdd:
        return add;
      case InstrClass::kPopc:
        return popc;
      case InstrClass::kMem:
        return 0;
    }
    return 0;
  }
};

/// Instruction mix of the inner loop for `op`. When `pre_negated` is true,
/// the AND-NOT kernel was lowered to a plain AND against a pre-negated
/// database (the Eq. 3 simplification), so the mix equals the AND mix.
[[nodiscard]] InstrMix kernel_mix(const GpuSpec& dev, bits::Comparison op,
                                  bool pre_negated = false);

struct ClusterRate {
  double wordops_per_cycle = 0.0;  ///< per-cluster sustained rate
  int bottleneck_pipe = -1;        ///< index into GpuSpec::pipes
  /// Issue cycles each pipe needs per N_T word-ops (one thread group).
  std::array<double, 8> cycles_per_group{};
};

/// Sustained word-ops/cycle of one compute cluster for a given mix,
/// assuming perfectly pipelined functional units (enough resident groups).
[[nodiscard]] ClusterRate cluster_rate(const GpuSpec& dev,
                                       const InstrMix& mix);

/// Device peak in word-ops/s for a kernel (all cores, all clusters, at the
/// given active-core clock).
[[nodiscard]] double peak_wordops_per_s(const GpuSpec& dev,
                                        bits::Comparison op,
                                        bool pre_negated = false,
                                        int active_cores = -1);

/// CPU peak in 32-bit-equivalent word-ops/s (the popcount-throughput bound
/// of [11]; the CPU operates on 64-bit words).
[[nodiscard]] double cpu_peak_wordops_per_s(const CpuSpec& cpu);

/// Giga word-ops to giga SNP-cell-updates (bits) conversion.
[[nodiscard]] constexpr double wordops_to_cups(double wordops) {
  return wordops * 32.0;
}

/// Human-readable bottleneck description, e.g. "logic/add pipe (16 units)".
[[nodiscard]] std::string describe_bottleneck(const GpuSpec& dev,
                                              bits::Comparison op,
                                              bool pre_negated = false);

}  // namespace snp::model
