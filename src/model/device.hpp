// The model GPU architecture of paper Section IV-A, plus the CPU baseline.
//
// A device is characterized by the paper's parameters (Table I): thread
// group size N_T, max resident groups N_grp, compute cores N_c, clusters
// per core N_cl, per-instruction functional-unit counts N_fn with latency
// L_fn, shared memory N_shared organized in N_b banks, and a load/store
// width N_vec. On top of Table I we carry the calibration constants the
// simulator needs (effective DRAM bandwidth and contention exponent, PCIe
// bandwidth, launch/init overheads, DVFS boost) — these are the "memory
// system behaviours" the paper leaves out of its model and flags as the
// source of the Vega scaling anomaly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bits/compare.hpp"

namespace snp::model {

/// Instruction classes relevant to SNP comparison kernels. Each class maps
/// to one execution pipe on a device; distinct classes may share a pipe
/// (discovered by the paper via microbenchmarking, Section V-D).
enum class InstrClass : std::uint8_t {
  kLogic,   ///< AND / XOR / NOT / ANDN
  kAdd,     ///< integer add
  kPopc,    ///< population count
  kMem,     ///< global/shared load-store
};

inline constexpr int kNumInstrClasses = 4;

struct PipeSpec {
  int units_per_cluster = 0;  ///< N_fn for this pipe
  int latency_cycles = 0;     ///< L_fn for this pipe
};

struct GpuSpec {
  std::string name;
  std::string microarch;
  std::string vendor;

  double freq_ghz = 0.0;  ///< base/OpenCL-reported max clock
  int n_t = 0;            ///< thread-group size (warp / wavefront)
  int n_grp_max = 0;      ///< max resident thread groups per core
  int n_cores = 0;        ///< N_c: SMs / CUs
  int n_clusters = 0;     ///< N_cl per core
  int n_vec = 4;          ///< elements a thread loads at once (uint4)

  /// Which pipe each instruction class issues to. Pipes are identified by
  /// index into `pipes`; classes sharing an index share the pipe (Vega puts
  /// kLogic and kAdd on the same pipe, which Fig. 9 hinges on).
  int pipe_of[kNumInstrClasses] = {0, 0, 1, 2};
  std::vector<PipeSpec> pipes;

  /// True when the ISA fuses negation into AND (NVIDIA LOP3-style), so the
  /// AND-NOT kernel costs no extra logic op.
  bool fused_andnot = false;

  std::size_t shared_bytes = 0;       ///< N_shared
  std::size_t shared_reserved = 0;    ///< bytes the runtime reserves (§V-E)
  int banks = 0;                      ///< N_b
  std::size_t regs_per_core = 0;
  int max_regs_per_thread = 0;
  std::size_t global_bytes = 0;
  std::size_t max_alloc_bytes = 0;

  // --- simulator calibration (not part of the paper's Table I) ---
  double dram_gbps_effective = 0.0;  ///< achievable streaming bandwidth
  double contention_p = 4.0;         ///< soft-min exponent for contention
  double pcie_gbps = 6.0;            ///< effective host<->device bandwidth
  double launch_overhead_us = 8.0;   ///< per kernel enqueue->start
  double init_ms = 250.0;            ///< one-time platform/context init
  double boost_frac = 0.0;  ///< clock boost at 1 active core, linear to 0

  [[nodiscard]] const PipeSpec& pipe(InstrClass c) const {
    return pipes[static_cast<std::size_t>(
        pipe_of[static_cast<std::size_t>(c)])];
  }
  [[nodiscard]] int pipe_index(InstrClass c) const {
    return pipe_of[static_cast<std::size_t>(c)];
  }
  /// Clock in GHz with `active_cores` of `n_cores` busy (DVFS model).
  [[nodiscard]] double clock_ghz(int active_cores) const;
  /// Max thread groups resident per cluster needed to hide pipe latency.
  [[nodiscard]] int groups_per_cluster() const;

  [[nodiscard]] bool valid() const;
};

/// CPU baseline model (Table I first column): per-core 64-bit popcount
/// throughput bounds SNP comparison, per Alachiotis et al. [11].
struct CpuSpec {
  std::string name;
  std::string microarch;
  double freq_ghz = 0.0;
  int cores = 0;
  int popc_units = 1;       ///< 64-bit popcount issues per cycle per core
  int add_units = 4;
  int logic_units = 4;
  int popc_latency = 3;
  double efficiency = 0.85;  ///< fraction of peak the BLIS CPU code attains
};

/// The devices evaluated in the paper (Table I).
[[nodiscard]] GpuSpec gtx980();
[[nodiscard]] GpuSpec titan_v();
[[nodiscard]] GpuSpec vega64();
[[nodiscard]] CpuSpec xeon_e5_2620v2();

/// All simulated GPUs, in the paper's order.
[[nodiscard]] std::vector<GpuSpec> all_gpus();

/// Lookup by case-insensitive name ("gtx980", "titanv", "vega64");
/// throws std::invalid_argument on unknown names.
[[nodiscard]] GpuSpec gpu_by_name(const std::string& name);

}  // namespace snp::model
