// snp::rt — structured error taxonomy for the fault-tolerance runtime.
//
// The framework streams multi-gigabyte databases through chunked device
// pipelines (paper Section VI-A) and shards them across DGX-class boxes
// (Section VII) — regimes where transient allocation failures, stuck
// launches, corrupt inputs, and dead devices are operational facts, not
// exceptional surprises. Ad-hoc std::runtime_error strings cannot drive a
// recovery policy: the retry/failover/degrade machinery (rt/recovery.hpp)
// needs to know *which* failure occurred and whether re-executing the
// operation can possibly help. This header is that contract: a small,
// stable set of error codes, a Status value that can cross layers without
// unwinding, and an Error exception that carries the Status through
// layers that still use exceptions.
//
// Code stability: the SNPRT-* strings below are a public interface — the
// CLI prints them on stderr, tests and operators match on them, and
// docs/robustness.md registers them. Never renumber or rename; only
// append.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace snp::rt {

/// Failure classes of the execution stack. Kept deliberately coarse: a
/// recovery policy acts on the class, not the message.
enum class ErrorCode : std::uint8_t {
  kOk = 0,         ///< not an error
  kAlloc,          ///< device/host buffer allocation failed
  kH2d,            ///< host-to-device transfer failed
  kLaunch,         ///< kernel launch / enqueue failed
  kReadback,       ///< device-to-host readback failed
  kTimeout,        ///< operation exceeded its deadline (watchdog)
  kIoCorrupt,      ///< input file truncated/corrupted (offset in Status)
  kShardLost,      ///< a multi-GPU shard's device died mid-run
  kPoolTask,       ///< a host pipeline task (pack/execute/drain) failed
  kExhausted,      ///< bounded retries (or the op deadline) ran out
  kCancelled,      ///< run abandoned because a sibling failure poisoned it
  kInternal,       ///< invariant violation — a bug, never retried
  kOverload,       ///< admission control shed the request (queue full)
  kDeadline,       ///< the request's end-to-end deadline expired
};

/// The stable wire/CLI name of a code ("SNPRT-ALLOC", "SNPRT-LAUNCH", ...).
[[nodiscard]] std::string_view code_name(ErrorCode code);

/// Whether re-executing the failed operation can succeed (transient
/// classes: alloc, h2d, launch, readback, timeout, pool task). Corruption,
/// lost shards, exhaustion, and internal errors are permanent at the
/// operation level — they escalate to failover/degrade instead.
[[nodiscard]] bool is_retryable(ErrorCode code);

/// A result status. `offset` is meaningful for kIoCorrupt (byte offset at
/// which parsing stopped); `injected` marks faults planted by the
/// deterministic injection framework (rt/fault.hpp) — injected faults are
/// transient by construction, so retry treats them as retryable even when
/// the code class is not.
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  std::uint64_t offset = 0;
  bool injected = false;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }
  /// "[SNPRT-IO-CORRUPT] truncated header (byte 12)" — the stable render
  /// used by Error::what() and the CLI.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static Status success() { return {}; }
  [[nodiscard]] static Status failure(ErrorCode code, std::string message,
                                      std::uint64_t offset = 0) {
    Status s;
    s.code = code;
    s.message = std::move(message);
    s.offset = offset;
    return s;
  }
};

/// Whether the retry rung may re-attempt an operation that failed with
/// `s`: transient code classes plus anything the fault injector planted.
[[nodiscard]] inline bool is_retryable(const Status& s) {
  return is_retryable(s.code) || s.injected;
}

/// Exception carrier for layers that unwind. Derives from
/// std::runtime_error so legacy catch sites keep working; what() is
/// Status::to_string(), so the stable SNPRT-* code always reaches stderr.
class Error : public std::runtime_error {
 public:
  explicit Error(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  Error(ErrorCode code, std::string message, std::uint64_t offset = 0)
      : Error(Status::failure(code, std::move(message), offset)) {}

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] ErrorCode code() const { return status_.code; }

 private:
  Status status_;
};

}  // namespace snp::rt
