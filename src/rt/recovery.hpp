// snp::rt — recovery policy: bounded retry, deadlines, and the
// failover/degrade ladder.
//
// The policy ladder (docs/robustness.md):
//   abort    — propagate the first failure unchanged; no second chances.
//   retry    — each faulting operation is re-attempted up to
//              max_attempts times with deterministic exponential
//              backoff; exhaustion propagates kExhausted.
//   failover — retry first; a shard whose device stays dead has its
//              rows redistributed across surviving devices
//              (multi::MultiGpuContext); with no survivors, fall
//              through to the CPU rung.
//   degrade  — retry first; if the device pipeline still cannot finish,
//              the remaining rows are recomputed on the host
//              (cpu::compare_blocked_async) and the report is flagged
//              `degraded` — slower, never wrong, never silent.
//
// Everything here is deterministic: backoff is a pure function of the
// attempt number, and FaultEvents are logged in completion order under a
// lock so soak tests can assert exact recovery behaviour across 100
// seeds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_context.hpp"
#include "rt/fault.hpp"
#include "rt/status.hpp"

namespace snp::rt {

enum class FailPolicy : std::uint8_t {
  kAbort = 0,
  kRetry,
  kFailover,
  kDegrade,
};

[[nodiscard]] std::string_view to_string(FailPolicy policy);
/// Parses "abort|retry|failover|degrade"; nullopt on anything else.
[[nodiscard]] std::optional<FailPolicy> parse_fail_policy(
    std::string_view text);

/// Knobs for the retry rung. Backoff for attempt n (1-based, i.e. after
/// the nth failure) is min(backoff_base_s * 2^(n-1), backoff_max_s) —
/// deterministic, so two runs with the same plan sleep identically.
struct RecoveryOptions {
  FailPolicy policy = FailPolicy::kRetry;
  int max_attempts = 4;             ///< total tries per operation
  double backoff_base_s = 100e-6;   ///< first-retry sleep
  double backoff_max_s = 10e-3;     ///< backoff ceiling
  double op_deadline_s = 0.0;       ///< per-operation watchdog (0 = off)
};

[[nodiscard]] double backoff_delay_s(const RecoveryOptions& opts,
                                     int attempt);

/// One recovery-relevant incident: a fault observed and what was done
/// about it. Collected into TimingReport::fault_events / the CLI report.
struct FaultEvent {
  std::string site;     ///< injection-site / operation label
  ErrorCode code = ErrorCode::kInternal;
  std::string action;   ///< "retry" | "failover" | "degrade" | "abort" |
                        ///< "exhausted"
  std::int64_t chunk = -1;   ///< chunk index or device id (-1 = n/a)
  int attempt = 0;           ///< attempt number the fault hit
  std::string detail;        ///< human-readable cause (Error::what())
  std::uint64_t trace_id = 0;  ///< originating request (0 = none)
};

/// Tally of recovery actions over a run's fault events — the shape the
/// cost ledger's retry/failover/degrade surcharges want (obs::CostLedger
/// must not depend on rt, so svc folds these counts in).
struct ActionCounts {
  std::uint32_t retries = 0;
  std::uint32_t failovers = 0;
  std::uint32_t degrades = 0;
  std::uint32_t aborts = 0;
  std::uint32_t exhausted = 0;
};

/// Counts events by their recorded action string (unknown actions are
/// ignored — forward compatibility over strictness).
[[nodiscard]] ActionCounts count_actions(std::span<const FaultEvent> events);

/// Thread-safe event sink shared by every retry scope of one run.
class FaultLog {
 public:
  void record(FaultEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
  }
  [[nodiscard]] std::vector<FaultEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
};

/// Sleeps for the deterministic backoff of `attempt` (no-op for
/// non-positive delays). Split out so tests can pin the schedule.
void backoff_sleep(const RecoveryOptions& opts, int attempt);

/// Per-operation watchdog. start() is wall-clock; expired() both checks
/// the real deadline and samples the kTimeout injection site, so stuck
/// operations are testable without real stalls.
class Deadline {
 public:
  explicit Deadline(double seconds);
  /// True if the deadline passed (or a timeout fault fired). `index`
  /// feeds the injector's at= filter.
  [[nodiscard]] bool expired(std::int64_t index = -1) const;
  [[nodiscard]] double seconds() const { return seconds_; }

 private:
  double seconds_ = 0.0;
  double start_s_ = 0.0;
};

/// Extracts an rt::Status from any in-flight exception: rt::Error passes
/// its status through; everything else is wrapped as kInternal (and is
/// therefore not retried — unknown failures are bugs until classified).
[[nodiscard]] Status status_from_exception(const std::exception& e);

namespace detail {
/// Out-of-line so this header does not pull in the obs macros.
void count_retry_metrics(bool retried);
/// Flight-recorder hook: records a fault/retry event tagged with the
/// ambient trace id (and installs the SNPRT code namer on first use so
/// dumps print "SNPRT-LAUNCH" instead of a number).
void record_fault_flight(ErrorCode code, std::int64_t chunk, int attempt,
                         bool retried);
}  // namespace detail

/// Runs `fn` under the retry rung: up to opts.max_attempts tries while
/// the failure is retryable (see is_retryable(Status)), with
/// deterministic backoff between tries and an optional per-operation
/// deadline. Policy kAbort rethrows the first failure immediately.
/// Exhaustion throws Error(kExhausted) — deliberately non-retryable, so
/// an enclosing retry scope cannot multiply attempts. Every fault and
/// the action taken is recorded in `log` (if non-null) and counted in
/// rt.retries.
template <typename Fn>
auto with_retry(const RecoveryOptions& opts, std::string_view site_label,
                std::int64_t chunk, FaultLog* log, Fn&& fn)
    -> decltype(fn()) {
  const int max_attempts =
      opts.policy == FailPolicy::kAbort ? 1 : std::max(1, opts.max_attempts);
  Deadline deadline(opts.op_deadline_s);
  for (int attempt = 1;; ++attempt) {
    try {
      if (deadline.expired(chunk)) {
        throw Error(ErrorCode::kTimeout,
                    "operation '" + std::string(site_label) +
                        "' exceeded its deadline");
      }
      return fn();
    } catch (const Error& e) {
      const Status& st = e.status();
      const bool can_retry = attempt < max_attempts && is_retryable(st) &&
                             st.code != ErrorCode::kExhausted;
      detail::count_retry_metrics(can_retry);
      detail::record_fault_flight(st.code, chunk, attempt, can_retry);
      if (log != nullptr) {
        FaultEvent ev;
        ev.site = std::string(site_label);
        ev.code = st.code;
        ev.action = opts.policy == FailPolicy::kAbort ? "abort"
                    : can_retry                       ? "retry"
                                                      : "exhausted";
        ev.chunk = chunk;
        ev.attempt = attempt;
        ev.detail = e.what();
        ev.trace_id = obs::current_trace().trace_id;
        log->record(std::move(ev));
      }
      if (opts.policy == FailPolicy::kAbort) throw;
      if (!can_retry) {
        if (!is_retryable(st) || st.code == ErrorCode::kExhausted) throw;
        throw Error(ErrorCode::kExhausted,
                    "operation '" + std::string(site_label) + "' failed " +
                        std::to_string(attempt) +
                        " attempt(s); last: " + e.what());
      }
      backoff_sleep(opts, attempt);
    }
  }
}

}  // namespace snp::rt
